// Capacity: the provisioning study behind Figures 3 and 12 — how fast
// recommender model size outgrows GPU memory as embeddings scale, and how a
// TensorNode is provisioned (DIMM count, capacity, aggregate bandwidth,
// power) to hold it.
package main

import (
	"fmt"

	"tensordimm"
	"tensordimm/internal/power"
	"tensordimm/internal/recsys"
	"tensordimm/internal/stats"
)

func main() {
	const users, items = 5_000_000, 5_000_000

	fmt.Println("NCF model size vs embedding dimension (5M users + 5M items per table):")
	fmt.Println("  emb dim   model size   fits a 32 GiB GPU?")
	for _, dim := range []int{64, 256, 1024, 4096, 16384, 32768} {
		bytes := recsys.NCFModelSizeBytes(1024, dim, users, items)
		fits := "yes"
		if bytes > 32<<30 {
			fits = "no"
		}
		fmt.Printf("  %7d   %10s   %s\n", dim, stats.FormatBytes(bytes), fits)
	}

	// Provision a TensorNode for the largest configuration: 128 GiB
	// LR-DIMMs (the paper's module), power from the Micron-style model.
	const perDIMM = 128 << 30
	fmt.Println("\nTensorNode provisioning for the 32768-dim model:")
	model := recsys.NCFModelSizeBytes(1024, 32768, users, items)
	dimms := int((model + perDIMM - 1) / perDIMM)
	// Round up to a power of two for clean rank-interleaved striping.
	n := 1
	for n < dimms {
		n *= 2
	}
	p := tensordimm.DefaultPlatform().WithNodeDIMMs(n)
	fmt.Printf("  model size          %s\n", stats.FormatBytes(model))
	fmt.Printf("  TensorDIMMs         %d x 128 GiB (rounded up to a power of two)\n", n)
	fmt.Printf("  pool capacity       %s\n", stats.FormatBytes(int64(n)*perDIMM))
	fmt.Printf("  aggregate bandwidth %.1f GB/s (vs 204.8 GB/s on any CPU host)\n", p.NodePeakGBs())
	fmt.Printf("  node power          %.0f W (OCP accelerator envelope: 350-700 W per module)\n",
		power.TensorNodeWatts(n, 0.45, 0.25))

	// What the bandwidth scaling buys: batch-64 TDIMM lookup time on the
	// YouTube workload with 8x embeddings, at different node sizes.
	fmt.Println("\nTDIMM embedding-layer time (YouTube, 8x embeddings, batch 64) vs node size:")
	cfg := tensordimm.YouTube()
	cfg = cfg.WithEmbDim(cfg.EmbDim * 8)
	for _, nd := range []int{32, 64, 128} {
		pp := tensordimm.DefaultPlatform().WithNodeDIMMs(nd)
		b := tensordimm.Simulate(tensordimm.TDIMM, cfg, 64, pp)
		fmt.Printf("  %3d TensorDIMMs: lookup %s, total %s\n",
			nd, stats.FormatSeconds(b.LookupS), stats.FormatSeconds(b.TotalS()))
	}
	fmt.Println("\nmemory capacity AND bandwidth scale together with the DIMM count —")
	fmt.Println("the property conventional channels cannot offer (Figure 12).")
}
