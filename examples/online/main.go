// Online-update walkthrough: serve a sharded cluster with hot-row caches
// while training updates stream in. The example warms the caches with
// skewed reads, applies SCATTER_ADD gradient updates cluster-wide, shows
// the per-shard invalidation counters doing their job, and proves the
// coherence contract: every read after an update is bit-identical to a
// sequential single-node golden model — hot cached rows included.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sync"

	"tensordimm"
)

func main() {
	// A YouTube-style workload shrunk to demo size: 2 tables x 4001 rows,
	// 4-way mean pooling, 128-dim embeddings.
	cfg := tensordimm.YouTube()
	cfg.Tables = 2
	cfg.TableRows = 4001
	cfg.EmbDim = 128
	cfg.Reduction = 4
	cfg.Hidden = []int{32, 16}
	cfg.FCLayers = len(cfg.Hidden)

	model, err := tensordimm.BuildModel(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	cl, err := tensordimm.NewCluster(model, tensordimm.ClusterConfig{
		Nodes:      2,
		Strategy:   tensordimm.TableWise,
		CacheBytes: 128 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// Phase 1 — warm the caches: Zipf(0.9) reads concentrate on hot rows,
	// so a second pass over the same distribution mostly hits.
	gen, err := tensordimm.NewZipfWorkload(cfg.TableRows, 0.9, 7)
	if err != nil {
		log.Fatal(err)
	}
	const batch = 8
	for round := 0; round < 2; round++ { // round 2 hits what round 1 cached
		var wg sync.WaitGroup
		for i := 0; i < 32; i++ {
			rows := gen.Batch(cfg.Tables, batch, cfg.Reduction)
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := cl.Embed(rows, batch); err != nil {
					log.Fatal(err)
				}
			}()
		}
		wg.Wait()
	}
	warm := cl.Metrics()
	fmt.Printf("after warmup: %.1f%% hit rate, %d rows cached\n",
		100*warm.HitRate, cachedRows(warm))

	// Phase 2 — online updates: accumulate gradients into the hottest rows
	// (0..15 under Zipf skew) of both tables. Each update routes through
	// the same placement as reads, scatters near-memory on the owning
	// shard, and invalidates the now-stale cache entries. Touch those rows
	// once first so they're freshly resident and the invalidations are
	// visible in the counters.
	hot := make([][]int, cfg.Tables)
	for t := range hot {
		hot[t] = make([]int, 4*cfg.Reduction)
		for j := range hot[t] {
			hot[t][j] = j % 16
		}
	}
	if _, err := cl.Embed(hot, 4); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	for step := 0; step < 10; step++ {
		var ups []tensordimm.TableUpdate
		for t := 0; t < cfg.Tables; t++ {
			rows := []int{rng.Intn(16), rng.Intn(16), rng.Intn(16)}
			grads := tensordimm.NewTensor(len(rows), cfg.EmbDim)
			for i := range grads.Data() {
				grads.Data()[i] = rng.Float32()*0.02 - 0.01
			}
			ups = append(ups, tensordimm.TableUpdate{Table: t, Rows: rows, Grads: grads})
		}
		if err := cl.ApplyUpdates(ups); err != nil {
			log.Fatal(err)
		}
	}
	m := cl.Metrics()
	fmt.Printf("after %d update batches: %d gradient rows scattered, %d cache invalidations\n",
		m.Updates, m.RowsUpdated, m.Invalidations)

	// Phase 3 — coherence proof: re-read the updated hot rows (and a spread
	// of cold ones) and compare bit-for-bit with the golden model, which
	// absorbed the same updates write-through. A stale cache entry or a
	// missed shard scatter would break equality.
	checks := 0
	for i := 0; i < 32; i++ {
		rows := gen.Batch(cfg.Tables, batch, cfg.Reduction)
		for t := range rows {
			rows[t][0] = rng.Intn(16) // always touch an updated hot row
		}
		got, err := cl.Embed(rows, batch)
		if err != nil {
			log.Fatal(err)
		}
		want, err := cl.GoldenEmbedding(rows, batch)
		if err != nil {
			log.Fatal(err)
		}
		if !equal(got, want) {
			log.Fatalf("read %d diverged from the sequential golden model", i)
		}
		checks++
	}
	fmt.Printf("%d post-update reads bit-identical to the sequential golden model\n\n", checks)
	fmt.Println(cl.Metrics())
}

// cachedRows sums the resident rows across shards.
func cachedRows(m tensordimm.ClusterMetrics) int {
	n := 0
	for _, s := range m.Shards {
		n += s.CacheRows
	}
	return n
}

// equal compares two tensors bit-for-bit.
func equal(a, b *tensordimm.Tensor) bool {
	if len(a.Data()) != len(b.Data()) {
		return false
	}
	for i, v := range a.Data() {
		if v != b.Data()[i] {
			return false
		}
	}
	return true
}
