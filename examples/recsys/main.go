// Recsys: evaluate the paper's four production recommender workloads (NCF,
// YouTube, Fox, Facebook) across the five system design points and print the
// Figure 13/14-style latency breakdowns and speedups — the headline
// experiment of the paper.
package main

import (
	"fmt"
	"math"

	"tensordimm"
)

func main() {
	p := tensordimm.DefaultPlatform()
	const batch = 64

	fmt.Printf("platform: %s host, %s GPU, %d-TensorDIMM node (%.1f GB/s) behind %.0f GB/s NVLink\n\n",
		p.CPU.Name, p.GPU.Name, p.NodeDIMMs, p.NodePeakGBs(), p.NodeLink.BandwidthGBs)

	var geo = map[tensordimm.DesignPoint]float64{}
	for _, cfg := range tensordimm.Benchmarks() {
		fmt.Printf("%s  (tables=%d reduction=%d FC=%d, %.1f MiB gathered per batch-%d inference)\n",
			cfg.Name, cfg.Tables, cfg.Reduction, cfg.FCLayers,
			float64(cfg.GatheredBytes(batch))/(1<<20), batch)
		oracle := tensordimm.Simulate(tensordimm.GPUOnly, cfg, batch, p).TotalS()
		for _, dp := range tensordimm.DesignPoints() {
			b := tensordimm.Simulate(dp, cfg, batch, p)
			norm := oracle / b.TotalS()
			geo[dp] += math.Log(norm)
			fmt.Printf("  %-8s total %8.1f us  (lookup %7.1f  memcpy %6.1f  dnn %6.1f  else %5.1f)  %4.2fx of oracle\n",
				dp, b.TotalS()*1e6, b.LookupS*1e6, b.TransferS*1e6, b.DNNS*1e6, b.OtherS*1e6, norm)
		}
		fmt.Printf("  TDIMM speedup: %.1fx vs CPU-only, %.1fx vs CPU-GPU\n\n",
			tensordimm.Speedup(tensordimm.TDIMM, tensordimm.CPUOnly, cfg, batch, p),
			tensordimm.Speedup(tensordimm.TDIMM, tensordimm.CPUGPU, cfg, batch, p))
	}

	fmt.Println("geomean fraction of the GPU-only oracle (batch 64):")
	for _, dp := range tensordimm.DesignPoints() {
		fmt.Printf("  %-8s %.3f\n", dp, math.Exp(geo[dp]/4))
	}
	fmt.Println("\npaper reference: TDIMM reaches 84% of the oracle on average,")
	fmt.Println("6.2-15.0x over CPU-only and 8.9-17.6x over the hybrid CPU-GPU.")
}
