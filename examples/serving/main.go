// Serving walkthrough: deploy a recommender model with concurrent execution
// slots, stand up the batched inference server, drive it from several client
// goroutines at once, verify every result against the pure-software golden
// model, and read the latency/throughput report.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"tensordimm"
	"tensordimm/internal/tensor"
)

func main() {
	// A TensorNode with 8 TensorDIMMs of 32 MiB each.
	nd, err := tensordimm.NewNode(8, 32<<20)
	if err != nil {
		log.Fatal(err)
	}

	// A Facebook-style workload, shrunk to demo size: 4 lookup tables,
	// 8-way mean pooling, 128-dim embeddings (one stripe on 8 DIMMs).
	cfg := tensordimm.Facebook()
	cfg.Tables = 4
	cfg.TableRows = 2000
	cfg.EmbDim = 128
	cfg.Reduction = 8
	cfg.Hidden = []int{64, 32, 16, 8}
	cfg.FCLayers = len(cfg.Hidden)

	model, err := tensordimm.BuildModel(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}

	// Concurrency sizing: 2 execution slots (two merged batches in flight)
	// and one scratch lane per table per slot (full table fan-out).
	const maxBatch, slots = 16, 2
	dep, err := tensordimm.DeployConcurrent(model, nd, maxBatch, slots, slots*cfg.Tables)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %s: %d tables x %d rows, %d slots, %d lanes\n",
		cfg.Name, cfg.Tables, cfg.TableRows, dep.Slots(), dep.Lanes())

	// The server coalesces concurrent requests into merged batches of up
	// to maxBatch samples, waiting at most 500us for co-riders.
	srv, err := tensordimm.NewServer(tensordimm.ServeConfig{
		MaxBatch: maxBatch,
		MaxDelay: 500 * time.Microsecond,
	}, dep)
	if err != nil {
		log.Fatal(err)
	}

	// Eight clients, each issuing a stream of small requests — the shape
	// of production recommendation traffic (deployed batches of 1-100).
	const clients, perClient = 8, 10
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen, err := tensordimm.NewWorkload(cfg.TableRows, tensordimm.Zipfian, int64(c)+1)
			if err != nil {
				errs[c] = err
				return
			}
			for i := 0; i < perClient; i++ {
				batch := 1 + (c+i)%4
				rows := gen.Batch(cfg.Tables, batch, cfg.Reduction)

				// The server merges this request with whatever else is
				// in flight; the result is still bit-identical to
				// running it alone.
				got, err := srv.Embed(rows, batch)
				if err != nil {
					errs[c] = err
					return
				}
				want, err := dep.GoldenEmbedding(rows, batch)
				if err != nil {
					errs[c] = err
					return
				}
				if !tensor.Equal(got, want) {
					errs[c] = fmt.Errorf("client %d: batched result differs from golden model", c)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("%d clients x %d requests: all results bit-identical to the golden model\n\n",
		clients, perClient)

	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println(srv.Metrics())
}
