// Cluster walkthrough: shard one recommender model row-wise across four
// TensorNodes with a hot-row cache in front of each shard, drive it with a
// skewed Zipf(0.9) workload from concurrent clients, verify every merged
// result bit-for-bit against the pure-software golden model, and read the
// per-shard routing / cache / fabric report.
package main

import (
	"fmt"
	"log"
	"sync"

	"tensordimm"
	"tensordimm/internal/tensor"
)

func main() {
	// A Facebook-style workload, shrunk to demo size: 4 lookup tables of
	// 3001 rows (deliberately not divisible by the shard count), 8-way
	// mean pooling, 128-dim embeddings.
	cfg := tensordimm.Facebook()
	cfg.Tables = 4
	cfg.TableRows = 3001
	cfg.EmbDim = 128
	cfg.Reduction = 8
	cfg.Hidden = []int{64, 32, 16, 8}
	cfg.FCLayers = len(cfg.Hidden)

	model, err := tensordimm.BuildModel(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}

	// The cluster quickstart: shard the model across 4 nodes, rows hashed
	// across shards (the placement for tables too large for one node),
	// 256 KiB of hot-row cache per shard.
	cl, err := tensordimm.NewCluster(model, tensordimm.ClusterConfig{
		Nodes:      4,
		Strategy:   tensordimm.RowWise,
		CacheBytes: 256 << 10,
		MaxBatch:   16,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()

	// Production embedding traffic is heavily skewed; Zipf(0.9) is the
	// published fit. The hot-row caches turn that skew into hit rate.
	gen, err := tensordimm.NewZipfWorkload(cfg.TableRows, 0.9, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Drive the router from 4 concurrent clients; check every merged
	// result against the golden single-model inference.
	const clients, perClient = 4, 50
	requests := make([][][]int, clients*perClient)
	for i := range requests {
		requests[i] = gen.Batch(cfg.Tables, 4, cfg.Reduction)
	}
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				rows := requests[c*perClient+i]
				got, err := cl.Infer(rows, 4)
				if err != nil {
					errs[c] = err
					return
				}
				want, err := model.Infer(rows, 4)
				if err != nil {
					errs[c] = err
					return
				}
				if !tensor.Equal(got, want) {
					errs[c] = fmt.Errorf("client %d: cluster result differs from golden", c)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("%d requests served and verified bit-identical to the golden model\n\n", clients*perClient)
	fmt.Println(cl.Metrics())
}
