// Quickstart: build a TensorNode, deploy a small recommender model, run an
// inference whose embedding layer executes near-memory via TensorISA, and
// verify the result against the pure-software golden model.
package main

import (
	"fmt"
	"log"

	"tensordimm"
	"tensordimm/internal/tensor"
)

func main() {
	// A TensorNode with 8 TensorDIMMs of 32 MiB each (the paper's node has
	// 32 x 128 GiB; the architecture is identical at any scale).
	nd, err := tensordimm.NewNode(8, 32<<20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("TensorNode: %d TensorDIMMs, %d MiB pool, %d B stripe\n",
		nd.NodeDim(), nd.CapacityBytes()>>20, nd.StripeBytes())

	// A YouTube-style workload, shrunk to demo size: 2 lookup tables,
	// 10-way average pooling, 128-dim embeddings (one stripe on 8 DIMMs).
	cfg := tensordimm.YouTube()
	cfg.TableRows = 2000
	cfg.EmbDim = 128
	cfg.Reduction = 10
	cfg.Hidden = []int{64, 32, 16, 8}

	model, err := tensordimm.BuildModel(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := tensordimm.Deploy(model, nd, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployed %s: %d tables x %d rows x %d dims (%.1f MiB of embeddings)\n",
		cfg.Name, cfg.Tables, cfg.TableRows, cfg.EmbDim,
		float64(cfg.TotalTableBytes())/(1<<20))

	// Draw a batch of Zipfian lookup indices and run inference: GATHER and
	// AVERAGE execute on the NMP cores inside the node; the MLP runs on
	// the "GPU" (host software here).
	gen, err := tensordimm.NewWorkload(cfg.TableRows, tensordimm.Zipfian, 7)
	if err != nil {
		log.Fatal(err)
	}
	const batch = 8
	indices := gen.Batch(cfg.Tables, batch, cfg.Reduction)

	probs, err := dep.Infer(indices, batch)
	if err != nil {
		log.Fatal(err)
	}
	golden, err := model.Infer(indices, batch)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nevent probabilities (near-memory embedding path):")
	for i := 0; i < batch; i++ {
		fmt.Printf("  sample %d: %.6f\n", i, probs.At(i, 0))
	}
	if tensor.Equal(probs, golden) {
		fmt.Println("\nOK: bit-identical to the pure-software golden model")
	} else {
		log.Fatal("MISMATCH against the golden model")
	}

	// Peek at the NMP datapath counters.
	s := nd.Stats()
	fmt.Printf("\nNMP activity: %d instructions retired, %d blocks read, %d blocks written, %d vector-ALU ops\n",
		s.Instructions, s.BlocksRead, s.BlocksWritten, s.ALUBlockOps)
}
