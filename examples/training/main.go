// Training: exercise the SCATTER_ADD TensorISA extension — the training
// direction the paper leaves to future work. A toy embedding-training loop
// runs entirely against the TensorNode: forward embedding lookups execute
// near-memory (GATHER/AVERAGE), and the embedding-table gradient updates
// accumulate near-memory too (SCATTER_ADD), so neither the gathered
// embeddings nor the per-row gradients ever cross the interconnect
// un-reduced.
package main

import (
	"fmt"
	"log"

	"tensordimm"
	"tensordimm/internal/tensor"
)

func main() {
	nd, err := tensordimm.NewNode(8, 32<<20)
	if err != nil {
		log.Fatal(err)
	}
	cfg := tensordimm.Facebook()
	cfg.Tables = 2 // shrink to demo size
	cfg.TableRows = 500
	cfg.EmbDim = 128
	cfg.Reduction = 4
	cfg.Hidden = []int{32, 16}
	cfg.FCLayers = 2

	model, err := tensordimm.BuildModel(cfg, 7)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := tensordimm.Deploy(model, nd, 8)
	if err != nil {
		log.Fatal(err)
	}
	gen, err := tensordimm.NewWorkload(cfg.TableRows, tensordimm.Zipfian, 3)
	if err != nil {
		log.Fatal(err)
	}

	const batch, steps, lr = 4, 5, 0.05
	fmt.Printf("training %d steps of batch %d on %s (2 tables x %d rows x %d dims)\n\n",
		steps, batch, cfg.Name, cfg.TableRows, cfg.EmbDim)

	for step := 0; step < steps; step++ {
		indices := gen.Batch(cfg.Tables, batch, cfg.Reduction)

		// Forward: embedding layer near-memory, MLP on the host/GPU.
		emb, err := dep.RunEmbedding(indices, batch)
		if err != nil {
			log.Fatal(err)
		}
		probs, err := model.InferFromEmbeddings(emb)
		if err != nil {
			log.Fatal(err)
		}

		// Toy objective: push every probability toward 1. The "gradient"
		// per looked-up row is lr * (1 - p) broadcast over the embedding —
		// enough to drive real SCATTER_ADD traffic with real data hazards
		// (Zipfian batches repeat hot rows).
		var loss float64
		for t := 0; t < cfg.Tables; t++ {
			rows := indices[t]
			grads := tensor.New(len(rows), cfg.EmbDim)
			for i, row := range grads.Data() {
				_ = row
				g := lr * (1 - probs.At((i/cfg.EmbDim)/cfg.Reduction%batch, 0))
				grads.Data()[i] = g
			}
			if err := dep.UpdateTable(t, rows, grads); err != nil {
				log.Fatal(err)
			}
		}
		for i := 0; i < batch; i++ {
			p := float64(probs.At(i, 0))
			loss += (1 - p) * (1 - p)
		}
		fmt.Printf("step %d: loss %.5f\n", step, loss/batch)
	}

	// Verify: node tables and golden tables must agree bit for bit after
	// all the near-memory updates.
	indices := gen.Batch(cfg.Tables, batch, cfg.Reduction)
	got, err := dep.RunEmbedding(indices, batch)
	if err != nil {
		log.Fatal(err)
	}
	want, err := dep.GoldenEmbedding(indices, batch)
	if err != nil {
		log.Fatal(err)
	}
	if !tensor.Equal(got, want) {
		log.Fatal("MISMATCH: node tables diverged from golden after training")
	}
	s := nd.Stats()
	fmt.Printf("\nOK: tables consistent after near-memory training\n")
	fmt.Printf("datapath totals: %d instructions, %d blocks read, %d written, %d ALU ops\n",
		s.Instructions, s.BlocksRead, s.BlocksWritten, s.ALUBlockOps)
}
