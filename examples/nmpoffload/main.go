// NMP offload: program a TensorNode directly with raw TensorISA — the level
// beneath the runtime. Hand-build GATHER/REDUCE/AVERAGE programs (Figure 9),
// broadcast them to the NMP cores, and inspect the datapath counters and
// the encoded instruction words.
package main

import (
	"fmt"
	"log"

	"tensordimm"
	"tensordimm/internal/isa"
)

func main() {
	const (
		dimms    = 4
		dim      = 64 // one stripe: 4 DIMMs x 16 lanes
		rows     = 64
		embBytes = dim * 4
	)
	nd, err := tensordimm.NewNode(dimms, 8<<20)
	if err != nil {
		log.Fatal(err)
	}

	// Hand-fill an embedding table: row r = [r, r, ...].
	tableBase, err := nd.Alloc(rows * embBytes)
	if err != nil {
		log.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		vec := make([]float32, dim)
		for i := range vec {
			vec[i] = float32(r)
		}
		if err := nd.WriteFloats(tableBase+uint64(r*embBytes), vec); err != nil {
			log.Fatal(err)
		}
	}

	// Program: gather 16 rows, then 4-way AVERAGE them into 4 outputs, and
	// also REDUCE the first two gathered quads element-wise.
	lookups := []int32{3, 5, 7, 9, 11, 13, 15, 17, 2, 4, 6, 8, 10, 20, 30, 40}
	idxBase := uint64(1 << 20)
	if err := nd.LoadIndices(idxBase, lookups); err != nil {
		log.Fatal(err)
	}
	gatherBase, _ := nd.Alloc(uint64(len(lookups)) * embBytes)
	avgBase, _ := nd.Alloc(4 * embBytes)
	redBase, _ := nd.Alloc(4 * embBytes)

	prog := tensordimm.Program{
		isa.Gather(tableBase/64, idxBase/64, gatherBase/64, uint32(len(lookups))),
		isa.Average(gatherBase/64, 4, avgBase/64, 4),
		isa.Reduce(isa.RAdd, gatherBase/64, gatherBase/64+4, redBase/64, 4),
	}

	fmt.Println("TensorISA program:")
	for _, in := range prog {
		w := in.Encode()
		fmt.Printf("  %-60s  word=% x...\n", in.String(), w[:12])
	}

	if err := nd.Execute(prog); err != nil {
		log.Fatal(err)
	}

	// AVERAGE output g = mean of lookups[4g..4g+3] in every lane.
	fmt.Println("\nAVERAGE results (lane 0 of each output):")
	for g := 0; g < 4; g++ {
		vals, err := nd.ReadFloats(avgBase+uint64(g*embBytes), 1)
		if err != nil {
			log.Fatal(err)
		}
		want := float32(lookups[4*g]+lookups[4*g+1]+lookups[4*g+2]+lookups[4*g+3]) / 4
		fmt.Printf("  group %d: got %6.2f, want %6.2f\n", g, vals[0], want)
		if vals[0] != want {
			log.Fatal("AVERAGE mismatch")
		}
	}

	// REDUCE output = gathered rows 0..3 plus rows 1..4 (stripe offset 4
	// blocks = one embedding on this node), element-wise.
	fmt.Println("\nREDUCE.add results (lane 0):")
	for i := 0; i < 4; i++ {
		vals, err := nd.ReadFloats(redBase+uint64(i*embBytes), 1)
		if err != nil {
			log.Fatal(err)
		}
		want := float32(lookups[i] + lookups[i+1])
		fmt.Printf("  elem %d: got %6.2f, want %6.2f\n", i, vals[0], want)
		if vals[0] != want {
			log.Fatal("REDUCE mismatch")
		}
	}

	s := nd.Stats()
	fmt.Printf("\ndatapath: %d instructions retired across %d NMP cores, %d blocks read, %d written, %d ALU block-ops\n",
		s.Instructions, nd.NodeDim(), s.BlocksRead, s.BlocksWritten, s.ALUBlockOps)
	a, b, c := nd.DIMM(0).Core().QueueHighWater()
	fmt.Printf("DIMM 0 SRAM queue high water: A=%d B=%d C=%d blocks (capacity %d each)\n", a, b, c, 8)
	fmt.Println("\nOK: raw TensorISA offload verified")
}
