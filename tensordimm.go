// Package tensordimm is a complete, self-contained reproduction of
// "TensorDIMM: A Practical Near-Memory Processing Architecture for
// Embeddings and Tensor Operations in Deep Learning" (Kwon, Lee & Rhu,
// MICRO-52, 2019), implemented in pure Go with no dependencies beyond the
// standard library.
//
// The library provides, as one vertically integrated stack:
//
//   - TensorISA (GATHER / REDUCE / AVERAGE), the paper's tensor instruction
//     set, with binary encoding and exact functional semantics;
//   - the TensorDIMM module: a buffered DIMM with a near-memory-processing
//     core (16-lane vector ALU, SRAM staging queues, NMP-local memory
//     controller) in its buffer device;
//   - TensorNode: a disaggregated pool of TensorDIMMs behind an
//     NVLink-class interconnect, with rank-interleaved tensor striping,
//     instruction broadcast and a pool memory allocator;
//   - a command-level DDR4 simulator (banks, ranks, channels, FR-FCFS,
//     refresh) that measures the effective memory bandwidth of the tensor
//     operations under both the conventional CPU organization and the
//     TensorDIMM organization;
//   - roofline CPU/GPU device models, PCIe/NVLink interconnect models, and
//     an end-to-end latency engine covering the paper's five recommender
//     design points (CPU-only, CPU-GPU, PMEM, TDIMM, GPU-only);
//   - the four recommender benchmarks of the evaluation (NCF, YouTube, Fox,
//     Facebook) as runnable models with real embedding tables and MLPs;
//   - one experiment driver per table and figure of the paper.
//
// # Quick start
//
//	nd, _ := tensordimm.NewNode(8, 64<<20)            // 8 TensorDIMMs
//	model, _ := tensordimm.BuildModel(cfg, 42)         // real tables + MLP
//	dep, _ := tensordimm.Deploy(model, nd, 64)         // upload, allocate
//	probs, _ := dep.Infer(indices, batch)              // NMP embedding + DNN
//
// # Serving
//
// The serve layer turns deployments into a concurrent inference server with
// dynamic micro-batching and latency accounting:
//
//	dep, _ := tensordimm.DeployConcurrent(model, nd, 64, 4, 8)
//	srv, _ := tensordimm.NewServer(tensordimm.ServeConfig{}, dep)
//	probs, _ := srv.Infer(indices, batch)              // safe from any goroutine
//	fmt.Println(srv.Metrics())                         // p50/p95/p99, throughput
//
// The steady-state serving path is allocation-free: callers that reuse a
// result buffer through Server.EmbedInto (or Cluster.EmbedInto,
// Deployment.RunEmbeddingInto) perform zero heap allocations per request,
// which the benchmark suite (internal/benchkit, cmd/benchjson) pins at
// 0 allocs/op in CI. See ARCHITECTURE.md, "Memory discipline".
//
// # Online updates
//
// Deployments, servers and clusters all accept SCATTER_ADD gradient
// updates while serving; caches stay coherent and reads stay bit-identical
// to the sequential golden model:
//
//	up := tensordimm.TableUpdate{Table: 0, Rows: rows, Grads: grads}
//	_ = srv.Update([]tensordimm.TableUpdate{up})       // ahead of co-batched reads
//	_ = cl.ApplyUpdates([]tensordimm.TableUpdate{up})  // routed + invalidated per shard
//
// See the examples directory for runnable programs, ARCHITECTURE.md for the
// layer stack, and EXPERIMENTS.md (in the repository root) for the
// paper-vs-reproduction record of every table and figure.
package tensordimm

import (
	"net/http"

	"tensordimm/internal/chaos"
	"tensordimm/internal/cluster"
	"tensordimm/internal/core"
	"tensordimm/internal/embed"
	"tensordimm/internal/experiments"
	"tensordimm/internal/isa"
	"tensordimm/internal/netclient"
	"tensordimm/internal/netserve"
	"tensordimm/internal/node"
	"tensordimm/internal/persist"
	"tensordimm/internal/recsys"
	"tensordimm/internal/remote"
	"tensordimm/internal/runtime"
	"tensordimm/internal/serve"
	"tensordimm/internal/telemetry"
	"tensordimm/internal/tensor"
	"tensordimm/internal/wire"
	"tensordimm/internal/workload"
)

// Core system types, aliased from the implementation packages so external
// users never need the internal import paths.
type (
	// Node is a TensorNode: a disaggregated pool of TensorDIMMs.
	Node = node.Node
	// NodeConfig sizes a TensorNode.
	NodeConfig = node.Config
	// ModelConfig describes one recommender benchmark (Table 2).
	ModelConfig = recsys.Config
	// Model is a materialized recommender: embedding tables plus MLP.
	Model = recsys.Model
	// Deployment is a model resident in a TensorNode pool.
	Deployment = runtime.Deployment
	// Platform is the evaluation platform (devices, links, node).
	Platform = core.Platform
	// DesignPoint is one of the five system designs of Section 6.
	DesignPoint = core.DesignPoint
	// Breakdown is a per-phase inference latency decomposition (Figure 13).
	Breakdown = core.Breakdown
	// Tensor is a dense row-major float32 tensor.
	Tensor = tensor.Tensor
	// Table is one embedding lookup table.
	Table = embed.Table
	// Instruction is one TensorISA instruction (Figure 8).
	Instruction = isa.Instruction
	// Program is an ordered TensorISA instruction sequence.
	Program = isa.Program
	// ExperimentResult is one reproduced table or figure.
	ExperimentResult = experiments.Result
	// WorkloadGenerator draws embedding lookup indices.
	WorkloadGenerator = workload.Generator
	// Server is a concurrent batched inference server over deployments.
	Server = serve.Server
	// ServeConfig tunes the server's batching and worker pool.
	ServeConfig = serve.Config
	// ServeMetrics is a snapshot of serving throughput and latency.
	ServeMetrics = serve.Metrics
	// TableUpdate is one table's slice of an online gradient-update batch,
	// accepted by Deployment.ApplyUpdates, Server.Update and
	// Cluster.ApplyUpdates.
	TableUpdate = runtime.TableUpdate
	// Cluster is a sharded multi-node serving system with hot-row caching.
	Cluster = cluster.Cluster
	// ClusterConfig sizes a cluster (nodes, strategy, caches, fabric).
	ClusterConfig = cluster.Config
	// ClusterMetrics is a snapshot of cluster routing, cache and fabric
	// counters.
	ClusterMetrics = cluster.Metrics
	// ShardMetrics is one shard's slice of ClusterMetrics.
	ShardMetrics = cluster.ShardMetrics
	// ShardStrategy selects table-wise or row-wise sharding.
	ShardStrategy = cluster.Strategy
	// NetServer is the TCP serving plane fronting a server or cluster.
	NetServer = netserve.Server
	// NetServeConfig tunes the network server (admission budget, frame cap).
	NetServeConfig = netserve.Config
	// NetServeMetrics is a snapshot of the network plane's counters.
	NetServeMetrics = netserve.Metrics
	// NetBackend is the serving engine a NetServer fronts.
	NetBackend = netserve.Backend
	// NetClient is the pooled, pipelined client of a NetServer.
	NetClient = netclient.Client
	// NetClientConfig tunes the client (pool size, dial retry).
	NetClientConfig = netclient.Config
	// NetServerError is an error frame returned by a server, carrying the
	// machine-readable wire code (e.g. OVERLOADED for shed requests).
	NetServerError = netclient.ServerError
	// NetGeometry is the model shape a server announces in its handshake.
	NetGeometry = wire.Geometry
	// NetRole is the serving role a server announces in its handshake
	// (RoleStandalone or RoleReplica).
	NetRole = wire.Role
	// Placement maps every (table, row) coordinate of a sharded model onto
	// its owning shard — shared by the in-process Cluster and the
	// RemoteCluster router, and by shard servers sizing their sub-batches.
	Placement = cluster.Placement
	// RemoteCluster routes requests over replica groups of remote shard
	// processes with hedged reads, failover, and sequenced update replay.
	RemoteCluster = remote.RemoteCluster
	// RemoteConfig describes the fleet a RemoteCluster routes over.
	RemoteConfig = remote.Config
	// RemoteMetrics is a snapshot of a RemoteCluster's routing, hedging,
	// failover and replay counters.
	RemoteMetrics = remote.Metrics
	// RemoteUnavailable is the typed fast-failure a RemoteCluster returns
	// when every replica of a shard is unreachable.
	RemoteUnavailable = remote.Unavailable
	// RemoteDeadlineExceeded is the typed failure a RemoteCluster returns
	// when a read exhausts its end-to-end deadline budget (RemoteConfig
	// .Deadline), retries included.
	RemoteDeadlineExceeded = remote.DeadlineExceeded
	// NetDeadlineError is the typed failure a NetClient returns when a call
	// exhausts its deadline budget (NetClientConfig.Deadline) client-side.
	NetDeadlineError = netclient.DeadlineError
	// ChaosConfig parameterizes a seeded chaos soak (RunChaos).
	ChaosConfig = chaos.Config
	// ChaosReport summarizes a completed chaos soak.
	ChaosReport = chaos.Report
	// TelemetryRegistry is the process-wide metrics registry of the
	// observability plane: counters, gauges, latency histograms and slow
	// request traces, snapshot on read and rendered as Prometheus text or
	// versioned JSON.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time, versioned capture of every
	// series a TelemetryRegistry holds.
	TelemetrySnapshot = telemetry.Snapshot
	// TelemetryLabel is one key="value" dimension on a telemetry series.
	TelemetryLabel = telemetry.Label
	// TelemetryHistogram is a lock-free fixed-bucket log-scale latency
	// histogram registered on a TelemetryRegistry.
	TelemetryHistogram = telemetry.Histogram
)

// RunChaos executes one seeded chaos soak against an in-process replica
// fleet: deterministic fault schedule, mixed traffic, bit-identity and
// durability invariants. The error is non-nil when an invariant was
// violated; the report summarizes the run either way.
func RunChaos(cfg ChaosConfig) (ChaosReport, error) { return chaos.Run(cfg) }

// NewTelemetry builds an empty metrics registry. Layers register onto it
// via their Instrument methods (Server, Cluster, RemoteCluster, chaos) or
// config fields (NetServeConfig.Registry, ChaosConfig.Registry); serve it
// with MetricsHandler.
func NewTelemetry() *TelemetryRegistry { return telemetry.NewRegistry() }

// MetricsHandler returns the admin HTTP handler for a registry: /metrics
// (Prometheus text), /metrics.json (versioned snapshot), /slow (recent
// slow-request traces), /stream (SSE snapshot feed) and /debug/pprof/*.
func MetricsHandler(reg *TelemetryRegistry) http.Handler { return telemetry.NewHandler(reg) }

// RegisterGoRuntime adds Go runtime series (goroutines, heap, GC cycles
// and pause histogram) to a registry. Call once per process.
func RegisterGoRuntime(reg *TelemetryRegistry) { telemetry.RegisterGoRuntime(reg) }

// The five design points (Section 6).
const (
	CPUOnly = core.CPUOnly
	CPUGPU  = core.CPUGPU
	PMEM    = core.PMEM
	TDIMM   = core.TDIMM
	GPUOnly = core.GPUOnly
)

// Index distributions for workload generation.
const (
	Uniform = workload.Uniform
	Zipfian = workload.Zipfian
)

// Machine-readable error codes a NetServerError carries.
const (
	// NetErrBadRequest marks a malformed or rejected request.
	NetErrBadRequest = wire.ErrBadRequest
	// NetErrOverloaded marks a request shed by admission control; retrying
	// after backoff is safe.
	NetErrOverloaded = wire.ErrOverloaded
	// NetErrShuttingDown marks a request refused by a draining server.
	NetErrShuttingDown = wire.ErrShuttingDown
	// NetErrInternal marks a backend execution failure.
	NetErrInternal = wire.ErrInternal
	// NetErrUnavailable marks an operation refused because a shard's whole
	// replica group is unreachable; RemoteCluster surfaces it locally as a
	// *RemoteUnavailable.
	NetErrUnavailable = wire.ErrUnavailable
	// NetErrDeadlineExceeded marks a request a server shed because its
	// propagated deadline budget had already expired on arrival or in queue.
	NetErrDeadlineExceeded = wire.ErrDeadlineExceeded
)

// Serving roles announced in the network handshake.
const (
	// RoleStandalone is a self-contained endpoint (the default).
	RoleStandalone = wire.RoleStandalone
	// RoleReplica marks a server as one replica of a shard behind a
	// RemoteCluster router, whose sequenced SYNC frames are its write path.
	RoleReplica = wire.RoleReplica
)

// Sharding strategies for NewCluster.
const (
	// TableWise places whole tables on shards round-robin (the default).
	TableWise = cluster.TableWise
	// RowWise hash-partitions every table's rows across all shards.
	RowWise = cluster.RowWise
)

// NewNode builds a TensorNode with the given number of TensorDIMMs, each
// holding perDIMMBytes of rank-local DRAM.
func NewNode(dimms int, perDIMMBytes uint64) (*Node, error) {
	return node.New(node.Config{DIMMs: dimms, PerDIMMBytes: perDIMMBytes})
}

// NewTensor allocates a zero-filled dense row-major float32 tensor — e.g.
// the gradient batch of a TableUpdate.
func NewTensor(shape ...int) *Tensor { return tensor.New(shape...) }

// Benchmark configurations of the paper's evaluation (Table 2).
func NCF() ModelConfig      { return recsys.NCF() }
func YouTube() ModelConfig  { return recsys.YouTube() }
func Fox() ModelConfig      { return recsys.Fox() }
func Facebook() ModelConfig { return recsys.Facebook() }

// Benchmarks returns all four evaluation workloads in the paper's order.
func Benchmarks() []ModelConfig { return recsys.All() }

// BuildModel materializes a recommender model with deterministic random
// parameters.
func BuildModel(cfg ModelConfig, seed int64) (*Model, error) {
	return recsys.Build(cfg, seed)
}

// Deploy uploads a model's embedding tables into a TensorNode and prepares
// scratch space for inference batches up to maxBatch.
func Deploy(m *Model, nd *Node, maxBatch int) (*Deployment, error) {
	return runtime.Deploy(m, nd, maxBatch)
}

// DeployConcurrent is Deploy with explicit concurrency sizing: slots bounds
// concurrent batches in flight, lanes bounds concurrent per-table programs.
// A serving setup typically uses slots = workers, lanes = slots x tables.
func DeployConcurrent(m *Model, nd *Node, maxBatch, slots, lanes int) (*Deployment, error) {
	return runtime.DeployConcurrent(m, nd, maxBatch, slots, lanes)
}

// NewServer starts a concurrent batched inference server over one or more
// deployments of the same model. Close the server to stop it and release
// the deployments.
func NewServer(cfg ServeConfig, deps ...*Deployment) (*Server, error) {
	return serve.New(cfg, deps...)
}

// NewCluster shards a model across cfg.Nodes TensorNodes with per-shard
// hot-row caches and a modeled NVSwitch fabric. Submit with Infer/Embed
// from any goroutine; merged outputs are bit-identical to a single-node
// deployment. Close the cluster to stop the shard servers and release
// their pools.
func NewCluster(m *Model, cfg ClusterConfig) (*Cluster, error) {
	return cluster.New(m, cfg)
}

// NewNetServer wraps a backend (ServeBackend or ClusterBackend) in the
// TCP serving plane. Start it with Serve on a listener; Close drains
// gracefully and leaves the backend running for its owner to close.
func NewNetServer(b NetBackend, cfg NetServeConfig) (*NetServer, error) {
	return netserve.New(b, cfg)
}

// ServeBackend adapts a single-node Server for NewNetServer.
func ServeBackend(s *Server) NetBackend { return netserve.ServerBackend(s) }

// ClusterBackend adapts a sharded Cluster for NewNetServer.
func ClusterBackend(c *Cluster) NetBackend { return netserve.ClusterBackend(c) }

// NewRemoteCluster dials every replica of every shard in cfg.Shards and
// returns a router exposing the same request surface as an in-process
// Cluster: reads hedge and fail over across each shard's replica group,
// updates fan out with sequenced replay, and results stay bit-identical
// to the golden model no matter which replica answers. Each shard process
// serves its slice via `tensorserve -listen -shard-id` (or any NetServer
// over a Deployment of ExtractShardModel's output with RoleReplica).
// With cfg.DataDir set the update log is durable: every update is written
// to a per-shard WAL before it fans out, full-table snapshots trim the
// log, and a router restarted from the same DataDir resumes its sequence
// and catches replicas up — serving state bit-identical to an uncrashed
// writer.
func NewRemoteCluster(cfg RemoteConfig) (*RemoteCluster, error) {
	return remote.New(cfg)
}

// ExtractShardModel materializes the gather-only model slice that shard s
// of `nodes` serves under the strategy's placement — the model a remote
// shard process deploys. Replicas of the same shard extract identical
// slices from the same deterministic build, so a restarted replica
// reproduces its pre-crash state by replaying the router's update log.
func ExtractShardModel(m *Model, strategy ShardStrategy, nodes, s int) (*Model, error) {
	return cluster.ExtractShardModel(m, strategy, nodes, s)
}

// NewPlacement precomputes the shard layout for a model of `tables`
// tables by `rows` rows split `nodes` ways — e.g. to size a shard
// server's sub-batch cap with MaxSub.
func NewPlacement(strategy ShardStrategy, nodes, tables, rows int) *Placement {
	return cluster.NewPlacement(strategy, nodes, tables, rows)
}

// SaveHotRows persists a shard's hot-row top-K (flat local row indices,
// hottest first — Cluster.HotRows's output) under dir, written atomically.
// A serving process calls it at drain so the next boot can WarmCache
// before admitting traffic; an empty list removes the file.
func SaveHotRows(dir string, shard int, rows []int) error {
	return persist.SaveHotRows(dir, shard, rows)
}

// LoadHotRows reads a shard's persisted hot-row list, hottest first. A
// missing or corrupt file yields (nil, nil) — pre-warming is advisory, so
// a cold start is the fallback, never a boot failure.
func LoadHotRows(dir string, shard int) ([]int, error) {
	return persist.LoadHotRows(dir, shard)
}

// DialNet connects a pooled, pipelined client to a NetServer. The
// returned client's Geometry carries the server's model shape; EmbedInto
// results are bit-identical to the backend's in-process EmbedInto.
func DialNet(addr string, cfg NetClientConfig) (*NetClient, error) {
	return netclient.Dial(addr, cfg)
}

// NewWorkload returns a deterministic index generator over tables of `rows`
// rows with the given popularity distribution.
func NewWorkload(rows int, dist workload.Distribution, seed int64) (*WorkloadGenerator, error) {
	return workload.NewGenerator(rows, dist, seed)
}

// NewZipfWorkload returns a deterministic index generator drawing from a
// Zipf distribution with exponent s (any s > 0, including the production
// fit s = 0.9) over tables of `rows` rows.
func NewZipfWorkload(rows int, s float64, seed int64) (*WorkloadGenerator, error) {
	return workload.NewZipfGenerator(rows, s, seed)
}

// DefaultPlatform returns the paper's evaluation platform: DGX-class host,
// V100-class GPU, 32-TensorDIMM TensorNode behind 150 GB/s NVLink (Table 1).
func DefaultPlatform() Platform { return core.DefaultPlatform() }

// DesignPoints lists the five designs in the paper's order.
func DesignPoints() []DesignPoint { return core.DesignPoints() }

// Simulate costs one inference of the workload at the given batch under the
// chosen design point, returning the Figure 13 latency breakdown.
func Simulate(dp DesignPoint, cfg ModelConfig, batch int, p Platform) Breakdown {
	return core.Simulate(dp, cfg, batch, p)
}

// Speedup returns how much faster design a is than design b on a workload.
func Speedup(a, b DesignPoint, cfg ModelConfig, batch int, p Platform) float64 {
	return core.Speedup(a, b, cfg, batch, p)
}

// SimulateShared costs one inference when n GPUs serve inferences
// concurrently against the shared platform resources (the TensorNode is an
// NVSwitch endpoint reachable by every GPU, Section 4.3).
func SimulateShared(dp DesignPoint, cfg ModelConfig, batch int, p Platform, nGPUs int) Breakdown {
	return core.SimulateShared(dp, cfg, batch, p, nGPUs)
}

// SharedThroughput returns aggregate inferences/second for n GPUs sharing
// the platform under the given design point.
func SharedThroughput(dp DesignPoint, cfg ModelConfig, batch int, p Platform, nGPUs int) float64 {
	return core.SharedThroughput(dp, cfg, batch, p, nGPUs)
}

// Experiments lists the identifiers of every reproduced table and figure.
func Experiments() []string { return experiments.IDs() }

// RunExperiment reproduces one table or figure by identifier (e.g. "fig11",
// "tab3"). Set full for the paper's complete parameter sweep on the
// simulation-heavy experiments; the default trimmed sweep preserves every
// trend at a fraction of the runtime.
func RunExperiment(id string, p Platform, full bool) (ExperimentResult, error) {
	scale := experiments.ScaleQuick
	if full {
		scale = experiments.ScaleFull
	}
	return experiments.ByID(id, p, scale)
}

// RunAllExperiments reproduces every table and figure in the paper's order.
func RunAllExperiments(p Platform, full bool) []ExperimentResult {
	scale := experiments.ScaleQuick
	if full {
		scale = experiments.ScaleFull
	}
	return experiments.All(p, scale)
}
