// Command figures regenerates every table and figure of the TensorDIMM
// paper's evaluation, printing each and writing text + CSV files under the
// output directory. This is the one-shot reproduction harness behind
// EXPERIMENTS.md.
//
// Usage:
//
//	figures [-full] [-out results]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"tensordimm"
)

func main() {
	var (
		full = flag.Bool("full", false, "run the paper's full parameter sweeps (slower)")
		out  = flag.String("out", "results", "output directory for .txt/.csv artifacts")
	)
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}

	p := tensordimm.DefaultPlatform()
	for _, res := range tensordimm.RunAllExperiments(p, *full) {
		fmt.Println(strings.Repeat("=", 72))
		fmt.Println(res.Table.String())
		for _, n := range res.Notes {
			fmt.Println("note:", n)
		}

		var sb strings.Builder
		sb.WriteString(res.Table.String())
		for _, n := range res.Notes {
			fmt.Fprintf(&sb, "note: %s\n", n)
		}
		txt := filepath.Join(*out, res.ID+".txt")
		if err := os.WriteFile(txt, []byte(sb.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		csvPath := filepath.Join(*out, res.ID+".csv")
		f, err := os.Create(csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		if err := res.Table.WriteCSV(f); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "figures:", err)
			os.Exit(1)
		}
		f.Close()
	}
	fmt.Println(strings.Repeat("=", 72))
	fmt.Printf("wrote %d artifacts to %s\n", len(tensordimm.Experiments()), *out)
}
