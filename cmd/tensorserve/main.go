// Command tensorserve drives the serving stack with a synthetic open-loop
// workload: requests arrive at a fixed rate regardless of completion (the
// arrival model of a production front-end), the server coalesces them into
// merged near-memory embedding executions, and the run ends with a
// throughput and latency report (p50/p95/p99).
//
// With -nodes N (N > 1) it drives the sharded cluster instead of a single
// node: the model is split table-wise or row-wise across N TensorNodes,
// each fronted by an optional hot-row cache, and the report adds per-shard
// sub-request, cache hit/miss and modeled fabric-transfer counters.
//
// With -update-frac F, that fraction of arrivals are SCATTER_ADD
// gradient-update batches instead of inferences; the report then includes
// update counts and (in cluster mode) per-shard update and cache
// invalidation counters.
//
// With -listen ADDR the process becomes a network server instead of a
// load driver: it builds the node or cluster, fronts it with the binary
// wire protocol, and serves until SIGINT/SIGTERM, when it drains
// gracefully and prints the serving report. With -connect ADDR it is the
// matching remote load driver: the model geometry comes from the server's
// handshake, the open-loop workload travels over TCP on a pool of
// pipelined connections, and the run ends with client-observed latency
// plus the server's own report. The two flags turn one binary into the
// classic two-terminal serving demo — and the CI network smoke test.
//
// With -listen plus -shard-id S the process serves one shard of a model
// split -nodes ways: it extracts shard S's gather-only slice from the
// deterministic model build and announces itself as a replica, ready to
// join a replica group. With -join "a1,a2/b1,b2" the process is the
// matching replica-group driver: each /-separated group lists one shard's
// replica endpoints, requests hedge and fail over inside each group, and
// updates fan out with sequenced replay — killing one replica of a
// multi-replica shard mid-run loses no requests. -replicas N asserts the
// intended group width up front. The driver exits non-zero if any request
// fails, which makes it the CI failover smoke test.
//
// With -data-dir DIR the -join driver's update log is durable: every
// update is appended to a per-shard WAL under DIR before it fans out, and
// full-table snapshots (every -snapshot-every entries) trim the log. A
// driver killed mid-run — SIGKILL included — and restarted with the same
// -data-dir resumes its update sequence and replays replicas back to the
// head, which is what the CI restart-replay smoke asserts. On a -listen
// cluster server, -data-dir instead persists each shard's hot-row top-K
// at drain and pre-warms the caches from it at the next boot, so a warm
// restart serves its first requests from cache.
//
// With -metrics-addr ADDR the process additionally serves a live admin
// endpoint while it runs (any mode except -connect, which reads the
// server's registry over the wire instead): /metrics is Prometheus text,
// /metrics.json the versioned snapshot, /slow the recent slow-request
// traces with per-hop timings, /stream an SSE feed of snapshots, and
// /debug/pprof/ the standard Go profiles.
//
// Usage:
//
//	tensorserve                                  # YouTube-class model, defaults
//	tensorserve -model facebook -rate 500 -duration 3s
//	tensorserve -model ncf -batch 4 -maxbatch 32 -workers 2
//	tensorserve -nodes 4 -shard row -cache-mb 4 -zipf -zipf-s 0.9
//	tensorserve -nodes 4 -cache-mb 4 -zipf -update-frac 0.2
//	tensorserve -listen :7077 -nodes 4 -cache-mb 4 -metrics-addr :9090
//	tensorserve -connect :7077 -rate 2000 -batch 4   # terminal 2: driver
//	curl -s localhost:9090/metrics | grep cache_hits # terminal 3: scrape
//
//	tensorserve -listen :7171 -nodes 2 -shard-id 0   # shard 0, replica A
//	tensorserve -listen :7172 -nodes 2 -shard-id 0   # shard 0, replica B
//	tensorserve -listen :7173 -nodes 2 -shard-id 1   # shard 1, replica A
//	tensorserve -listen :7174 -nodes 2 -shard-id 1   # shard 1, replica B
//	tensorserve -join ":7171,:7172/:7173,:7174" -replicas 2 -rate 500 -update-frac 0.2
//	tensorserve -join ... -data-dir /var/lib/tensordimm -snapshot-every 256
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"tensordimm"
	"tensordimm/internal/stats"
)

// flags holds every parsed flag so validation can reason about the whole
// set at once.
type flags struct {
	modelName string
	rows      int
	dim       int
	dimms     int
	batch     int
	rate      float64
	duration  time.Duration
	maxBatch  int
	maxDelay  time.Duration
	workers   int
	zipf      bool
	zipfS     float64
	seed      int64
	updFrac   float64

	nodes   int
	shard   string
	cacheMB float64

	listen   string
	connect  string
	conns    int
	inflight int

	shardID  int
	join     string
	replicas int
	sticky   bool
	linger   time.Duration
	deadline time.Duration

	dataDir   string
	snapEvery int

	chaosSeed int64

	metricsAddr string
}

func main() {
	var f flags
	flag.StringVar(&f.modelName, "model", "youtube", "benchmark model: ncf, youtube, fox, facebook")
	flag.IntVar(&f.rows, "rows", 4000, "rows per embedding table (paper-scale tables are hundreds of GBs; geometry is what matters)")
	flag.IntVar(&f.dim, "dim", 256, "embedding dimension (must be a multiple of dimms x 16)")
	flag.IntVar(&f.dimms, "dimms", 8, "TensorDIMMs per node")
	flag.IntVar(&f.batch, "batch", 1, "samples per client request")
	flag.Float64Var(&f.rate, "rate", 1000, "offered load in requests/second (open loop)")
	flag.DurationVar(&f.duration, "duration", 2*time.Second, "how long to offer load")
	flag.IntVar(&f.maxBatch, "maxbatch", 64, "merged-batch cap (samples)")
	flag.DurationVar(&f.maxDelay, "delay", 200*time.Microsecond, "micro-batching deadline")
	flag.IntVar(&f.workers, "workers", 4, "concurrent batch executors (= deployment slots)")
	flag.BoolVar(&f.zipf, "zipf", false, "draw Zipfian (skewed) lookup indices instead of uniform")
	flag.Float64Var(&f.zipfS, "zipf-s", 1.2, "Zipf exponent for -zipf (0.9 matches production skew fits)")
	flag.Int64Var(&f.seed, "seed", 1, "workload seed")
	flag.Float64Var(&f.updFrac, "update-frac", 0, "fraction of requests that are SCATTER_ADD gradient updates (0..1)")

	flag.IntVar(&f.nodes, "nodes", 1, "TensorNode shards; >1 selects cluster mode")
	flag.StringVar(&f.shard, "shard", "table", "cluster sharding: table (whole tables round-robin) or row (rows hashed across shards)")
	flag.Float64Var(&f.cacheMB, "cache-mb", 0, "per-shard hot-row cache capacity in MiB (0 disables; cluster mode only)")

	flag.StringVar(&f.listen, "listen", "", "serve the node/cluster over TCP on this address instead of driving load (e.g. :7077)")
	flag.StringVar(&f.connect, "connect", "", "drive load over TCP against a -listen server at this address (geometry comes from the handshake)")
	flag.IntVar(&f.conns, "conns", 2, "client connection pool size for -connect")
	flag.IntVar(&f.inflight, "inflight", 256, "admission budget for -listen: in-flight requests beyond it are shed with OVERLOADED")

	flag.IntVar(&f.shardID, "shard-id", -1, "with -listen: serve only this shard of a model split -nodes ways, announcing the replica role")
	flag.StringVar(&f.join, "join", "", "drive load against replica groups of -shard-id servers: one ,-separated address group per shard, groups separated by / (e.g. :7171,:7172/:7173,:7174)")
	flag.IntVar(&f.replicas, "replicas", 0, "with -join: require every serving shard's group to list exactly this many replicas (0 skips the check)")
	flag.BoolVar(&f.sticky, "sticky", false, "with -join: attach read-only (sticky-shard routing) — reads go straight to each shard's replica group and updates are refused; the fleet's writer owns the update log")
	flag.DurationVar(&f.linger, "linger", 0, "with -listen: per-connection response-coalescing linger window (0 selects the 50us default)")
	flag.StringVar(&f.dataDir, "data-dir", "", "durability root: with -join, each shard's update WAL and snapshots live here and a restarted driver resumes from them; with -listen -nodes N, hot-row lists persist here for cache pre-warming across restarts")
	flag.IntVar(&f.snapEvery, "snapshot-every", 0, "with -join: log entries per shard between full-table snapshots, which trim the update log (0 selects the default)")
	flag.DurationVar(&f.deadline, "deadline", 0, "with -connect or -join: end-to-end deadline budget per request, propagated to the server so both sides shed expired work (0 disables)")
	flag.Int64Var(&f.chaosSeed, "chaos-seed", 0, "run a seeded chaos soak against an in-process replica fleet instead of serving or driving load; -duration bounds the fault phase (0 disables)")
	flag.StringVar(&f.metricsAddr, "metrics-addr", "", "serve the admin endpoint on this address (e.g. 127.0.0.1:9090): /metrics (Prometheus text), /metrics.json, /slow, /stream (SSE), /debug/pprof/*; every mode except -connect, whose metrics come from the server over the wire")
	flag.Parse()

	if err := validate(f); err != nil {
		fmt.Fprintln(os.Stderr, "tensorserve:", err)
		os.Exit(2)
	}

	if f.chaosSeed != 0 {
		runChaos(f)
		return
	}
	if f.connect != "" {
		runConnect(f)
		return
	}
	if f.join != "" {
		runJoin(f)
		return
	}

	cfg, err := benchmark(f.modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tensorserve:", err)
		os.Exit(2)
	}
	cfg.TableRows = f.rows
	cfg.EmbDim = f.dim
	model, err := tensordimm.BuildModel(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}

	if f.listen != "" {
		runListen(model, cfg, f)
		return
	}

	gen, err := newGenerator(f, cfg.TableRows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model %s: %d tables x %d rows, dim %d, %d-way %s\n",
		cfg.Name, cfg.Tables, cfg.TableRows, cfg.EmbDim, cfg.Reduction, poolingName(cfg))
	if f.nodes > 1 {
		runCluster(model, cfg, gen, distName(f), f)
		return
	}
	runSingle(model, cfg, gen, distName(f), f)
}

// validate rejects inconsistent flag combinations up front with one
// actionable line, instead of a deep panic or a late failure mid-run.
func validate(f flags) error {
	set := map[string]bool{}
	flag.Visit(func(fl *flag.Flag) { set[fl.Name] = true })

	modes := 0
	for _, m := range []string{f.listen, f.connect, f.join} {
		if m != "" {
			modes++
		}
	}
	if modes > 1 {
		return fmt.Errorf("-listen, -connect and -join are mutually exclusive (one process serves, the other drives)")
	}
	if f.chaosSeed != 0 && modes > 0 {
		return fmt.Errorf("-chaos-seed cannot be combined with -listen, -connect or -join: the soak boots its own in-process fleet")
	}
	if f.deadline < 0 {
		return fmt.Errorf("-deadline %v must not be negative (0 disables)", f.deadline)
	}
	if f.metricsAddr != "" && f.connect != "" {
		return fmt.Errorf("-metrics-addr cannot be combined with -connect: the serving process owns the registry; the driver reads it over the wire (server report + snapshot)")
	}
	if set["deadline"] && f.connect == "" && f.join == "" {
		return fmt.Errorf("-deadline needs -connect or -join: the budget is stamped by the requesting client")
	}
	if f.connect == "" && f.join == "" {
		// Network-only flags in the in-process driver would be silently
		// ignored.
		if set["conns"] {
			return fmt.Errorf("-conns needs -connect or -join: the in-process driver opens no network connections")
		}
	}
	if f.listen == "" {
		if set["inflight"] {
			return fmt.Errorf("-inflight needs -listen: admission control lives in the network server")
		}
		if set["shard-id"] {
			return fmt.Errorf("-shard-id needs -listen: a shard replica is a serving process (drive its group with -join)")
		}
	}
	if f.join == "" && set["replicas"] {
		return fmt.Errorf("-replicas needs -join: it asserts the width of each replica group being driven")
	}
	if f.join == "" && f.sticky {
		return fmt.Errorf("-sticky needs -join: sticky-shard routing attaches to replica groups")
	}
	if f.sticky && f.updFrac > 0 {
		return fmt.Errorf("-sticky refuses -update-frac %g: a sticky (read-only) router routes no updates; drive them through the fleet's writer", f.updFrac)
	}
	if f.listen == "" && set["linger"] {
		return fmt.Errorf("-linger needs -listen: the coalescing window belongs to the serving process's per-connection writer")
	}
	if f.linger < 0 {
		return fmt.Errorf("-linger %v must not be negative", f.linger)
	}
	if f.snapEvery < 0 {
		return fmt.Errorf("-snapshot-every %d must not be negative (0 selects the default)", f.snapEvery)
	}
	if set["snapshot-every"] && f.join == "" {
		return fmt.Errorf("-snapshot-every needs -join: the update log lives in the replica-group driver")
	}
	if f.dataDir != "" {
		if f.sticky {
			return fmt.Errorf("-data-dir cannot be combined with -sticky: a read-only router owns no update log (the fleet's writer persists it)")
		}
		if f.join == "" && (f.listen == "" || f.nodes <= 1 || f.shardID >= 0) {
			return fmt.Errorf("-data-dir needs -join (durable update log) or -listen with -nodes N > 1 (persisted hot-row lists)")
		}
	}
	if f.join != "" {
		if err := validateJoin(f, set); err != nil {
			return err
		}
	}
	if f.connect != "" {
		// The server owns the model and topology; a -connect driver setting
		// them is a configuration that silently would not take effect.
		for _, name := range []string{"model", "rows", "dim", "dimms", "maxbatch", "delay", "workers", "nodes", "shard", "cache-mb", "inflight"} {
			if set[name] {
				return fmt.Errorf("-%s cannot be combined with -connect: the server defines the model, topology and limits (set it on the -listen side)", name)
			}
		}
		if f.conns < 1 {
			return fmt.Errorf("-conns %d must be at least 1", f.conns)
		}
	} else if f.join == "" {
		if stripe := f.dimms * 16; f.dimms < 1 || f.dim%stripe != 0 {
			return fmt.Errorf("-dim %d must be a positive multiple of dimms x 16 = %d", f.dim, f.dimms*16)
		}
		if f.rows < 1 {
			return fmt.Errorf("-rows %d must be at least 1", f.rows)
		}
		if f.nodes < 1 {
			return fmt.Errorf("-nodes %d must be at least 1", f.nodes)
		}
		if f.workers < 1 {
			return fmt.Errorf("-workers %d must be at least 1", f.workers)
		}
		if f.maxBatch < 1 {
			return fmt.Errorf("-maxbatch %d must be at least 1", f.maxBatch)
		}
		if s := strings.ToLower(f.shard); s != "table" && s != "row" {
			return fmt.Errorf("-shard %q must be table or row", f.shard)
		}
		if set["shard-id"] {
			if f.shardID < 0 || f.shardID >= f.nodes {
				return fmt.Errorf("-shard-id %d out of range: the model splits into -nodes %d shards", f.shardID, f.nodes)
			}
			if set["cache-mb"] {
				return fmt.Errorf("-cache-mb cannot be combined with -shard-id: the hot-row cache lives in the in-process cluster router, not in a shard replica")
			}
		} else if f.nodes == 1 {
			// Cluster-only flags on a single node would be silently ignored.
			if set["shard"] {
				return fmt.Errorf("-shard needs cluster mode: add -nodes N (N > 1) or serve one shard with -shard-id")
			}
			if set["cache-mb"] {
				return fmt.Errorf("-cache-mb needs cluster mode: add -nodes N (N > 1); the single-node server has no hot-row cache")
			}
		}
		if f.cacheMB < 0 {
			return fmt.Errorf("-cache-mb %g must not be negative", f.cacheMB)
		}
		if f.inflight < 1 {
			return fmt.Errorf("-inflight %d must be at least 1", f.inflight)
		}
	}
	if f.listen != "" {
		// The serving process offers no load; driver flags would be silently
		// ignored.
		for _, name := range []string{"batch", "rate", "duration", "zipf", "zipf-s", "seed", "update-frac", "conns"} {
			if set[name] {
				return fmt.Errorf("-%s cannot be combined with -listen: the workload is driven by the -connect side", name)
			}
		}
	} else {
		if f.batch < 1 {
			return fmt.Errorf("-batch %d must be at least 1", f.batch)
		}
		if f.connect == "" && f.batch > f.maxBatch {
			return fmt.Errorf("-batch %d exceeds -maxbatch %d: the server would reject every request", f.batch, f.maxBatch)
		}
		if f.rate <= 0 {
			return fmt.Errorf("-rate %g must be positive", f.rate)
		}
		if f.duration <= 0 {
			return fmt.Errorf("-duration %v must be positive", f.duration)
		}
		if f.updFrac < 0 || f.updFrac > 1 {
			return fmt.Errorf("-update-frac %g must be in [0, 1]", f.updFrac)
		}
		if f.zipfS <= 0 {
			return fmt.Errorf("-zipf-s %g must be positive", f.zipfS)
		}
		if set["zipf-s"] && !f.zipf {
			return fmt.Errorf("-zipf-s needs -zipf (uniform indices ignore the exponent)")
		}
	}
	return nil
}

// validateJoin checks the replica-group driver's flag set. Unlike
// -connect, the -join driver defines the model geometry locally (it must
// match what the shard servers were built with — every replica's
// handshake is validated against it), so the model flags stay legal;
// server-side sizing flags would be silently ignored and are rejected.
func validateJoin(f flags, set map[string]bool) error {
	for _, name := range []string{"dimms", "delay", "cache-mb", "inflight"} {
		if set[name] {
			return fmt.Errorf("-%s cannot be combined with -join: it sizes the serving processes (set it on the -listen -shard-id side)", name)
		}
	}
	if set["nodes"] {
		return fmt.Errorf("-nodes cannot be combined with -join: the shard count is the number of /-separated groups")
	}
	groups, err := parseJoin(f.join)
	if err != nil {
		return err
	}
	if f.replicas < 0 {
		return fmt.Errorf("-replicas %d must not be negative", f.replicas)
	}
	if f.replicas > 0 {
		for s, g := range groups {
			if len(g) > 0 && len(g) != f.replicas {
				return fmt.Errorf("-replicas %d: shard %d's group lists %d addresses", f.replicas, s, len(g))
			}
		}
	}
	if f.conns < 1 {
		return fmt.Errorf("-conns %d must be at least 1", f.conns)
	}
	if f.rows < 1 {
		return fmt.Errorf("-rows %d must be at least 1", f.rows)
	}
	if f.maxBatch < 1 {
		return fmt.Errorf("-maxbatch %d must be at least 1", f.maxBatch)
	}
	if f.workers < 1 {
		return fmt.Errorf("-workers %d must be at least 1", f.workers)
	}
	if s := strings.ToLower(f.shard); s != "table" && s != "row" {
		return fmt.Errorf("-shard %q must be table or row", f.shard)
	}
	return nil
}

// parseJoin splits a -join value into per-shard replica address groups:
// groups are separated by /, addresses within a group by ,. An empty
// group stands for a shard the placement leaves without rows (table-wise
// splits with more shards than tables).
func parseJoin(join string) ([][]string, error) {
	var groups [][]string
	for s, g := range strings.Split(join, "/") {
		g = strings.TrimSpace(g)
		if g == "" {
			groups = append(groups, nil)
			continue
		}
		var addrs []string
		for _, a := range strings.Split(g, ",") {
			a = strings.TrimSpace(a)
			if a == "" {
				return nil, fmt.Errorf("-join: shard %d's group %q has an empty address", s, g)
			}
			addrs = append(addrs, a)
		}
		groups = append(groups, addrs)
	}
	return groups, nil
}

// newGenerator builds the index generator the driver draws from.
func newGenerator(f flags, rows int) (*tensordimm.WorkloadGenerator, error) {
	if f.zipf {
		return tensordimm.NewZipfWorkload(rows, f.zipfS, f.seed)
	}
	return tensordimm.NewWorkload(rows, tensordimm.Uniform, f.seed)
}

// distName names the index distribution for reports.
func distName(f flags) string {
	if f.zipf {
		return fmt.Sprintf("zipf(%.2g)", f.zipfS)
	}
	return "uniform"
}

// shardStrategy maps the validated -shard flag to a strategy.
func shardStrategy(f flags) tensordimm.ShardStrategy {
	if strings.ToLower(f.shard) == "row" {
		return tensordimm.RowWise
	}
	return tensordimm.TableWise
}

// startMetrics boots the admin HTTP endpoint when -metrics-addr is set:
// it builds the process registry, adds the Go runtime series, and serves
// /metrics, /metrics.json, /slow, /stream and /debug/pprof/* on a
// background goroutine for the life of the process. Returns nil (no
// registry, layers skip instrumentation) when the flag is unset.
func startMetrics(f flags) *tensordimm.TelemetryRegistry {
	if f.metricsAddr == "" {
		return nil
	}
	reg := tensordimm.NewTelemetry()
	tensordimm.RegisterGoRuntime(reg)
	l, err := net.Listen("tcp", f.metricsAddr)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := http.Serve(l, tensordimm.MetricsHandler(reg)); err != nil {
			// The listener dies with the process; anything earlier is fatal
			// misconfiguration worth surfacing, not burying.
			fmt.Fprintln(os.Stderr, "tensorserve: metrics endpoint:", err)
		}
	}()
	fmt.Printf("metrics on http://%s/ (/metrics, /metrics.json, /slow, /stream, /debug/pprof/)\n", l.Addr())
	return reg
}

// makeCluster builds the sharded cluster the flags describe and prints
// its description — shared by the local driver and -listen modes so the
// two paths can never drift apart.
func makeCluster(model *tensordimm.Model, f flags, reg *tensordimm.TelemetryRegistry) *tensordimm.Cluster {
	strategy := shardStrategy(f)
	cl, err := tensordimm.NewCluster(model, tensordimm.ClusterConfig{
		Nodes:        f.nodes,
		Strategy:     strategy,
		DIMMsPerNode: f.dimms,
		MaxBatch:     f.maxBatch,
		Workers:      f.workers,
		MaxDelay:     f.maxDelay,
		CacheBytes:   int64(f.cacheMB * (1 << 20)),
	})
	if err != nil {
		log.Fatal(err)
	}
	if reg != nil {
		cl.Instrument(reg)
	}
	fmt.Printf("cluster: %d shards (%s), %d TensorDIMMs each, %.1f MiB cache per shard\n",
		f.nodes, strategy, f.dimms, f.cacheMB)
	fmt.Printf("shards: maxBatch %d samples/request, deadline %v, %d workers each\n",
		f.maxBatch, f.maxDelay, f.workers)
	return cl
}

// makeServer deploys one TensorNode and starts the batched server,
// printing the node/server description — shared like makeCluster.
func makeServer(model *tensordimm.Model, cfg tensordimm.ModelConfig, f flags, reg *tensordimm.TelemetryRegistry) (*tensordimm.Node, *tensordimm.Server) {
	nd, dep := deploySingle(model, cfg, f)
	srv, err := tensordimm.NewServer(tensordimm.ServeConfig{
		MaxBatch: f.maxBatch,
		MaxDelay: f.maxDelay,
		Workers:  f.workers,
	}, dep)
	if err != nil {
		log.Fatal(err)
	}
	if reg != nil {
		srv.Instrument(reg)
	}
	fmt.Printf("node: %d TensorDIMMs, %.0f MiB pool, %d B stripe\n",
		nd.NodeDim(), float64(nd.CapacityBytes())/(1<<20), nd.StripeBytes())
	fmt.Printf("server: maxBatch %d, deadline %v, %d workers, %d lanes\n",
		f.maxBatch, f.maxDelay, f.workers, f.workers*cfg.Tables)
	return nd, srv
}

// makeShardServer extracts shard f.shardID's gather-only slice of the
// deterministic model build and deploys it on one TensorNode behind a
// batched server whose request cap is exactly the placement's largest
// possible sub-request — the geometry a replica router validates its
// handshake against. Replicas of the same shard run this same path from
// the same seed, so a restarted replica reproduces its pre-crash state by
// replaying the router's update log.
func makeShardServer(model *tensordimm.Model, cfg tensordimm.ModelConfig, f flags, reg *tensordimm.TelemetryRegistry) (*tensordimm.Node, *tensordimm.Server) {
	strategy := shardStrategy(f)
	place := tensordimm.NewPlacement(strategy, f.nodes, cfg.Tables, cfg.TableRows)
	if place.LocalRows(f.shardID) == 0 {
		log.Fatalf("shard %d holds no rows under %v placement (%d tables across %d shards); it needs no replicas",
			f.shardID, strategy, cfg.Tables, f.nodes)
	}
	shardModel, err := tensordimm.ExtractShardModel(model, strategy, f.nodes, f.shardID)
	if err != nil {
		log.Fatal(err)
	}
	fs := f
	fs.maxBatch = place.MaxSub(f.shardID, f.maxBatch, cfg.Reduction)
	nd, dep := deploySingle(shardModel, shardModel.Cfg, fs)
	srv, err := tensordimm.NewServer(tensordimm.ServeConfig{
		MaxBatch: fs.maxBatch,
		MaxDelay: f.maxDelay,
		Workers:  f.workers,
	}, dep)
	if err != nil {
		log.Fatal(err)
	}
	if reg != nil {
		srv.Instrument(reg)
	}
	fmt.Printf("shard %d of %d (%s): %d local rows, sub-batch cap %d samples\n",
		f.shardID, f.nodes, strategy, shardModel.Cfg.TableRows, fs.maxBatch)
	return nd, srv
}

// buildBackend constructs the serving backend the flags describe: one
// shard's slice for -shard-id, a single batched server for -nodes 1, the
// sharded cluster otherwise. It returns the backend, the cluster when one
// was built (nil otherwise — warm-restart hooks need it), and the close
// function.
func buildBackend(model *tensordimm.Model, cfg tensordimm.ModelConfig, f flags, reg *tensordimm.TelemetryRegistry) (tensordimm.NetBackend, *tensordimm.Cluster, func() error) {
	if f.shardID >= 0 {
		nd, srv := makeShardServer(model, cfg, f, reg)
		closeAll := func() error {
			err := srv.Close()
			nd.Close()
			return err
		}
		return tensordimm.ServeBackend(srv), nil, closeAll
	}
	if f.nodes > 1 {
		cl := makeCluster(model, f, reg)
		return tensordimm.ClusterBackend(cl), cl, cl.Close
	}
	nd, srv := makeServer(model, cfg, f, reg)
	closeAll := func() error {
		err := srv.Close()
		nd.Close()
		return err
	}
	return tensordimm.ServeBackend(srv), nil, closeAll
}

// hotRowsTopK bounds how many hot rows a cluster shard persists at drain;
// WarmCache additionally clamps the warm set to what the cache can hold.
const hotRowsTopK = 4096

// warmCluster pre-populates every shard's hot-row cache from the lists a
// previous run persisted under dir. Called before the listener starts, so
// the first admitted requests already hit. Best-effort: a missing or stale
// list just warms fewer rows.
func warmCluster(cl *tensordimm.Cluster, dir string, nodes int) {
	total := 0
	for s := 0; s < nodes; s++ {
		rows, err := tensordimm.LoadHotRows(dir, s)
		if err != nil || len(rows) == 0 {
			continue
		}
		n, err := cl.WarmCache(s, rows)
		if err != nil {
			log.Fatal(err) // a gather failure at boot is a broken shard
		}
		total += n
	}
	if total > 0 {
		fmt.Printf("warm restart: pre-populated %d hot rows from %s\n", total, dir)
	}
}

// persistHotRows writes every shard's hot-row top-K under dir at drain.
func persistHotRows(cl *tensordimm.Cluster, dir string, nodes int) {
	for s := 0; s < nodes; s++ {
		if err := tensordimm.SaveHotRows(dir, s, cl.HotRows(s, hotRowsTopK)); err != nil {
			fmt.Fprintln(os.Stderr, "tensorserve: persisting hot rows:", err)
			return
		}
	}
}

// runListen serves the node or cluster over TCP until SIGINT/SIGTERM,
// then drains gracefully and prints the serving report.
func runListen(model *tensordimm.Model, cfg tensordimm.ModelConfig, f flags) {
	fmt.Printf("model %s: %d tables x %d rows, dim %d, %d-way %s\n",
		cfg.Name, cfg.Tables, cfg.TableRows, cfg.EmbDim, cfg.Reduction, poolingName(cfg))
	reg := startMetrics(f)
	backend, cl, closeBackend := buildBackend(model, cfg, f, reg)
	if cl != nil && f.dataDir != "" {
		warmCluster(cl, f.dataDir, f.nodes)
	}
	role := tensordimm.RoleStandalone
	if f.shardID >= 0 {
		role = tensordimm.RoleReplica
	}
	srv, err := tensordimm.NewNetServer(backend, tensordimm.NetServeConfig{MaxInflight: f.inflight, Role: role, FlushLinger: f.linger, Registry: reg})
	if err != nil {
		log.Fatal(err)
	}
	l, err := net.Listen("tcp", f.listen)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("listening on %s (admission budget %d in-flight); SIGINT/SIGTERM drains and exits\n",
		l.Addr(), f.inflight)

	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		fmt.Printf("\n%s: draining in-flight requests...\n", sig)
	case err := <-serveDone:
		if err != nil {
			log.Fatal(err)
		}
	}
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
	if cl != nil && f.dataDir != "" {
		persistHotRows(cl, f.dataDir, f.nodes)
	}
	fmt.Println(srv.Metrics())
	fmt.Println(backend.MetricsText())
	if err := closeBackend(); err != nil {
		log.Fatal(err)
	}
}

// runConnect drives the open-loop workload over TCP against a -listen
// server. Geometry (tables, reduction, dim, rows, max batch) comes from
// the server's handshake. Shed requests (OVERLOADED) are counted, not
// fatal — under open-loop overload they are the admission control working
// as designed. Exits non-zero if nothing completed.
func runConnect(f flags) {
	cl, err := tensordimm.DialNet(f.connect, tensordimm.NetClientConfig{
		Conns:    f.conns,
		RetryFor: 5 * time.Second,
		Deadline: f.deadline,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cl.Close()
	g := cl.Geometry()
	fmt.Printf("connected to %s over %d conns: %d tables x %d rows, dim %d, reduction %d, max batch %d\n",
		f.connect, f.conns, g.Tables, g.TableRows, g.Dim, g.Reduction, g.MaxBatch)
	batch := f.batch
	if batch > g.MaxBatch {
		fmt.Fprintf(os.Stderr, "tensorserve: -batch %d exceeds the server's max batch %d\n", batch, g.MaxBatch)
		os.Exit(2)
	}
	gen, err := newGenerator(f, g.TableRows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offering %.0f req/s x %v, batch %d, %s indices, %.0f%% updates (open loop over TCP)\n\n",
		f.rate, f.duration, batch, distName(f), 100*f.updFrac)

	var (
		wg        sync.WaitGroup
		mu        sync.Mutex
		completed int
		shed      int
		expired   int
		failed    int
		firstErr  error
		lat       stats.Latency
	)
	interval := float64(time.Second) / f.rate
	rng := rand.New(rand.NewSource(f.seed))
	start := time.Now()
	offered := 0
	for {
		due := start.Add(time.Duration(float64(offered) * interval))
		if due.Sub(start) >= f.duration {
			break
		}
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		isUpdate := rng.Float64() < f.updFrac
		var rows [][]int
		var ups []tensordimm.TableUpdate
		if isUpdate {
			urows := gen.Indices(batch)
			grads := tensordimm.NewTensor(len(urows), g.Dim)
			for i := range grads.Data() {
				grads.Data()[i] = rng.Float32()*0.02 - 0.01
			}
			ups = []tensordimm.TableUpdate{{Table: rng.Intn(g.Tables), Rows: urows, Grads: grads}}
		} else {
			rows = gen.Batch(g.Tables, batch, g.Reduction)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			var err error
			if isUpdate {
				err = cl.Update(ups)
			} else {
				_, err = cl.Embed(rows, batch)
			}
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				completed++
				lat.Observe(time.Since(t0).Seconds())
			case isShed(err):
				shed++
			case isDeadline(err):
				// Under open-loop overload a -deadline driver expects expired
				// requests: both sides shedding them is the feature working.
				expired++
			default:
				failed++
				if firstErr == nil {
					firstErr = err
				}
			}
		}()
		offered++
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("offered %d requests: %d completed, %d shed (OVERLOADED), %d expired (DEADLINE_EXCEEDED), %d failed\n",
		offered, completed, shed, expired, failed)
	fmt.Printf("sustained %.0f req/s against %.0f req/s offered\n",
		float64(completed)/elapsed.Seconds(), f.rate)
	fmt.Printf("client-observed latency  %s\n", lat.Summary())
	if firstErr != nil {
		fmt.Fprintln(os.Stderr, "tensorserve: first failure:", firstErr)
	}
	if snap, report, err := cl.MetricsSnapshot(); err == nil {
		fmt.Printf("\n--- server report ---\n%s\n", report)
		if snap != nil && len(snap.Counters) > 0 {
			// Exact counters from the server's telemetry registry (wire
			// revision 6) — the same series its /metrics endpoint exports.
			// An uninstrumented server (-listen without -metrics-addr) ships
			// an empty snapshot; only the human report applies then.
			reqs, _ := snap.Counter("tensordimm_net_requests_total")
			shedN, _ := snap.Counter("tensordimm_net_shed_total")
			fmt.Printf("server telemetry: %d requests, %d shed", reqs, shedN)
			if h, ok := snap.Histogram("tensordimm_net_request_seconds"); ok && h.Count > 0 {
				fmt.Printf(", exec p50 %.3gms p99 %.3gms", h.P50*1e3, h.P99*1e3)
			}
			fmt.Println()
		}
	} else {
		fmt.Fprintln(os.Stderr, "tensorserve: fetching server metrics:", err)
	}
	if completed == 0 || failed > 0 {
		os.Exit(1)
	}
}

// runJoin drives the open-loop workload against replica groups of remote
// shard processes through the failover router. Unlike -connect, there is
// no shedding to tolerate at this level: the router retries sheds and
// fails over transport losses internally, so any surfaced error is a lost
// request and the run exits non-zero — which is what the CI failover
// smoke asserts while SIGKILLing a replica mid-run.
func runJoin(f flags) {
	cfg, err := benchmark(f.modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tensorserve:", err)
		os.Exit(2)
	}
	cfg.TableRows = f.rows
	cfg.EmbDim = f.dim
	groups, err := parseJoin(f.join) // validated; re-parsed for the addresses
	if err != nil {
		log.Fatal(err)
	}
	rc, err := tensordimm.NewRemoteCluster(tensordimm.RemoteConfig{
		Model:         cfg,
		Strategy:      shardStrategy(f),
		Shards:        groups,
		MaxBatch:      f.maxBatch,
		Workers:       f.workers,
		Conns:         f.conns,
		RetryFor:      5 * time.Second,
		ReadOnly:      f.sticky,
		DataDir:       f.dataDir,
		SnapshotEvery: f.snapEvery,
		Deadline:      f.deadline,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer rc.Close()
	if reg := startMetrics(f); reg != nil {
		rc.Instrument(reg)
	}
	replicas := 0
	for _, g := range groups {
		replicas += len(g)
	}
	mode := ""
	if f.sticky {
		mode = ", sticky read-only"
	}
	if f.dataDir != "" {
		mode = fmt.Sprintf(", durable log at %s", f.dataDir)
	}
	fmt.Printf("joined %d shards (%s%s) over %d replicas: %d tables x %d rows, dim %d, %d-way %s\n",
		len(groups), shardStrategy(f), mode, replicas, cfg.Tables, cfg.TableRows, cfg.EmbDim,
		cfg.Reduction, poolingName(cfg))
	gen, err := newGenerator(f, cfg.TableRows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("offering %.0f req/s x %v, batch %d, %s indices, %.0f%% updates (open loop over replica groups)\n\n",
		f.rate, f.duration, f.batch, distName(f), 100*f.updFrac)

	var (
		wg          sync.WaitGroup
		mu          sync.Mutex
		completed   int
		expired     int
		failed      int
		unavailable int
		firstErr    error
		lat         stats.Latency
	)
	interval := float64(time.Second) / f.rate
	rng := rand.New(rand.NewSource(f.seed))
	start := time.Now()
	offered := 0
	for {
		due := start.Add(time.Duration(float64(offered) * interval))
		if due.Sub(start) >= f.duration {
			break
		}
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		isUpdate := rng.Float64() < f.updFrac
		var rows [][]int
		var ups []tensordimm.TableUpdate
		if isUpdate {
			urows := gen.Indices(f.batch)
			grads := tensordimm.NewTensor(len(urows), cfg.EmbDim)
			for i := range grads.Data() {
				grads.Data()[i] = rng.Float32()*0.02 - 0.01
			}
			ups = []tensordimm.TableUpdate{{Table: rng.Intn(cfg.Tables), Rows: urows, Grads: grads}}
		} else {
			rows = gen.Batch(cfg.Tables, f.batch, cfg.Reduction)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			var err error
			if isUpdate {
				err = rc.ApplyUpdates(ups)
			} else {
				_, err = rc.Embed(rows, f.batch)
			}
			mu.Lock()
			defer mu.Unlock()
			if err == nil {
				completed++
				lat.Observe(time.Since(t0).Seconds())
				return
			}
			if isDeadline(err) {
				// The router surfaces a typed budget exhaustion instead of
				// retrying forever — expected under -deadline, not a loss.
				expired++
				return
			}
			failed++
			var un *tensordimm.RemoteUnavailable
			if errors.As(err, &un) {
				unavailable++
			}
			if firstErr == nil {
				firstErr = err
			}
		}()
		offered++
	}
	wg.Wait()
	elapsed := time.Since(start)

	fmt.Printf("offered %d requests: %d completed, %d expired (deadline), %d failed (%d with a whole replica group down)\n",
		offered, completed, expired, failed, unavailable)
	fmt.Printf("sustained %.0f req/s against %.0f req/s offered\n",
		float64(completed)/elapsed.Seconds(), f.rate)
	fmt.Printf("client-observed latency  %s\n", lat.Summary())
	fmt.Println(rc.Metrics())
	if firstErr != nil {
		fmt.Fprintln(os.Stderr, "tensorserve: first failure:", firstErr)
	}
	if completed == 0 || failed > 0 {
		os.Exit(1)
	}
}

// isShed reports whether err is an OVERLOADED error frame — expected
// fail-fast behavior under open-loop overload.
func isShed(err error) bool {
	se, ok := err.(*tensordimm.NetServerError)
	return ok && se.Code == tensordimm.NetErrOverloaded
}

// isDeadline reports whether err is a deadline-budget exhaustion, in any
// of its typed forms: tripped client-side before the reply, shed by the
// server after the propagated budget expired, or surfaced by the replica
// router after retries ran the budget out.
func isDeadline(err error) bool {
	var dl *tensordimm.NetDeadlineError
	var de *tensordimm.RemoteDeadlineExceeded
	var se *tensordimm.NetServerError
	if errors.As(err, &dl) || errors.As(err, &de) {
		return true
	}
	return errors.As(err, &se) && se.Code == tensordimm.NetErrDeadlineExceeded
}

// runChaos runs the seeded chaos soak: an in-process replica fleet under
// a deterministic fault schedule, with bit-identity, durability and
// deadline invariants checked throughout. Exits non-zero on any
// violation, which makes it the CI chaos smoke.
func runChaos(f flags) {
	fmt.Printf("chaos soak: seed %d, %v fault phase\n", f.chaosSeed, f.duration)
	rep, err := tensordimm.RunChaos(tensordimm.ChaosConfig{
		Seed:     f.chaosSeed,
		Duration: f.duration,
		Log:      func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
		Registry: startMetrics(f),
	})
	fmt.Println(rep)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tensorserve:", err)
		os.Exit(1)
	}
}

// deploySingle sizes and uploads one TensorNode deployment.
func deploySingle(model *tensordimm.Model, cfg tensordimm.ModelConfig, f flags) (*tensordimm.Node, *tensordimm.Deployment) {
	// Size the pool: tables + per-lane gather scratch + per-slot outputs,
	// with 2x slack for allocator alignment.
	lanes := f.workers * cfg.Tables
	embBytes := uint64(cfg.EmbBytes())
	need := uint64(cfg.TotalTableBytes()) +
		uint64(lanes)*2*uint64(f.maxBatch)*uint64(cfg.Reduction)*embBytes +
		uint64(f.workers)*uint64(cfg.Tables)*uint64(f.maxBatch)*embBytes
	perDIMM := (2*need/uint64(f.dimms) + 65535) / 65536 * 65536

	nd, err := tensordimm.NewNode(f.dimms, perDIMM)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := tensordimm.DeployConcurrent(model, nd, f.maxBatch, f.workers, lanes)
	if err != nil {
		log.Fatal(err)
	}
	return nd, dep
}

// runSingle drives one TensorNode behind a batched server (the PR 1 path).
func runSingle(model *tensordimm.Model, cfg tensordimm.ModelConfig,
	gen *tensordimm.WorkloadGenerator, dist string, f flags) {

	nd, srv := makeServer(model, cfg, f, startMetrics(f))

	offered := offerLoad(cfg, gen, dist, f.batch, f.rate, f.duration, f.updFrac, f.seed, srv.Infer, srv.Update)
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}

	m := srv.Metrics()
	fmt.Println(m)
	fmt.Printf("\noffered %d requests, completed %d (sustained %.0f req/s against %.0f req/s offered)\n",
		offered, m.Requests, float64(m.Requests)/m.Uptime.Seconds(), f.rate)
	s := nd.Stats()
	fmt.Printf("NMP activity: %d instructions, %d blocks read, %d blocks written, %d ALU block ops\n",
		s.Instructions, s.BlocksRead, s.BlocksWritten, s.ALUBlockOps)
	nd.Close()
}

// runCluster drives the sharded multi-node cluster.
func runCluster(model *tensordimm.Model, cfg tensordimm.ModelConfig,
	gen *tensordimm.WorkloadGenerator, dist string, f flags) {

	cl := makeCluster(model, f, startMetrics(f))

	offered := offerLoad(cfg, gen, dist, f.batch, f.rate, f.duration, f.updFrac, f.seed, cl.Infer, cl.ApplyUpdates)
	if err := cl.Close(); err != nil {
		log.Fatal(err)
	}

	m := cl.Metrics()
	fmt.Println(m)
	fmt.Printf("offered %d requests, completed %d (sustained %.0f req/s against %.0f req/s offered)\n",
		offered, m.Requests, float64(m.Requests)/m.Uptime.Seconds(), f.rate)
}

// offerLoad submits requests open loop on an absolute schedule: arrival n
// is due at start + n/rate, and late arrivals fire immediately in a
// catch-up burst, so a slow server cannot throttle the offered load. With
// updFrac > 0 that fraction of arrivals are SCATTER_ADD gradient-update
// batches (batch rows against one random table) instead of inferences —
// the asynchronous-training traffic an online recommender serves. Each
// request runs in its own goroutine; indices are drawn in the arrival loop
// (the generator is sequential). Returns the number of requests offered.
func offerLoad(cfg tensordimm.ModelConfig, gen *tensordimm.WorkloadGenerator,
	dist string, batch int, rate float64, duration time.Duration,
	updFrac float64, seed int64,
	infer func([][]int, int) (*tensordimm.Tensor, error),
	update func([]tensordimm.TableUpdate) error) int {

	fmt.Printf("offering %.0f req/s x %v, batch %d, %s indices, %.0f%% updates (open loop)\n\n",
		rate, duration, batch, dist, 100*updFrac)
	interval := float64(time.Second) / rate
	rng := rand.New(rand.NewSource(seed))
	start := time.Now()
	var wg sync.WaitGroup
	var submitErr error
	var errOnce sync.Once
	offered := 0
	for {
		due := start.Add(time.Duration(float64(offered) * interval))
		if due.Sub(start) >= duration {
			break
		}
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		if rng.Float64() < updFrac {
			urows := gen.Indices(batch)
			grads := tensordimm.NewTensor(len(urows), cfg.EmbDim)
			for i := range grads.Data() {
				grads.Data()[i] = rng.Float32()*0.02 - 0.01
			}
			ups := []tensordimm.TableUpdate{{Table: rng.Intn(cfg.Tables), Rows: urows, Grads: grads}}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := update(ups); err != nil {
					errOnce.Do(func() { submitErr = err })
				}
			}()
		} else {
			rows := gen.Batch(cfg.Tables, batch, cfg.Reduction)
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := infer(rows, batch); err != nil {
					errOnce.Do(func() { submitErr = err })
				}
			}()
		}
		offered++
	}
	wg.Wait()
	if submitErr != nil {
		log.Fatal(submitErr)
	}
	return offered
}

func benchmark(name string) (tensordimm.ModelConfig, error) {
	switch strings.ToLower(name) {
	case "ncf":
		return tensordimm.NCF(), nil
	case "youtube":
		return tensordimm.YouTube(), nil
	case "fox":
		return tensordimm.Fox(), nil
	case "facebook":
		return tensordimm.Facebook(), nil
	default:
		return tensordimm.ModelConfig{}, fmt.Errorf("unknown model %q (want ncf, youtube, fox, facebook)", name)
	}
}

func poolingName(cfg tensordimm.ModelConfig) string {
	if cfg.Mean {
		return "mean pooling"
	}
	if cfg.Reduction == 1 {
		return "no pooling"
	}
	return "reduce pooling"
}
