// Command tensorserve drives the serving stack with a synthetic open-loop
// workload: requests arrive at a fixed rate regardless of completion (the
// arrival model of a production front-end), the server coalesces them into
// merged near-memory embedding executions, and the run ends with a
// throughput and latency report (p50/p95/p99).
//
// With -nodes N (N > 1) it drives the sharded cluster instead of a single
// node: the model is split table-wise or row-wise across N TensorNodes,
// each fronted by an optional hot-row cache, and the report adds per-shard
// sub-request, cache hit/miss and modeled fabric-transfer counters.
//
// With -update-frac F, that fraction of arrivals are SCATTER_ADD
// gradient-update batches instead of inferences; the report then includes
// update counts and (in cluster mode) per-shard update and cache
// invalidation counters.
//
// Usage:
//
//	tensorserve                                  # YouTube-class model, defaults
//	tensorserve -model facebook -rate 500 -duration 3s
//	tensorserve -model ncf -batch 4 -maxbatch 32 -workers 2
//	tensorserve -nodes 4 -shard row -cache-mb 4 -zipf -zipf-s 0.9
//	tensorserve -nodes 4 -cache-mb 4 -zipf -update-frac 0.2
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"
	"sync"
	"time"

	"tensordimm"
)

func main() {
	var (
		modelName = flag.String("model", "youtube", "benchmark model: ncf, youtube, fox, facebook")
		rows      = flag.Int("rows", 4000, "rows per embedding table (paper-scale tables are hundreds of GBs; geometry is what matters)")
		dim       = flag.Int("dim", 256, "embedding dimension (must be a multiple of dimms x 16)")
		dimms     = flag.Int("dimms", 8, "TensorDIMMs per node")
		batch     = flag.Int("batch", 1, "samples per client request")
		rate      = flag.Float64("rate", 1000, "offered load in requests/second (open loop)")
		duration  = flag.Duration("duration", 2*time.Second, "how long to offer load")
		maxBatch  = flag.Int("maxbatch", 64, "merged-batch cap (samples)")
		maxDelay  = flag.Duration("delay", 200*time.Microsecond, "micro-batching deadline")
		workers   = flag.Int("workers", 4, "concurrent batch executors (= deployment slots)")
		zipf      = flag.Bool("zipf", false, "draw Zipfian (skewed) lookup indices instead of uniform")
		zipfS     = flag.Float64("zipf-s", 1.2, "Zipf exponent for -zipf (0.9 matches production skew fits)")
		seed      = flag.Int64("seed", 1, "workload seed")
		updFrac   = flag.Float64("update-frac", 0, "fraction of requests that are SCATTER_ADD gradient updates (0..1)")

		nodes   = flag.Int("nodes", 1, "TensorNode shards; >1 selects cluster mode")
		shard   = flag.String("shard", "table", "cluster sharding: table (whole tables round-robin) or row (rows hashed across shards)")
		cacheMB = flag.Float64("cache-mb", 0, "per-shard hot-row cache capacity in MiB (0 disables; cluster mode only)")
	)
	flag.Parse()

	cfg, err := benchmark(*modelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tensorserve:", err)
		os.Exit(2)
	}
	cfg.TableRows = *rows
	cfg.EmbDim = *dim
	stripeElems := *dimms * 16
	if *dim%stripeElems != 0 {
		fmt.Fprintf(os.Stderr, "tensorserve: -dim %d must be a multiple of dimms x 16 = %d\n", *dim, stripeElems)
		os.Exit(2)
	}

	model, err := tensordimm.BuildModel(cfg, 42)
	if err != nil {
		log.Fatal(err)
	}
	var gen *tensordimm.WorkloadGenerator
	if *zipf {
		gen, err = tensordimm.NewZipfWorkload(cfg.TableRows, *zipfS, *seed)
	} else {
		gen, err = tensordimm.NewWorkload(cfg.TableRows, tensordimm.Uniform, *seed)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("model %s: %d tables x %d rows, dim %d, %d-way %s\n",
		cfg.Name, cfg.Tables, cfg.TableRows, cfg.EmbDim, cfg.Reduction, poolingName(cfg))
	dist := "uniform"
	if *zipf {
		dist = fmt.Sprintf("zipf(%.2g)", *zipfS)
	}

	if *updFrac < 0 || *updFrac > 1 {
		fmt.Fprintf(os.Stderr, "tensorserve: -update-frac %g must be in [0, 1]\n", *updFrac)
		os.Exit(2)
	}

	if *nodes > 1 {
		runCluster(model, cfg, gen, dist, *nodes, *shard, *cacheMB,
			*dimms, *batch, *rate, *duration, *maxBatch, *maxDelay, *workers, *updFrac, *seed)
		return
	}
	runSingle(model, cfg, gen, dist,
		*dimms, *batch, *rate, *duration, *maxBatch, *maxDelay, *workers, *updFrac, *seed)
}

// runSingle drives one TensorNode behind a batched server (the PR 1 path).
func runSingle(model *tensordimm.Model, cfg tensordimm.ModelConfig,
	gen *tensordimm.WorkloadGenerator, dist string,
	dimms, batch int, rate float64, duration time.Duration,
	maxBatch int, maxDelay time.Duration, workers int, updFrac float64, seed int64) {

	// Size the pool: tables + per-lane gather scratch + per-slot outputs,
	// with 2x slack for allocator alignment.
	lanes := workers * cfg.Tables
	embBytes := uint64(cfg.EmbBytes())
	need := uint64(cfg.TotalTableBytes()) +
		uint64(lanes)*2*uint64(maxBatch)*uint64(cfg.Reduction)*embBytes +
		uint64(workers)*uint64(cfg.Tables)*uint64(maxBatch)*embBytes
	perDIMM := (2*need/uint64(dimms) + 65535) / 65536 * 65536

	nd, err := tensordimm.NewNode(dimms, perDIMM)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := tensordimm.DeployConcurrent(model, nd, maxBatch, workers, lanes)
	if err != nil {
		log.Fatal(err)
	}
	srv, err := tensordimm.NewServer(tensordimm.ServeConfig{
		MaxBatch: maxBatch,
		MaxDelay: maxDelay,
		Workers:  workers,
	}, dep)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("node: %d TensorDIMMs, %.0f MiB pool, %d B stripe\n",
		nd.NodeDim(), float64(nd.CapacityBytes())/(1<<20), nd.StripeBytes())
	fmt.Printf("server: maxBatch %d, deadline %v, %d workers, %d lanes\n",
		maxBatch, maxDelay, workers, lanes)

	offered := offerLoad(cfg, gen, dist, batch, rate, duration, updFrac, seed, srv.Infer, srv.Update)
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}

	m := srv.Metrics()
	fmt.Println(m)
	fmt.Printf("\noffered %d requests, completed %d (sustained %.0f req/s against %.0f req/s offered)\n",
		offered, m.Requests, float64(m.Requests)/m.Uptime.Seconds(), rate)
	s := nd.Stats()
	fmt.Printf("NMP activity: %d instructions, %d blocks read, %d blocks written, %d ALU block ops\n",
		s.Instructions, s.BlocksRead, s.BlocksWritten, s.ALUBlockOps)
}

// runCluster drives the sharded multi-node cluster.
func runCluster(model *tensordimm.Model, cfg tensordimm.ModelConfig,
	gen *tensordimm.WorkloadGenerator, dist string,
	nodes int, shard string, cacheMB float64,
	dimms, batch int, rate float64, duration time.Duration,
	maxBatch int, maxDelay time.Duration, workers int, updFrac float64, seed int64) {

	var strategy tensordimm.ShardStrategy
	switch strings.ToLower(shard) {
	case "table":
		strategy = tensordimm.TableWise
	case "row":
		strategy = tensordimm.RowWise
	default:
		fmt.Fprintf(os.Stderr, "tensorserve: -shard %q must be table or row\n", shard)
		os.Exit(2)
	}
	cl, err := tensordimm.NewCluster(model, tensordimm.ClusterConfig{
		Nodes:        nodes,
		Strategy:     strategy,
		DIMMsPerNode: dimms,
		MaxBatch:     maxBatch,
		Workers:      workers,
		MaxDelay:     maxDelay,
		CacheBytes:   int64(cacheMB * (1 << 20)),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d shards (%s), %d TensorDIMMs each, %.1f MiB cache per shard\n",
		nodes, strategy, dimms, cacheMB)
	fmt.Printf("shards: maxBatch %d samples/request, deadline %v, %d workers each\n",
		maxBatch, maxDelay, workers)

	offered := offerLoad(cfg, gen, dist, batch, rate, duration, updFrac, seed, cl.Infer, cl.ApplyUpdates)
	if err := cl.Close(); err != nil {
		log.Fatal(err)
	}

	m := cl.Metrics()
	fmt.Println(m)
	fmt.Printf("offered %d requests, completed %d (sustained %.0f req/s against %.0f req/s offered)\n",
		offered, m.Requests, float64(m.Requests)/m.Uptime.Seconds(), rate)
}

// offerLoad submits requests open loop on an absolute schedule: arrival n
// is due at start + n/rate, and late arrivals fire immediately in a
// catch-up burst, so a slow server cannot throttle the offered load. With
// updFrac > 0 that fraction of arrivals are SCATTER_ADD gradient-update
// batches (batch rows against one random table) instead of inferences —
// the asynchronous-training traffic an online recommender serves. Each
// request runs in its own goroutine; indices are drawn in the arrival loop
// (the generator is sequential). Returns the number of requests offered.
func offerLoad(cfg tensordimm.ModelConfig, gen *tensordimm.WorkloadGenerator,
	dist string, batch int, rate float64, duration time.Duration,
	updFrac float64, seed int64,
	infer func([][]int, int) (*tensordimm.Tensor, error),
	update func([]tensordimm.TableUpdate) error) int {

	fmt.Printf("offering %.0f req/s x %v, batch %d, %s indices, %.0f%% updates (open loop)\n\n",
		rate, duration, batch, dist, 100*updFrac)
	interval := float64(time.Second) / rate
	rng := rand.New(rand.NewSource(seed))
	start := time.Now()
	var wg sync.WaitGroup
	var submitErr error
	var errOnce sync.Once
	offered := 0
	for {
		due := start.Add(time.Duration(float64(offered) * interval))
		if due.Sub(start) >= duration {
			break
		}
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
		if rng.Float64() < updFrac {
			urows := gen.Indices(batch)
			grads := tensordimm.NewTensor(len(urows), cfg.EmbDim)
			for i := range grads.Data() {
				grads.Data()[i] = rng.Float32()*0.02 - 0.01
			}
			ups := []tensordimm.TableUpdate{{Table: rng.Intn(cfg.Tables), Rows: urows, Grads: grads}}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := update(ups); err != nil {
					errOnce.Do(func() { submitErr = err })
				}
			}()
		} else {
			rows := gen.Batch(cfg.Tables, batch, cfg.Reduction)
			wg.Add(1)
			go func() {
				defer wg.Done()
				if _, err := infer(rows, batch); err != nil {
					errOnce.Do(func() { submitErr = err })
				}
			}()
		}
		offered++
	}
	wg.Wait()
	if submitErr != nil {
		log.Fatal(submitErr)
	}
	return offered
}

func benchmark(name string) (tensordimm.ModelConfig, error) {
	switch strings.ToLower(name) {
	case "ncf":
		return tensordimm.NCF(), nil
	case "youtube":
		return tensordimm.YouTube(), nil
	case "fox":
		return tensordimm.Fox(), nil
	case "facebook":
		return tensordimm.Facebook(), nil
	default:
		return tensordimm.ModelConfig{}, fmt.Errorf("unknown model %q (want ncf, youtube, fox, facebook)", name)
	}
}

func poolingName(cfg tensordimm.ModelConfig) string {
	if cfg.Mean {
		return "mean pooling"
	}
	if cfg.Reduction == 1 {
		return "no pooling"
	}
	return "reduce pooling"
}
