package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCheckDirFindsMissingDocs feeds a synthetic package with every flavor
// of documented and undocumented declaration.
func TestCheckDirFindsMissingDocs(t *testing.T) {
	dir := t.TempDir()
	src := `package sample

// Documented is fine.
func Documented() {}

func Missing() {}

func unexported() {}

// T is documented; its method is not.
type T struct{}

func (T) Method() {}

type MissingType struct{}

// Group doc covers every member.
const (
	A = 1
	B = 2
)

var (
	MissingVar = 3
	// DocumentedVar has a spec comment.
	DocumentedVar = 4
	TrailingVar   = 5 // a trailing comment also counts
)
`
	if err := os.WriteFile(filepath.Join(dir, "sample.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	// Test files are excluded from the check.
	testSrc := "package sample\n\nfunc ExportedTestHelper() {}\n"
	if err := os.WriteFile(filepath.Join(dir, "sample_test.go"), []byte(testSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	missing, err := checkDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"Missing", "Method", "MissingType", "MissingVar"}
	if len(missing) != len(wantNames) {
		t.Fatalf("got %d findings, want %d:\n%s", len(missing), len(wantNames), strings.Join(missing, "\n"))
	}
	for i, name := range wantNames {
		if !strings.Contains(missing[i], name) {
			t.Errorf("finding %d = %q, want mention of %s", i, missing[i], name)
		}
	}
}

// TestContractPackagesAreClean runs the real check over the packages CI
// gates on, so a missing doc comment fails the test suite before CI.
func TestContractPackagesAreClean(t *testing.T) {
	for _, dir := range []string{"../../internal/cluster", "../../internal/serve", "../../internal/runtime"} {
		missing, err := checkDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		if len(missing) > 0 {
			t.Errorf("%s:\n%s", dir, strings.Join(missing, "\n"))
		}
	}
}
