// Command doccheck enforces godoc completeness: it fails (exit 1) when any
// exported top-level identifier — function, method, type, or a const/var
// specification — in the given package directories lacks a doc comment.
// A const/var/type group is considered documented if either the group
// declaration or the individual specification carries a comment.
//
// CI runs it over the packages whose documentation this repository treats
// as a contract:
//
//	go run ./cmd/doccheck internal/cluster internal/serve internal/runtime \
//	    internal/node internal/workload internal/wire internal/netserve \
//	    internal/netclient internal/remote internal/faultnet
//
// With no arguments it checks that default set.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"strings"
)

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		dirs = []string{
			"internal/cluster", "internal/serve", "internal/runtime",
			"internal/node", "internal/workload",
			"internal/wire", "internal/netserve", "internal/netclient",
			"internal/remote", "internal/faultnet",
			"internal/persist", "internal/chaos", "internal/telemetry",
		}
	}
	var failures []string
	for _, dir := range dirs {
		missing, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		failures = append(failures, missing...)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, f)
		}
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers lack doc comments\n", len(failures))
		os.Exit(1)
	}
}

// checkDir parses one package directory (test files excluded) and returns
// one message per exported top-level identifier without a doc comment.
func checkDir(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var missing []string
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: exported %s %s lacks a doc comment", p.Filename, p.Line, kind, name))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						kind := "function"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return missing, nil
}

// checkGenDecl walks a const/var/type declaration: an exported spec is
// documented if the spec itself or its enclosing group has a comment.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil || d.Doc != nil {
				continue
			}
			kind := strings.ToLower(d.Tok.String())
			for _, name := range s.Names {
				if name.IsExported() {
					report(s.Pos(), kind, name.Name)
				}
			}
		}
	}
}
