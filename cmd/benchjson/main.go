// Command benchjson runs the hot-serving-path benchmark suite
// (internal/benchkit: ServeThroughput, ClusterEmbed, ExpandIndices,
// NetRoundTrip) plus the open-loop network saturation sweep, and writes
// the results as JSON, so every PR leaves a machine-readable performance
// record next to the paper-reproduction artifacts.
//
// Usage:
//
//	go run ./cmd/benchjson [-out BENCH_serving.json] [-max-allocs N]
//
// The emitted document carries the current run, the recorded pre-PR
// baseline (measured with exactly this harness before the zero-allocation
// refactor), and the derived speedups. Each serving benchmark's record
// embeds its stack's telemetry registry snapshot (exact counters and
// latency histograms), and the stacks run instrumented — so the
// allocation gate also proves telemetry is free on the steady-state path.
// With -max-allocs >= 0 the tool exits non-zero if any benchmark's
// steady-state allocs/op exceeds the threshold — the CI bench-smoke gate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"tensordimm/internal/benchkit"
)

// baseline is the suite measured on the pre-refactor tree (commit
// 698a822, allocating request path) with the same harness geometry and
// GOMAXPROCS=1, kept here so speedups in the JSON are self-contained.
// NetRoundTrip has no entry: the network plane did not exist before it
// was benchmarked, so its first recorded run IS the baseline.
var baseline = []benchkit.Result{
	{Name: "ServeThroughput", NsPerOp: 40581, AllocsPerOp: 19, BytesPerOp: 18055, ReqPerSec: 24639, P99Us: 886.2},
	{Name: "ClusterEmbed", NsPerOp: 7429, AllocsPerOp: 44, BytesPerOp: 18335, ReqPerSec: 134608},
	{Name: "ExpandIndices", NsPerOp: 902.1, AllocsPerOp: 1, BytesPerOp: 2304},
}

// document is the BENCH_serving.json schema.
type document struct {
	Suite      string            `json:"suite"`
	GoMaxProcs int               `json:"gomaxprocs"`
	Baseline   []benchkit.Result `json:"baseline"`
	Results    []benchkit.Result `json:"results"`
	// SpeedupNs maps benchmark name to baseline ns/op divided by current
	// ns/op (higher is faster).
	SpeedupNs map[string]float64 `json:"speedup_ns_per_op"`
	// Saturation is the open-loop offered-load sweep of the network plane:
	// achieved rate, p99 and shed count per offered-load step. It is a
	// curve, not a single number, so it carries no speedup entry and the
	// allocs/op gate does not apply to it.
	Saturation []benchkit.SaturationPoint `json:"saturation"`
}

func main() {
	out := flag.String("out", "BENCH_serving.json", "output path for the JSON record")
	maxAllocs := flag.Int64("max-allocs", -1, "fail if any benchmark exceeds this steady-state allocs/op (-1 disables the gate)")
	count := flag.Int("count", 3, "suite repetitions; the fastest run per benchmark is recorded (damps scheduler noise on shared runners)")
	flag.Parse()

	if *count < 1 {
		*count = 1
	}
	results := benchkit.RunSuite()
	for i := 1; i < *count; i++ {
		for j, r := range benchkit.RunSuite() {
			// Keep the fastest repetition per benchmark; allocs/op gate on
			// the worst, so a single clean run can't mask a regression.
			if r.NsPerOp < results[j].NsPerOp {
				alloc, bytes := results[j].AllocsPerOp, results[j].BytesPerOp
				results[j] = r
				if alloc > r.AllocsPerOp {
					results[j].AllocsPerOp, results[j].BytesPerOp = alloc, bytes
				}
			} else if r.AllocsPerOp > results[j].AllocsPerOp {
				results[j].AllocsPerOp, results[j].BytesPerOp = r.AllocsPerOp, r.BytesPerOp
			}
		}
	}
	saturation := benchkit.RunSaturation()
	doc := document{
		Suite:      "serving-hot-path",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Baseline:   baseline,
		Results:    results,
		SpeedupNs:  map[string]float64{},
		Saturation: saturation,
	}
	base := map[string]benchkit.Result{}
	for _, r := range baseline {
		base[r.Name] = r
	}
	for _, r := range results {
		if b, ok := base[r.Name]; ok && r.NsPerOp > 0 {
			doc.SpeedupNs[r.Name] = b.NsPerOp / r.NsPerOp
		}
		fmt.Printf("%-16s %12.1f ns/op %6d allocs/op %10.0f req/s\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.ReqPerSec)
	}

	for _, p := range saturation {
		fmt.Printf("saturation %8.0f offered req/s -> %8.0f achieved, p99 %7.1f us, %d shed\n",
			p.OfferedReqS, p.AchievedReqS, p.P99Us, p.Shed)
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Println("wrote", *out)

	if *maxAllocs >= 0 {
		failed := false
		for _, r := range results {
			if r.AllocsPerOp > *maxAllocs {
				fmt.Fprintf(os.Stderr, "benchjson: %s regressed to %d allocs/op (threshold %d)\n",
					r.Name, r.AllocsPerOp, *maxAllocs)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
	}
}
