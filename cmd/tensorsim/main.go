// Command tensorsim reproduces a single table or figure of the TensorDIMM
// paper and prints it (optionally also as CSV).
//
// Usage:
//
//	tensorsim -list
//	tensorsim -experiment fig11 [-full] [-csv out.csv]
//	tensorsim -experiment fig14 -link 50 -dimms 64
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tensordimm"
)

func main() {
	var (
		list  = flag.Bool("list", false, "list available experiments and exit")
		id    = flag.String("experiment", "", "experiment id (fig3..fig16, tab1..tab3, power)")
		full  = flag.Bool("full", false, "run the paper's full parameter sweep (slower)")
		csv   = flag.String("csv", "", "also write the result table as CSV to this path")
		link  = flag.Float64("link", 0, "override node-GPU link bandwidth in GB/s (Figure 16 style)")
		dimms = flag.Int("dimms", 0, "override the number of TensorDIMMs in the node")
	)
	flag.Parse()

	if *list || *id == "" {
		fmt.Println("available experiments:")
		for _, e := range tensordimm.Experiments() {
			fmt.Printf("  %s\n", e)
		}
		if *id == "" && !*list {
			os.Exit(2)
		}
		return
	}

	p := tensordimm.DefaultPlatform()
	if *link > 0 {
		p = p.WithNodeLinkGBs(*link)
	}
	if *dimms > 0 {
		p = p.WithNodeDIMMs(*dimms)
	}

	res, err := tensordimm.RunExperiment(strings.ToLower(*id), p, *full)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tensorsim:", err)
		os.Exit(1)
	}
	fmt.Println(res.Table.String())
	for _, n := range res.Notes {
		fmt.Println("note:", n)
	}
	if *csv != "" {
		f, err := os.Create(*csv)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tensorsim:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := res.Table.WriteCSV(f); err != nil {
			fmt.Fprintln(os.Stderr, "tensorsim:", err)
			os.Exit(1)
		}
		fmt.Println("csv written to", *csv)
	}
}
