// Command tracegen emits the DRAM transaction stream of one TensorISA
// operation, with each 64-byte request decomposed under the chosen address
// mapping — the inspection tool for the Figure 11/12 methodology.
//
// Usage:
//
//	tracegen -op gather -batch 4 -reduction 2 -config tnode -n 32
//	tracegen -op average -config cpu -summary
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"

	"tensordimm/internal/addrmap"
	"tensordimm/internal/dram"
	"tensordimm/internal/trace"
)

func main() {
	var (
		op        = flag.String("op", "gather", "tensor operation: gather, reduce, average")
		batch     = flag.Int("batch", 4, "inference batch size")
		reduction = flag.Int("reduction", 2, "embeddings pooled per output")
		dim       = flag.Int("dim", 512, "embedding dimension (float32 elements)")
		config    = flag.String("config", "tnode", "memory organization: cpu (8ch x 4rk) or tnode (32 TensorDIMMs)")
		maxLines  = flag.Int("n", 64, "maximum trace lines to print (0 = all)")
		summary   = flag.Bool("summary", false, "replay the trace through the DRAM simulator and print bandwidth")
		seed      = flag.Int64("seed", 1, "index generator seed")
	)
	flag.Parse()

	var scheme *addrmap.Scheme
	switch *config {
	case "cpu":
		scheme = addrmap.CPUBaseline(8, 4, 1<<16)
	case "tnode":
		scheme = addrmap.TensorDIMM(32, 1<<16)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown config %q (want cpu or tnode)\n", *config)
		os.Exit(2)
	}

	g, err := trace.NewGenerator(*dim*4, 100_000)
	if err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
	rng := rand.New(rand.NewSource(*seed))
	n := *batch * *reduction
	indices := make([]int, n)
	for i := range indices {
		indices[i] = rng.Intn(g.TableRows)
	}
	l := g.LayoutFor(scheme.Geom, 1, n)

	var reqs []dram.Request
	switch *op {
	case "gather":
		reqs = g.Gather(l, indices)
	case "reduce":
		reqs = g.Reduce(l, n)
	case "average":
		reqs = g.Average(l, *batch, *reduction)
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown op %q (want gather, reduce, average)\n", *op)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintf(w, "# %s on %s: %d requests (batch %d, reduction %d, dim %d)\n",
		*op, scheme.Name(), len(reqs), *batch, *reduction, *dim)
	for i, r := range reqs {
		if *maxLines > 0 && i >= *maxLines {
			fmt.Fprintf(w, "# ... %d more requests\n", len(reqs)-i)
			break
		}
		kind := "RD"
		if r.Write {
			kind = "WR"
		}
		fmt.Fprintf(w, "%s %#012x %s\n", kind, r.Phys, scheme.Map(r.Phys))
	}

	if *summary {
		sys := dram.NewSystem(scheme, dram.DDR43200())
		res := sys.Run(reqs)
		fmt.Fprintf(w, "# bandwidth %.1f GB/s (util %.2f, row hit %.2f, %d ACT, %d REF)\n",
			res.BandwidthGBs(sys.Timing), sys.Utilization(res), res.RowHitRate(),
			res.Activates, res.Refreshes)
	}
}
