package tensordimm_test

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates the corresponding artifact through the same driver the CLI
// tools use, and reports the artifact's headline quantity as a custom
// metric so `go test -bench` output doubles as a reproduction record.
//
// The DRAM-simulation benches (Fig11/Fig12) replay full command-level
// traces and therefore run one iteration each at the default -benchtime.

import (
	"math"
	"strconv"
	"testing"

	"tensordimm"
	"tensordimm/internal/core"
	"tensordimm/internal/experiments"
	"tensordimm/internal/power"
	"tensordimm/internal/recsys"
	"tensordimm/internal/stats"
)

func mustFloat(b *testing.B, s string) float64 {
	b.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		b.Fatalf("parse %q: %v", s, err)
	}
	return v
}

// BenchmarkFig03ModelSize regenerates Figure 3 (NCF model size growth) and
// reports the largest configuration's size in GB.
func BenchmarkFig03ModelSize(b *testing.B) {
	var largest float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig3()
		rows := r.Table.Rows
		largest = mustFloat(b, rows[len(rows)-1][len(rows[0])-1])
	}
	b.ReportMetric(largest, "GB-largest-model")
}

// BenchmarkFig04Baselines regenerates Figure 4 and reports the geomean
// slowdown of the CPU-only baseline vs the GPU-only oracle.
func BenchmarkFig04Baselines(b *testing.B) {
	p := core.DefaultPlatform()
	var slowdown float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig4(p)
		last := r.Table.Rows[len(r.Table.Rows)-1]
		slowdown = 1 / mustFloat(b, last[2])
	}
	b.ReportMetric(slowdown, "x-cpuonly-slowdown")
}

// BenchmarkTab01NodeConfig regenerates Table 1 and reports the TensorNode
// aggregate bandwidth.
func BenchmarkTab01NodeConfig(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.Tab1()
	}
	b.ReportMetric(core.DefaultPlatform().NodePeakGBs(), "GB/s-node-peak")
}

// BenchmarkTab02Benchmarks regenerates Table 2.
func BenchmarkTab02Benchmarks(b *testing.B) {
	var rows int
	for i := 0; i < b.N; i++ {
		rows = len(experiments.Tab2().Table.Rows)
	}
	b.ReportMetric(float64(rows), "benchmarks")
}

// BenchmarkFig11Bandwidth replays the tensor-op DRAM traces of Figure 11
// (trimmed batch sweep) and reports the peak TensorNode bandwidth and the
// TensorNode/CPU mean ratio.
func BenchmarkFig11Bandwidth(b *testing.B) {
	var peak, ratio float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig11(experiments.ScaleQuick)
		last := r.Table.Rows[len(r.Table.Rows)-1]
		var cpuVals, nodeVals []float64
		for c := 1; c <= 3; c++ {
			cpuVals = append(cpuVals, mustFloat(b, last[c]))
			nodeVals = append(nodeVals, mustFloat(b, last[c+3]))
		}
		for _, v := range nodeVals {
			if v > peak {
				peak = v
			}
		}
		ratio = stats.Mean(nodeVals) / stats.Mean(cpuVals)
	}
	b.ReportMetric(peak, "GB/s-node-max")
	b.ReportMetric(ratio, "x-node-vs-cpu")
}

// BenchmarkFig12Scaling replays the DIMM-count scaling study of Figure 12
// and reports the TensorNode throughput at 128 DIMMs.
func BenchmarkFig12Scaling(b *testing.B) {
	var at128 float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig12(experiments.ScaleQuick)
		for _, row := range r.Table.Rows {
			if row[0] == "REDUCE" && row[1] == "128" {
				at128 = mustFloat(b, row[4])
			}
		}
	}
	b.ReportMetric(at128, "GB/s-at-128DIMMs")
}

// BenchmarkFig13Breakdown regenerates the latency breakdowns of Figure 13
// and reports TDIMM's batch-64 latency on the Facebook workload.
func BenchmarkFig13Breakdown(b *testing.B) {
	p := core.DefaultPlatform()
	var us float64
	for i := 0; i < b.N; i++ {
		_ = experiments.Fig13(p)
		us = core.Simulate(core.TDIMM, recsys.Facebook(), 64, p).TotalS() * 1e6
	}
	b.ReportMetric(us, "us-tdimm-facebook")
}

// BenchmarkFig14Performance regenerates Figure 14 and reports TDIMM's
// geomean fraction of the GPU-only oracle (paper: 0.84).
func BenchmarkFig14Performance(b *testing.B) {
	p := core.DefaultPlatform()
	var frac float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig14(p)
		last := r.Table.Rows[len(r.Table.Rows)-1]
		frac = mustFloat(b, last[5])
	}
	b.ReportMetric(frac, "frac-of-oracle")
}

// BenchmarkFig15LargeEmbeddings regenerates Figure 15 and reports the
// batch-64 TDIMM speedup over CPU-only at 8x embeddings (paper: ~15x).
func BenchmarkFig15LargeEmbeddings(b *testing.B) {
	p := core.DefaultPlatform()
	var speedup float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig15(p)
		for _, row := range r.Table.Rows {
			if row[0] == "8x" && row[1] == "64" {
				speedup = mustFloat(b, row[2])
			}
		}
	}
	b.ReportMetric(speedup, "x-8x-embeddings")
}

// BenchmarkFig16LinkSensitivity regenerates Figure 16 and reports how much
// performance PMEM and TDIMM retain at 25 GB/s links (paper: 0.32 vs 0.85+).
func BenchmarkFig16LinkSensitivity(b *testing.B) {
	p := core.DefaultPlatform()
	var pmem, tdimm float64
	for i := 0; i < b.N; i++ {
		r := experiments.Fig16(p)
		var pmems, tdimms []float64
		for _, row := range r.Table.Rows {
			v := mustFloat(b, row[2])
			if row[0] == "PMEM" {
				pmems = append(pmems, v)
			} else {
				tdimms = append(tdimms, v)
			}
		}
		pmem, tdimm = stats.Geomean(pmems), stats.Geomean(tdimms)
	}
	b.ReportMetric(pmem, "frac-pmem-at-25GBs")
	b.ReportMetric(tdimm, "frac-tdimm-at-25GBs")
}

// BenchmarkTab03FPGA regenerates Table 3 and reports the NMP core's total
// LUT utilization percentage.
func BenchmarkTab03FPGA(b *testing.B) {
	var lut float64
	for i := 0; i < b.N; i++ {
		_ = experiments.Tab3()
		lut = power.NMPCoreTotal().LUTPct
	}
	b.ReportMetric(lut, "%LUT-nmp-core")
}

// BenchmarkPowerBudget regenerates the Section 6.5 power analysis and
// reports the 32-DIMM TensorNode power (paper: 416 W).
func BenchmarkPowerBudget(b *testing.B) {
	var watts float64
	for i := 0; i < b.N; i++ {
		_ = experiments.PowerBudget()
		watts = power.TensorNodeWatts(32, 0.45, 0.25)
	}
	b.ReportMetric(watts, "W-tensornode")
}

// BenchmarkNMPInference measures the functional near-memory inference path
// (TensorISA on a software TensorNode) end to end.
func BenchmarkNMPInference(b *testing.B) {
	nd, err := tensordimm.NewNode(8, 32<<20)
	if err != nil {
		b.Fatal(err)
	}
	cfg := tensordimm.YouTube()
	cfg.TableRows = 1000
	cfg.EmbDim = 128
	cfg.Reduction = 10
	cfg.Hidden = []int{64, 32, 16, 8}
	model, err := tensordimm.BuildModel(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	dep, err := tensordimm.Deploy(model, nd, 16)
	if err != nil {
		b.Fatal(err)
	}
	gen, _ := tensordimm.NewWorkload(cfg.TableRows, tensordimm.Zipfian, 2)
	indices := gen.Batch(cfg.Tables, 16, cfg.Reduction)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dep.Infer(indices, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyticEngine measures the latency-model evaluation itself.
func BenchmarkAnalyticEngine(b *testing.B) {
	p := core.DefaultPlatform()
	var acc float64
	for i := 0; i < b.N; i++ {
		for _, cfg := range recsys.All() {
			for _, dp := range core.DesignPoints() {
				acc += core.Simulate(dp, cfg, 64, p).TotalS()
			}
		}
	}
	if math.IsNaN(acc) {
		b.Fatal("NaN latency")
	}
}
