// Package chaos is a seeded chaos-soak harness for the replicated
// network serving stack: it boots a full in-process fleet (real serve
// stacks behind real TCP listeners), derives a deterministic fault
// schedule from a seed — composing the faultnet primitives (read delays,
// mid-frame truncation, hard resets) with process-level kill/restart and
// deadline-starving stalls — and drives mixed read/update traffic
// through a writing router and a deadline-bounded read-only router while
// the schedule executes.
//
// Three invariants are asserted continuously:
//
//  1. Bit-identity: at every quiescent point (faults cleared, fleet
//     re-admitted) and after the final kill-everything restart, reads are
//     bit-identical to a golden model maintained through OnApplied.
//  2. Zero lost acknowledged writes: the final phase kills every replica,
//     restarts all of them cold (update sequence 0), lets the router
//     re-drive them from its durable log (snapshot reseat + WAL-tail
//     replay), and re-checks bit-identity — an acknowledged update that
//     the log lost would surface here.
//  3. Deadline honesty: every deadline-bounded read resolves within
//     budget+epsilon or fails with a typed error (*remote.DeadlineExceeded,
//     *remote.Unavailable, *netclient.DeadlineError, *netclient.ServerError)
//     — never an untyped failure, never an unbounded stall.
//
// Replica 0 of every shard is never faulted, so updates can always reach
// at least one replica per shard: an acknowledged update is exactly one
// that fired OnApplied, which keeps the golden model a sound reference.
// The same seed reproduces the same fault schedule, so a soak failure is
// replayable from its report line alone. Both the chaos test suite and
// `tensorserve -chaos-seed` drive this package through Run.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tensordimm/internal/cluster"
	"tensordimm/internal/faultnet"
	"tensordimm/internal/netclient"
	"tensordimm/internal/netserve"
	"tensordimm/internal/node"
	"tensordimm/internal/recsys"
	"tensordimm/internal/remote"
	"tensordimm/internal/runtime"
	"tensordimm/internal/serve"
	"tensordimm/internal/telemetry"
	"tensordimm/internal/tensor"
	"tensordimm/internal/wire"
)

// Config parameterizes one soak. The zero value of every field except
// Seed selects a documented default.
type Config struct {
	// Seed derives the fault schedule, the model weights, and the traffic
	// mix. The same seed reproduces the same soak.
	Seed int64
	// Duration is the summed fault-phase time; each ~1s fault round is
	// followed by a quiescent verification phase that does not count
	// toward it. Zero defaults to 8s.
	Duration time.Duration
	// Shards and Replicas shape the fleet: Shards shard processes with
	// Replicas replicas each. Defaults 2 and 2; Replicas must be >= 2
	// (replica 0 of each shard is never faulted).
	Shards   int
	Replicas int
	// Deadline is the read-only router's end-to-end budget — the one
	// invariant 3 is asserted against. Zero defaults to 25ms.
	Deadline time.Duration
	// Epsilon is the grace over Deadline a deadline-bounded read may use
	// to resolve (scheduler noise, reap overhead) before the soak counts
	// it a violation. Zero defaults to 1s.
	Epsilon time.Duration
	// DataDir roots the writing router's WAL and snapshots. Empty creates
	// (and removes) a temporary directory — the durability invariant
	// exercises a real on-disk WAL either way.
	DataDir string
	// Log, when set, receives one line per round and phase.
	Log func(format string, args ...any)
	// Registry, when set, receives the soak's live counters (updates,
	// reads, skew reads, typed and deadline errors, golden checks,
	// invariant violations) plus the writing router's full series, so a
	// long soak is observable through the admin endpoint while it runs.
	Registry *telemetry.Registry
}

// Report summarizes one soak.
type Report struct {
	Seed                               int64
	Rounds                             int
	Faults                             int
	Updates, Reads, SkewReads          uint64
	TypedErrors, DeadlineErrors        uint64
	GoldenChecks                       uint64
	Resyncs, Replayed, Restores        uint64
	BreakerTrips, Failovers, HedgeWins uint64
}

// String renders the report as one line.
func (r Report) String() string {
	return fmt.Sprintf(
		"chaos: seed %d, %d rounds, %d faults; %d updates, %d reads, %d skew reads (%d typed errors, %d deadline); %d golden checks; %d resyncs (%d replayed, %d restored), %d breaker trips, %d failovers, %d hedge wins",
		r.Seed, r.Rounds, r.Faults, r.Updates, r.Reads, r.SkewReads,
		r.TypedErrors, r.DeadlineErrors, r.GoldenChecks,
		r.Resyncs, r.Replayed, r.Restores, r.BreakerTrips, r.Failovers, r.HedgeWins)
}

// soak geometry: small enough to boot a multi-replica fleet quickly
// under -race, uneven enough (odd rows) to cross shard boundaries.
const (
	soakMaxBatch = 8
	soakRound    = time.Second
)

func soakModelCfg(shards int) recsys.Config {
	return recsys.Config{
		Name: "chaos-soak", Tables: shards, Reduction: 2, FCLayers: 1,
		EmbDim: 64, TableRows: 203, Hidden: []int{8},
	}
}

// proc is one in-process replica "process": a serve stack behind a real
// listener with a fault injector in front.
type proc struct {
	addr string
	in   *faultnet.Injector
	stop func()
	dead bool
}

// soak is one running chaos soak.
type soak struct {
	cfg    Config
	mc     recsys.Config
	golden *recsys.Model
	writer *remote.RemoteCluster
	skew   *remote.RemoteCluster

	// pmu guards procs: the schedule applier kills and restarts entries
	// while the quiescent phase heals stragglers.
	pmu   sync.Mutex
	procs [][]*proc

	updates, reads, skewReads atomic.Uint64
	typedErrs, deadlineErrs   atomic.Uint64
	goldenChecks              atomic.Uint64
	violationCount            atomic.Uint64
	vmu                       sync.Mutex
	violations                []string
}

// vio records one invariant violation.
func (c *soak) vio(format string, args ...any) {
	c.violationCount.Add(1)
	c.vmu.Lock()
	if len(c.violations) < 32 {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	}
	c.vmu.Unlock()
}

// instrument registers the soak's live counters on the configured
// registry and instruments both routers (labeled by role).
func (c *soak) instrument(reg *telemetry.Registry) {
	reg.Counter("tensordimm_chaos_updates_total", "update batches driven through the writing router", c.updates.Load)
	reg.Counter("tensordimm_chaos_reads_total", "reads driven through the writing router", c.reads.Load)
	reg.Counter("tensordimm_chaos_skew_reads_total", "deadline-bounded reads driven through the skew router", c.skewReads.Load)
	reg.Counter("tensordimm_chaos_typed_errors_total", "reads failed with a typed error", c.typedErrs.Load)
	reg.Counter("tensordimm_chaos_deadline_errors_total", "reads failed with DeadlineExceeded", c.deadlineErrs.Load)
	reg.Counter("tensordimm_chaos_golden_checks_total", "bit-identity checks against the golden model", c.goldenChecks.Load)
	reg.Counter("tensordimm_chaos_violations_total", "invariant violations detected", c.violationCount.Load)
	c.writer.Instrument(reg, telemetry.L("router", "writer"))
	c.skew.Instrument(reg, telemetry.L("router", "skew"))
}

// logf forwards to the configured logger.
func (c *soak) logf(format string, args ...any) {
	if c.cfg.Log != nil {
		c.cfg.Log(format, args...)
	}
}

// withDefaults fills the zero fields.
func (cfg Config) withDefaults() Config {
	if cfg.Duration == 0 {
		cfg.Duration = 8 * time.Second
	}
	if cfg.Shards == 0 {
		cfg.Shards = 2
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 2
	}
	if cfg.Deadline == 0 {
		cfg.Deadline = 25 * time.Millisecond
	}
	if cfg.Epsilon == 0 {
		cfg.Epsilon = time.Second
	}
	return cfg
}

// Run executes one soak and returns its report; the error is non-nil
// when any invariant was violated or the fleet could not be driven.
func Run(cfg Config) (Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Replicas < 2 {
		return Report{}, fmt.Errorf("chaos: Replicas %d < 2 (replica 0 is never faulted, so faults need a second replica)", cfg.Replicas)
	}
	if cfg.Shards < 1 {
		return Report{}, fmt.Errorf("chaos: Shards %d < 1", cfg.Shards)
	}
	dir := cfg.DataDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "chaos-soak-*")
		if err != nil {
			return Report{}, fmt.Errorf("chaos: %w", err)
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}

	c := &soak{cfg: cfg, mc: soakModelCfg(cfg.Shards)}
	golden, err := recsys.Build(c.mc, cfg.Seed)
	if err != nil {
		return Report{}, fmt.Errorf("chaos: %w", err)
	}
	c.golden = golden

	// Fleet: Shards x Replicas real serve stacks.
	c.procs = make([][]*proc, cfg.Shards)
	addrs := make([][]string, cfg.Shards)
	defer c.stopAll()
	for s := 0; s < cfg.Shards; s++ {
		for r := 0; r < cfg.Replicas; r++ {
			p, err := c.startReplica(s, "")
			if err != nil {
				return Report{}, err
			}
			c.procs[s] = append(c.procs[s], p)
			addrs[s] = append(addrs[s], p.addr)
		}
	}

	// The writing router owns the durable log and keeps the golden model
	// in lockstep through OnApplied. A small snapshot interval makes the
	// soak cross the snapshot/restore path, not just WAL replay.
	c.writer, err = remote.New(remote.Config{
		Model: c.mc, Strategy: cluster.TableWise, Shards: addrs,
		MaxBatch: soakMaxBatch, DataDir: dir, SnapshotEvery: 64,
		ReconnectMin: 5 * time.Millisecond, ReconnectMax: 50 * time.Millisecond,
		OnApplied: func(up runtime.TableUpdate) {
			runtime.AccumulateGolden(c.golden.Embedding.Tables[up.Table], up)
		},
	})
	if err != nil {
		return Report{}, fmt.Errorf("chaos: writer router: %w", err)
	}
	defer c.writer.Close()
	if err := c.writer.WaitReady(10 * time.Second); err != nil {
		return Report{}, fmt.Errorf("chaos: %w", err)
	}
	// The skew router is the deadline-bounded read path invariant 3 is
	// asserted against: sticky read-only routing with a tight end-to-end
	// budget, against the same fleet the schedule is abusing.
	c.skew, err = remote.New(remote.Config{
		Model: c.mc, Strategy: cluster.TableWise, Shards: addrs,
		MaxBatch: soakMaxBatch, ReadOnly: true, Deadline: cfg.Deadline,
		ReconnectMin: 5 * time.Millisecond, ReconnectMax: 50 * time.Millisecond,
	})
	if err != nil {
		return Report{}, fmt.Errorf("chaos: skew router: %w", err)
	}
	defer c.skew.Close()
	if cfg.Registry != nil {
		c.instrument(cfg.Registry)
	}

	rounds := int((cfg.Duration + soakRound - 1) / soakRound)
	schedule := genSchedule(cfg.Seed, rounds, cfg.Shards, cfg.Replicas, soakRound)
	faults := 0
	for _, evs := range schedule {
		faults += len(evs)
	}
	c.logf("chaos: seed %d: %d rounds, %d scheduled faults, fleet %dx%d, deadline %v",
		cfg.Seed, rounds, faults, cfg.Shards, cfg.Replicas, cfg.Deadline)

	for round := 0; round < rounds && !c.violated(); round++ {
		c.runRound(round, schedule[round])
		if err := c.quiesce(15 * time.Second); err != nil {
			c.vio("round %d: %v", round, err)
			break
		}
		c.goldenSweep(fmt.Sprintf("round %d quiescent", round), 8, int64(round)*7919+cfg.Seed)
		c.logf("chaos: round %d/%d done: %s", round+1, rounds, c.writer.MetricsText())
	}

	// Final durability phase: quiesce, then kill EVERY replica and
	// restart all of them cold. The router's durable log must re-drive
	// the whole fleet to the acknowledged head — any lost acknowledged
	// write breaks the closing bit-identity sweep.
	if !c.violated() {
		c.logf("chaos: final durability check: killing and cold-restarting all %d replicas", cfg.Shards*cfg.Replicas)
		c.pmu.Lock()
		for s := range c.procs {
			for r := range c.procs[s] {
				c.killLocked(s, r)
			}
		}
		c.pmu.Unlock()
		if err := c.quiesce(30 * time.Second); err != nil {
			c.vio("durability restart: %v", err)
		} else {
			c.goldenSweep("post-restart durability", 16, cfg.Seed^0x5eed)
		}
	}

	wm := c.writer.Metrics()
	sm := c.skew.Metrics()
	rep := Report{
		Seed: cfg.Seed, Rounds: rounds, Faults: faults,
		Updates: c.updates.Load(), Reads: c.reads.Load(), SkewReads: c.skewReads.Load(),
		TypedErrors: c.typedErrs.Load(), DeadlineErrors: c.deadlineErrs.Load(),
		GoldenChecks: c.goldenChecks.Load(),
		Resyncs:      wm.Resyncs, Replayed: wm.Replayed, Restores: wm.Restores,
		BreakerTrips: wm.BreakerTrips + sm.BreakerTrips,
		Failovers:    wm.Failovers + sm.Failovers,
		HedgeWins:    wm.HedgeWins + sm.HedgeWins,
	}
	c.vmu.Lock()
	defer c.vmu.Unlock()
	if len(c.violations) > 0 {
		return rep, fmt.Errorf("chaos: seed %d: %d invariant violations:\n  %s",
			cfg.Seed, len(c.violations), strings.Join(c.violations, "\n  "))
	}
	return rep, nil
}

// violated reports whether any invariant has already failed.
func (c *soak) violated() bool {
	c.vmu.Lock()
	defer c.vmu.Unlock()
	return len(c.violations) > 0
}

// runRound drives one fault round: traffic goroutines hammer the fleet
// while the round's schedule executes in order.
func (c *soak) runRound(round int, evs []event) {
	stop := make(chan struct{})
	var wg sync.WaitGroup

	// Updater: acknowledged updates must never fail — replica 0 of every
	// shard is reachable by construction, so a failure here is a real
	// write-path defect, not schedule noise.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(c.cfg.Seed + int64(round)*2 + 1))
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.writer.ApplyUpdates([]runtime.TableUpdate{c.randUpdate(rng)}); err != nil {
				c.vio("round %d: acknowledged-update path failed: %v", round, err)
				return
			}
			c.updates.Add(1)
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Reader on the writing router (no deadline): must always resolve as
	// success or a typed error, whatever the schedule is doing.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(c.cfg.Seed + int64(round)*2 + 2))
		var dst []float32
		for {
			select {
			case <-stop:
				return
			default:
			}
			batch := 1 + rng.Intn(soakMaxBatch)
			var err error
			dst, err = c.writer.EmbedInto(dst, c.randRows(rng, batch), batch)
			if err != nil && !typedErr(err) {
				c.vio("round %d: writer read failed untyped: %v", round, err)
				return
			}
			c.reads.Add(1)
			time.Sleep(time.Millisecond)
		}
	}()

	// Skew reader: the deadline-bounded path. Invariant 3: resolve within
	// budget+epsilon, or fail typed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(c.cfg.Seed + int64(round)*2 + 3))
		bound := c.cfg.Deadline + c.cfg.Epsilon
		var dst []float32
		for {
			select {
			case <-stop:
				return
			default:
			}
			batch := 1 + rng.Intn(soakMaxBatch)
			begin := time.Now()
			var err error
			dst, err = c.skew.EmbedInto(dst, c.randRows(rng, batch), batch)
			wall := time.Since(begin)
			c.skewReads.Add(1)
			if wall > bound {
				c.vio("round %d: deadline-bounded read resolved in %v, bound %v (err=%v)", round, wall, bound, err)
				return
			}
			if err != nil {
				if !typedErr(err) {
					c.vio("round %d: deadline-bounded read failed untyped: %v", round, err)
					return
				}
				c.typedErrs.Add(1)
				var de *remote.DeadlineExceeded
				if errors.As(err, &de) {
					c.deadlineErrs.Add(1)
				}
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Execute the schedule in order, then let traffic run out the round.
	begin := time.Now()
	for _, ev := range evs {
		if d := ev.at - time.Since(begin); d > 0 {
			time.Sleep(d)
		}
		c.apply(ev)
	}
	if d := soakRound - time.Since(begin); d > 0 {
		time.Sleep(d)
	}
	close(stop)
	wg.Wait()
}

// apply executes one scheduled fault.
func (c *soak) apply(ev event) {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	p := c.procs[ev.shard][ev.rep]
	switch ev.kind {
	case evDelay:
		p.in.SetReadDelay(ev.amount)
	case evClearDelay:
		p.in.SetReadDelay(0)
	case evTruncate:
		p.in.SetTruncateAfter(ev.bytes)
	case evClearTruncate:
		p.in.SetTruncateAfter(0)
	case evReset:
		p.in.Reset()
	case evKill:
		c.killLocked(ev.shard, ev.rep)
	case evRestart:
		c.restartLocked(ev.shard, ev.rep)
	}
}

// killLocked hard-kills one replica process: every live connection RSTs
// and the listener closes. Callers hold pmu.
func (c *soak) killLocked(s, r int) {
	p := c.procs[s][r]
	if p.dead {
		return
	}
	p.in.Drop(true)
	p.stop()
	p.dead = true
}

// restartLocked cold-restarts a dead replica at its old address: a fresh
// process rebuilds the deterministic shard model at update sequence 0,
// and the router re-drives it from the durable log. Callers hold pmu.
func (c *soak) restartLocked(s, r int) {
	p := c.procs[s][r]
	if !p.dead {
		return
	}
	np, err := c.startReplica(s, p.addr)
	if err != nil {
		c.vio("restart s%dr%d: %v", s, r, err)
		return
	}
	c.procs[s][r] = np
}

// quiesce clears every armed fault, restarts any still-dead replica, and
// waits for the router to re-admit the whole fleet AND serve a probe
// read. The probe matters: after a kill, a reconnected client can still
// hold a socket the dead process RST'd — only a real write discovers it,
// so health alone declares quiescence too early.
func (c *soak) quiesce(timeout time.Duration) error {
	c.pmu.Lock()
	for s := range c.procs {
		for r := range c.procs[s] {
			if c.procs[s][r].dead {
				c.restartLocked(s, r)
			}
			p := c.procs[s][r]
			p.in.SetReadDelay(0)
			p.in.SetTruncateAfter(0)
		}
	}
	total := 0
	for _, g := range c.procs {
		total += len(g)
	}
	c.pmu.Unlock()
	deadline := time.Now().Add(timeout)
	probeRows := c.randRows(rand.New(rand.NewSource(c.cfg.Seed^0x9e37)), 1)
	for {
		if m := c.writer.Metrics(); m.ReplicasUp == total {
			if _, err := c.writer.Embed(probeRows, 1); err == nil {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("fleet not re-admitted within %v: %s", timeout, c.writer.MetricsText())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// goldenSweep bit-checks `n` quiescent reads against the golden model —
// the fleet must answer exactly what OnApplied accumulated, no matter
// which replicas survived the round.
func (c *soak) goldenSweep(phase string, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		batch := 1 + rng.Intn(soakMaxBatch)
		rows := c.randRows(rng, batch)
		got, err := c.writer.Embed(rows, batch)
		if err != nil {
			c.vio("%s: quiescent read %d failed: %v", phase, i, err)
			return
		}
		want, err := c.golden.Embedding.Forward(rows, batch)
		if err != nil {
			c.vio("%s: golden forward: %v", phase, err)
			return
		}
		for j, w := range want.Data() {
			if got[j] != w {
				c.vio("%s: read %d diverged from golden at value %d: fleet %v != golden %v", phase, i, j, got[j], w)
				return
			}
		}
		c.goldenChecks.Add(1)
	}
}

// randRows draws one request's per-table row indices.
func (c *soak) randRows(rng *rand.Rand, batch int) [][]int {
	rows := make([][]int, c.mc.Tables)
	for t := range rows {
		rows[t] = make([]int, batch*c.mc.Reduction)
		for i := range rows[t] {
			rows[t][i] = rng.Intn(c.mc.TableRows)
		}
	}
	return rows
}

// randUpdate draws one single-table gradient update.
func (c *soak) randUpdate(rng *rand.Rand) runtime.TableUpdate {
	n := 1 + rng.Intn(soakMaxBatch*c.mc.Reduction-1)
	rows := make([]int, n)
	for i := range rows {
		rows[i] = rng.Intn(c.mc.TableRows)
	}
	grads := tensor.New(n, c.mc.EmbDim)
	g := grads.Data()
	for i := range g {
		g[i] = rng.Float32() - 0.5
	}
	return runtime.TableUpdate{Table: rng.Intn(c.mc.Tables), Rows: rows, Grads: grads}
}

// typedErr reports whether err is one of the typed failures the stack is
// allowed to surface under faults.
func typedErr(err error) bool {
	var un *remote.Unavailable
	var de *remote.DeadlineExceeded
	var se *netclient.ServerError
	var dl *netclient.DeadlineError
	return errors.As(err, &un) || errors.As(err, &de) || errors.As(err, &se) || errors.As(err, &dl)
}

// startReplica boots one in-process replica of shard s: the same
// construction a real `tensorserve -shard-id` process performs — rebuild
// the deterministic model from the seed, carve the shard, deploy, serve
// behind a faultnet-wrapped listener. A fixed addr is re-bound with
// retries so a restarted replica reclaims its old endpoint.
func (c *soak) startReplica(s int, addr string) (*proc, error) {
	m, err := recsys.Build(c.mc, c.cfg.Seed)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	shardModel, err := cluster.ExtractShardModel(m, cluster.TableWise, c.cfg.Shards, s)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	p := cluster.NewPlacement(cluster.TableWise, c.cfg.Shards, c.mc.Tables, c.mc.TableRows)
	maxSub := p.MaxSub(s, soakMaxBatch, c.mc.Reduction)
	nd, err := node.New(node.Config{DIMMs: 4, PerDIMMBytes: 32 << 20})
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	dep, err := runtime.DeployConcurrent(shardModel, nd, maxSub, 2, 4)
	if err != nil {
		nd.Close()
		return nil, fmt.Errorf("chaos: %w", err)
	}
	srv, err := serve.New(serve.Config{MaxBatch: maxSub, Workers: 2}, dep)
	if err != nil {
		nd.Close()
		return nil, fmt.Errorf("chaos: %w", err)
	}
	ns, err := netserve.New(netserve.ServerBackend(srv), netserve.Config{Role: wire.RoleReplica})
	if err != nil {
		srv.Close()
		nd.Close()
		return nil, fmt.Errorf("chaos: %w", err)
	}
	listenAt := "127.0.0.1:0"
	if addr != "" {
		listenAt = addr
	}
	var l net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		l, err = net.Listen("tcp", listenAt)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			ns.Close()
			srv.Close()
			nd.Close()
			return nil, fmt.Errorf("chaos: listen %s: %w", listenAt, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	in := faultnet.NewInjector()
	go ns.Serve(faultnet.Wrap(l, in))
	var once sync.Once
	pr := &proc{addr: l.Addr().String(), in: in}
	pr.stop = func() {
		once.Do(func() {
			ns.Close()
			srv.Close()
			nd.Close()
		})
	}
	return pr, nil
}

// stopAll tears the fleet down.
func (c *soak) stopAll() {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	for _, g := range c.procs {
		for _, p := range g {
			if p != nil && !p.dead {
				p.stop()
			}
		}
	}
}
