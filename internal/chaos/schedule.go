package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// eventKind enumerates the fault primitives a schedule composes: the
// faultnet knobs (read delay, mid-frame truncation, hard connection
// resets), process-level kill/restart, and the deadline-starving stall
// (a delay burst longer than any skew reader's budget, so end-to-end
// deadlines actually fire instead of merely being carried).
type eventKind int

const (
	evDelay eventKind = iota
	evClearDelay
	evTruncate
	evClearTruncate
	evReset
	evKill
	evRestart
)

// String names the kind for schedule dumps and violation reports.
func (k eventKind) String() string {
	switch k {
	case evDelay:
		return "delay"
	case evClearDelay:
		return "clear-delay"
	case evTruncate:
		return "truncate"
	case evClearTruncate:
		return "clear-truncate"
	case evReset:
		return "reset"
	case evKill:
		return "kill"
	case evRestart:
		return "restart"
	}
	return "unknown"
}

// event is one scheduled fault against one victim replica. Replica 0 of
// every shard is never a victim: with one replica per shard always
// healthy, acknowledged updates can never wholly fail and the golden
// model can never diverge through a partially-applied batch — which is
// what lets the soak assert bit-identity at every quiescent point.
type event struct {
	at     time.Duration // offset into the round
	shard  int
	rep    int // victim replica index, always >= 1
	kind   eventKind
	amount time.Duration // evDelay: added per-read latency
	bytes  int64         // evTruncate: bytes until the mid-frame cut
}

// String renders one event for logs.
func (e event) String() string {
	return fmt.Sprintf("%7s s%dr%d %v amount=%v bytes=%d", e.kind, e.shard, e.rep, e.at.Round(time.Millisecond), e.amount, e.bytes)
}

// genSchedule derives the full soak schedule from the seed: `rounds`
// rounds of 3-6 fault bursts each, every burst paired with its clearing
// or restart event inside the same round. The same (seed, rounds, shards,
// replicas, round) always yields the same schedule, so a soak failure
// reproduces from its seed alone. replicas must be >= 2 (replica 0 is
// never faulted).
func genSchedule(seed int64, rounds, shards, replicas int, round time.Duration) [][]event {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]event, rounds)
	for r := range out {
		n := 3 + rng.Intn(4)
		evs := make([]event, 0, 2*n)
		for i := 0; i < n; i++ {
			s := rng.Intn(shards)
			rep := 1 + rng.Intn(replicas-1)
			at := time.Duration(rng.Int63n(int64(round * 3 / 4)))
			clearAfter := time.Duration(rng.Int63n(int64(round / 4)))
			switch rng.Intn(5) {
			case 0: // moderate slow-replica window
				d := time.Duration(2+rng.Intn(20)) * time.Millisecond
				evs = append(evs,
					event{at: at, shard: s, rep: rep, kind: evDelay, amount: d},
					event{at: at + clearAfter, shard: s, rep: rep, kind: evClearDelay})
			case 1: // mid-frame truncation: the peer sees a cut stream
				evs = append(evs,
					event{at: at, shard: s, rep: rep, kind: evTruncate, bytes: 64 + int64(rng.Intn(4096))},
					event{at: at + clearAfter, shard: s, rep: rep, kind: evClearTruncate})
			case 2: // hard RST of every live connection
				evs = append(evs, event{at: at, shard: s, rep: rep, kind: evReset})
			case 3: // process kill, restarted cold later in the round
				down := time.Duration(50+rng.Intn(150)) * time.Millisecond
				evs = append(evs,
					event{at: at, shard: s, rep: rep, kind: evKill},
					event{at: at + down, shard: s, rep: rep, kind: evRestart})
			default: // deadline-starving stall, far past any skew budget
				d := time.Duration(100+rng.Intn(200)) * time.Millisecond
				evs = append(evs,
					event{at: at, shard: s, rep: rep, kind: evDelay, amount: d},
					event{at: at + clearAfter, shard: s, rep: rep, kind: evClearDelay})
			}
		}
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].at < evs[j].at })
		out[r] = evs
	}
	return out
}
