package chaos

import (
	"reflect"
	"testing"
	"time"
)

// TestScheduleDeterminism pins the seeded generator: the same seed
// reproduces the exact same schedule, a different seed diverges, no
// event ever targets replica 0, and every victim index is in range.
func TestScheduleDeterminism(t *testing.T) {
	a := genSchedule(42, 6, 2, 3, time.Second)
	b := genSchedule(42, 6, 2, 3, time.Second)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := genSchedule(43, 6, 2, 3, time.Second)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	total := 0
	for r, evs := range a {
		for _, ev := range evs {
			total++
			if ev.rep < 1 || ev.rep >= 3 {
				t.Fatalf("round %d: event %v targets replica %d (replica 0 must never be faulted)", r, ev, ev.rep)
			}
			if ev.shard < 0 || ev.shard >= 2 {
				t.Fatalf("round %d: event %v targets shard %d of 2", r, ev, ev.shard)
			}
			if ev.at < 0 || ev.at > time.Second {
				t.Fatalf("round %d: event %v lands at %v, outside the round", r, ev, ev.at)
			}
		}
	}
	if total < 6*3 {
		t.Fatalf("6 rounds scheduled only %d events, want >= 3 per round", total)
	}
}

// TestChaosSoakFixedSeed runs the full seeded soak against a real
// in-process fleet: randomized faults from a fixed seed, mixed
// update/read/deadline-bounded traffic, bit-identity at every quiescent
// point, and the closing kill-everything durability sweep. CI runs this
// under -race; -short trims the fault phase.
func TestChaosSoakFixedSeed(t *testing.T) {
	dur := 8 * time.Second
	if testing.Short() {
		dur = 3 * time.Second
	}
	rep, err := Run(Config{Seed: 42, Duration: dur, Log: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	if rep.Updates == 0 || rep.Reads == 0 || rep.SkewReads == 0 {
		t.Fatalf("soak drove no traffic on some path: %+v", rep)
	}
	if rep.GoldenChecks == 0 {
		t.Fatalf("soak never bit-checked against golden: %+v", rep)
	}
	if rep.Faults == 0 {
		t.Fatalf("schedule injected no faults: %+v", rep)
	}
	// The final phase cold-restarts the whole fleet, so the durable log
	// must have re-driven at least every replica once.
	if rep.Resyncs == 0 {
		t.Fatalf("kill-everything restart triggered no resyncs: %+v", rep)
	}
}

// TestChaosConfigValidation pins the Replicas >= 2 floor.
func TestChaosConfigValidation(t *testing.T) {
	if _, err := Run(Config{Seed: 1, Replicas: 1}); err == nil {
		t.Fatal("Replicas 1 accepted; replica 0 is never faulted, so a soak needs 2+")
	}
}
