package dram

import (
	"tensordimm/internal/addrmap"
)

// cmdKind enumerates DRAM commands the controller can issue.
type cmdKind int

const (
	cmdACT cmdKind = iota
	cmdPRE
	cmdRD
	cmdWR
)

// Request is one 64-byte DRAM transaction presented to the controller.
type Request struct {
	Phys   uint64 // physical byte address (64 B aligned by convention)
	Write  bool
	Arrive int64 // earliest cycle the request may be scheduled
}

// queued is the controller-internal view of a request.
type queued struct {
	addr   addrmap.Addr
	write  bool
	seq    int64 // admission order, for FCFS aging
	missed bool  // an ACT or PRE was issued on behalf of this request
}

// bankState tracks one DRAM bank.
type bankState struct {
	openRow int   // -1 when precharged
	nextACT int64 // earliest cycle an ACT may issue
	nextRD  int64 // earliest cycle a RD may issue (tRCD after ACT)
	nextWR  int64
	nextPRE int64
}

// rankState tracks rank-wide constraints.
type rankState struct {
	banks    []bankState // BankGroups*Banks, index bg*banks+bank
	actTimes [4]int64    // ring of the last four ACT issue cycles (tFAW)
	actHead  int
	lastACT  int64 // most recent ACT on this rank (tRRD_S lower bound)
	// lastACTBG is the most recent ACT per bank group (tRRD_L).
	lastACTBG []int64
	// lastColBG is the most recent RD/WR issue per bank group (tCCD_L).
	lastColBG []int64
	// wrDataEnd is when the last write burst finishes on this rank (tWTR).
	wrDataEnd int64
	nextREF   int64
}

// channel simulates one independent DDR4 channel.
type channel struct {
	timing Timing
	geom   addrmap.Geometry
	policy RowPolicy

	ranks []*rankState
	queue []queued
	seq   int64

	now        int64 // current cycle
	nextCmdAt  int64 // C/A bus: one command per cycle
	busFreeAt  int64 // data bus occupied until this cycle
	lastWasWr  bool  // direction of the last data burst (turnaround)
	lastRank   int   // rank of the last data burst (tRTRS)
	lastDataAt int64

	// writeDrain batches writes to amortize bus-turnaround penalties, as
	// real controllers do: reads are served until the write queue passes
	// the high watermark, then writes drain down to the low watermark.
	writeDrain bool

	stats Result
}

// Write-drain watermarks, as fractions of the scheduler window.
const (
	drainHighFrac = 2 // start draining when writes > window/2
	drainLowCount = 2 // stop draining when writes <= 2
)

// Result aggregates simulation statistics. For multi-channel systems the
// per-channel results are summed, with Cycles being the maximum across
// channels (wall-clock).
type Result struct {
	Cycles      int64
	ReadBlocks  int64
	WriteBlocks int64
	RowHits     int64
	RowMisses   int64
	Activates   int64
	Precharges  int64
	Refreshes   int64
}

// Bytes returns the total data moved.
func (r Result) Bytes() int64 { return (r.ReadBlocks + r.WriteBlocks) * 64 }

// BandwidthGBs returns achieved bandwidth in GB/s for the given timing.
func (r Result) BandwidthGBs(t Timing) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Bytes()) / t.CyclesToSeconds(r.Cycles) / 1e9
}

// RowHitRate returns the fraction of column accesses that hit an open row.
func (r Result) RowHitRate() float64 {
	total := r.RowHits + r.RowMisses
	if total == 0 {
		return 0
	}
	return float64(r.RowHits) / float64(total)
}

// add accumulates o into r, taking the max of Cycles.
func (r *Result) add(o Result) {
	if o.Cycles > r.Cycles {
		r.Cycles = o.Cycles
	}
	r.ReadBlocks += o.ReadBlocks
	r.WriteBlocks += o.WriteBlocks
	r.RowHits += o.RowHits
	r.RowMisses += o.RowMisses
	r.Activates += o.Activates
	r.Precharges += o.Precharges
	r.Refreshes += o.Refreshes
}

func newChannel(t Timing, g addrmap.Geometry) *channel {
	ch := &channel{timing: t, geom: g}
	ch.ranks = make([]*rankState, g.Ranks)
	for i := range ch.ranks {
		rk := &rankState{
			banks:     make([]bankState, g.BankGroups*g.Banks),
			lastACTBG: make([]int64, g.BankGroups),
			lastColBG: make([]int64, g.BankGroups),
			nextREF:   int64(t.REFI),
		}
		for b := range rk.banks {
			rk.banks[b].openRow = -1
		}
		for i := range rk.actTimes {
			rk.actTimes[i] = -1 << 40
		}
		for i := range rk.lastACTBG {
			rk.lastACTBG[i] = -1 << 40
			rk.lastColBG[i] = -1 << 40
		}
		rk.lastACT = -1 << 40
		rk.wrDataEnd = -1 << 40
		ch.ranks[i] = rk
	}
	ch.lastDataAt = -1 << 40
	return ch
}

func (ch *channel) bank(a addrmap.Addr) *bankState {
	return &ch.ranks[a.Rank].banks[a.BankGroup*ch.geom.Banks+a.Bank]
}

// refreshDue performs any pending refreshes whose deadline has passed. A REF
// closes all banks in the rank and blocks it for tRFC.
func (ch *channel) refreshDue() {
	t := &ch.timing
	for _, rk := range ch.ranks {
		for ch.now >= rk.nextREF {
			start := rk.nextREF
			if ch.now > start {
				start = ch.now
			}
			done := start + int64(t.RFC)
			for b := range rk.banks {
				bk := &rk.banks[b]
				bk.openRow = -1
				if bk.nextACT < done {
					bk.nextACT = done
				}
			}
			rk.nextREF += int64(t.REFI)
			ch.stats.Refreshes++
		}
	}
}

// nextCommand computes, for request q, the next command required and the
// earliest cycle it may issue (>= ch.now).
func (ch *channel) nextCommand(q *queued) (cmdKind, int64) {
	t := &ch.timing
	rk := ch.ranks[q.addr.Rank]
	bk := ch.bank(q.addr)
	at := ch.now
	if ch.nextCmdAt > at {
		at = ch.nextCmdAt
	}

	switch {
	case bk.openRow == q.addr.Row:
		// Column command. The data burst may start no earlier than the bus
		// becomes free plus any turnaround gap: direction switches cost the
		// driver/ODT turnaround, and consecutive bursts from different
		// ranks cost the rank-to-rank switch time.
		var busGap int64
		if ch.lastDataAt > 0 {
			switch {
			case q.write != ch.lastWasWr:
				busGap = int64(t.RTW) // direction turnaround either way
			case q.addr.Rank != ch.lastRank:
				busGap = 2 // tRTRS
			}
		}
		var ready int64
		if q.write {
			ready = bk.nextWR
			// Bus: write data occupies [issue+CWL, issue+CWL+BL).
			if v := ch.busFreeAt + busGap - int64(t.CWL); v > ready {
				ready = v
			}
		} else {
			ready = bk.nextRD
			if v := ch.busFreeAt + busGap - int64(t.CL); v > ready {
				ready = v
			}
			// Write->read turnaround on the same rank (tWTR after write data).
			if v := rk.wrDataEnd + int64(t.WTRL); v > ready {
				ready = v
			}
		}
		// tCCD_L within the same bank group.
		if v := rk.lastColBG[q.addr.BankGroup] + int64(t.CCDL); v > ready {
			ready = v
		}
		if ready < at {
			ready = at
		}
		if q.write {
			return cmdWR, ready
		}
		return cmdRD, ready

	case bk.openRow == -1:
		// Activate. Respect tRRD and tFAW.
		ready := bk.nextACT
		if v := rk.lastACT + int64(t.RRDS); v > ready {
			ready = v
		}
		if v := rk.lastACTBG[q.addr.BankGroup] + int64(t.RRDL); v > ready {
			ready = v
		}
		if v := rk.actTimes[rk.actHead] + int64(t.FAW); v > ready {
			ready = v
		}
		if ready < at {
			ready = at
		}
		return cmdACT, ready

	default:
		// Row conflict: precharge first.
		ready := bk.nextPRE
		if ready < at {
			ready = at
		}
		return cmdPRE, ready
	}
}

// issue executes the chosen command at cycle `at` and returns true when the
// request itself completed (its column command was issued).
func (ch *channel) issue(q *queued, kind cmdKind, at int64) bool {
	t := &ch.timing
	rk := ch.ranks[q.addr.Rank]
	bk := ch.bank(q.addr)
	ch.nextCmdAt = at + 1
	ch.now = at

	switch kind {
	case cmdACT:
		q.missed = true
		bk.openRow = q.addr.Row
		bk.nextRD = at + int64(t.RCD)
		bk.nextWR = at + int64(t.RCD)
		bk.nextPRE = at + int64(t.RAS)
		bk.nextACT = at + int64(t.RC)
		rk.lastACT = at
		rk.lastACTBG[q.addr.BankGroup] = at
		rk.actTimes[rk.actHead] = at
		rk.actHead = (rk.actHead + 1) % len(rk.actTimes)
		ch.stats.Activates++
		return false

	case cmdPRE:
		q.missed = true
		bk.openRow = -1
		if v := at + int64(t.RP); v > bk.nextACT {
			bk.nextACT = v
		}
		ch.stats.Precharges++
		return false

	case cmdRD:
		ch.recordHit(q)
		dataStart := at + int64(t.CL)
		ch.busFreeAt = dataStart + int64(t.BL)
		ch.lastWasWr = false
		ch.lastRank = q.addr.Rank
		ch.lastDataAt = dataStart
		rk.lastColBG[q.addr.BankGroup] = at
		if v := at + int64(t.RTP); v > bk.nextPRE {
			bk.nextPRE = v
		}
		ch.stats.ReadBlocks++
		return true

	case cmdWR:
		ch.recordHit(q)
		dataStart := at + int64(t.CWL)
		dataEnd := dataStart + int64(t.BL)
		ch.busFreeAt = dataEnd
		ch.lastWasWr = true
		ch.lastRank = q.addr.Rank
		ch.lastDataAt = dataStart
		rk.lastColBG[q.addr.BankGroup] = at
		rk.wrDataEnd = dataEnd
		if v := dataEnd + int64(t.WR); v > bk.nextPRE {
			bk.nextPRE = v
		}
		ch.stats.WriteBlocks++
		return true
	}
	return false
}

// run drains the request stream through the controller. Requests are admitted
// into a window of `window` entries in arrival order; within the window the
// scheduler is first-ready FR-FCFS. Returns when all requests completed.
func (ch *channel) run(reqs []queuedReq, window int) {
	next := 0
	for len(ch.queue) > 0 || next < len(reqs) {
		// Admit arrivals.
		for next < len(reqs) && len(ch.queue) < window && reqs[next].arrive <= ch.now {
			ch.queue = append(ch.queue, queued{addr: reqs[next].addr, write: reqs[next].write, seq: ch.seq})
			ch.seq++
			next++
		}
		if len(ch.queue) == 0 {
			// Jump to the next arrival.
			ch.now = reqs[next].arrive
			continue
		}
		ch.refreshDue()

		// Update the write-drain mode from queue occupancy.
		var nWrites, nReads int
		for i := range ch.queue {
			if ch.queue[i].write {
				nWrites++
			} else {
				nReads++
			}
		}
		if ch.writeDrain {
			if nWrites <= drainLowCount && nReads > 0 {
				ch.writeDrain = false
			}
		} else if nReads == 0 || nWrites > window/drainHighFrac {
			ch.writeDrain = true
		}

		// Precompute which banks have pending row hits, so the scheduler
		// never closes a row other queued requests can still use (the
		// FR part of FR-FCFS; also prevents ACT/PRE thrashing).
		hitBanks := make(map[[3]int]bool, len(ch.queue))
		for i := range ch.queue {
			a := ch.queue[i].addr
			if ch.bank(a).openRow == a.Row {
				hitBanks[[3]int{a.Rank, a.BankGroup, a.Bank}] = true
			}
		}

		// Pick the best issuable command by score: the earliest legal issue
		// time, with strong (but soft) penalties for (a) write column
		// commands outside a drain burst — writes are posted and can wait,
		// which batches bus directions — and (b) precharges that would
		// close a row other queued requests still hit. Reads are never
		// held back: they are latency-bound and their activates overlap
		// write bursts. Soft penalties keep the controller starvation-free.
		const dirPenalty, prePenalty = 10_000, 10_000
		bestIdx := -1
		var bestKind cmdKind
		var bestAt, bestScore int64
		for i := range ch.queue {
			kind, at := ch.nextCommand(&ch.queue[i])
			score := at
			if kind == cmdWR && !ch.writeDrain {
				score += dirPenalty
			}
			a := ch.queue[i].addr
			if kind == cmdPRE && hitBanks[[3]int{a.Rank, a.BankGroup, a.Bank}] {
				score += prePenalty
			}
			if bestIdx == -1 || score < bestScore ||
				(score == bestScore && colPriority(kind) > colPriority(bestKind)) ||
				(score == bestScore && colPriority(kind) == colPriority(bestKind) && ch.queue[i].seq < ch.queue[bestIdx].seq) {
				bestIdx, bestKind, bestAt, bestScore = i, kind, at, score
			}
		}
		q := &ch.queue[bestIdx]
		addr := q.addr
		if done := ch.issue(q, bestKind, bestAt); done {
			ch.queue = append(ch.queue[:bestIdx], ch.queue[bestIdx+1:]...)
			// Closed-row policy: auto-precharge after the column command
			// unless another queued request still hits this row.
			if ch.policy == PolicyClosedRow && !ch.pendingHit(addr) {
				bk := ch.bank(addr)
				bk.openRow = -1
				if v := bk.nextPRE + int64(ch.timing.RP); v > bk.nextACT {
					bk.nextACT = v
				}
				ch.stats.Precharges++
			}
		}
	}
	// Account for the tail of the last data burst.
	if ch.busFreeAt > ch.now {
		ch.now = ch.busFreeAt
	}
	ch.stats.Cycles = ch.now
}

// pendingHit reports whether any queued request hits the open row of the
// bank at a.
func (ch *channel) pendingHit(a addrmap.Addr) bool {
	bk := ch.bank(a)
	for i := range ch.queue {
		q := &ch.queue[i]
		if q.addr.Rank == a.Rank && q.addr.BankGroup == a.BankGroup &&
			q.addr.Bank == a.Bank && q.addr.Row == bk.openRow {
			return true
		}
	}
	return false
}

// recordHit classifies a completing request as a row hit or miss.
func (ch *channel) recordHit(q *queued) {
	if q.missed {
		ch.stats.RowMisses++
	} else {
		ch.stats.RowHits++
	}
}

// colPriority orders command kinds when issue times tie: column commands
// first, then ACT, then PRE.
func colPriority(k cmdKind) int {
	switch k {
	case cmdRD, cmdWR:
		return 2
	case cmdACT:
		return 1
	default:
		return 0
	}
}

// queuedReq is a pre-mapped request bound for one channel.
type queuedReq struct {
	addr   addrmap.Addr
	write  bool
	arrive int64
}
