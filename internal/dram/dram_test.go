package dram

import (
	"math/rand"
	"testing"

	"tensordimm/internal/addrmap"
)

func testScheme(channels int) *addrmap.Scheme {
	return addrmap.CPUBaseline(channels, 2, 1<<14)
}

// reqCount trims request streams in -short mode: the structural assertions
// below hold at a quarter of the full stream length, and the suite drops
// from ~2 s to well under one.
func reqCount(t *testing.T, full int) int {
	t.Helper()
	if testing.Short() {
		return full / 4
	}
	return full
}

func TestTimingPeak(t *testing.T) {
	tm := DDR43200()
	peak := tm.ChannelPeakGBs()
	if peak < 25.5 || peak > 25.7 {
		t.Fatalf("DDR4-3200 peak = %.2f GB/s, want 25.6", peak)
	}
	if s := tm.CyclesToSeconds(1600_000_000); s < 0.99 || s > 1.01 {
		t.Fatalf("1.6e9 cycles = %v s, want ~1", s)
	}
}

// sequential builds a stream of consecutive 64 B reads (or writes).
func sequential(n int, write bool) []Request {
	reqs := make([]Request, n)
	for i := range reqs {
		reqs[i] = Request{Phys: uint64(i) * 64, Write: write}
	}
	return reqs
}

func TestSequentialReadsNearPeak(t *testing.T) {
	s := NewSystem(testScheme(1), DDR43200())
	n := reqCount(t, 20000)
	res := s.Run(sequential(n, false))
	util := s.Utilization(res)
	if util < 0.85 {
		t.Fatalf("sequential read utilization = %.2f, want > 0.85 (bw %.1f GB/s)",
			util, res.BandwidthGBs(s.Timing))
	}
	if res.ReadBlocks != int64(n) || res.WriteBlocks != 0 {
		t.Fatalf("blocks: %d reads, %d writes", res.ReadBlocks, res.WriteBlocks)
	}
	if hr := res.RowHitRate(); hr < 0.9 {
		t.Fatalf("sequential row hit rate = %.2f, want > 0.9", hr)
	}
}

func TestSequentialWritesNearPeak(t *testing.T) {
	s := NewSystem(testScheme(1), DDR43200())
	res := s.Run(sequential(reqCount(t, 20000), true))
	if util := s.Utilization(res); util < 0.8 {
		t.Fatalf("sequential write utilization = %.2f, want > 0.8", util)
	}
}

func TestRandomReadsACTBound(t *testing.T) {
	// Single-burst reads from random rows are activate-bound. With a
	// single rank, tFAW caps four ACTs per window, so utilization must sit
	// near the structural ~40% ceiling; with four ranks the ACTs spread
	// out and utilization rises well above it.
	rng := rand.New(rand.NewSource(7))
	makeReqs := func(s *System) []Request {
		capBytes := s.Scheme.Geom.TotalBytes()
		reqs := make([]Request, reqCount(t, 20000))
		for i := range reqs {
			reqs[i] = Request{Phys: (rng.Uint64() % (capBytes / 64)) * 64}
		}
		return reqs
	}
	oneRank := NewSystem(addrmap.CPUBaseline(1, 1, 1<<14), DDR43200())
	resOne := oneRank.Run(makeReqs(oneRank))
	if util := oneRank.Utilization(resOne); util > 0.55 || util < 0.2 {
		t.Fatalf("1-rank random read utilization = %.2f, want tFAW-bound ~0.4", util)
	}
	fourRank := NewSystem(testScheme(1), DDR43200())
	resFour := fourRank.Run(makeReqs(fourRank))
	if utilFour := fourRank.Utilization(resFour); utilFour <= oneRank.Utilization(resOne) {
		t.Fatalf("4-rank utilization %.2f must exceed 1-rank %.2f", utilFour, oneRank.Utilization(resOne))
	}
	if resOne.Activates == 0 || resFour.Activates == 0 {
		t.Fatal("no activates recorded")
	}
}

func TestMoreChannelsMoreBandwidth(t *testing.T) {
	reqs := sequential(reqCount(t, 40000), false)
	s1 := NewSystem(testScheme(1), DDR43200())
	s4 := NewSystem(testScheme(4), DDR43200())
	bw1 := s1.Run(reqs).BandwidthGBs(s1.Timing)
	bw4 := s4.Run(reqs).BandwidthGBs(s4.Timing)
	ratio := bw4 / bw1
	if ratio < 3.2 || ratio > 4.2 {
		t.Fatalf("4-channel speedup = %.2fx, want ~4x (bw1=%.1f bw4=%.1f)", ratio, bw1, bw4)
	}
}

func TestCPUChannelCeiling(t *testing.T) {
	// The structural claim of the paper: adding ranks/DIMMs to the same
	// channels does not add bandwidth; adding TensorDIMM channels does.
	reqs := sequential(reqCount(t, 40000), false)
	cpu8x4 := NewSystem(addrmap.CPUBaseline(8, 4, 1<<14), DDR43200()) // 32 DIMMs
	cpu8x1 := NewSystem(addrmap.CPUBaseline(8, 1, 1<<14), DDR43200()) // 8 DIMMs
	bw32 := cpu8x4.Run(reqs).BandwidthGBs(cpu8x4.Timing)
	bw8 := cpu8x1.Run(reqs).BandwidthGBs(cpu8x1.Timing)
	if bw32 > bw8*1.25 {
		t.Fatalf("extra ranks added bandwidth: %d DIMMs %.1f vs %.1f GB/s", 32, bw32, bw8)
	}
	tnode := NewSystem(addrmap.TensorDIMM(32, 1<<14), DDR43200())
	bwNode := tnode.Run(reqs).BandwidthGBs(tnode.Timing)
	if bwNode < bw32*3 {
		t.Fatalf("TensorNode %.1f GB/s not ~4x CPU %.1f GB/s", bwNode, bw32)
	}
}

func TestRefreshOverheadVisible(t *testing.T) {
	// With refresh enabled, a long run must record refreshes.
	s := NewSystem(testScheme(1), DDR43200())
	res := s.Run(sequential(reqCount(t, 100000), false))
	if res.Refreshes == 0 {
		t.Fatal("expected refreshes during a long run")
	}
}

func TestPhasesSerialize(t *testing.T) {
	s := NewSystem(testScheme(1), DDR43200())
	a := sequential(5000, false)
	b := sequential(5000, true)
	joint := s.RunPhases([][]Request{a, b})
	merged := s.Run(append(append([]Request{}, a...), b...))
	if joint.Cycles < merged.Cycles {
		t.Fatalf("phased run (%d cycles) faster than merged (%d)", joint.Cycles, merged.Cycles)
	}
	if joint.ReadBlocks != 5000 || joint.WriteBlocks != 5000 {
		t.Fatalf("phased blocks: %+v", joint)
	}
}

func TestArrivalGapsRespected(t *testing.T) {
	s := NewSystem(testScheme(1), DDR43200())
	reqs := []Request{
		{Phys: 0},
		{Phys: 64, Arrive: 100000},
	}
	res := s.Run(reqs)
	if res.Cycles < 100000 {
		t.Fatalf("cycles = %d, second request arrives at 100000", res.Cycles)
	}
}

func TestResultAccounting(t *testing.T) {
	var r Result
	r.add(Result{Cycles: 10, ReadBlocks: 2, WriteBlocks: 1, RowHits: 1, RowMisses: 2, Activates: 2, Precharges: 1, Refreshes: 1})
	r.add(Result{Cycles: 5, ReadBlocks: 3})
	if r.Cycles != 10 || r.ReadBlocks != 5 || r.WriteBlocks != 1 {
		t.Fatalf("add: %+v", r)
	}
	if r.Bytes() != 6*64 {
		t.Fatalf("Bytes = %d", r.Bytes())
	}
	if (Result{}).BandwidthGBs(DDR43200()) != 0 {
		t.Fatal("zero result should have zero bandwidth")
	}
	if (Result{}).RowHitRate() != 0 {
		t.Fatal("zero result should have zero hit rate")
	}
}

func TestSystemString(t *testing.T) {
	s := NewSystem(testScheme(2), DDR43200())
	if s.String() == "" {
		t.Fatal("empty String")
	}
}

func TestDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := NewSystem(testScheme(4), DDR43200())
	capBytes := s.Scheme.Geom.TotalBytes()
	reqs := make([]Request, 5000)
	for i := range reqs {
		reqs[i] = Request{Phys: (rng.Uint64() % (capBytes / 64)) * 64, Write: i%3 == 0}
	}
	r1 := s.Run(reqs)
	r2 := s.Run(reqs)
	if r1 != r2 {
		t.Fatalf("nondeterministic results: %+v vs %+v", r1, r2)
	}
}

func BenchmarkSequentialRead(b *testing.B) {
	s := NewSystem(testScheme(1), DDR43200())
	reqs := sequential(10000, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Run(reqs)
	}
}

func TestRowPolicyTradeoff(t *testing.T) {
	// Closed-row auto-precharge must beat (or at least match) open-row on
	// single-shot random traffic, and must not beat it on streaming
	// traffic where row hits dominate.
	rng := rand.New(rand.NewSource(17))
	open := NewSystem(addrmap.CPUBaseline(1, 1, 1<<14), DDR43200())
	closed := open.WithPolicy(PolicyClosedRow)
	capBytes := open.Scheme.Geom.TotalBytes()
	random := make([]Request, reqCount(t, 15000))
	for i := range random {
		random[i] = Request{Phys: (rng.Uint64() % (capBytes / 64)) * 64}
	}
	randOpen := open.Run(random).BandwidthGBs(open.Timing)
	randClosed := closed.Run(random).BandwidthGBs(closed.Timing)
	if randClosed < randOpen*0.95 {
		t.Fatalf("closed-row random %.1f GB/s much worse than open-row %.1f", randClosed, randOpen)
	}
	seq := sequential(reqCount(t, 15000), false)
	seqOpen := open.Run(seq).BandwidthGBs(open.Timing)
	seqClosed := closed.Run(seq).BandwidthGBs(closed.Timing)
	if seqClosed > seqOpen*1.05 {
		t.Fatalf("closed-row streaming %.1f GB/s should not beat open-row %.1f", seqClosed, seqOpen)
	}
	// The pending-hit guard must keep streaming near peak even when closed.
	if seqClosed < seqOpen*0.8 {
		t.Fatalf("closed-row streaming collapsed: %.1f vs %.1f GB/s", seqClosed, seqOpen)
	}
	if PolicyClosedRow.String() != "closed-row" || PolicyOpenRow.String() != "open-row" {
		t.Fatal("RowPolicy.String misbehaves")
	}
}

func TestBankGroupCCDLVisible(t *testing.T) {
	// DDR4 timing fidelity: back-to-back column bursts inside one bank
	// group are spaced by tCCD_L (8 > BL), so a stream pinned to a single
	// bank group must run measurably slower than one that alternates bank
	// groups (tCCD_S == BL, full rate).
	s := NewSystem(addrmap.CPUBaseline(1, 1, 1<<14), DDR43200())
	geom := s.Scheme.Geom
	// Alternating stream: consecutive blocks (the mapping walks bank
	// groups first).
	alt := sequential(8000, false)
	// Pinned stream: same bank group every time — stride by the bank-group
	// field width (the lowest field above the block offset for 1 channel).
	pinned := make([]Request, 8000)
	for i := range pinned {
		pinned[i] = Request{Phys: uint64(i) * uint64(geom.BankGroups) * 64}
	}
	bwAlt := s.Run(alt).BandwidthGBs(s.Timing)
	bwPinned := s.Run(pinned).BandwidthGBs(s.Timing)
	if bwPinned >= bwAlt*0.75 {
		t.Fatalf("tCCD_L invisible: pinned %.1f GB/s vs alternating %.1f GB/s", bwPinned, bwAlt)
	}
}
