package dram

import (
	"fmt"
	"sync"

	"tensordimm/internal/addrmap"
)

// DefaultWindow is the per-channel scheduler window (FR-FCFS lookahead plus
// write buffer), sized like a contemporary server memory controller.
const DefaultWindow = 64

// RowPolicy selects the controller's page policy.
type RowPolicy int

// Page policies: open-row keeps the activated row latched for later hits
// (best for streaming); closed-row auto-precharges after a column command
// when no queued request still hits the row (hides tRP for random traffic).
const (
	PolicyOpenRow RowPolicy = iota
	PolicyClosedRow
)

// String implements fmt.Stringer.
func (p RowPolicy) String() string {
	if p == PolicyClosedRow {
		return "closed-row"
	}
	return "open-row"
}

// System is a complete multi-channel memory system: an address-mapping
// scheme plus one controller per channel. DDR4 channels share nothing, so
// they are simulated independently and concurrently.
type System struct {
	Scheme *addrmap.Scheme
	Timing Timing
	Window int
	Policy RowPolicy
}

// NewSystem builds a system over the given mapping scheme.
func NewSystem(scheme *addrmap.Scheme, timing Timing) *System {
	return &System{Scheme: scheme, Timing: timing, Window: DefaultWindow}
}

// WithPolicy returns a copy of the system using the given page policy.
func (s *System) WithPolicy(p RowPolicy) *System {
	c := *s
	c.Policy = p
	return &c
}

// PeakGBs returns the aggregate theoretical peak bandwidth.
func (s *System) PeakGBs() float64 {
	return s.Timing.ChannelPeakGBs() * float64(s.Scheme.Geom.Channels)
}

// Run replays one batch of requests (all dependencies already satisfied) and
// returns aggregate statistics. Within the batch requests are distributed to
// channels by the address mapping and scheduled independently per channel.
func (s *System) Run(reqs []Request) Result {
	return s.RunPhases([][]Request{reqs})
}

// RunPhases replays a sequence of dependent phases: every request of phase
// k+1 arrives only once all requests of phase k have completed (this models
// e.g. a REDUCE consuming the output of a GATHER). Returns aggregate
// statistics with Cycles covering the whole sequence.
func (s *System) RunPhases(phases [][]Request) Result {
	nch := s.Scheme.Geom.Channels
	chans := make([]*channel, nch)
	for i := range chans {
		chans[i] = newChannel(s.Timing, s.Scheme.Geom)
		chans[i].policy = s.Policy
	}

	perChannel := make([][]queuedReq, nch)
	var barrier int64
	for _, phase := range phases {
		// Map and distribute this phase, with arrival at the barrier.
		for _, r := range phase {
			a := s.Scheme.Map(r.Phys)
			arrive := r.Arrive
			if arrive < barrier {
				arrive = barrier
			}
			perChannel[a.Channel] = append(perChannel[a.Channel], queuedReq{addr: a, write: r.Write, arrive: arrive})
		}
		// The next phase may not start before the worst-case completion of
		// this one. We must simulate up to here to know it; run incrementally.
		barrier = s.runUpTo(chans, perChannel)
		for i := range perChannel {
			perChannel[i] = perChannel[i][:0]
		}
	}

	var total Result
	for _, ch := range chans {
		total.add(ch.stats)
	}
	return total
}

// runUpTo drains the currently queued per-channel requests concurrently and
// returns the max completion cycle across channels.
func (s *System) runUpTo(chans []*channel, perChannel [][]queuedReq) int64 {
	var wg sync.WaitGroup
	for i, ch := range chans {
		if len(perChannel[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(ch *channel, reqs []queuedReq) {
			defer wg.Done()
			ch.run(reqs, s.Window)
		}(ch, perChannel[i])
	}
	wg.Wait()
	var maxNow int64
	for _, ch := range chans {
		if ch.now > maxNow {
			maxNow = ch.now
		}
	}
	// Synchronize idle channels to the barrier so later phases see it.
	for _, ch := range chans {
		if ch.now < maxNow {
			ch.now = maxNow
		}
	}
	return maxNow
}

// Utilization returns achieved/peak bandwidth for a result of this system.
func (s *System) Utilization(r Result) float64 {
	peak := s.PeakGBs()
	if peak == 0 {
		return 0
	}
	return r.BandwidthGBs(s.Timing) / peak
}

// String describes the system configuration.
func (s *System) String() string {
	return fmt.Sprintf("dram.System{%s, %d ch x %.1f GB/s = %.1f GB/s peak}",
		s.Scheme.Name(), s.Scheme.Geom.Channels, s.Timing.ChannelPeakGBs(), s.PeakGBs())
}
