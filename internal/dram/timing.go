// Package dram implements a command-level DDR4 memory-system simulator in the
// role Ramulator plays in the TensorDIMM paper (Section 5): it replays the
// read/write transaction streams of the tensor operations and reports the
// effective memory bandwidth under a given organization and address mapping.
//
// The model tracks individual DRAM commands (ACT, RD, WR, PRE, REF) against
// the full set of DDR4 bank/rank/channel timing constraints (tRCD, tRP, tCL,
// tRAS, tRC, tCCD_S/L, tRRD_S/L, tFAW, tWR, tWTR, tRTP, tREFI, tRFC) with a
// first-ready FR-FCFS scheduler and an open-row policy, per channel. Channels
// are independent in DDR4, so they are simulated independently (and in
// parallel) and the results are aggregated.
//
// The engine is event-driven at command granularity rather than ticked cycle
// by cycle: for every queued request it computes the earliest cycle at which
// the request's next command could legally issue, then issues the globally
// earliest one (preferring column commands, then row hits, then age). This is
// functionally equivalent to a ticked FR-FCFS controller for bandwidth
// measurement while being fast enough to sweep batch sizes and DIMM counts.
package dram

// Timing holds DDR4 timing parameters in memory-clock cycles (tCK). The
// default profile models DDR4-3200 (PC4-25600: 25.6 GB/s per 64-bit channel,
// Table 1 of the paper).
type Timing struct {
	TCKps int64 // picoseconds per memory-clock cycle

	CL  int // CAS latency (RD to first data)
	CWL int // CAS write latency (WR to first data)
	RCD int // ACT to RD/WR
	RP  int // PRE to ACT
	RAS int // ACT to PRE
	RC  int // ACT to ACT, same bank

	BL   int // data-bus cycles per burst (BL8 on a DDR bus = 4 clocks)
	CCDL int // RD-to-RD / WR-to-WR, same bank group
	RRDS int // ACT-to-ACT, different bank group
	RRDL int // ACT-to-ACT, same bank group
	FAW  int // window for at most four ACTs per rank

	WR   int // write recovery (end of write data to PRE)
	WTRS int // write-to-read turnaround, different bank group
	WTRL int // write-to-read turnaround, same bank group
	RTP  int // read to precharge
	RTW  int // read-to-write bus turnaround penalty

	REFI int // average refresh interval
	RFC  int // refresh cycle time
}

// DDR43200 returns timing for a DDR4-3200AA-class device (1600 MHz memory
// clock, 0.625 ns per cycle): 22-22-22, tRAS 52, tFAW 40, 8 Gb die tRFC.
func DDR43200() Timing {
	return Timing{
		TCKps: 625,
		CL:    22,
		CWL:   16,
		RCD:   22,
		RP:    22,
		RAS:   52,
		RC:    74,
		BL:    4,
		CCDL:  8,
		RRDS:  4,
		RRDL:  8,
		FAW:   40,
		WR:    24,
		WTRS:  4,
		WTRL:  12,
		RTP:   12,
		RTW:   8,
		REFI:  12480, // 7.8 us
		RFC:   560,   // 350 ns (8 Gb)
	}
}

// ChannelPeakGBs returns the theoretical peak bandwidth of one 64-bit channel
// in GB/s: 64 B per BL cycles.
func (t Timing) ChannelPeakGBs() float64 {
	bytesPerCycle := 64.0 / float64(t.BL)
	cyclesPerSec := 1e12 / float64(t.TCKps)
	return bytesPerCycle * cyclesPerSec / 1e9
}

// CyclesToSeconds converts a cycle count to seconds.
func (t Timing) CyclesToSeconds(cycles int64) float64 {
	return float64(cycles) * float64(t.TCKps) * 1e-12
}
