// Package benchkit is the shared throughput-benchmark harness of the hot
// serving path. The same benchmark bodies run in two places: the standard
// `go test -bench` entry points (BenchmarkServeThroughput in
// internal/serve, BenchmarkClusterEmbed in internal/cluster,
// BenchmarkExpandIndices in internal/runtime) and the cmd/benchjson tool,
// which executes them with testing.Benchmark and emits BENCH_serving.json
// so every PR leaves a comparable performance record.
//
// The harness pins the zero-allocation contract of the serving stack: all
// steady-state benchmark loops drive the *Into APIs with pooled
// per-client buffers, pre-generated request batches and warmed servers, so
// `-benchmem` reporting 0 allocs/op is a regression gate, not an accident.
// Geometry is fixed (4 tables x 64-dim embeddings, pairwise reduction,
// 4 TensorDIMMs per node) to stay comparable across PRs — the recorded
// baseline in cmd/benchjson was measured with exactly this harness.
package benchkit

import (
	"net"
	"sync"
	"testing"
	"time"

	"tensordimm/internal/cluster"
	"tensordimm/internal/netclient"
	"tensordimm/internal/netserve"
	"tensordimm/internal/node"
	"tensordimm/internal/recsys"
	"tensordimm/internal/runtime"
	"tensordimm/internal/serve"
	"tensordimm/internal/telemetry"
	"tensordimm/internal/workload"
)

// Every benchmark stack carries a live telemetry registry, so the
// allocation gate measures the serving path as it runs in production —
// instrumented. The last completed run's snapshot per benchmark is
// embedded into BENCH_serving.json, leaving exact counters (cache hits,
// batches coalesced, latency histograms) next to each perf record.
var (
	snapMu    sync.Mutex
	snapshots = map[string]*telemetry.Snapshot{}
)

// saveSnapshot records a benchmark's registry snapshot under its name.
// testing.Benchmark re-enters the body while scaling b.N; the final
// (longest) run's snapshot wins.
func saveSnapshot(name string, reg *telemetry.Registry) {
	snap := reg.Snapshot()
	snapMu.Lock()
	snapshots[name] = snap
	snapMu.Unlock()
}

// takeSnapshot hands a saved snapshot to the digest (nil if the
// benchmark has no instrumented stack, e.g. ExpandIndices).
func takeSnapshot(name string) *telemetry.Snapshot {
	snapMu.Lock()
	defer snapMu.Unlock()
	return snapshots[name]
}

// Harness geometry, fixed for cross-PR comparability.
const (
	benchTables    = 4
	benchDim       = 64
	benchReduction = 2
	benchRows      = 4096
	benchDIMMs     = 4
	benchBatch     = 4  // samples per client request
	benchMaxBatch  = 64 // merged-batch cap
	benchWorkers   = 4
	benchClients   = 16 // concurrent client goroutines (SetParallelism)
	benchWarmup    = 256
	benchFeedLen   = 64 // distinct pre-generated request batches
	benchZipfS     = 0.9
	benchNodes     = 2         // cluster shards
	benchCacheB    = 256 << 10 // per-shard hot-row cache bytes
	// The network benchmark funnels many closed-loop clients through one
	// connection: deep per-connection concurrency is what fills the
	// client's group-commit buffer and the server's linger window, making
	// the syscall amortization the coalescing writers buy visible.
	benchNetConns   = 1
	benchNetClients = 128
)

// model builds the fixed benchmark recommender.
func model(b *testing.B) *recsys.Model {
	b.Helper()
	cfg := recsys.Config{
		Name: "bench", Tables: benchTables, Reduction: benchReduction,
		FCLayers: 1, EmbDim: benchDim, TableRows: benchRows,
		Hidden: []int{16},
	}
	m, err := recsys.Build(cfg, 1)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// feed pre-generates the request batches every client cycles through, so
// load generation never appears in the measured loop.
func feed(b *testing.B, m *recsys.Model) [][][]int {
	b.Helper()
	gen, err := workload.NewZipfGenerator(m.Cfg.TableRows, benchZipfS, 7)
	if err != nil {
		b.Fatal(err)
	}
	batches := make([][][]int, benchFeedLen)
	for i := range batches {
		batches[i] = gen.Batch(m.Cfg.Tables, benchBatch, m.Cfg.Reduction)
	}
	return batches
}

// client is one load-generator goroutine's reusable state: its embedding
// destination buffer and its private cursor into the shared feed.
type client struct {
	dst    []float32
	cursor int
}

// clientPool hands RunParallel goroutines their reusable client state; the
// pool is warmed before the timer starts so steady-state Gets allocate
// nothing.
func clientPool(width int) *sync.Pool {
	p := &sync.Pool{New: func() any {
		return &client{dst: make([]float32, benchBatch*width)}
	}}
	for i := 0; i < 2*benchClients; i++ {
		p.Put(p.New())
	}
	return p
}

// serveStack builds the fixed single-node serving stack (model, node,
// concurrent deployment, micro-batching server); cleanup tears it down.
// Shared by ServeThroughput and NetRoundTrip so the two benchmarks can
// never drift onto different stacks.
func serveStack(b *testing.B) (*recsys.Model, *serve.Server, *telemetry.Registry, func()) {
	m := model(b)
	nd, err := node.New(node.Config{DIMMs: benchDIMMs, PerDIMMBytes: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	dep, err := runtime.DeployConcurrent(m, nd, benchMaxBatch, benchWorkers, 2*benchWorkers)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := serve.New(serve.Config{MaxBatch: benchMaxBatch, Workers: benchWorkers}, dep)
	if err != nil {
		b.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	srv.Instrument(reg)
	return m, srv, reg, func() {
		srv.Close()
		nd.Close()
	}
}

// driveEmbed is the shared measured loop: warm the path with benchWarmup
// requests, then run `parallelism` concurrent clients submitting 4-sample
// requests through the given EmbedInto-shaped function with pooled
// destination buffers, reporting req/s.
func driveEmbed(b *testing.B, m *recsys.Model, parallelism int,
	embed func(dst []float32, perTableRows [][]int, batch int) ([]float32, error)) {

	batches := feed(b, m)
	pool := clientPool(m.Cfg.Tables * m.Cfg.EmbDim)
	warm := pool.Get().(*client)
	for i := 0; i < benchWarmup; i++ {
		dst, err := embed(warm.dst, batches[i%len(batches)], benchBatch)
		if err != nil {
			b.Fatal(err)
		}
		warm.dst = dst
	}
	pool.Put(warm)

	b.SetParallelism(parallelism)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		st := pool.Get().(*client)
		defer pool.Put(st)
		for pb.Next() {
			dst, err := embed(st.dst, batches[st.cursor%benchFeedLen], benchBatch)
			if err != nil {
				b.Error(err)
				return
			}
			st.dst = dst
			st.cursor++
		}
	})
	b.StopTimer()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(b.N)/sec, "req/s")
	}
}

// ServeThroughput is the BenchmarkServeThroughput body: concurrent clients
// submitting 4-sample Embed requests through the micro-batching server via
// the zero-allocation EmbedInto path. Reports req/s and p99 latency (us)
// as extra metrics.
func ServeThroughput(b *testing.B) {
	m, srv, reg, cleanup := serveStack(b)
	defer cleanup()
	driveEmbed(b, m, benchClients, srv.EmbedInto)
	b.ReportMetric(srv.Metrics().TotalLatency.P99*1e6, "p99-us")
	saveSnapshot("ServeThroughput", reg)
}

// clusterStack builds the fixed 2-shard cluster with warm hot-row caches
// — the backend both ClusterEmbed and NetRoundTrip front, so the
// in-process and over-the-wire numbers measure the same compute.
func clusterStack(b *testing.B) (*recsys.Model, *cluster.Cluster, *telemetry.Registry, func()) {
	m := model(b)
	cl, err := cluster.New(m, cluster.Config{
		Nodes: benchNodes, DIMMsPerNode: benchDIMMs,
		MaxBatch: benchMaxBatch, CacheBytes: benchCacheB,
	})
	if err != nil {
		b.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	cl.Instrument(reg)
	return m, cl, reg, func() { cl.Close() }
}

// ClusterEmbed is the BenchmarkClusterEmbed body: concurrent clients
// submitting 4-sample Embed requests against a 2-shard cluster with warm
// hot-row caches, via the zero-allocation EmbedInto path. Reports req/s as
// an extra metric.
func ClusterEmbed(b *testing.B) {
	m, cl, reg, cleanup := clusterStack(b)
	defer cleanup()
	driveEmbed(b, m, benchClients/2, cl.EmbedInto)
	saveSnapshot("ClusterEmbed", reg)
}

// netStack fronts the 2-shard cluster with a netserve.Server on a
// loopback listener and dials a pooled netclient against it — the fixed
// serving plane NetRoundTrip and the saturation sweep share.
func netStack(b *testing.B) (*recsys.Model, *netserve.Server, *netclient.Client, *telemetry.Registry, func()) {
	return netStackDeadline(b, 0)
}

// netStackDeadline is netStack with a client-side deadline budget on
// every request — the steady-state configuration NetRoundTripDeadline
// pins, where budgets are stamped and checked but never trip.
func netStackDeadline(b *testing.B, deadline time.Duration) (*recsys.Model, *netserve.Server, *netclient.Client, *telemetry.Registry, func()) {
	m, cluster, reg, clusterDown := clusterStack(b)
	srv, err := netserve.New(netserve.ClusterBackend(cluster), netserve.Config{Registry: reg})
	if err != nil {
		clusterDown()
		b.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		clusterDown()
		b.Fatal(err)
	}
	go srv.Serve(l)
	cl, err := netclient.Dial(l.Addr().String(), netclient.Config{Conns: benchNetConns, Deadline: deadline})
	if err != nil {
		srv.Close()
		clusterDown()
		b.Fatal(err)
	}
	return m, srv, cl, reg, func() {
		cl.Close()
		srv.Close()
		clusterDown()
	}
}

// NetRoundTrip is the BenchmarkNetRoundTrip body: the ClusterEmbed
// workload driven over the network plane — a netserve.Server fronting the
// 2-shard cluster on a loopback listener, concurrent pipelined netclient
// clients submitting 4-sample EmbedInto requests over a small connection
// pool. The measured loop covers encode, send coalescing, TCP round trip,
// admission, backend execution, response coalescing and decode; with
// pooled tasks/calls and reused buffers on both endpoints it pins the
// network request path allocation-free (amortized) under -benchmem.
// Reports req/s and the server-side p99 (us) as extra metrics.
func NetRoundTrip(b *testing.B) {
	m, srv, cl, reg, cleanup := netStack(b)
	defer cleanup()
	driveEmbed(b, m, benchNetClients, cl.EmbedInto)
	sm := srv.Metrics()
	b.ReportMetric(sm.Latency.P99*1e6, "p99-us")
	b.ReportMetric(float64(sm.BatchedIn)/float64(sm.BatchesIn+1), "in-coalesce")
	b.ReportMetric(float64(sm.BatchedOut)/float64(sm.BatchesOut+1), "out-coalesce")
	saveSnapshot("NetRoundTrip", reg)
}

// NetRoundTripDeadline is the BenchmarkNetRoundTripDeadline body: the
// NetRoundTrip workload with an ample per-request deadline budget (250ms
// against sub-millisecond round trips, so it never trips). It pins the
// cost of carrying deadlines on the steady-state read path: stamping the
// budget client-side, the wire bytes, the server-side expiry checks at
// admission and execution, and the client's per-call deadline timer —
// all of it allocation-free, enforced by the CI allocation gate.
func NetRoundTripDeadline(b *testing.B) {
	m, srv, cl, reg, cleanup := netStackDeadline(b, 250*time.Millisecond)
	defer cleanup()
	driveEmbed(b, m, benchNetClients, cl.EmbedInto)
	sm := srv.Metrics()
	b.ReportMetric(sm.Latency.P99*1e6, "p99-us")
	if sm.Expired != 0 {
		b.Fatalf("%d requests expired under a 250ms budget: the benchmark must never trip deadlines", sm.Expired)
	}
	saveSnapshot("NetRoundTripDeadline", reg)
}

// ExpandIndices is the BenchmarkExpandIndices body: stripe-index expansion
// of a 64-sample pairwise-reduction batch into a reused scratch buffer.
func ExpandIndices(b *testing.B) {
	rows := make([]int, benchMaxBatch*benchReduction)
	for i := range rows {
		rows[i] = (i * 37) % benchRows
	}
	const stripes = benchDim / (benchDIMMs * 16)
	buf := make([]int32, 0, len(rows)*stripes+64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = runtime.ExpandIndicesInto(buf[:0], rows, benchReduction, stripes)
	}
	b.StopTimer()
	if len(buf) == 0 {
		b.Fatal("empty expansion")
	}
}

// Result is one benchmark's digest, as serialized into BENCH_serving.json.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	ReqPerSec   float64 `json:"req_per_sec,omitempty"`
	P99Us       float64 `json:"p99_us,omitempty"`
	// Telemetry is the benchmark stack's registry snapshot after the final
	// run — exact counters and latency histograms behind the averages
	// above. Absent for benchmarks with no serving stack (ExpandIndices).
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

// digest converts a testing.BenchmarkResult into a Result.
func digest(name string, r testing.BenchmarkResult) Result {
	out := Result{
		Name:        name,
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
	if v, ok := r.Extra["req/s"]; ok {
		out.ReqPerSec = v
	}
	if v, ok := r.Extra["p99-us"]; ok {
		out.P99Us = v
	}
	out.Telemetry = takeSnapshot(name)
	return out
}

// RunSuite executes the hot-path benchmarks with testing.Benchmark
// (auto-scaled iteration counts) and returns their digests in suite order:
// ServeThroughput, ClusterEmbed, ExpandIndices, NetRoundTrip,
// NetRoundTripDeadline.
func RunSuite() []Result {
	return []Result{
		digest("ServeThroughput", testing.Benchmark(ServeThroughput)),
		digest("ClusterEmbed", testing.Benchmark(ClusterEmbed)),
		digest("ExpandIndices", testing.Benchmark(ExpandIndices)),
		digest("NetRoundTrip", testing.Benchmark(NetRoundTrip)),
		digest("NetRoundTripDeadline", testing.Benchmark(NetRoundTripDeadline)),
	}
}
