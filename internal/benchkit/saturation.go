package benchkit

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tensordimm/internal/netclient"
	"tensordimm/internal/stats"
	"tensordimm/internal/wire"
)

// The saturation sweep is the open-loop companion of NetRoundTrip: the
// closed-loop benchmark reports the plane's peak, the sweep shows how it
// gets there — offered load steps up a fixed grid, arrivals are paced by
// wall clock regardless of completions (the arrival model of a production
// front end), and each step records what the plane actually delivered,
// its p99, and how much load was shed by admission control or the
// client-side arrival queue overflowing.
const (
	// satWorkers bounds concurrent in-flight requests; arrivals beyond it
	// queue (up to satQueue) and then shed — open loop needs a bounded
	// queue or overload would just grow the backlog without ever failing.
	satWorkers = 256
	satQueue   = 4096
	// satPointTime is how long each offered-load step runs.
	satPointTime = 400 * time.Millisecond
	// satPace is the arrival pacer's wake interval: each wake issues every
	// arrival due since the last one, so pacing stays accurate under
	// scheduler jitter without a per-request timer.
	satPace = 200 * time.Microsecond
)

// saturationOffered is the offered-load grid, in req/s: from well under
// the plane's closed-loop peak to well past it, so the recorded curve
// shows the ramp, the knee, and the overload plateau.
var saturationOffered = []float64{25_000, 50_000, 75_000, 100_000, 125_000, 150_000}

// SaturationPoint is one offered-load step of the sweep, as serialized
// into BENCH_serving.json's "saturation" section.
type SaturationPoint struct {
	// OfferedReqS is the open-loop arrival rate this step paced.
	OfferedReqS float64 `json:"offered_req_s"`
	// AchievedReqS is the completion rate the plane delivered.
	AchievedReqS float64 `json:"achieved_req_s"`
	// P99Us is the client-observed p99 latency (queueing included), µs.
	P99Us float64 `json:"p99_us"`
	// Shed counts arrivals lost to overload: server-side admission sheds
	// plus client-side arrival-queue overflow.
	Shed uint64 `json:"shed"`
}

// RunSaturation executes the open-loop sweep against the same loopback
// stack NetRoundTrip measures (2-shard cluster behind netserve, pooled
// netclient) and returns one point per offered-load step. It reuses
// testing.Benchmark as the harness so the stack builders' error handling
// is shared with the closed-loop suite; the sweep itself runs exactly
// once — its multi-second first iteration satisfies the default benchtime,
// so testing.Benchmark never re-enters.
func RunSaturation() []SaturationPoint {
	var pts []SaturationPoint
	testing.Benchmark(func(b *testing.B) {
		if pts != nil {
			return
		}
		pts = saturationSweep(b)
	})
	return pts
}

// saturationSweep builds the network stack, warms it, and walks the
// offered-load grid.
func saturationSweep(b *testing.B) []SaturationPoint {
	m, _, cl, _, cleanup := netStack(b)
	defer cleanup()
	batches := feed(b, m)
	var dst []float32
	for i := 0; i < benchWarmup; i++ {
		d, err := cl.EmbedInto(dst, batches[i%len(batches)], benchBatch)
		if err != nil {
			b.Fatal(err)
		}
		dst = d
	}
	pts := make([]SaturationPoint, 0, len(saturationOffered))
	for _, offered := range saturationOffered {
		pts = append(pts, saturationPoint(b, cl, batches, offered, satPointTime))
	}
	return pts
}

// saturationPoint paces one offered-load step: a wall-clock pacer issues
// arrival stamps into a bounded queue, satWorkers closed-loop workers
// drain it, and the step reports achieved rate, p99 (measured from the
// arrival stamp, so queueing counts), and shed arrivals.
func saturationPoint(b *testing.B, cl *netclient.Client, batches [][][]int, offered float64, dur time.Duration) SaturationPoint {
	arrivals := make(chan time.Time, satQueue)
	var lat stats.Latency
	var completed, shed atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < satWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var dst []float32
			cursor := w
			for at := range arrivals {
				d, err := cl.EmbedInto(dst, batches[cursor%len(batches)], benchBatch)
				cursor++
				if err != nil {
					var se *netclient.ServerError
					if errors.As(err, &se) && se.Code == wire.ErrOverloaded {
						shed.Add(1)
						continue
					}
					b.Error(err)
					return
				}
				dst = d
				completed.Add(1)
				lat.Observe(time.Since(at).Seconds())
			}
		}(w)
	}

	start := time.Now()
	issued := 0
	for {
		el := time.Since(start)
		if el >= dur {
			break
		}
		now := time.Now()
		for due := int(offered * el.Seconds()); issued < due; issued++ {
			select {
			case arrivals <- now:
			default:
				// Queue full: the open-loop arrival is lost, which is the
				// honest overload signal — a real front end would time it out.
				shed.Add(1)
			}
		}
		time.Sleep(satPace)
	}
	close(arrivals)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	return SaturationPoint{
		OfferedReqS:  offered,
		AchievedReqS: float64(completed.Load()) / elapsed,
		P99Us:        lat.Summary().P99 * 1e6,
		Shed:         shed.Load(),
	}
}
