package faultnet_test

import (
	"io"
	"net"
	"testing"
	"time"
)

// waitLive polls until the injector tracks exactly n live connections.
func waitLive(t *testing.T, in interface{ Live() int }, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for in.Live() != n {
		if time.Now().After(deadline) {
			t.Fatalf("Live() = %d, want %d", in.Live(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// echo writes msg and reads it back, returning the round-trip time.
func echo(t *testing.T, nc net.Conn, msg string) time.Duration {
	t.Helper()
	start := time.Now()
	if _, err := nc.Write([]byte(msg)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(nc, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != msg {
		t.Fatalf("echoed %q, want %q", buf, msg)
	}
	return time.Since(start)
}

// TestDelayAppliesAtReadEntry pins the injector's delay semantics, which
// every consumer's timing logic depends on: the sleep happens when Read
// is ENTERED, so a Read the peer is already parked in passes un-delayed
// and only the next entry stalls. A test (or soak) arming a delay
// must therefore expect the FIRST request through to be fast.
func TestDelayAppliesAtReadEntry(t *testing.T) {
	addr, in := pipeServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// Let the echo server accept and park in its first Read.
	waitLive(t, in, 1)
	time.Sleep(20 * time.Millisecond)

	in.SetReadDelay(200 * time.Millisecond)
	defer in.SetReadDelay(0)
	// The parked Read predates the delay: the first echo is fast.
	if el := echo(t, nc, "a"); el >= 150*time.Millisecond {
		t.Fatalf("first echo took %v: a Read already parked must pass un-delayed", el)
	}
	// The server re-entered Read with the delay armed: the next echo
	// stalls for (at least most of) it.
	if el := echo(t, nc, "b"); el < 100*time.Millisecond {
		t.Fatalf("second echo took %v: the next Read entry must sleep the armed delay", el)
	}
}

// TestClearDelayRestoresLatency verifies disarming: one in-flight Read
// may still be sleeping, but every entry after the clear is fast.
func TestClearDelayRestoresLatency(t *testing.T) {
	addr, in := pipeServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	waitLive(t, in, 1)
	in.SetReadDelay(100 * time.Millisecond)
	echo(t, nc, "a") // fast (parked Read), re-arms the next entry
	in.SetReadDelay(0)
	echo(t, nc, "b") // flushes the entry that was already sleeping
	if el := echo(t, nc, "c"); el >= 80*time.Millisecond {
		t.Fatalf("echo after clearing the delay took %v", el)
	}
}

// TestTruncationBudgetIsPerConn pins that SetTruncateAfter arms each
// accepted connection with its OWN byte budget — one victim's cut does
// not spend a later connection's budget — and that clearing it restores
// full streams for fresh connections.
func TestTruncationBudgetIsPerConn(t *testing.T) {
	addr, in := pipeServer(t)
	in.SetTruncateAfter(4)

	// A connection staying under its 4-byte budget works.
	nc1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc1.Close()
	echo(t, nc1, "xyz")

	// A second connection gets a fresh 4-byte budget: 3 more bytes echo,
	// which a budget shared with the first connection (4 - 3 = 1 left)
	// could not carry.
	nc2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	echo(t, nc2, "abc")
	// The read consuming the budget's last byte RSTs the connection: the
	// 4th byte goes in, but its echo can never come back.
	nc2.SetReadDeadline(time.Now().Add(2 * time.Second))
	nc2.Write([]byte("e"))
	buf := make([]byte, 1)
	if _, err := nc2.Read(buf); err == nil {
		t.Fatal("read through an exhausted truncation budget succeeded")
	}

	// Disarmed: fresh connections carry unbounded streams again.
	in.SetTruncateAfter(0)
	nc3, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc3.Close()
	echo(t, nc3, "a long message far past four bytes")
}

// TestLiveTracksConnLifecycle pins the Live() accounting across multiple
// concurrent connections and their teardown.
func TestLiveTracksConnLifecycle(t *testing.T) {
	addr, in := pipeServer(t)
	nc1, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc2.Close()
	echo(t, nc1, "a")
	echo(t, nc2, "b")
	waitLive(t, in, 2)
	nc1.Close() // the echo server sees EOF and closes its wrapped side
	waitLive(t, in, 1)
}

// TestDropResetsLiveConns pins that Drop(true) does not merely refuse
// new connections: it RSTs every live one, so an armed drop looks like a
// crashed process to its peers immediately.
func TestDropResetsLiveConns(t *testing.T) {
	addr, in := pipeServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	echo(t, nc, "a")
	waitLive(t, in, 1)
	in.Drop(true)
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("read succeeded on a connection Drop should have reset")
	}
	waitLive(t, in, 0)
	in.Drop(false)
}
