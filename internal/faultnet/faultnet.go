// Package faultnet wraps net.Listener / net.Conn with switchable fault
// injection for network tests: added read latency, byte truncation,
// connection drops, and hard resets. The failover suites use it to
// simulate a replica crashing mid-traffic without spawning and killing
// real processes, and any future network test can reuse it.
//
// An Injector is shared by a listener and every connection it accepts;
// flipping its knobs affects live connections immediately. All methods
// are safe for concurrent use.
package faultnet

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Injector holds the fault knobs for one wrapped listener and its
// connections. The zero value injects nothing.
type Injector struct {
	delay    atomic.Int64 // per-Read added latency, nanoseconds
	truncAt  atomic.Int64 // close each conn after this many bytes read (0 = off)
	dropping atomic.Bool  // refuse new conns and fail reads/writes

	mu    sync.Mutex
	conns map[*Conn]struct{}
}

// NewInjector returns an injector with no faults armed.
func NewInjector() *Injector {
	return &Injector{conns: make(map[*Conn]struct{})}
}

// SetReadDelay arms (or with 0 disarms) an added latency before every
// Read on every wrapped connection — slow-network and hedging tests.
func (in *Injector) SetReadDelay(d time.Duration) { in.delay.Store(int64(d)) }

// SetTruncateAfter arms byte truncation: each connection is hard-closed
// after reading n more bytes (counted per connection from its current
// position), so a peer observes a mid-frame cut. 0 disarms for
// connections that have not yet hit their limit.
func (in *Injector) SetTruncateAfter(n int64) {
	in.truncAt.Store(n)
	in.mu.Lock()
	for c := range in.conns {
		c.truncLeft.Store(n)
	}
	in.mu.Unlock()
}

// Drop arms or disarms the dropped state: while dropped, new connections
// are refused and existing ones fail on their next Read or Write.
// Arming also resets every live connection immediately.
func (in *Injector) Drop(on bool) {
	in.dropping.Store(on)
	if on {
		in.Reset()
	}
}

// Reset hard-closes every live wrapped connection (RST where the
// platform allows, via SO_LINGER 0) without touching the armed state —
// the "process was SIGKILLed" simulation: peers see connection resets,
// not graceful FINs.
func (in *Injector) Reset() {
	in.mu.Lock()
	conns := make([]*Conn, 0, len(in.conns))
	for c := range in.conns {
		conns = append(conns, c)
	}
	in.mu.Unlock()
	for _, c := range conns {
		c.reset()
	}
}

// Live reports how many wrapped connections are currently open.
func (in *Injector) Live() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return len(in.conns)
}

// track registers a connection for Reset/SetTruncateAfter fan-out.
func (in *Injector) track(c *Conn) {
	in.mu.Lock()
	in.conns[c] = struct{}{}
	in.mu.Unlock()
}

// forget drops a closed connection from the registry.
func (in *Injector) forget(c *Conn) {
	in.mu.Lock()
	delete(in.conns, c)
	in.mu.Unlock()
}

// Listener wraps an accept loop with the injector's faults.
type Listener struct {
	net.Listener
	in *Injector
}

// Wrap returns l with in's faults applied to it and every connection it
// accepts.
func Wrap(l net.Listener, in *Injector) *Listener {
	return &Listener{Listener: l, in: in}
}

// Accept implements net.Listener. While the injector is dropped,
// accepted connections are closed immediately — the peer sees a refused
// or instantly-reset connection, as with a dead process.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		nc, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.in.dropping.Load() {
			hardClose(nc)
			continue
		}
		c := &Conn{Conn: nc, in: l.in}
		c.truncLeft.Store(l.in.truncAt.Load())
		l.in.track(c)
		return c, nil
	}
}

// Conn is one fault-injected connection.
type Conn struct {
	net.Conn
	in        *Injector
	truncLeft atomic.Int64 // bytes until hard close; <= 0 with truncAt armed means cut
	closed    atomic.Bool
}

// Read implements net.Conn, applying delay, drop, and truncation faults.
func (c *Conn) Read(b []byte) (int, error) {
	if d := c.in.delay.Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
	if c.in.dropping.Load() {
		c.reset()
		return 0, net.ErrClosed
	}
	if c.in.truncAt.Load() > 0 {
		left := c.truncLeft.Load()
		if left <= 0 {
			c.reset()
			return 0, net.ErrClosed
		}
		if int64(len(b)) > left {
			b = b[:left]
		}
		n, err := c.Conn.Read(b)
		if c.truncLeft.Add(-int64(n)) <= 0 {
			c.reset()
			if err == nil {
				err = net.ErrClosed
			}
		}
		return n, err
	}
	return c.Conn.Read(b)
}

// Write implements net.Conn, failing while the injector is dropped.
func (c *Conn) Write(b []byte) (int, error) {
	if c.in.dropping.Load() {
		c.reset()
		return 0, net.ErrClosed
	}
	return c.Conn.Write(b)
}

// Close implements net.Conn.
func (c *Conn) Close() error {
	if c.closed.Swap(true) {
		return nil
	}
	c.in.forget(c)
	return c.Conn.Close()
}

// reset hard-closes the connection so the peer sees an RST, not a FIN.
func (c *Conn) reset() {
	if c.closed.Swap(true) {
		return
	}
	c.in.forget(c)
	hardClose(c.Conn)
}

// hardClose closes nc with SO_LINGER 0 when it is a TCP connection, so
// the close goes out as a reset — what a killed process's kernel sends
// for data arriving after the process died.
func hardClose(nc net.Conn) {
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	nc.Close()
}
