package faultnet_test

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"tensordimm/internal/faultnet"
)

// pipeServer starts a wrapped echo listener and returns its address and
// injector.
func pipeServer(t *testing.T) (string, *faultnet.Injector) {
	t.Helper()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := faultnet.NewInjector()
	l := faultnet.Wrap(raw, in)
	t.Cleanup(func() { l.Close() })
	go func() {
		for {
			nc, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				defer nc.Close()
				io.Copy(nc, nc)
			}()
		}
	}()
	return raw.Addr().String(), in
}

func TestPassThroughEcho(t *testing.T) {
	addr, in := pipeServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(nc, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("echo %q err %v", buf, err)
	}
	if in.Live() != 1 {
		t.Fatalf("Live() = %d, want 1", in.Live())
	}
}

func TestReadDelay(t *testing.T) {
	addr, in := pipeServer(t)
	in.SetReadDelay(50 * time.Millisecond)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	start := time.Now()
	nc.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(nc, buf); err != nil {
		t.Fatal(err)
	}
	// The server's read of our byte waits at least one injected delay.
	if el := time.Since(start); el < 50*time.Millisecond {
		t.Fatalf("echo in %v, want >= 50ms of injected latency", el)
	}
	in.SetReadDelay(0)
}

func TestResetKillsLiveConns(t *testing.T) {
	addr, in := pipeServer(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(nc, buf); err != nil {
		t.Fatal(err)
	}
	in.Reset()
	// The peer observes the cut: subsequent reads fail (RST or EOF).
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("read succeeded after Reset")
	}
	if in.Live() != 0 {
		t.Fatalf("Live() = %d after Reset, want 0", in.Live())
	}
}

func TestDropRefusesNewConns(t *testing.T) {
	addr, in := pipeServer(t)
	in.Drop(true)
	nc, err := net.Dial("tcp", addr)
	if err == nil {
		// The TCP handshake may complete (kernel backlog) but the wrapped
		// accept closes it immediately: the first read fails.
		nc.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 1)
		if _, rerr := nc.Read(buf); rerr == nil {
			t.Fatal("dropped listener served a connection")
		}
		nc.Close()
	}
	in.Drop(false)
	// Disarmed: connections flow again.
	nc, err = net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write([]byte("y"))
	buf := make([]byte, 1)
	if _, err := io.ReadFull(nc, buf); err != nil || buf[0] != 'y' {
		t.Fatalf("echo after undrop: %q err %v", buf, err)
	}
}

func TestTruncateCutsMidStream(t *testing.T) {
	addr, in := pipeServer(t)
	in.SetTruncateAfter(3)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write([]byte("abcdef"))
	// The server reads at most 3 bytes before its side is hard-closed, so
	// we can never receive all 6 back.
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	got := 0
	buf := make([]byte, 6)
	for got < 6 {
		n, err := nc.Read(buf[got:])
		got += n
		if err != nil {
			break
		}
	}
	if got > 3 {
		t.Fatalf("received %d bytes through a 3-byte truncation", got)
	}
	var ne net.Error
	if in.Live() != 0 && !errors.As(err, &ne) {
		t.Fatalf("truncated conn still live (Live %d)", in.Live())
	}
}
