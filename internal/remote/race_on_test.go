//go:build race

package remote_test

// raceEnabled reports that this binary was built with the race detector,
// whose goroutine and channel instrumentation heap-allocates and would
// make an allocation pin meaningless.
const raceEnabled = true
