//go:build race

package remote_test

// raceEnabled reports that this binary was built with the race detector;
// the e2e TestMain propagates it so spawned tensorserve processes are
// built -race too. (Allocation pins use //go:build !race directly — see
// zeroalloc_test.go.)
const raceEnabled = true
