package remote_test

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tensordimm/internal/cluster"
	"tensordimm/internal/faultnet"
	"tensordimm/internal/netserve"
	"tensordimm/internal/node"
	"tensordimm/internal/remote"
	"tensordimm/internal/runtime"
	"tensordimm/internal/serve"
	"tensordimm/internal/wire"
)

// brownBackend wraps a replica's backend so tests can turn the replica
// into a brown-out: embeds sleep (hold > 0) or block outright (hold < 0)
// while the connection and handshake stay perfectly healthy. Combined
// with a MaxInflight-1 server, one slow embed pins the only admission
// slot and every later read is shed OVERLOADED — the sustained-shed
// failure mode the circuit breaker exists for, which the
// down/syncing/healthy states never see.
type brownBackend struct {
	netserve.Backend
	hold    atomic.Int64 // ns to sleep per embed; negative blocks until release
	rel     chan struct{}
	relOnce sync.Once
}

func (b *brownBackend) EmbedInto(dst []float32, rows [][]int, batch int) ([]float32, error) {
	switch d := b.hold.Load(); {
	case d < 0:
		<-b.rel
	case d > 0:
		time.Sleep(time.Duration(d))
	}
	return b.Backend.EmbedInto(dst, rows, batch)
}

// release unblocks every embed stuck on a negative hold (idempotent) so
// the server can drain at teardown.
func (b *brownBackend) release() { b.relOnce.Do(func() { close(b.rel) }) }

// startShedReplica starts a replica like startReplica, but with a
// brownBackend in front of its serve stack and a single admission slot.
func startShedReplica(t *testing.T, strat cluster.Strategy, nodes, s int) (*replicaProc, *brownBackend) {
	t.Helper()
	m := buildModel(t)
	shardModel, err := cluster.ExtractShardModel(m, strat, nodes, s)
	if err != nil {
		t.Fatal(err)
	}
	p := cluster.NewPlacement(strat, nodes, m.Cfg.Tables, m.Cfg.TableRows)
	maxSub := p.MaxSub(s, testMaxBatch, m.Cfg.Reduction)
	nd, err := node.New(node.Config{DIMMs: 4, PerDIMMBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := runtime.DeployConcurrent(shardModel, nd, maxSub, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{MaxBatch: maxSub, Workers: 2}, dep)
	if err != nil {
		t.Fatal(err)
	}
	bb := &brownBackend{Backend: netserve.ServerBackend(srv), rel: make(chan struct{})}
	ns, err := netserve.New(bb, netserve.Config{Role: wire.RoleReplica, MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := faultnet.NewInjector()
	go ns.Serve(faultnet.Wrap(l, in))
	var once sync.Once
	rp := &replicaProc{addr: l.Addr().String(), in: in}
	rp.stop = func() {
		once.Do(func() {
			ns.Close()
			srv.Close()
			nd.Close()
		})
	}
	t.Cleanup(rp.stop)
	// Runs before rp.stop (LIFO): a blocked executor must be released or
	// the server's graceful drain never finishes.
	t.Cleanup(bb.release)
	return rp, bb
}

// TestBreakerCapsAmplification browns out one replica of a two-replica
// group (sheds plus slow admits on a healthy connection) and asserts the
// circuit breaker trips and caps the failover amplification: with 400
// reads and ~200 brown-primary attempts on offer, the tripped breaker
// keeps the observed failovers to a small constant instead of one per
// brown-primary read — and not one request fails.
func TestBreakerCapsAmplification(t *testing.T) {
	m := buildModel(t)
	brown, bb := startShedReplica(t, cluster.TableWise, 1, 0)
	good := startReplica(t, cluster.TableWise, 1, 0, "")
	rc := newRouter(t, m, cluster.TableWise, [][]string{{brown.addr, good.addr}}, func(cfg *remote.Config) {
		cfg.HedgeAfter = time.Second     // no hedging: isolate failover behavior
		cfg.BreakerOpenFor = time.Minute // no probe re-admission inside the test window
		cfg.RetryBudget = 5              // ample tokens: the breaker must be the cap
		cfg.RetryBurst = 64
	})
	bb.hold.Store(int64(300 * time.Millisecond))

	const workers, iters = 8, 50
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(400 + w)))
			var dst []float32
			for i := 0; i < iters; i++ {
				batch := 1 + rng.Intn(testMaxBatch)
				var err error
				dst, err = rc.EmbedInto(dst, randRows(rng, m.Cfg, batch), batch)
				if err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("read under brown-out failed despite a healthy replica: %v", err)
	}

	mt := rc.Metrics()
	if mt.Requests != workers*iters {
		t.Fatalf("completed %d reads, want %d: %+v", mt.Requests, workers*iters, mt)
	}
	if mt.BreakerTrips == 0 {
		t.Fatalf("sustained sheds never tripped the breaker: %+v", mt)
	}
	// Without the breaker every brown-primary read (~half of 400) costs a
	// failover; with it only the pre-trip window does. 100 leaves slack
	// for re-trip cycles when a slow admit closes the breaker mid-test.
	if mt.Failovers > 100 {
		t.Fatalf("breaker did not cap amplification: %d failovers for %d reads: %+v",
			mt.Failovers, workers*iters, mt)
	}
}

// TestRetryBudgetCapsFailover disables the breaker and asserts the shard
// retry budget alone bounds failover amplification: failovers can never
// exceed burst + budget-rate x offered reads, the overflow is denied with
// a typed *Unavailable, and the one read stuck on the wedged replica
// fails typed on its deadline instead of hanging.
func TestRetryBudgetCapsFailover(t *testing.T) {
	m := buildModel(t)
	brown, bb := startShedReplica(t, cluster.TableWise, 1, 0)
	good := startReplica(t, cluster.TableWise, 1, 0, "")
	rc := newRouter(t, m, cluster.TableWise, [][]string{{brown.addr, good.addr}}, func(cfg *remote.Config) {
		cfg.HedgeAfter = 30 * time.Second // no hedging
		cfg.BreakerWindow = -1            // breaker off: the budget is the only cap
		cfg.Deadline = 2 * time.Second    // bounds the read wedged in the blocked slot
		// Defaults: RetryBudget 0.2, RetryBurst 16.
	})
	bb.hold.Store(-1) // block the single admission slot outright

	const workers, iters = 4, 50
	var wg sync.WaitGroup
	var badErr atomic.Value
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + w)))
			var dst []float32
			for i := 0; i < iters; i++ {
				batch := 1 + rng.Intn(testMaxBatch)
				var err error
				dst, err = rc.EmbedInto(dst, randRows(rng, m.Cfg, batch), batch)
				if err == nil {
					continue
				}
				var un *remote.Unavailable
				var de *remote.DeadlineExceeded
				if !errors.As(err, &un) && !errors.As(err, &de) {
					badErr.Store(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err, ok := badErr.Load().(error); ok {
		t.Fatalf("failed read was not typed: %v", err)
	}

	mt := rc.Metrics()
	if mt.RetriesDenied == 0 {
		t.Fatalf("brown-out never exhausted the retry budget: %+v", mt)
	}
	// Hard arithmetic cap: 16 burst tokens + 0.2 per offered read. Every
	// failover past it must have been denied.
	maxFailovers := uint64(16 + (workers*iters)/5)
	if mt.Failovers > maxFailovers {
		t.Fatalf("retry budget leaked: %d failovers, cap %d: %+v", mt.Failovers, maxFailovers, mt)
	}
	if mt.DeadlineExceeded == 0 {
		t.Fatalf("the read wedged in the blocked slot never hit its deadline: %+v", mt)
	}
}

// TestDeadlineExceededTyped pins end-to-end deadline semantics on the
// remote router: a healthy fleet under a deadline serves bit-identically,
// a stalled fleet fails within the budget (not the stall) with a typed
// *DeadlineExceeded, and the abandoned attempt is reaped cleanly so the
// fleet serves again the moment the stall clears.
func TestDeadlineExceededTyped(t *testing.T) {
	m := buildModel(t)
	a := startReplica(t, cluster.TableWise, 1, 0, "")
	rc := newRouter(t, m, cluster.TableWise, [][]string{{a.addr}}, func(cfg *remote.Config) {
		cfg.Deadline = 25 * time.Millisecond
	})
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 5; i++ {
		batch := 1 + rng.Intn(testMaxBatch)
		checkGolden(t, m, rc, randRows(rng, m.Cfg, batch), batch)
	}

	// The injector delays each Read at entry, so a Read the server is
	// already parked in passes un-delayed — keep issuing reads until one
	// lands behind a delayed Read and stalls.
	a.in.SetReadDelay(300 * time.Millisecond)
	var de *remote.DeadlineExceeded
	var elapsed time.Duration
	waitCond(t, 5*time.Second, "a deadline-bounded failure", func() bool {
		start := time.Now()
		_, err := rc.Embed(randRows(rng, m.Cfg, 2), 2)
		elapsed = time.Since(start)
		return errors.As(err, &de)
	})
	if de.Shard != 0 || de.Budget != 25*time.Millisecond {
		t.Fatalf("DeadlineExceeded{Shard: %d, Budget: %v}, want shard 0 budget 25ms", de.Shard, de.Budget)
	}
	if elapsed > time.Second {
		t.Fatalf("deadline-bounded read took %v, budget was 25ms", elapsed)
	}
	a.in.SetReadDelay(0)

	// The reaped attempt drains in the background; once the stall clears
	// the same router serves bit-identical reads again.
	waitCond(t, 5*time.Second, "fleet recovery after the stall", func() bool {
		_, err := rc.Embed(randRows(rng, m.Cfg, 1), 1)
		return err == nil
	})
	for i := 0; i < 5; i++ {
		batch := 1 + rng.Intn(testMaxBatch)
		checkGolden(t, m, rc, randRows(rng, m.Cfg, batch), batch)
	}
	if mt := rc.Metrics(); mt.DeadlineExceeded == 0 {
		t.Fatalf("DeadlineExceeded counter never moved: %+v", mt)
	}
}
