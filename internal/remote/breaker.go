package remote

import (
	"sync"
	"sync/atomic"
	"time"
)

// Circuit breaker states. A replica's breaker is closed (traffic flows)
// until its rolling failure rate trips it open (no traffic); after
// openFor it half-opens, admitting one probe attempt per openFor window,
// and the probe's outcome either closes it or re-opens it. The breaker is
// orthogonal to the down/syncing/healthy connection state machine: it
// exists for the brown-out replica whose connection is alive but whose
// attempts keep failing (flapping sockets, sustained sheds), which the
// health states alone would keep routing traffic into.
const (
	brkClosed int32 = iota
	brkOpen
	brkHalfOpen
)

// breakerCfg is the resolved breaker tuning shared by every replica of a
// router. A zero size disables circuit breaking entirely.
type breakerCfg struct {
	size      int           // rolling outcome window (<= 64); 0 disables
	need      int           // minimum observations before tripping
	threshold float64       // failure fraction within the window that trips
	openFor   time.Duration // open duration, and the spacing between probes
}

// breaker is one replica's circuit breaker: a rolling bitmask window of
// recent attempt outcomes and a small state machine over it. The hot-path
// read (allow on a closed breaker) is a single atomic load; the window
// mutex is only taken to record an outcome.
type breaker struct {
	state    atomic.Int32
	openedAt atomic.Int64 // UnixNano of the trip (open) or last probe grant (half-open)

	mu     sync.Mutex
	window uint64 // ring bitmask of the last `size` outcomes; 1 = failure
	count  int    // observations currently in the window
	idx    int    // next ring position
	fails  int    // failures currently in the window
}

// allow reports whether an attempt may be sent to this replica now. On an
// open breaker past its openFor, the winning caller transitions it to
// half-open and becomes the probe; in half-open, one probe is granted per
// openFor window (so a probe lost to a reaped hedge or a dead connection
// cannot wedge the replica out of the rotation forever).
func (b *breaker) allow(cfg *breakerCfg, now time.Time) bool {
	if cfg.size == 0 {
		return true
	}
	switch b.state.Load() {
	case brkClosed:
		return true
	case brkOpen:
		at := b.openedAt.Load()
		if now.UnixNano()-at < int64(cfg.openFor) {
			return false
		}
		if b.state.CompareAndSwap(brkOpen, brkHalfOpen) {
			b.openedAt.Store(now.UnixNano())
			return true // this attempt is the probe
		}
		return false
	default: // half-open
		at := b.openedAt.Load()
		if now.UnixNano()-at < int64(cfg.openFor) {
			return false
		}
		// The previous probe never settled; grant another.
		return b.openedAt.CompareAndSwap(at, now.UnixNano())
	}
}

// ok records a successful attempt. A success while open or half-open is a
// probe (or a straggler) proving the replica back: the breaker closes
// with a clean window.
func (b *breaker) ok(cfg *breakerCfg) {
	if cfg.size == 0 {
		return
	}
	if b.state.Load() != brkClosed {
		b.reset()
		return
	}
	b.observe(cfg, false)
}

// fail records a failed attempt and reports whether it tripped the
// breaker closed->open. A failure while half-open re-opens immediately
// (the probe failed); a failure while already open is a straggler and is
// ignored.
func (b *breaker) fail(cfg *breakerCfg, now time.Time) bool {
	if cfg.size == 0 {
		return false
	}
	switch b.state.Load() {
	case brkHalfOpen:
		b.openedAt.Store(now.UnixNano())
		b.state.Store(brkOpen)
		return false
	case brkOpen:
		return false
	}
	if !b.observe(cfg, true) {
		return false
	}
	b.openedAt.Store(now.UnixNano())
	b.state.Store(brkOpen)
	return true
}

// observe records one closed-state outcome in the rolling window and
// reports whether the failure rate now trips the breaker.
func (b *breaker) observe(cfg *breakerCfg, failed bool) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	bit := uint64(1) << uint(b.idx)
	if b.count == cfg.size && b.window&bit != 0 {
		b.fails--
	}
	if failed {
		b.window |= bit
		b.fails++
	} else {
		b.window &^= bit
	}
	b.idx = (b.idx + 1) % cfg.size
	if b.count < cfg.size {
		b.count++
	}
	return b.count >= cfg.need && float64(b.fails) >= cfg.threshold*float64(b.count)
}

// reset closes the breaker with a clean window — called on a successful
// probe and when a replica rejoins through a catch-up resync (its history
// predates the recovery and would only delay re-admission).
func (b *breaker) reset() {
	b.mu.Lock()
	b.window, b.count, b.idx, b.fails = 0, 0, 0, 0
	b.mu.Unlock()
	b.state.Store(brkClosed)
}

// refillRetry credits the shard's failover token bucket for one offered
// read request: budget millitokens, capped at the bucket's capacity.
func (sh *rShard) refillRetry(budgetMilli, capMilli int64) {
	if budgetMilli <= 0 {
		return
	}
	for {
		cur := sh.retryTokens.Load()
		next := cur + budgetMilli
		if next > capMilli {
			next = capMilli
		}
		if next == cur || sh.retryTokens.CompareAndSwap(cur, next) {
			return
		}
	}
}

// takeRetry spends one failover token (1000 millitokens), reporting false
// when the bucket is empty — the caller must fail the request instead of
// retrying, which is what caps failover amplification under a brown-out.
func (sh *rShard) takeRetry() bool {
	for {
		cur := sh.retryTokens.Load()
		if cur < 1000 {
			return false
		}
		if sh.retryTokens.CompareAndSwap(cur, cur-1000) {
			return true
		}
	}
}
