//go:build !race

// The steady-state allocation pin is compiled out entirely under the race
// detector, whose goroutine and channel instrumentation heap-allocates and
// would make the pin meaningless.

package remote_test

import (
	"math/rand"
	"testing"

	"tensordimm/internal/cluster"
)

// TestSteadyStateZeroAlloc pins the router's read path to zero heap
// allocations per request once pools are warm — the same discipline as
// the in-process cluster and the netclient.
func TestSteadyStateZeroAlloc(t *testing.T) {
	m := buildModel(t)
	_, addrs := startFleet(t, cluster.TableWise, 2, 1)
	rc := newRouter(t, m, cluster.TableWise, addrs, nil)
	rng := rand.New(rand.NewSource(19))
	rows := randRows(rng, m.Cfg, testMaxBatch)
	dst := make([]float32, 0, testMaxBatch*m.Cfg.Tables*m.Cfg.EmbDim)
	var err error
	for i := 0; i < 32; i++ { // warm every pool on every worker
		if dst, err = rc.EmbedInto(dst, rows, testMaxBatch); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		dst, err = rc.EmbedInto(dst, rows, testMaxBatch)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state EmbedInto allocates %.1f times per op, want 0", allocs)
	}
}
