package remote

import (
	"fmt"

	"tensordimm/internal/stats"
)

// Metrics is a point-in-time snapshot of a router's counters.
type Metrics struct {
	// Requests, Samples, Lookups count completed reads, their samples,
	// and their routed lookups.
	Requests, Samples, Lookups uint64
	// Failures counts reads and updates that returned an error.
	Failures uint64
	// Updates, UpdateRows count completed update batches and their
	// gradient rows.
	Updates, UpdateRows uint64
	// Hedges counts hedged second attempts fired; HedgeWins counts the
	// requests the hedged attempt won.
	Hedges, HedgeWins uint64
	// Failovers counts failover replacement attempts started after a
	// transport loss or admission shed.
	Failovers uint64
	// Unavailable counts operations that failed with *Unavailable.
	Unavailable uint64
	// BreakerTrips counts per-replica circuit breakers tripped
	// closed->open; BreakerOpen is the number of replicas whose breaker is
	// currently rejecting traffic (open or half-open).
	BreakerTrips uint64
	BreakerOpen  int
	// RetriesDenied counts failovers refused by the shard retry budget
	// (the read failed typed instead of retrying).
	RetriesDenied uint64
	// DeadlineExceeded counts reads that failed with *DeadlineExceeded.
	DeadlineExceeded uint64
	// Resyncs counts completed replica catch-up replays; Replayed counts
	// the log entries those replays delivered.
	Resyncs, Replayed uint64
	// Snapshots counts full-table snapshots scraped and installed (each
	// trims its shard's log); Restores counts replicas reseated from a
	// snapshot via the RESTORE op.
	Snapshots, Restores uint64
	// ReplicasUp and ReplicasTotal describe the fleet's current health.
	ReplicasUp, ReplicasTotal int
	// LogEntries is the summed retained tail of the per-shard update logs
	// (entries past each shard's snapshot); bounded by shards x
	// SnapshotEvery, unlike the unbounded pre-durability log.
	LogEntries uint64
	// WALBytes is the summed on-disk size of the per-shard WALs (zero for
	// an in-memory router), trimmed to zero at each snapshot.
	WALBytes int64
	// Latency summarizes request wall-clock time.
	Latency stats.LatencySummary
}

// Metrics snapshots the router's counters.
func (rc *RemoteCluster) Metrics() Metrics {
	m := Metrics{
		Requests:         rc.requests.Load(),
		Samples:          rc.samples.Load(),
		Lookups:          rc.lookups.Load(),
		Failures:         rc.failures.Load(),
		Updates:          rc.updates.Load(),
		UpdateRows:       rc.updateRows.Load(),
		Hedges:           rc.hedges.Load(),
		HedgeWins:        rc.hedgeWins.Load(),
		Failovers:        rc.failovers.Load(),
		Unavailable:      rc.unavail.Load(),
		BreakerTrips:     rc.brkTrips.Load(),
		RetriesDenied:    rc.denied.Load(),
		DeadlineExceeded: rc.deadlines.Load(),
		Resyncs:          rc.resyncs.Load(),
		Replayed:         rc.replayed.Load(),
		Snapshots:        rc.snapshots.Load(),
		Restores:         rc.restores.Load(),
		Latency:          rc.latency.Summary(),
	}
	for _, sh := range rc.shards {
		for _, rep := range sh.replicas {
			m.ReplicasTotal++
			if rep.state.Load() == repHealthy {
				m.ReplicasUp++
			}
			if rep.brk.state.Load() != brkClosed {
				m.BreakerOpen++
			}
		}
		if sh.store != nil {
			sh.updMu.Lock()
			m.LogEntries += sh.store.Head() - sh.store.Base()
			m.WALBytes += sh.store.WALBytes()
			sh.updMu.Unlock()
		}
	}
	return m
}

// String renders a one-line operator summary.
func (m Metrics) String() string {
	return fmt.Sprintf(
		"remote: %d/%d replicas up (%d breakers open); %d requests (%d samples, %d lookups), %d updates (%d rows, %d log entries, %d WAL B, %d snapshots); %d hedges (%d wins), %d failovers (%d denied), %d breaker trips, %d unavailable, %d deadline exceeded, %d resyncs (%d replayed, %d restored); %d failures; latency %v",
		m.ReplicasUp, m.ReplicasTotal, m.BreakerOpen, m.Requests, m.Samples, m.Lookups,
		m.Updates, m.UpdateRows, m.LogEntries, m.WALBytes, m.Snapshots,
		m.Hedges, m.HedgeWins, m.Failovers, m.RetriesDenied, m.BreakerTrips,
		m.Unavailable, m.DeadlineExceeded, m.Resyncs, m.Replayed, m.Restores,
		m.Failures, m.Latency)
}

// MetricsText renders the Metrics snapshot, satisfying netserve.Backend.
func (rc *RemoteCluster) MetricsText() string { return rc.Metrics().String() }
