package remote

import (
	"fmt"
	"strconv"

	"tensordimm/internal/stats"
	"tensordimm/internal/telemetry"
)

// Metrics is a point-in-time snapshot of a router's counters.
type Metrics struct {
	// Requests, Samples, Lookups count completed reads, their samples,
	// and their routed lookups.
	Requests, Samples, Lookups uint64
	// Failures counts reads and updates that returned an error.
	Failures uint64
	// Updates, UpdateRows count completed update batches and their
	// gradient rows.
	Updates, UpdateRows uint64
	// Hedges counts hedged second attempts fired; HedgeWins counts the
	// requests the hedged attempt won.
	Hedges, HedgeWins uint64
	// Failovers counts failover replacement attempts started after a
	// transport loss or admission shed.
	Failovers uint64
	// Unavailable counts operations that failed with *Unavailable.
	Unavailable uint64
	// BreakerTrips counts per-replica circuit breakers tripped
	// closed->open; BreakerOpen is the number of replicas whose breaker is
	// currently rejecting traffic (open or half-open).
	BreakerTrips uint64
	BreakerOpen  int
	// RetriesDenied counts failovers refused by the shard retry budget
	// (the read failed typed instead of retrying).
	RetriesDenied uint64
	// DeadlineExceeded counts reads that failed with *DeadlineExceeded.
	DeadlineExceeded uint64
	// Resyncs counts completed replica catch-up replays; Replayed counts
	// the log entries those replays delivered.
	Resyncs, Replayed uint64
	// Snapshots counts full-table snapshots scraped and installed (each
	// trims its shard's log); Restores counts replicas reseated from a
	// snapshot via the RESTORE op.
	Snapshots, Restores uint64
	// ReplicasUp and ReplicasTotal describe the fleet's current health.
	ReplicasUp, ReplicasTotal int
	// LogEntries is the summed retained tail of the per-shard update logs
	// (entries past each shard's snapshot); bounded by shards x
	// SnapshotEvery, unlike the unbounded pre-durability log.
	LogEntries uint64
	// WALBytes is the summed on-disk size of the per-shard WALs (zero for
	// an in-memory router), trimmed to zero at each snapshot.
	WALBytes int64
	// Latency summarizes request wall-clock time.
	Latency stats.LatencySummary
}

// Metrics snapshots the router's counters.
func (rc *RemoteCluster) Metrics() Metrics {
	m := Metrics{
		Requests:         rc.requests.Load(),
		Samples:          rc.samples.Load(),
		Lookups:          rc.lookups.Load(),
		Failures:         rc.failures.Load(),
		Updates:          rc.updates.Load(),
		UpdateRows:       rc.updateRows.Load(),
		Hedges:           rc.hedges.Load(),
		HedgeWins:        rc.hedgeWins.Load(),
		Failovers:        rc.failovers.Load(),
		Unavailable:      rc.unavail.Load(),
		BreakerTrips:     rc.brkTrips.Load(),
		RetriesDenied:    rc.denied.Load(),
		DeadlineExceeded: rc.deadlines.Load(),
		Resyncs:          rc.resyncs.Load(),
		Replayed:         rc.replayed.Load(),
		Snapshots:        rc.snapshots.Load(),
		Restores:         rc.restores.Load(),
		Latency:          rc.latency.Summary(),
	}
	for _, sh := range rc.shards {
		for _, rep := range sh.replicas {
			m.ReplicasTotal++
			if rep.state.Load() == repHealthy {
				m.ReplicasUp++
			}
			if rep.brk.state.Load() != brkClosed {
				m.BreakerOpen++
			}
		}
		if sh.store != nil {
			sh.updMu.Lock()
			m.LogEntries += sh.store.Head() - sh.store.Base()
			m.WALBytes += sh.store.WALBytes()
			sh.updMu.Unlock()
		}
	}
	return m
}

// String renders a one-line operator summary.
func (m Metrics) String() string {
	return fmt.Sprintf(
		"remote: %d/%d replicas up (%d breakers open); %d requests (%d samples, %d lookups), %d updates (%d rows, %d log entries, %d WAL B, %d snapshots); %d hedges (%d wins), %d failovers (%d denied), %d breaker trips, %d unavailable, %d deadline exceeded, %d resyncs (%d replayed, %d restored); %d failures; latency %v",
		m.ReplicasUp, m.ReplicasTotal, m.BreakerOpen, m.Requests, m.Samples, m.Lookups,
		m.Updates, m.UpdateRows, m.LogEntries, m.WALBytes, m.Snapshots,
		m.Hedges, m.HedgeWins, m.Failovers, m.RetriesDenied, m.BreakerTrips,
		m.Unavailable, m.DeadlineExceeded, m.Resyncs, m.Replayed, m.Restores,
		m.Failures, m.Latency)
}

// MetricsText renders the Metrics snapshot, satisfying netserve.Backend.
func (rc *RemoteCluster) MetricsText() string { return rc.Metrics().String() }

// Instrument registers the router's series on a telemetry registry: the
// remote_* counters over the existing atomics, fleet-health and
// durability gauges (replicas up, breakers open, retained log entries,
// WAL bytes — read at scrape time under the same locks Metrics takes),
// the read-latency histogram, and each shard store's persist counters
// (labeled shard="N"). Call once, before traffic.
func (rc *RemoteCluster) Instrument(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.Counter("tensordimm_remote_requests_total", "reads completed successfully", rc.requests.Load, labels...)
	reg.Counter("tensordimm_remote_samples_total", "samples served across completed reads", rc.samples.Load, labels...)
	reg.Counter("tensordimm_remote_lookups_total", "embedding row lookups routed", rc.lookups.Load, labels...)
	reg.Counter("tensordimm_remote_failures_total", "operations failed", rc.failures.Load, labels...)
	reg.Counter("tensordimm_remote_updates_total", "update batches applied", rc.updates.Load, labels...)
	reg.Counter("tensordimm_remote_update_rows_total", "gradient rows across applied updates", rc.updateRows.Load, labels...)
	reg.Counter("tensordimm_remote_hedges_total", "hedged second attempts fired", rc.hedges.Load, labels...)
	reg.Counter("tensordimm_remote_hedge_wins_total", "reads won by the hedged attempt", rc.hedgeWins.Load, labels...)
	reg.Counter("tensordimm_remote_failovers_total", "failover replacement attempts started", rc.failovers.Load, labels...)
	reg.Counter("tensordimm_remote_unavailable_total", "operations failed with Unavailable", rc.unavail.Load, labels...)
	reg.Counter("tensordimm_remote_breaker_trips_total", "circuit breakers tripped closed to open", rc.brkTrips.Load, labels...)
	reg.Counter("tensordimm_remote_retries_denied_total", "failovers denied by the retry budget", rc.denied.Load, labels...)
	reg.Counter("tensordimm_remote_deadline_exceeded_total", "reads failed with DeadlineExceeded", rc.deadlines.Load, labels...)
	reg.Counter("tensordimm_remote_resyncs_total", "replica catch-up replays completed", rc.resyncs.Load, labels...)
	reg.Counter("tensordimm_remote_replayed_total", "log entries delivered by catch-up replays", rc.replayed.Load, labels...)
	reg.Counter("tensordimm_remote_snapshots_total", "shard snapshots scraped and installed", rc.snapshots.Load, labels...)
	reg.Counter("tensordimm_remote_restores_total", "replicas reseated from a snapshot", rc.restores.Load, labels...)
	reg.Gauge("tensordimm_remote_replicas_up", "replicas currently healthy", func() float64 {
		n := 0
		for _, sh := range rc.shards {
			for _, rep := range sh.replicas {
				if rep.state.Load() == repHealthy {
					n++
				}
			}
		}
		return float64(n)
	}, labels...)
	reg.Gauge("tensordimm_remote_replicas_total", "replicas configured across all shards", func() float64 {
		n := 0
		for _, sh := range rc.shards {
			n += len(sh.replicas)
		}
		return float64(n)
	}, labels...)
	reg.Gauge("tensordimm_remote_breakers_open", "replica circuit breakers not closed", func() float64 {
		n := 0
		for _, sh := range rc.shards {
			for _, rep := range sh.replicas {
				if rep.brk.state.Load() != brkClosed {
					n++
				}
			}
		}
		return float64(n)
	}, labels...)
	reg.Gauge("tensordimm_remote_log_entries", "retained update-log tail entries across shards", func() float64 {
		var n uint64
		for _, sh := range rc.shards {
			if sh.store == nil {
				continue
			}
			sh.updMu.Lock()
			n += sh.store.Head() - sh.store.Base()
			sh.updMu.Unlock()
		}
		return float64(n)
	}, labels...)
	reg.Gauge("tensordimm_remote_wal_bytes", "on-disk WAL bytes across shards", func() float64 {
		var n int64
		for _, sh := range rc.shards {
			if sh.store == nil {
				continue
			}
			sh.updMu.Lock()
			n += sh.store.WALBytes()
			sh.updMu.Unlock()
		}
		return float64(n)
	}, labels...)
	rc.tLat = reg.Histogram("tensordimm_remote_request_seconds", "read latency through the replica router", labels...)
	for s, sh := range rc.shards {
		if sh.store != nil {
			sh.store.Instrument(reg, append(append([]telemetry.Label{}, labels...), telemetry.L("shard", strconv.Itoa(s)))...)
		}
	}
}
