package remote

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"tensordimm/internal/netclient"
	"tensordimm/internal/runtime"
	"tensordimm/internal/tensor"
	"tensordimm/internal/wire"
)

// maxShedRetries bounds how often one log entry is re-sent to a replica
// that sheds it under admission control before the replica is dropped
// from the group (the janitor re-admits it through a fresh catch-up).
const maxShedRetries = 200

// ApplyUpdates applies a batch of per-table gradient updates fleet-wide:
// every entry's rows split by placement into per-shard sub-updates, each
// sub-update is appended to the owning shard's log and fanned out to the
// shard's live replicas with the sequenced SYNC op, and replicas that are
// down catch the entry up later by replaying the log. Mirrors
// cluster.Cluster.ApplyUpdates.
//
// Ordering. Updates to the same global table are serialized (slice order
// within one call, lock order across calls) and reach every replica of a
// shard in identical log order, so after ApplyUpdates returns every
// subsequent read — from any replica — observes the update bit-identically.
// Updates to distinct tables proceed concurrently. The OnApplied hook
// fires under the table lock in exactly the sequenced order.
//
// A replica dropping mid-fan-out does not fail the update as long as at
// least one replica of each touched shard absorbs it; the dropped replica
// replays the gap on reconnect. Only when a shard's whole replica group
// is unreachable does ApplyUpdates return a typed *Unavailable — the
// entry stays in the log and still reaches the fleet when a replica
// returns, so a caller tracking a reference model must treat an
// Unavailable update as applied-eventually, not discarded.
func (rc *RemoteCluster) ApplyUpdates(ups []runtime.TableUpdate) error {
	if rc.cfg.ReadOnly {
		return ErrReadOnly
	}
	mc := rc.cfg.Model
	if len(ups) == 0 {
		return fmt.Errorf("remote: empty update batch")
	}
	for i, up := range ups {
		if up.Table < 0 || up.Table >= mc.Tables {
			return fmt.Errorf("remote: update %d: table %d out of range [0, %d)", i, up.Table, mc.Tables)
		}
		if up.Grads == nil || up.Grads.Rank() != 2 || up.Grads.Dim(0) != len(up.Rows) || up.Grads.Dim(1) != mc.EmbDim {
			return fmt.Errorf("remote: update %d: gradient shape for %d rows of dim %d", i, len(up.Rows), mc.EmbDim)
		}
		if len(up.Rows) == 0 || len(up.Rows) > rc.cfg.MaxBatch*mc.Reduction {
			return fmt.Errorf("remote: update %d: %d rows out of range [1, %d]",
				i, len(up.Rows), rc.cfg.MaxBatch*mc.Reduction)
		}
		for _, r := range up.Rows {
			if r < 0 || r >= mc.TableRows {
				return fmt.Errorf("remote: update %d: row index %d out of range [0, %d)", i, r, mc.TableRows)
			}
		}
	}

	if err := rc.enter(); err != nil {
		return err
	}
	defer rc.inflight.Done()

	order, groups := runtime.GroupUpdatesByTable(ups)
	errs := make([]error, len(order))
	var wg sync.WaitGroup
	for gi, t := range order {
		wg.Add(1)
		go func(gi, t int) {
			defer wg.Done()
			rc.tableMu[t].Lock()
			defer rc.tableMu[t].Unlock()
			for _, up := range groups[t] {
				if err := rc.applyTableUpdate(up); err != nil {
					errs[gi] = err
					return
				}
			}
		}(gi, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			rc.failures.Inc()
			return err
		}
	}
	rows := 0
	for _, up := range ups {
		rows += len(up.Rows)
	}
	rc.updates.Inc()
	rc.updateRows.Add(uint64(rows))
	return nil
}

// applyTableUpdate routes one table's update to its owning shards
// (callers hold the table's update lock): split the rows by placement,
// sequence each shard's slice into that shard's log and fan it out, then
// fire OnApplied. Gradient rows are copied, so the log owns its data
// outright and callers may reuse their buffers.
func (rc *RemoteCluster) applyTableUpdate(up runtime.TableUpdate) error {
	dim := rc.cfg.Model.EmbDim
	shardRows := make(map[int][]int) // shard -> flat local rows
	shardSrc := make(map[int][]int)  // shard -> gradient row indices
	for i, r := range up.Rows {
		s, flat := rc.place.Locate(up.Table, r)
		shardRows[s] = append(shardRows[s], flat)
		shardSrc[s] = append(shardSrc[s], i)
	}

	var mu sync.Mutex
	var firstErr error
	var wg sync.WaitGroup
	for s, flatRows := range shardRows {
		wg.Add(1)
		go func(s int, flatRows []int) {
			defer wg.Done()
			grads := tensor.New(len(flatRows), dim)
			for j, i := range shardSrc[s] {
				copy(grads.Row(j), up.Grads.Row(i))
			}
			// The shard stores its rows as one flat gather-only table, so a
			// sub-update always targets table 0 of the shard model.
			err := rc.appendAndFan(rc.shards[s], runtime.TableUpdate{Table: 0, Rows: flatRows, Grads: grads})
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(s, flatRows)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	if rc.cfg.OnApplied != nil {
		rc.cfg.OnApplied(up)
	}
	return nil
}

// appendAndFan sequences one sub-update into the shard's durable log and
// drives every live replica to the new log head. The append happens
// strictly before any replica sees the entry — the crash-consistency
// invariant: the durable log is always a superset of any replica's
// applied state, so a restarted router can re-drive its fleet from the
// log alone. A replica that fails mid-stream is dropped (it replays on
// reconnect); a replica mid-catch-up counts as reached, because it cannot
// turn healthy without replaying through this entry — the replay runs
// under the same updMu. When the entry pushes the retained tail past the
// snapshot interval, a full-table snapshot is scraped and the log prefix
// trimmed before the lock is released.
func (rc *RemoteCluster) appendAndFan(sh *rShard, sub runtime.TableUpdate) error {
	sh.updMu.Lock()
	defer sh.updMu.Unlock()
	if err := sh.store.Append(sub); err != nil {
		rc.unavail.Inc()
		return fmt.Errorf("remote: shard %d: %w", sh.id, err)
	}
	reached, pending := 0, 0
	var lastErr error
	for _, rep := range sh.replicas {
		switch rep.state.Load() {
		case repSyncing:
			pending++
			continue
		case repDown:
			continue
		}
		if err := rc.catchUp(sh, rep); err != nil {
			rep.state.Store(repDown)
			lastErr = err
			continue
		}
		reached++
	}
	if reached == 0 && pending == 0 {
		rc.unavail.Inc()
		return &Unavailable{Shard: sh.id, Err: lastErr}
	}
	if sh.store.NeedSnapshot() {
		rc.snapshotShard(sh)
	}
	return nil
}

// catchUp drives one replica from its applied count to the shard's log
// head (callers hold the shard's updMu): a chunked snapshot reseat when
// the replica is below the log's trim horizon, then sequenced replay one
// entry at a time. Admission-control sheds are retried with a short
// backoff; any other error aborts and leaves the replica where it
// stopped.
func (rc *RemoteCluster) catchUp(sh *rShard, rep *replica) error {
	head := sh.store.Head()
	if rep.applied > head {
		return fmt.Errorf("remote: shard %d replica %s reports %d applied updates, above the router's log head %d — it served a different writer",
			sh.id, rep.addr, rep.applied, head)
	}
	if rep.applied < sh.store.Base() {
		if err := rc.restoreReplica(sh, rep); err != nil {
			return err
		}
	}
	sheds := 0
	for rep.applied < head {
		srvSeq, err := rep.cl.Sync(rep.applied, sh.store.Entries(rep.applied)[:1])
		if err != nil {
			var se *netclient.ServerError
			if errors.As(err, &se) && se.Code == wire.ErrOverloaded && sheds < maxShedRetries {
				sheds++
				time.Sleep(2 * time.Millisecond)
				continue
			}
			return err
		}
		if srvSeq > head || srvSeq <= rep.applied {
			return fmt.Errorf("remote: shard %d replica %s acknowledged sequence %d after replaying entry %d of %d — it served a different writer",
				sh.id, rep.addr, srvSeq, rep.applied, head)
		}
		rep.applied = srvSeq
	}
	return nil
}

// restoreReplica reseats a replica whose applied count is below the log's
// trim horizon — replay alone cannot reach it, because the covering
// entries were trimmed when the snapshot was installed. The snapshot's
// absolute rows stream over in MaxRestoreRows-sized chunks; the final
// chunk commits, fast-forwarding the replica's applied counter to the
// snapshot's sequence, after which the caller replays the remaining tail.
// Callers hold the shard's updMu.
func (rc *RemoteCluster) restoreReplica(sh *rShard, rep *replica) error {
	snapSeq, vals, ok := sh.store.Snapshot()
	if !ok {
		return fmt.Errorf("remote: shard %d: no snapshot covers sequences below %d", sh.id, sh.store.Base())
	}
	dim := rc.cfg.Model.EmbDim
	localRows := rc.place.LocalRows(sh.id)
	chunk := rep.cl.MaxRestoreRows()
	rowIdx := make([]int, 0, chunk)
	sheds := 0
	for at := 0; at < localRows; {
		n := min(chunk, localRows-at)
		rowIdx = rowIdx[:0]
		for r := at; r < at+n; r++ {
			rowIdx = append(rowIdx, r)
		}
		commit := at+n == localRows
		srvSeq, err := rep.cl.Restore(snapSeq, commit, 0, rowIdx, vals[at*dim:(at+n)*dim])
		if err != nil {
			var se *netclient.ServerError
			if errors.As(err, &se) && se.Code == wire.ErrOverloaded && sheds < maxShedRetries {
				sheds++
				time.Sleep(2 * time.Millisecond)
				continue
			}
			return err
		}
		if commit && srvSeq != snapSeq {
			return fmt.Errorf("remote: shard %d replica %s acknowledged sequence %d after a snapshot install at %d — it served a different writer",
				sh.id, rep.addr, srvSeq, snapSeq)
		}
		at += n
	}
	rep.applied = snapSeq
	rc.restores.Inc()
	return nil
}

// snapshotShard trims the shard's log by scraping the full table from a
// replica that has applied every entry and installing it as the new
// snapshot. The router holds no weights, so the scrape is how it obtains
// absolute table state — and because the source replica sits exactly at
// the log head under updMu (no fan-out can interleave), the scraped rows
// are bit-identical to golden at that sequence. Best-effort: any scrape
// failure just leaves the log untrimmed and the next append retries.
// Callers hold the shard's updMu.
func (rc *RemoteCluster) snapshotShard(sh *rShard) {
	head := sh.store.Head()
	var src *replica
	for _, rep := range sh.replicas {
		if rep.state.Load() == repHealthy && rep.applied == head {
			src = rep
			break
		}
	}
	if src == nil {
		return
	}
	dim := rc.cfg.Model.EmbDim
	localRows := rc.place.LocalRows(sh.id)
	vals := make([]float32, localRows*dim)
	rowsArg := [][]int{nil}
	rowIdx := make([]int, 0, sh.maxSub)
	for at := 0; at < localRows; {
		n := min(sh.maxSub, localRows-at)
		rowIdx = rowIdx[:0]
		for r := at; r < at+n; r++ {
			rowIdx = append(rowIdx, r)
		}
		rowsArg[0] = rowIdx
		if _, err := src.cl.EmbedInto(vals[at*dim:(at+n)*dim], rowsArg, n); err != nil {
			return
		}
		at += n
	}
	if err := sh.store.InstallSnapshot(head, vals); err == nil {
		rc.snapshots.Inc()
	}
}

// resync re-admits a recovered replica: flip it to syncing, replay the
// log suffix its handshake says it is missing, and only then mark it
// healthy so reads route to it again. Both the reconnect hook and the
// janitor funnel through here; the down->syncing CAS makes them race-free.
func (rc *RemoteCluster) resync(sh *rShard, rep *replica, h wire.Hello) {
	if !rep.state.CompareAndSwap(repDown, repSyncing) {
		return
	}
	if rc.cfg.ReadOnly {
		// A sticky reader holds no log to replay — the fleet's writer keeps
		// replicas current — so a recovered replica serves reads again as
		// soon as its connection is back.
		rep.brk.reset()
		rep.state.Store(repHealthy)
		rc.resyncs.Inc()
		return
	}
	sh.updMu.Lock()
	defer sh.updMu.Unlock()
	rep.applied = h.UpdateSeq
	// Entries below the trim horizon arrive via snapshot reseat, not
	// replay; only the tail counts as replayed.
	before := max(rep.applied, sh.store.Base())
	if err := rc.catchUp(sh, rep); err != nil {
		rep.state.Store(repDown)
		return
	}
	if rep.state.CompareAndSwap(repSyncing, repHealthy) {
		// The breaker's history predates the recovery and would only delay
		// re-admission of a now-current replica.
		rep.brk.reset()
		rc.resyncs.Inc()
		rc.replayed.Add(sh.store.Head() - before)
	}
}
