package remote_test

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"tensordimm/internal/cluster"
	"tensordimm/internal/persist"
	"tensordimm/internal/remote"
	"tensordimm/internal/runtime"
	"tensordimm/internal/tensor"
	"tensordimm/internal/wire"
)

// singleRowUpdate draws one 1-row gradient update — the smallest log
// entry, so the soak's entry count equals its update count.
func singleRowUpdate(rng *rand.Rand, tables, rows, dim int) runtime.TableUpdate {
	grads := tensor.New(1, dim)
	g := grads.Data()
	for i := range g {
		g[i] = rng.Float32() - 0.5
	}
	return runtime.TableUpdate{Table: rng.Intn(tables), Rows: []int{rng.Intn(rows)}, Grads: grads}
}

// TestWALBoundedSoak is the acceptance soak: 10k single-row updates
// (1k under -short) through a router with a small snapshot interval, in
// both durable and volatile modes, pinning that the retained log entries
// and the on-disk WAL bytes stay bounded by the interval — the update log
// can no longer grow without bound. The quiesced fleet must still read
// back bit-identical to the golden model.
func TestWALBoundedSoak(t *testing.T) {
	const snapEvery = 16
	iters := 10000
	if testing.Short() {
		iters = 1000
	}
	for _, mode := range []string{"durable", "volatile"} {
		mode := mode
		t.Run(mode, func(t *testing.T) {
			dir := ""
			if mode == "durable" {
				dir = t.TempDir()
			}
			m := buildModel(t)
			_, addrs := startFleet(t, cluster.TableWise, 1, 1)
			rc := newRouter(t, m, cluster.TableWise, addrs, func(cfg *remote.Config) {
				cfg.DataDir = dir
				cfg.SnapshotEvery = snapEvery
			})
			// One shard holds both tables; every single-row update is
			// exactly one log entry.
			rng := rand.New(rand.NewSource(29))
			var maxEntries, maxWAL uint64
			for i := 0; i < iters; i++ {
				up := singleRowUpdate(rng, m.Cfg.Tables, m.Cfg.TableRows, m.Cfg.EmbDim)
				if err := rc.ApplyUpdates([]runtime.TableUpdate{up}); err != nil {
					t.Fatalf("update %d: %v", i, err)
				}
				if i%25 != 0 && i != iters-1 {
					continue
				}
				mt := rc.Metrics()
				if mt.LogEntries > maxEntries {
					maxEntries = mt.LogEntries
				}
				if uint64(mt.WALBytes) > maxWAL {
					maxWAL = uint64(mt.WALBytes)
				}
				if mode == "volatile" && mt.WALBytes != 0 {
					t.Fatalf("volatile router reports %d WAL bytes", mt.WALBytes)
				}
			}
			if maxEntries > snapEvery {
				t.Fatalf("retained log grew to %d entries, snapshot interval is %d", maxEntries, snapEvery)
			}
			// A 1-row record is the crc + a one-update SYNC frame: well
			// under 512 B at dim 64, so the WAL can never pass this
			// ceiling without the trim being broken.
			if ceiling := uint64(snapEvery) * 512; maxWAL > ceiling {
				t.Fatalf("WAL grew to %d bytes, ceiling for %d retained 1-row records is %d", maxWAL, snapEvery, ceiling)
			}
			mt := rc.Metrics()
			if mt.Snapshots == 0 {
				t.Fatalf("no snapshots after %d updates at interval %d: %+v", iters, snapEvery, mt)
			}
			for i := 0; i < 3; i++ {
				batch := 1 + rng.Intn(testMaxBatch)
				checkGolden(t, m, rc, randRows(rng, m.Cfg, batch), batch)
			}
		})
	}
}

// tearFinalRecord appends a deliberately torn WAL record — the first
// bytes of what would have been the append at sequence head — to shard
// s's log under dir, reproducing on demand the artifact a SIGKILL leaves
// when it lands mid-write. Recovery must truncate exactly this tail.
func tearFinalRecord(t *testing.T, dir string, s int, head uint64, dim int) {
	t.Helper()
	rec := []byte{0, 0, 0, 0}
	rec = wire.AppendSync(rec, 0, head, []wire.Update{
		{Table: 0, Rows: []int{0, 1}, Grads: make([]float32, 2*dim)},
	})
	binary.LittleEndian.PutUint32(rec, crc32.Checksum(rec[8:], crc32.MakeTable(crc32.Castagnoli)))
	f, err := os.OpenFile(filepath.Join(persist.ShardDir(dir, s), "wal.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(rec[:len(rec)-7]); err != nil {
		t.Fatal(err)
	}
}

// TestCrashRestartBitIdentical is the durability torture script, run
// under both sharding strategies (and under -race in CI): a durable
// router absorbs updates across several snapshot intervals, the whole
// deployment "crashes" — router gone without any flush beyond its normal
// appends, every replica process dead, and a torn half-record on each
// shard's WAL exactly as a SIGKILL mid-append leaves it — and a new
// router over FRESH replicas (sequence 0, pristine weights) boots from
// the same -data-dir. Recovery must truncate the torn tails, reseat the
// replicas from the snapshots, replay the tails, and serve reads
// bit-identical to the golden model the first run maintained.
func TestCrashRestartBitIdentical(t *testing.T) {
	for _, strat := range []cluster.Strategy{cluster.TableWise, cluster.RowWise} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			const nodes, snapEvery = 2, 8
			dir := t.TempDir()
			m := buildModel(t)
			procs, addrs := startFleet(t, strat, nodes, 1)
			rc := newRouter(t, m, strat, addrs, func(cfg *remote.Config) {
				cfg.DataDir = dir
				cfg.SnapshotEvery = snapEvery
			})
			rng := rand.New(rand.NewSource(31))
			for i := 0; i < 60; i++ {
				if err := rc.ApplyUpdates([]runtime.TableUpdate{randUpdate(rng, m.Cfg)}); err != nil {
					t.Fatalf("update %d: %v", i, err)
				}
			}
			preCrash := rc.Metrics()
			if preCrash.Snapshots == 0 {
				t.Fatalf("no snapshots before the crash: %+v", preCrash)
			}
			rc.Close()
			for _, group := range procs {
				for _, p := range group {
					p.stop()
				}
			}

			// Plant the SIGKILL artifact: a torn half-record at each
			// shard's log head.
			place := cluster.NewPlacement(strat, nodes, m.Cfg.Tables, m.Cfg.TableRows)
			for s := 0; s < nodes; s++ {
				log, err := persist.Open(persist.Config{
					Dir: dir, Shard: s, Dim: m.Cfg.EmbDim,
					LocalRows:       place.LocalRows(s),
					MaxRowsPerEntry: place.MaxSub(s, testMaxBatch, m.Cfg.Reduction),
				})
				if err != nil {
					t.Fatalf("shard %d: reading log head: %v", s, err)
				}
				head := log.Head()
				if err := log.Close(); err != nil {
					t.Fatal(err)
				}
				if head == 0 {
					t.Fatalf("shard %d: empty log after 60 updates", s)
				}
				tearFinalRecord(t, dir, s, head, m.Cfg.EmbDim)
			}

			// Restart over fresh replicas: new processes at sequence 0
			// with pristine seed-built weights. Only the durable state can
			// reproduce the pre-crash model.
			_, addrs2 := startFleet(t, strat, nodes, 1)
			rc2 := newRouter(t, m, strat, addrs2, func(cfg *remote.Config) {
				cfg.DataDir = dir
				cfg.SnapshotEvery = snapEvery
			})
			mt := rc2.Metrics()
			if mt.ReplicasUp != nodes {
				t.Fatalf("%d replicas up after restart, want %d", mt.ReplicasUp, nodes)
			}
			if mt.Restores != uint64(nodes) {
				t.Fatalf("%d snapshot restores after restart, want %d (fresh replicas sit below the snapshot horizon)", mt.Restores, nodes)
			}
			for i := 0; i < 10; i++ {
				batch := 1 + rng.Intn(testMaxBatch)
				checkGolden(t, m, rc2, randRows(rng, m.Cfg, batch), batch)
			}
			// The recovered history must also keep absorbing new updates.
			for i := 0; i < 5; i++ {
				if err := rc2.ApplyUpdates([]runtime.TableUpdate{randUpdate(rng, m.Cfg)}); err != nil {
					t.Fatalf("post-restart update %d: %v", i, err)
				}
			}
			checkGolden(t, m, rc2, randRows(rng, m.Cfg, 4), 4)
		})
	}
}

// TestRouterRestartSameFleet pins the other half of the restart matrix:
// the router dies and comes back while the REPLICAS keep their state. The
// handshake must accept replicas at or behind the recovered log head and
// replay only what each one misses.
func TestRouterRestartSameFleet(t *testing.T) {
	dir := t.TempDir()
	m := buildModel(t)
	_, addrs := startFleet(t, cluster.TableWise, 2, 1)
	tweak := func(cfg *remote.Config) {
		cfg.DataDir = dir
		cfg.SnapshotEvery = 1 << 20 // no snapshots: restart replays the WAL alone
	}
	rc := newRouter(t, m, cluster.TableWise, addrs, tweak)
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 12; i++ {
		if err := rc.ApplyUpdates([]runtime.TableUpdate{randUpdate(rng, m.Cfg)}); err != nil {
			t.Fatal(err)
		}
	}
	rc.Close()

	rc2 := newRouter(t, m, cluster.TableWise, addrs, tweak)
	if mt := rc2.Metrics(); mt.ReplicasUp != 2 {
		t.Fatalf("%d replicas up after router restart, want 2", mt.ReplicasUp)
	}
	for i := 0; i < 5; i++ {
		batch := 1 + rng.Intn(testMaxBatch)
		checkGolden(t, m, rc2, randRows(rng, m.Cfg, batch), batch)
	}
	if err := rc2.ApplyUpdates([]runtime.TableUpdate{randUpdate(rng, m.Cfg)}); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, m, rc2, randRows(rng, m.Cfg, 3), 3)
}
