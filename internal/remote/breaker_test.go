package remote

import (
	"testing"
	"time"
)

// TestBreakerStateMachine drives one breaker through the full
// closed -> open -> half-open -> (re-open | closed) cycle with explicit
// clocks, pinning the trip threshold, the probe admission rules, and the
// window reset on recovery.
func TestBreakerStateMachine(t *testing.T) {
	cfg := breakerCfg{size: 8, need: 4, threshold: 0.5, openFor: 100 * time.Millisecond}
	var b breaker
	t0 := time.Unix(1000, 0)

	for i := 0; i < 20; i++ {
		b.ok(&cfg)
		if !b.allow(&cfg, t0) {
			t.Fatal("healthy breaker rejected traffic")
		}
	}
	trips := 0
	for i := 0; i < 8; i++ {
		if b.fail(&cfg, t0) {
			trips++
		}
	}
	if trips != 1 {
		t.Fatalf("8 straight failures tripped %d times, want exactly 1", trips)
	}
	if b.allow(&cfg, t0) {
		t.Fatal("open breaker admitted traffic")
	}
	if b.allow(&cfg, t0.Add(cfg.openFor/2)) {
		t.Fatal("open breaker admitted traffic before openFor elapsed")
	}

	// Past openFor: exactly one probe per window.
	t1 := t0.Add(cfg.openFor + 50*time.Millisecond)
	if !b.allow(&cfg, t1) {
		t.Fatal("probe not granted after openFor")
	}
	if b.allow(&cfg, t1) {
		t.Fatal("second probe granted in the same window")
	}

	// Probe failure re-opens without counting as a fresh trip.
	if b.fail(&cfg, t1) {
		t.Fatal("probe failure counted as a closed->open trip")
	}
	if b.allow(&cfg, t1.Add(cfg.openFor/2)) {
		t.Fatal("re-opened breaker admitted traffic")
	}

	// A reaped probe must not wedge the breaker: a fresh window grants
	// another probe even though the previous one never settled.
	t2 := t1.Add(2 * cfg.openFor)
	if !b.allow(&cfg, t2) {
		t.Fatal("probe not granted after the previous one was lost")
	}
	b.ok(&cfg)
	if !b.allow(&cfg, t2) {
		t.Fatal("closed breaker rejected traffic after a successful probe")
	}

	// The probe's success reset the window: it takes `need` fresh
	// failures to trip again, not a single one landing on old history.
	for i := 0; i < cfg.need-1; i++ {
		if b.fail(&cfg, t2) {
			t.Fatalf("tripped after %d failures, below the %d-observation floor", i+1, cfg.need)
		}
	}
	if !b.fail(&cfg, t2) {
		t.Fatalf("%d straight failures on a clean window did not trip", cfg.need)
	}

	// A disabled breaker (zero cfg) never rejects and never trips.
	var off breakerCfg
	var b2 breaker
	for i := 0; i < 100; i++ {
		if b2.fail(&off, t0) {
			t.Fatal("disabled breaker tripped")
		}
	}
	if !b2.allow(&off, t0) {
		t.Fatal("disabled breaker rejected traffic")
	}
}

// TestBreakerMixedWindow checks the rolling-window arithmetic: failures
// below the threshold fraction never trip, and old outcomes slide out.
func TestBreakerMixedWindow(t *testing.T) {
	cfg := breakerCfg{size: 8, need: 4, threshold: 0.5, openFor: time.Second}
	var b breaker
	t0 := time.Unix(2000, 0)
	// Alternate success/failure far past the window size: 50% failure
	// rate meets threshold 0.5 only once enough samples accumulate —
	// verify a sub-threshold mix (1 failure per 3 successes) never trips.
	for i := 0; i < 64; i++ {
		if i%4 == 0 {
			if b.fail(&cfg, t0) {
				t.Fatalf("tripped at 25%% failure rate (i=%d)", i)
			}
		} else {
			b.ok(&cfg)
		}
	}
	// Now saturate with failures: the successes slide out of the window
	// and the breaker trips.
	tripped := false
	for i := 0; i < 8; i++ {
		if b.fail(&cfg, t0) {
			tripped = true
		}
	}
	if !tripped {
		t.Fatal("saturating failures never tripped the breaker")
	}
}

// TestRetryTokens pins the failover token bucket's arithmetic: grants
// stop at an empty bucket, sub-token refills accumulate, and the bucket
// never exceeds its cap.
func TestRetryTokens(t *testing.T) {
	var sh rShard
	sh.retryTokens.Store(2000)
	if !sh.takeRetry() || !sh.takeRetry() {
		t.Fatal("full bucket refused a token")
	}
	if sh.takeRetry() {
		t.Fatal("empty bucket granted a token")
	}
	sh.refillRetry(200, 16000)
	if sh.takeRetry() {
		t.Fatal("200 millitokens granted a full token")
	}
	for i := 0; i < 4; i++ {
		sh.refillRetry(200, 16000)
	}
	if !sh.takeRetry() {
		t.Fatal("five 0.2-token refills did not accumulate into a grant")
	}
	for i := 0; i < 100; i++ {
		sh.refillRetry(1000, 3000)
	}
	if got := sh.retryTokens.Load(); got != 3000 {
		t.Fatalf("bucket holds %d millitokens, want capped at 3000", got)
	}
}
