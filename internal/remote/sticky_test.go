package remote_test

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"tensordimm/internal/cluster"
	"tensordimm/internal/recsys"
	"tensordimm/internal/remote"
	"tensordimm/internal/runtime"
)

// newStickyRouter attaches a read-only (sticky-shard) router to an
// already-written fleet: no OnApplied wiring — the writer owns the golden
// reference — and ReadOnly set.
func newStickyRouter(t *testing.T, m *recsys.Model, strat cluster.Strategy, addrs [][]string) *remote.RemoteCluster {
	t.Helper()
	rc, err := remote.New(remote.Config{
		Model:        m.Cfg,
		Strategy:     strat,
		Shards:       addrs,
		MaxBatch:     testMaxBatch,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
		ReadOnly:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	return rc
}

// TestStickyAttachAfterUpdates is the sticky-shard routing contract: a
// read-only router attaches to a fleet whose replicas are mid-history
// (nonzero update sequence — a writing router would refuse them), reads
// bit-identically to the golden model the writer maintained, and refuses
// updates with the typed ErrReadOnly.
func TestStickyAttachAfterUpdates(t *testing.T) {
	for _, strat := range []cluster.Strategy{cluster.TableWise, cluster.RowWise} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			m := buildModel(t)
			_, addrs := startFleet(t, strat, 2, 2)
			writer := newRouter(t, m, strat, addrs, nil)

			rng := rand.New(rand.NewSource(31))
			for i := 0; i < 8; i++ {
				if err := writer.ApplyUpdates([]runtime.TableUpdate{randUpdate(rng, m.Cfg)}); err != nil {
					t.Fatalf("writer update %d: %v", i, err)
				}
			}

			// The replicas now announce nonzero update sequences; a sticky
			// attach must accept them as-is.
			sticky := newStickyRouter(t, m, strat, addrs)
			for i := 0; i < 5; i++ {
				batch := 1 + rng.Intn(testMaxBatch)
				checkGolden(t, m, sticky, randRows(rng, m.Cfg, batch), batch)
			}

			err := sticky.ApplyUpdates([]runtime.TableUpdate{randUpdate(rng, m.Cfg)})
			if !errors.Is(err, remote.ErrReadOnly) {
				t.Fatalf("sticky ApplyUpdates returned %v, want ErrReadOnly", err)
			}

			// Updates keep flowing through the writer; the sticky reader
			// observes them once the fan-out lands.
			if err := writer.ApplyUpdates([]runtime.TableUpdate{randUpdate(rng, m.Cfg)}); err != nil {
				t.Fatalf("writer update after attach: %v", err)
			}
			for i := 0; i < 3; i++ {
				batch := 1 + rng.Intn(testMaxBatch)
				checkGolden(t, m, sticky, randRows(rng, m.Cfg, batch), batch)
			}
		})
	}
}

// TestStickyFailoverAndReadmit drops one replica under a sticky router:
// reads fail over to the survivor with zero loss, and when the fault
// clears the replica is re-admitted without any catch-up replay (a
// read-only router holds no log — freshness is the writer's job).
func TestStickyFailoverAndReadmit(t *testing.T) {
	m := buildModel(t)
	procs, addrs := startFleet(t, cluster.TableWise, 1, 2)
	writer := newRouter(t, m, cluster.TableWise, addrs, nil)
	rng := rand.New(rand.NewSource(77))
	if err := writer.ApplyUpdates([]runtime.TableUpdate{randUpdate(rng, m.Cfg)}); err != nil {
		t.Fatal(err)
	}
	// The writer must not see the victim's cut as its own fault injection:
	// close it before dropping connections.
	writer.Close()

	sticky := newStickyRouter(t, m, cluster.TableWise, addrs)
	victim := procs[0][1]
	victim.in.Drop(true)
	for i := 0; i < 20; i++ {
		batch := 1 + rng.Intn(testMaxBatch)
		checkGolden(t, m, sticky, randRows(rng, m.Cfg, batch), batch)
	}

	victim.in.Drop(false)
	waitCond(t, 5*time.Second, "sticky re-admission", func() bool {
		return sticky.Metrics().ReplicasUp == 2
	})
	mt := sticky.Metrics()
	if mt.Replayed != 0 {
		t.Fatalf("sticky re-admission replayed %d log entries; a read-only router holds no log", mt.Replayed)
	}
	for i := 0; i < 5; i++ {
		batch := 1 + rng.Intn(testMaxBatch)
		checkGolden(t, m, sticky, randRows(rng, m.Cfg, batch), batch)
	}
}
