package remote_test

import (
	"math/rand"
	"strings"
	"testing"

	"tensordimm/internal/cluster"
	"tensordimm/internal/runtime"
	"tensordimm/internal/telemetry"
)

// TestInstrumentExportsSeries drives mixed traffic through an
// instrumented router and asserts the registry snapshot carries the
// routing counters, the fleet-health and durability gauges, the latency
// histogram, and each shard store's persist series.
func TestInstrumentExportsSeries(t *testing.T) {
	m := buildModel(t)
	_, addrs := startFleet(t, cluster.TableWise, 2, 1)
	rc := newRouter(t, m, cluster.TableWise, addrs, nil)
	reg := telemetry.NewRegistry()
	rc.Instrument(reg)

	const reads, writes = 8, 6
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < writes; i++ {
		if err := rc.ApplyUpdates([]runtime.TableUpdate{randUpdate(rng, m.Cfg)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < reads; i++ {
		checkGolden(t, m, rc, randRows(rng, m.Cfg, 4), 4)
	}

	snap := reg.Snapshot()
	if v, ok := snap.Counter("tensordimm_remote_requests_total"); !ok || v != reads {
		t.Fatalf("requests_total = %d, %v; want %d, true", v, ok, reads)
	}
	if v, ok := snap.Counter("tensordimm_remote_updates_total"); !ok || v != writes {
		t.Fatalf("updates_total = %d, %v; want %d, true", v, ok, writes)
	}
	if v, ok := snap.Counter("tensordimm_remote_failures_total"); !ok || v != 0 {
		t.Fatalf("failures_total = %d, %v; want 0, true", v, ok)
	}
	if v, ok := snap.Gauge("tensordimm_remote_replicas_total"); !ok || v != 2 {
		t.Fatalf("replicas_total = %g, %v; want 2, true", v, ok)
	}
	if v, ok := snap.Gauge("tensordimm_remote_replicas_up"); !ok || v != 2 {
		t.Fatalf("replicas_up = %g, %v; want 2, true", v, ok)
	}
	if v, ok := snap.Gauge("tensordimm_remote_breakers_open"); !ok || v != 0 {
		t.Fatalf("breakers_open = %g, %v; want 0, true", v, ok)
	}
	// A volatile (no DataDir) store retains the appended tail in memory
	// and reports zero WAL bytes.
	if v, ok := snap.Gauge("tensordimm_remote_log_entries"); !ok || v == 0 {
		t.Fatalf("log_entries = %g, %v; want > 0, true", v, ok)
	}
	if v, ok := snap.Gauge("tensordimm_remote_wal_bytes"); !ok || v != 0 {
		t.Fatalf("wal_bytes = %g, %v; want 0, true", v, ok)
	}
	h, ok := snap.Histogram("tensordimm_remote_request_seconds")
	if !ok || h.Count != reads {
		t.Fatalf("request_seconds count = %d, %v; want %d, true", h.Count, ok, reads)
	}
	for _, shard := range []string{"0", "1"} {
		if _, ok := snap.Counter("tensordimm_persist_appends_total", telemetry.L("shard", shard)); !ok {
			t.Fatalf("persist appends series missing for shard %s", shard)
		}
	}

	// The human renderers ride the same counters.
	if s := rc.MetricsText(); !strings.Contains(s, "replicas up") {
		t.Fatalf("MetricsText missing fleet health: %q", s)
	}
}
