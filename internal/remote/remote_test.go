package remote_test

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"tensordimm/internal/cluster"
	"tensordimm/internal/faultnet"
	"tensordimm/internal/netserve"
	"tensordimm/internal/node"
	"tensordimm/internal/recsys"
	"tensordimm/internal/remote"
	"tensordimm/internal/runtime"
	"tensordimm/internal/serve"
	"tensordimm/internal/tensor"
	"tensordimm/internal/wire"
)

// testMaxBatch is the per-request sample cap every test fleet is sized
// with — the router's MaxBatch and each replica's serve stack must agree.
const testMaxBatch = 16

// testModelCfg is the test fleet geometry: dim 64 = one stripe on a
// 4-DIMM node, 301 rows so row-wise shard boundaries are uneven.
func testModelCfg() recsys.Config {
	return recsys.Config{
		Name: "remote-test", Tables: 2, Reduction: 2, FCLayers: 1,
		EmbDim: 64, TableRows: 301, Hidden: []int{8},
	}
}

// buildModel builds the deterministic full model replicas are carved
// from; the same seed on a "restarted" replica reproduces its state.
func buildModel(t *testing.T) *recsys.Model {
	t.Helper()
	m, err := recsys.Build(testModelCfg(), 42)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// replicaProc is one in-process stand-in for a -shard-id TensorNode
// process: a real serve stack behind a real TCP listener, with a fault
// injector between them.
type replicaProc struct {
	addr string
	in   *faultnet.Injector
	stop func()
}

// startReplica rebuilds the deterministic full model from its seed and
// carves shard s out of it (ExtractShardModel — the same construction a
// real -shard-id process performs at boot), then deploys and serves it
// with role Replica behind a faultnet-wrapped listener. Building from the
// seed rather than sharing the test's golden model matters: a restarted
// replica must come back at update sequence 0 with pristine weights, so
// the router's full-log replay is what reproduces its state. addr ""
// picks a free port; a fixed addr is re-bound with retries, so a
// "restarted" replica can reclaim its old endpoint.
func startReplica(t *testing.T, strat cluster.Strategy, nodes, s int, addr string) *replicaProc {
	t.Helper()
	m := buildModel(t)
	shardModel, err := cluster.ExtractShardModel(m, strat, nodes, s)
	if err != nil {
		t.Fatal(err)
	}
	p := cluster.NewPlacement(strat, nodes, m.Cfg.Tables, m.Cfg.TableRows)
	maxSub := p.MaxSub(s, testMaxBatch, m.Cfg.Reduction)
	nd, err := node.New(node.Config{DIMMs: 4, PerDIMMBytes: 32 << 20})
	if err != nil {
		t.Fatal(err)
	}
	dep, err := runtime.DeployConcurrent(shardModel, nd, maxSub, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{MaxBatch: maxSub, Workers: 2}, dep)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := netserve.New(netserve.ServerBackend(srv), netserve.Config{Role: wire.RoleReplica})
	if err != nil {
		t.Fatal(err)
	}
	listenAt := "127.0.0.1:0"
	if addr != "" {
		listenAt = addr
	}
	var l net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		l, err = net.Listen("tcp", listenAt)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("listen %s: %v", listenAt, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	in := faultnet.NewInjector()
	go ns.Serve(faultnet.Wrap(l, in))
	var once sync.Once
	rp := &replicaProc{addr: l.Addr().String(), in: in}
	rp.stop = func() {
		once.Do(func() {
			ns.Close()
			srv.Close()
			nd.Close()
		})
	}
	t.Cleanup(rp.stop)
	return rp
}

// startFleet spawns `replicas` replicaProcs for each of `nodes` shards
// and returns them as [shard][replica] plus the address groups.
func startFleet(t *testing.T, strat cluster.Strategy, nodes, replicas int) ([][]*replicaProc, [][]string) {
	t.Helper()
	procs := make([][]*replicaProc, nodes)
	addrs := make([][]string, nodes)
	for s := 0; s < nodes; s++ {
		for r := 0; r < replicas; r++ {
			rp := startReplica(t, strat, nodes, s, "")
			procs[s] = append(procs[s], rp)
			addrs[s] = append(addrs[s], rp.addr)
		}
	}
	return procs, addrs
}

// newRouter dials a RemoteCluster over the address groups, wiring
// OnApplied to write updates through to m's golden tables so the golden
// embedding stays the bit-identity reference.
func newRouter(t *testing.T, m *recsys.Model, strat cluster.Strategy, addrs [][]string, tweak func(*remote.Config)) *remote.RemoteCluster {
	t.Helper()
	cfg := remote.Config{
		Model:        m.Cfg,
		Strategy:     strat,
		Shards:       addrs,
		MaxBatch:     testMaxBatch,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
		OnApplied: func(up runtime.TableUpdate) {
			runtime.AccumulateGolden(m.Embedding.Tables[up.Table], up)
		},
	}
	if tweak != nil {
		tweak(&cfg)
	}
	rc, err := remote.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })
	return rc
}

// randRows draws one request's per-table row indices.
func randRows(rng *rand.Rand, mc recsys.Config, batch int) [][]int {
	rows := make([][]int, mc.Tables)
	for t := range rows {
		rows[t] = make([]int, batch*mc.Reduction)
		for i := range rows[t] {
			rows[t][i] = rng.Intn(mc.TableRows)
		}
	}
	return rows
}

// randUpdate draws one single-table gradient update (with duplicate rows
// now and then, so accumulation order matters).
func randUpdate(rng *rand.Rand, mc recsys.Config) runtime.TableUpdate {
	n := 1 + rng.Intn(testMaxBatch*mc.Reduction-1)
	rows := make([]int, n)
	for i := range rows {
		rows[i] = rng.Intn(mc.TableRows)
	}
	grads := tensor.New(n, mc.EmbDim)
	g := grads.Data()
	for i := range g {
		g[i] = rng.Float32() - 0.5
	}
	return runtime.TableUpdate{Table: rng.Intn(mc.Tables), Rows: rows, Grads: grads}
}

// checkGolden asserts one remote read is bit-identical to the golden
// embedding forward.
func checkGolden(t *testing.T, m *recsys.Model, rc *remote.RemoteCluster, rows [][]int, batch int) {
	t.Helper()
	got, err := rc.Embed(rows, batch)
	if err != nil {
		t.Fatalf("remote embed: %v", err)
	}
	want, err := m.Embedding.Forward(rows, batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range want.Data() {
		if got[i] != w {
			t.Fatalf("value %d: remote %v != golden %v", i, got[i], w)
		}
	}
}

// waitCond polls until cond holds or the deadline passes.
func waitCond(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBitIdentity routes reads and sequenced updates through
// single-replica fleets under both strategies and asserts bit-identity
// to the golden model before and after the updates.
func TestBitIdentity(t *testing.T) {
	for _, strat := range []cluster.Strategy{cluster.TableWise, cluster.RowWise} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			m := buildModel(t)
			_, addrs := startFleet(t, strat, 2, 1)
			rc := newRouter(t, m, strat, addrs, nil)
			rng := rand.New(rand.NewSource(7))
			for i := 0; i < 10; i++ {
				batch := 1 + rng.Intn(testMaxBatch)
				checkGolden(t, m, rc, randRows(rng, m.Cfg, batch), batch)
			}
			for i := 0; i < 8; i++ {
				if err := rc.ApplyUpdates([]runtime.TableUpdate{randUpdate(rng, m.Cfg), randUpdate(rng, m.Cfg)}); err != nil {
					t.Fatalf("update %d: %v", i, err)
				}
			}
			for i := 0; i < 10; i++ {
				batch := 1 + rng.Intn(testMaxBatch)
				checkGolden(t, m, rc, randRows(rng, m.Cfg, batch), batch)
			}
			mt := rc.Metrics()
			if mt.Updates != 8 || mt.Requests != 20 || mt.ReplicasUp != 2 {
				t.Fatalf("metrics %+v", mt)
			}
		})
	}
}

// TestFailoverZeroLoss runs concurrent mixed traffic over a 2-replica-
// per-shard fleet, hard-resets one replica (RST, the killed-process
// simulation) mid-stream, and asserts not one request failed and the
// final state is bit-identical to the golden model. The downed replica
// is then re-admitted once its faults clear.
func TestFailoverZeroLoss(t *testing.T) {
	m := buildModel(t)
	procs, addrs := startFleet(t, cluster.TableWise, 2, 2)
	rc := newRouter(t, m, cluster.TableWise, addrs, nil)

	const workers, iters = 4, 60
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	kill := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			var dst []float32
			for i := 0; i < iters; i++ {
				if i == iters/2 && w == 0 {
					close(kill)
				}
				if w == workers-1 && i%5 == 0 {
					if err := rc.ApplyUpdates([]runtime.TableUpdate{randUpdate(rng, m.Cfg)}); err != nil {
						errCh <- fmt.Errorf("worker %d update %d: %w", w, i, err)
						return
					}
					continue
				}
				batch := 1 + rng.Intn(testMaxBatch)
				var err error
				dst, err = rc.EmbedInto(dst, randRows(rng, m.Cfg, batch), batch)
				if err != nil {
					errCh <- fmt.Errorf("worker %d read %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	victim := procs[0][1]
	go func() {
		<-kill
		victim.in.Drop(true) // RSTs every live conn and refuses new ones
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Quiesced: the surviving fleet must match the golden model that
	// OnApplied kept in lockstep.
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 5; i++ {
		batch := 1 + rng.Intn(testMaxBatch)
		checkGolden(t, m, rc, randRows(rng, m.Cfg, batch), batch)
	}

	// Clear the fault: the reconnect supervisor plus catch-up replay
	// re-admit the victim.
	victim.in.Drop(false)
	waitCond(t, 5*time.Second, "victim re-admission", func() bool {
		return rc.Metrics().ReplicasUp == 4
	})
	if mt := rc.Metrics(); mt.Resyncs == 0 {
		t.Fatalf("victim rejoined without a catch-up replay: %+v", mt)
	}
}

// TestRestartCatchUpReplay stops a replica outright, applies updates it
// misses, restarts it at the same address (a fresh process rebuilds the
// deterministic shard model at sequence 0), and then kills the OTHER
// replica — so reads can only be served by the restarted one, proving the
// full-log replay reproduced the missed state bit-identically.
func TestRestartCatchUpReplay(t *testing.T) {
	m := buildModel(t)
	a := startReplica(t, cluster.TableWise, 1, 0, "")
	b := startReplica(t, cluster.TableWise, 1, 0, "")
	rc := newRouter(t, m, cluster.TableWise, [][]string{{a.addr, b.addr}}, nil)
	rng := rand.New(rand.NewSource(11))

	if err := rc.ApplyUpdates([]runtime.TableUpdate{randUpdate(rng, m.Cfg)}); err != nil {
		t.Fatal(err)
	}
	b.stop()
	waitCond(t, 5*time.Second, "b marked down", func() bool {
		return rc.Metrics().ReplicasUp == 1
	})
	for i := 0; i < 3; i++ {
		if err := rc.ApplyUpdates([]runtime.TableUpdate{randUpdate(rng, m.Cfg)}); err != nil {
			t.Fatalf("update while b down: %v", err)
		}
	}

	b2 := startReplica(t, cluster.TableWise, 1, 0, b.addr)
	_ = b2
	waitCond(t, 5*time.Second, "b replayed and re-admitted", func() bool {
		return rc.Metrics().ReplicasUp == 2
	})
	mt := rc.Metrics()
	if mt.Resyncs == 0 || mt.Replayed < 4 {
		t.Fatalf("expected a full-log replay, got %+v", mt)
	}

	a.stop()
	waitCond(t, 5*time.Second, "a marked down", func() bool {
		return rc.Metrics().ReplicasUp == 1
	})
	for i := 0; i < 5; i++ {
		batch := 1 + rng.Intn(testMaxBatch)
		checkGolden(t, m, rc, randRows(rng, m.Cfg, batch), batch)
	}
}

// TestUnavailableFailFast asserts that reads and updates against a shard
// whose whole replica group is down fail with the typed *Unavailable,
// not a hang.
func TestUnavailableFailFast(t *testing.T) {
	m := buildModel(t)
	a := startReplica(t, cluster.TableWise, 1, 0, "")
	rc := newRouter(t, m, cluster.TableWise, [][]string{{a.addr}}, nil)
	a.stop()
	rng := rand.New(rand.NewSource(13))
	waitCond(t, 5*time.Second, "replica marked down", func() bool {
		return rc.Metrics().ReplicasUp == 0
	})

	start := time.Now()
	_, err := rc.Embed(randRows(rng, m.Cfg, 2), 2)
	var un *remote.Unavailable
	if !errors.As(err, &un) || un.Shard != 0 {
		t.Fatalf("read error = %v, want *Unavailable for shard 0", err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("fail-fast read took %v", el)
	}
	err = rc.ApplyUpdates([]runtime.TableUpdate{randUpdate(rng, m.Cfg)})
	if !errors.As(err, &un) {
		t.Fatalf("update error = %v, want *Unavailable", err)
	}
	if rc.Metrics().Unavailable == 0 {
		t.Fatal("Unavailable counter did not move")
	}
}

// TestHedgedReads slows one replica far past the hedge delay and asserts
// the hedged second attempt fires and wins, with every result still
// bit-identical.
func TestHedgedReads(t *testing.T) {
	m := buildModel(t)
	a := startReplica(t, cluster.TableWise, 1, 0, "")
	b := startReplica(t, cluster.TableWise, 1, 0, "")
	rc := newRouter(t, m, cluster.TableWise, [][]string{{a.addr, b.addr}}, func(cfg *remote.Config) {
		cfg.HedgeAfter = 200 * time.Microsecond
	})
	a.in.SetReadDelay(40 * time.Millisecond)
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 12; i++ {
		batch := 1 + rng.Intn(testMaxBatch)
		checkGolden(t, m, rc, randRows(rng, m.Cfg, batch), batch)
	}
	a.in.SetReadDelay(0)
	mt := rc.Metrics()
	if mt.Hedges == 0 || mt.HedgeWins == 0 {
		t.Fatalf("hedging never fired: %+v", mt)
	}
}

// TestNewValidation exercises the fleet-shape checks at New: geometry
// mismatches, addresses on empty shards, and replicas that already
// applied updates are all rejected.
func TestNewValidation(t *testing.T) {
	m := buildModel(t)
	// A replica carved for a 2-shard fleet announces the wrong geometry
	// to a 1-shard router.
	wrong := startReplica(t, cluster.TableWise, 2, 0, "")
	_, err := remote.New(remote.Config{
		Model: m.Cfg, Strategy: cluster.TableWise, MaxBatch: testMaxBatch,
		Shards: [][]string{{wrong.addr}},
	})
	if err == nil {
		t.Fatal("geometry mismatch accepted")
	}
	// TableWise over 3 shards with 2 tables leaves shard 2 empty:
	// addresses there are a config error...
	_, err = remote.New(remote.Config{
		Model: m.Cfg, Strategy: cluster.TableWise, MaxBatch: testMaxBatch,
		Shards: [][]string{{wrong.addr}, {wrong.addr}, {wrong.addr}},
	})
	if err == nil {
		t.Fatal("replica addresses on an empty shard accepted")
	}
	// ...but an empty list for an empty shard serves fine.
	s0 := startReplica(t, cluster.TableWise, 3, 0, "")
	s1 := startReplica(t, cluster.TableWise, 3, 1, "")
	rc, err := remote.New(remote.Config{
		Model: m.Cfg, Strategy: cluster.TableWise, MaxBatch: testMaxBatch,
		Shards: [][]string{{s0.addr}, {s1.addr}, {}},
	})
	if err != nil {
		t.Fatalf("empty shard with empty address list rejected: %v", err)
	}
	rng := rand.New(rand.NewSource(23))
	if _, err := rc.Embed(randRows(rng, m.Cfg, 3), 3); err != nil {
		t.Fatalf("read over a fleet with an empty shard: %v", err)
	}
	rc.Close()
	// A replica that already absorbed updates cannot join a new router,
	// whose empty log could never have produced that state.
	lone := startReplica(t, cluster.TableWise, 1, 0, "")
	pre, err := remote.New(remote.Config{
		Model: m.Cfg, Strategy: cluster.TableWise, MaxBatch: testMaxBatch,
		Shards: [][]string{{lone.addr}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := pre.ApplyUpdates([]runtime.TableUpdate{randUpdate(rng, m.Cfg)}); err != nil {
		t.Fatal(err)
	}
	pre.Close()
	_, err = remote.New(remote.Config{
		Model: m.Cfg, Strategy: cluster.TableWise, MaxBatch: testMaxBatch,
		Shards: [][]string{{lone.addr}},
	})
	if err == nil {
		t.Fatal("replica with a non-zero update sequence accepted by a fresh router")
	}
}
