package remote_test

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tensordimm/internal/cluster"
	"tensordimm/internal/recsys"
	"tensordimm/internal/remote"
	"tensordimm/internal/runtime"
)

// e2eBin is the tensorserve binary TestMain builds once for the
// multi-process tests; empty when the build failed.
var e2eBin string

// TestMain builds cmd/tensorserve once — with -race when the test binary
// itself runs under the race detector — so every multi-process test
// spawns real shard processes from the same build.
func TestMain(m *testing.M) {
	os.Exit(e2eMain(m))
}

func e2eMain(m *testing.M) int {
	dir, err := os.MkdirTemp("", "tensordimm-e2e-")
	if err != nil {
		fmt.Fprintln(os.Stderr, "e2e temp dir:", err)
		return 1
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "tensorserve")
	args := []string{"build", "-o", bin}
	if raceEnabled {
		args = append(args, "-race")
	}
	args = append(args, "tensordimm/cmd/tensorserve")
	if out, err := exec.Command("go", args...).CombinedOutput(); err != nil {
		fmt.Fprintf(os.Stderr, "building tensorserve for e2e: %v\n%s", err, out)
		return 1
	}
	e2eBin = bin
	return m.Run()
}

// e2eModelCfg is the fleet geometry of the multi-process tests, chosen to
// be exactly expressible in tensorserve flags: the NCF benchmark with
// -rows 301 (uneven row-wise shard boundaries) and -dim 128 (one stripe
// on the default 8-DIMM node). The golden model built here from seed 42
// is bit-identical to what every shard process builds at boot.
func e2eModelCfg() recsys.Config {
	cfg := recsys.NCF()
	cfg.TableRows = 301
	cfg.EmbDim = 128
	return cfg
}

// e2eStrategyFlag maps a strategy to its -shard flag value.
func e2eStrategyFlag(strat cluster.Strategy) string {
	if strat == cluster.RowWise {
		return "row"
	}
	return "table"
}

// e2eProc is one real `tensorserve -listen -shard-id` shard process.
type e2eProc struct {
	addr string
	cmd  *exec.Cmd
	kill func()
}

// startProcReplica spawns a real shard process and parses its listening
// address off stdout. listenAt "127.0.0.1:0" picks a free port; a fixed
// address lets a "restarted" replica reclaim a killed process's endpoint.
func startProcReplica(t *testing.T, strat cluster.Strategy, nodes, s int, listenAt string) *e2eProc {
	t.Helper()
	if e2eBin == "" {
		t.Fatal("tensorserve e2e binary was not built")
	}
	cfg := e2eModelCfg()
	cmd := exec.Command(e2eBin,
		"-listen", listenAt,
		"-nodes", strconv.Itoa(nodes),
		"-shard-id", strconv.Itoa(s),
		"-shard", e2eStrategyFlag(strat),
		"-model", "ncf",
		"-rows", strconv.Itoa(cfg.TableRows),
		"-dim", strconv.Itoa(cfg.EmbDim),
		"-maxbatch", strconv.Itoa(testMaxBatch),
		"-workers", "2",
	)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "listening on "); ok {
				addr, _, _ := strings.Cut(rest, " ")
				addrCh <- addr
			}
		}
		close(addrCh)
	}()
	var once sync.Once
	p := &e2eProc{cmd: cmd}
	p.kill = func() {
		once.Do(func() {
			cmd.Process.Kill()
			cmd.Wait()
		})
	}
	t.Cleanup(p.kill)
	select {
	case addr, ok := <-addrCh:
		if !ok || addr == "" {
			t.Fatalf("shard %d process at %s exited before announcing its address", s, listenAt)
		}
		p.addr = addr
	case <-time.After(30 * time.Second):
		t.Fatalf("shard %d process at %s never announced its address", s, listenAt)
	}
	return p
}

// TestE2EMultiProcessFailover is the end-to-end failover proof over real
// processes: a 2-shard fleet with 2 single-process replicas per shard
// serves concurrent mixed embed/update traffic while one replica is
// SIGKILLed mid-stream — not one request may fail, and the quiesced fleet
// must read back bit-identical to the in-process golden model. A fresh
// process then restarts at the killed replica's address and the OTHER
// replica of that shard is killed, so the subsequent bit-identity checks
// can only be served by the restarted process — proving the catch-up
// replay reproduced its pre-crash state across a process boundary. Both
// sharding strategies run the same script.
func TestE2EMultiProcessFailover(t *testing.T) {
	for _, strat := range []cluster.Strategy{cluster.TableWise, cluster.RowWise} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			e2eFailover(t, strat)
		})
	}
}

func e2eFailover(t *testing.T, strat cluster.Strategy) {
	const shards, replicas = 2, 2
	cfg := e2eModelCfg()
	m, err := recsys.Build(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	procs := make([][]*e2eProc, shards)
	addrs := make([][]string, shards)
	for s := 0; s < shards; s++ {
		for r := 0; r < replicas; r++ {
			p := startProcReplica(t, strat, shards, s, "127.0.0.1:0")
			procs[s] = append(procs[s], p)
			addrs[s] = append(addrs[s], p.addr)
		}
	}
	rc, err := remote.New(remote.Config{
		Model:        cfg,
		Strategy:     strat,
		Shards:       addrs,
		MaxBatch:     testMaxBatch,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
		OnApplied: func(up runtime.TableUpdate) {
			runtime.AccumulateGolden(m.Embedding.Tables[up.Table], up)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rc.Close() })

	const workers, iters = 4, 50
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	kill := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(500 + w)))
			var dst []float32
			for i := 0; i < iters; i++ {
				if i == iters/2 && w == 0 {
					close(kill)
				}
				if w == workers-1 && i%5 == 0 {
					if err := rc.ApplyUpdates([]runtime.TableUpdate{randUpdate(rng, cfg)}); err != nil {
						errCh <- fmt.Errorf("worker %d update %d: %w", w, i, err)
						return
					}
					continue
				}
				batch := 1 + rng.Intn(testMaxBatch)
				var err error
				dst, err = rc.EmbedInto(dst, randRows(rng, cfg, batch), batch)
				if err != nil {
					errCh <- fmt.Errorf("worker %d read %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	victim := procs[0][1]
	go func() {
		<-kill
		victim.kill() // SIGKILL: the kernel tears the sockets down mid-request
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Quiesced: the surviving fleet must read back bit-identical to the
	// golden model OnApplied kept in lockstep.
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5; i++ {
		batch := 1 + rng.Intn(testMaxBatch)
		checkGolden(t, m, rc, randRows(rng, cfg, batch), batch)
	}
	if up := rc.Metrics().ReplicasUp; up != shards*replicas-1 {
		t.Fatalf("%d replicas up after the kill, want %d", up, shards*replicas-1)
	}

	// A fresh process at the victim's address rebuilds the deterministic
	// shard model at sequence 0; the router replays the full log into it.
	startProcReplica(t, strat, shards, 0, victim.addr)
	waitCond(t, 10*time.Second, "restarted process re-admission", func() bool {
		return rc.Metrics().ReplicasUp == shards*replicas
	})
	if mt := rc.Metrics(); mt.Resyncs == 0 {
		t.Fatalf("restarted process rejoined without a catch-up replay: %+v", mt)
	}

	// Kill the other replica of shard 0: only the restarted process can
	// serve the shard now, so these checks prove the replay reproduced its
	// pre-crash state across a process boundary.
	procs[0][0].kill()
	waitCond(t, 10*time.Second, "killed replica marked down", func() bool {
		return rc.Metrics().ReplicasUp == shards*replicas-1
	})
	for i := 0; i < 5; i++ {
		batch := 1 + rng.Intn(testMaxBatch)
		checkGolden(t, m, rc, randRows(rng, cfg, batch), batch)
	}
}
