// Package remote routes requests across replica groups of remote
// TensorNode shard processes: a RemoteCluster speaks the internal/wire
// protocol (through internal/netclient) to N replicas of each shard of a
// placement-sharded model, and exposes the same request surface as the
// in-process cluster.Cluster — EmbedInto, ApplyUpdates, Metrics, Close —
// with the same bit-identity contract against the golden model.
//
// Reads. Every lookup routes through the shared cluster.Placement into
// deduplicated per-shard sub-requests, exactly as the in-process router
// does. Each sub-request round-robins over its shard's healthy replicas;
// when the first attempt has not answered within the shard's hedge delay
// (a tracked latency percentile, floored at Config.HedgeAfter), a second
// attempt fires on another replica and the first answer wins — the loser
// is drained and recycled in the background. A transport loss or an
// admission-control shed fails over to the next healthy replica; only
// when every replica of a shard is unreachable does the request fail,
// fast, with a typed *Unavailable. The gathered partials merge through
// the shared cluster.Merger, so results are bit-identical to the golden
// embedding no matter which replica answered. The steady-state read path
// performs no heap allocations: scratch, destination buffers, calls, and
// hedge timers are all pooled.
//
// Writes. The router is the single writer of its fleet. Every per-shard
// sub-update is appended to that shard's durable update log
// (internal/persist) before it is fanned out to the replicas with the
// sequenced SYNC op: a replica applies update number seq only when seq
// matches its own applied count, acks replays without reapplying, and
// rejects gaps — exactly-once semantics over arbitrary disconnects. A
// replica that was down rejoins through a catch-up replay: its reconnect
// handshake announces how many updates it has applied, the router replays
// the missing log suffix, and only then do reads route to it again.
//
// Durability. Each shard's log is a persist.ShardLog: a WAL under
// Config.DataDir (or an in-memory equivalent when DataDir is empty),
// trimmed every Config.SnapshotEvery entries by scraping a full-table
// snapshot from a replica at the log head — so log bytes stay bounded in
// both modes. Because the WAL append happens before fan-out, the durable
// log is always a superset of any replica's applied state: a router
// restarted from DataDir replays WAL-tail-over-snapshot at New, resumes
// at the correct SYNC sequence, and re-drives every replica to the log
// head before serving. A replica that announces a sequence below the
// snapshot horizon is reseated with the RESTORE op (chunked absolute-row
// install) and then replays the remaining tail. The WAL is written with
// one write syscall per append and no per-append fsync: it survives
// router crashes (the kernel owns the bytes) but not a machine-wide power
// loss; snapshots are written tmp + fsync + rename.
//
// Per-table locks serialize same-table updates in the same way as the
// in-process cluster — float accumulation order is part of the
// bit-identity contract — and the optional Config.OnApplied hook fires in
// exactly that order, so a caller can maintain a golden reference model
// that stays bit-identical to the fleet.
package remote

import (
	"errors"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"
	"time"

	"tensordimm/internal/cluster"
	"tensordimm/internal/netclient"
	"tensordimm/internal/persist"
	"tensordimm/internal/recsys"
	"tensordimm/internal/runtime"
	"tensordimm/internal/stats"
	"tensordimm/internal/telemetry"
	"tensordimm/internal/wire"
)

// Config describes the fleet a RemoteCluster routes over. Model,
// Strategy, and Shards are required; the zero value of every other field
// selects a documented default at New.
type Config struct {
	// Model is the full model's configuration. The router never holds the
	// model's weights — it needs the geometry (tables, reduction,
	// dimension, rows) for placement and validation and the pooling mode
	// (Mean, Op) for the merge.
	Model recsys.Config
	// Strategy selects table-wise or row-wise sharding. The shard
	// processes must have been built with the same strategy and shard
	// count (cluster.ExtractShardModel / cmd/tensorserve -shard-id).
	Strategy cluster.Strategy
	// Shards lists each shard's replica addresses: Shards[s] holds the
	// endpoints serving shard s (1 to 64 entries). A shard the placement
	// leaves empty must have an empty list.
	Shards [][]string

	// MaxBatch caps the samples of one request. Defaults to 64. It must
	// match the -max-batch the shard processes were sized with: every
	// replica's announced geometry is validated against it at New.
	MaxBatch int
	// Workers is the router's dispatch pool size per shard. Defaults to 4.
	Workers int
	// Conns is the connection pool size per replica. Defaults to 1.
	Conns int
	// MaxFrameBytes, DialTimeout, RetryFor, ReconnectMin, ReconnectMax
	// pass through to every replica's netclient.Config.
	MaxFrameBytes int
	// DialTimeout bounds one connect plus handshake attempt.
	DialTimeout time.Duration
	// RetryFor keeps redialing refused connections at New, so the router
	// may start before its shard processes.
	RetryFor time.Duration
	// ReconnectMin is the first redial backoff after a replica is lost.
	ReconnectMin time.Duration
	// ReconnectMax caps the doubling redial backoff.
	ReconnectMax time.Duration

	// HedgeAfter floors the hedge delay: a second read attempt never
	// fires earlier than this, even when the tracked percentile is lower.
	// Defaults to 1ms. Hedging only arms on shards with >= 2 replicas.
	HedgeAfter time.Duration
	// HedgePercentile is the attempt-latency percentile the hedge delay
	// tracks, in (0, 1]. Defaults to 0.95.
	HedgePercentile float64

	// Deadline is the end-to-end budget of one read request. Every attempt
	// is stamped with the remaining budget on the wire (so a replica sheds
	// work the caller has already given up on, and a failover or hedge can
	// never outlive the original request), and when the budget lapses
	// before any replica answers, the read fails with a typed
	// *DeadlineExceeded instead of waiting out a slow replica. Zero means
	// no deadline. Updates are not deadline-bounded: once appended to the
	// shard log they are applied-eventually by design.
	Deadline time.Duration

	// BreakerWindow sizes the per-replica circuit breaker's rolling
	// outcome window: when the failure fraction of the last BreakerWindow
	// attempts reaches BreakerThreshold, the replica stops receiving reads
	// until a probe succeeds — which keeps a brown-out replica (alive
	// connection, failing attempts) from eating a retry on every request.
	// 2 to 64; zero defaults to 32, negative disables circuit breaking.
	BreakerWindow int
	// BreakerThreshold is the failure fraction within the window that
	// trips the breaker, in (0, 1]. Zero defaults to 0.5.
	BreakerThreshold float64
	// BreakerOpenFor is how long a tripped breaker rejects a replica
	// before admitting one probe attempt (and the spacing between probes
	// while the replica keeps failing). Zero defaults to 250ms.
	BreakerOpenFor time.Duration

	// RetryBudget caps failover amplification: each read entering a shard
	// earns the shard RetryBudget failover tokens and each failover spends
	// one, so sustained retry traffic cannot exceed RetryBudget times the
	// offered load (plus the RetryBurst bucket). When a shard's bucket is
	// empty the read fails with a typed *Unavailable instead of retrying.
	// Zero defaults to 0.2; negative disables the budget. Hedges are not
	// charged — they are bounded by design to one per request.
	RetryBudget float64
	// RetryBurst is the failover token bucket's capacity, allowing short
	// failure bursts to retry freely. Zero defaults to 16.
	RetryBurst int

	// DataDir, when set, roots the router's durable state: each shard's
	// WAL, snapshots, and hot-row lists live under DataDir/shard-NNN. A
	// router restarted with the same DataDir rebuilds its update logs,
	// resumes at the correct SYNC sequence, and re-drives its replicas to
	// the log head before serving. Empty keeps the logs in memory — still
	// snapshot-trimmed, but lost with the process. Mutually exclusive with
	// ReadOnly: a read-only router holds no update log.
	DataDir string
	// SnapshotEvery is how many log entries a shard accumulates before the
	// router scrapes a full-table snapshot from a replica at the log head
	// and trims the log prefix the snapshot covers. Zero defaults to
	// persist.DefaultSnapshotEvery; negative is invalid. Smaller values
	// bound log bytes tighter at the cost of more scrape traffic.
	SnapshotEvery int

	// OnApplied, if set, is called once per successfully applied table
	// update, under that table's update lock, in exactly the order the
	// shard logs sequenced it. A caller maintaining a golden reference
	// model applies the same update there to stay bit-identical to the
	// fleet.
	OnApplied func(runtime.TableUpdate)

	// ReadOnly attaches the router to a fleet it does not own — sticky-shard
	// read routing. Reads route placement-aware straight to each shard's
	// replica group, skipping the hop through the fleet's writing router;
	// ApplyUpdates is refused with ErrReadOnly. Because the fleet's single
	// writer owns the update log, a read-only router accepts replicas at any
	// announced update sequence (a writing router demands sequence 0) and
	// re-admits a recovered replica without catch-up replay — freshness is
	// the writer's job. Reads are bit-identical to the golden model for
	// whatever update sequence the answering replica has absorbed; a replica
	// the writer has not yet caught up serves correspondingly older values.
	ReadOnly bool
}

// ErrReadOnly is returned by ApplyUpdates on a read-only (sticky) router:
// updates must go through the fleet's single writer.
var ErrReadOnly = errors.New("remote: router is read-only; route updates through the fleet's writer")

// Unavailable is the typed fast-failure returned when every replica of a
// shard is down (or has been tried and lost) — the caller can distinguish
// a fleet outage from a rejected request.
type Unavailable struct {
	// Shard is the shard whose replica group is unreachable.
	Shard int
	// Err is the last per-replica error observed, when one exists.
	Err error
}

// Error implements error.
func (e *Unavailable) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("remote: shard %d: every replica is down (last: %v)", e.Shard, e.Err)
	}
	return fmt.Sprintf("remote: shard %d: every replica is down", e.Shard)
}

// Unwrap exposes the last per-replica error to errors.Is/As.
func (e *Unavailable) Unwrap() error { return e.Err }

// DeadlineExceeded is the typed failure of a read whose Config.Deadline
// budget lapsed before any replica of a shard answered.
type DeadlineExceeded struct {
	// Shard is the shard whose sub-request ran out of budget.
	Shard int
	// Budget is the configured end-to-end deadline.
	Budget time.Duration
}

// Error implements error.
func (e *DeadlineExceeded) Error() string {
	return fmt.Sprintf("remote: shard %d: deadline budget %v exhausted", e.Shard, e.Budget)
}

// Replica health states. A replica serves reads only while healthy;
// syncing marks a catch-up replay in progress.
const (
	repDown int32 = iota
	repSyncing
	repHealthy
)

// replica is one endpoint of a shard's replica group.
type replica struct {
	addr  string
	cl    *netclient.Client
	state atomic.Int32
	// brk is the replica's circuit breaker over recent attempt outcomes,
	// orthogonal to state (see breaker).
	brk breaker
	// applied counts the log entries this replica has absorbed; guarded
	// by the owning shard's updMu.
	applied uint64
}

// rShard is one shard of the fleet: its replica group, its durable update
// log, and its hedge-delay tracker.
type rShard struct {
	id       int
	replicas []*replica
	rr       atomic.Uint64
	// maxSub is the shard's largest sub-request (the replica's announced
	// MaxBatch), which sizes snapshot scrape chunks.
	maxSub int
	// retryTokens is the shard's failover token bucket in millitokens
	// (see refillRetry/takeRetry).
	retryTokens atomic.Int64

	// updMu serializes log appends, fan-out, catch-up replay, and snapshot
	// scrapes for this shard, so every replica absorbs the same entries in
	// the same order.
	updMu sync.Mutex
	// store is the shard's snapshot-trimmed update log (nil on empty shards
	// and read-only routers); guarded by updMu.
	store *persist.ShardLog

	hedge hedgeTracker
}

// hedgeTracker tracks a percentile of recent read-attempt latencies for
// one shard, recomputed every few dozen observations into an atomically
// readable threshold — the hot path never sorts or locks.
type hedgeTracker struct {
	pct    float64
	thresh atomic.Int64 // nanoseconds; 0 until enough observations

	mu     sync.Mutex
	ring   [256]int64
	sorted [256]int64
	n      int
	idx    int
	obs    int
}

// observe records one successful attempt's latency and periodically
// refreshes the percentile threshold.
func (h *hedgeTracker) observe(d time.Duration) {
	h.mu.Lock()
	h.ring[h.idx] = int64(d)
	h.idx = (h.idx + 1) % len(h.ring)
	if h.n < len(h.ring) {
		h.n++
	}
	h.obs++
	if h.obs >= 64 {
		h.obs = 0
		copy(h.sorted[:h.n], h.ring[:h.n])
		s := h.sorted[:h.n]
		slices.Sort(s)
		h.thresh.Store(s[int(float64(h.n-1)*h.pct)])
	}
	h.mu.Unlock()
}

// after returns the current hedge delay, floored at the configured
// minimum.
func (h *hedgeTracker) after(floor time.Duration) time.Duration {
	if t := time.Duration(h.thresh.Load()); t > floor {
		return t
	}
	return floor
}

// RemoteCluster routes requests over a fleet of remote shard replicas.
// Create with New, submit from any number of goroutines, and Close when
// done. It satisfies netserve.Backend, so a router can itself be served
// over the network plane.
type RemoteCluster struct {
	cfg    Config
	place  *cluster.Placement
	shards []*rShard
	width  int // tables x dim, the per-sample output width
	brkCfg breakerCfg
	// retryRefill/retryCap are the resolved failover token-bucket
	// parameters in millitokens (0 refill disables the budget).
	retryRefill int64
	retryCap    int64

	scratchPool sync.Pool
	bufPool     sync.Pool
	timerPool   sync.Pool
	dispatch    chan *rCall

	// runMu guards closed against the in-flight counter so Close can
	// drain before tearing the clients down.
	runMu    sync.Mutex
	inflight sync.WaitGroup
	// tableMu serializes updates per global table (see ApplyUpdates).
	tableMu []sync.Mutex

	// ready gates the netclient callbacks until New finished wiring the
	// replica structures they reference.
	ready     chan struct{}
	readyOnce sync.Once
	closed    atomic.Bool
	closeCh   chan struct{}
	janitorWG sync.WaitGroup

	requests   stats.Counter
	samples    stats.Counter
	lookups    stats.Counter
	failures   stats.Counter
	updates    stats.Counter
	updateRows stats.Counter
	hedges     stats.Counter // hedged second attempts fired
	hedgeWins  stats.Counter // requests won by the hedged attempt
	failovers  stats.Counter // failover replacement attempts started
	unavail    stats.Counter // operations failed with Unavailable
	brkTrips   stats.Counter // circuit breakers tripped closed->open
	denied     stats.Counter // failovers denied by the retry budget
	deadlines  stats.Counter // reads failed with DeadlineExceeded
	resyncs    stats.Counter // replica catch-up replays completed
	replayed   stats.Counter // log entries delivered by catch-up replays
	snapshots  stats.Counter // shard snapshots scraped and installed
	restores   stats.Counter // replicas reseated from a snapshot (RESTORE)
	latency    stats.Latency

	// tLat is the telemetry read-latency histogram, nil until Instrument;
	// the observe site is nil-guarded.
	tLat *telemetry.Histogram
}

// withDefaults fills the zero fields.
func (cfg Config) withDefaults() Config {
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 64
	}
	if cfg.Workers == 0 {
		cfg.Workers = 4
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = time.Millisecond
	}
	if cfg.HedgePercentile == 0 {
		cfg.HedgePercentile = 0.95
	}
	if cfg.BreakerWindow == 0 {
		cfg.BreakerWindow = 32
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 0.5
	}
	if cfg.BreakerOpenFor == 0 {
		cfg.BreakerOpenFor = 250 * time.Millisecond
	}
	if cfg.RetryBudget == 0 {
		cfg.RetryBudget = 0.2
	}
	if cfg.RetryBurst == 0 {
		cfg.RetryBurst = 16
	}
	return cfg
}

// New opens (and replays) each shard's durable update log, dials every
// replica of every shard, validates each handshake against the placement
// (a replica must announce exactly the flat gather-only geometry its
// shard position implies, at an update sequence no further than the
// recovered log head), drives lagging replicas back to the head, and
// returns a router ready to serve. Every replica is supervised: a lost
// connection reconnects with backoff and rejoins through a catch-up
// replay of the shard's update log.
func New(cfg Config) (*RemoteCluster, error) {
	mc := cfg.Model
	if mc.Tables <= 0 || mc.Reduction <= 0 || mc.EmbDim <= 0 || mc.TableRows <= 0 {
		return nil, fmt.Errorf("remote: model geometry must be positive (tables %d, reduction %d, dim %d, rows %d)",
			mc.Tables, mc.Reduction, mc.EmbDim, mc.TableRows)
	}
	if cfg.Strategy != cluster.TableWise && cfg.Strategy != cluster.RowWise {
		return nil, fmt.Errorf("remote: unknown strategy %v", cfg.Strategy)
	}
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("remote: no shards configured")
	}
	if cfg.MaxBatch < 0 || cfg.Workers < 0 || cfg.HedgeAfter < 0 || cfg.HedgePercentile < 0 || cfg.HedgePercentile > 1 {
		return nil, fmt.Errorf("remote: invalid sizing (MaxBatch %d, Workers %d, HedgeAfter %v, HedgePercentile %g)",
			cfg.MaxBatch, cfg.Workers, cfg.HedgeAfter, cfg.HedgePercentile)
	}
	if cfg.SnapshotEvery < 0 {
		return nil, fmt.Errorf("remote: SnapshotEvery %d is negative (use 0 for the default)", cfg.SnapshotEvery)
	}
	if cfg.Deadline < 0 {
		return nil, fmt.Errorf("remote: Deadline %v is negative (use 0 for no deadline)", cfg.Deadline)
	}
	if cfg.BreakerWindow == 1 || cfg.BreakerWindow > 64 {
		return nil, fmt.Errorf("remote: BreakerWindow %d out of range [2, 64] (0 defaults, negative disables)", cfg.BreakerWindow)
	}
	if cfg.BreakerThreshold < 0 || cfg.BreakerThreshold > 1 || cfg.BreakerOpenFor < 0 || cfg.RetryBurst < 0 {
		return nil, fmt.Errorf("remote: invalid robustness tuning (BreakerThreshold %g, BreakerOpenFor %v, RetryBurst %d)",
			cfg.BreakerThreshold, cfg.BreakerOpenFor, cfg.RetryBurst)
	}
	if cfg.ReadOnly && cfg.DataDir != "" {
		return nil, fmt.Errorf("remote: a read-only router holds no update log; drop DataDir %q or ReadOnly", cfg.DataDir)
	}
	cfg = cfg.withDefaults()

	rc := &RemoteCluster{
		cfg:     cfg,
		place:   cluster.NewPlacement(cfg.Strategy, len(cfg.Shards), mc.Tables, mc.TableRows),
		width:   mc.Tables * mc.EmbDim,
		tableMu: make([]sync.Mutex, mc.Tables),
		ready:   make(chan struct{}),
		closeCh: make(chan struct{}),
	}
	if cfg.BreakerWindow > 0 {
		need := cfg.BreakerWindow / 4
		if need < 4 {
			need = 4
		}
		rc.brkCfg = breakerCfg{
			size:      cfg.BreakerWindow,
			need:      need,
			threshold: cfg.BreakerThreshold,
			openFor:   cfg.BreakerOpenFor,
		}
	}
	if cfg.RetryBudget > 0 {
		rc.retryRefill = int64(cfg.RetryBudget * 1000)
		rc.retryCap = int64(cfg.RetryBurst) * 1000
	}
	fail := func(err error) (*RemoteCluster, error) {
		rc.Close()
		return nil, err
	}

	maxCap := 0
	for s, addrs := range cfg.Shards {
		localRows := rc.place.LocalRows(s)
		if localRows == 0 {
			if len(addrs) != 0 {
				return fail(fmt.Errorf("remote: shard %d holds no rows under %v placement but has %d replica addresses",
					s, cfg.Strategy, len(addrs)))
			}
			rc.shards = append(rc.shards, &rShard{id: s})
			continue
		}
		if len(addrs) == 0 {
			return fail(fmt.Errorf("remote: shard %d has no replica addresses", s))
		}
		if len(addrs) > 64 {
			return fail(fmt.Errorf("remote: shard %d has %d replicas, above the supported 64", s, len(addrs)))
		}
		maxSub := rc.place.MaxSub(s, cfg.MaxBatch, mc.Reduction)
		if n := maxSub * mc.EmbDim; n > maxCap {
			maxCap = n
		}
		sh := &rShard{id: s, maxSub: maxSub}
		sh.hedge.pct = cfg.HedgePercentile
		sh.retryTokens.Store(rc.retryCap) // start with a full burst bucket
		// Registered before dialing so a mid-shard failure still closes this
		// shard's store and already-dialed clients through Close.
		rc.shards = append(rc.shards, sh)
		if !cfg.ReadOnly {
			// The store opens (and replays) before the first replica dials:
			// the handshake check below needs the recovered log head.
			store, err := persist.Open(persist.Config{
				Dir:             cfg.DataDir,
				Shard:           s,
				Dim:             mc.EmbDim,
				LocalRows:       localRows,
				MaxRowsPerEntry: maxSub,
				SnapshotEvery:   cfg.SnapshotEvery,
			})
			if err != nil {
				return fail(fmt.Errorf("remote: shard %d: %w", s, err))
			}
			sh.store = store
		}
		want := wire.Geometry{Tables: 1, Reduction: 1, Dim: mc.EmbDim, TableRows: localRows, MaxBatch: maxSub}
		for _, addr := range addrs {
			rep := &replica{addr: addr}
			shc, repc := sh, rep
			cl, err := netclient.Dial(addr, netclient.Config{
				Conns:         cfg.Conns,
				MaxFrameBytes: cfg.MaxFrameBytes,
				DialTimeout:   cfg.DialTimeout,
				RetryFor:      cfg.RetryFor,
				Reconnect:     true,
				ReconnectMin:  cfg.ReconnectMin,
				ReconnectMax:  cfg.ReconnectMax,
				OnUp: func(h wire.Hello) {
					<-rc.ready
					rc.resync(shc, repc, h)
				},
				OnDown: func(error) {
					<-rc.ready
					repc.state.Store(repDown)
				},
			})
			if err != nil {
				return fail(fmt.Errorf("remote: shard %d replica %s: %w", s, addr, err))
			}
			rep.cl = cl
			sh.replicas = append(sh.replicas, rep)
			h := cl.Hello()
			if h.Geom != want {
				return fail(fmt.Errorf("remote: shard %d replica %s announced geometry %+v, placement expects %+v (same -strategy/-shards/-max-batch on both sides?)",
					s, addr, h.Geom, want))
			}
			if len(addrs) > 1 && h.Role != wire.RoleReplica {
				return fail(fmt.Errorf("remote: shard %d replica %s announced role %v in a %d-replica group; start it with -shard-id so it serves as a replica",
					s, addr, h.Role, len(addrs)))
			}
			if !cfg.ReadOnly && h.UpdateSeq > sh.store.Head() {
				return fail(fmt.Errorf("remote: shard %d replica %s already applied %d updates, ahead of the router's log head %d — it served a different writer (restart it, or start this router from that writer's -data-dir)",
					s, addr, h.UpdateSeq, sh.store.Head()))
			}
			rep.applied = h.UpdateSeq
			rep.state.Store(repHealthy)
		}
	}

	// Boot catch-up: a router restarted from its durable log re-drives
	// every replica to the recovered log head — snapshot reseat for the
	// ones below the trim horizon, sequenced replay for the rest — before
	// any traffic is admitted. A replica that cannot be caught up goes
	// down (the janitor keeps retrying) rather than failing New: the fleet
	// serves as soon as one replica per shard is current, which WaitReady
	// observes.
	if !cfg.ReadOnly {
		for _, sh := range rc.shards {
			if sh.store == nil || sh.store.Head() == 0 {
				continue
			}
			sh.updMu.Lock()
			for _, rep := range sh.replicas {
				if rep.applied == sh.store.Head() {
					continue
				}
				if err := rc.catchUp(sh, rep); err != nil {
					rep.state.Store(repDown)
				}
			}
			sh.updMu.Unlock()
		}
	}

	rc.scratchPool.New = func() any { return rc.newScratch() }
	rc.bufPool.New = func() any {
		b := make([]float32, 0, maxCap)
		return &b
	}
	rc.timerPool.New = func() any {
		t := time.NewTimer(time.Hour)
		if !t.Stop() {
			<-t.C
		}
		return t
	}
	workers := len(cfg.Shards) * cfg.Workers
	rc.dispatch = make(chan *rCall, workers)
	for i := 0; i < workers; i++ {
		go rc.dispatchWorker()
	}
	// The janitor re-admits replicas whose connection recovered but whose
	// catch-up replay failed (or who were dropped for persistent shedding)
	// — any down replica with a live connection is retried.
	rc.janitorWG.Add(1)
	go rc.janitor()
	rc.markReady()
	return rc, nil
}

// markReady releases the netclient callbacks gated on New's wiring.
func (rc *RemoteCluster) markReady() {
	rc.readyOnce.Do(func() { close(rc.ready) })
}

// janitor periodically resyncs down replicas whose connection is live.
func (rc *RemoteCluster) janitor() {
	defer rc.janitorWG.Done()
	tick := time.NewTicker(100 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-rc.closeCh:
			return
		case <-tick.C:
			for _, sh := range rc.shards {
				for _, rep := range sh.replicas {
					if rep.state.Load() == repDown && rep.cl.Healthy() {
						rc.resync(sh, rep, rep.cl.Hello())
					}
				}
			}
		}
	}
}

// rowRef locates one lookup's resolved row: an index into the owning
// shard's sub-request result.
type rowRef struct {
	shard int32
	idx   int32
}

// subReq is one shard's slice of a remoteScratch: the deduplicated flat
// index list, the reused request header, the winning response view, and
// the epoch-stamped dedup table (shared idiom with the in-process
// router's subScratch).
type subReq struct {
	rows    []int
	rowsArg [][]int
	out     []float32 // the winning attempt's decoded response
	stamp   []uint32
	slot    []int32
}

// remoteScratch is the pooled per-request working set of the router.
type remoteScratch struct {
	wg      sync.WaitGroup
	epoch   uint32
	calls   []rCall
	sub     []subReq
	src     []rowRef
	lookups int
	vec     func(t, i int) []float32
}

// rCall is one shard sub-request being executed by a dispatch worker,
// including the winning attempt's resources (released after the merge).
type rCall struct {
	rc  *RemoteCluster
	s   int
	scr *remoteScratch
	err error
	// deadline is this request's absolute expiry (zero when no deadline
	// is configured); set per request before dispatch.
	deadline time.Time

	winCl  *netclient.Client
	winCa  *netclient.Call
	winBuf *[]float32
}

// newScratch sizes a remoteScratch for the fleet's geometry.
func (rc *RemoteCluster) newScratch() *remoteScratch {
	mc := rc.cfg.Model
	lookups := rc.cfg.MaxBatch * mc.Reduction
	scr := &remoteScratch{
		calls: make([]rCall, len(rc.shards)),
		sub:   make([]subReq, len(rc.shards)),
		src:   make([]rowRef, mc.Tables*lookups),
	}
	for s := range scr.sub {
		maxSub := rc.place.TablesOn(s) * lookups
		scr.sub[s] = subReq{
			rows:    make([]int, 0, maxSub),
			rowsArg: make([][]int, 1),
			stamp:   make([]uint32, rc.place.LocalRows(s)),
			slot:    make([]int32, rc.place.LocalRows(s)),
		}
	}
	for s := range scr.calls {
		scr.calls[s] = rCall{rc: rc, s: s, scr: scr}
	}
	dim := mc.EmbDim
	scr.vec = func(t, i int) []float32 {
		ref := scr.src[t*scr.lookups+i]
		out := scr.sub[ref.shard].out
		return out[int(ref.idx)*dim : (int(ref.idx)+1)*dim]
	}
	return scr
}

// nextEpoch advances the dedup epoch, clearing stamps on wrap-around.
func (scr *remoteScratch) nextEpoch() uint32 {
	scr.epoch++
	if scr.epoch == 0 {
		for s := range scr.sub {
			clear(scr.sub[s].stamp)
		}
		scr.epoch = 1
	}
	return scr.epoch
}

// dispatchWorker executes shard sub-requests until Close drains the pool.
func (rc *RemoteCluster) dispatchWorker() {
	for call := range rc.dispatch {
		call.run()
		call.scr.wg.Done()
	}
}

// attempt is one in-flight read attempt on a replica.
type attempt struct {
	rep    *replica
	ca     *netclient.Call
	buf    *[]float32
	start  time.Time
	hedged bool
}

// run executes one shard's sub-request with hedging and failover: a
// round-robin first attempt, a hedged second after the shard's tracked
// latency percentile, failover past transport losses and sheds, and a
// typed Unavailable when the whole replica group is unreachable.
func (call *rCall) run() {
	rc, s, scr := call.rc, call.s, call.scr
	sh := rc.shards[s]
	sub := &scr.sub[s]
	sub.rowsArg[0] = sub.rows
	sh.refillRetry(rc.retryRefill, rc.retryCap)

	var tried uint64
	var lastErr error
	cur, err := call.start(&tried, false)
	if err != nil {
		call.fail(err)
		return
	}
	var alt attempt
	var tm, dtm *time.Timer
	var hedgeC, dlC <-chan time.Time
	if len(sh.replicas) > 1 {
		tm = rc.timerPool.Get().(*time.Timer)
		tm.Reset(sh.hedge.after(rc.cfg.HedgeAfter))
		hedgeC = tm.C
	}
	if !call.deadline.IsZero() {
		dtm = rc.timerPool.Get().(*time.Timer)
		dtm.Reset(time.Until(call.deadline))
		dlC = dtm.C
	}
	putTimer := func(t *time.Timer) {
		if t == nil {
			return
		}
		if !t.Stop() {
			select {
			case <-t.C:
			default:
			}
		}
		rc.timerPool.Put(t)
	}
	defer func() {
		putTimer(tm)
		putTimer(dtm)
	}()

	for {
		var curC, altC <-chan error
		if cur.ca != nil {
			curC = cur.ca.Done()
		}
		if alt.ca != nil {
			altC = alt.ca.Done()
		}
		select {
		case err := <-curC:
			if call.settle(sh, sub, &cur, &alt, err, &tried, &lastErr) {
				return
			}
		case err := <-altC:
			if call.settle(sh, sub, &alt, &cur, err, &tried, &lastErr) {
				return
			}
		case <-hedgeC:
			hedgeC = nil
			if a, aerr := call.start(&tried, true); aerr == nil {
				alt = a
				rc.hedges.Inc()
			}
		case <-dlC:
			// Budget exhausted: abandon the in-flight attempts (reaped and
			// recycled in the background) and fail typed.
			dlC = nil
			if cur.ca != nil {
				go rc.reap(cur.rep.cl, cur.ca, cur.buf)
				cur.ca = nil
			}
			if alt.ca != nil {
				go rc.reap(alt.rep.cl, alt.ca, alt.buf)
				alt.ca = nil
			}
			call.fail(&DeadlineExceeded{Shard: s, Budget: rc.cfg.Deadline})
			return
		}
	}
}

// fail records a terminal routing failure, classifying it for metrics.
func (call *rCall) fail(err error) {
	var de *DeadlineExceeded
	if errors.As(err, &de) {
		call.rc.deadlines.Inc()
	} else {
		call.rc.unavail.Inc()
	}
	call.err = err
}

// start fires one attempt on the next healthy untried replica whose
// circuit breaker admits traffic, cycling the shard's round-robin
// counter. Each attempt is stamped with the request's remaining deadline
// budget, so a late failover asks the replica for strictly less time than
// the original attempt did. It returns Unavailable when no replica
// qualifies and DeadlineExceeded when the budget is already gone.
func (call *rCall) start(tried *uint64, hedged bool) (attempt, error) {
	rc, s := call.rc, call.s
	sh := rc.shards[s]
	sub := &call.scr.sub[s]
	now := time.Now()
	var budget time.Duration
	if !call.deadline.IsZero() {
		if budget = call.deadline.Sub(now); budget <= 0 {
			return attempt{}, &DeadlineExceeded{Shard: s, Budget: rc.cfg.Deadline}
		}
	}
	// Only primary attempts advance the round-robin counter: a hedge or
	// failover bumping it too would give requests an even stride over the
	// group and pin every primary to the same replica.
	begin := int(sh.rr.Load())
	if !hedged {
		begin = int(sh.rr.Add(1))
	}
	for i := 0; i < len(sh.replicas); i++ {
		ri := (begin + i) % len(sh.replicas)
		if *tried&(1<<uint(ri)) != 0 {
			continue
		}
		rep := sh.replicas[ri]
		if rep.state.Load() != repHealthy {
			continue
		}
		if !rep.brk.allow(&rc.brkCfg, now) {
			continue
		}
		*tried |= 1 << uint(ri)
		buf := rc.bufPool.Get().(*[]float32)
		ca, err := rep.cl.StartEmbedBudget((*buf)[:0], sub.rowsArg, len(sub.rows), budget)
		if err != nil {
			rc.bufPool.Put(buf)
			continue
		}
		return attempt{rep: rep, ca: ca, buf: buf, start: now, hedged: hedged}, nil
	}
	return attempt{}, &Unavailable{Shard: s}
}

// settle handles one attempt's result; done is the attempt that
// delivered, other may still be in flight. It returns true when the call
// is finished (won or failed for good).
func (call *rCall) settle(sh *rShard, sub *subReq, done, other *attempt, err error, tried *uint64, lastErr *error) bool {
	rc := call.rc
	if err == nil {
		sh.hedge.observe(time.Since(done.start))
		done.rep.brk.ok(&rc.brkCfg)
		if done.hedged {
			rc.hedgeWins.Inc()
		}
		sub.out = done.ca.Dst()
		call.winCl, call.winCa, call.winBuf = done.rep.cl, done.ca, done.buf
		done.ca = nil
		if other.ca != nil {
			go rc.reap(other.rep.cl, other.ca, other.buf)
			other.ca = nil
		}
		return true
	}
	// The attempt failed: recycle its call before deciding what's next.
	*done.buf = done.ca.Dst()
	done.rep.cl.Finish(done.ca)
	rc.bufPool.Put(done.buf)
	done.ca = nil
	var se *netclient.ServerError
	if errors.As(err, &se) && se.Code != wire.ErrOverloaded {
		// The server rejected or failed the request itself; no other
		// replica would answer differently.
		call.err = fmt.Errorf("remote: shard %d: %w", call.s, err)
		if other.ca != nil {
			go rc.reap(other.rep.cl, other.ca, other.buf)
			other.ca = nil
		}
		return true
	}
	// Transport loss or admission shed: fail over to another replica.
	*lastErr = err
	if done.rep.brk.fail(&rc.brkCfg, time.Now()) {
		rc.brkTrips.Inc()
	}
	if other.ca != nil {
		return false // the other attempt may still win
	}
	// A replacement attempt spends one of the shard's retry tokens; an
	// empty bucket fails the read instead of amplifying the brown-out.
	if rc.retryRefill > 0 && !sh.takeRetry() {
		rc.denied.Inc()
		call.fail(&Unavailable{Shard: call.s, Err: *lastErr})
		return true
	}
	rc.failovers.Inc()
	na, aerr := call.start(tried, done.hedged)
	if aerr != nil {
		var un *Unavailable
		if errors.As(aerr, &un) {
			un.Err = *lastErr
		}
		call.fail(aerr)
		return true
	}
	*done = na
	return false
}

// reap drains and recycles a hedged read's losing attempt.
func (rc *RemoteCluster) reap(cl *netclient.Client, ca *netclient.Call, buf *[]float32) {
	<-ca.Done()
	*buf = ca.Dst()
	cl.Finish(ca)
	rc.bufPool.Put(buf)
}

// releaseWins recycles every dispatched shard's winning call and buffer
// after the merge consumed them.
func (rc *RemoteCluster) releaseWins(scr *remoteScratch) {
	for s := range scr.calls {
		call := &scr.calls[s]
		if call.winCa == nil {
			continue
		}
		*call.winBuf = call.winCa.Dst()
		call.winCl.Finish(call.winCa)
		rc.bufPool.Put(call.winBuf)
		call.winCl, call.winCa, call.winBuf = nil, nil, nil
	}
}

// Embed runs one embedding request of `batch` samples and returns the
// pooled [batch, tables*dim] values in a fresh slice. Safe for concurrent
// use.
func (rc *RemoteCluster) Embed(perTableRows [][]int, batch int) ([]float32, error) {
	return rc.EmbedInto(nil, perTableRows, batch)
}

// EmbedInto runs one embedding request of `batch` samples and decodes
// the pooled [batch, tables*dim] values row-major into dst, which is
// grown if its capacity is insufficient and returned re-sliced to exactly
// batch*tables*dim. Results are bit-identical to the golden model's
// embedding forward regardless of which replicas answered. A caller that
// reuses the returned slice performs zero heap allocations in steady
// state. Safe for concurrent use (with distinct dst buffers).
func (rc *RemoteCluster) EmbedInto(dst []float32, perTableRows [][]int, batch int) ([]float32, error) {
	if err := rc.validateRead(perTableRows, batch); err != nil {
		return nil, err
	}
	need := batch * rc.width
	if cap(dst) < need {
		dst = make([]float32, need)
	}
	dst = dst[:need]
	if err := rc.run(dst, perTableRows, batch); err != nil {
		return nil, err
	}
	return dst, nil
}

// run executes one validated read: route, hedged-dispatch, merge.
func (rc *RemoteCluster) run(dst []float32, perTableRows [][]int, batch int) error {
	start := time.Now()
	mc := rc.cfg.Model
	if err := rc.enter(); err != nil {
		return err
	}
	defer rc.inflight.Done()
	lookups := batch * mc.Reduction
	rc.lookups.Add(uint64(mc.Tables * lookups))

	scr := rc.scratchPool.Get().(*remoteScratch)
	defer rc.scratchPool.Put(scr)
	epoch := scr.nextEpoch()
	scr.lookups = lookups
	for s := range scr.sub {
		scr.sub[s].rows = scr.sub[s].rows[:0]
	}

	// Route: deduplicate every lookup into the owning shard's sub-request
	// (same epoch-stamp idiom as the in-process router).
	for t, rows := range perTableRows {
		ref := scr.src[t*lookups : (t+1)*lookups]
		for i, r := range rows {
			s, flat := rc.place.Locate(t, r)
			sub := &scr.sub[s]
			if sub.stamp[flat] == epoch {
				ref[i] = rowRef{shard: int32(s), idx: sub.slot[flat]}
				continue
			}
			sub.stamp[flat] = epoch
			sub.slot[flat] = int32(len(sub.rows))
			ref[i] = rowRef{shard: int32(s), idx: sub.slot[flat]}
			sub.rows = append(sub.rows, flat)
		}
	}

	var deadline time.Time
	if rc.cfg.Deadline > 0 {
		deadline = start.Add(rc.cfg.Deadline)
	}
	for s := range scr.sub {
		if len(scr.sub[s].rows) == 0 {
			continue
		}
		scr.calls[s].err = nil
		scr.calls[s].deadline = deadline
		scr.wg.Add(1)
		rc.dispatch <- &scr.calls[s]
	}
	scr.wg.Wait()

	var firstErr error
	for s := range scr.sub {
		if len(scr.sub[s].rows) == 0 {
			continue
		}
		if err := scr.calls[s].err; err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr != nil {
		rc.failures.Inc()
		rc.releaseWins(scr)
		return firstErr
	}

	merger := cluster.Merger{Tables: mc.Tables, Dim: mc.EmbDim, Reduction: mc.Reduction, Mean: mc.Mean, Op: mc.Op}
	err := merger.Merge(dst, batch, scr.vec)
	rc.releaseWins(scr)
	if err != nil {
		rc.failures.Inc()
		return err
	}
	rc.requests.Inc()
	rc.samples.Add(uint64(batch))
	total := time.Since(start).Seconds()
	rc.latency.Observe(total)
	if rc.tLat != nil {
		rc.tLat.Observe(total)
	}
	return nil
}

// validateRead checks one read submission against the fleet geometry.
func (rc *RemoteCluster) validateRead(perTableRows [][]int, batch int) error {
	mc := rc.cfg.Model
	if batch <= 0 || batch > rc.cfg.MaxBatch {
		return fmt.Errorf("remote: batch %d out of range [1, %d]", batch, rc.cfg.MaxBatch)
	}
	if len(perTableRows) != mc.Tables {
		return fmt.Errorf("remote: %d index lists for %d tables", len(perTableRows), mc.Tables)
	}
	lookups := batch * mc.Reduction
	for t, rows := range perTableRows {
		if len(rows) != lookups {
			return fmt.Errorf("remote: table %d: %d rows for batch %d x reduction %d",
				t, len(rows), batch, mc.Reduction)
		}
		for _, r := range rows {
			if r < 0 || r >= mc.TableRows {
				return fmt.Errorf("remote: table %d: row index %d out of range [0, %d)", t, r, mc.TableRows)
			}
		}
	}
	return nil
}

// enter registers one in-flight operation, failing once closed.
func (rc *RemoteCluster) enter() error {
	rc.runMu.Lock()
	defer rc.runMu.Unlock()
	if rc.closed.Load() {
		return fmt.Errorf("remote: router is closed")
	}
	rc.inflight.Add(1)
	return nil
}

// Geometry reports the full model's shape and limits, mirroring
// cluster.Cluster.Geometry — which makes a RemoteCluster a valid
// netserve.Backend.
func (rc *RemoteCluster) Geometry() (tables, reduction, dim, tableRows, maxBatch int) {
	mc := rc.cfg.Model
	return mc.Tables, mc.Reduction, mc.EmbDim, mc.TableRows, rc.cfg.MaxBatch
}

// WaitReady blocks until every non-empty shard has at least one healthy
// replica, or the timeout elapses.
func (rc *RemoteCluster) WaitReady(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		ready := true
		for _, sh := range rc.shards {
			if len(sh.replicas) == 0 {
				continue
			}
			ok := false
			for _, rep := range sh.replicas {
				if rep.state.Load() == repHealthy {
					ok = true
					break
				}
			}
			if !ok {
				ready = false
				break
			}
		}
		if ready {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("remote: fleet not ready within %v", timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Close stops accepting operations, drains the in-flight ones, stops the
// janitor and dispatch workers, and closes every replica client. It is
// idempotent.
func (rc *RemoteCluster) Close() error {
	rc.runMu.Lock()
	already := rc.closed.Swap(true)
	rc.runMu.Unlock()
	if already {
		return nil
	}
	rc.markReady()
	close(rc.closeCh)
	rc.inflight.Wait()
	rc.janitorWG.Wait()
	for _, sh := range rc.shards {
		for _, rep := range sh.replicas {
			if rep.cl != nil {
				rep.cl.Close()
			}
		}
		if sh.store != nil {
			sh.store.Close()
		}
	}
	if rc.dispatch != nil {
		close(rc.dispatch)
	}
	return nil
}
