package experiments

import (
	"strconv"
	"strings"
	"testing"

	"tensordimm/internal/core"
)

func platform() core.Platform { return core.DefaultPlatform() }

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

func TestTab1MatchesPaper(t *testing.T) {
	r := Tab1()
	s := r.Table.String()
	for _, want := range []string{"DDR4 (PC4-25600)", "32", "25.6 GB/sec", "819.2 GB/sec"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, s)
		}
	}
}

func TestTab2MatchesPaper(t *testing.T) {
	r := Tab2()
	if len(r.Table.Rows) != 4 {
		t.Fatalf("Table 2 has %d rows", len(r.Table.Rows))
	}
	want := map[string][]string{
		"NCF":      {"4", "2", "4"},
		"YouTube":  {"2", "50", "4"},
		"Fox":      {"2", "50", "1"},
		"Facebook": {"8", "25", "6"},
	}
	for _, row := range r.Table.Rows {
		w, ok := want[row[0]]
		if !ok {
			t.Fatalf("unexpected network %q", row[0])
		}
		for i, v := range w {
			if row[i+1] != v {
				t.Errorf("%s column %d = %s, want %s", row[0], i+1, row[i+1], v)
			}
		}
	}
}

func TestFig3EmbeddingDominates(t *testing.T) {
	r := Fig3()
	// Walking down the first data column (embedding dim grows) must grow
	// the model far faster than walking across the first row (MLP grows).
	first := parseFloat(t, r.Table.Rows[0][1])
	downEmb := parseFloat(t, r.Table.Rows[len(r.Table.Rows)-1][1])
	acrossMLP := parseFloat(t, r.Table.Rows[0][len(r.Table.Rows[0])-1])
	if downEmb/first < 10*(acrossMLP/first) {
		t.Fatalf("embedding growth %.0fx vs MLP growth %.0fx: embedding must dominate",
			downEmb/first, acrossMLP/first)
	}
	// Largest configuration reaches TB scale (paper: up to 8192 GB).
	largest := parseFloat(t, r.Table.Rows[len(r.Table.Rows)-1][1])
	if largest < 500 {
		t.Fatalf("largest embedding config = %.0f GB, want hundreds of GBs", largest)
	}
}

func TestFig4ShowsSlowdowns(t *testing.T) {
	r := Fig4(platform())
	last := r.Table.Rows[len(r.Table.Rows)-1]
	if last[0] != "average" {
		t.Fatal("missing average row")
	}
	cpu := parseFloat(t, last[2])
	hy := parseFloat(t, last[3])
	if cpu > 0.3 || hy > 0.3 {
		t.Fatalf("baselines too fast: CPU-only %.2f, CPU-GPU %.2f of oracle", cpu, hy)
	}
	if len(r.Table.Rows) != 4*4+1 {
		t.Fatalf("Figure 4 rows = %d, want 4 networks x 4 batches + average", len(r.Table.Rows))
	}
}

func TestFig11BandwidthShape(t *testing.T) {
	if testing.Short() {
		// Reduced scale: one small batch, structure checks only (the
		// bandwidth bounds below need the full quick sweep).
		r := Fig11(ScaleSmoke)
		if len(r.Table.Rows) != 1 || len(r.Table.Rows[0]) != 7 {
			t.Fatalf("smoke Fig11 shape: %d rows x %d cols", len(r.Table.Rows), len(r.Table.Rows[0]))
		}
		if parseFloat(t, r.Table.Rows[0][5]) <= parseFloat(t, r.Table.Rows[0][2]) {
			t.Fatal("TensorNode REDUCE must beat CPU REDUCE even at smoke scale")
		}
		return
	}
	r := Fig11(ScaleQuick)
	if len(r.Table.Rows) != 4 {
		t.Fatalf("quick Fig11 rows = %d", len(r.Table.Rows))
	}
	// At the largest batch the TensorNode streaming ops must exceed the
	// CPU's by ~4x and beat 500 GB/s; the CPU must stay under its 204.8
	// GB/s channel ceiling.
	last := r.Table.Rows[len(r.Table.Rows)-1]
	cpuReduce := parseFloat(t, last[2])
	nodeReduce := parseFloat(t, last[5])
	if cpuReduce > 204.8 {
		t.Fatalf("CPU REDUCE %.0f GB/s exceeds the channel ceiling", cpuReduce)
	}
	if nodeReduce < 500 {
		t.Fatalf("TensorNode REDUCE %.0f GB/s, want > 500", nodeReduce)
	}
	if nodeReduce/cpuReduce < 3 {
		t.Fatalf("REDUCE ratio %.1fx, want ~4x", nodeReduce/cpuReduce)
	}
}

func TestFig12Scaling(t *testing.T) {
	if testing.Short() {
		// Reduced scale: a single DIMM count, structure checks only.
		r := Fig12(ScaleSmoke)
		if len(r.Table.Rows) != 3 { // one row per op
			t.Fatalf("smoke Fig12 rows = %d, want 3", len(r.Table.Rows))
		}
		return
	}
	r := Fig12(ScaleQuick)
	// Find REDUCE rows: TensorNode bandwidth must grow with DIMM count
	// while CPU stays flat.
	var cpu32, cpu128, node32, node128 float64
	for _, row := range r.Table.Rows {
		if row[0] != "REDUCE" {
			continue
		}
		switch row[1] {
		case "32":
			cpu32, node32 = parseFloat(t, row[3]), parseFloat(t, row[4])
		case "128":
			cpu128, node128 = parseFloat(t, row[3]), parseFloat(t, row[4])
		}
	}
	if node128 < 2.5*node32 {
		t.Fatalf("TensorNode REDUCE: 128 DIMMs %.0f vs 32 DIMMs %.0f GB/s, want ~4x scaling", node128, node32)
	}
	if cpu128 > cpu32*1.3 {
		t.Fatalf("CPU REDUCE grew with DIMMs: %.0f -> %.0f GB/s", cpu32, cpu128)
	}
	if node128 < 2000 {
		t.Fatalf("TensorNode at 128 DIMMs = %.0f GB/s, want TB/s scale (paper 3.1 TB/s)", node128)
	}
}

func TestFig13BreakdownStructure(t *testing.T) {
	r := Fig13(platform())
	if len(r.Table.Rows) != 4*5 {
		t.Fatalf("Fig13 rows = %d, want 4 networks x 5 designs", len(r.Table.Rows))
	}
	// Every network's slowest design must have normalized total 1.0.
	seen := map[string]bool{}
	for _, row := range r.Table.Rows {
		if parseFloat(t, row[7]) > 0.999 {
			seen[row[0]] = true
		}
	}
	if len(seen) != 4 {
		t.Fatalf("normalization anchors missing: %v", seen)
	}
}

func TestFig14TDIMMGeomean(t *testing.T) {
	r := Fig14(platform())
	last := r.Table.Rows[len(r.Table.Rows)-1]
	td := parseFloat(t, last[5])
	if td < 0.75 || td > 0.95 {
		t.Fatalf("TDIMM geomean = %.2f, want ~0.84", td)
	}
	if g := parseFloat(t, last[6]); g != 1 {
		t.Fatalf("GPU-only geomean = %v, must be 1", g)
	}
}

func TestFig15SpeedupsGrowWithEmbeddings(t *testing.T) {
	r := Fig15(platform())
	// Rows ordered by (scale, batch); compare batch-64 rows across scales.
	var s1, s8 float64
	for _, row := range r.Table.Rows {
		if row[1] != "64" {
			continue
		}
		switch row[0] {
		case "1x":
			s1 = parseFloat(t, row[2])
		case "8x":
			s8 = parseFloat(t, row[2])
		}
	}
	if s8 <= s1 {
		t.Fatalf("speedup must grow with embedding scale: 1x=%.1f, 8x=%.1f", s1, s8)
	}
	if s1 < 4 || s8 > 40 {
		t.Fatalf("speedups out of band: 1x=%.1f, 8x=%.1f (paper 6.2-15.0, max 35)", s1, s8)
	}
}

func TestFig16Robustness(t *testing.T) {
	r := Fig16(platform())
	for _, row := range r.Table.Rows {
		at25 := parseFloat(t, row[2])
		at150 := parseFloat(t, row[4])
		if at150 < 0.999 {
			t.Fatalf("%s %s: 150 GB/s must normalize to 1, got %v", row[0], row[1], at150)
		}
		if row[0] == "TDIMM" && at25 < 0.7 {
			t.Errorf("TDIMM %s retains %.2f at 25 GB/s, want >= 0.7 (paper >= 0.85 avg)", row[1], at25)
		}
		if row[0] == "PMEM" && row[1] == "8x" && at25 > 0.6 {
			t.Errorf("PMEM 8x retains %.2f at 25 GB/s, want heavy loss", at25)
		}
	}
}

func TestTab3Rows(t *testing.T) {
	r := Tab3()
	if len(r.Table.Rows) != 4 {
		t.Fatalf("Table 3 rows = %d, want 3 components + total", len(r.Table.Rows))
	}
	for _, row := range r.Table.Rows {
		for _, c := range row[1:] {
			if parseFloat(t, c) > 1.0 {
				t.Errorf("%s utilization %s%% exceeds 1%% of the device", row[0], c)
			}
		}
	}
}

func TestPowerBudgetRow(t *testing.T) {
	r := PowerBudget()
	var node float64
	for _, row := range r.Table.Rows {
		if strings.HasPrefix(row[0], "TensorNode") {
			node = parseFloat(t, row[1])
		}
	}
	if node < 300 || node > 700 {
		t.Fatalf("TensorNode power = %.0f W, want within the OCP 350-700 W envelope (paper 416)", node)
	}
}

func TestByIDAndIDs(t *testing.T) {
	p := platform()
	for _, id := range IDs() {
		if id == "fig11" || id == "fig12" || id == "extscatter" {
			continue // covered elsewhere; skip heavy reruns
		}
		r, err := ByID(id, p, ScaleQuick)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if r.ID != id || len(r.Table.Rows) == 0 {
			t.Fatalf("%s: empty result", id)
		}
	}
	if _, err := ByID("nope", p, ScaleQuick); err == nil {
		t.Fatal("want error for unknown experiment")
	}
}

func TestExtScatterBandwidth(t *testing.T) {
	if testing.Short() {
		// Reduced scale: smallest update count, NMP-win check only.
		r := ExtScatter(ScaleSmoke)
		if len(r.Table.Rows) != 1 {
			t.Fatalf("smoke extscatter rows = %d", len(r.Table.Rows))
		}
		if parseFloat(t, r.Table.Rows[0][3]) <= 1 {
			t.Fatal("TensorNode scatter-add must beat CPU even at smoke scale")
		}
		return
	}
	r := ExtScatter(ScaleQuick)
	if len(r.Table.Rows) != 3 {
		t.Fatalf("extscatter rows = %d", len(r.Table.Rows))
	}
	last := r.Table.Rows[len(r.Table.Rows)-1]
	ratio := parseFloat(t, last[3])
	if ratio < 1.5 {
		t.Fatalf("TensorNode/CPU scatter-add ratio = %.2f, want a clear NMP win", ratio)
	}
}

func TestExtOnlineSweep(t *testing.T) {
	scale := ScaleQuick
	wantRows := 4
	if testing.Short() {
		scale = ScaleSmoke
		wantRows = 2
	}
	r := ExtOnline(scale)
	if len(r.Table.Rows) != wantRows {
		t.Fatalf("extonline rows = %d, want %d", len(r.Table.Rows), wantRows)
	}
	// Row 0 is the read-only baseline: Zipf skew must yield cache hits and
	// zero invalidations / updated rows.
	base := r.Table.Rows[0]
	if parseFloat(t, base[2]) <= 0 {
		t.Fatalf("read-only hit rate = %s, want > 0 under Zipf skew", base[2])
	}
	if base[3] != "0" || base[4] != "0" {
		t.Fatalf("read-only row reports update activity: %v", base)
	}
	// The largest update fraction must show real write traffic: updated
	// rows and cache invalidations both non-zero.
	last := r.Table.Rows[len(r.Table.Rows)-1]
	if last[4] == "0" {
		t.Fatalf("update sweep scattered no rows: %v", last)
	}
	if last[3] == "0" {
		t.Fatalf("update sweep invalidated no cache entries: %v", last)
	}
}
