// Package experiments contains one driver per table and figure of the
// paper's evaluation (Sections 3 and 6). Every driver returns the same
// rows/series the paper plots, as a stats.Table, so the benchmark harness,
// the CLI tools and EXPERIMENTS.md all report identical data.
//
// Drivers that replay DRAM traces (Figures 11 and 12) accept a Scale knob:
// ScaleSmoke runs a minimal sweep (seconds, for -short test runs),
// ScaleQuick trims the sweep for CI-sized runs, ScaleFull reproduces the
// paper's full parameter grid.
package experiments

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"tensordimm/internal/addrmap"
	"tensordimm/internal/cluster"
	"tensordimm/internal/core"
	"tensordimm/internal/dram"
	"tensordimm/internal/isa"
	"tensordimm/internal/power"
	"tensordimm/internal/recsys"
	"tensordimm/internal/runtime"
	"tensordimm/internal/stats"
	"tensordimm/internal/tensor"
	"tensordimm/internal/trace"
	"tensordimm/internal/workload"
)

// Scale selects sweep size for simulation-heavy experiments.
type Scale int

// Sweep scales. ScaleQuick is the default; ScaleSmoke exists for -short
// test runs and still exercises every code path of the DRAM-replay drivers
// at a fraction of the sweep.
const (
	ScaleQuick Scale = iota
	ScaleFull
	ScaleSmoke
)

// Result is one reproduced artifact.
type Result struct {
	ID    string // "fig11", "tab3", ...
	Title string
	Table stats.Table
	Notes []string
}

// Tab1 reproduces Table 1: the baseline TensorNode configuration.
func Tab1() Result {
	p := core.DefaultPlatform()
	t := stats.Table{
		Title:   "Table 1: baseline TensorNode configuration",
		Columns: []string{"parameter", "value"},
	}
	t.AddRow("DRAM specification", "DDR4 (PC4-25600)")
	t.AddRow("Number of TensorDIMMs", fmt.Sprintf("%d", p.NodeDIMMs))
	t.AddRow("Memory bandwidth per TensorDIMM", fmt.Sprintf("%.1f GB/sec", p.DIMMBandwidthGBs))
	t.AddRow("Memory bandwidth across TensorNode", fmt.Sprintf("%.1f GB/sec", p.NodePeakGBs()))
	return Result{ID: "tab1", Title: "Baseline TensorNode configuration", Table: t}
}

// Tab2 reproduces Table 2: the evaluated benchmarks.
func Tab2() Result {
	t := stats.Table{
		Title:   "Table 2: evaluated benchmarks and default configuration",
		Columns: []string{"network", "lookup tables", "max reduction", "FC/MLP layers"},
	}
	for _, cfg := range recsys.All() {
		t.AddRow(cfg.Name, cfg.Tables, cfg.Reduction, cfg.FCLayers)
	}
	return Result{ID: "tab2", Title: "Evaluated benchmarks", Table: t}
}

// Fig3 reproduces Figure 3: NCF model size growth as the MLP dimension
// (x-axis) and embedding dimension (y-axis) scale, with 5M users and 5M
// items per lookup table.
func Fig3() Result {
	mlpDims := []int{64, 256, 1024, 4096, 8192}
	embDims := []int{64, 512, 2048, 8192, 32768}
	cols := []string{"emb dim \\ mlp dim"}
	for _, m := range mlpDims {
		cols = append(cols, fmt.Sprintf("%d", m))
	}
	t := stats.Table{
		Title:   "Figure 3: NCF model size (GB), 5M users + 5M items per table",
		Columns: cols,
	}
	const users, items = 5_000_000, 5_000_000
	for _, e := range embDims {
		row := []any{fmt.Sprintf("%d", e)}
		for _, m := range mlpDims {
			gb := float64(recsys.NCFModelSizeBytes(m, e, users, items)) / (1 << 30)
			row = append(row, fmt.Sprintf("%.0f", gb))
		}
		t.AddRow(row...)
	}
	return Result{
		ID: "fig3", Title: "NCF model size growth", Table: t,
		Notes: []string{"Embedding dimension dominates model growth; MLP dimension barely moves it."},
	}
}

// Fig4 reproduces Figure 4: CPU-only and CPU-GPU performance normalized to
// the GPU-only oracle across batch sizes 1..128.
func Fig4(p core.Platform) Result {
	t := stats.Table{
		Title:   "Figure 4: baseline performance normalized to oracular GPU-only",
		Columns: []string{"network", "batch", "CPU-only", "CPU-GPU"},
	}
	var cpuAll, hybridAll []float64
	for _, cfg := range recsys.All() {
		for _, b := range []int{1, 8, 64, 128} {
			cpu := core.NormalizedPerf(core.CPUOnly, cfg, b, p)
			hy := core.NormalizedPerf(core.CPUGPU, cfg, b, p)
			cpuAll = append(cpuAll, cpu)
			hybridAll = append(hybridAll, hy)
			t.AddRow(cfg.Name, b, cpu, hy)
		}
	}
	t.AddRow("average", "-", stats.Geomean(cpuAll), stats.Geomean(hybridAll))
	return Result{
		ID: "fig4", Title: "Baseline CPU-only / CPU-GPU vs oracle", Table: t,
		Notes: []string{fmt.Sprintf("Geomean slowdowns: CPU-only %.1fx, CPU-GPU %.1fx (paper: 7.3-20.9x).",
			1/stats.Geomean(cpuAll), 1/stats.Geomean(hybridAll))},
	}
}

// fig11Batches returns the batch sweep for the DRAM experiments.
func fig11Batches(s Scale) []int {
	switch s {
	case ScaleFull:
		var out []int
		for b := 2; b <= 128; b += 6 {
			out = append(out, b)
		}
		return out
	case ScaleSmoke:
		return []int{8}
	default:
		return []int{2, 32, 64, 128}
	}
}

// dramSystems builds the two memory systems of Figure 11: the 8-channel x
// 4-rank CPU organization and the N-DIMM TensorNode, both with 32 DIMMs by
// default.
func dramSystems(nodeDIMMs int) (cpu, node *dram.System) {
	cpu = dram.NewSystem(addrmap.CPUBaseline(8, 4, 1<<16), dram.DDR43200())
	node = dram.NewSystem(addrmap.TensorDIMM(nodeDIMMs, 1<<16), dram.DDR43200())
	return cpu, node
}

// runOp replays one tensor-op trace and returns achieved GB/s.
func runOp(sys *dram.System, op string, g *trace.Generator, l trace.Layout, indices []int, batch, reduction int) float64 {
	var reqs []dram.Request
	switch op {
	case "GATHER":
		reqs = g.Gather(l, indices)
	case "REDUCE":
		reqs = g.Reduce(l, batch*reduction)
	case "AVERAGE":
		reqs = g.Average(l, batch, reduction)
	}
	res := sys.Run(reqs)
	return res.BandwidthGBs(sys.Timing)
}

// Fig11 reproduces Figure 11: effective memory bandwidth of the three
// TensorISA operations on the CPU memory system vs the TensorNode, swept
// over batch size (dim 512 embeddings, 50-way reduction — the
// YouTube/Fox-class configuration).
func Fig11(s Scale) Result {
	const embBytes, reduction = 2048, 50
	g, err := trace.NewGenerator(embBytes, 200_000)
	if err != nil {
		panic(err) // static configuration, cannot fail
	}
	cpu, node := dramSystems(32)
	t := stats.Table{
		Title: "Figure 11: memory bandwidth utilization (GB/s), CPU (8ch x 4rk) vs TensorNode (32 TensorDIMMs)",
		Columns: []string{"batch",
			"GATHER(CPU)", "REDUCE(CPU)", "AVERAGE(CPU)",
			"GATHER(TDIMM)", "REDUCE(TDIMM)", "AVERAGE(TDIMM)"},
	}
	rng := rand.New(rand.NewSource(11))
	var cpuPeakSeen, nodePeakSeen float64
	var cpuAll, nodeAll []float64
	for _, batch := range fig11Batches(s) {
		n := batch * reduction
		indices := make([]int, n)
		for i := range indices {
			indices[i] = rng.Intn(g.TableRows)
		}
		row := []any{batch}
		for _, sys := range []*dram.System{cpu, node} {
			l := g.LayoutFor(sys.Scheme.Geom, 1, n)
			for _, op := range []string{"GATHER", "REDUCE", "AVERAGE"} {
				bw := runOp(sys, op, g, l, indices, batch, reduction)
				row = append(row, bw)
				if sys == cpu {
					cpuAll = append(cpuAll, bw)
					if bw > cpuPeakSeen {
						cpuPeakSeen = bw
					}
				} else {
					nodeAll = append(nodeAll, bw)
					if bw > nodePeakSeen {
						nodePeakSeen = bw
					}
				}
			}
		}
		// Reorder: CPU triplet then TDIMM triplet already in place.
		t.AddRow(row...)
	}
	return Result{
		ID: "fig11", Title: "Tensor-op memory bandwidth, CPU vs TensorNode", Table: t,
		Notes: []string{
			fmt.Sprintf("Max bandwidth: TensorNode %.0f GB/s vs CPU %.0f GB/s (paper: 808 vs 192).", nodePeakSeen, cpuPeakSeen),
			fmt.Sprintf("Mean ratio TensorNode/CPU: %.1fx (paper: ~4x).", stats.Mean(nodeAll)/stats.Mean(cpuAll)),
		},
	}
}

// Fig12 reproduces Figure 12: memory throughput as DIMM count grows
// ({32,64,128}) with embeddings scaled 2-4x. The CPU system is pinned at 8
// channels no matter how many DIMMs it holds; the TensorNode's aggregate
// bandwidth scales with its TensorDIMM count.
func Fig12(s Scale) Result {
	t := stats.Table{
		Title:   "Figure 12: memory throughput vs DIMM count (GB/s), embeddings scaled up",
		Columns: []string{"op", "DIMMs", "emb scale", "CPU", "TensorNode"},
	}
	dimmCounts := []int{32, 64, 128}
	scales := []int{2, 4}
	batches := 32
	switch s {
	case ScaleFull:
		batches = 64
	case ScaleSmoke:
		dimmCounts = []int{32}
		batches = 8
	}
	const reduction = 50
	rng := rand.New(rand.NewSource(12))
	var maxNode float64
	for _, op := range []string{"GATHER", "REDUCE", "AVERAGE"} {
		for i, dimms := range dimmCounts {
			embScale := scales[0]
			if i == len(dimmCounts)-1 {
				embScale = scales[1]
			}
			embBytes := 2048 * embScale
			g, err := trace.NewGenerator(embBytes, 100_000)
			if err != nil {
				panic(err)
			}
			// CPU: 8 channels regardless; ranks grow with DIMM count.
			cpu := dram.NewSystem(addrmap.CPUBaseline(8, dimms/8, 1<<16), dram.DDR43200())
			node := dram.NewSystem(addrmap.TensorDIMM(dimms, 1<<16), dram.DDR43200())
			n := batches * reduction
			indices := make([]int, n)
			for j := range indices {
				indices[j] = rng.Intn(g.TableRows)
			}
			cbw := runOp(cpu, op, g, g.LayoutFor(cpu.Scheme.Geom, 1, n), indices, batches, reduction)
			nbw := runOp(node, op, g, g.LayoutFor(node.Scheme.Geom, 1, n), indices, batches, reduction)
			if nbw > maxNode {
				maxNode = nbw
			}
			t.AddRow(op, dimms, fmt.Sprintf("%dx", embScale), cbw, nbw)
		}
	}
	return Result{
		ID: "fig12", Title: "Bandwidth scaling with DIMM count", Table: t,
		Notes: []string{
			"CPU throughput saturates near 200 GB/s regardless of DIMM count; TensorNode scales with TensorDIMMs.",
			fmt.Sprintf("Max TensorNode throughput at 128 DIMMs: %.1f TB/s (paper: up to 3.1 TB/s).", maxNode/1000),
		},
	}
}

// Fig13 reproduces Figure 13: the latency breakdown of one batch-64
// inference across the five design points, normalized per network to its
// slowest design.
func Fig13(p core.Platform) Result {
	t := stats.Table{
		Title:   "Figure 13: latency breakdown at batch 64 (fractions of the slowest design per network)",
		Columns: []string{"network", "design", "lookup", "memcpy", "DNN", "else", "total(us)", "normalized"},
	}
	for _, cfg := range recsys.All() {
		var slowest float64
		breakdowns := core.SimulateAll(cfg, recsys.DefaultBatch, p)
		for _, b := range breakdowns {
			if b.TotalS() > slowest {
				slowest = b.TotalS()
			}
		}
		for _, b := range breakdowns {
			t.AddRow(cfg.Name, b.Design.String(),
				b.LookupS/slowest, b.TransferS/slowest, b.DNNS/slowest, b.OtherS/slowest,
				b.TotalS()*1e6, b.TotalS()/slowest)
		}
	}
	return Result{ID: "fig13", Title: "Latency breakdown per design point", Table: t}
}

// Fig14 reproduces Figure 14: performance of the five design points
// normalized to GPU-only, across batches {8, 64, 128}, plus the geomean.
func Fig14(p core.Platform) Result {
	t := stats.Table{
		Title:   "Figure 14: performance normalized to the GPU-only oracle",
		Columns: []string{"network", "batch", "CPU-only", "CPU-GPU", "PMEM", "TDIMM", "GPU-only"},
	}
	per := map[core.DesignPoint][]float64{}
	for _, cfg := range recsys.All() {
		for _, b := range []int{8, 64, 128} {
			row := []any{cfg.Name, b}
			for _, dp := range core.DesignPoints() {
				norm := core.NormalizedPerf(dp, cfg, b, p)
				per[dp] = append(per[dp], norm)
				row = append(row, norm)
			}
			t.AddRow(row...)
		}
	}
	row := []any{"geomean", "-"}
	for _, dp := range core.DesignPoints() {
		row = append(row, stats.Geomean(per[dp]))
	}
	t.AddRow(row...)
	return Result{
		ID: "fig14", Title: "Normalized performance of the five designs", Table: t,
		Notes: []string{fmt.Sprintf("TDIMM geomean: %.2f of oracle (paper: 0.84 average, >= 0.75 minimum).",
			stats.Geomean(per[core.TDIMM]))},
	}
}

// Fig15 reproduces Figure 15: TDIMM speedup over CPU-only and CPU-GPU as the
// embedding dimension scales 1-8x, averaged over the four networks.
func Fig15(p core.Platform) Result {
	t := stats.Table{
		Title:   "Figure 15: TDIMM speedup with larger embeddings (geomean over networks)",
		Columns: []string{"emb scale", "batch", "vs CPU-only", "vs CPU-GPU"},
	}
	for _, scale := range []int{1, 2, 4, 8} {
		for _, b := range []int{8, 64, 128} {
			var sc, sh []float64
			for _, cfg := range recsys.All() {
				c := cfg.WithEmbDim(cfg.EmbDim * scale)
				sc = append(sc, core.Speedup(core.TDIMM, core.CPUOnly, c, b, p))
				sh = append(sh, core.Speedup(core.TDIMM, core.CPUGPU, c, b, p))
			}
			t.AddRow(fmt.Sprintf("%dx", scale), b, stats.Geomean(sc), stats.Geomean(sh))
		}
	}
	return Result{
		ID: "fig15", Title: "TDIMM speedup with larger embeddings", Table: t,
		Notes: []string{"Paper: 6.2-15.0x over CPU-only and 8.9-17.6x over CPU-GPU (max 35x)."},
	}
}

// Fig16 reproduces Figure 16: PMEM and TDIMM performance as the node-GPU
// link bandwidth drops from 150 to 25 GB/s, for embeddings scaled 1-8x,
// normalized to the 150 GB/s configuration.
func Fig16(p core.Platform) Result {
	t := stats.Table{
		Title:   "Figure 16: sensitivity to node-GPU link bandwidth (normalized to 150 GB/s)",
		Columns: []string{"design", "emb scale", "25 GB/s", "50 GB/s", "150 GB/s"},
	}
	for _, dp := range []core.DesignPoint{core.PMEM, core.TDIMM} {
		for _, scale := range []int{1, 2, 4, 8} {
			row := []any{dp.String(), fmt.Sprintf("%dx", scale)}
			var base []float64
			for _, cfg := range recsys.All() {
				c := cfg.WithEmbDim(cfg.EmbDim * scale)
				base = append(base, core.Simulate(dp, c, recsys.DefaultBatch, p.WithNodeLinkGBs(150)).TotalS())
			}
			for _, gbs := range []float64{25, 50, 150} {
				var rel []float64
				for i, cfg := range recsys.All() {
					c := cfg.WithEmbDim(cfg.EmbDim * scale)
					tt := core.Simulate(dp, c, recsys.DefaultBatch, p.WithNodeLinkGBs(gbs)).TotalS()
					rel = append(rel, base[i]/tt)
				}
				row = append(row, stats.Geomean(rel))
			}
			t.AddRow(row...)
		}
	}
	return Result{
		ID: "fig16", Title: "Link-bandwidth sensitivity, PMEM vs TDIMM", Table: t,
		Notes: []string{"Paper: PMEM loses up to 68% at 25 GB/s; TDIMM at most ~15% (average 10%)."},
	}
}

// Tab3 reproduces Table 3: FPGA utilization of one NMP core on the VCU1525.
func Tab3() Result {
	t := stats.Table{
		Title:   "Table 3: NMP core FPGA utilization on Xilinx VCU1525 (XCVU9P)",
		Columns: []string{"component", "LUT [%]", "FF [%]", "DSP [%]", "BRAM [%]"},
	}
	rows := power.NMPCoreBreakdown()
	for _, name := range []string{"SRAM queues", "FPU", "ALU"} {
		u := rows[name]
		t.AddRow(name,
			fmt.Sprintf("%.2f", u.LUTPct), fmt.Sprintf("%.2f", u.FFPct),
			fmt.Sprintf("%.2f", u.DSPPct), fmt.Sprintf("%.2f", u.BRAMPct))
	}
	total := power.NMPCoreTotal()
	t.AddRow("total",
		fmt.Sprintf("%.2f", total.LUTPct), fmt.Sprintf("%.2f", total.FFPct),
		fmt.Sprintf("%.2f", total.DSPPct), fmt.Sprintf("%.2f", total.BRAMPct))
	return Result{
		ID: "tab3", Title: "NMP core FPGA utilization", Table: t,
		Notes: []string{"Paper: SRAM queues 0.01% BRAM; FPU 0.19% LUT / 0.20% DSP; ALU 0.09% LUT / 0.01% DSP."},
	}
}

// PowerBudget reproduces the Section 6.5 power analysis: per-DIMM and
// whole-TensorNode power from the Micron-calculator-style model.
func PowerBudget() Result {
	t := stats.Table{
		Title:   "Section 6.5: TensorNode power budget",
		Columns: []string{"component", "watts"},
	}
	perDIMM := power.LRDIMM128GB().DIMMWatts(0.45, 0.25)
	t.AddRow("128 GB LR-DIMM (active)", perDIMM)
	t.AddRow("NMP core", power.NMPCoreWatts())
	t.AddRow("TensorNode (32 TensorDIMMs)", power.TensorNodeWatts(32, 0.45, 0.25))
	return Result{
		ID: "power", Title: "TensorNode power budget", Table: t,
		Notes: []string{"Paper: 13 W per 128 GB LR-DIMM, 416 W per 32-DIMM TensorNode (350-700 W OCP envelope)."},
	}
}

// ExtScatter is this reproduction's extension experiment: the effective
// DRAM bandwidth of near-memory SCATTER_ADD gradient updates (the training
// direction the paper leaves to future work), CPU organization vs
// TensorNode, mirroring the Figure 11 methodology.
func ExtScatter(s Scale) Result {
	const embBytes = 2048
	g, err := trace.NewGenerator(embBytes, 200_000)
	if err != nil {
		panic(err)
	}
	cpu, node := dramSystems(32)
	t := stats.Table{
		Title:   "Extension: SCATTER_ADD update bandwidth (GB/s), CPU vs TensorNode",
		Columns: []string{"updates", "CPU", "TensorNode", "ratio"},
	}
	rng := rand.New(rand.NewSource(13))
	sizes := []int{256, 1024, 4096}
	switch s {
	case ScaleFull:
		sizes = []int{256, 1024, 4096, 16384}
	case ScaleSmoke:
		sizes = []int{256}
	}
	var lastRatio float64
	for _, n := range sizes {
		indices := make([]int, n)
		for i := range indices {
			indices[i] = rng.Intn(g.TableRows)
		}
		cl := g.LayoutFor(cpu.Scheme.Geom, 1, n)
		nl := g.LayoutFor(node.Scheme.Geom, 1, n)
		cres := cpu.Run(g.ScatterAdd(cl, indices))
		nres := node.Run(g.ScatterAdd(nl, indices))
		cbw := cres.BandwidthGBs(cpu.Timing)
		nbw := nres.BandwidthGBs(node.Timing)
		lastRatio = nbw / cbw
		t.AddRow(n, cbw, nbw, lastRatio)
	}
	return Result{
		ID: "extscatter", Title: "SCATTER_ADD update bandwidth (extension)", Table: t,
		Notes: []string{
			"Extension beyond the paper: near-memory gradient accumulation for embedding training.",
			fmt.Sprintf("TensorNode sustains %.1fx the CPU organization's update bandwidth at the largest size.", lastRatio),
		},
	}
}

// ExtOnline is the online-update extension experiment: a sharded cluster
// with hot-row caches serves Zipf-skewed traffic while an increasing
// fraction of requests are SCATTER_ADD update batches. The sweep reports
// sustained request throughput, the hot-row cache hit rate that survives
// the updates' invalidations (the RecNMP locality question under writes),
// and the invalidation count — TRiM-style update bandwidth treated as a
// first-class serving metric.
func ExtOnline(s Scale) Result {
	mc := recsys.Config{
		Name: "extonline", Tables: 2, Reduction: 2, FCLayers: 1,
		EmbDim: 64, TableRows: 2000, Hidden: []int{8},
		Op: isa.RAdd,
	}
	fracs := []float64{0, 0.1, 0.25, 0.5}
	reqs := 400
	switch s {
	case ScaleFull:
		fracs = []float64{0, 0.1, 0.25, 0.5, 0.75}
		reqs = 2000
	case ScaleSmoke:
		fracs = []float64{0, 0.5}
		reqs = 80
	}
	const batch = 4
	t := stats.Table{
		Title:   "Extension: online updates — update fraction vs throughput and cache hit rate",
		Columns: []string{"update frac", "req/s", "hit rate [%]", "invalidations", "updated rows"},
	}
	for _, frac := range fracs {
		cl, err := cluster.New(mustBuild(mc, 42), cluster.Config{
			Nodes: 2, DIMMsPerNode: 4, MaxBatch: 16, CacheBytes: 64 << 10,
		})
		if err != nil {
			panic(err)
		}
		gen, err := workload.NewZipfGenerator(mc.TableRows, 0.9, 7)
		if err != nil {
			panic(err)
		}
		// Warm the hot-row caches with read-only traffic first (a serving
		// deployment measures against warm caches, not cold ones): the
		// sweep's hit rates then reflect steady state, and the update rows
		// deterministically intersect resident rows, so the invalidation
		// column measures coherence work rather than cold-cache luck.
		warmGen, err := workload.NewZipfGenerator(mc.TableRows, 0.9, 13)
		if err != nil {
			panic(err)
		}
		for i := 0; i < 100; i++ {
			if _, err := cl.Embed(warmGen.Batch(mc.Tables, batch, mc.Reduction), batch); err != nil {
				panic(err)
			}
		}
		rng := rand.New(rand.NewSource(11))
		start := time.Now()
		// Submit in small concurrent bursts so the shard micro-batchers
		// coalesce, as a serving front-end would.
		var wg sync.WaitGroup
		for i := 0; i < reqs; i++ {
			update := rng.Float64() < frac
			var rows [][]int
			var ups []runtime.TableUpdate
			if update {
				target := rng.Intn(mc.Tables)
				urows := gen.Indices(batch)
				g := tensor.New(len(urows), mc.EmbDim)
				for k := range g.Data() {
					g.Data()[k] = rng.Float32() - 0.5
				}
				ups = []runtime.TableUpdate{{Table: target, Rows: urows, Grads: g}}
			} else {
				rows = gen.Batch(mc.Tables, batch, mc.Reduction)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if update {
					if err := cl.ApplyUpdates(ups); err != nil {
						panic(err)
					}
					return
				}
				if _, err := cl.Embed(rows, batch); err != nil {
					panic(err)
				}
			}()
			if (i+1)%8 == 0 {
				wg.Wait()
			}
		}
		wg.Wait()
		elapsed := time.Since(start).Seconds()
		m := cl.Metrics()
		cl.Close()
		t.AddRow(fmt.Sprintf("%.2f", frac),
			fmt.Sprintf("%.0f", float64(reqs)/elapsed),
			fmt.Sprintf("%.1f", 100*m.HitRate),
			m.Invalidations, m.RowsUpdated)
	}
	return Result{
		ID: "extonline", Title: "Online-update throughput and cache coherence (extension)", Table: t,
		Notes: []string{
			"Extension beyond the paper: cluster-wide SCATTER_ADD updates with hot-row cache invalidation.",
			"Hit rate column shows how much RecNMP-style locality survives as the write fraction grows.",
		},
	}
}

// mustBuild materializes a model or panics (experiment drivers have no
// error channel; a build failure here is a programming error).
func mustBuild(mc recsys.Config, seed int64) *recsys.Model {
	m, err := recsys.Build(mc, seed)
	if err != nil {
		panic(err)
	}
	return m
}

// All runs every experiment at the given scale, in the paper's order, plus
// the extension experiments.
func All(p core.Platform, s Scale) []Result {
	return []Result{
		Fig3(), Fig4(p), Tab1(), Tab2(),
		Fig11(s), Fig12(s), Fig13(p), Fig14(p), Fig15(p), Fig16(p),
		Tab3(), PowerBudget(), ExtScatter(s), ExtOnline(s),
	}
}

// ByID returns the experiment with the given ID, running it on demand.
func ByID(id string, p core.Platform, s Scale) (Result, error) {
	switch id {
	case "fig3":
		return Fig3(), nil
	case "fig4":
		return Fig4(p), nil
	case "tab1":
		return Tab1(), nil
	case "tab2":
		return Tab2(), nil
	case "fig11":
		return Fig11(s), nil
	case "fig12":
		return Fig12(s), nil
	case "fig13":
		return Fig13(p), nil
	case "fig14":
		return Fig14(p), nil
	case "fig15":
		return Fig15(p), nil
	case "fig16":
		return Fig16(p), nil
	case "tab3":
		return Tab3(), nil
	case "power":
		return PowerBudget(), nil
	case "extscatter":
		return ExtScatter(s), nil
	case "extonline":
		return ExtOnline(s), nil
	default:
		return Result{}, fmt.Errorf("experiments: unknown id %q (want fig3, fig4, tab1, tab2, fig11, fig12, fig13, fig14, fig15, fig16, tab3, power, extscatter, extonline)", id)
	}
}

// IDs lists all experiment identifiers in the paper's order, with the
// extension experiments last.
func IDs() []string {
	return []string{"fig3", "fig4", "tab1", "tab2", "fig11", "fig12", "fig13", "fig14", "fig15", "fig16", "tab3", "power", "extscatter", "extonline"}
}
