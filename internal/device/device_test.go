package device

import (
	"testing"
	"testing/quick"
)

func TestPlatformConstants(t *testing.T) {
	gpu := V100()
	cpu := XeonHost()
	if gpu.MemBWGBs != 900 {
		t.Fatalf("V100 HBM = %v, want 900 GB/s", gpu.MemBWGBs)
	}
	if cpu.MemBWGBs != 204.8 {
		t.Fatalf("host DDR4 = %v, want 204.8 GB/s (8 x 25.6)", cpu.MemBWGBs)
	}
	if cpu.GatherEff > 0.05 {
		t.Fatalf("CPU gather efficiency %v must honor Gupta et al. <5%%", cpu.GatherEff)
	}
	if gpu.PeakFLOPS <= cpu.PeakFLOPS*5 {
		t.Fatal("GPU must be much faster than CPU for dense layers")
	}
}

func TestGatherAsymmetry(t *testing.T) {
	// Gathering 10 MB of embeddings: the GPU must be >40x faster than the
	// CPU (bandwidth ratio x gather-efficiency ratio), the root cause the
	// paper identifies for the embedding bottleneck.
	const bytes = 10 << 20
	cpu, gpu := XeonHost(), V100()
	ratio := cpu.GatherSeconds(bytes) / gpu.GatherSeconds(bytes)
	if ratio < 40 {
		t.Fatalf("CPU/GPU gather time ratio = %.1f, want > 40", ratio)
	}
}

func TestStreamVsGather(t *testing.T) {
	cpu := XeonHost()
	if cpu.StreamSeconds(1<<20) >= cpu.GatherSeconds(1<<20) {
		t.Fatal("streaming must beat gathering on the CPU")
	}
	if cpu.GatherSeconds(0) != 0 || cpu.StreamSeconds(-1) != 0 {
		t.Fatal("zero/negative bytes must cost zero")
	}
}

func TestDenseLayerRoofline(t *testing.T) {
	gpu := V100()
	// Huge batch: compute-bound. 4096x4096 at batch 4096:
	// flops = 2*4096^3 = 137 GFLOP -> ~10 ms at 14 TFLOPS.
	tBig := gpu.DenseLayerSeconds(4096, 4096, 4096)
	flopTime := 2.0 * 4096 * 4096 * 4096 / gpu.PeakFLOPS
	if tBig < flopTime || tBig > flopTime*1.5 {
		t.Fatalf("compute-bound layer: %v vs flop time %v", tBig, flopTime)
	}
	// Batch 1: memory-bound (weights dominate).
	tSmall := gpu.DenseLayerSeconds(1, 4096, 4096)
	memTime := 4096.0 * 4096 * 4 / (gpu.MemBWGBs * 1e9)
	if tSmall < memTime {
		t.Fatalf("memory-bound layer %v cannot beat weight-read time %v", tSmall, memTime)
	}
}

func TestKernelLaunchFloor(t *testing.T) {
	gpu := V100()
	// A tiny layer is launch-bound.
	tTiny := gpu.DenseLayerSeconds(1, 8, 8)
	if tTiny < gpu.KernelLaunchS {
		t.Fatalf("layer time %v below launch overhead %v", tTiny, gpu.KernelLaunchS)
	}
}

func TestMLPSeconds(t *testing.T) {
	gpu := V100()
	dims := []int{1024, 512, 256, 1}
	total := gpu.MLPSeconds(64, dims)
	var sum float64
	for i := 0; i+1 < len(dims); i++ {
		sum += gpu.DenseLayerSeconds(64, dims[i], dims[i+1])
	}
	if total != sum {
		t.Fatalf("MLPSeconds %v != sum of layers %v", total, sum)
	}
	if gpu.MLPSeconds(64, []int{5}) != 0 {
		t.Fatal("single-dim chain has no layers")
	}
}

func TestCPUSlowerThanGPUOnMLP(t *testing.T) {
	dims := []int{2048, 1024, 512, 256, 1}
	cpu, gpu := XeonHost(), V100()
	tc := cpu.MLPSeconds(64, dims)
	tg := gpu.MLPSeconds(64, dims)
	if tc/tg < 3 {
		t.Fatalf("CPU/GPU MLP ratio = %.1f, expected compute gap", tc/tg)
	}
}

func TestString(t *testing.T) {
	if V100().String() == "" || XeonHost().String() == "" {
		t.Fatal("empty String")
	}
}

// Property: layer time is monotone in batch size.
func TestQuickLayerMonotoneInBatch(t *testing.T) {
	gpu := V100()
	f := func(b1Raw, b2Raw uint8) bool {
		b1, b2 := int(b1Raw)+1, int(b2Raw)+1
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		return gpu.DenseLayerSeconds(b1, 512, 512) <= gpu.DenseLayerSeconds(b2, 512, 512)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
