// Package device models the compute devices of the paper's evaluation
// platform (Section 5): the host CPU of an NVIDIA DGX (dual-socket Xeon
// running MKL) and a V100-class GPU (cuDNN/cuBLAS), each as a roofline
// model — compute-bound or memory-bound, whichever dominates — plus the
// efficiency factors that govern the embedding-specific operations.
//
// Two efficiency factors matter for the paper's analysis:
//
//   - GatherEff: the fraction of peak DRAM bandwidth achieved by embedding
//     gather (random row) accesses. For CPUs this is very low — Gupta et
//     al. [24] report under 5% of peak, because the sparse accesses miss in
//     the cache hierarchy and the latency to traverse it dominates. GPUs
//     coalesce gathers over HBM far better.
//
//   - StreamEff: the fraction of peak achieved by streaming element-wise
//     tensor operations (reductions), which run near peak on both.
//
// These constants are the calibration points of the reproduction; they are
// asserted against the paper's headline ratios in the calibration tests of
// internal/core and documented in EXPERIMENTS.md.
package device

import "fmt"

// Compute is a roofline device model.
type Compute struct {
	Name string
	// PeakFLOPS is the achievable FP32 throughput for dense layers
	// (already discounted from datasheet peak to realistic GEMM efficiency).
	PeakFLOPS float64
	// MemBWGBs is the local memory bandwidth in GB/s.
	MemBWGBs float64
	// GatherEff is the fraction of MemBWGBs achieved by embedding gathers.
	GatherEff float64
	// StreamEff is the fraction of MemBWGBs achieved by streaming tensor ops.
	StreamEff float64
	// KernelLaunchS is the fixed per-kernel dispatch overhead in seconds
	// (CUDA launch for GPUs; ~0 for host code).
	KernelLaunchS float64
}

// V100 returns the GPU model: 900 GB/s HBM2, ~14 TFLOPS effective FP32
// through cuBLAS, 5 us kernel launches.
func V100() Compute {
	return Compute{
		Name:          "V100",
		PeakFLOPS:     14e12,
		MemBWGBs:      900,
		GatherEff:     0.70,
		StreamEff:     0.85,
		KernelLaunchS: 5e-6,
	}
}

// XeonHost returns the DGX host CPU model: dual-socket Xeon with eight
// DDR4-3200 channels (204.8 GB/s peak), ~1 TFLOPS effective FP32 under MKL,
// and the <5% effective gather bandwidth reported by Gupta et al. [24].
func XeonHost() Compute {
	return Compute{
		Name:          "XeonHost",
		PeakFLOPS:     1.0e12,
		MemBWGBs:      204.8,
		GatherEff:     0.05,
		StreamEff:     0.50,
		KernelLaunchS: 0.5e-6,
	}
}

// GatherSeconds returns the time to gather `bytes` of embeddings from local
// memory (random-row reads).
func (c Compute) GatherSeconds(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / (c.MemBWGBs * c.GatherEff * 1e9)
}

// StreamSeconds returns the time to move `bytes` through a streaming
// element-wise kernel (total traffic: reads plus writes).
func (c Compute) StreamSeconds(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return float64(bytes) / (c.MemBWGBs * c.StreamEff * 1e9)
}

// DenseLayerSeconds returns the roofline time of one fully-connected layer
// of `in` x `out` weights at the given batch size: the max of the compute
// time (2*B*in*out FLOPs) and the memory time (weights + activations), plus
// one kernel launch.
func (c Compute) DenseLayerSeconds(batch, in, out int) float64 {
	flops := 2 * float64(batch) * float64(in) * float64(out)
	bytes := float64(in)*float64(out)*4 + float64(batch)*(float64(in)+float64(out))*4
	compute := flops / c.PeakFLOPS
	memory := bytes / (c.MemBWGBs * 1e9)
	t := compute
	if memory > t {
		t = memory
	}
	return t + c.KernelLaunchS
}

// MLPSeconds returns the roofline time of an MLP stack given its layer
// dimensions [d0, d1, ..., dn] (n layers).
func (c Compute) MLPSeconds(batch int, dims []int) float64 {
	var total float64
	for i := 0; i+1 < len(dims); i++ {
		total += c.DenseLayerSeconds(batch, dims[i], dims[i+1])
	}
	return total
}

// String implements fmt.Stringer.
func (c Compute) String() string {
	return fmt.Sprintf("%s{%.1f TFLOPS, %.0f GB/s}", c.Name, c.PeakFLOPS/1e12, c.MemBWGBs)
}
