// Package trace generates the DRAM read/write transaction streams of the
// TensorISA operations, mirroring the paper's "memory tracing function that
// hooks into the DL frameworks" (Section 5). The streams follow the
// functional pseudo-code of Figure 9 exactly:
//
//	GATHER  — reads the index blocks, reads every 64 B block of each gathered
//	          embedding from its (random) table row, writes the gathered
//	          tensor contiguously.
//	REDUCE  — streams two equal-size operands in and one result out.
//	AVERAGE — streams averageNum operands in and one result out.
//
// Addresses are linear physical byte addresses; the address-mapping scheme of
// the simulated system decides where each 64 B block lands (across the eight
// CPU channels for the baseline, or striped across every TensorDIMM for the
// proposed design, Figure 7). The same trace therefore exercises both
// organizations, which is exactly the comparison of Figures 11 and 12.
package trace

import (
	"fmt"

	"tensordimm/internal/addrmap"
	"tensordimm/internal/dram"
	"tensordimm/internal/isa"
)

// Layout fixes where the regions of one embedding layer live in the physical
// address space. All fields are byte addresses, 64 B aligned.
type Layout struct {
	TableBase uint64 // base of the embedding lookup table region
	IndexBase uint64 // base of the lookup-index list
	GatherOut uint64 // base of the gathered (batched) tensor
	ScratchA  uint64 // reduction input A (usually == GatherOut)
	ScratchB  uint64 // reduction input B
	OutBase   uint64 // base of the final reduced tensor
}

// Generator produces DRAM request streams for tensor operations over
// embeddings of a fixed geometry.
type Generator struct {
	// EmbBytes is the payload size of one embedding vector (e.g. 512
	// float32 = 2048 B, the paper's default).
	EmbBytes int
	// TableRows is the number of embedding vectors in the lookup table.
	TableRows int
}

// NewGenerator validates the geometry and returns a Generator.
func NewGenerator(embBytes, tableRows int) (*Generator, error) {
	if embBytes <= 0 || embBytes%isa.BlockBytes != 0 {
		return nil, fmt.Errorf("trace: EmbBytes %d must be a positive multiple of %d", embBytes, isa.BlockBytes)
	}
	if tableRows <= 0 {
		return nil, fmt.Errorf("trace: TableRows %d must be positive", tableRows)
	}
	return &Generator{EmbBytes: embBytes, TableRows: tableRows}, nil
}

// EmbBlocks returns the number of 64 B blocks per embedding.
func (g *Generator) EmbBlocks() int { return g.EmbBytes / isa.BlockBytes }

// TableBytes returns the table footprint in bytes.
func (g *Generator) TableBytes() uint64 {
	return uint64(g.TableRows) * uint64(g.EmbBytes)
}

// Gather emits the transaction stream of one GATHER instruction: for every
// index, read the whole embedding from the table and append it to the
// gathered tensor at out. Index-list reads (one 64 B block per 16 indices)
// are included, as in Figure 9(a).
func (g *Generator) Gather(l Layout, indices []int) []dram.Request {
	eb := g.EmbBlocks()
	reqs := make([]dram.Request, 0, len(indices)*(2*eb)+len(indices)/isa.LanesPerBlock+1)
	// Index block reads.
	nIdxBlocks := (len(indices) + isa.LanesPerBlock - 1) / isa.LanesPerBlock
	for i := 0; i < nIdxBlocks; i++ {
		reqs = append(reqs, dram.Request{Phys: l.IndexBase + uint64(i)*isa.BlockBytes})
	}
	for i, idx := range indices {
		rowBase := l.TableBase + uint64(idx)*uint64(g.EmbBytes)
		outBase := l.GatherOut + uint64(i)*uint64(g.EmbBytes)
		for b := 0; b < eb; b++ {
			reqs = append(reqs, dram.Request{Phys: rowBase + uint64(b)*isa.BlockBytes})
			reqs = append(reqs, dram.Request{Phys: outBase + uint64(b)*isa.BlockBytes, Write: true})
		}
	}
	return reqs
}

// GatherCached emits the transaction stream of a GATHER filtered through a
// hot-row cache (the RecNMP-style rank-level cache the cluster layer places
// in front of each shard): the index blocks are always read, but table-row
// reads and gather-output writes are emitted only for indices the cache
// misses (cached(idx) == false). Cache hits are served from buffer-device
// SRAM and generate no DRAM traffic, which is exactly the bandwidth relief
// a skewed trace buys — replay the returned stream through internal/dram to
// measure it.
func (g *Generator) GatherCached(l Layout, indices []int, cached func(int) bool) []dram.Request {
	eb := g.EmbBlocks()
	reqs := make([]dram.Request, 0, len(indices)*(2*eb)+len(indices)/isa.LanesPerBlock+1)
	nIdxBlocks := (len(indices) + isa.LanesPerBlock - 1) / isa.LanesPerBlock
	for i := 0; i < nIdxBlocks; i++ {
		reqs = append(reqs, dram.Request{Phys: l.IndexBase + uint64(i)*isa.BlockBytes})
	}
	out := 0 // misses pack contiguously in the gather output
	for _, idx := range indices {
		if cached != nil && cached(idx) {
			continue
		}
		rowBase := l.TableBase + uint64(idx)*uint64(g.EmbBytes)
		outBase := l.GatherOut + uint64(out)*uint64(g.EmbBytes)
		out++
		for b := 0; b < eb; b++ {
			reqs = append(reqs, dram.Request{Phys: rowBase + uint64(b)*isa.BlockBytes})
			reqs = append(reqs, dram.Request{Phys: outBase + uint64(b)*isa.BlockBytes, Write: true})
		}
	}
	return reqs
}

// Reduce emits the stream of one REDUCE instruction over tensors of the
// given number of embeddings: read A and B interleaved, write the result.
func (g *Generator) Reduce(l Layout, embeddings int) []dram.Request {
	blocks := embeddings * g.EmbBlocks()
	reqs := make([]dram.Request, 0, 3*blocks)
	for b := 0; b < blocks; b++ {
		off := uint64(b) * isa.BlockBytes
		reqs = append(reqs,
			dram.Request{Phys: l.ScratchA + off},
			dram.Request{Phys: l.ScratchB + off},
			dram.Request{Phys: l.OutBase + off, Write: true},
		)
	}
	return reqs
}

// Average emits the stream of one AVERAGE instruction reducing groups of
// n consecutive embeddings into one: for each output embedding it reads n
// inputs and writes one result, as in Figure 9(c).
func (g *Generator) Average(l Layout, outEmbeddings, n int) []dram.Request {
	eb := g.EmbBlocks()
	reqs := make([]dram.Request, 0, outEmbeddings*eb*(n+1))
	for i := 0; i < outEmbeddings; i++ {
		for b := 0; b < eb; b++ {
			for j := 0; j < n; j++ {
				in := l.ScratchA + uint64(((i*n+j)*eb+b))*isa.BlockBytes
				reqs = append(reqs, dram.Request{Phys: in})
			}
			out := l.OutBase + uint64((i*eb+b))*isa.BlockBytes
			reqs = append(reqs, dram.Request{Phys: out, Write: true})
		}
	}
	return reqs
}

// ScatterAdd emits the stream of one SCATTER_ADD extension instruction:
// for every index, read the gradient stripe (sequential), read the table
// row (random) and write it back (random). Used to study the training
// direction the paper leaves to future work.
func (g *Generator) ScatterAdd(l Layout, indices []int) []dram.Request {
	eb := g.EmbBlocks()
	reqs := make([]dram.Request, 0, len(indices)*(3*eb)+len(indices)/isa.LanesPerBlock+1)
	nIdxBlocks := (len(indices) + isa.LanesPerBlock - 1) / isa.LanesPerBlock
	for i := 0; i < nIdxBlocks; i++ {
		reqs = append(reqs, dram.Request{Phys: l.IndexBase + uint64(i)*isa.BlockBytes})
	}
	for i, idx := range indices {
		gradBase := l.ScratchA + uint64(i)*uint64(g.EmbBytes)
		rowBase := l.TableBase + uint64(idx)*uint64(g.EmbBytes)
		for b := 0; b < eb; b++ {
			off := uint64(b) * isa.BlockBytes
			reqs = append(reqs,
				dram.Request{Phys: gradBase + off},
				dram.Request{Phys: rowBase + off},
				dram.Request{Phys: rowBase + off, Write: true},
			)
		}
	}
	return reqs
}

// LayerPhases emits the dependent phases of one full embedding layer with
// `tables` lookup tables, `reduction`-way pooling and the given per-table
// index lists: first all GATHERs (independent), then the pooling pass that
// consumes them. It returns phases suitable for dram.System.RunPhases.
func (g *Generator) LayerPhases(l Layout, perTableIndices [][]int, reduction int) [][]dram.Request {
	var gatherPhase []dram.Request
	for t, indices := range perTableIndices {
		tl := l
		// Each table and its gather output occupy disjoint regions.
		tl.TableBase = l.TableBase + uint64(t)*g.TableBytes()
		tl.GatherOut = l.GatherOut + uint64(t)*uint64(len(indices))*uint64(g.EmbBytes)
		gatherPhase = append(gatherPhase, g.Gather(tl, indices)...)
	}
	if reduction <= 1 {
		return [][]dram.Request{gatherPhase}
	}
	var poolPhase []dram.Request
	for t, indices := range perTableIndices {
		tl := l
		tl.ScratchA = l.GatherOut + uint64(t)*uint64(len(indices))*uint64(g.EmbBytes)
		tl.OutBase = l.OutBase + uint64(t)*uint64(len(indices)/reduction)*uint64(g.EmbBytes)
		poolPhase = append(poolPhase, g.Average(tl, len(indices)/reduction, reduction)...)
	}
	return [][]dram.Request{gatherPhase, poolPhase}
}

// LayoutFor returns a non-overlapping region layout for a generator, a
// worst-case gather size (embeddings gathered in one phase across all
// tables) and a target memory organization. Streaming tensor kernels read
// two or three regions concurrently; if those regions started in the same
// DRAM bank they would thrash each other's row buffers, so each
// concurrently-streamed region (gather output / scratch B / final output)
// is placed at a distinct bank offset ("bank staggering"). The bank stride
// is derived from the mapping: under the schemes of this repository the
// bank index advances every Channels x BankGroups x Columns blocks.
func (g *Generator) LayoutFor(geom addrmap.Geometry, tables, maxGathered int) Layout {
	bankStride := uint64(geom.Channels) * uint64(geom.BankGroups) * uint64(geom.Columns) * isa.BlockBytes
	bankCycle := bankStride * uint64(geom.Banks)
	place := func(after uint64, bank int) uint64 {
		base := (after + bankCycle - 1) / bankCycle * bankCycle
		return base + uint64(bank)*bankStride
	}
	align := func(x uint64) uint64 { return (x + 4095) &^ 4095 }
	tableEnd := align(uint64(tables) * g.TableBytes())
	idxEnd := align(tableEnd + uint64(maxGathered)*4)
	gatherBase := place(idxEnd, 0)
	gatherEnd := gatherBase + uint64(maxGathered)*uint64(g.EmbBytes)
	scratchB := place(gatherEnd, 1)
	scratchBEnd := scratchB + uint64(maxGathered)*uint64(g.EmbBytes)
	return Layout{
		TableBase: 0,
		IndexBase: tableEnd,
		GatherOut: gatherBase,
		ScratchA:  gatherBase, // reduction reads the gathered tensor
		ScratchB:  scratchB,
		OutBase:   place(scratchBEnd, 2),
	}
}

// DefaultLayout is LayoutFor under the paper's default TensorNode
// organization (32 TensorDIMMs, Table 1).
func (g *Generator) DefaultLayout(tables, maxGathered int) Layout {
	return g.LayoutFor(addrmap.TensorDIMM(32, 1<<16).Geom, tables, maxGathered)
}
