package trace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tensordimm/internal/addrmap"
	"tensordimm/internal/dram"
	"tensordimm/internal/isa"
)

func gen(t *testing.T) *Generator {
	t.Helper()
	g, err := NewGenerator(2048, 100000) // 512-dim float32 embeddings
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(100, 10); err == nil {
		t.Fatal("want error for non-multiple-of-64 embedding")
	}
	if _, err := NewGenerator(0, 10); err == nil {
		t.Fatal("want error for zero embedding")
	}
	if _, err := NewGenerator(64, 0); err == nil {
		t.Fatal("want error for zero rows")
	}
}

func TestGatherRequestCounts(t *testing.T) {
	g := gen(t)
	l := g.DefaultLayout(1, 64)
	indices := make([]int, 64)
	for i := range indices {
		indices[i] = i * 7 % g.TableRows
	}
	reqs := g.Gather(l, indices)
	eb := g.EmbBlocks()
	wantReads := 64/isa.LanesPerBlock + 64*eb
	wantWrites := 64 * eb
	var reads, writes int
	for _, r := range reqs {
		if r.Write {
			writes++
		} else {
			reads++
		}
	}
	if reads != wantReads || writes != wantWrites {
		t.Fatalf("gather: %d reads %d writes, want %d/%d", reads, writes, wantReads, wantWrites)
	}
}

func TestGatherMatchesISATraffic(t *testing.T) {
	// The trace and the ISA-level analytical traffic model must agree. A
	// GATHER instruction with count=N covers one stripe per index; with
	// EmbBytes == stripe size (nodeDim*64), per-rank blocks x nodeDim equals
	// the whole-node totals of the trace.
	g := gen(t)
	nodeDim := g.EmbBlocks() // stripe == embedding (paper default: 32 DIMMs x 64 B = 2 KiB)
	l := g.DefaultLayout(1, 32)
	indices := make([]int, 32)
	reqs := g.Gather(l, indices)
	in := isa.Gather(0, 0, 0, uint32(len(indices)))
	tr := in.RankTraffic()
	nodeReads := int(tr.ReadBlocks-uint64(len(indices))/isa.LanesPerBlock)*nodeDim + int(len(indices))/isa.LanesPerBlock
	nodeWrites := int(tr.WriteBlocks) * nodeDim
	var reads, writes int
	for _, r := range reqs {
		if r.Write {
			writes++
		} else {
			reads++
		}
	}
	if reads != nodeReads || writes != nodeWrites {
		t.Fatalf("trace %d/%d vs ISA-derived %d/%d", reads, writes, nodeReads, nodeWrites)
	}
}

func TestReduceCounts(t *testing.T) {
	g := gen(t)
	l := g.DefaultLayout(2, 128)
	reqs := g.Reduce(l, 16)
	eb := g.EmbBlocks()
	var reads, writes int
	for _, r := range reqs {
		if r.Write {
			writes++
		} else {
			reads++
		}
	}
	if reads != 2*16*eb || writes != 16*eb {
		t.Fatalf("reduce: %d reads %d writes", reads, writes)
	}
}

func TestAverageCounts(t *testing.T) {
	g := gen(t)
	l := g.DefaultLayout(1, 400)
	reqs := g.Average(l, 8, 50)
	eb := g.EmbBlocks()
	var reads, writes int
	for _, r := range reqs {
		if r.Write {
			writes++
		} else {
			reads++
		}
	}
	if reads != 8*50*eb || writes != 8*eb {
		t.Fatalf("average: %d reads %d writes", reads, writes)
	}
}

func TestRegionsDisjoint(t *testing.T) {
	g := gen(t)
	l := g.DefaultLayout(2, 256)
	if l.IndexBase < g.TableBytes()*2 {
		t.Fatal("index region overlaps tables")
	}
	if l.GatherOut <= l.IndexBase {
		t.Fatal("gather region overlaps indices")
	}
	if l.ScratchB <= l.GatherOut {
		t.Fatal("scratch B overlaps gather output")
	}
	if l.OutBase <= l.ScratchB {
		t.Fatal("output overlaps scratch B")
	}
}

func TestGatherStripesAcrossAllDIMMs(t *testing.T) {
	// Under the TensorDIMM mapping, one gathered 2 KiB embedding must touch
	// all 32 DIMMs exactly once for reads (plus once for writes).
	g := gen(t)
	scheme := addrmap.TensorDIMM(32, 1<<15)
	l := g.DefaultLayout(1, 16)
	reqs := g.Gather(l, []int{12345})
	perDIMMReads := make(map[int]int)
	for _, r := range reqs[1:] { // skip the index-block read
		a := scheme.Map(r.Phys)
		if !r.Write {
			perDIMMReads[a.Channel]++
		}
	}
	if len(perDIMMReads) != 32 {
		t.Fatalf("gather touched %d DIMMs, want 32", len(perDIMMReads))
	}
	for ch, n := range perDIMMReads {
		if n != 1 {
			t.Fatalf("DIMM %d read %d blocks, want 1", ch, n)
		}
	}
}

func TestLayerPhasesStructure(t *testing.T) {
	g := gen(t)
	l := g.DefaultLayout(2, 2*64*50)
	idx := func(n int) []int {
		out := make([]int, n)
		for i := range out {
			out[i] = (i * 131) % g.TableRows
		}
		return out
	}
	phases := g.LayerPhases(l, [][]int{idx(64 * 50), idx(64 * 50)}, 50)
	if len(phases) != 2 {
		t.Fatalf("phases = %d, want 2 (gather, pool)", len(phases))
	}
	if len(phases[0]) == 0 || len(phases[1]) == 0 {
		t.Fatal("empty phase")
	}
	// With reduction 1 there is no pooling pass.
	single := g.LayerPhases(l, [][]int{idx(64)}, 1)
	if len(single) != 1 {
		t.Fatalf("reduction=1 phases = %d, want 1", len(single))
	}
}

func TestEndToEndBandwidthRatio(t *testing.T) {
	// Integration: the same layer trace must achieve roughly 4x the
	// bandwidth on a 32-DIMM TensorNode vs the 8-channel CPU system —
	// the central claim behind Figure 11.
	g := gen(t)
	rng := rand.New(rand.NewSource(42))
	batch, reduction := 32, 50
	minRatio := 2.5
	if testing.Short() {
		// Reduced replay: the NMP win shrinks (and gets noisier) at
		// small batches, so assert a looser band at a quarter of the
		// runtime.
		batch = 8
		minRatio = 2
	}
	n := batch * reduction
	indices := make([]int, n)
	for i := range indices {
		indices[i] = rng.Intn(g.TableRows)
	}
	l := g.DefaultLayout(1, n)
	phases := g.LayerPhases(l, [][]int{indices}, reduction)

	cpu := dram.NewSystem(addrmap.CPUBaseline(8, 4, 1<<15), dram.DDR43200())
	node := dram.NewSystem(addrmap.TensorDIMM(32, 1<<15), dram.DDR43200())
	cpuRes := cpu.RunPhases(phases)
	nodeRes := node.RunPhases(phases)
	cpuBW := cpuRes.BandwidthGBs(cpu.Timing)
	nodeBW := nodeRes.BandwidthGBs(node.Timing)
	ratio := nodeBW / cpuBW
	if ratio < minRatio || ratio > 6 {
		t.Fatalf("TensorNode/CPU bandwidth ratio = %.2f (%.1f vs %.1f GB/s), want ~4x",
			ratio, nodeBW, cpuBW)
	}
}

func TestQuickGatherAddressesInTable(t *testing.T) {
	g, _ := NewGenerator(2048, 5000)
	l := g.DefaultLayout(1, 64)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		indices := make([]int, 16)
		for i := range indices {
			indices[i] = rng.Intn(g.TableRows)
		}
		for _, r := range g.Gather(l, indices) {
			if r.Write {
				if r.Phys < l.GatherOut {
					return false
				}
			} else if r.Phys >= l.IndexBase && r.Phys < l.GatherOut {
				continue // index read
			} else if !r.Write && r.Phys >= g.TableBytes() {
				return false // table read out of bounds
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestScatterAddCounts(t *testing.T) {
	g := gen(t)
	l := g.DefaultLayout(1, 64)
	indices := make([]int, 32)
	for i := range indices {
		indices[i] = (i * 13) % g.TableRows
	}
	reqs := g.ScatterAdd(l, indices)
	eb := g.EmbBlocks()
	var reads, writes int
	for _, r := range reqs {
		if r.Write {
			writes++
		} else {
			reads++
		}
	}
	wantReads := 32/16 + 2*32*eb // index blocks + gradient and table reads
	if reads != wantReads || writes != 32*eb {
		t.Fatalf("scatter-add: %d reads %d writes, want %d/%d", reads, writes, wantReads, 32*eb)
	}
}

// GatherCached must emit all index-block reads but table-row reads and
// output writes only for cache misses, with miss outputs packed
// contiguously from GatherOut.
func TestGatherCachedFiltersHits(t *testing.T) {
	g, err := NewGenerator(256, 64) // 4 blocks per embedding
	if err != nil {
		t.Fatal(err)
	}
	l := g.DefaultLayout(1, 64)
	indices := []int{5, 9, 5, 33, 9, 7}
	hot := map[int]bool{5: true, 9: true}
	reqs := g.GatherCached(l, indices, func(i int) bool { return hot[i] })
	eb := g.EmbBlocks()
	misses := 2 // 33 and 7 (occurrences of 5 and 9 are all hits)
	wantReads := 1 /* index block */ + misses*eb
	wantWrites := misses * eb
	reads, writes := 0, 0
	for _, r := range reqs {
		if r.Write {
			writes++
		} else {
			reads++
		}
	}
	if reads != wantReads || writes != wantWrites {
		t.Fatalf("reads %d writes %d, want %d and %d", reads, writes, wantReads, wantWrites)
	}
	// Miss outputs pack contiguously: the first write lands at GatherOut.
	for _, r := range reqs {
		if r.Write {
			if r.Phys != l.GatherOut {
				t.Fatalf("first output write at %#x, want %#x", r.Phys, l.GatherOut)
			}
			break
		}
	}
	// A nil predicate degenerates to a plain Gather stream.
	plain := g.Gather(l, indices)
	unfiltered := g.GatherCached(l, indices, nil)
	if len(plain) != len(unfiltered) {
		t.Fatalf("nil predicate: %d requests, want %d", len(unfiltered), len(plain))
	}
}
