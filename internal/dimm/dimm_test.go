package dimm

import (
	"strings"
	"testing"

	"tensordimm/internal/isa"
	"tensordimm/internal/nmp"
)

func TestNewValidation(t *testing.T) {
	sh := NewSharedRegion()
	if _, err := New(0, 4, 100, sh); err == nil {
		t.Fatal("want error: localBytes not multiple of 64")
	}
	if _, err := New(0, 4, 0, sh); err == nil {
		t.Fatal("want error: zero localBytes")
	}
	if _, err := New(0, 4, 4096, nil); err == nil {
		t.Fatal("want error: nil shared region")
	}
	if _, err := New(9, 4, 4096, sh); err == nil {
		t.Fatal("want error: tid out of range (via nmp core)")
	}
	d, err := New(2, 4, 4096, sh)
	if err != nil {
		t.Fatal(err)
	}
	if d.TID() != 2 || d.LocalBytes() != 4096 || d.Core() == nil {
		t.Fatalf("accessors: tid=%d bytes=%d", d.TID(), d.LocalBytes())
	}
}

func TestOwnershipTranslation(t *testing.T) {
	sh := NewSharedRegion()
	d, _ := New(1, 4, 4096, sh)
	b := nmp.PackFloats([]float32{42})

	// Global block 5 = 5 mod 4 = DIMM 1, local block 1 (offset 64).
	if err := d.WriteLocal(5, b); err != nil {
		t.Fatal(err)
	}
	got, err := d.ReadLocal(5)
	if err != nil {
		t.Fatal(err)
	}
	if nmp.UnpackFloats(got)[0] != 42 {
		t.Fatal("round trip failed")
	}
	// The normal personality sees it at local offset 64.
	nb, err := d.ReadBlock(64)
	if err != nil {
		t.Fatal(err)
	}
	if nmp.UnpackFloats(nb)[0] != 42 {
		t.Fatal("normal personality sees different data")
	}

	// Foreign block: 6 mod 4 = DIMM 2.
	if _, err := d.ReadLocal(6); err == nil || !strings.Contains(err.Error(), "belongs to DIMM 2") {
		t.Fatalf("want ownership error, got %v", err)
	}
	if err := d.WriteLocal(6, b); err == nil {
		t.Fatal("want ownership error on write")
	}
}

func TestCapacityBounds(t *testing.T) {
	sh := NewSharedRegion()
	d, _ := New(0, 2, 128, sh) // two local blocks
	b := nmp.Block{}
	if err := d.WriteLocal(0, b); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteLocal(2, b); err != nil { // local block 1
		t.Fatal(err)
	}
	if err := d.WriteLocal(4, b); err == nil { // local block 2: beyond
		t.Fatal("want capacity error")
	}
	if _, err := d.ReadLocal(4); err == nil {
		t.Fatal("want capacity error on read")
	}
}

func TestNormalPersonalityBounds(t *testing.T) {
	sh := NewSharedRegion()
	d, _ := New(0, 1, 128, sh)
	if _, err := d.ReadBlock(63); err == nil {
		t.Fatal("want alignment error")
	}
	if _, err := d.ReadBlock(128); err == nil {
		t.Fatal("want bounds error")
	}
	if err := d.WriteBlock(65, nmp.Block{}); err == nil {
		t.Fatal("want alignment error on write")
	}
	if err := d.WriteBlock(128, nmp.Block{}); err == nil {
		t.Fatal("want bounds error on write")
	}
	if err := d.WriteBlock(64, nmp.PackFloats([]float32{7})); err != nil {
		t.Fatal(err)
	}
	b, err := d.ReadBlock(64)
	if err != nil || nmp.UnpackFloats(b)[0] != 7 {
		t.Fatalf("ReadBlock: %v %v", b, err)
	}
}

func TestSharedRegion(t *testing.T) {
	sh := NewSharedRegion()
	if _, err := sh.Read(0); err == nil {
		t.Fatal("want error for unwritten block")
	}
	sh.Write(3, nmp.PackIndices([]int32{1, 2, 3}))
	b, err := sh.Read(3)
	if err != nil {
		t.Fatal(err)
	}
	if nmp.UnpackFloats(b) == nil {
		t.Fatal("unexpected nil")
	}
	if sh.Len() != 1 {
		t.Fatalf("Len = %d", sh.Len())
	}
}

func TestExecuteThroughDIMM(t *testing.T) {
	// A one-DIMM "node": REDUCE over its local blocks.
	sh := NewSharedRegion()
	d, _ := New(0, 1, 4096, sh)
	if err := d.WriteLocal(0, nmp.PackFloats([]float32{3})); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteLocal(1, nmp.PackFloats([]float32{4})); err != nil {
		t.Fatal(err)
	}
	if err := d.Execute(isa.Reduce(isa.RMul, 0, 1, 2, 1)); err != nil {
		t.Fatal(err)
	}
	out, err := d.ReadLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	if nmp.UnpackFloats(out)[0] != 12 {
		t.Fatalf("3*4 = %v", nmp.UnpackFloats(out)[0])
	}
	if d.Core().Stats().Instructions != 1 {
		t.Fatal("instruction not retired")
	}
}

func TestExecuteRemoteAccessFails(t *testing.T) {
	// An NMP core must not be able to touch blocks of another DIMM: REDUCE
	// with count 2 on a 2-DIMM node reads blocks {0,2} on DIMM 0 — fine —
	// but a mis-striped base (odd) would belong to DIMM 1 and must fail.
	sh := NewSharedRegion()
	d, _ := New(0, 2, 4096, sh)
	if err := d.Execute(isa.Reduce(isa.RAdd, 1, 3, 5, 1)); err == nil {
		t.Fatal("want rank-locality violation")
	}
}
