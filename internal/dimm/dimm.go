// Package dimm implements the TensorDIMM module of Section 4.2, Figure 6(b):
// a buffered DIMM whose commodity DRAM rank is kept as-is, with an NMP core
// added inside the buffer device.
//
// The module has two personalities:
//
//   - Normal buffered DIMM: the host's memory controller issues plain 64-byte
//     load/store transactions (ReadBlock/WriteBlock), exactly as a registered
//     or load-reduced DIMM would serve them. This is the paper's requirement
//     that TensorDIMM "be utilized as a normal buffered DIMM device" when not
//     accelerating DL.
//
//   - NMP: TensorISA instructions forwarded by the runtime are decoded by the
//     NMP-local memory controller and executed over the rank-local DRAM
//     (Execute).
//
// Addressing: the node's physical space is striped across TensorDIMMs in
// 64-byte blocks (Figure 7); global block g lives on DIMM g % nodeDim at
// rank-local block g / nodeDim. The dimm package owns that translation and
// enforces rank-locality for the NMP core.
package dimm

import (
	"fmt"
	"sync"

	"tensordimm/internal/isa"
	"tensordimm/internal/nmp"
)

// SharedRegion is the node-wide replicated store that holds GATHER index
// lists. The runtime broadcasts index blocks to every buffer device along
// with the instruction (Section 4.4); replicating them is what lets every
// NMP core walk the full index list without touching remote ranks.
//
// It is safe for concurrent reads; writes must not overlap Execute calls.
type SharedRegion struct {
	mu     sync.RWMutex
	blocks map[uint64]nmp.Block
}

// NewSharedRegion returns an empty replicated region.
func NewSharedRegion() *SharedRegion {
	return &SharedRegion{blocks: make(map[uint64]nmp.Block)}
}

// Write stores a block at the given global block address.
func (s *SharedRegion) Write(globalBlock uint64, b nmp.Block) {
	s.mu.Lock()
	s.blocks[globalBlock] = b
	s.mu.Unlock()
}

// Read fetches a block; missing blocks are an error (uninitialized index
// list — always a runtime bug).
func (s *SharedRegion) Read(globalBlock uint64) (nmp.Block, error) {
	s.mu.RLock()
	b, ok := s.blocks[globalBlock]
	s.mu.RUnlock()
	if !ok {
		return nmp.Block{}, fmt.Errorf("dimm: shared block %#x not written", globalBlock)
	}
	return b, nil
}

// Len returns the number of blocks resident in the region.
func (s *SharedRegion) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.blocks)
}

// TensorDIMM is one TensorDIMM module.
type TensorDIMM struct {
	tid     int
	nodeDim int
	store   []byte // rank-local DRAM contents
	shared  *SharedRegion
	core    *nmp.Core
}

// New builds TensorDIMM `tid` of a node with `nodeDim` DIMMs and
// `localBytes` of rank-local DRAM (a multiple of 64).
func New(tid, nodeDim int, localBytes uint64, shared *SharedRegion) (*TensorDIMM, error) {
	if localBytes == 0 || localBytes%isa.BlockBytes != 0 {
		return nil, fmt.Errorf("dimm: localBytes %d must be a positive multiple of %d", localBytes, isa.BlockBytes)
	}
	if shared == nil {
		return nil, fmt.Errorf("dimm: nil shared region")
	}
	d := &TensorDIMM{tid: tid, nodeDim: nodeDim, store: make([]byte, localBytes), shared: shared}
	core, err := nmp.NewCore(tid, nodeDim, d)
	if err != nil {
		return nil, err
	}
	d.core = core
	return d, nil
}

// TID returns the DIMM's index within its node.
func (d *TensorDIMM) TID() int { return d.tid }

// LocalBytes returns the rank-local capacity.
func (d *TensorDIMM) LocalBytes() uint64 { return uint64(len(d.store)) }

// Core exposes the NMP core (for stats inspection).
func (d *TensorDIMM) Core() *nmp.Core { return d.core }

// owns reports whether the global block address belongs to this DIMM.
func (d *TensorDIMM) owns(globalBlock uint64) bool {
	return int(globalBlock%uint64(d.nodeDim)) == d.tid
}

// localOffset translates a global block address to a byte offset in store.
func (d *TensorDIMM) localOffset(globalBlock uint64) (uint64, error) {
	if !d.owns(globalBlock) {
		return 0, fmt.Errorf("dimm %d: global block %#x belongs to DIMM %d",
			d.tid, globalBlock, globalBlock%uint64(d.nodeDim))
	}
	off := (globalBlock / uint64(d.nodeDim)) * isa.BlockBytes
	if off+isa.BlockBytes > uint64(len(d.store)) {
		return 0, fmt.Errorf("dimm %d: global block %#x beyond local capacity %d B", d.tid, globalBlock, len(d.store))
	}
	return off, nil
}

// ReadLocal implements nmp.Env.
func (d *TensorDIMM) ReadLocal(globalBlock uint64) (nmp.Block, error) {
	off, err := d.localOffset(globalBlock)
	if err != nil {
		return nmp.Block{}, err
	}
	var b nmp.Block
	copy(b[:], d.store[off:off+isa.BlockBytes])
	return b, nil
}

// WriteLocal implements nmp.Env.
func (d *TensorDIMM) WriteLocal(globalBlock uint64, b nmp.Block) error {
	off, err := d.localOffset(globalBlock)
	if err != nil {
		return err
	}
	copy(d.store[off:off+isa.BlockBytes], b[:])
	return nil
}

// ReadShared implements nmp.Env.
func (d *TensorDIMM) ReadShared(globalBlock uint64) (nmp.Block, error) {
	return d.shared.Read(globalBlock)
}

// ReadBlock is the normal-DIMM personality: a 64-byte load at a rank-local
// byte offset, as issued by a conventional memory controller.
func (d *TensorDIMM) ReadBlock(localOffset uint64) (nmp.Block, error) {
	if localOffset%isa.BlockBytes != 0 || localOffset+isa.BlockBytes > uint64(len(d.store)) {
		return nmp.Block{}, fmt.Errorf("dimm %d: bad local offset %#x", d.tid, localOffset)
	}
	var b nmp.Block
	copy(b[:], d.store[localOffset:localOffset+isa.BlockBytes])
	return b, nil
}

// WriteBlock is the normal-DIMM personality store.
func (d *TensorDIMM) WriteBlock(localOffset uint64, b nmp.Block) error {
	if localOffset%isa.BlockBytes != 0 || localOffset+isa.BlockBytes > uint64(len(d.store)) {
		return fmt.Errorf("dimm %d: bad local offset %#x", d.tid, localOffset)
	}
	copy(d.store[localOffset:localOffset+isa.BlockBytes], b[:])
	return nil
}

// Execute runs one broadcast TensorISA instruction on this DIMM's NMP core.
func (d *TensorDIMM) Execute(in isa.Instruction) error {
	return d.core.Execute(in)
}
