package serve

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"tensordimm/internal/isa"
	"tensordimm/internal/node"
	"tensordimm/internal/recsys"
	"tensordimm/internal/runtime"
	"tensordimm/internal/tensor"
	"tensordimm/internal/workload"
)

// randGrads returns a [len(rows), dim] gradient tensor with deterministic
// pseudo-random entries.
func randGrads(rng *rand.Rand, rows, dim int) *tensor.Tensor {
	g := tensor.New(rows, dim)
	for i := range g.Data() {
		g.Data()[i] = rng.Float32() - 0.5
	}
	return g
}

func TestUpdateValidation(t *testing.T) {
	cfg := testConfig(2, 2, 128, false, isa.RAdd)
	s, err := New(Config{}, newDeployment(t, cfg, 8, 1, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(1))
	if err := s.Update(nil); err == nil {
		t.Fatal("want empty-batch error")
	}
	if err := s.Update([]runtime.TableUpdate{{Table: 9, Rows: []int{1}, Grads: randGrads(rng, 1, cfg.EmbDim)}}); err == nil {
		t.Fatal("want table-range error")
	}
	if err := s.Update([]runtime.TableUpdate{{Table: 0, Rows: []int{cfg.TableRows}, Grads: randGrads(rng, 1, cfg.EmbDim)}}); err == nil {
		t.Fatal("want row-range error")
	}
	if err := s.Update([]runtime.TableUpdate{{Table: 0, Rows: []int{1, 2}, Grads: randGrads(rng, 1, cfg.EmbDim)}}); err == nil {
		t.Fatal("want gradient-shape error")
	}
	big := make([]int, s.cfg.MaxBatch*cfg.Reduction+1)
	if err := s.Update([]runtime.TableUpdate{{Table: 0, Rows: big, Grads: randGrads(rng, len(big), cfg.EmbDim)}}); err == nil {
		t.Fatal("want update-cap error")
	}
}

func TestUpdateVisibleToLaterReads(t *testing.T) {
	cfg := testConfig(2, 2, 128, false, isa.RAdd)
	s, err := New(Config{Workers: 2}, newDeployment(t, cfg, 8, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rng := rand.New(rand.NewSource(2))
	gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, 3)

	for step := 0; step < 5; step++ {
		ups := []runtime.TableUpdate{
			{Table: step % cfg.Tables, Rows: []int{7, 7, 11}, Grads: randGrads(rng, 3, cfg.EmbDim)},
		}
		if err := s.Update(ups); err != nil {
			t.Fatal(err)
		}
		rows := gen.Batch(cfg.Tables, 2, cfg.Reduction)
		rows[step%cfg.Tables] = []int{7, 11, 7, 12} // touch updated rows
		got, err := s.Embed(rows, 2)
		if err != nil {
			t.Fatal(err)
		}
		want, err := s.deps[0].GoldenEmbedding(rows, 2)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(got, want) {
			t.Fatalf("step %d: post-update embedding differs from golden", step)
		}
	}
	if m := s.Metrics(); m.Updates != 5 || m.RowsUpdated != 15 {
		t.Fatalf("update metrics: %d updates, %d rows", m.Updates, m.RowsUpdated)
	}
}

// TestUpdateReplicasStayIdentical deploys the SAME model twice (shared
// golden) plus serves updates: every replica's node table must absorb every
// update exactly once, and the shared golden only once.
func TestUpdateReplicasStayIdentical(t *testing.T) {
	cfg := testConfig(2, 2, 128, false, isa.RAdd)
	m, err := recsys.Build(cfg, 77)
	if err != nil {
		t.Fatal(err)
	}
	var deps []*runtime.Deployment
	for i := 0; i < 2; i++ {
		nd, err := node.New(node.Config{DIMMs: 8, PerDIMMBytes: 8 << 20})
		if err != nil {
			t.Fatal(err)
		}
		d, err := runtime.DeployConcurrent(m, nd, 8, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		deps = append(deps, d)
	}
	s, err := New(Config{}, deps...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(4))
	snap := append([]float32(nil), m.Embedding.Tables[0].Row(3)...)
	g := randGrads(rng, 2, cfg.EmbDim)
	if err := s.Update([]runtime.TableUpdate{{Table: 0, Rows: []int{3, 3}, Grads: g}}); err != nil {
		t.Fatal(err)
	}
	// Golden absorbed the two gradient rows exactly once each.
	for k := range snap {
		want := snap[k] + g.At(0, k) + g.At(1, k)
		if m.Embedding.Tables[0].Row(3)[k] != want {
			t.Fatalf("golden lane %d: %v != %v (double write-through?)", k,
				m.Embedding.Tables[0].Row(3)[k], want)
		}
	}
	// Both replicas' node tables now serve the updated row; every embed
	// against either replica must match the golden.
	gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, 5)
	for i := 0; i < 4; i++ { // round-robins across both replicas
		rows := gen.Batch(cfg.Tables, 1, cfg.Reduction)
		rows[0] = []int{3, 9}
		got, err := s.Embed(rows, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := deps[0].GoldenEmbedding(rows, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(got, want) {
			t.Fatalf("embed %d differs from golden after replicated update", i)
		}
	}
}

// TestGoldenMixedTrafficConcurrent hammers the server with concurrent
// readers and per-table updaters, then verifies the quiesced state matches
// the golden model bit-for-bit (per-table update order is deterministic
// because each table has exactly one updater).
func TestGoldenMixedTrafficConcurrent(t *testing.T) {
	cfg := testConfig(2, 2, 128, false, isa.RAdd)
	s, err := New(Config{Workers: 2, MaxDelay: 50 * time.Microsecond},
		newDeployment(t, cfg, 16, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, 6)
	genMu := sync.Mutex{}

	steps := 8
	if testing.Short() {
		steps = 4
	}
	var wg sync.WaitGroup
	errs := make([]error, cfg.Tables+2)
	for tb := 0; tb < cfg.Tables; tb++ {
		wg.Add(1)
		go func(tb int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(10 + tb)))
			for i := 0; i < steps; i++ {
				rows := []int{rng.Intn(cfg.TableRows), rng.Intn(cfg.TableRows)}
				if err := s.Update([]runtime.TableUpdate{{Table: tb, Rows: rows, Grads: randGrads(rng, 2, cfg.EmbDim)}}); err != nil {
					errs[tb] = err
					return
				}
			}
		}(tb)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < steps; i++ {
				genMu.Lock()
				rows := gen.Batch(cfg.Tables, 2, cfg.Reduction)
				genMu.Unlock()
				if _, err := s.Embed(rows, 2); err != nil {
					errs[cfg.Tables+r] = err
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	// Quiesced: node tables and golden tables must agree bit-for-bit.
	genMu.Lock()
	rows := gen.Batch(cfg.Tables, 4, cfg.Reduction)
	genMu.Unlock()
	got, err := s.Embed(rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.deps[0].GoldenEmbedding(rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(got, want) {
		t.Fatal("quiesced embedding differs from golden after mixed traffic")
	}
}

// TestCloseDrainsPendingMixedTraffic is the regression test for the Close
// drain guarantee: a Close racing a burst of reads and updates must never
// drop a queued request — every submitter gets exactly one reply (a result
// or a clean "server is closed" error), and every Close call returns only
// after the drain finished.
func TestCloseDrainsPendingMixedTraffic(t *testing.T) {
	cfg := testConfig(2, 2, 128, false, isa.RAdd)
	rounds := 6
	if testing.Short() {
		rounds = 2
	}
	for round := 0; round < rounds; round++ {
		s, err := New(Config{Workers: 2, MaxDelay: time.Millisecond},
			newDeployment(t, cfg, 16, 2, 4))
		if err != nil {
			t.Fatal(err)
		}
		gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, int64(round))

		const clients = 16
		replied := make(chan error, clients)
		var wg sync.WaitGroup
		for i := 0; i < clients; i++ {
			rows := gen.Batch(cfg.Tables, 1, cfg.Reduction)
			wg.Add(1)
			go func(i int, rows [][]int) {
				defer wg.Done()
				if i%3 == 0 {
					g := tensor.New(1, cfg.EmbDim)
					g.Fill(0.5)
					replied <- s.Update([]runtime.TableUpdate{{Table: 0, Rows: []int{i}, Grads: g}})
					return
				}
				_, err := s.Embed(rows, 1)
				replied <- err
			}(i, rows)
		}
		// Race Close against the burst from two goroutines: both must block
		// until the drain completes.
		for c := 0; c < 2; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := s.Close(); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
		close(replied)
		n := 0
		for err := range replied {
			n++
			if err != nil && err.Error() != "serve: server is closed" {
				t.Fatalf("round %d: unexpected error: %v", round, err)
			}
		}
		if n != clients {
			t.Fatalf("round %d: %d/%d clients got a reply", round, n, clients)
		}
		// After Close returned, accepted requests are reflected in metrics:
		// accepted reads + updates + failures must equal replies that were
		// not fast-fail rejections. (Sanity: counters are monotonic and the
		// server is quiesced, so a drop would show as a missing reply above.)
		_ = s.Metrics()
	}
}
