package serve

import (
	"sync"
	"testing"
	"time"

	"tensordimm/internal/isa"
	"tensordimm/internal/node"
	"tensordimm/internal/recsys"
	"tensordimm/internal/runtime"
	"tensordimm/internal/tensor"
	"tensordimm/internal/workload"
)

// testConfig returns a test-sized model: mean pooling (YouTube-class), dim
// 128 = one stripe on an 8-DIMM node.
func testConfig(tables, reduction, dim int, mean bool, op isa.ReduceOp) recsys.Config {
	return recsys.Config{
		Name: "serve-test", Tables: tables, Reduction: reduction, FCLayers: 2,
		EmbDim: dim, TableRows: 300, Hidden: []int{16, 8},
		Op: op, Mean: mean,
	}
}

func newDeployment(t *testing.T, cfg recsys.Config, maxBatch, slots, lanes int) *runtime.Deployment {
	t.Helper()
	m, err := recsys.Build(cfg, 77)
	if err != nil {
		t.Fatal(err)
	}
	nd, err := node.New(node.Config{DIMMs: 8, PerDIMMBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	d, err := runtime.DeployConcurrent(m, nd, maxBatch, slots, lanes)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("want error for zero deployments")
	}
	cfg := testConfig(2, 5, 128, true, isa.RAdd)
	d := newDeployment(t, cfg, 8, 1, 1)
	if _, err := New(Config{MaxBatch: 16}, d); err == nil {
		t.Fatal("want error for MaxBatch beyond deployment capacity")
	}
	other := testConfig(3, 5, 128, true, isa.RAdd) // different table count
	d2 := newDeployment(t, other, 8, 1, 1)
	if _, err := New(Config{}, d, d2); err == nil {
		t.Fatal("want error for mismatched deployment geometries")
	}
	s, err := New(Config{}, d)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.cfg.MaxBatch != 8 || s.cfg.Workers != 1 {
		t.Fatalf("defaults: %+v", s.cfg)
	}
}

func TestSubmitValidation(t *testing.T) {
	cfg := testConfig(2, 5, 128, true, isa.RAdd)
	s, err := New(Config{}, newDeployment(t, cfg, 8, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, 1)
	good := gen.Batch(cfg.Tables, 1, cfg.Reduction)
	if _, err := s.Infer(good, 0); err == nil {
		t.Fatal("want batch range error")
	}
	if _, err := s.Infer(good, 9); err == nil {
		t.Fatal("want batch > MaxBatch error")
	}
	if _, err := s.Infer(good[:1], 1); err == nil {
		t.Fatal("want table count error")
	}
	if _, err := s.Infer([][]int{{1}, {2}}, 1); err == nil {
		t.Fatal("want row count error")
	}
	bad := gen.Batch(cfg.Tables, 1, cfg.Reduction)
	bad[1][0] = cfg.TableRows // out of range
	if _, err := s.Infer(bad, 1); err == nil {
		t.Fatal("want row range error")
	}
	// A valid request still succeeds after the rejected ones.
	if _, err := s.Infer(good, 1); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentClientsMatchGolden is the core serving guarantee: many
// concurrent clients, merged arbitrarily by the batcher, each get results
// bitwise-identical to the golden (unbatched, pure-software) model. Run
// with -race.
func TestConcurrentClientsMatchGolden(t *testing.T) {
	cfg := testConfig(3, 4, 128, true, isa.RAdd)
	dep := newDeployment(t, cfg, 16, 2, 2*cfg.Tables)
	s, err := New(Config{MaxBatch: 16, MaxDelay: 2 * time.Millisecond}, dep)
	if err != nil {
		t.Fatal(err)
	}
	const clients, iters = 8, 6
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen, _ := workload.NewGenerator(cfg.TableRows, workload.Zipfian, int64(c)*13+1)
			for i := 0; i < iters; i++ {
				batch := 1 + (c+i)%3
				rows := gen.Batch(cfg.Tables, batch, cfg.Reduction)
				got, err := s.Embed(rows, batch)
				if err != nil {
					errs[c] = err
					return
				}
				want, err := dep.GoldenEmbedding(rows, batch)
				if err != nil {
					errs[c] = err
					return
				}
				if !tensor.Equal(got, want) {
					errs[c] = errMismatch(c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Requests != clients*iters {
		t.Fatalf("completed %d requests, want %d", m.Requests, clients*iters)
	}
	if m.TotalLatency.Count != clients*iters || m.TotalLatency.P99 <= 0 {
		t.Fatalf("latency accounting: %+v", m.TotalLatency)
	}
}

type errMismatch2 struct{ c, i int }

func (e errMismatch2) Error() string {
	return "client result differs from golden model"
}

func errMismatch(c, i int) error { return errMismatch2{c, i} }

// TestInferMatchesUnbatchedModel checks the full pipeline (embedding + DNN)
// against the pure-software model under concurrency.
func TestInferMatchesUnbatchedModel(t *testing.T) {
	cfg := testConfig(2, 2, 128, false, isa.RMul) // NCF-class pairwise path
	dep := newDeployment(t, cfg, 8, 2, 4)
	s, err := New(Config{MaxDelay: time.Millisecond}, dep)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	const clients = 8
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, int64(c)+7)
			for i := 0; i < 4; i++ {
				rows := gen.Batch(cfg.Tables, 2, cfg.Reduction)
				got, err := s.Infer(rows, 2)
				if err != nil {
					errs[c] = err
					return
				}
				want, err := dep.Model.Infer(rows, 2)
				if err != nil {
					errs[c] = err
					return
				}
				if !tensor.Equal(got, want) {
					errs[c] = errMismatch(c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestBatchingCoalesces floods a single-worker server and verifies the
// batcher actually merges: far fewer executions than requests.
func TestBatchingCoalesces(t *testing.T) {
	cfg := testConfig(2, 5, 128, true, isa.RAdd)
	dep := newDeployment(t, cfg, 32, 1, cfg.Tables)
	s, err := New(Config{MaxBatch: 32, MaxDelay: 20 * time.Millisecond, Workers: 1}, dep)
	if err != nil {
		t.Fatal(err)
	}
	const requests = 64
	var wg sync.WaitGroup
	gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, 3)
	rowSets := make([][][]int, requests)
	for i := range rowSets {
		rowSets[i] = gen.Batch(cfg.Tables, 1, cfg.Reduction)
	}
	errs := make([]error, requests)
	for i := 0; i < requests; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Infer(rowSets[i], 1)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.Requests != requests || m.Samples != requests {
		t.Fatalf("metrics: %+v", m)
	}
	if m.Batches >= requests/2 {
		t.Fatalf("micro-batching did not coalesce: %d executions for %d requests", m.Batches, requests)
	}
	if m.MeanBatch <= 1.5 {
		t.Fatalf("mean batch %.2f, want > 1.5", m.MeanBatch)
	}
}

// TestMultipleDeployments serves from two replicas and checks both get
// traffic and results stay golden.
func TestMultipleDeployments(t *testing.T) {
	cfg := testConfig(2, 5, 128, true, isa.RAdd)
	d1 := newDeployment(t, cfg, 8, 1, cfg.Tables)
	d2 := newDeployment(t, cfg, 8, 1, cfg.Tables)
	s, err := New(Config{MaxDelay: time.Millisecond}, d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, 9)
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rows := gen2(gen, cfg)
			got, err := s.Embed(rows, 1)
			if err != nil {
				errs[i] = err
				return
			}
			want, _ := d1.GoldenEmbedding(rows, 1)
			if !tensor.Equal(got, want) {
				errs[i] = errMismatch(i, 0)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// gen2 draws one single-sample request under the generator's mutex-free
// sequential API (the generator itself is not safe for concurrent use, so
// tests draw up front or serialize).
var genMu sync.Mutex

func gen2(g *workload.Generator, cfg recsys.Config) [][]int {
	genMu.Lock()
	defer genMu.Unlock()
	return g.Batch(cfg.Tables, 1, cfg.Reduction)
}

func TestCloseSemantics(t *testing.T) {
	cfg := testConfig(1, 1, 128, false, isa.RAdd)
	dep := newDeployment(t, cfg, 4, 1, 1)
	s, err := New(Config{}, dep)
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, 2)
	rows := gen.Batch(cfg.Tables, 1, cfg.Reduction)
	if _, err := s.Infer(rows, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := s.Infer(rows, 1); err == nil {
		t.Fatal("want error after close")
	}
	// Close released the deployment's pool memory.
	if dep.Node.AllocCount() != 0 {
		t.Fatalf("%d live allocations after close", dep.Node.AllocCount())
	}
}

func TestNewRejectsNegativeConfig(t *testing.T) {
	cfg := testConfig(1, 1, 128, false, isa.RAdd)
	d := newDeployment(t, cfg, 4, 1, 1)
	for _, bad := range []Config{
		{Workers: -1},
		{QueueDepth: -1},
		{MaxDelay: -time.Millisecond},
		{MaxBatch: -1},
	} {
		if _, err := New(bad, d); err == nil {
			t.Fatalf("config %+v: want error, got server", bad)
		}
	}
	// The documented zero-value behavior: MaxDelay 0 selects the 200us
	// default rather than an always-expired batching timer.
	s, err := New(Config{}, d)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.cfg.MaxDelay != 200*time.Microsecond {
		t.Fatalf("zero MaxDelay defaulted to %v, want 200us", s.cfg.MaxDelay)
	}
}
