package serve

import (
	"testing"

	"tensordimm/internal/isa"
)

// TestConfigRejectsQueueShallowerThanWorkers pins the pooled-buffer
// invariant documented on Config: the batch freelist is sized for
// QueueDepth queued plus Workers executing batches, so a queue shallower
// than the worker pool is rejected — both when set explicitly and when
// Workers is defaulted from the deployments' slots.
func TestConfigRejectsQueueShallowerThanWorkers(t *testing.T) {
	cfg := testConfig(2, 2, 128, false, isa.RAdd)
	d := newDeployment(t, cfg, 8, 2, 2)
	defer d.Release()

	if _, err := New(Config{Workers: 4, QueueDepth: 2}, d); err == nil {
		t.Fatal("want error for QueueDepth < Workers")
	}
	// Workers defaulted from slots (2) with an explicit QueueDepth of 1
	// must be rejected by the post-default check.
	if _, err := New(Config{QueueDepth: 1}, d); err == nil {
		t.Fatal("want error for defaulted Workers exceeding QueueDepth")
	}
	// Equal is allowed: one queue slot per worker.
	s, err := New(Config{Workers: 2, QueueDepth: 2}, d)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConfigDefaultQueueDepthTracksWorkers pins that a defaulted
// QueueDepth grows with a worker pool larger than 256 instead of
// rejecting it: a caller asking only for more workers must not trip the
// pooled-buffer invariant through the default.
func TestConfigDefaultQueueDepthTracksWorkers(t *testing.T) {
	cfg := testConfig(2, 2, 128, false, isa.RAdd)
	d := newDeployment(t, cfg, 8, 2, 2)
	defer d.Release()

	s, err := New(Config{Workers: 300}, d)
	if err != nil {
		t.Fatalf("Workers 300 with defaulted QueueDepth rejected: %v", err)
	}
	if s.cfg.QueueDepth != 300 {
		t.Fatalf("defaulted QueueDepth = %d, want 300 (= Workers)", s.cfg.QueueDepth)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
