package serve_test

import (
	"testing"

	"tensordimm/internal/benchkit"
)

// BenchmarkServeThroughput drives the micro-batching server with
// concurrent clients over the zero-allocation EmbedInto path; with
// -benchmem it pins 0 allocs/op in steady state (the CI bench-smoke step
// gates on it via cmd/benchjson). Extra metrics: req/s and p99 latency.
func BenchmarkServeThroughput(b *testing.B) { benchkit.ServeThroughput(b) }
