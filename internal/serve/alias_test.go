package serve

// Buffer-reuse aliasing tests: the serving path pools requests, merged
// batches and worker scratch, and EmbedInto writes into caller buffers. A
// put-before-last-read bug in any of those pools would surface as a result
// buffer changing after its request returned. These tests run mixed
// Embed/EmbedInto/Update traffic concurrently (run them under -race) and
// assert every returned result is still bit-identical to the snapshot
// taken at return time after all traffic has drained.

import (
	"sync"
	"testing"

	"tensordimm/internal/isa"
	"tensordimm/internal/runtime"
	"tensordimm/internal/tensor"
	"tensordimm/internal/workload"
)

func TestResultsImmutableUnderConcurrentEmbedUpdate(t *testing.T) {
	cfg := testConfig(2, 2, 128, false, isa.RAdd)
	d := newDeployment(t, cfg, 16, 2, 4)
	s, err := New(Config{MaxBatch: 16, Workers: 2}, d)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const (
		readers  = 4
		updaters = 2
		rounds   = 30
		batch    = 2
	)
	type held struct {
		got  *tensor.Tensor
		want *tensor.Tensor // deep copy taken the moment got was returned
	}
	results := make([][]held, readers)
	var wg sync.WaitGroup
	errCh := make(chan error, readers+updaters)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, int64(g))
			for i := 0; i < rounds; i++ {
				rows := gen.Batch(cfg.Tables, batch, cfg.Reduction)
				got, err := s.Embed(rows, batch)
				if err != nil {
					errCh <- err
					return
				}
				results[g] = append(results[g], held{got: got, want: got.Clone()})
			}
		}(g)
	}
	for u := 0; u < updaters; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, int64(100+u))
			for i := 0; i < rounds; i++ {
				grads := tensor.New(3, cfg.EmbDim)
				grads.Fill(float32(u+1) * 0.25)
				up := runtime.TableUpdate{Table: u % cfg.Tables, Rows: gen.Indices(3), Grads: grads}
				if err := s.Update([]runtime.TableUpdate{up}); err != nil {
					errCh <- err
					return
				}
			}
		}(u)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Every result must still match the snapshot taken at return time: the
	// pools have been recycled through rounds of later traffic, so any
	// put-before-last-read aliasing would have scribbled on one by now.
	for g, rs := range results {
		for i, h := range rs {
			if !tensor.Equal(h.got, h.want) {
				t.Fatalf("reader %d result %d mutated after return", g, i)
			}
		}
	}
}

func TestEmbedIntoBufferStableAfterReturn(t *testing.T) {
	cfg := testConfig(2, 2, 128, false, isa.RAdd)
	d := newDeployment(t, cfg, 16, 2, 4)
	s, err := New(Config{MaxBatch: 16, Workers: 2}, d)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const batch = 2
	gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, 5)
	rows := gen.Batch(cfg.Tables, batch, cfg.Reduction)
	dst, err := s.EmbedInto(nil, rows, batch)
	if err != nil {
		t.Fatal(err)
	}
	snap := append([]float32(nil), dst...)

	// Flood the server with other traffic on other buffers; dst must not
	// be written again (the server may not retain caller buffers).
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, int64(40+g))
			var buf []float32
			for i := 0; i < 50; i++ {
				b, err := s.EmbedInto(buf, gen.Batch(cfg.Tables, batch, cfg.Reduction), batch)
				if err != nil {
					t.Error(err)
					return
				}
				buf = b
			}
		}(g)
	}
	wg.Wait()
	for i := range dst {
		if dst[i] != snap[i] {
			t.Fatalf("dst[%d] changed after return: %v != %v", i, dst[i], snap[i])
		}
	}
}
