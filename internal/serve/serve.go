// Package serve turns a deployed recommender model into a concurrent
// inference server: the serving runtime a TensorNode-equipped host would run
// in production.
//
// The paper's runtime (Section 4.4) executes one embedding batch at a time.
// Real recommendation traffic arrives as many small independent requests
// (Facebook reports deployed batch sizes of 1-100), and the TensorNode's
// aggregate bandwidth is only realized when enough lookups are in flight —
// the observation RecNMP (Ke et al., 2020) quantifies for production
// traffic. The server closes that gap with two mechanisms:
//
//   - dynamic micro-batching: requests against the model are coalesced into
//     one merged embedding execution, up to MaxBatch samples or until the
//     oldest waiting request has aged MaxDelay, whichever comes first. The
//     per-sample GATHER/REDUCE semantics are positional, so a merged batch
//     is bit-identical to running each request alone;
//
//   - a worker pool over the deployment's execution slots: each worker runs
//     a merged batch whose per-table programs fan out across the
//     deployment's scratch lanes (tables stripe over disjoint rank
//     partitions, so table-level parallelism is architecturally free).
//
// The server also accepts online embedding updates (Update) through the
// same queue: within a merged batch, member updates apply — to every
// replica, in arrival order — before the merged embedding executes, so an
// update never loses to a read it was coalesced with on the same rows.
//
// Every request's queue and total latency is recorded; Metrics reports
// p50/p95/p99 percentiles plus sustained throughput, the numbers a serving
// SLO is written against.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"tensordimm/internal/recsys"
	"tensordimm/internal/runtime"
	"tensordimm/internal/stats"
	"tensordimm/internal/telemetry"
	"tensordimm/internal/tensor"
)

// Hop indices of the serve tracer: queue wait (submission to execution
// start) and execution (merged-batch run to reply).
const (
	hopQueue = iota
	hopExec
)

// Config tunes the serving runtime. The zero value of every field selects a
// sensible default at New; negative values are invalid and rejected by New
// (they are never silently replaced by a default, so a sign bug in a caller
// surfaces as an error instead of a 200us deadline).
//
// Pooled-buffer invariant. The server recycles its per-request and
// per-batch objects and gives every worker goroutine one private scratch
// (merged index lists and embedding read-back buffer, sized by MaxBatch).
// That is safe because (a) a merged batch is owned by exactly one worker
// from dispatch until its last member reply is sent, and (b) the batcher
// caps a batch's member count at QueueDepth, which sizes the pooled member
// arrays. New therefore rejects QueueDepth < Workers: a submission queue
// shallower than the worker pool could not have fed every executing worker
// from distinct queue slots, so the batch freelist sizing — Workers
// executing plus QueueDepth queued — would no longer bound how many batches
// are simultaneously live, and a recycled batch could alias one still being
// drained. See ARCHITECTURE.md, "Memory discipline".
type Config struct {
	// MaxBatch caps how many samples one merged embedding execution may
	// carry. Zero defaults to the smallest MaxBatch of the deployments;
	// negative is invalid.
	MaxBatch int
	// MaxDelay bounds how long the oldest request of a forming batch waits
	// for co-riders before the batch is dispatched anyway. Zero defaults to
	// 200us — far below a recommender's latency SLO, long enough to
	// coalesce under load. Negative is invalid: a negative deadline would
	// make every timer fire immediately, silently disabling micro-batching.
	MaxDelay time.Duration
	// Workers is the number of merged batches executed concurrently. Zero
	// defaults to the total execution slots across the deployments;
	// negative is invalid.
	Workers int
	// QueueDepth is the submission queue capacity; submissions beyond it
	// block. Zero defaults to 256 or Workers, whichever is larger (the
	// pooled batch buffers require QueueDepth >= Workers, so the default
	// must track a large worker pool rather than reject it); negative is
	// invalid.
	QueueDepth int
}

// validate rejects negative settings. Zero values are legal (they select
// defaults in withDefaults); anything below zero is a caller bug.
func (c Config) validate() error {
	if c.MaxBatch < 0 {
		return fmt.Errorf("serve: MaxBatch %d is negative (use 0 for the default)", c.MaxBatch)
	}
	if c.MaxDelay < 0 {
		return fmt.Errorf("serve: MaxDelay %v is negative (use 0 for the 200us default)", c.MaxDelay)
	}
	if c.Workers < 0 {
		return fmt.Errorf("serve: Workers %d is negative (use 0 for the default)", c.Workers)
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("serve: QueueDepth %d is negative (use 0 for the default)", c.QueueDepth)
	}
	// QueueDepth >= Workers is enforced in New after defaulting, where both
	// values are final.
	return nil
}

// withDefaults fills every zero field with its documented default. It must
// run after validate: it only ever replaces exact zeros, so a negative
// value would otherwise leak through to the batcher's timer.
func (c Config) withDefaults(deps []*runtime.Deployment) Config {
	if c.MaxBatch == 0 {
		c.MaxBatch = deps[0].MaxBatch()
		for _, d := range deps[1:] {
			if d.MaxBatch() < c.MaxBatch {
				c.MaxBatch = d.MaxBatch()
			}
		}
	}
	if c.MaxDelay == 0 {
		c.MaxDelay = 200 * time.Microsecond
	}
	if c.Workers == 0 {
		for _, d := range deps {
			c.Workers += d.Slots()
		}
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 256
		if c.Workers > c.QueueDepth {
			c.QueueDepth = c.Workers
		}
	}
	return c
}

// request is one submitted inference or update, pending or in flight.
// Updates carry a non-nil updates slice and contribute zero samples to a
// merged batch; reads carry rows/batch. Embedding reads carry dst, the
// caller-provided buffer the worker writes the result into; inference
// reads leave dst nil and receive a fresh tensor. Requests are pooled: the
// submitter puts its request back only after reading the reply, so a
// pooled request is never aliased by two in-flight submissions.
type request struct {
	rows    [][]int
	batch   int
	dst     []float32 // embedding destination; nil for inference reads
	infer   bool      // run the DNN stage on the merged embedding
	updates []runtime.TableUpdate
	enq     time.Time
	span    telemetry.Span // per-hop trace slot, recycled with the request
	done    chan result
}

type result struct {
	out *tensor.Tensor
	err error
}

// reqPool recycles request objects (with their reply channels) across
// submissions; the steady-state submit path allocates nothing.
var reqPool = sync.Pool{New: func() any { return &request{done: make(chan result, 1)} }}

// getRequest fetches a pooled request stamped with the submission time.
func getRequest() *request {
	r := reqPool.Get().(*request)
	r.enq = time.Now()
	return r
}

// putRequest clears a request's references and recycles it. Only the
// submitter calls it, after the reply has been received — the worker never
// touches a request after sending its result.
func putRequest(r *request) {
	r.rows, r.dst, r.updates, r.infer, r.batch = nil, nil, nil, false, 0
	reqPool.Put(r)
}

// mergedBatch is a coalesced group of requests dispatched as one execution.
// Batches are pooled per server; the owning worker recycles the batch after
// the last member reply is sent (see the Config invariant).
type mergedBatch struct {
	reqs  []*request
	total int // sum of request batches
}

// workerScratch is one worker goroutine's private execution scratch: the
// partition of a batch into updates and reads, the merged per-table index
// lists, and the embedding read-back buffer. Sized once from the server
// geometry, reused for every batch the worker executes.
type workerScratch struct {
	ups    []*request
	reads  []*request
	merged [][]int
	emb    []float32
}

// Server owns one or more Deployments of the same model (replicas across
// TensorNode pools) and serves concurrent inference requests against them
// with dynamic micro-batching. Create with New, submit with Infer or Embed
// from any number of goroutines, and Close when done — Close releases the
// owned deployments.
type Server struct {
	cfg  Config
	deps []*runtime.Deployment

	tables, dim, reduction int // model geometry, cached for the hot path
	width                  int // tables*dim, the embedding row width

	// mbPool recycles mergedBatch objects between the batcher and the
	// workers; see the Config invariant for why its sizing is safe.
	mbPool sync.Pool

	mu       sync.Mutex
	closed   bool
	inflight sync.WaitGroup // submits accepted but not yet enqueued
	queue    chan *request

	dispatch  chan *mergedBatch
	batcherWG sync.WaitGroup
	workerWG  sync.WaitGroup

	// closeDone is closed once the first Close has fully drained and
	// released; every Close call waits on it, so no caller returns while
	// queued requests are still pending (see Close).
	closeOnce sync.Once
	closeDone chan struct{}
	closeErr  error

	// upMu serializes update application across workers: an update fans out
	// to every replica, and the fan-out must be atomic so all replicas
	// accumulate updates in one global order and stay bit-identical.
	upMu sync.Mutex

	// tblMu guards table memory against Restore: merged-batch gathers hold
	// it shared, Restore holds it exclusively. Updates need no share — their
	// scatter-adds ride the per-DIMM execute queue and serialize with
	// gathers there — but Restore writes table rows directly (WriteFloats
	// bypasses the queue by design; see Restore) and would otherwise tear
	// rows under a concurrent read from a second, read-only router.
	tblMu sync.RWMutex

	started time.Time
	rr      atomic.Uint64 // round-robin deployment cursor

	requests atomic.Uint64
	samples  atomic.Uint64
	batches  atomic.Uint64
	failures atomic.Uint64
	updates  atomic.Uint64
	upRows   atomic.Uint64
	queueLat stats.Latency
	totalLat stats.Latency

	// Telemetry plane, nil until Instrument wires the server into a
	// registry. All uses are nil-guarded so an uninstrumented server pays
	// a single pointer check per site.
	tQueue *telemetry.Histogram
	tTotal *telemetry.Histogram
	tracer *telemetry.Tracer
}

// Instrument registers the server's series on a telemetry registry:
// func-backed counters over the existing atomics, queue/total latency
// histograms, and a request tracer with queue and exec hops. The labels
// distinguish multiple servers on one registry (e.g. shard="0"). Call
// once, before the traffic it should observe — registration is not
// synchronized against the hot path.
func (s *Server) Instrument(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.Counter("tensordimm_serve_requests_total", "read requests completed successfully", s.requests.Load, labels...)
	reg.Counter("tensordimm_serve_samples_total", "samples served across completed reads", s.samples.Load, labels...)
	reg.Counter("tensordimm_serve_batches_total", "merged batches executed", s.batches.Load, labels...)
	reg.Counter("tensordimm_serve_failures_total", "requests failed", s.failures.Load, labels...)
	reg.Counter("tensordimm_serve_updates_total", "update requests applied", s.updates.Load, labels...)
	reg.Counter("tensordimm_serve_update_rows_total", "embedding rows updated", s.upRows.Load, labels...)
	s.tQueue = reg.Histogram("tensordimm_serve_queue_seconds", "submission-to-execution queue wait", labels...)
	s.tTotal = reg.Histogram("tensordimm_serve_total_seconds", "submission-to-reply request latency", labels...)
	s.tracer = reg.Tracer("serve", 0, []string{"queue", "exec"}, labels...)
}

// New validates the deployments (same model geometry everywhere, batching
// cap within every deployment's capacity), starts the batcher and worker
// goroutines, and returns a serving handle.
func New(cfg Config, deps ...*runtime.Deployment) (*Server, error) {
	if len(deps) == 0 {
		return nil, fmt.Errorf("serve: at least one deployment required")
	}
	ref := deps[0].Model.Cfg
	for i, d := range deps[1:] {
		c := d.Model.Cfg
		if c.Tables != ref.Tables || c.Reduction != ref.Reduction ||
			c.EmbDim != ref.EmbDim || c.TableRows != ref.TableRows ||
			c.Mean != ref.Mean || c.Op != ref.Op {
			return nil, fmt.Errorf("serve: deployment %d serves a different model geometry than deployment 0", i+1)
		}
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults(deps)
	if cfg.MaxBatch <= 0 {
		return nil, fmt.Errorf("serve: MaxBatch must be positive")
	}
	for i, d := range deps {
		if d.MaxBatch() < cfg.MaxBatch {
			return nil, fmt.Errorf("serve: MaxBatch %d exceeds deployment %d's capacity %d",
				cfg.MaxBatch, i, d.MaxBatch())
		}
	}
	if cfg.QueueDepth < cfg.Workers {
		return nil, fmt.Errorf("serve: QueueDepth %d is below Workers %d; the pooled batch buffers are sized "+
			"for QueueDepth queued plus Workers executing batches (see Config)", cfg.QueueDepth, cfg.Workers)
	}
	s := &Server{
		cfg:       cfg,
		deps:      deps,
		tables:    ref.Tables,
		dim:       ref.EmbDim,
		reduction: ref.Reduction,
		width:     ref.Tables * ref.EmbDim,
		queue:     make(chan *request, cfg.QueueDepth),
		dispatch:  make(chan *mergedBatch, cfg.Workers),
		closeDone: make(chan struct{}),
		started:   time.Now(),
	}
	s.mbPool.New = func() any {
		return &mergedBatch{reqs: make([]*request, 0, cfg.QueueDepth)}
	}
	s.batcherWG.Add(1)
	go s.batcher()
	for w := 0; w < cfg.Workers; w++ {
		s.workerWG.Add(1)
		go s.worker()
	}
	return s, nil
}

// Infer runs a full inference — near-memory embedding plus the DNN stage —
// for one request of `batch` samples, blocking until the result is ready.
// perTableRows holds batch x reduction row indices per table, exactly as
// Deployment.Infer takes them. Safe for concurrent use.
func (s *Server) Infer(perTableRows [][]int, batch int) (*tensor.Tensor, error) {
	if err := s.validateRead(perTableRows, batch); err != nil {
		return nil, err
	}
	req := getRequest()
	req.rows, req.batch, req.infer = perTableRows, batch, true
	return s.enqueue(req)
}

// Embed runs only the embedding stage, returning the pooled [batch,
// tables*dim] tensor. The output is bit-identical to
// Deployment.GoldenEmbedding regardless of how the request was batched with
// others. Safe for concurrent use.
func (s *Server) Embed(perTableRows [][]int, batch int) (*tensor.Tensor, error) {
	dst, err := s.EmbedInto(nil, perTableRows, batch)
	if err != nil {
		return nil, err
	}
	return tensor.FromSlice(dst, batch, s.width)
}

// EmbedInto is Embed writing the pooled [batch, tables*dim] values
// row-major into dst, which is grown if its capacity is insufficient and
// returned re-sliced to exactly batch*tables*dim. A caller that reuses the
// returned slice across requests performs zero heap allocations in steady
// state; the server writes to dst only between submission and return and
// never retains it. Safe for concurrent use (with distinct dst buffers).
func (s *Server) EmbedInto(dst []float32, perTableRows [][]int, batch int) ([]float32, error) {
	if err := s.validateRead(perTableRows, batch); err != nil {
		return nil, err
	}
	need := batch * s.width
	if cap(dst) < need {
		dst = make([]float32, need)
	}
	dst = dst[:need]
	req := getRequest()
	req.rows, req.batch, req.dst = perTableRows, batch, dst
	if _, err := s.enqueue(req); err != nil {
		return nil, err
	}
	return dst, nil
}

// validateRead checks one read submission against the server geometry.
func (s *Server) validateRead(perTableRows [][]int, batch int) error {
	cfg := s.deps[0].Model.Cfg
	if batch <= 0 || batch > s.cfg.MaxBatch {
		return fmt.Errorf("serve: batch %d out of range [1, %d]", batch, s.cfg.MaxBatch)
	}
	if len(perTableRows) != s.tables {
		return fmt.Errorf("serve: %d index lists for %d tables", len(perTableRows), s.tables)
	}
	for t, rows := range perTableRows {
		if len(rows) != batch*s.reduction {
			return fmt.Errorf("serve: table %d: %d rows for batch %d x reduction %d",
				t, len(rows), batch, s.reduction)
		}
		for _, r := range rows {
			if r < 0 || r >= cfg.TableRows {
				return fmt.Errorf("serve: table %d: row index %d out of range [0, %d)", t, r, cfg.TableRows)
			}
		}
	}
	return nil
}

// Geometry reports the served model's shape and limits: table count,
// pooling reduction, embedding dimension, table height, and the per-request
// batch cap. The network serving plane announces exactly these numbers in
// its wire handshake, so a remote client can validate and size every
// request without out-of-band configuration.
func (s *Server) Geometry() (tables, reduction, dim, tableRows, maxBatch int) {
	return s.tables, s.reduction, s.dim, s.deps[0].Model.Cfg.TableRows, s.cfg.MaxBatch
}

// Update submits a batch of embedding-table gradient updates through the
// same micro-batching queue as reads. Within a merged batch, updates apply
// before the merged embedding executes, so an update never loses to a read
// it was coalesced with on the same rows; across batches, a caller that
// waits for Update to return is guaranteed every later read observes the
// update. The update is applied to every replica deployment (write-through
// to each distinct golden model exactly once), so replicas stay
// bit-identical. Safe for concurrent use.
func (s *Server) Update(ups []runtime.TableUpdate) error {
	cfg := s.deps[0].Model.Cfg
	if len(ups) == 0 {
		return fmt.Errorf("serve: empty update batch")
	}
	for i, up := range ups {
		if up.Table < 0 || up.Table >= cfg.Tables {
			return fmt.Errorf("serve: update %d: table %d out of range [0, %d)", i, up.Table, cfg.Tables)
		}
		if up.Grads == nil || up.Grads.Rank() != 2 || up.Grads.Dim(0) != len(up.Rows) || up.Grads.Dim(1) != cfg.EmbDim {
			return fmt.Errorf("serve: update %d: gradient shape for %d rows of dim %d", i, len(up.Rows), cfg.EmbDim)
		}
		if len(up.Rows) > s.cfg.MaxBatch*cfg.Reduction {
			return fmt.Errorf("serve: update %d: %d rows exceed the %d-row update cap",
				i, len(up.Rows), s.cfg.MaxBatch*cfg.Reduction)
		}
		for _, r := range up.Rows {
			if r < 0 || r >= cfg.TableRows {
				return fmt.Errorf("serve: update %d: row index %d out of range [0, %d)", i, r, cfg.TableRows)
			}
		}
	}
	req := getRequest()
	req.updates = ups
	_, err := s.enqueue(req)
	return err
}

// enqueue hands one request to the batcher, blocks for its result, and
// recycles the request.
func (s *Server) enqueue(req *request) (*tensor.Tensor, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		putRequest(req)
		return nil, fmt.Errorf("serve: server is closed")
	}
	// Holding the lock for the send would serialize submitters; instead the
	// closed flag is checked first and Close closes the queue only after
	// every in-flight submit has enqueued (see Close).
	s.inflight.Add(1)
	s.mu.Unlock()
	s.queue <- req
	s.inflight.Done()
	r := <-req.done
	putRequest(req)
	return r.out, r.err
}

// batcher coalesces submissions into merged batches: a batch closes when it
// reaches MaxBatch samples, when the oldest member has waited MaxDelay, or
// when the queue shuts down.
func (s *Server) batcher() {
	defer s.batcherWG.Done()
	defer close(s.dispatch)
	// One timer serves every batch (armed per batch with Reset). A stale
	// fire that slips between Stop and the drain below only dispatches the
	// next batch early — never incorrectly.
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	defer timer.Stop()
	var pending *request
	for {
		first := pending
		pending = nil
		if first == nil {
			r, ok := <-s.queue
			if !ok {
				return
			}
			first = r
		}
		mb := s.mbPool.Get().(*mergedBatch)
		mb.reqs = append(mb.reqs[:0], first)
		mb.total = first.batch
		timer.Reset(s.cfg.MaxDelay)
		fired := false
	collect:
		// Updates contribute zero samples to total, so the member cap keeps
		// an update flood from growing one merged batch without bound.
		for mb.total < s.cfg.MaxBatch && len(mb.reqs) < s.cfg.QueueDepth {
			select {
			case r, ok := <-s.queue:
				if !ok {
					break collect
				}
				if mb.total+r.batch > s.cfg.MaxBatch {
					pending = r // head-of-line for the next batch
					break collect
				}
				mb.reqs = append(mb.reqs, r)
				mb.total += r.batch
			case <-timer.C:
				fired = true
				break collect
			}
		}
		if !fired && !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		s.dispatch <- mb
	}
}

// worker executes merged batches on its private scratch until the dispatch
// channel drains.
func (s *Server) worker() {
	defer s.workerWG.Done()
	ws := &workerScratch{
		ups:    make([]*request, 0, s.cfg.QueueDepth),
		reads:  make([]*request, 0, s.cfg.QueueDepth),
		merged: make([][]int, s.tables),
		emb:    make([]float32, s.cfg.MaxBatch*s.width),
	}
	for t := range ws.merged {
		ws.merged[t] = make([]int, 0, s.cfg.MaxBatch*s.reduction)
	}
	for mb := range s.dispatch {
		s.execute(mb, ws)
	}
}

// execute runs one merged batch: member updates first (in arrival order,
// so an update never loses to a read it was coalesced with on the same
// rows), then the merged embedding for the member reads on the next
// deployment replica, fanning results back out to the member requests.
// The batch is recycled once the last member reply has been sent.
func (s *Server) execute(mb *mergedBatch, ws *workerScratch) {
	start := time.Now()
	for _, r := range mb.reqs {
		wait := start.Sub(r.enq).Seconds()
		s.queueLat.Observe(wait)
		if s.tracer != nil {
			s.tQueue.Observe(wait)
			r.span.BeginAt(r.enq)
			r.span.Mark(hopQueue)
		}
	}

	// Partition: updates apply before any member read executes.
	ws.ups, ws.reads = ws.ups[:0], ws.reads[:0]
	for _, r := range mb.reqs {
		if r.updates != nil {
			ws.ups = append(ws.ups, r)
		} else {
			ws.reads = append(ws.reads, r)
		}
	}
	total := mb.total
	s.recycleBatch(mb)
	if len(ws.ups) > 0 {
		s.applyUpdates(ws.ups)
	}
	reads := ws.reads
	if len(reads) == 0 {
		return
	}

	dep := s.deps[int(s.rr.Add(1)-1)%len(s.deps)]

	// Merge: concatenate the member requests' per-table row lists. Pooling
	// groups are positional, so sample i of member j lands at output row
	// (offset of j) + i with identical arithmetic to a solo run.
	for t := range ws.merged {
		rows := ws.merged[t][:0]
		for _, r := range reads {
			rows = append(rows, r.rows[t]...)
		}
		ws.merged[t] = rows
	}

	emb := ws.emb[:total*s.width]
	s.tblMu.RLock()
	err := dep.RunEmbeddingInto(emb, ws.merged, total)
	s.tblMu.RUnlock()
	if err != nil {
		s.failures.Add(uint64(len(reads)))
		for _, r := range reads {
			r.done <- result{err: fmt.Errorf("serve: merged batch of %d failed: %w", total, err)}
		}
		return
	}
	s.batches.Add(1)

	// Split: each member request gets its slice of the embedding rows
	// copied into its destination buffer, or — for inference — its own DNN
	// stage over a view of the scratch (row-wise MLP results are
	// independent of co-batched rows).
	off := 0
	for _, r := range reads {
		rows := emb[off*s.width : (off+r.batch)*s.width]
		off += r.batch
		var res result
		if r.infer {
			view, err := tensor.FromSlice(rows, r.batch, s.width)
			if err == nil {
				view, err = dep.Model.InferFromEmbeddings(view)
			}
			res = result{out: view, err: err}
		} else {
			copy(r.dst, rows)
		}
		if res.err != nil {
			s.failures.Add(1)
			r.done <- res
			continue
		}
		s.requests.Add(1)
		s.samples.Add(uint64(r.batch))
		total := time.Since(r.enq).Seconds()
		s.totalLat.Observe(total)
		// Trace bookkeeping strictly precedes the reply send: the
		// submitter recycles the request (and its span slot) as soon as
		// the result lands.
		if s.tracer != nil {
			s.tTotal.Observe(total)
			r.span.Mark(hopExec)
			s.tracer.Finish(&r.span)
		}
		r.done <- res
	}
}

// recycleBatch clears a merged batch's member references and returns it to
// the pool. Safe at the top of execute because the member requests are
// already partitioned into the worker's scratch.
func (s *Server) recycleBatch(mb *mergedBatch) {
	for i := range mb.reqs {
		mb.reqs[i] = nil
	}
	mb.reqs, mb.total = mb.reqs[:0], 0
	s.mbPool.Put(mb)
}

// applyUpdates applies a merged batch's update requests in arrival order,
// replying to each. The server-wide update lock makes the per-request
// replica fan-out atomic: concurrent workers cannot interleave two updates
// across replicas, so every replica accumulates the same global order.
func (s *Server) applyUpdates(reqs []*request) {
	s.upMu.Lock()
	defer s.upMu.Unlock()
	for _, r := range reqs {
		if err := s.fanOutUpdate(r.updates); err != nil {
			s.failures.Add(1)
			r.done <- result{err: fmt.Errorf("serve: update failed: %w", err)}
			continue
		}
		rows := 0
		for _, up := range r.updates {
			rows += len(up.Rows)
		}
		s.updates.Add(1)
		s.upRows.Add(uint64(rows))
		total := time.Since(r.enq).Seconds()
		s.totalLat.Observe(total)
		if s.tracer != nil {
			s.tTotal.Observe(total)
			r.span.Mark(hopExec)
			s.tracer.Finish(&r.span)
		}
		r.done <- result{}
	}
}

// fanOutUpdate applies one update batch to every replica deployment. The
// first deployment of each distinct golden model writes through to it;
// further replicas of the same model update their node copy only, so a
// shared golden absorbs each gradient exactly once.
func (s *Server) fanOutUpdate(ups []runtime.TableUpdate) error {
	seen := make(map[*recsys.Model]bool, len(s.deps))
	for i, d := range s.deps {
		var err error
		if seen[d.Model] {
			err = d.ApplyUpdatesToNode(ups)
		} else {
			seen[d.Model] = true
			err = d.ApplyUpdates(ups)
		}
		if err != nil {
			return fmt.Errorf("replica %d: %w", i, err)
		}
	}
	return nil
}

// Restore overwrites rows of one table with absolute embedding values on
// every replica deployment (write-through to each distinct golden model
// exactly once) — the serving-side half of a durable snapshot install. It
// bypasses the micro-batching queue: restores are a cold recovery path
// that must not contend with live traffic for batch slots, and the
// server-wide update lock already gives them the same atomicity as a
// fanned-out update. Safe for concurrent use with reads and updates: the
// table barrier (tblMu) excludes in-flight gathers while rows are
// overwritten, so a read-only router hitting a replica mid-restore can
// never observe a torn row.
func (s *Server) Restore(table int, rows []int, vals []float32) error {
	cfg := s.deps[0].Model.Cfg
	if table < 0 || table >= cfg.Tables {
		return fmt.Errorf("serve: restore: table %d out of range [0, %d)", table, cfg.Tables)
	}
	if len(rows) == 0 {
		return fmt.Errorf("serve: restore: empty row set")
	}
	if len(rows) > s.cfg.MaxBatch*cfg.Reduction {
		return fmt.Errorf("serve: restore: %d rows exceed the %d-row cap", len(rows), s.cfg.MaxBatch*cfg.Reduction)
	}
	if len(vals) != len(rows)*cfg.EmbDim {
		return fmt.Errorf("serve: restore: %d values for %d rows of dim %d", len(vals), len(rows), cfg.EmbDim)
	}
	for _, r := range rows {
		if r < 0 || r >= cfg.TableRows {
			return fmt.Errorf("serve: restore: row index %d out of range [0, %d)", r, cfg.TableRows)
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("serve: server is closed")
	}
	s.mu.Unlock()
	s.upMu.Lock()
	defer s.upMu.Unlock()
	s.tblMu.Lock()
	defer s.tblMu.Unlock()
	seen := make(map[*recsys.Model]bool, len(s.deps))
	for i, d := range s.deps {
		var err error
		if seen[d.Model] {
			err = d.RestoreRowsToNode(table, rows, vals)
		} else {
			seen[d.Model] = true
			err = d.RestoreRows(table, rows, vals)
		}
		if err != nil {
			return fmt.Errorf("serve: restore: replica %d: %w", i, err)
		}
	}
	return nil
}

// Close stops accepting requests, drains everything already submitted
// (pending micro-batches execute and reply — reads and updates alike, so a
// caller blocked in Infer, Embed or Update always gets its result), stops
// the batcher and workers, and releases the owned deployments. It is
// idempotent, and every call — including concurrent ones — returns only
// after the drain has completed; requests submitted after Close fail fast.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		s.inflight.Wait() // every accepted submit has reached the queue
		close(s.queue)
		s.batcherWG.Wait()
		s.workerWG.Wait()
		for _, d := range s.deps {
			if err := d.Release(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
		close(s.closeDone)
	})
	<-s.closeDone
	return s.closeErr
}

// Metrics is a point-in-time snapshot of the server's counters and latency
// percentiles. All latencies are in seconds.
type Metrics struct {
	Requests    uint64        // read requests completed successfully
	Samples     uint64        // total samples across completed read requests
	Batches     uint64        // merged executions
	Failures    uint64        // requests (reads or updates) completed with an error
	Updates     uint64        // update requests applied successfully
	RowsUpdated uint64        // gradient rows accumulated across applied updates
	Uptime      time.Duration // time since New

	// MeanBatch is the average merged execution size in samples — the
	// coalescing factor micro-batching achieved.
	MeanBatch float64
	// Throughput is completed samples per second of uptime.
	Throughput float64
	// QueueLatency digests time from submission to execution start.
	QueueLatency stats.LatencySummary
	// TotalLatency digests time from submission to result delivery.
	TotalLatency stats.LatencySummary
}

// Metrics snapshots the server's counters. Safe to call at any time,
// including after Close.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		Requests:     s.requests.Load(),
		Samples:      s.samples.Load(),
		Batches:      s.batches.Load(),
		Failures:     s.failures.Load(),
		Updates:      s.updates.Load(),
		RowsUpdated:  s.upRows.Load(),
		Uptime:       time.Since(s.started),
		QueueLatency: s.queueLat.Summary(),
		TotalLatency: s.totalLat.Summary(),
	}
	if m.Batches > 0 {
		m.MeanBatch = float64(m.Samples) / float64(m.Batches)
	}
	if sec := m.Uptime.Seconds(); sec > 0 {
		m.Throughput = float64(m.Samples) / sec
	}
	return m
}

// String renders the metrics as a small report.
func (m Metrics) String() string {
	return fmt.Sprintf(
		"requests %d (%d samples, %d failures) in %s\n"+
			"updates %d (%d gradient rows)\n"+
			"merged executions %d (mean batch %.1f)\n"+
			"throughput %.0f samples/s\n"+
			"queue latency  %s\n"+
			"total latency  %s",
		m.Requests, m.Samples, m.Failures, m.Uptime.Round(time.Millisecond),
		m.Updates, m.RowsUpdated,
		m.Batches, m.MeanBatch, m.Throughput,
		m.QueueLatency, m.TotalLatency)
}
