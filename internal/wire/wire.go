// Package wire defines the binary network protocol of the serving plane:
// the frame format a netclient.Client and a netserve.Server exchange over
// TCP. It is pure encoding — no sockets, no goroutines — so both endpoints
// and the protocol tests share exactly one implementation of the layout.
//
// A connection opens with a fixed-size handshake: the client sends magic +
// version + its frame-size limit, the server answers magic + version + a
// Hello — the model geometry (tables, reduction, dim, max batch), the
// server's replica role, its update sequence number, and its own
// frame-size limit — which is everything a client needs to size requests,
// size destination buffers, cap its coalesced BATCH frames, and (for a
// replica router) decide how many logged updates the server missed. After
// the handshake the
// connection carries length-prefixed frames in both directions:
//
//	[4 B length][1 B op][8 B request id][payload ...]
//
// where length counts everything after the length field itself (so a frame
// occupies 4 + length bytes on the wire). Request ids are chosen by the
// client and echoed verbatim by the server, which is what lets a client
// pipeline many requests on one connection and accept responses out of
// order. All integers are little-endian; embedding values travel as raw
// IEEE-754 float32 bits.
//
// Every encoder appends to a caller-provided buffer and every decoder
// parses into caller-provided storage, so both endpoints can run their
// steady-state request paths without heap allocations (see
// ARCHITECTURE.md, "Memory discipline"). Decoders validate sizes before
// touching payload bytes: a truncated, corrupt or oversized frame yields
// an error, never a panic or a silent misparse.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"unsafe"
)

// Magic opens both handshake messages: "TDNP" (TensorDIMM network
// protocol). A connection that does not start with it is not speaking this
// protocol and is closed immediately.
const Magic = 0x54444e50

// Version is the protocol revision. The handshake rejects a peer speaking
// a different revision instead of guessing at frame layouts. Revision 2
// extended the server hello with the replica role and update sequence
// number and added the SYNC replica catch-up op. Revision 3 added the
// BATCH coalescing super-frame and a frame-size announcement in both
// handshake directions, so each endpoint can coalesce responses without
// ever exceeding what its peer is willing to read. Revision 4 added the
// RESTORE snapshot-install op, which lets a router reseat a lagging
// replica from a durable snapshot instead of replaying from sequence 0.
// Revision 5 opened the EMBED and UPDATE payloads with a per-request
// deadline budget (uint32 microseconds, 0 = none) and added the
// DEADLINE_EXCEEDED error code, so a server can shed already-expired
// requests before executing doomed work. Revision 6 made METRICS
// responses carry a versioned machine-parseable telemetry snapshot
// section ahead of the human text report (split by
// telemetry.DecodeWirePayload), so drivers and smoke tests assert on
// exact counters instead of grepping text. The handshake layout itself is
// unchanged across revisions 2-6 — only the version number moves — so a
// version mismatch is always detected cleanly at connect time.
const Version = 6

// DefaultMaxFrameBytes bounds one frame's wire size when a Config leaves
// the limit zero: large enough for a maximal update batch against the
// biggest benchmark geometry, small enough that a corrupt length field
// cannot make an endpoint allocate gigabytes.
const DefaultMaxFrameBytes = 16 << 20

// HeaderBytes is the fixed per-frame header: the 4-byte length prefix plus
// the 1-byte op and 8-byte request id the length covers.
const HeaderBytes = 4 + 1 + 8

// BatchHeaderBytes is the fixed prefix of an OpBatch super-frame: the
// standard frame header plus the uint16 sub-frame count. Coalescing
// writers reserve exactly this much headroom at the front of their buffer
// so FinishBatch can stamp the header in place without moving the packed
// sub-frames.
const BatchHeaderBytes = HeaderBytes + 2

// MaxBatchSubFrames bounds one OpBatch frame's sub-frame count. The cap
// keeps a corrupt count from looking plausible, and a coalescing writer
// splits its buffer into multiple BATCH frames rather than exceed it.
const MaxBatchSubFrames = 1024

// Op identifies a frame's meaning.
type Op uint8

// The frame ops. Requests flow client -> server, responses server ->
// client with the request's id echoed.
const (
	// OpEmbed requests a pooled embedding: payload is a uint32 deadline
	// budget (microseconds, 0 = none), a uint32 batch, then tables x batch
	// x reduction uint32 row indices.
	OpEmbed Op = 1
	// OpEmbedResp answers OpEmbed: payload is batch x tables x dim raw
	// float32 values.
	OpEmbedResp Op = 2
	// OpUpdate requests a gradient-update batch: payload is a uint32
	// deadline budget (microseconds, 0 = none), a uint16 update count, then
	// per update a uint32 table, uint32 row count, the rows, and rows x dim
	// float32 gradients.
	OpUpdate Op = 3
	// OpUpdateResp answers OpUpdate with an empty payload.
	OpUpdateResp Op = 4
	// OpMetrics requests a metrics report; empty payload.
	OpMetrics Op = 5
	// OpMetricsResp answers OpMetrics: payload is a UTF-8 text report.
	OpMetricsResp Op = 6
	// OpPing is a liveness probe; empty payload.
	OpPing Op = 7
	// OpPong answers OpPing with an empty payload.
	OpPong Op = 8
	// OpError answers any request that failed: payload is a uint16 ErrCode
	// followed by a UTF-8 message.
	OpError Op = 9
	// OpSync is a sequenced gradient update — the replica write/catch-up
	// path: payload is a uint64 sequence number followed by an OpUpdate
	// payload. The server applies it only when the sequence number equals
	// its own update counter, acknowledges without reapplying when it is
	// below (the update already landed before a connection died), and
	// rejects it as BAD_REQUEST when it is above (the sender skipped
	// updates). That guard makes replaying a router's update log after a
	// replica reconnect exactly-once.
	OpSync Op = 10
	// OpSyncResp answers OpSync: payload is the server's uint64 update
	// counter after the frame was absorbed.
	OpSyncResp Op = 11
	// OpBatch is the coalescing super-frame: payload is a uint16 sub-frame
	// count followed by that many complete frames (each with its own
	// length prefix, op, and request id), packed back to back. Both
	// directions use it — a client packs concurrent requests into one
	// write, a server packs completed responses — so one syscall is
	// amortized over a micro-batch. Sub-frames are dispatched exactly as
	// if they had arrived individually (each sub-request is admitted,
	// executed, and answered under its own id); a BATCH may not nest.
	OpBatch Op = 12
	// OpRestore installs one chunk of an absolute table snapshot on a
	// replica: payload is a uint64 snapshot sequence number, a commit byte,
	// a uint32 table, a uint32 row count, the rows, and rows x dim float32
	// absolute values (not gradients — the rows are overwritten, not
	// accumulated). The router streams a snapshot as a chunk sequence; only
	// the final chunk carries commit = 1, which moves the server's update
	// counter to the snapshot sequence. A snapshot older than the server's
	// applied state is rejected as BAD_REQUEST, so a restore can never
	// travel backwards.
	OpRestore Op = 13
	// OpRestoreResp answers OpRestore: payload is the server's uint64
	// update counter after the chunk was absorbed (unchanged until the
	// commit chunk lands).
	OpRestoreResp Op = 14
)

// ErrCode classifies an OpError frame.
type ErrCode uint16

// The error codes an OpError frame carries.
const (
	// ErrBadRequest: the request was malformed or failed validation
	// (geometry mismatch, index out of range). Retrying is pointless.
	ErrBadRequest ErrCode = 1
	// ErrOverloaded: the server's admission budget was exhausted and the
	// request was shed without executing. Retrying after backoff is safe.
	ErrOverloaded ErrCode = 2
	// ErrShuttingDown: the server is draining and accepts no new work.
	ErrShuttingDown ErrCode = 3
	// ErrInternal: the backend failed executing the request.
	ErrInternal ErrCode = 4
	// ErrUnavailable: no endpoint can serve the request — the code a
	// replica router reports when every replica of a shard is down. It is
	// fail-fast by design: retrying immediately hits the same dead set, so
	// callers should back off until a replica rejoins.
	ErrUnavailable ErrCode = 5
	// ErrDeadlineExceeded: the request's deadline budget lapsed before the
	// server executed it, so it was shed unexecuted — the answer arrives
	// after the caller stopped caring by definition, and executing it would
	// only steal capacity from requests that can still make their
	// deadlines. Retrying with a fresh budget is safe.
	ErrDeadlineExceeded ErrCode = 6
)

// String names the code for error rendering.
func (c ErrCode) String() string {
	switch c {
	case ErrBadRequest:
		return "BAD_REQUEST"
	case ErrOverloaded:
		return "OVERLOADED"
	case ErrShuttingDown:
		return "SHUTTING_DOWN"
	case ErrInternal:
		return "INTERNAL"
	case ErrUnavailable:
		return "UNAVAILABLE"
	case ErrDeadlineExceeded:
		return "DEADLINE_EXCEEDED"
	}
	return fmt.Sprintf("ERR_%d", uint16(c))
}

// Geometry is the model shape the server announces in its handshake: with
// it a client can validate and size every request and destination buffer
// without any out-of-band configuration.
type Geometry struct {
	// Tables is the embedding table count of the served model.
	Tables int
	// Reduction is the pooling group width (rows per sample per table).
	Reduction int
	// Dim is the embedding dimension.
	Dim int
	// TableRows is the row count of every table — the valid index range a
	// remote workload generator draws from, and the bound the decoders
	// enforce so an out-of-range index is rejected as BAD_REQUEST at the
	// protocol layer instead of deep inside the backend.
	TableRows int
	// MaxBatch is the largest per-request sample count the server accepts.
	MaxBatch int
}

// Width returns the pooled row width tables x dim — the float32 count of
// one sample's embedding output.
func (g Geometry) Width() int { return g.Tables * g.Dim }

// Validate rejects non-positive geometry fields, which would make every
// payload-size derivation nonsense.
func (g Geometry) Validate() error {
	if g.Tables <= 0 || g.Reduction <= 0 || g.Dim <= 0 || g.TableRows <= 0 || g.MaxBatch <= 0 {
		return fmt.Errorf("wire: invalid geometry %+v (all fields must be positive)", g)
	}
	return nil
}

// Role is the serving role a server announces in its handshake.
type Role uint8

// The server roles.
const (
	// RoleStandalone is a self-contained serving endpoint (single node or
	// in-process cluster): clients talk to it directly.
	RoleStandalone Role = 0
	// RoleReplica is one replica of a shard behind a replica router: its
	// writes are sequenced SYNC frames from the router, and its announced
	// UpdateSeq tells a reconnecting router where catch-up replay starts.
	RoleReplica Role = 1
)

// String names the role for reports.
func (r Role) String() string {
	switch r {
	case RoleStandalone:
		return "standalone"
	case RoleReplica:
		return "replica"
	}
	return fmt.Sprintf("role(%d)", uint8(r))
}

// Hello is the server handshake body: the served geometry plus the
// replication state a replica router needs — the server's role and how
// many sequenced update batches it has applied — plus the server's frame
// size limit, which caps the BATCH super-frames a client may send it.
type Hello struct {
	// Geom is the served model geometry.
	Geom Geometry
	// Role is the server's serving role.
	Role Role
	// UpdateSeq counts the update batches the server has applied. A
	// replica router compares it against its own update log to replay
	// exactly the updates the server missed while disconnected.
	UpdateSeq uint64
	// MaxFrameBytes is the largest frame the server will read. A client
	// must keep its coalesced BATCH frames under it; decoders normalize an
	// unannounced (zero) limit to DefaultMaxFrameBytes.
	MaxFrameBytes int
}

// clientHelloBytes is the fixed client handshake size: magic + version +
// uint32 frame-size limit.
const clientHelloBytes = 4 + 2 + 4

// serverHelloBytes is the fixed server handshake size: magic + version +
// five uint32 geometry fields + role byte + uint64 update sequence +
// uint32 frame-size limit.
const serverHelloBytes = 4 + 2 + 5*4 + 1 + 8 + 4

// growBuf returns buf with at least n bytes of capacity (and at least the
// 64 B floor every reused wire buffer starts from), preserving nothing.
func growBuf(buf []byte, n int) []byte {
	if n < 64 {
		n = 64
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	return buf
}

// AppendClientHello appends the client handshake to buf: magic, version,
// and the largest frame the client will read (0 announces the default),
// which caps the coalesced BATCH frames the server may answer with.
func AppendClientHello(buf []byte, maxFrameBytes int) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, Magic)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	return binary.LittleEndian.AppendUint32(buf, uint32(maxFrameBytes))
}

// ReadClientHello reads and verifies a client handshake from r through the
// reused buffer buf (grown if needed and returned), so a server accepts
// connections without per-handshake heap allocations. It returns the
// client's announced frame-size limit, normalized to DefaultMaxFrameBytes
// when the client left it zero.
func ReadClientHello(r io.Reader, buf []byte) (maxFrameBytes int, _ []byte, err error) {
	buf = growBuf(buf, clientHelloBytes)
	b := buf[:clientHelloBytes]
	if _, err := io.ReadFull(r, b); err != nil {
		return 0, buf, fmt.Errorf("wire: reading client hello: %w", err)
	}
	if m := binary.LittleEndian.Uint32(b[0:4]); m != Magic {
		return 0, buf, fmt.Errorf("wire: bad magic %#x (want %#x): peer is not speaking the TensorDIMM protocol", m, uint32(Magic))
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != Version {
		return 0, buf, fmt.Errorf("wire: protocol version %d (want %d)", v, Version)
	}
	maxFrameBytes = int(binary.LittleEndian.Uint32(b[6:10]))
	if maxFrameBytes == 0 {
		maxFrameBytes = DefaultMaxFrameBytes
	}
	return maxFrameBytes, buf, nil
}

// AppendServerHello appends the server handshake — magic, version, and the
// Hello body (geometry, role, update sequence, frame-size limit) — to buf.
func AppendServerHello(buf []byte, h Hello) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, Magic)
	buf = binary.LittleEndian.AppendUint16(buf, Version)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Geom.Tables))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Geom.Reduction))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Geom.Dim))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Geom.TableRows))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(h.Geom.MaxBatch))
	buf = append(buf, byte(h.Role))
	buf = binary.LittleEndian.AppendUint64(buf, h.UpdateSeq)
	return binary.LittleEndian.AppendUint32(buf, uint32(h.MaxFrameBytes))
}

// ReadServerHello reads and verifies a server handshake from r through the
// reused buffer buf (grown if needed and returned), returning the
// announced Hello with an unannounced (zero) frame-size limit normalized
// to DefaultMaxFrameBytes.
func ReadServerHello(r io.Reader, buf []byte) (Hello, []byte, error) {
	buf = growBuf(buf, serverHelloBytes)
	b := buf[:serverHelloBytes]
	if _, err := io.ReadFull(r, b); err != nil {
		return Hello{}, buf, fmt.Errorf("wire: reading server hello: %w", err)
	}
	if m := binary.LittleEndian.Uint32(b[0:4]); m != Magic {
		return Hello{}, buf, fmt.Errorf("wire: bad magic %#x (want %#x): peer is not speaking the TensorDIMM protocol", m, uint32(Magic))
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != Version {
		return Hello{}, buf, fmt.Errorf("wire: protocol version %d (want %d)", v, Version)
	}
	h := Hello{
		Geom: Geometry{
			Tables:    int(binary.LittleEndian.Uint32(b[6:10])),
			Reduction: int(binary.LittleEndian.Uint32(b[10:14])),
			Dim:       int(binary.LittleEndian.Uint32(b[14:18])),
			TableRows: int(binary.LittleEndian.Uint32(b[18:22])),
			MaxBatch:  int(binary.LittleEndian.Uint32(b[22:26])),
		},
		Role:          Role(b[26]),
		UpdateSeq:     binary.LittleEndian.Uint64(b[27:35]),
		MaxFrameBytes: int(binary.LittleEndian.Uint32(b[35:39])),
	}
	if err := h.Geom.Validate(); err != nil {
		return Hello{}, buf, err
	}
	if h.Role != RoleStandalone && h.Role != RoleReplica {
		return Hello{}, buf, fmt.Errorf("wire: unknown server role %d", uint8(h.Role))
	}
	if h.MaxFrameBytes == 0 {
		h.MaxFrameBytes = DefaultMaxFrameBytes
	}
	return h, buf, nil
}

// AppendFrame appends one complete frame (header + payload) to buf. It is
// the generic encoder for the empty- and opaque-payload ops (ping, pong,
// metrics, update-ack); the hot-path ops have dedicated encoders below
// that build their payloads in place.
func AppendFrame(buf []byte, op Op, id uint64, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(1+8+len(payload)))
	buf = append(buf, byte(op))
	buf = binary.LittleEndian.AppendUint64(buf, id)
	return append(buf, payload...)
}

// beginFrame appends a frame header with a placeholder length, returning
// the offset of the length field for endFrame to patch.
func beginFrame(buf []byte, op Op, id uint64) ([]byte, int) {
	lenAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0)
	buf = append(buf, byte(op))
	buf = binary.LittleEndian.AppendUint64(buf, id)
	return buf, lenAt
}

// endFrame patches the length field of the frame begun at lenAt.
func endFrame(buf []byte, lenAt int) []byte {
	binary.LittleEndian.PutUint32(buf[lenAt:], uint32(len(buf)-lenAt-4))
	return buf
}

// AppendEmbed appends an OpEmbed request frame: `batch` samples whose
// per-table row index lists are perTableRows (exactly as the serving
// layers take them), stamped with the caller's remaining deadline budget
// in microseconds (0 = no deadline). The caller must have validated the
// lists against the geometry — the encoder derives every length from
// batch, so a short list would panic, not misencode.
func AppendEmbed(buf []byte, id uint64, budget uint32, perTableRows [][]int, batch, reduction int) []byte {
	buf, lenAt := beginFrame(buf, OpEmbed, id)
	buf = binary.LittleEndian.AppendUint32(buf, budget)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(batch))
	n := batch * reduction
	for _, rows := range perTableRows {
		for _, r := range rows[:n] {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
		}
	}
	return endFrame(buf, lenAt)
}

// DecodeEmbed parses an OpEmbed payload against the geometry, filling the
// caller's reused row storage: idx is resized (grown at most once per
// connection) to tables x batch x reduction decoded indices and rows's
// tables entries are resliced into it. Returns the decoded batch and
// deadline budget (microseconds, 0 = none) plus the (possibly regrown)
// buffers. Indices are range-checked against g.TableRows, so a malformed
// request is rejected here as BAD_REQUEST material instead of deep inside
// the backend.
func DecodeEmbed(payload []byte, g Geometry, rows [][]int, idx []int) (batch int, budget uint32, _ [][]int, _ []int, err error) {
	if len(payload) < 8 {
		return 0, 0, rows, idx, fmt.Errorf("wire: embed payload %d B, want at least 8", len(payload))
	}
	budget = binary.LittleEndian.Uint32(payload)
	batch = int(binary.LittleEndian.Uint32(payload[4:]))
	if batch <= 0 || batch > g.MaxBatch {
		return 0, 0, rows, idx, fmt.Errorf("wire: embed batch %d out of range [1, %d]", batch, g.MaxBatch)
	}
	n := batch * g.Reduction
	want := 8 + 4*g.Tables*n
	if len(payload) != want {
		return 0, 0, rows, idx, fmt.Errorf("wire: embed payload %d B, want %d for batch %d (%d tables x reduction %d)",
			len(payload), want, batch, g.Tables, g.Reduction)
	}
	total := g.Tables * n
	if cap(idx) < total {
		idx = make([]int, total)
	}
	idx = idx[:total]
	if cap(rows) < g.Tables {
		rows = make([][]int, g.Tables)
	}
	rows = rows[:g.Tables]
	p := payload[8:]
	for i := 0; i < total; i++ {
		r := int(binary.LittleEndian.Uint32(p[4*i:]))
		if r >= g.TableRows {
			return 0, 0, rows, idx, fmt.Errorf("wire: embed index %d out of range [0, %d)", r, g.TableRows)
		}
		idx[i] = r
	}
	for t := 0; t < g.Tables; t++ {
		rows[t] = idx[t*n : (t+1)*n]
	}
	return batch, budget, rows, idx, nil
}

// AppendEmbedResp appends an OpEmbedResp frame carrying vals (the pooled
// batch x tables x dim embedding values) as raw float32 bits.
func AppendEmbedResp(buf []byte, id uint64, vals []float32) []byte {
	buf, lenAt := beginFrame(buf, OpEmbedResp, id)
	buf = appendFloats(buf, vals)
	return endFrame(buf, lenAt)
}

// DecodeEmbedResp parses an OpEmbedResp payload into dst, which must be
// exactly the expected result length (the client sizes it from the
// geometry before sending the request).
func DecodeEmbedResp(payload []byte, dst []float32) error {
	if len(payload) != 4*len(dst) {
		return fmt.Errorf("wire: embed response %d B, want %d (%d float32)", len(payload), 4*len(dst), len(dst))
	}
	decodeFloats(dst, payload)
	return nil
}

// Update is the wire form of one table's slice of a gradient-update batch:
// Grads holds len(Rows) x dim row-major values. It mirrors
// runtime.TableUpdate without importing the runtime, so the protocol layer
// stays free of serving-stack dependencies.
type Update struct {
	// Table is the target embedding table.
	Table int
	// Rows lists the target row per gradient (duplicates accumulate in
	// order).
	Rows []int
	// Grads holds one dim-wide gradient row per entry of Rows.
	Grads []float32
}

// AppendUpdate appends an OpUpdate frame carrying ups, stamped with the
// caller's remaining deadline budget in microseconds (0 = no deadline).
// Every entry's Grads must hold exactly len(Rows) x dim values, and
// len(ups) must be within MaxUpdatesPerFrame; like AppendEmbed,
// validation is the caller's job.
func AppendUpdate(buf []byte, id uint64, budget uint32, ups []Update) []byte {
	buf, lenAt := beginFrame(buf, OpUpdate, id)
	buf = binary.LittleEndian.AppendUint32(buf, budget)
	buf = appendUpdates(buf, ups)
	return endFrame(buf, lenAt)
}

// appendUpdates appends the update-batch body (count + per-update
// sections) shared by OpUpdate and OpSync frames.
func appendUpdates(buf []byte, ups []Update) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(ups)))
	for _, up := range ups {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(up.Table))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(up.Rows)))
		for _, r := range up.Rows {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
		}
		buf = appendFloats(buf, up.Grads)
	}
	return buf
}

// UpdateScratch is the reusable decode storage for OpUpdate payloads: the
// update headers plus one arena each for rows and gradient values, grown
// on demand and reused across requests.
type UpdateScratch struct {
	// Ups holds the decoded updates; valid until the next DecodeUpdate.
	Ups []Update
	// Rows is the arena the updates' Rows slices view into.
	Rows []int
	// Grads is the arena the updates' Grads slices view into.
	Grads []float32
}

// MaxUpdatesPerFrame bounds one OpUpdate frame's update count: the
// decoder rejects a corrupt header before it can demand absurd scratch
// growth, and the client enforces the same bound before encoding (the
// count also travels as a uint16, which a larger batch would silently
// truncate into a corrupt frame).
const MaxUpdatesPerFrame = 1 << 12

// DecodeUpdate parses an OpUpdate payload against the geometry into s,
// reusing its arenas, and returns the decoded updates plus the request's
// deadline budget (microseconds, 0 = none). The returned slice views s
// and is valid until the next call. Row counts are capped at maxBatch x
// reduction per update — the same cap the serving layers enforce — so
// payload size stays bounded by the geometry.
func DecodeUpdate(payload []byte, g Geometry, s *UpdateScratch) ([]Update, uint32, error) {
	if len(payload) < 4 {
		return nil, 0, fmt.Errorf("wire: update payload %d B, want at least 4", len(payload))
	}
	budget := binary.LittleEndian.Uint32(payload)
	ups, err := decodeUpdates(payload[4:], g, s)
	return ups, budget, err
}

// decodeUpdates parses the update-batch body shared by OpUpdate and
// OpSync payloads.
func decodeUpdates(payload []byte, g Geometry, s *UpdateScratch) ([]Update, error) {
	if len(payload) < 2 {
		return nil, fmt.Errorf("wire: update payload %d B, want at least 2", len(payload))
	}
	count := int(binary.LittleEndian.Uint16(payload))
	if count == 0 || count > MaxUpdatesPerFrame {
		return nil, fmt.Errorf("wire: update count %d out of range [1, %d]", count, MaxUpdatesPerFrame)
	}
	if cap(s.Ups) < count {
		s.Ups = make([]Update, count)
	}
	s.Ups = s.Ups[:count]
	s.Rows, s.Grads = s.Rows[:0], s.Grads[:0]
	p := payload[2:]
	maxRows := g.MaxBatch * g.Reduction
	for u := 0; u < count; u++ {
		if len(p) < 8 {
			return nil, fmt.Errorf("wire: update %d: truncated header (%d B left)", u, len(p))
		}
		table := int(binary.LittleEndian.Uint32(p))
		n := int(binary.LittleEndian.Uint32(p[4:]))
		p = p[8:]
		if table < 0 || table >= g.Tables {
			return nil, fmt.Errorf("wire: update %d: table %d out of range [0, %d)", u, table, g.Tables)
		}
		if n <= 0 || n > maxRows {
			return nil, fmt.Errorf("wire: update %d: %d rows out of range [1, %d]", u, n, maxRows)
		}
		need := 4*n + 4*n*g.Dim
		if len(p) < need {
			return nil, fmt.Errorf("wire: update %d: %d B left, want %d for %d rows", u, len(p), need, n)
		}
		rowAt, gradAt := len(s.Rows), len(s.Grads)
		for i := 0; i < n; i++ {
			r := int(binary.LittleEndian.Uint32(p[4*i:]))
			if r >= g.TableRows {
				return nil, fmt.Errorf("wire: update %d row index %d out of range [0, %d)", u, r, g.TableRows)
			}
			s.Rows = append(s.Rows, r)
		}
		p = p[4*n:]
		s.Grads = growFloats(s.Grads, n*g.Dim)
		decodeFloats(s.Grads[gradAt:], p[:4*n*g.Dim])
		p = p[4*n*g.Dim:]
		s.Ups[u] = Update{Table: table, Rows: s.Rows[rowAt:], Grads: s.Grads[gradAt:]}
	}
	if len(p) != 0 {
		return nil, fmt.Errorf("wire: update payload has %d trailing bytes", len(p))
	}
	// The arenas may have been regrown by appends mid-loop; re-slice every
	// update's views against the final backing arrays.
	rowAt, gradAt := 0, 0
	for u := range s.Ups {
		n := len(s.Ups[u].Rows)
		s.Ups[u].Rows = s.Rows[rowAt : rowAt+n]
		s.Ups[u].Grads = s.Grads[gradAt : gradAt+n*g.Dim]
		rowAt += n
		gradAt += n * g.Dim
	}
	return s.Ups, nil
}

// AppendSync appends an OpSync frame: the router's sequence number for
// this update batch followed by the batch itself (same body as OpUpdate,
// same caller-side validation obligations).
func AppendSync(buf []byte, id uint64, seq uint64, ups []Update) []byte {
	buf, lenAt := beginFrame(buf, OpSync, id)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = appendUpdates(buf, ups)
	return endFrame(buf, lenAt)
}

// DecodeSync parses an OpSync payload: the sequence number plus the
// update batch, decoded into s exactly like DecodeUpdate.
func DecodeSync(payload []byte, g Geometry, s *UpdateScratch) (seq uint64, ups []Update, err error) {
	if len(payload) < 8 {
		return 0, nil, fmt.Errorf("wire: sync payload %d B, want at least 8", len(payload))
	}
	seq = binary.LittleEndian.Uint64(payload)
	ups, err = decodeUpdates(payload[8:], g, s)
	return seq, ups, err
}

// AppendSyncResp appends an OpSyncResp frame carrying the server's update
// counter after absorbing the sync frame.
func AppendSyncResp(buf []byte, id uint64, seq uint64) []byte {
	buf, lenAt := beginFrame(buf, OpSyncResp, id)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	return endFrame(buf, lenAt)
}

// DecodeSyncResp parses an OpSyncResp payload.
func DecodeSyncResp(payload []byte) (uint64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("wire: sync response %d B, want 8", len(payload))
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// AppendRestore appends an OpRestore frame: one chunk of an absolute table
// snapshot at sequence seq, overwriting the given rows of the table with
// vals (len(rows) x dim values). commit marks the final chunk of the
// snapshot stream. Like the other hot encoders, size validation is the
// caller's job.
func AppendRestore(buf []byte, id uint64, seq uint64, commit bool, table int, rows []int, vals []float32) []byte {
	buf, lenAt := beginFrame(buf, OpRestore, id)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	c := byte(0)
	if commit {
		c = 1
	}
	buf = append(buf, c)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(table))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
	for _, r := range rows {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
	}
	buf = appendFloats(buf, vals)
	return endFrame(buf, lenAt)
}

// DecodeRestore parses an OpRestore payload against the geometry into s's
// arenas (the same reusable storage DecodeUpdate fills), returning the
// snapshot sequence, the commit flag, and the chunk's target as a single
// Update whose Grads carry absolute row values. Row counts obey the same
// maxBatch x reduction cap as update frames, and every index is
// range-checked, so a malformed restore is rejected at the protocol layer.
func DecodeRestore(payload []byte, g Geometry, s *UpdateScratch) (seq uint64, commit bool, up Update, err error) {
	if len(payload) < 8+1+4+4 {
		return 0, false, Update{}, fmt.Errorf("wire: restore payload %d B, want at least %d", len(payload), 8+1+4+4)
	}
	seq = binary.LittleEndian.Uint64(payload)
	switch payload[8] {
	case 0:
	case 1:
		commit = true
	default:
		return 0, false, Update{}, fmt.Errorf("wire: restore commit byte %d, want 0 or 1", payload[8])
	}
	table := int(binary.LittleEndian.Uint32(payload[9:]))
	n := int(binary.LittleEndian.Uint32(payload[13:]))
	if table < 0 || table >= g.Tables {
		return 0, false, Update{}, fmt.Errorf("wire: restore table %d out of range [0, %d)", table, g.Tables)
	}
	maxRows := g.MaxBatch * g.Reduction
	if n <= 0 || n > maxRows {
		return 0, false, Update{}, fmt.Errorf("wire: restore row count %d out of range [1, %d]", n, maxRows)
	}
	want := 8 + 1 + 4 + 4 + 4*n + 4*n*g.Dim
	if len(payload) != want {
		return 0, false, Update{}, fmt.Errorf("wire: restore payload %d B, want %d for %d rows of dim %d",
			len(payload), want, n, g.Dim)
	}
	p := payload[17:]
	s.Rows, s.Grads = s.Rows[:0], s.Grads[:0]
	for i := 0; i < n; i++ {
		r := int(binary.LittleEndian.Uint32(p[4*i:]))
		if r >= g.TableRows {
			return 0, false, Update{}, fmt.Errorf("wire: restore row index %d out of range [0, %d)", r, g.TableRows)
		}
		s.Rows = append(s.Rows, r)
	}
	s.Grads = growFloats(s.Grads, n*g.Dim)
	decodeFloats(s.Grads, p[4*n:])
	return seq, commit, Update{Table: table, Rows: s.Rows, Grads: s.Grads}, nil
}

// AppendRestoreResp appends an OpRestoreResp frame carrying the server's
// update counter after absorbing the restore chunk.
func AppendRestoreResp(buf []byte, id uint64, seq uint64) []byte {
	buf, lenAt := beginFrame(buf, OpRestoreResp, id)
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	return endFrame(buf, lenAt)
}

// DecodeRestoreResp parses an OpRestoreResp payload.
func DecodeRestoreResp(payload []byte) (uint64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("wire: restore response %d B, want 8", len(payload))
	}
	return binary.LittleEndian.Uint64(payload), nil
}

// AppendError appends an OpError frame with the code and message.
func AppendError(buf []byte, id uint64, code ErrCode, msg string) []byte {
	buf, lenAt := beginFrame(buf, OpError, id)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(code))
	buf = append(buf, msg...)
	return endFrame(buf, lenAt)
}

// DecodeError parses an OpError payload. The message is copied out of the
// payload (error paths may allocate).
func DecodeError(payload []byte) (ErrCode, string, error) {
	if len(payload) < 2 {
		return 0, "", fmt.Errorf("wire: error payload %d B, want at least 2", len(payload))
	}
	return ErrCode(binary.LittleEndian.Uint16(payload)), string(payload[2:]), nil
}

// FinishBatch stamps the OpBatch header into the BatchHeaderBytes of
// headroom a coalescing writer reserved at buf's front, covering the count
// sub-frames packed behind it, and returns the finished frame. The caller
// guarantees count matches the packed sub-frames and stays within
// MaxBatchSubFrames — FinishBatch is the zero-copy fast path, so like the
// other hot encoders it does not re-walk the buffer to validate.
func FinishBatch(buf []byte, id uint64, count int) []byte {
	binary.LittleEndian.PutUint32(buf, uint32(len(buf)-4))
	buf[4] = byte(OpBatch)
	binary.LittleEndian.PutUint64(buf[5:], id)
	binary.LittleEndian.PutUint16(buf[13:], uint16(count))
	return buf
}

// AppendBatch appends an OpBatch frame coalescing the given complete
// frames (each already carrying its own header). It is the convenience
// encoder for tests and cold paths; the hot coalescing writers pack
// sub-frames directly behind reserved headroom and use FinishBatch.
func AppendBatch(buf []byte, id uint64, subs ...[]byte) []byte {
	at := len(buf)
	buf = append(buf, make([]byte, BatchHeaderBytes)...)
	for _, sub := range subs {
		buf = append(buf, sub...)
	}
	FinishBatch(buf[at:], id, len(subs))
	return buf
}

// BatchIter walks the sub-frames of an OpBatch payload. Obtain one with
// DecodeBatch, drain it with Next, then check Err: a structural violation
// discovered mid-iteration (truncated interior sub-frame, trailing bytes,
// nested batch) ends the iteration and is reported there.
type BatchIter struct {
	rest      []byte
	remaining int
	count     int
	err       error
}

// Count returns the sub-frame count the batch header announced.
func (it *BatchIter) Count() int { return it.count }

// Err returns the structural error that ended iteration, or nil after a
// clean drain.
func (it *BatchIter) Err() error { return it.err }

// Next returns the next sub-frame's op, id, and payload. The payload
// aliases the batch payload and is valid as long as it is. ok is false
// when the batch is exhausted or a structural violation was found — always
// check Err after the loop.
func (it *BatchIter) Next() (op Op, id uint64, payload []byte, ok bool) {
	if it.err != nil || it.remaining == 0 {
		if it.err == nil && len(it.rest) != 0 {
			it.err = fmt.Errorf("wire: batch has %d trailing bytes after %d sub-frames", len(it.rest), it.count)
		}
		return 0, 0, nil, false
	}
	if len(it.rest) < 4 {
		it.err = fmt.Errorf("wire: batch truncated: %d B left, want a sub-frame length prefix", len(it.rest))
		return 0, 0, nil, false
	}
	n := int(binary.LittleEndian.Uint32(it.rest))
	if n < 1+8 {
		it.err = fmt.Errorf("wire: batch sub-frame length %d below the %d-byte op+id minimum", n, 1+8)
		return 0, 0, nil, false
	}
	if len(it.rest) < 4+n {
		it.err = fmt.Errorf("wire: batch truncated: sub-frame of %d B with %d B left", 4+n, len(it.rest))
		return 0, 0, nil, false
	}
	body := it.rest[4 : 4+n]
	it.rest = it.rest[4+n:]
	it.remaining--
	op = Op(body[0])
	if op == OpBatch {
		it.err = fmt.Errorf("wire: batch may not nest a batch sub-frame")
		return 0, 0, nil, false
	}
	return op, binary.LittleEndian.Uint64(body[1:9]), body[9:], true
}

// DecodeBatch parses an OpBatch payload's count prefix and returns an
// iterator over its sub-frames. Only the count is validated here; per
// sub-frame structure is checked lazily by Next so a receiver can dispatch
// the valid prefix of a batch before hitting a violation.
func DecodeBatch(payload []byte) (BatchIter, error) {
	if len(payload) < 2 {
		return BatchIter{}, fmt.Errorf("wire: batch payload %d B, want at least 2", len(payload))
	}
	count := int(binary.LittleEndian.Uint16(payload))
	if count == 0 || count > MaxBatchSubFrames {
		return BatchIter{}, fmt.Errorf("wire: batch sub-frame count %d out of range [1, %d]", count, MaxBatchSubFrames)
	}
	return BatchIter{rest: payload[2:], remaining: count, count: count}, nil
}

// ReadFrame reads one complete frame from r into buf (grown if needed and
// returned), enforcing max as the frame-size ceiling. The returned payload
// aliases buf and is valid until the next call with the same buffer. An
// oversized or short length field is a protocol violation: the stream can
// no longer be trusted to be frame-aligned, so the caller must close the
// connection.
func ReadFrame(r io.Reader, buf []byte, max int) (op Op, id uint64, payload, _ []byte, err error) {
	// The length prefix is read through the reused buffer, not a local
	// array: a local escapes through the io.Reader interface and would cost
	// one heap allocation per frame on every endpoint.
	if cap(buf) < 64 {
		buf = make([]byte, 64)
	}
	hdr := buf[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, nil, buf, err
	}
	n := int(binary.LittleEndian.Uint32(hdr))
	if n < 1+8 {
		return 0, 0, nil, buf, fmt.Errorf("wire: frame length %d below the %d-byte op+id minimum", n, 1+8)
	}
	if max <= 0 {
		max = DefaultMaxFrameBytes
	}
	if 4+n > max {
		return 0, 0, nil, buf, fmt.Errorf("wire: frame of %d B exceeds the %d B limit", 4+n, max)
	}
	if cap(buf) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, 0, nil, buf, fmt.Errorf("wire: reading %d-byte frame body: %w", n, err)
	}
	op = Op(buf[0])
	id = binary.LittleEndian.Uint64(buf[1:9])
	return op, id, buf[9:], buf, nil
}

// growFloats extends s by n elements, reusing capacity when it can — the
// arena growth path of DecodeUpdate, which must not allocate a temporary
// per call the way append(s, make(...)...) would.
func growFloats(s []float32, n int) []float32 {
	if cap(s)-len(s) >= n {
		return s[:len(s)+n]
	}
	out := make([]float32, len(s)+n, 2*(len(s)+n))
	copy(out, s)
	return out
}

// appendFloats appends vals as raw little-endian float32 bits.
// hostLittleEndian reports whether the host's native uint32 layout is
// already the wire's little-endian layout, in which case the float
// codecs degenerate to single memmoves — they dominate the per-byte
// cost of large embed responses, so this is a hot-path fast lane, with
// the portable per-element loop kept as the big-endian fallback.
var hostLittleEndian = func() bool {
	var x uint32 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func appendFloats(buf []byte, vals []float32) []byte {
	if hostLittleEndian && len(vals) > 0 {
		return append(buf, unsafe.Slice((*byte)(unsafe.Pointer(&vals[0])), 4*len(vals))...)
	}
	for _, v := range vals {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(v))
	}
	return buf
}

// decodeFloats fills dst from len(dst)*4 raw little-endian bytes.
func decodeFloats(dst []float32, p []byte) {
	if hostLittleEndian && len(dst) > 0 {
		copy(unsafe.Slice((*byte)(unsafe.Pointer(&dst[0])), 4*len(dst)), p)
		return
	}
	for i := range dst {
		dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[4*i:]))
	}
}

// AppendFloat32s appends vals to buf as raw little-endian float32 bits —
// the wire's float encoding, exported so on-disk formats (the durability
// plane's snapshot files) lay floats out exactly like the protocol does.
func AppendFloat32s(buf []byte, vals []float32) []byte {
	return appendFloats(buf, vals)
}

// DecodeFloat32s fills dst from len(dst)*4 raw little-endian bytes, the
// inverse of AppendFloat32s. p must hold at least 4*len(dst) bytes.
func DecodeFloat32s(dst []float32, p []byte) {
	decodeFloats(dst, p)
}
