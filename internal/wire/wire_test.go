package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"math"
	"strings"
	"testing"
)

var testGeom = Geometry{Tables: 3, Reduction: 2, Dim: 8, TableRows: 640, MaxBatch: 16}

func TestHandshakeRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(AppendClientHello(nil, 1<<16))
	cmax, scratch, err := ReadClientHello(&buf, nil)
	if err != nil {
		t.Fatalf("client hello round trip: %v", err)
	}
	if cmax != 1<<16 {
		t.Fatalf("client frame limit %d, want %d", cmax, 1<<16)
	}
	// An unannounced (zero) limit normalizes to the default.
	buf.Reset()
	buf.Write(AppendClientHello(nil, 0))
	cmax, scratch, err = ReadClientHello(&buf, scratch)
	if err != nil || cmax != DefaultMaxFrameBytes {
		t.Fatalf("zero client frame limit: %d, %v; want %d", cmax, err, DefaultMaxFrameBytes)
	}
	buf.Reset()
	hello := Hello{Geom: testGeom, Role: RoleReplica, UpdateSeq: 712, MaxFrameBytes: 1 << 20}
	buf.Write(AppendServerHello(nil, hello))
	h, scratch, err := ReadServerHello(&buf, scratch)
	if err != nil {
		t.Fatalf("server hello round trip: %v", err)
	}
	if h != hello {
		t.Fatalf("hello %+v round-tripped to %+v", hello, h)
	}
	buf.Reset()
	buf.Write(AppendServerHello(nil, Hello{Geom: testGeom}))
	h, _, err = ReadServerHello(&buf, scratch)
	if err != nil || h.MaxFrameBytes != DefaultMaxFrameBytes {
		t.Fatalf("zero server frame limit: %d, %v; want %d", h.MaxFrameBytes, err, DefaultMaxFrameBytes)
	}
	if h.Geom.Width() != testGeom.Tables*testGeom.Dim {
		t.Fatalf("Width() = %d, want %d", h.Geom.Width(), testGeom.Tables*testGeom.Dim)
	}
	if h.Role.String() != "replica" && RoleStandalone.String() != "standalone" {
		t.Fatalf("role names: %q / %q", h.Role, RoleStandalone)
	}
	if RoleReplica.String() != "replica" || RoleStandalone.String() != "standalone" {
		t.Fatalf("role names: %q / %q", RoleReplica, RoleStandalone)
	}
}

func TestHandshakeRejectsBadMagicAndVersion(t *testing.T) {
	bad := AppendClientHello(nil, 0)
	bad[0] ^= 0xff
	if _, _, err := ReadClientHello(bytes.NewReader(bad), nil); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("corrupt magic: err = %v, want magic error", err)
	}
	bad = AppendClientHello(nil, 0)
	binary.LittleEndian.PutUint16(bad[4:], Version+1)
	if _, _, err := ReadClientHello(bytes.NewReader(bad), nil); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong version: err = %v, want version error", err)
	}
	srv := AppendServerHello(nil, Hello{Geom: testGeom})
	srv[0] ^= 0xff
	if _, _, err := ReadServerHello(bytes.NewReader(srv), nil); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("corrupt server magic: err = %v, want magic error", err)
	}
	// A server speaking a different revision is rejected.
	srv = AppendServerHello(nil, Hello{Geom: testGeom})
	binary.LittleEndian.PutUint16(srv[4:], Version+1)
	if _, _, err := ReadServerHello(bytes.NewReader(srv), nil); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("wrong server version: err = %v, want version error", err)
	}
	// Zero geometry fields are rejected even when the framing is valid.
	srv = AppendServerHello(nil, Hello{Geom: Geometry{Tables: 0, Reduction: 1, Dim: 8, MaxBatch: 4}})
	if _, _, err := ReadServerHello(bytes.NewReader(srv), nil); err == nil {
		t.Fatal("zero-table geometry accepted")
	}
	// An unknown role byte is rejected (a corrupt or future-revision peer).
	srv = AppendServerHello(nil, Hello{Geom: testGeom, Role: Role(9)})
	if _, _, err := ReadServerHello(bytes.NewReader(srv), nil); err == nil || !strings.Contains(err.Error(), "role") {
		t.Fatalf("unknown role: err = %v, want role error", err)
	}
	// Truncated handshakes fail cleanly.
	if _, _, err := ReadClientHello(bytes.NewReader(AppendClientHello(nil, 0)[:3]), nil); err == nil {
		t.Fatal("truncated client hello accepted")
	}
	if _, _, err := ReadServerHello(bytes.NewReader(AppendServerHello(nil, Hello{Geom: testGeom})[:10]), nil); err == nil {
		t.Fatal("truncated server hello accepted")
	}
}

func TestEmbedRoundTrip(t *testing.T) {
	g := testGeom
	const batch = 3
	n := batch * g.Reduction
	perTable := make([][]int, g.Tables)
	for tt := range perTable {
		perTable[tt] = make([]int, n)
		for i := range perTable[tt] {
			perTable[tt][i] = tt*100 + i
		}
	}
	frame := AppendEmbed(nil, 42, 1500, perTable, batch, g.Reduction)

	op, id, payload, _, err := ReadFrame(bytes.NewReader(frame), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if op != OpEmbed || id != 42 {
		t.Fatalf("op %d id %d, want OpEmbed id 42", op, id)
	}
	var rows [][]int
	var idx []int
	gotBatch, gotBudget, rows, idx, err := DecodeEmbed(payload, g, rows, idx)
	if err != nil {
		t.Fatal(err)
	}
	if gotBatch != batch {
		t.Fatalf("batch %d, want %d", gotBatch, batch)
	}
	if gotBudget != 1500 {
		t.Fatalf("deadline budget %d, want 1500", gotBudget)
	}
	for tt := range perTable {
		for i := range perTable[tt] {
			if rows[tt][i] != perTable[tt][i] {
				t.Fatalf("table %d index %d: %d, want %d", tt, i, rows[tt][i], perTable[tt][i])
			}
		}
	}
	// Reuse: decoding a second frame into the same buffers must not grow
	// them.
	frame2 := AppendEmbed(frame[:0], 43, 0, perTable, batch, g.Reduction)
	_, _, payload, _, err = ReadFrame(bytes.NewReader(frame2), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := cap(idx)
	if _, _, rows, idx, err = DecodeEmbed(payload, g, rows, idx); err != nil {
		t.Fatal(err)
	}
	if cap(idx) != before {
		t.Fatalf("idx buffer regrew from %d to %d on identical decode", before, cap(idx))
	}
	_ = rows
}

func TestDecodeEmbedRejectsBadShapes(t *testing.T) {
	g := testGeom
	perTable := [][]int{{1, 2}, {3, 4}, {5, 6}}
	frame := AppendEmbed(nil, 1, 0, perTable, 1, g.Reduction)
	_, _, payload, _, err := ReadFrame(bytes.NewReader(frame), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	withBudget := func(batch uint32) []byte {
		p := binary.LittleEndian.AppendUint32(nil, 0)
		return binary.LittleEndian.AppendUint32(p, batch)
	}
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"budget only", payload[:4]},
		{"truncated", payload[:len(payload)-1]},
		{"trailing garbage", append(append([]byte{}, payload...), 0xde, 0xad)},
		{"zero batch", withBudget(0)},
		{"oversized batch", withBudget(uint32(g.MaxBatch + 1))},
		{"index out of range", func() []byte {
			p := append([]byte{}, payload...)
			binary.LittleEndian.PutUint32(p[8:], uint32(g.TableRows))
			return p
		}()},
	}
	for _, tc := range cases {
		if _, _, _, _, err := DecodeEmbed(tc.payload, g, nil, nil); err == nil {
			t.Fatalf("%s: decode accepted", tc.name)
		}
	}
}

func TestEmbedRespRoundTrip(t *testing.T) {
	vals := []float32{0, 1.5, -2.25, float32(math.Inf(1)), float32(math.NaN()), 3.1415927}
	frame := AppendEmbedResp(nil, 7, vals)
	op, id, payload, _, err := ReadFrame(bytes.NewReader(frame), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if op != OpEmbedResp || id != 7 {
		t.Fatalf("op %d id %d, want OpEmbedResp id 7", op, id)
	}
	dst := make([]float32, len(vals))
	if err := DecodeEmbedResp(payload, dst); err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if math.Float32bits(dst[i]) != math.Float32bits(vals[i]) {
			t.Fatalf("value %d: bits %#x, want %#x (bit-identity contract)", i,
				math.Float32bits(dst[i]), math.Float32bits(vals[i]))
		}
	}
	if err := DecodeEmbedResp(payload[:len(payload)-2], dst); err == nil {
		t.Fatal("truncated response accepted")
	}
	if err := DecodeEmbedResp(payload, dst[:len(dst)-1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestUpdateRoundTrip(t *testing.T) {
	g := testGeom
	ups := []Update{
		{Table: 0, Rows: []int{5, 5, 9}, Grads: seq(3 * g.Dim)},
		{Table: 2, Rows: []int{0}, Grads: seq(g.Dim)},
	}
	frame := AppendUpdate(nil, 99, 2750, ups)
	op, id, payload, _, err := ReadFrame(bytes.NewReader(frame), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if op != OpUpdate || id != 99 {
		t.Fatalf("op %d id %d, want OpUpdate id 99", op, id)
	}
	var s UpdateScratch
	got, budget, err := DecodeUpdate(payload, g, &s)
	if err != nil {
		t.Fatal(err)
	}
	if budget != 2750 {
		t.Fatalf("deadline budget %d, want 2750", budget)
	}
	if len(got) != len(ups) {
		t.Fatalf("%d updates, want %d", len(got), len(ups))
	}
	for u := range ups {
		if got[u].Table != ups[u].Table || len(got[u].Rows) != len(ups[u].Rows) {
			t.Fatalf("update %d header mismatch: %+v", u, got[u])
		}
		for i, r := range ups[u].Rows {
			if got[u].Rows[i] != r {
				t.Fatalf("update %d row %d: %d, want %d", u, i, got[u].Rows[i], r)
			}
		}
		for i, v := range ups[u].Grads {
			if math.Float32bits(got[u].Grads[i]) != math.Float32bits(v) {
				t.Fatalf("update %d grad %d mismatch", u, i)
			}
		}
	}
	// Second decode into the same scratch must reuse the arenas.
	before := cap(s.Grads)
	if _, _, err := DecodeUpdate(payload, g, &s); err != nil {
		t.Fatal(err)
	}
	if cap(s.Grads) != before {
		t.Fatalf("grad arena regrew from %d to %d on identical decode", before, cap(s.Grads))
	}
}

func TestDecodeUpdateRejectsCorruption(t *testing.T) {
	g := testGeom
	frame := AppendUpdate(nil, 1, 0, []Update{{Table: 1, Rows: []int{2, 3}, Grads: seq(2 * g.Dim)}})
	_, _, payload, _, err := ReadFrame(bytes.NewReader(frame), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	var s UpdateScratch
	mutate := func(f func(p []byte) []byte) []byte {
		return f(append([]byte{}, payload...))
	}
	cases := []struct {
		name    string
		payload []byte
	}{
		{"empty", nil},
		{"budget only", payload[:4]},
		{"zero count", mutate(func(p []byte) []byte { p[4], p[5] = 0, 0; return p })},
		{"huge count", mutate(func(p []byte) []byte { binary.LittleEndian.PutUint16(p[4:], 0xffff); return p })},
		{"table out of range", mutate(func(p []byte) []byte { binary.LittleEndian.PutUint32(p[6:], 99); return p })},
		{"row count over cap", mutate(func(p []byte) []byte {
			binary.LittleEndian.PutUint32(p[10:], uint32(g.MaxBatch*g.Reduction+1))
			return p
		})},
		{"row index out of range", mutate(func(p []byte) []byte {
			binary.LittleEndian.PutUint32(p[14:], uint32(g.TableRows))
			return p
		})},
		{"truncated grads", payload[:len(payload)-3]},
		{"trailing garbage", mutate(func(p []byte) []byte { return append(p, 1, 2, 3) })},
	}
	for _, tc := range cases {
		if _, _, err := DecodeUpdate(tc.payload, g, &s); err == nil {
			t.Fatalf("%s: decode accepted", tc.name)
		}
	}
}

func TestSyncRoundTrip(t *testing.T) {
	g := testGeom
	ups := []Update{
		{Table: 1, Rows: []int{7, 7, 11}, Grads: seq(3 * g.Dim)},
	}
	frame := AppendSync(nil, 55, 19, ups)
	op, id, payload, _, err := ReadFrame(bytes.NewReader(frame), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if op != OpSync || id != 55 {
		t.Fatalf("op %d id %d, want OpSync id 55", op, id)
	}
	var s UpdateScratch
	gotSeq, got, err := DecodeSync(payload, g, &s)
	if err != nil {
		t.Fatal(err)
	}
	if gotSeq != 19 {
		t.Fatalf("seq %d, want 19", gotSeq)
	}
	if len(got) != 1 || got[0].Table != 1 || len(got[0].Rows) != 3 {
		t.Fatalf("decoded %+v", got)
	}
	for i, v := range ups[0].Grads {
		if math.Float32bits(got[0].Grads[i]) != math.Float32bits(v) {
			t.Fatalf("grad %d mismatch", i)
		}
	}
	// Corruption: short seq prefix, and a corrupt inner batch both fail.
	if _, _, err := DecodeSync(payload[:7], g, &s); err == nil {
		t.Fatal("7-byte sync payload accepted")
	}
	if _, _, err := DecodeSync(payload[:len(payload)-2], g, &s); err == nil {
		t.Fatal("truncated sync batch accepted")
	}

	resp := AppendSyncResp(nil, 55, 20)
	op, id, payload, _, err = ReadFrame(bytes.NewReader(resp), nil, 0)
	if err != nil || op != OpSyncResp || id != 55 {
		t.Fatalf("sync resp: op %d id %d err %v", op, id, err)
	}
	newSeq, err := DecodeSyncResp(payload)
	if err != nil || newSeq != 20 {
		t.Fatalf("sync resp decoded seq %d err %v, want 20", newSeq, err)
	}
	if _, err := DecodeSyncResp(payload[:4]); err == nil {
		t.Fatal("short sync resp accepted")
	}
}

func TestErrorRoundTrip(t *testing.T) {
	frame := AppendError(nil, 13, ErrOverloaded, "budget exhausted")
	op, id, payload, _, err := ReadFrame(bytes.NewReader(frame), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if op != OpError || id != 13 {
		t.Fatalf("op %d id %d, want OpError id 13", op, id)
	}
	code, msg, err := DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if code != ErrOverloaded || msg != "budget exhausted" {
		t.Fatalf("decoded %v %q", code, msg)
	}
	if code.String() != "OVERLOADED" {
		t.Fatalf("ErrOverloaded renders %q", code.String())
	}
	if ErrUnavailable.String() != "UNAVAILABLE" {
		t.Fatalf("ErrUnavailable renders %q", ErrUnavailable.String())
	}
	if _, _, err := DecodeError([]byte{1}); err == nil {
		t.Fatal("1-byte error payload accepted")
	}
}

func TestReadFrameLimitsAndTruncation(t *testing.T) {
	frame := AppendFrame(nil, OpPing, 5, nil)
	op, id, payload, _, err := ReadFrame(bytes.NewReader(frame), nil, 0)
	if err != nil || op != OpPing || id != 5 || len(payload) != 0 {
		t.Fatalf("ping frame: op %d id %d payload %d err %v", op, id, len(payload), err)
	}

	// Oversized length field: rejected before any body read.
	huge := binary.LittleEndian.AppendUint32(nil, 1<<30)
	if _, _, _, _, err := ReadFrame(bytes.NewReader(huge), nil, 1<<20); err == nil ||
		!strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversized frame: err = %v", err)
	}
	// A frame over a custom (small) limit is rejected even when well-formed.
	big := AppendFrame(nil, OpMetricsResp, 1, make([]byte, 256))
	if _, _, _, _, err := ReadFrame(bytes.NewReader(big), nil, 64); err == nil {
		t.Fatal("frame above custom limit accepted")
	}
	// Length below the op+id minimum: the stream cannot be resynced.
	short := binary.LittleEndian.AppendUint32(nil, 3)
	if _, _, _, _, err := ReadFrame(bytes.NewReader(append(short, 0, 0, 0)), nil, 0); err == nil {
		t.Fatal("sub-minimum frame length accepted")
	}
	// Truncated body: io error, not a short parse.
	if _, _, _, _, err := ReadFrame(bytes.NewReader(frame[:len(frame)-4]), nil, 0); err == nil {
		t.Fatal("truncated body accepted")
	}
	// Truncated header maps to EOF-ish errors the caller can distinguish.
	if _, _, _, _, err := ReadFrame(bytes.NewReader(frame[:2]), nil, 0); err == nil {
		t.Fatal("truncated header accepted")
	}
	if _, _, _, _, err := ReadFrame(bytes.NewReader(nil), nil, 0); err != io.EOF {
		t.Fatalf("empty stream: err = %v, want io.EOF", err)
	}
}

// TestPipelinedStream decodes several back-to-back frames from one stream
// through a single reused buffer — the reader-loop shape both endpoints
// use.
func TestPipelinedStream(t *testing.T) {
	g := testGeom
	perTable := [][]int{{1, 2}, {3, 4}, {5, 6}}
	var stream []byte
	stream = AppendEmbed(stream, 1, 0, perTable, 1, g.Reduction)
	stream = AppendFrame(stream, OpPing, 2, nil)
	stream = AppendUpdate(stream, 3, 0, []Update{{Table: 0, Rows: []int{1}, Grads: seq(g.Dim)}})
	stream = AppendError(stream, 4, ErrShuttingDown, "drain")

	r := bytes.NewReader(stream)
	var buf []byte
	wantOps := []Op{OpEmbed, OpPing, OpUpdate, OpError}
	for i, want := range wantOps {
		var op Op
		var id uint64
		var err error
		op, id, _, buf, err = ReadFrame(r, buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if op != want || id != uint64(i+1) {
			t.Fatalf("frame %d: op %d id %d, want op %d id %d", i, op, id, want, i+1)
		}
	}
	if _, _, _, _, err := ReadFrame(r, buf, 0); err != io.EOF {
		t.Fatalf("stream end: %v, want io.EOF", err)
	}
}

// seq returns n distinct float32 values.
func seq(n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32(i)*0.25 - 1
	}
	return out
}
