package wire

import (
	"bytes"
	"testing"
)

// TestReadFrameZeroAlloc pins ReadFrame's allocation freedom per frame,
// not amortized over a benchmark: once the reused buffer has grown to the
// frame size, reading a frame — length prefix included — must not touch
// the heap. The length prefix is deliberately read through the reused
// buffer because a local array would escape through the io.Reader
// interface and cost one allocation per frame on every endpoint.
func TestReadFrameZeroAlloc(t *testing.T) {
	g := testGeom
	perTable := make([][]int, g.Tables)
	for tt := range perTable {
		perTable[tt] = make([]int, g.MaxBatch*g.Reduction)
	}
	frame := AppendEmbed(nil, 9, 0, perTable, g.MaxBatch, g.Reduction)
	r := bytes.NewReader(frame)
	buf := make([]byte, 0, len(frame))
	// Warm once so the buffer is at steady-state capacity.
	if _, _, _, buf2, err := ReadFrame(r, buf, 0); err != nil {
		t.Fatal(err)
	} else {
		buf = buf2
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(frame)
		var err error
		_, _, _, buf, err = ReadFrame(r, buf, 0)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ReadFrame allocates %.1f times per frame, want 0", allocs)
	}
}

// TestHandshakeZeroAlloc pins both handshake readers' allocation freedom:
// with a warmed reused buffer, accepting a client hello and parsing a
// server hello must not touch the heap. A server accepting thousands of
// reconnecting clients (and a client supervisor redialing them) runs this
// path on every connection.
func TestHandshakeZeroAlloc(t *testing.T) {
	client := AppendClientHello(nil, 1<<20)
	server := AppendServerHello(nil, Hello{Geom: testGeom, Role: RoleReplica, UpdateSeq: 3, MaxFrameBytes: 1 << 20})
	r := bytes.NewReader(client)
	var buf []byte
	// Warm once so the buffer is at steady-state capacity.
	if _, buf2, err := ReadClientHello(r, buf); err != nil {
		t.Fatal(err)
	} else {
		buf = buf2
	}
	allocs := testing.AllocsPerRun(100, func() {
		r.Reset(client)
		var err error
		_, buf, err = ReadClientHello(r, buf)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ReadClientHello allocates %.1f times per handshake, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		r.Reset(server)
		var err error
		_, buf, err = ReadServerHello(r, buf)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("ReadServerHello allocates %.1f times per handshake, want 0", allocs)
	}
}

// TestBatchCodecZeroAlloc pins the coalescing fast path: stamping a BATCH
// header over reserved headroom and iterating a decoded batch are both
// allocation-free, so coalescing adds no per-frame heap traffic over the
// plain path it replaces.
func TestBatchCodecZeroAlloc(t *testing.T) {
	sub := AppendFrame(nil, OpPing, 7, nil)
	frame := make([]byte, BatchHeaderBytes, BatchHeaderBytes+4*len(sub))
	for i := 0; i < 4; i++ {
		frame = append(frame, sub...)
	}
	allocs := testing.AllocsPerRun(100, func() {
		frame = FinishBatch(frame, 1, 4)
		it, err := DecodeBatch(frame[HeaderBytes:])
		if err != nil {
			t.Fatal(err)
		}
		for {
			_, _, _, ok := it.Next()
			if !ok {
				break
			}
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("batch finish+iterate allocates %.1f times, want 0", allocs)
	}
}

// BenchmarkReadFrame measures the frame reader alone — the per-frame cost
// every endpoint pays before any decode — and reports its allocation rate
// (which must stay 0; BenchmarkNetRoundTrip pins the full network path).
func BenchmarkReadFrame(b *testing.B) {
	g := testGeom
	perTable := make([][]int, g.Tables)
	for tt := range perTable {
		perTable[tt] = make([]int, g.MaxBatch*g.Reduction)
	}
	frame := AppendEmbed(nil, 9, 0, perTable, g.MaxBatch, g.Reduction)
	r := bytes.NewReader(frame)
	var buf []byte
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Reset(frame)
		var err error
		_, _, _, buf, err = ReadFrame(r, buf, 0)
		if err != nil {
			b.Fatal(err)
		}
	}
}
