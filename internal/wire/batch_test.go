package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"strings"
	"testing"
)

// TestBatchRoundTrip is the encode→decode identity property: random
// mixes of sub-frames packed into a BATCH come back op-for-op,
// id-for-id, byte-for-byte.
func TestBatchRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(16)
		type sub struct {
			op      Op
			id      uint64
			payload []byte
		}
		subs := make([]sub, n)
		frames := make([][]byte, n)
		for i := range subs {
			ops := []Op{OpEmbed, OpEmbedResp, OpUpdate, OpPing, OpError, OpSync}
			p := make([]byte, rng.Intn(64))
			rng.Read(p)
			subs[i] = sub{op: ops[rng.Intn(len(ops))], id: rng.Uint64(), payload: p}
			frames[i] = AppendFrame(nil, subs[i].op, subs[i].id, subs[i].payload)
		}
		batch := AppendBatch(nil, uint64(trial), frames...)

		op, id, payload, _, err := ReadFrame(bytes.NewReader(batch), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		if op != OpBatch || id != uint64(trial) {
			t.Fatalf("op %d id %d, want OpBatch id %d", op, id, trial)
		}
		it, err := DecodeBatch(payload)
		if err != nil {
			t.Fatal(err)
		}
		if it.Count() != n {
			t.Fatalf("count %d, want %d", it.Count(), n)
		}
		for i := 0; ; i++ {
			sop, sid, sp, ok := it.Next()
			if !ok {
				if i != n {
					t.Fatalf("iterator stopped after %d of %d sub-frames: %v", i, n, it.Err())
				}
				break
			}
			if sop != subs[i].op || sid != subs[i].id || !bytes.Equal(sp, subs[i].payload) {
				t.Fatalf("sub %d: op %d id %d %d B, want op %d id %d %d B",
					i, sop, sid, len(sp), subs[i].op, subs[i].id, len(subs[i].payload))
			}
		}
		if err := it.Err(); err != nil {
			t.Fatal(err)
		}
		// Draining past the end stays exhausted and error-free.
		if _, _, _, ok := it.Next(); ok || it.Err() != nil {
			t.Fatalf("exhausted iterator yielded more: ok=%v err=%v", ok, it.Err())
		}
	}
}

// TestFinishBatchMatchesAppendBatch pins that the zero-copy headroom path
// and the convenience encoder produce identical bytes.
func TestFinishBatchMatchesAppendBatch(t *testing.T) {
	a := AppendFrame(nil, OpPing, 1, nil)
	b := AppendFrame(nil, OpError, 2, []byte{0, 1, 2})
	want := AppendBatch(nil, 42, a, b)

	got := make([]byte, BatchHeaderBytes, 256)
	got = append(got, a...)
	got = append(got, b...)
	got = FinishBatch(got, 42, 2)
	if !bytes.Equal(got, want) {
		t.Fatalf("FinishBatch bytes differ from AppendBatch:\n%x\n%x", got, want)
	}
}

// TestDecodeBatchRejectsCorruption covers the structural violations the
// tentpole's fuzz satellite targets: mutated counts, truncated interior
// sub-frames, oversized K, nesting, and trailing garbage — all typed
// errors, never panics.
func TestDecodeBatchRejectsCorruption(t *testing.T) {
	sub := AppendFrame(nil, OpPing, 1, nil)
	valid := AppendBatch(nil, 9, sub, sub)
	payload := valid[HeaderBytes:]

	drain := func(p []byte) error {
		it, err := DecodeBatch(p)
		if err != nil {
			return err
		}
		for {
			if _, _, _, ok := it.Next(); !ok {
				break
			}
		}
		return it.Err()
	}
	mutate := func(f func(p []byte) []byte) []byte {
		return f(append([]byte{}, payload...))
	}
	cases := []struct {
		name    string
		payload []byte
		want    string
	}{
		{"empty", nil, "at least 2"},
		{"zero count", mutate(func(p []byte) []byte { p[0], p[1] = 0, 0; return p }), "out of range"},
		{"oversized count", mutate(func(p []byte) []byte {
			binary.LittleEndian.PutUint16(p, MaxBatchSubFrames+1)
			return p
		}), "out of range"},
		{"count above content", mutate(func(p []byte) []byte {
			binary.LittleEndian.PutUint16(p, 3)
			return p
		}), "truncated"},
		{"count below content", mutate(func(p []byte) []byte {
			binary.LittleEndian.PutUint16(p, 1)
			return p
		}), "trailing"},
		{"truncated interior length prefix", payload[:len(payload)-len(sub)-2], "truncated"},
		{"truncated interior body", payload[:len(payload)-2], "truncated"},
		{"sub-frame below op+id minimum", mutate(func(p []byte) []byte {
			binary.LittleEndian.PutUint32(p[2:], 3)
			return p
		}), "minimum"},
		{"nested batch", AppendBatch(nil, 1, valid)[HeaderBytes:], "nest"},
		{"trailing garbage", mutate(func(p []byte) []byte { return append(p, 0xde, 0xad) }), "trailing"},
	}
	for _, tc := range cases {
		err := drain(tc.payload)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// The valid prefix before a violation is still delivered: a batch whose
	// second sub-frame is truncated yields the first, then the error.
	cut := append([]byte{}, payload[:len(payload)-2]...)
	it, err := DecodeBatch(cut)
	if err != nil {
		t.Fatal(err)
	}
	if _, id, _, ok := it.Next(); !ok || id != 1 {
		t.Fatalf("first sub-frame of damaged batch: ok=%v id=%d", ok, id)
	}
	if _, _, _, ok := it.Next(); ok {
		t.Fatal("damaged second sub-frame delivered")
	}
	if it.Err() == nil {
		t.Fatal("damaged batch drained without error")
	}
}

// FuzzDecodeBatch throws arbitrary bytes at the batch decoder: it must
// return typed errors or clean iterations, never panic or over-read.
func FuzzDecodeBatch(f *testing.F) {
	sub := AppendFrame(nil, OpPing, 1, nil)
	f.Add(AppendBatch(nil, 9, sub, sub)[HeaderBytes:])
	f.Add(AppendBatch(nil, 9, AppendFrame(nil, OpEmbed, 2, []byte{1, 2, 3, 4}))[HeaderBytes:])
	f.Add([]byte{2, 0})                                                // count 2, no content
	f.Add([]byte{0xff, 0xff, 0, 0})                                    // oversized count
	f.Add(AppendBatch(nil, 1, AppendBatch(nil, 2, sub))[HeaderBytes:]) // nested
	f.Fuzz(func(t *testing.T, payload []byte) {
		it, err := DecodeBatch(payload)
		if err != nil {
			return
		}
		seen := 0
		for {
			_, _, sp, ok := it.Next()
			if !ok {
				break
			}
			_ = sp
			seen++
		}
		if seen > it.Count() {
			t.Fatalf("iterator yielded %d sub-frames from a count-%d batch", seen, it.Count())
		}
		if it.Err() == nil && seen != it.Count() {
			t.Fatalf("clean drain yielded %d of %d sub-frames", seen, it.Count())
		}
	})
}
