// Package embed implements the embedding-layer golden model: lookup tables
// and the gather / reduce / average / concat semantics of Figure 2 of the
// TensorDIMM paper. It is the functional reference against which the
// near-memory datapath (internal/nmp executing TensorISA on a TensorNode) is
// cross-validated — both must produce bit-identical results.
package embed

import (
	"fmt"
	"math/rand"

	"tensordimm/internal/isa"
	"tensordimm/internal/tensor"
)

// Table is one embedding lookup table: Rows embedding vectors of Dim float32
// elements each (e.g. one vector per user or per item, Section 2.3).
type Table struct {
	rows, dim int
	data      []float32
}

// NewTable allocates a zero-filled table.
func NewTable(rows, dim int) (*Table, error) {
	if rows <= 0 || dim <= 0 {
		return nil, fmt.Errorf("embed: invalid table geometry %dx%d", rows, dim)
	}
	return &Table{rows: rows, dim: dim, data: make([]float32, rows*dim)}, nil
}

// NewRandomTable allocates a table filled with deterministic pseudo-random
// values in [-1, 1), seeded so experiments are reproducible.
func NewRandomTable(rows, dim int, seed int64) (*Table, error) {
	t, err := NewTable(rows, dim)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	for i := range t.data {
		t.data[i] = rng.Float32()*2 - 1
	}
	return t, nil
}

// Rows returns the number of embedding vectors.
func (t *Table) Rows() int { return t.rows }

// Dim returns the embedding dimension.
func (t *Table) Dim() int { return t.dim }

// Bytes returns the table footprint (4 B per element).
func (t *Table) Bytes() int64 { return int64(t.rows) * int64(t.dim) * 4 }

// Row returns embedding vector i, aliasing table storage.
func (t *Table) Row(i int) []float32 {
	return t.data[i*t.dim : (i+1)*t.dim]
}

// Gather performs the embedding lookup of Figure 2 step 1: it returns a
// [len(indices), dim] tensor whose row k is table row indices[k].
func (t *Table) Gather(indices []int) (*tensor.Tensor, error) {
	out := tensor.New(len(indices), t.dim)
	for k, idx := range indices {
		if idx < 0 || idx >= t.rows {
			return nil, fmt.Errorf("embed: index %d out of range [0,%d)", idx, t.rows)
		}
		copy(out.Row(k), t.Row(idx))
	}
	return out, nil
}

// Pool reduces groups of n consecutive rows of a gathered [B*n, dim] tensor
// into a [B, dim] tensor with the given element-wise operator. For RAdd it is
// sum-pooling, for RMul element-wise product (NCF's GMF path), for RMax
// max-pooling. Use Average for mean-pooling.
func Pool(gathered *tensor.Tensor, n int, op isa.ReduceOp) (*tensor.Tensor, error) {
	if gathered.Rank() != 2 {
		return nil, fmt.Errorf("embed: Pool requires rank-2 input")
	}
	rows, dim := gathered.Dim(0), gathered.Dim(1)
	if n <= 0 || rows%n != 0 {
		return nil, fmt.Errorf("embed: cannot pool %d rows in groups of %d", rows, n)
	}
	out := tensor.New(rows/n, dim)
	for g := 0; g < rows/n; g++ {
		dst := out.Row(g)
		copy(dst, gathered.Row(g*n))
		for j := 1; j < n; j++ {
			src := gathered.Row(g*n + j)
			switch op {
			case isa.RAdd:
				for i := range dst {
					dst[i] += src[i]
				}
			case isa.RSub:
				for i := range dst {
					dst[i] -= src[i]
				}
			case isa.RMul:
				for i := range dst {
					dst[i] *= src[i]
				}
			case isa.RMax:
				for i := range dst {
					if src[i] > dst[i] {
						dst[i] = src[i]
					}
				}
			default:
				return nil, fmt.Errorf("embed: unknown reduce op %v", op)
			}
		}
	}
	return out, nil
}

// Average mean-pools groups of n consecutive rows, matching the AVERAGE
// instruction (Figure 9(c)): accumulate then divide.
func Average(gathered *tensor.Tensor, n int) (*tensor.Tensor, error) {
	summed, err := Pool(gathered, n, isa.RAdd)
	if err != nil {
		return nil, err
	}
	return tensor.Scale(summed, 1/float32(n)), nil
}

// Layer describes one embedding layer: a set of tables queried with the same
// batch, each pooled `Reduction`-way with operator `Op`, and the per-table
// results concatenated along the feature dimension (Figure 2).
type Layer struct {
	Tables    []*Table
	Reduction int          // lookups pooled per output row (Table 2 "max reduction")
	Op        isa.ReduceOp // pooling operator; RAdd with averaging when Mean is set
	Mean      bool         // divide pooled sums by Reduction (AVERAGE semantics)
}

// Forward runs the full embedding layer for a batch: perTableIndices[t] holds
// batch*Reduction lookup indices for table t. It returns the concatenated
// [batch, len(Tables)*dim] tensor fed to the DNN.
func (l *Layer) Forward(perTableIndices [][]int, batch int) (*tensor.Tensor, error) {
	if len(perTableIndices) != len(l.Tables) {
		return nil, fmt.Errorf("embed: %d index lists for %d tables", len(perTableIndices), len(l.Tables))
	}
	pooled := make([]*tensor.Tensor, len(l.Tables))
	for t, table := range l.Tables {
		indices := perTableIndices[t]
		if len(indices) != batch*l.Reduction {
			return nil, fmt.Errorf("embed: table %d has %d indices, want batch %d x reduction %d",
				t, len(indices), batch, l.Reduction)
		}
		gathered, err := table.Gather(indices)
		if err != nil {
			return nil, err
		}
		var p *tensor.Tensor
		if l.Reduction == 1 {
			p = gathered
		} else if l.Mean {
			p, err = Average(gathered, l.Reduction)
		} else {
			p, err = Pool(gathered, l.Reduction, l.Op)
		}
		if err != nil {
			return nil, err
		}
		pooled[t] = p
	}
	return tensor.ConcatRows(pooled...)
}

// GatheredBytes returns the bytes read from the tables by one Forward call —
// the quantity the paper's bandwidth analysis calls N*sizeof(embedding).
func (l *Layer) GatheredBytes(batch int) int64 {
	var total int64
	for _, t := range l.Tables {
		total += int64(batch) * int64(l.Reduction) * int64(t.Dim()) * 4
	}
	return total
}

// ReducedBytes returns the bytes of the layer output for one batch.
func (l *Layer) ReducedBytes(batch int) int64 {
	var total int64
	for _, t := range l.Tables {
		total += int64(batch) * int64(t.Dim()) * 4
	}
	return total
}
