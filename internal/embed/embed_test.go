package embed

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tensordimm/internal/isa"
	"tensordimm/internal/tensor"
)

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(0, 4); err == nil {
		t.Fatal("want error for zero rows")
	}
	if _, err := NewTable(4, -1); err == nil {
		t.Fatal("want error for negative dim")
	}
	tb, err := NewTable(10, 8)
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows() != 10 || tb.Dim() != 8 || tb.Bytes() != 10*8*4 {
		t.Fatalf("geometry: %d x %d, %d bytes", tb.Rows(), tb.Dim(), tb.Bytes())
	}
}

func TestRandomTableDeterministic(t *testing.T) {
	a, _ := NewRandomTable(100, 16, 7)
	b, _ := NewRandomTable(100, 16, 7)
	c, _ := NewRandomTable(100, 16, 8)
	for i := 0; i < 100; i++ {
		for j := 0; j < 16; j++ {
			if a.Row(i)[j] != b.Row(i)[j] {
				t.Fatal("same seed must give same table")
			}
		}
	}
	same := true
	for j := 0; j < 16 && same; j++ {
		same = a.Row(0)[j] == c.Row(0)[j]
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestGather(t *testing.T) {
	tb, _ := NewTable(4, 2)
	for i := 0; i < 4; i++ {
		tb.Row(i)[0] = float32(i)
		tb.Row(i)[1] = float32(i * 10)
	}
	g, err := tb.Gather([]int{3, 0, 3})
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.MustFromSlice([]float32{3, 30, 0, 0, 3, 30}, 3, 2)
	if !tensor.Equal(g, want) {
		t.Fatalf("Gather = %v, want %v", g, want)
	}
	if _, err := tb.Gather([]int{4}); err == nil {
		t.Fatal("want out-of-range error")
	}
	if _, err := tb.Gather([]int{-1}); err == nil {
		t.Fatal("want negative-index error")
	}
}

func TestPoolOps(t *testing.T) {
	g := tensor.MustFromSlice([]float32{
		1, 2,
		3, 4,
		5, 6,
		7, 8,
	}, 4, 2)
	sum, err := Pool(g, 2, isa.RAdd)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(sum, tensor.MustFromSlice([]float32{4, 6, 12, 14}, 2, 2)) {
		t.Fatalf("sum pool = %v", sum)
	}
	mul, _ := Pool(g, 2, isa.RMul)
	if !tensor.Equal(mul, tensor.MustFromSlice([]float32{3, 8, 35, 48}, 2, 2)) {
		t.Fatalf("mul pool = %v", mul)
	}
	mx, _ := Pool(g, 2, isa.RMax)
	if !tensor.Equal(mx, tensor.MustFromSlice([]float32{3, 4, 7, 8}, 2, 2)) {
		t.Fatalf("max pool = %v", mx)
	}
	sub, _ := Pool(g, 2, isa.RSub)
	if !tensor.Equal(sub, tensor.MustFromSlice([]float32{-2, -2, -2, -2}, 2, 2)) {
		t.Fatalf("sub pool = %v", sub)
	}
	avg, _ := Average(g, 2)
	if !tensor.Equal(avg, tensor.MustFromSlice([]float32{2, 3, 6, 7}, 2, 2)) {
		t.Fatalf("average = %v", avg)
	}
}

func TestPoolValidation(t *testing.T) {
	g := tensor.New(4, 2)
	if _, err := Pool(g, 3, isa.RAdd); err == nil {
		t.Fatal("want error: 4 rows not divisible by 3")
	}
	if _, err := Pool(g, 0, isa.RAdd); err == nil {
		t.Fatal("want error for n=0")
	}
	if _, err := Pool(tensor.New(4), 2, isa.RAdd); err == nil {
		t.Fatal("want rank error")
	}
	if _, err := Pool(g, 2, isa.ReduceOp(99)); err == nil {
		t.Fatal("want unknown-op error")
	}
}

func TestLayerForward(t *testing.T) {
	t1, _ := NewRandomTable(50, 4, 1)
	t2, _ := NewRandomTable(50, 4, 2)
	layer := &Layer{Tables: []*Table{t1, t2}, Reduction: 2, Op: isa.RAdd, Mean: true}
	batch := 3
	idx1 := []int{0, 1, 2, 3, 4, 5}
	idx2 := []int{10, 11, 12, 13, 14, 15}
	out, err := layer.Forward([][]int{idx1, idx2}, batch)
	if err != nil {
		t.Fatal(err)
	}
	if out.Dim(0) != batch || out.Dim(1) != 8 {
		t.Fatalf("output shape %v, want [3 8]", out.Shape())
	}
	// First output row, first half = mean of table1 rows 0 and 1.
	for j := 0; j < 4; j++ {
		want := (t1.Row(0)[j] + t1.Row(1)[j]) / 2
		if got := out.At(0, j); got != want {
			t.Fatalf("out[0][%d] = %v, want %v", j, got, want)
		}
		want2 := (t2.Row(10)[j] + t2.Row(11)[j]) / 2
		if got := out.At(0, 4+j); got != want2 {
			t.Fatalf("out[0][%d] = %v, want %v", 4+j, got, want2)
		}
	}
}

func TestLayerForwardReduction1(t *testing.T) {
	tb, _ := NewRandomTable(10, 4, 3)
	layer := &Layer{Tables: []*Table{tb}, Reduction: 1}
	out, err := layer.Forward([][]int{{5, 6}}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 4; j++ {
		if out.At(0, j) != tb.Row(5)[j] || out.At(1, j) != tb.Row(6)[j] {
			t.Fatal("reduction=1 must pass rows through")
		}
	}
}

func TestLayerForwardValidation(t *testing.T) {
	tb, _ := NewTable(10, 4)
	layer := &Layer{Tables: []*Table{tb}, Reduction: 2}
	if _, err := layer.Forward([][]int{{1, 2}, {3, 4}}, 1); err == nil {
		t.Fatal("want error: index lists vs tables mismatch")
	}
	if _, err := layer.Forward([][]int{{1, 2, 3}}, 1); err == nil {
		t.Fatal("want error: wrong index count")
	}
	if _, err := layer.Forward([][]int{{1, 99}}, 1); err == nil {
		t.Fatal("want error: index out of range")
	}
}

func TestTrafficAccounting(t *testing.T) {
	tb, _ := NewTable(100, 512)
	layer := &Layer{Tables: []*Table{tb, tb}, Reduction: 50}
	batch := 64
	if got := layer.GatheredBytes(batch); got != int64(batch)*50*2*512*4 {
		t.Fatalf("GatheredBytes = %d", got)
	}
	if got := layer.ReducedBytes(batch); got != int64(batch)*2*512*4 {
		t.Fatalf("ReducedBytes = %d", got)
	}
}

// Property: sum-pool then scale equals Average.
func TestQuickAverageEqualsScaledSum(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%5) + 1
		rng := rand.New(rand.NewSource(seed))
		g := tensor.New(3*n, 8)
		for i := range g.Data() {
			g.Data()[i] = rng.Float32()
		}
		avg, err1 := Average(g, n)
		sum, err2 := Pool(g, n, isa.RAdd)
		if err1 != nil || err2 != nil {
			return false
		}
		return tensor.AllClose(avg, tensor.Scale(sum, 1/float32(n)), 1e-6, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: gather preserves rows exactly (gather(i) == table.Row(i)).
func TestQuickGatherExact(t *testing.T) {
	tb, _ := NewRandomTable(64, 16, 9)
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		indices := make([]int, len(raw))
		for i, r := range raw {
			indices[i] = int(r) % tb.Rows()
		}
		g, err := tb.Gather(indices)
		if err != nil {
			return false
		}
		for k, idx := range indices {
			row := tb.Row(idx)
			for j := range row {
				if g.At(k, j) != row[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
