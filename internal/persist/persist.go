// Package persist is the durability plane of the replica router: a
// per-shard append-only write-ahead log (WAL) of sequenced sub-updates
// plus periodic full-table snapshots, with log trimming once a snapshot
// covers a prefix. It fixes the two failure modes of an in-memory update
// log — unbounded growth under a long-running writer, and total loss of
// the catch-up history on restart.
//
// On-disk layout. Each shard owns one directory, <dir>/shard-NNN/:
//
//	wal.log        append-only record stream (see below)
//	snap-<seq>.dat latest full-table snapshot, absolute values at seq
//	hotrows.dat    persisted hot-row top-K for cache pre-warming
//
// WAL record format. One record per appended sub-update:
//
//	[4 B crc32c][complete wire OpSync frame]
//
// where the frame is exactly what wire.AppendSync produces — the entry's
// sequence number is the SYNC sequence, so log positions and replica
// catch-up positions are the same number — and the checksum (CRC-32
// Castagnoli) covers the frame body (everything after the frame's length
// prefix). Each record is written with a single write call before the
// update fans out to any replica, so on a crash the log is always a
// superset of what any replica applied; at worst the final record is
// torn. Recovery scans the log and truncates at the first bad record —
// short read, checksum mismatch, or undecodable body — which by the
// single-writer/single-write discipline can only be the torn tail.
//
// Snapshots are absolute table state (not compacted deltas: float
// accumulation is order-sensitive, so replaying "merged" gradients would
// break the bit-identity contract). A snapshot at sequence S makes every
// record with seq < S dead; InstallSnapshot persists the snapshot
// (tmp + fsync + rename), deletes older snapshot files, truncates the WAL
// to empty, and drops the in-memory tail — bounding both disk and memory
// to one snapshot interval of records. Boot replays WAL-tail-over-
// snapshot: records the latest snapshot already covers are skipped
// (a crash between the snapshot rename and the WAL truncate leaves such
// a prefix), and a sequence gap anywhere else is a hard error.
//
// Durability scope. Appends are single write calls without per-record
// fsync: the log survives process crashes (SIGKILL included), which is
// the failure mode the router's restart contract covers. Surviving a
// whole-machine power loss would additionally need O_SYNC appends.
// Snapshot and hot-row files are fsynced before rename, so they are
// never observed half-written.
package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"

	"tensordimm/internal/runtime"
	"tensordimm/internal/telemetry"
	"tensordimm/internal/tensor"
	"tensordimm/internal/wire"
)

// DefaultSnapshotEvery is the snapshot interval (in appended entries) a
// zero Config.SnapshotEvery selects.
const DefaultSnapshotEvery = 256

// castagnoli is the CRC-32C table shared by every record checksum.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Config sizes one shard's log. Dim, LocalRows and MaxRowsPerEntry
// describe the shard's flat gather-only table — exactly the geometry the
// shard's replicas announce — and bound what replay will accept.
type Config struct {
	// Dir is the durability root. Every shard of one router shares it;
	// the shard's files live in Dir/shard-NNN/. Empty selects volatile
	// mode: no files, but the same snapshot-based trimming, so memory
	// stays bounded even without durability.
	Dir string
	// Shard is the shard index, naming the per-shard directory.
	Shard int
	// Dim is the embedding dimension of the shard's rows.
	Dim int
	// LocalRows is the shard's flat table height; a snapshot holds
	// exactly LocalRows x Dim values.
	LocalRows int
	// MaxRowsPerEntry caps one entry's row count, bounding record size
	// during replay (the shard's sub-batch cap, Placement.MaxSub).
	MaxRowsPerEntry int
	// SnapshotEvery is how many appended entries trigger NeedSnapshot.
	// Zero selects DefaultSnapshotEvery; negative is invalid.
	SnapshotEvery int
}

// ShardLog is one shard's durable update log: the entries between the
// latest snapshot and the head, with the snapshot itself retained in
// memory for replica restores. Methods are not safe for concurrent use;
// the router serializes them under its per-shard update lock.
type ShardLog struct {
	cfg  Config
	dir  string // shard directory, "" in volatile mode
	geom wire.Geometry

	base uint64 // sequence of the first tail entry (= snapshot seq)
	head uint64 // next sequence to assign
	tail []runtime.TableUpdate

	haveSnap bool
	snapRows []float32 // LocalRows x Dim absolute values at base

	wal      *os.File // nil in volatile mode
	walBytes int64
	broken   error // first unrecoverable WAL write failure, sticky

	encBuf  []byte // reused record encode buffer
	wu      [1]wire.Update
	maxRec  int
	scratch wire.UpdateScratch

	// Durability counters, atomic because the telemetry plane reads them
	// from scrape goroutines while the owner mutates the log under its
	// own lock (see Instrument).
	appends       atomic.Uint64 // WAL/tail appends accepted
	snapInstalls  atomic.Uint64 // snapshots installed (log trims)
	replayEntries atomic.Uint64 // WAL entries replayed at boot
}

// Instrument registers the log's durability counters on a telemetry
// registry (labels distinguish shards). Only the atomic counters are
// registered here; size gauges (WAL bytes, retained tail) are registered
// by the log's owner, which holds the lock those fields are guarded by.
func (l *ShardLog) Instrument(reg *telemetry.Registry, labels ...telemetry.Label) {
	reg.Counter("tensordimm_persist_appends_total", "update records appended to the WAL and tail", l.appends.Load, labels...)
	reg.Counter("tensordimm_persist_snapshots_total", "snapshots installed, trimming the log", l.snapInstalls.Load, labels...)
	reg.Counter("tensordimm_persist_replayed_total", "WAL entries replayed over the boot snapshot", l.replayEntries.Load, labels...)
}

// ShardDir returns the directory shard s's files live in under dir.
func ShardDir(dir string, s int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%03d", s))
}

// Open validates cfg, creates the shard directory if needed, loads the
// latest valid snapshot, and replays the WAL tail over it (truncating a
// torn final record). With an empty Dir it returns an empty volatile log.
func Open(cfg Config) (*ShardLog, error) {
	if cfg.Dim <= 0 || cfg.LocalRows <= 0 || cfg.MaxRowsPerEntry <= 0 {
		return nil, fmt.Errorf("persist: shard %d: geometry (dim %d, rows %d, max rows/entry %d) must be positive",
			cfg.Shard, cfg.Dim, cfg.LocalRows, cfg.MaxRowsPerEntry)
	}
	if cfg.Shard < 0 {
		return nil, fmt.Errorf("persist: shard index %d is negative", cfg.Shard)
	}
	if cfg.SnapshotEvery < 0 {
		return nil, fmt.Errorf("persist: shard %d: SnapshotEvery %d is negative (use 0 for the default)",
			cfg.Shard, cfg.SnapshotEvery)
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}
	l := &ShardLog{
		cfg: cfg,
		geom: wire.Geometry{
			Tables:    1,
			Reduction: 1,
			Dim:       cfg.Dim,
			TableRows: cfg.LocalRows,
			MaxBatch:  cfg.MaxRowsPerEntry,
		},
		// Worst-case record: crc + frame header + seq + count + table +
		// row count + rows + gradients, with slack for growth rounding.
		maxRec: 4 + wire.HeaderBytes + 8 + 2 + 4 + 4 +
			4*cfg.MaxRowsPerEntry + 4*cfg.MaxRowsPerEntry*cfg.Dim + 64,
	}
	if cfg.Dir == "" {
		return l, nil
	}
	l.dir = ShardDir(cfg.Dir, cfg.Shard)
	if err := os.MkdirAll(l.dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: shard %d: %w", cfg.Shard, err)
	}
	if err := l.loadSnapshot(); err != nil {
		return nil, err
	}
	l.head = l.base
	f, err := os.OpenFile(filepath.Join(l.dir, "wal.log"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: shard %d: %w", cfg.Shard, err)
	}
	l.wal = f
	if err := l.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return l, nil
}

// Base returns the sequence number of the first retained entry: every
// entry below it is covered by the snapshot, and a replica behind it must
// be restored from the snapshot before replay can continue.
func (l *ShardLog) Base() uint64 { return l.base }

// Head returns the next sequence number to assign — the count of entries
// ever appended (or covered by the boot snapshot).
func (l *ShardLog) Head() uint64 { return l.head }

// WALBytes returns the current WAL file size (0 in volatile mode) — the
// quantity the soak test pins as bounded.
func (l *ShardLog) WALBytes() int64 { return l.walBytes }

// Entries returns the retained entries from sequence `from` (which must
// be within [Base, Head]) to the head. The slice aliases the log's tail
// and is valid until the next Append or InstallSnapshot.
func (l *ShardLog) Entries(from uint64) []runtime.TableUpdate {
	if from < l.base || from > l.head {
		return nil
	}
	return l.tail[from-l.base:]
}

// NeedSnapshot reports whether the retained tail has reached the
// snapshot interval, so the owner should scrape a snapshot and install
// it to trim the log.
func (l *ShardLog) NeedSnapshot() bool {
	return l.head-l.base >= uint64(l.cfg.SnapshotEvery)
}

// Snapshot returns the retained snapshot (sequence and LocalRows x Dim
// absolute values), ok = false when none has been installed or loaded.
// The slice is owned by the log; callers must not mutate it.
func (l *ShardLog) Snapshot() (seq uint64, rows []float32, ok bool) {
	return l.base, l.snapRows, l.haveSnap
}

// Append assigns the update the next sequence number, writes its WAL
// record (one write call — callers fan the entry out to replicas only
// after Append returns), and retains it in the tail. The log takes
// ownership of up's Rows and Grads. A failed durable write leaves the
// log exactly as before the call; if the partial record cannot be
// truncated away the log turns sticky-broken, failing every later
// Append, because appending past a torn middle record would corrupt
// recovery.
func (l *ShardLog) Append(up runtime.TableUpdate) error {
	if l.broken != nil {
		return l.broken
	}
	if l.wal != nil {
		l.wu[0] = wire.Update{Table: up.Table, Rows: up.Rows, Grads: up.Grads.Data()}
		l.encBuf = append(l.encBuf[:0], 0, 0, 0, 0) // crc placeholder
		l.encBuf = wire.AppendSync(l.encBuf, 0, l.head, l.wu[:])
		l.wu[0] = wire.Update{}
		// The checksum covers the frame body: everything after the
		// frame's 4-byte length prefix.
		binary.LittleEndian.PutUint32(l.encBuf, crc32.Checksum(l.encBuf[8:], castagnoli))
		if _, err := l.wal.Write(l.encBuf); err != nil {
			if terr := l.wal.Truncate(l.walBytes); terr != nil {
				l.broken = fmt.Errorf("persist: shard %d: WAL unrecoverable after failed append (%v): %w",
					l.cfg.Shard, err, terr)
				return l.broken
			}
			if _, serr := l.wal.Seek(l.walBytes, io.SeekStart); serr != nil {
				l.broken = fmt.Errorf("persist: shard %d: WAL unrecoverable after failed append (%v): %w",
					l.cfg.Shard, err, serr)
				return l.broken
			}
			return fmt.Errorf("persist: shard %d: WAL append: %w", l.cfg.Shard, err)
		}
		l.walBytes += int64(len(l.encBuf))
	}
	l.tail = append(l.tail, up)
	l.head++
	l.appends.Add(1)
	return nil
}

// InstallSnapshot replaces the log's prefix with an absolute snapshot of
// the whole shard table taken at sequence seq, which must equal Head()
// (snapshots are scraped with the update lock held, so the state is
// exactly the log head). The log takes ownership of rows. In durable
// mode the snapshot is written tmp + fsync + rename, older snapshot
// files are deleted, and the WAL is truncated to empty; in both modes
// the in-memory tail is dropped, which is what bounds the log.
func (l *ShardLog) InstallSnapshot(seq uint64, rows []float32) error {
	if seq != l.head {
		return fmt.Errorf("persist: shard %d: snapshot at seq %d, log head is %d — snapshots must be taken at the head",
			l.cfg.Shard, seq, l.head)
	}
	if len(rows) != l.cfg.LocalRows*l.cfg.Dim {
		return fmt.Errorf("persist: shard %d: snapshot holds %d values, want %d (%d rows x dim %d)",
			l.cfg.Shard, len(rows), l.cfg.LocalRows*l.cfg.Dim, l.cfg.LocalRows, l.cfg.Dim)
	}
	if l.wal != nil {
		if err := l.writeSnapshot(seq, rows); err != nil {
			return err
		}
		if err := l.wal.Truncate(0); err != nil {
			return fmt.Errorf("persist: shard %d: trimming WAL: %w", l.cfg.Shard, err)
		}
		if _, err := l.wal.Seek(0, io.SeekStart); err != nil {
			return fmt.Errorf("persist: shard %d: trimming WAL: %w", l.cfg.Shard, err)
		}
		l.walBytes = 0
	}
	l.base = seq
	l.tail = l.tail[:0]
	l.snapRows = rows
	l.haveSnap = true
	l.snapInstalls.Add(1)
	return nil
}

// Close closes the WAL file handle. The log must not be used afterwards.
func (l *ShardLog) Close() error {
	if l.wal == nil {
		return nil
	}
	err := l.wal.Close()
	l.wal = nil
	return err
}

// snapMagic opens a snapshot file: "TDSN" (TensorDIMM snapshot).
const snapMagic = 0x5444534e

// snapName renders the snapshot filename for seq, zero-padded so the
// lexical order of directory listings is the numeric order.
func snapName(seq uint64) string {
	return fmt.Sprintf("snap-%020d.dat", seq)
}

// snapSeq parses a snapshot filename, ok = false for other files.
func snapSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".dat") {
		return 0, false
	}
	var seq uint64
	if _, err := fmt.Sscanf(name, "snap-%d.dat", &seq); err != nil {
		return 0, false
	}
	return seq, true
}

// writeSnapshot persists rows at seq: tmp file, fsync, rename, then
// delete every older snapshot file.
func (l *ShardLog) writeSnapshot(seq uint64, rows []float32) error {
	buf := make([]byte, 0, 4+4+8+8+4*len(rows)+4)
	buf = binary.LittleEndian.AppendUint32(buf, snapMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(l.cfg.Dim))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(l.cfg.LocalRows))
	buf = binary.LittleEndian.AppendUint64(buf, seq)
	buf = wire.AppendFloat32s(buf, rows)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	tmp := filepath.Join(l.dir, "snap.tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: shard %d: snapshot: %w", l.cfg.Shard, err)
	}
	if _, err := f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: shard %d: snapshot: %w", l.cfg.Shard, err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, snapName(seq))); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: shard %d: snapshot: %w", l.cfg.Shard, err)
	}
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return nil // the snapshot landed; stale-file cleanup is advisory
	}
	for _, e := range ents {
		if s, ok := snapSeq(e.Name()); ok && s != seq {
			os.Remove(filepath.Join(l.dir, e.Name()))
		}
	}
	return nil
}

// loadSnapshot finds the newest snapshot file that validates, adopts its
// sequence as the log base, and deletes every other snapshot file (a
// newer-but-corrupt snapshot can only be a torn install whose WAL records
// were not yet trimmed, so falling back to an older one stays correct).
func (l *ShardLog) loadSnapshot() error {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("persist: shard %d: %w", l.cfg.Shard, err)
	}
	var seqs []uint64
	for _, e := range ents {
		if s, ok := snapSeq(e.Name()); ok {
			seqs = append(seqs, s)
		}
	}
	os.Remove(filepath.Join(l.dir, "snap.tmp"))
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] > seqs[j] })
	for _, seq := range seqs {
		rows, ok := l.readSnapshot(seq)
		if !ok {
			os.Remove(filepath.Join(l.dir, snapName(seq)))
			continue
		}
		l.base = seq
		l.snapRows = rows
		l.haveSnap = true
		for _, s := range seqs {
			if s != seq {
				os.Remove(filepath.Join(l.dir, snapName(s)))
			}
		}
		return nil
	}
	return nil
}

// readSnapshot loads and validates one snapshot file.
func (l *ShardLog) readSnapshot(seq uint64) ([]float32, bool) {
	buf, err := os.ReadFile(filepath.Join(l.dir, snapName(seq)))
	if err != nil {
		return nil, false
	}
	want := 4 + 4 + 8 + 8 + 4*l.cfg.LocalRows*l.cfg.Dim + 4
	if len(buf) != want {
		return nil, false
	}
	if crc32.Checksum(buf[:len(buf)-4], castagnoli) != binary.LittleEndian.Uint32(buf[len(buf)-4:]) {
		return nil, false
	}
	if binary.LittleEndian.Uint32(buf) != snapMagic ||
		int(binary.LittleEndian.Uint32(buf[4:])) != l.cfg.Dim ||
		binary.LittleEndian.Uint64(buf[8:]) != uint64(l.cfg.LocalRows) ||
		binary.LittleEndian.Uint64(buf[16:]) != seq {
		return nil, false
	}
	rows := make([]float32, l.cfg.LocalRows*l.cfg.Dim)
	wire.DecodeFloat32s(rows, buf[24:len(buf)-4])
	return rows, true
}

// replay scans the WAL from the start, rebuilding the in-memory tail.
// Records the snapshot already covers are skipped; the first record that
// fails to read, checksum or decode is treated as the torn tail and the
// file is truncated there; a sequence gap among valid records is a hard
// error (it cannot come from a torn write).
func (l *ShardLog) replay() error {
	if _, err := l.wal.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("persist: shard %d: %w", l.cfg.Shard, err)
	}
	var (
		off    int64
		crcBuf [4]byte
		buf    []byte
	)
	for {
		if _, err := io.ReadFull(l.wal, crcBuf[:]); err != nil {
			if err == io.EOF {
				break // clean end of log
			}
			return l.truncateAt(off) // torn mid-crc
		}
		op, _, payload, nbuf, err := wire.ReadFrame(l.wal, buf, l.maxRec)
		buf = nbuf
		if err != nil || op != wire.OpSync {
			return l.truncateAt(off)
		}
		if crc32.Checksum(buf, castagnoli) != binary.LittleEndian.Uint32(crcBuf[:]) {
			return l.truncateAt(off)
		}
		seq, ups, err := wire.DecodeSync(payload, l.geom, &l.scratch)
		if err != nil || len(ups) != 1 {
			return l.truncateAt(off)
		}
		off += 4 + 4 + int64(len(buf))
		if seq < l.base {
			continue // covered by the snapshot; trim raced the crash
		}
		if seq != l.head {
			return fmt.Errorf("persist: shard %d: WAL record at seq %d, want %d — the log belongs to a different history",
				l.cfg.Shard, seq, l.head)
		}
		rows := make([]int, len(ups[0].Rows))
		copy(rows, ups[0].Rows)
		grads := tensor.New(len(rows), l.cfg.Dim)
		copy(grads.Data(), ups[0].Grads)
		l.tail = append(l.tail, runtime.TableUpdate{Table: ups[0].Table, Rows: rows, Grads: grads})
		l.head++
		l.replayEntries.Add(1)
	}
	l.walBytes = off
	if _, err := l.wal.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("persist: shard %d: %w", l.cfg.Shard, err)
	}
	return nil
}

// truncateAt cuts the torn tail off at the last good record boundary and
// positions the file for appending.
func (l *ShardLog) truncateAt(off int64) error {
	if err := l.wal.Truncate(off); err != nil {
		return fmt.Errorf("persist: shard %d: truncating torn WAL tail: %w", l.cfg.Shard, err)
	}
	if _, err := l.wal.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("persist: shard %d: %w", l.cfg.Shard, err)
	}
	l.walBytes = off
	return nil
}
