package persist_test

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"tensordimm/internal/persist"
	"tensordimm/internal/runtime"
	"tensordimm/internal/tensor"
)

const (
	testDim   = 8
	testRows  = 32
	testMaxRE = 4
)

func testCfg(dir string) persist.Config {
	return persist.Config{
		Dir:             dir,
		Shard:           1,
		Dim:             testDim,
		LocalRows:       testRows,
		MaxRowsPerEntry: testMaxRE,
		SnapshotEvery:   1 << 20, // effectively off unless a test overrides
	}
}

// mkUpdate builds a deterministic update for sequence i.
func mkUpdate(i int) runtime.TableUpdate {
	rng := rand.New(rand.NewSource(int64(i) + 7))
	n := 1 + i%testMaxRE
	rows := make([]int, n)
	grads := tensor.New(n, testDim)
	for j := range rows {
		rows[j] = rng.Intn(testRows)
		for k := 0; k < testDim; k++ {
			grads.Data()[j*testDim+k] = rng.Float32() - 0.5
		}
	}
	return runtime.TableUpdate{Table: 0, Rows: rows, Grads: grads}
}

func mustOpen(t *testing.T, cfg persist.Config) *persist.ShardLog {
	t.Helper()
	l, err := persist.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func appendN(t *testing.T, l *persist.ShardLog, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		if err := l.Append(mkUpdate(i)); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
}

// checkEntries asserts the log retains exactly updates [from, from+n) of
// the deterministic sequence, bit-identical.
func checkEntries(t *testing.T, l *persist.ShardLog, from, n int) {
	t.Helper()
	if l.Base() != uint64(from) || l.Head() != uint64(from+n) {
		t.Fatalf("log spans [%d, %d), want [%d, %d)", l.Base(), l.Head(), from, from+n)
	}
	got := l.Entries(uint64(from))
	if len(got) != n {
		t.Fatalf("Entries returned %d updates, want %d", len(got), n)
	}
	for i, up := range got {
		want := mkUpdate(from + i)
		if fmt.Sprint(up.Rows) != fmt.Sprint(want.Rows) {
			t.Fatalf("entry %d rows %v, want %v", from+i, up.Rows, want.Rows)
		}
		g, w := up.Grads.Data(), want.Grads.Data()
		for k := range w {
			if g[k] != w[k] {
				t.Fatalf("entry %d grad[%d] = %v, want %v", from+i, k, g[k], w[k])
			}
		}
	}
}

func TestVolatileAppendAndTrim(t *testing.T) {
	cfg := testCfg("")
	cfg.SnapshotEvery = 4
	l := mustOpen(t, cfg)
	defer l.Close()
	appendN(t, l, 0, 4)
	if !l.NeedSnapshot() {
		t.Fatal("NeedSnapshot false after SnapshotEvery appends")
	}
	if l.WALBytes() != 0 {
		t.Fatalf("volatile log reports %d WAL bytes", l.WALBytes())
	}
	snap := make([]float32, testRows*testDim)
	if err := l.InstallSnapshot(4, snap); err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	checkEntries(t, l, 4, 0)
	if _, _, ok := l.Snapshot(); !ok {
		t.Fatal("Snapshot not retained")
	}
	appendN(t, l, 4, 2)
	checkEntries(t, l, 4, 2)
}

func TestDurableReplay(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, testCfg(dir))
	appendN(t, l, 0, 7)
	if l.WALBytes() <= 0 {
		t.Fatal("durable log reports no WAL bytes")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	l2 := mustOpen(t, testCfg(dir))
	defer l2.Close()
	checkEntries(t, l2, 0, 7)
}

func TestSnapshotTrimsAndReopens(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, testCfg(dir))
	appendN(t, l, 0, 5)
	snap := make([]float32, testRows*testDim)
	for i := range snap {
		snap[i] = float32(i) * 0.25
	}
	if err := l.InstallSnapshot(5, snap); err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	if l.WALBytes() != 0 {
		t.Fatalf("WAL holds %d bytes after snapshot trim", l.WALBytes())
	}
	appendN(t, l, 5, 3)
	l.Close()

	l2 := mustOpen(t, testCfg(dir))
	defer l2.Close()
	checkEntries(t, l2, 5, 3)
	seq, rows, ok := l2.Snapshot()
	if !ok || seq != 5 {
		t.Fatalf("reopened snapshot (seq %d, ok %v), want seq 5", seq, ok)
	}
	for i := range snap {
		if rows[i] != snap[i] {
			t.Fatalf("snapshot value %d = %v, want %v", i, rows[i], snap[i])
		}
	}
}

func TestSnapshotValidation(t *testing.T) {
	l := mustOpen(t, testCfg(""))
	defer l.Close()
	appendN(t, l, 0, 2)
	snap := make([]float32, testRows*testDim)
	if err := l.InstallSnapshot(1, snap); err == nil {
		t.Fatal("InstallSnapshot below the head succeeded")
	}
	if err := l.InstallSnapshot(2, snap[:8]); err == nil {
		t.Fatal("InstallSnapshot with a short table succeeded")
	}
}

func TestOpenValidation(t *testing.T) {
	for _, cfg := range []persist.Config{
		{Dim: 0, LocalRows: 1, MaxRowsPerEntry: 1},
		{Dim: 1, LocalRows: 0, MaxRowsPerEntry: 1},
		{Dim: 1, LocalRows: 1, MaxRowsPerEntry: 0},
		{Dim: 1, LocalRows: 1, MaxRowsPerEntry: 1, Shard: -1},
		{Dim: 1, LocalRows: 1, MaxRowsPerEntry: 1, SnapshotEvery: -1},
	} {
		if _, err := persist.Open(cfg); err == nil {
			t.Fatalf("Open accepted invalid config %+v", cfg)
		}
	}
}

// walBoundaries parses the record boundaries of a WAL file using only
// the documented record layout: [4 B crc][4 B frame length][frame body].
func walBoundaries(t *testing.T, wal []byte) []int {
	t.Helper()
	bounds := []int{0}
	off := 0
	for off+8 <= len(wal) {
		n := int(binary.LittleEndian.Uint32(wal[off+4:]))
		if off+8+n > len(wal) {
			break
		}
		off += 8 + n
		bounds = append(bounds, off)
	}
	return bounds
}

// TestTornTailEveryByte cuts a WAL at every possible byte boundary and
// proves recovery always yields exactly the longest whole-record prefix —
// the single-writer torn-tail contract.
func TestTornTailEveryByte(t *testing.T) {
	src := t.TempDir()
	l := mustOpen(t, testCfg(src))
	const records = 4
	appendN(t, l, 0, records)
	l.Close()
	walPath := filepath.Join(persist.ShardDir(src, 1), "wal.log")
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	bounds := walBoundaries(t, wal)
	if len(bounds) != records+1 {
		t.Fatalf("parsed %d record boundaries, want %d", len(bounds)-1, records+1)
	}

	step := 1
	if testing.Short() {
		step = 7
	}
	for cut := 0; cut <= len(wal); cut += step {
		whole := 0
		for r := 1; r < len(bounds); r++ {
			if bounds[r] <= cut {
				whole = r
			}
		}
		dir := t.TempDir()
		if err := os.MkdirAll(persist.ShardDir(dir, 1), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(persist.ShardDir(dir, 1), "wal.log"), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		lc := mustOpen(t, testCfg(dir))
		checkEntries(t, lc, 0, whole)
		if lc.WALBytes() != int64(bounds[whole]) {
			t.Fatalf("cut %d: WAL trimmed to %d bytes, want %d", cut, lc.WALBytes(), bounds[whole])
		}
		// The log must accept appends after recovery.
		appendN(t, lc, whole, 1)
		lc.Close()
	}
}

// TestReplaySkipsSnapshotCoveredRecords simulates a crash between the
// snapshot rename and the WAL truncate: the stale records (all below the
// snapshot sequence) must be skipped, not replayed.
func TestReplaySkipsSnapshotCoveredRecords(t *testing.T) {
	dir := t.TempDir()
	walPath := filepath.Join(persist.ShardDir(dir, 1), "wal.log")
	l := mustOpen(t, testCfg(dir))
	appendN(t, l, 0, 3)
	stale, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	snap := make([]float32, testRows*testDim)
	if err := l.InstallSnapshot(3, snap); err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Undo the trim, as if the process died before Truncate ran.
	if err := os.WriteFile(walPath, stale, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := mustOpen(t, testCfg(dir))
	defer l2.Close()
	checkEntries(t, l2, 3, 0)
	appendN(t, l2, 3, 1)
	checkEntries(t, l2, 3, 1)
}

// TestReplayRejectsSequenceGap removes a middle record: unlike a torn
// tail, an interior gap cannot come from a crashed append, so recovery
// must refuse the log rather than silently skip history.
func TestReplayRejectsSequenceGap(t *testing.T) {
	dir := t.TempDir()
	l := mustOpen(t, testCfg(dir))
	appendN(t, l, 0, 3)
	l.Close()
	walPath := filepath.Join(persist.ShardDir(dir, 1), "wal.log")
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	bounds := walBoundaries(t, wal)
	gapped := append(append([]byte{}, wal[:bounds[1]]...), wal[bounds[2]:]...)
	if err := os.WriteFile(walPath, gapped, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := persist.Open(testCfg(dir)); err == nil {
		t.Fatal("Open accepted a WAL with an interior sequence gap")
	}
}

// TestWALBytesBoundedUnderSnapshots is the package-level soak: appends
// far more entries than the snapshot interval and asserts the WAL and
// the retained tail never exceed one interval.
func TestWALBytesBoundedUnderSnapshots(t *testing.T) {
	dir := t.TempDir()
	cfg := testCfg(dir)
	cfg.SnapshotEvery = 8
	l := mustOpen(t, cfg)
	defer l.Close()
	total := 500
	if testing.Short() {
		total = 100
	}
	var maxWAL int64
	snap := make([]float32, testRows*testDim)
	for i := 0; i < total; i++ {
		if err := l.Append(mkUpdate(i)); err != nil {
			t.Fatal(err)
		}
		if l.NeedSnapshot() {
			fresh := make([]float32, len(snap))
			copy(fresh, snap)
			if err := l.InstallSnapshot(l.Head(), fresh); err != nil {
				t.Fatal(err)
			}
		}
		if l.WALBytes() > maxWAL {
			maxWAL = l.WALBytes()
		}
		if got := l.Head() - l.Base(); got > uint64(cfg.SnapshotEvery) {
			t.Fatalf("retained tail grew to %d entries (interval %d)", got, cfg.SnapshotEvery)
		}
	}
	// One record is bounded by the max-entry frame; 8 of them stay far
	// under this ceiling unless trimming silently stopped.
	ceiling := int64(cfg.SnapshotEvery) * int64(8+30+4*testMaxRE+4*testMaxRE*testDim+64)
	if maxWAL == 0 || maxWAL > ceiling {
		t.Fatalf("WAL peaked at %d bytes (ceiling %d)", maxWAL, ceiling)
	}
}

func TestEntriesOutOfRange(t *testing.T) {
	l := mustOpen(t, testCfg(""))
	defer l.Close()
	appendN(t, l, 0, 2)
	if got := l.Entries(3); got != nil {
		t.Fatalf("Entries beyond head returned %d updates", len(got))
	}
}

func TestHotRowsRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if rows, err := persist.LoadHotRows(dir, 0); err != nil || rows != nil {
		t.Fatalf("missing file: rows %v, err %v", rows, err)
	}
	want := []int{9, 3, 27, 0, 14}
	if err := persist.SaveHotRows(dir, 0, want); err != nil {
		t.Fatalf("SaveHotRows: %v", err)
	}
	got, err := persist.LoadHotRows(dir, 0)
	if err != nil {
		t.Fatalf("LoadHotRows: %v", err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("hot rows %v, want %v", got, want)
	}

	// Corrupt file: advisory load falls back to a cold start.
	path := filepath.Join(persist.ShardDir(dir, 0), "hotrows.dat")
	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xff
	os.WriteFile(path, raw, 0o644)
	if rows, err := persist.LoadHotRows(dir, 0); err != nil || rows != nil {
		t.Fatalf("corrupt file: rows %v, err %v", rows, err)
	}

	// Saving an empty list removes the file.
	if err := persist.SaveHotRows(dir, 0, want); err != nil {
		t.Fatal(err)
	}
	if err := persist.SaveHotRows(dir, 0, nil); err != nil {
		t.Fatalf("SaveHotRows(nil): %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("hotrows.dat still present after empty save (err %v)", err)
	}
	if err := persist.SaveHotRows(dir, 0, []int{-1}); err == nil {
		t.Fatal("SaveHotRows accepted a negative row")
	}
}
