package persist

import (
	"strings"
	"testing"

	"tensordimm/internal/runtime"
	"tensordimm/internal/tensor"
)

// TestAppendTurnsStickyBroken is the one white-box test: it yanks the
// WAL file descriptor out from under a healthy log so the next append's
// write AND its cleanup truncate both fail — the case where a partial
// record may be sitting in the middle of the file. The log must turn
// sticky-broken and refuse every later append, because appending past a
// torn middle record would corrupt recovery.
func TestAppendTurnsStickyBroken(t *testing.T) {
	l, err := Open(Config{
		Dir: t.TempDir(), Shard: 0, Dim: 4, LocalRows: 8,
		MaxRowsPerEntry: 2, SnapshotEvery: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	up := runtime.TableUpdate{Table: 0, Rows: []int{1}, Grads: tensor.New(1, 4)}
	if err := l.Append(up); err != nil {
		t.Fatal(err)
	}
	if err := l.wal.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(up); err == nil || !strings.Contains(err.Error(), "unrecoverable") {
		t.Fatalf("append on a dead WAL fd: %v, want sticky unrecoverable error", err)
	}
	if l.Head() != 1 {
		t.Fatalf("failed append advanced the head to %d", l.Head())
	}
	if err := l.Append(up); err == nil || !strings.Contains(err.Error(), "unrecoverable") {
		t.Fatalf("append after the log broke: %v, want the sticky error again", err)
	}
}
