package persist

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// hotMagic opens a hot-rows file: "TDHR" (TensorDIMM hot rows).
const hotMagic = 0x54444852

// SaveHotRows persists a shard's hot-row top-K (flat local row indices,
// hottest first) to <dir>/shard-NNN/hotrows.dat, written tmp + fsync +
// rename so a crash never leaves a half-written file. An empty rows list
// removes the file.
func SaveHotRows(dir string, shard int, rows []int) error {
	sd := ShardDir(dir, shard)
	path := filepath.Join(sd, "hotrows.dat")
	if len(rows) == 0 {
		if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("persist: shard %d: hot rows: %w", shard, err)
		}
		return nil
	}
	if err := os.MkdirAll(sd, 0o755); err != nil {
		return fmt.Errorf("persist: shard %d: hot rows: %w", shard, err)
	}
	buf := make([]byte, 0, 4+4+4*len(rows)+4)
	buf = binary.LittleEndian.AppendUint32(buf, hotMagic)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rows)))
	for _, r := range rows {
		if r < 0 {
			return fmt.Errorf("persist: shard %d: hot row index %d is negative", shard, r)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, castagnoli))

	tmp := filepath.Join(sd, "hotrows.tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("persist: shard %d: hot rows: %w", shard, err)
	}
	if _, err = f.Write(buf); err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); cerr != nil && err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("persist: shard %d: hot rows: %w", shard, err)
	}
	return nil
}

// LoadHotRows reads a shard's persisted hot-row list, hottest first. A
// missing, truncated or corrupt file yields (nil, nil): pre-warming is
// advisory, so a cold start is the correct fallback, never a boot
// failure. Row indices are not range-checked here — the cache warmer
// validates them against its own geometry.
func LoadHotRows(dir string, shard int) ([]int, error) {
	buf, err := os.ReadFile(filepath.Join(ShardDir(dir, shard), "hotrows.dat"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("persist: shard %d: hot rows: %w", shard, err)
	}
	if len(buf) < 4+4+4 || binary.LittleEndian.Uint32(buf) != hotMagic {
		return nil, nil
	}
	if crc32.Checksum(buf[:len(buf)-4], castagnoli) != binary.LittleEndian.Uint32(buf[len(buf)-4:]) {
		return nil, nil
	}
	n := int(binary.LittleEndian.Uint32(buf[4:]))
	if n <= 0 || len(buf) != 4+4+4*n+4 {
		return nil, nil
	}
	rows := make([]int, n)
	for i := range rows {
		rows[i] = int(binary.LittleEndian.Uint32(buf[8+4*i:]))
	}
	return rows, nil
}
