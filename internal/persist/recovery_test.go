package persist_test

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"tensordimm/internal/persist"
	"tensordimm/internal/wire"
)

// TestSnapshotEveryDefault pins that a zero SnapshotEvery selects the
// package default interval.
func TestSnapshotEveryDefault(t *testing.T) {
	cfg := testCfg("")
	cfg.SnapshotEvery = 0
	l := mustOpen(t, cfg)
	appendN(t, l, 0, persist.DefaultSnapshotEvery-1)
	if l.NeedSnapshot() {
		t.Fatalf("NeedSnapshot one entry short of the default interval")
	}
	appendN(t, l, persist.DefaultSnapshotEvery-1, 1)
	if !l.NeedSnapshot() {
		t.Fatalf("NeedSnapshot false at the default interval %d", persist.DefaultSnapshotEvery)
	}
}

// TestOpenIOErrors drives Open into the filesystem failures it must
// report rather than swallow: a durability root that is a plain file,
// and a WAL path squatted by a directory.
func TestOpenIOErrors(t *testing.T) {
	root := t.TempDir()

	file := filepath.Join(root, "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := testCfg(file)
	if _, err := persist.Open(cfg); err == nil {
		t.Fatalf("Open with a file as the durability root succeeded")
	}

	cfg = testCfg(root)
	if err := os.MkdirAll(filepath.Join(persist.ShardDir(root, cfg.Shard), "wal.log"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := persist.Open(cfg); err == nil {
		t.Fatalf("Open with a directory squatting wal.log succeeded")
	}
}

// TestSnapshotFallback pins boot-time snapshot selection: the newest
// snapshot file that VALIDATES wins, and everything else — truncated,
// corrupt, mislabeled, or unparsable snapshot files — is deleted, never
// adopted. A newer-but-invalid snapshot can only be a torn install whose
// WAL records were not yet trimmed, so falling back stays correct.
func TestSnapshotFallback(t *testing.T) {
	dir := t.TempDir()
	cfg := testCfg(dir)
	l := mustOpen(t, cfg)
	appendN(t, l, 0, 4)
	rows := make([]float32, testRows*testDim)
	for i := range rows {
		rows[i] = float32(i)
	}
	if err := l.InstallSnapshot(4, rows); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	sd := persist.ShardDir(dir, cfg.Shard)
	snap := func(seq uint64) string {
		return filepath.Join(sd, "snap-"+padSeq(seq)+".dat")
	}
	good, err := os.ReadFile(snap(4))
	if err != nil {
		t.Fatal(err)
	}
	// seq 9: truncated (wrong length). seq 8: right length, bad crc.
	// seq 7: a byte-valid file whose header says seq 4 — name/header
	// mismatch. Plus a file that parses as no snapshot at all.
	if err := os.WriteFile(snap(9), good[:len(good)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xff
	if err := os.WriteFile(snap(8), bad, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap(7), good, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sd, "snap-garbage.dat"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}

	l = mustOpen(t, cfg)
	defer l.Close()
	if seq, got, ok := l.Snapshot(); !ok || seq != 4 || got[3] != 3 {
		t.Fatalf("fallback adopted snapshot seq %d ok=%v, want the valid one at 4", seq, ok)
	}
	for _, s := range []uint64{7, 8, 9} {
		if _, err := os.Stat(snap(s)); !os.IsNotExist(err) {
			t.Fatalf("invalid snapshot at seq %d survived recovery", s)
		}
	}
}

// padSeq renders seq the way snapshot filenames do (20 digits).
func padSeq(seq uint64) string {
	s := "00000000000000000000"
	for i := len(s) - 1; seq > 0; i-- {
		s = s[:i] + string(rune('0'+seq%10)) + s[i+1:]
		seq /= 10
	}
	return s
}

// TestReplayCorruptRecords pins the two non-torn corruption shapes:
// an intact-length record whose body no longer matches its checksum, and
// a checksum-valid record whose body is not the single-update SYNC frame
// Append writes. Both must truncate the log at that record, exactly like
// a torn tail.
func TestReplayCorruptRecords(t *testing.T) {
	t.Run("crc mismatch", func(t *testing.T) {
		dir := t.TempDir()
		cfg := testCfg(dir)
		l := mustOpen(t, cfg)
		appendN(t, l, 0, 3)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(persist.ShardDir(dir, cfg.Shard), "wal.log")
		wal, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		wal[len(wal)-1] ^= 0xff
		if err := os.WriteFile(path, wal, 0o644); err != nil {
			t.Fatal(err)
		}
		l = mustOpen(t, cfg)
		defer l.Close()
		checkEntries(t, l, 0, 2)
	})
	t.Run("foreign record", func(t *testing.T) {
		dir := t.TempDir()
		cfg := testCfg(dir)
		l := mustOpen(t, cfg)
		appendN(t, l, 0, 2)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
		// A two-update SYNC frame with a correct checksum: nothing Append
		// ever writes, so replay must refuse it rather than adopt it.
		rec := []byte{0, 0, 0, 0}
		g := make([]float32, testDim)
		rec = wire.AppendSync(rec, 0, 2, []wire.Update{
			{Table: 0, Rows: []int{0}, Grads: g},
			{Table: 0, Rows: []int{1}, Grads: g},
		})
		binary.LittleEndian.PutUint32(rec, crc32.Checksum(rec[8:], crc32.MakeTable(crc32.Castagnoli)))
		path := filepath.Join(persist.ShardDir(dir, cfg.Shard), "wal.log")
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(rec); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		l = mustOpen(t, cfg)
		defer l.Close()
		checkEntries(t, l, 0, 2)
	})
}

// TestInstallSnapshotIOErrors blocks the snapshot write's tmp path and
// rename target with directories; InstallSnapshot must fail cleanly and
// leave the log usable.
func TestInstallSnapshotIOErrors(t *testing.T) {
	dir := t.TempDir()
	cfg := testCfg(dir)
	l := mustOpen(t, cfg)
	defer l.Close()
	appendN(t, l, 0, 2)
	rows := make([]float32, testRows*testDim)
	sd := persist.ShardDir(dir, cfg.Shard)

	if err := os.Mkdir(filepath.Join(sd, "snap.tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := l.InstallSnapshot(2, rows); err == nil {
		t.Fatalf("InstallSnapshot with snap.tmp squatted by a directory succeeded")
	}
	if err := os.Remove(filepath.Join(sd, "snap.tmp")); err != nil {
		t.Fatal(err)
	}

	target := filepath.Join(sd, "snap-"+padSeq(2)+".dat")
	if err := os.MkdirAll(filepath.Join(target, "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := l.InstallSnapshot(2, rows); err == nil {
		t.Fatalf("InstallSnapshot with the rename target squatted succeeded")
	}
	if err := os.RemoveAll(target); err != nil {
		t.Fatal(err)
	}

	if err := l.InstallSnapshot(2, rows); err != nil {
		t.Fatalf("InstallSnapshot after clearing the squatters: %v", err)
	}
	appendN(t, l, 2, 1)
	checkEntries(t, l, 2, 1)
}

// TestHotRowsErrors pins SaveHotRows/LoadHotRows behavior on bad input
// and bad files: hard errors for unwritable state the caller asked to
// change, silent cold-start fallback for unreadable advisory data.
func TestHotRowsErrors(t *testing.T) {
	dir := t.TempDir()
	sd := persist.ShardDir(dir, 1)

	if err := persist.SaveHotRows(dir, 1, []int{3, -1}); err == nil {
		t.Fatalf("SaveHotRows accepted a negative row index")
	}

	file := filepath.Join(dir, "root-is-a-file")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := persist.SaveHotRows(file, 1, []int{1}); err == nil {
		t.Fatalf("SaveHotRows under a file root succeeded")
	}

	if err := os.MkdirAll(filepath.Join(sd, "hotrows.tmp"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := persist.SaveHotRows(dir, 1, []int{1}); err == nil {
		t.Fatalf("SaveHotRows with hotrows.tmp squatted by a directory succeeded")
	}
	if err := os.Remove(filepath.Join(sd, "hotrows.tmp")); err != nil {
		t.Fatal(err)
	}

	// Removing an "empty" list must fail loudly when the path is squatted
	// by a non-empty directory, not report the rows as gone.
	if err := os.MkdirAll(filepath.Join(sd, "hotrows.dat", "occupied"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := persist.SaveHotRows(dir, 1, nil); err == nil {
		t.Fatalf("SaveHotRows(nil) with a squatted path reported success")
	}
	if _, err := persist.LoadHotRows(dir, 1); err == nil {
		t.Fatalf("LoadHotRows on a directory succeeded")
	}
	if err := os.RemoveAll(filepath.Join(sd, "hotrows.dat")); err != nil {
		t.Fatal(err)
	}

	// Corrupt advisory files fall back to a cold start: (nil, nil).
	hot := filepath.Join(sd, "hotrows.dat")
	for name, buf := range map[string][]byte{
		"short":     {1, 2, 3},
		"bad magic": make([]byte, 16),
		"bad count": hotFileWithCount(5, []int{1, 2}),
	} {
		if err := os.WriteFile(hot, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		if rows, err := persist.LoadHotRows(dir, 1); err != nil || rows != nil {
			t.Fatalf("%s hotrows file: got (%v, %v), want cold-start (nil, nil)", name, rows, err)
		}
	}
}

// hotFileWithCount builds a checksum-valid hot-rows file whose header
// claims `count` rows but whose body holds len(rows).
func hotFileWithCount(count int, rows []int) []byte {
	buf := binary.LittleEndian.AppendUint32(nil, 0x54444852)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(count))
	for _, r := range rows {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r))
	}
	return binary.LittleEndian.AppendUint32(buf, crc32.Checksum(buf, crc32.MakeTable(crc32.Castagnoli)))
}
