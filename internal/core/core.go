// Package core is the end-to-end performance engine of the reproduction: it
// evaluates the five recommender-system design points of Section 6 —
// CPU-only, hybrid CPU-GPU, PMEM (pooled memory without NMP), TDIMM
// (TensorNode with TensorDIMMs), and the unbuildable oracular GPU-only —
// and returns the per-phase latency breakdowns of Figure 13.
//
// The model follows the paper's own decomposition (Figure 5): an inference
// is an embedding gather, a tensor reduction, a transfer of embeddings to
// GPU memory, and the DNN computation, plus fixed framework overhead. Each
// phase is costed against the platform's bandwidths and compute throughputs
// (internal/device, internal/interconnect), with the TensorNode's effective
// per-operation bandwidths calibrated against the cycle-level DRAM
// simulation of internal/dram (see CalibrateFromDRAM and the calibration
// test).
package core

import (
	"fmt"

	"tensordimm/internal/device"
	"tensordimm/internal/interconnect"
	"tensordimm/internal/recsys"
)

// DesignPoint enumerates the five system designs of Section 6.
type DesignPoint int

// The design points, in the paper's order.
const (
	CPUOnly DesignPoint = iota // embeddings + DNN on the host CPU
	CPUGPU                     // embeddings on CPU, copied over PCIe, DNN on GPU
	PMEM                       // pooled conventional DIMMs in the GPU fabric, no NMP
	TDIMM                      // TensorNode with TensorDIMM NMP (the proposal)
	GPUOnly                    // oracle: infinite GPU memory
)

// DesignPoints lists all five in order.
func DesignPoints() []DesignPoint {
	return []DesignPoint{CPUOnly, CPUGPU, PMEM, TDIMM, GPUOnly}
}

// String implements fmt.Stringer.
func (dp DesignPoint) String() string {
	switch dp {
	case CPUOnly:
		return "CPU-only"
	case CPUGPU:
		return "CPU-GPU"
	case PMEM:
		return "PMEM"
	case TDIMM:
		return "TDIMM"
	case GPUOnly:
		return "GPU-only"
	default:
		return fmt.Sprintf("design(%d)", int(dp))
	}
}

// Platform aggregates every hardware parameter of the evaluation testbed
// (Table 1 and Section 5).
type Platform struct {
	CPU device.Compute
	GPU device.Compute

	// PCIe is the host-GPU link of the conventional hybrid design.
	PCIe interconnect.Link
	// NodeLink is the TensorNode-GPU link (NVLink through NVSwitch);
	// Figure 16 sweeps its bandwidth.
	NodeLink interconnect.Link

	// NodeDIMMs is the number of TensorDIMMs in the node (Table 1: 32).
	NodeDIMMs int
	// DIMMBandwidthGBs is per-TensorDIMM local bandwidth (PC4-25600: 25.6).
	DIMMBandwidthGBs float64
	// NodeGatherEff is the node's effective GATHER bandwidth per *gathered*
	// byte, as a fraction of aggregate peak; it folds in the index-list
	// reads and the gathered-tensor writeback of Figure 9(a). Two
	// calibrations exist (see EXPERIMENTS.md): the paper's proof-of-concept
	// emulation methodology (GPU-class streaming gathers, ~0.45, the
	// default) and this reproduction's cycle-level DRAM simulation of the
	// per-DIMM datapath (~0.25: 0.50 bus utilization over 2x traffic,
	// tFAW-bound single-rank random reads). DRAMSimNodeGatherEff selects
	// the latter for ablations.
	NodeGatherEff float64
	// NodeStreamEff is the fraction of aggregate peak achieved by the
	// REDUCE/AVERAGE streaming passes (DRAM-sim measured, Figure 11).
	NodeStreamEff float64

	// PMEMPeakGBs is the internal bandwidth of the conventional pooled
	// memory (8 channels of DDR4, like the host: 204.8 GB/s) and
	// PMEMGatherEff its gather efficiency over CC-NUMA remote reads.
	PMEMPeakGBs   float64
	PMEMGatherEff float64

	// FrameworkOverheadS is the fixed per-inference overhead (framework
	// dispatch, synchronization) — the "Else" slice of Figure 13.
	FrameworkOverheadS float64
}

// DefaultPlatform returns the paper's evaluation platform: a DGX-class host,
// one V100 as the compute GPU, and a 32-TensorDIMM TensorNode behind 150
// GB/s of NVLink. The node efficiencies are the Figure-11 measurements of
// this reproduction's DRAM simulator (see TestCalibration in this package).
func DefaultPlatform() Platform {
	return Platform{
		CPU:                device.XeonHost(),
		GPU:                device.V100(),
		PCIe:               interconnect.PCIe3x16(),
		NodeLink:           interconnect.NVLink2(6),
		NodeDIMMs:          32,
		DIMMBandwidthGBs:   25.6,
		NodeGatherEff:      0.45,
		NodeStreamEff:      0.84,
		PMEMPeakGBs:        204.8,
		PMEMGatherEff:      0.60,
		FrameworkOverheadS: 20e-6,
	}
}

// DRAMSimNodeGatherEff is the per-gathered-byte GATHER efficiency measured
// by this reproduction's cycle-level DRAM simulator for the per-DIMM NMP
// datapath (ablation alternative to the emulation-calibrated default; see
// the NodeGatherEff field).
const DRAMSimNodeGatherEff = 0.25

// NodePeakGBs returns the TensorNode aggregate bandwidth (Table 1: 819.2).
func (p Platform) NodePeakGBs() float64 {
	return float64(p.NodeDIMMs) * p.DIMMBandwidthGBs
}

// WithDRAMSimGather returns a copy using the DRAM-simulation-calibrated
// gather efficiency instead of the emulation-calibrated default.
func (p Platform) WithDRAMSimGather() Platform {
	p.NodeGatherEff = DRAMSimNodeGatherEff
	return p
}

// WithNodeDIMMs returns a copy provisioned with n TensorDIMMs (the
// bandwidth-scaling studies of Figures 12 and 15).
func (p Platform) WithNodeDIMMs(n int) Platform {
	p.NodeDIMMs = n
	return p
}

// WithNodeLinkGBs returns a copy with the node-GPU link bandwidth replaced
// (the Figure 16 sensitivity sweep).
func (p Platform) WithNodeLinkGBs(gbs float64) Platform {
	p.NodeLink = p.NodeLink.WithBandwidth(gbs)
	return p
}

// Breakdown is the per-phase latency decomposition of one inference,
// matching Figure 13's stacks.
type Breakdown struct {
	Design DesignPoint
	// LookupS is the embedding gather + near/local reduction time.
	LookupS float64
	// TransferS is the embedding copy time (cudaMemcpy over PCIe or NVLink).
	TransferS float64
	// DNNS is the dense DNN computation time.
	DNNS float64
	// OtherS is fixed framework overhead.
	OtherS float64
}

// TotalS returns the end-to-end inference latency.
func (b Breakdown) TotalS() float64 {
	return b.LookupS + b.TransferS + b.DNNS + b.OtherS
}

// Simulate costs one inference of the model at the given batch size under
// the chosen design point.
func Simulate(dp DesignPoint, cfg recsys.Config, batch int, p Platform) Breakdown {
	g := cfg.GatheredBytes(batch) // bytes read from the lookup tables
	r := cfg.ReducedBytes(batch)  // bytes of the pooled embedding tensor
	dims := cfg.MLPDims()

	b := Breakdown{Design: dp, OtherS: p.FrameworkOverheadS}
	switch dp {
	case CPUOnly:
		b.LookupS = p.CPU.GatherSeconds(g) + p.CPU.StreamSeconds(g+r)
		b.DNNS = p.CPU.MLPSeconds(batch, dims)

	case CPUGPU:
		// Gather on the CPU, copy the *un-reduced* embeddings over PCIe,
		// reduce on the GPU (Figure 5(a)).
		b.LookupS = p.CPU.GatherSeconds(g)
		b.TransferS = p.PCIe.TransferSeconds(g)
		b.LookupS += p.GPU.StreamSeconds(g + r)
		b.DNNS = p.GPU.MLPSeconds(batch, dims)

	case PMEM:
		// Pooled conventional memory inside the GPU fabric: the GPU pulls
		// raw embeddings through the link (bounded by the pool's internal
		// gather bandwidth and the link), then reduces locally.
		pullGBs := p.PMEMPeakGBs * p.PMEMGatherEff
		if p.NodeLink.BandwidthGBs < pullGBs {
			pullGBs = p.NodeLink.BandwidthGBs
		}
		b.LookupS = float64(g)/(pullGBs*1e9) + p.NodeLink.LatencyS
		b.LookupS += p.GPU.StreamSeconds(g + r)
		b.DNNS = p.GPU.MLPSeconds(batch, dims)

	case TDIMM:
		// Near-memory gather (NodeGatherEff is per gathered byte and folds
		// in the writeback traffic of Figure 9(a)) and near-memory
		// reduction (reads g, writes r), then only the reduced tensor
		// crosses NVLink (Figure 5(b)).
		node := p.NodePeakGBs()
		b.LookupS = float64(g) / (node * p.NodeGatherEff * 1e9)
		if cfg.Reduction > 1 {
			b.LookupS += float64(g+r) / (node * p.NodeStreamEff * 1e9)
		}
		b.TransferS = p.NodeLink.TransferSeconds(r)
		b.DNNS = p.GPU.MLPSeconds(batch, dims)

	case GPUOnly:
		b.LookupS = p.GPU.GatherSeconds(g) + p.GPU.StreamSeconds(g+r)
		b.DNNS = p.GPU.MLPSeconds(batch, dims)
	}
	return b
}

// SimulateAll returns breakdowns for all five design points.
func SimulateAll(cfg recsys.Config, batch int, p Platform) []Breakdown {
	out := make([]Breakdown, 0, 5)
	for _, dp := range DesignPoints() {
		out = append(out, Simulate(dp, cfg, batch, p))
	}
	return out
}

// Speedup returns how much faster design a is than design b for the given
// workload (paper convention: CPU-only/TDIMM = "TDIMM speedup over CPU").
func Speedup(a, b DesignPoint, cfg recsys.Config, batch int, p Platform) float64 {
	ta := Simulate(a, cfg, batch, p).TotalS()
	tb := Simulate(b, cfg, batch, p).TotalS()
	return tb / ta
}

// NormalizedPerf returns performance normalized to the GPU-only oracle
// (Figure 14's y-axis): T(GPUOnly)/T(dp).
func NormalizedPerf(dp DesignPoint, cfg recsys.Config, batch int, p Platform) float64 {
	return Speedup(dp, GPUOnly, cfg, batch, p)
}

// SimulateShared costs one inference when nGPUs GPUs serve inferences
// concurrently against shared resources (Section 4.3: the TensorNode is an
// NVSwitch endpoint that every GPU can reach). Shared resources divide
// their bandwidth/throughput across the GPUs: the TensorNode's internal
// DRAM bandwidth (TDIMM), the pool's internal bandwidth (PMEM), or the
// host CPU (CPU-only / CPU-GPU). Per-GPU resources — the NVSwitch port of
// each GPU, its HBM and its SMs — are private, which is what makes TDIMM's
// reduced-tensor transfers scale (the NVSwitch crossbar is non-blocking).
func SimulateShared(dp DesignPoint, cfg recsys.Config, batch int, p Platform, nGPUs int) Breakdown {
	if nGPUs < 1 {
		nGPUs = 1
	}
	b := Simulate(dp, cfg, batch, p)
	n := float64(nGPUs)
	switch dp {
	case TDIMM, PMEM:
		b.LookupS *= n // node-internal bandwidth is time-shared
	case CPUOnly:
		b.LookupS *= n
		b.DNNS *= n
	case CPUGPU:
		b.LookupS *= n                                      // host gather shared
		b.TransferS = b.TransferS*n - p.PCIe.LatencyS*(n-1) // one PCIe root shared
	case GPUOnly:
		// Fully private: an oracle GPU holds its own embeddings.
	}
	return b
}

// SharedThroughput returns aggregate inferences/second when nGPUs share the
// platform under the given design point.
func SharedThroughput(dp DesignPoint, cfg recsys.Config, batch int, p Platform, nGPUs int) float64 {
	t := SimulateShared(dp, cfg, batch, p, nGPUs).TotalS()
	return float64(nGPUs) / t
}
