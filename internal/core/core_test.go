package core

import (
	"math"
	"testing"

	"tensordimm/internal/recsys"
)

// geomeanNorm returns the geometric-mean normalized performance of a design
// point across the four benchmarks at the given batch.
func geomeanNorm(dp DesignPoint, batch int, p Platform) float64 {
	var acc float64
	for _, cfg := range recsys.All() {
		acc += math.Log(NormalizedPerf(dp, cfg, batch, p))
	}
	return math.Exp(acc / 4)
}

// geomeanSpeedup returns TDIMM's geomean speedup over `base` across the four
// benchmarks and the paper's batch set {8, 64, 128}.
func geomeanSpeedup(base DesignPoint, p Platform, embScale int) float64 {
	var acc float64
	var n int
	for _, cfg := range recsys.All() {
		c := cfg.WithEmbDim(cfg.EmbDim * embScale)
		for _, b := range []int{8, 64, 128} {
			acc += math.Log(Speedup(TDIMM, base, c, b, p))
			n++
		}
	}
	return math.Exp(acc / float64(n))
}

func TestDesignPointStrings(t *testing.T) {
	want := []string{"CPU-only", "CPU-GPU", "PMEM", "TDIMM", "GPU-only"}
	for i, dp := range DesignPoints() {
		if dp.String() != want[i] {
			t.Fatalf("DesignPoint %d = %q, want %q", i, dp.String(), want[i])
		}
	}
	if DesignPoint(99).String() == "" {
		t.Fatal("unknown design point must still print")
	}
}

func TestTable1NodeConfig(t *testing.T) {
	p := DefaultPlatform()
	if p.NodeDIMMs != 32 || p.DIMMBandwidthGBs != 25.6 {
		t.Fatalf("default node: %d DIMMs x %.1f GB/s, want Table 1's 32 x 25.6", p.NodeDIMMs, p.DIMMBandwidthGBs)
	}
	if got := p.NodePeakGBs(); math.Abs(got-819.2) > 0.01 {
		t.Fatalf("node peak = %.1f, want 819.2 GB/s", got)
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{LookupS: 1, TransferS: 2, DNNS: 3, OtherS: 4}
	if b.TotalS() != 10 {
		t.Fatalf("TotalS = %v", b.TotalS())
	}
}

func TestSimulateAllCoversDesigns(t *testing.T) {
	res := SimulateAll(recsys.NCF(), 64, DefaultPlatform())
	if len(res) != 5 {
		t.Fatalf("SimulateAll returned %d breakdowns", len(res))
	}
	for i, b := range res {
		if b.Design != DesignPoints()[i] {
			t.Fatalf("breakdown %d for %v", i, b.Design)
		}
		if b.TotalS() <= 0 {
			t.Fatalf("%v: non-positive latency", b.Design)
		}
	}
}

func TestPhaseStructurePerDesign(t *testing.T) {
	p := DefaultPlatform()
	cfg := recsys.YouTube()
	for _, c := range []struct {
		dp          DesignPoint
		hasTransfer bool
	}{
		{CPUOnly, false}, {CPUGPU, true}, {TDIMM, true}, {GPUOnly, false},
	} {
		b := Simulate(c.dp, cfg, 64, p)
		if c.hasTransfer && b.TransferS == 0 {
			t.Errorf("%v: expected a transfer phase", c.dp)
		}
		if !c.hasTransfer && b.TransferS != 0 {
			t.Errorf("%v: unexpected transfer phase %v", c.dp, b.TransferS)
		}
		if b.LookupS <= 0 || b.DNNS <= 0 {
			t.Errorf("%v: empty lookup/DNN phase", c.dp)
		}
	}
}

func TestTDIMMTransfersOnlyReducedTensor(t *testing.T) {
	// The core claim of Figure 5: TDIMM moves ~1/N of what CPU-GPU moves.
	p := DefaultPlatform()
	cfg := recsys.YouTube() // 50-way reduction
	td := Simulate(TDIMM, cfg, 64, p)
	hy := Simulate(CPUGPU, cfg, 64, p)
	ratio := hy.TransferS / td.TransferS
	// PCIe is ~9.4x slower and moves 50x the bytes; with fixed latencies
	// the ratio is large but below 9.4*50.
	if ratio < 50 {
		t.Fatalf("transfer ratio CPU-GPU/TDIMM = %.1f, want > 50", ratio)
	}
}

// --- Calibration tests: the paper's headline results (Section 6) ---

func TestFig4BaselinesSlowdown(t *testing.T) {
	// Section 3.2: CPU-only and CPU-GPU see an average 7.3-20.9x slowdown
	// vs the GPU-only oracle (batch-64/128 region of Figure 4). Accept a
	// generous band around it.
	p := DefaultPlatform()
	for _, batch := range []int{64, 128} {
		for _, dp := range []DesignPoint{CPUOnly, CPUGPU} {
			slowdown := 1 / geomeanNorm(dp, batch, p)
			if slowdown < 5 || slowdown > 30 {
				t.Errorf("batch %d %v slowdown = %.1fx, want in [5,30] (paper 7.3-20.9)", batch, dp, slowdown)
			}
		}
	}
}

func TestFig14TDIMMNearOracle(t *testing.T) {
	// Section 6.2: TDIMM reaches an average 84% (no less than 75%) of the
	// unbuildable GPU-only oracle.
	p := DefaultPlatform()
	var avg float64
	for _, batch := range []int{8, 64, 128} {
		avg += geomeanNorm(TDIMM, batch, p)
	}
	avg /= 3
	if avg < 0.78 || avg > 0.95 {
		t.Fatalf("TDIMM average normalized perf = %.3f, want ~0.84", avg)
	}
	for _, batch := range []int{8, 64, 128} {
		for _, cfg := range recsys.All() {
			if norm := NormalizedPerf(TDIMM, cfg, batch, p); norm < 0.70 {
				t.Errorf("%s batch %d: TDIMM = %.2f of oracle, want >= 0.70 (paper: >= 0.75)", cfg.Name, batch, norm)
			}
		}
	}
}

func TestHeadlineSpeedups(t *testing.T) {
	// Abstract/Section 6: 6.2x (default) to 15.0x (8x embeddings) over
	// CPU-only; 8.9x to 17.6x over CPU-GPU.
	p := DefaultPlatform()
	sCPU := geomeanSpeedup(CPUOnly, p, 1)
	if sCPU < 5 || sCPU > 12 {
		t.Fatalf("TDIMM vs CPU-only = %.1fx, want ~6-10x (paper 6.2)", sCPU)
	}
	sHybrid := geomeanSpeedup(CPUGPU, p, 1)
	if sHybrid < 6 || sHybrid > 14 {
		t.Fatalf("TDIMM vs CPU-GPU = %.1fx, want ~8-12x (paper 8.9)", sHybrid)
	}
	// Larger embeddings widen the gap (Figure 15).
	s8CPU := geomeanSpeedup(CPUOnly, p, 8)
	if s8CPU <= sCPU {
		t.Fatalf("8x embeddings speedup %.1fx must exceed default %.1fx", s8CPU, sCPU)
	}
	if s8CPU < 12 || s8CPU > 25 {
		t.Fatalf("TDIMM vs CPU-only at 8x embeddings = %.1fx, want ~15x", s8CPU)
	}
}

func TestFig16LinkSensitivity(t *testing.T) {
	// Section 6.4: dropping the node link from 150 to 25 GB/s costs PMEM up
	// to 68% of its performance but TDIMM at most ~15% (avg 10%).
	p := DefaultPlatform()
	rel := func(dp DesignPoint) float64 {
		var acc float64
		for _, cfg := range recsys.All() {
			t150 := Simulate(dp, cfg, 64, p.WithNodeLinkGBs(150)).TotalS()
			t25 := Simulate(dp, cfg, 64, p.WithNodeLinkGBs(25)).TotalS()
			acc += math.Log(t150 / t25)
		}
		return math.Exp(acc / 4)
	}
	pmem := rel(PMEM)
	tdimm := rel(TDIMM)
	if pmem > 0.55 {
		t.Fatalf("PMEM at 25 GB/s retains %.2f, want heavy loss (paper: down to 0.32)", pmem)
	}
	if tdimm < 0.80 {
		t.Fatalf("TDIMM at 25 GB/s retains %.2f, want >= 0.80 (paper: >= 0.85)", tdimm)
	}
	if tdimm <= pmem {
		t.Fatal("TDIMM must be more robust to link bandwidth than PMEM")
	}
}

func TestPMEMBetweenHybridAndTDIMM(t *testing.T) {
	// Figure 14: PMEM (pooled memory without NMP) beats the hybrid design
	// but loses to TDIMM.
	p := DefaultPlatform()
	for _, cfg := range recsys.All() {
		hy := Simulate(CPUGPU, cfg, 64, p).TotalS()
		pm := Simulate(PMEM, cfg, 64, p).TotalS()
		td := Simulate(TDIMM, cfg, 64, p).TotalS()
		if !(td <= pm && pm <= hy) {
			t.Errorf("%s: want TDIMM (%.0fus) <= PMEM (%.0fus) <= CPU-GPU (%.0fus)",
				cfg.Name, td*1e6, pm*1e6, hy*1e6)
		}
	}
}

func TestDRAMSimGatherAblation(t *testing.T) {
	// Under the pessimistic DRAM-sim gather calibration TDIMM slows down
	// but must still beat both CPU baselines by a wide margin.
	p := DefaultPlatform().WithDRAMSimGather()
	if p.NodeGatherEff != DRAMSimNodeGatherEff {
		t.Fatal("WithDRAMSimGather did not apply")
	}
	for _, cfg := range recsys.All() {
		if s := Speedup(TDIMM, CPUOnly, cfg, 64, p); s < 3 {
			t.Errorf("%s: DRAM-sim-calibrated TDIMM speedup %.1fx, want >= 3x", cfg.Name, s)
		}
	}
	def := DefaultPlatform()
	if Simulate(TDIMM, recsys.YouTube(), 64, p).TotalS() <= Simulate(TDIMM, recsys.YouTube(), 64, def).TotalS() {
		t.Fatal("pessimistic calibration must be slower")
	}
}

func TestWithNodeDIMMsScalesBandwidth(t *testing.T) {
	p := DefaultPlatform().WithNodeDIMMs(128)
	if math.Abs(p.NodePeakGBs()-3276.8) > 0.01 {
		t.Fatalf("128 DIMMs peak = %.1f, want 3276.8 GB/s (Figure 12)", p.NodePeakGBs())
	}
	// More DIMMs -> faster TDIMM lookups on large embeddings.
	cfg := recsys.YouTube().WithEmbDim(4096)
	t32 := Simulate(TDIMM, cfg, 64, DefaultPlatform()).LookupS
	t128 := Simulate(TDIMM, cfg, 64, p).LookupS
	if t128 >= t32 {
		t.Fatal("provisioning more TensorDIMMs must speed up lookups")
	}
}

func TestBatchScalesLatency(t *testing.T) {
	p := DefaultPlatform()
	for _, dp := range DesignPoints() {
		t8 := Simulate(dp, recsys.Facebook(), 8, p).TotalS()
		t128 := Simulate(dp, recsys.Facebook(), 128, p).TotalS()
		if t128 <= t8 {
			t.Errorf("%v: batch 128 (%.0fus) not slower than batch 8 (%.0fus)", dp, t128*1e6, t8*1e6)
		}
	}
}

func TestSharedScalingShapes(t *testing.T) {
	// Sharing one TensorNode across GPUs: TDIMM throughput keeps growing
	// through 4 GPUs (little node work per inference), while the hybrid
	// design saturates on the shared host almost immediately.
	p := DefaultPlatform()
	cfg := recsys.YouTube()
	td1 := SharedThroughput(TDIMM, cfg, 64, p, 1)
	td4 := SharedThroughput(TDIMM, cfg, 64, p, 4)
	hy1 := SharedThroughput(CPUGPU, cfg, 64, p, 1)
	hy4 := SharedThroughput(CPUGPU, cfg, 64, p, 4)
	if td4 < td1*1.5 {
		t.Fatalf("TDIMM 4-GPU throughput %.0f/s vs 1-GPU %.0f/s: want >= 1.5x scaling", td4, td1)
	}
	if hy4 > hy1*1.5 {
		t.Fatalf("CPU-GPU 4-GPU throughput %.0f/s vs 1-GPU %.0f/s: host must bottleneck", hy4, hy1)
	}
	if td4/td1 <= hy4/hy1 {
		t.Fatalf("TDIMM scaling %.2fx must beat CPU-GPU scaling %.2fx", td4/td1, hy4/hy1)
	}
	// The oracle scales linearly by construction.
	go1 := SharedThroughput(GPUOnly, cfg, 64, p, 1)
	go4 := SharedThroughput(GPUOnly, cfg, 64, p, 4)
	if math.Abs(go4-4*go1) > go1*0.01 {
		t.Fatalf("GPU-only scaling: %.0f vs 4x%.0f", go4, go1)
	}
	// Per-inference latency never improves with sharing.
	for _, dp := range DesignPoints() {
		if SimulateShared(dp, cfg, 64, p, 4).TotalS() < Simulate(dp, cfg, 64, p).TotalS()*0.999 {
			t.Errorf("%v: sharing made a single inference faster", dp)
		}
	}
	if SimulateShared(TDIMM, cfg, 64, p, 0).TotalS() != Simulate(TDIMM, cfg, 64, p).TotalS() {
		t.Error("nGPUs < 1 must clamp to 1")
	}
}
