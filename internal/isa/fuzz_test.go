package isa

import "testing"

// FuzzDecode ensures the instruction decoder is total: arbitrary 32-byte
// words either decode into an instruction that validates and re-encodes to
// the same canonical bytes, or return an error — never panic.
func FuzzDecode(f *testing.F) {
	seed := [][]byte{
		make([]byte, WordBytes),
		EncodeProgram(Program{Gather(1, 2, 3, 16)}),
		EncodeProgram(Program{Reduce(RMax, 9, 8, 7, 6)}),
		EncodeProgram(Program{Average(4, 5, 6, 7)}),
		EncodeProgram(Program{ScatterAdd(1, 2, 3, 32)}),
	}
	for _, s := range seed {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		in, err := Decode(data)
		if err != nil {
			return
		}
		if verr := in.Validate(); verr != nil {
			t.Fatalf("Decode returned invalid instruction %v: %v", in, verr)
		}
		// Bytes 2-3 of the wire word are reserved, so compare decoded
		// instructions rather than raw bytes.
		w := in.Encode()
		in2, err := Decode(w[:])
		if err != nil || in2 != in {
			t.Fatalf("re-decode mismatch: %v vs %v (%v)", in, in2, err)
		}
	})
}
