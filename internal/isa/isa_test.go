package isa

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestConstructorsValidate(t *testing.T) {
	cases := []struct {
		name string
		in   Instruction
		ok   bool
	}{
		{"gather ok", Gather(0x100, 0x200, 0x300, 64), true},
		{"gather count 0", Gather(0, 0, 0, 0), false},
		{"gather count not multiple of 16", Gather(0, 0, 0, 17), false},
		{"reduce ok", Reduce(RAdd, 1, 2, 3, 10), true},
		{"reduce mul ok", Reduce(RMul, 1, 2, 3, 10), true},
		{"reduce count 0", Reduce(RAdd, 1, 2, 3, 0), false},
		{"reduce bad op", Instruction{Op: OpReduce, ROp: 99, Count: 4}, false},
		{"average ok", Average(1, 25, 3, 8), true},
		{"average n=0", Average(1, 0, 3, 8), false},
		{"average count 0", Average(1, 4, 3, 0), false},
		{"invalid opcode", Instruction{Op: 0, Count: 4}, false},
		{"unknown opcode", Instruction{Op: 77, Count: 4}, false},
	}
	for _, c := range cases {
		err := c.in.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ins := []Instruction{
		Gather(0xDEADBEEF00, 0x1234, 0xFFFF_FFFF_FFFF_0000, 1024),
		Reduce(RMul, 1, 2, 3, 77),
		Average(0xABC, 50, 0xDEF, 12),
	}
	for _, in := range ins {
		w := in.Encode()
		got, err := Decode(w[:])
		if err != nil {
			t.Fatalf("%v: decode error %v", in, err)
		}
		if got != in {
			t.Fatalf("round trip: got %+v want %+v", got, in)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 10)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short word: got %v, want ErrTruncated", err)
	}
	var w [WordBytes]byte // opcode 0 = invalid
	if _, err := Decode(w[:]); !errors.Is(err, ErrOpcode) {
		t.Fatalf("invalid opcode: got %v", err)
	}
}

func TestDecodeRejectsBadCount(t *testing.T) {
	in := Gather(1, 2, 3, 16)
	w := in.Encode()
	w[4] = 3 // count -> 3, not a multiple of 16
	if _, err := Decode(w[:]); !errors.Is(err, ErrCount) {
		t.Fatalf("got %v, want ErrCount", err)
	}
}

func TestProgramRoundTrip(t *testing.T) {
	p := Program{
		Gather(0, 0x1000, 0x2000, 128),
		Gather(0x8000, 0x1000, 0x3000, 128),
		Reduce(RAdd, 0x2000, 0x3000, 0x4000, 128),
		Average(0x2000, 50, 0x5000, 16),
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	b := EncodeProgram(p)
	if len(b) != len(p)*WordBytes {
		t.Fatalf("encoded length %d", len(b))
	}
	got, err := DecodeProgram(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(p) {
		t.Fatalf("decoded %d instructions", len(got))
	}
	for i := range p {
		if got[i] != p[i] {
			t.Fatalf("instruction %d: %+v != %+v", i, got[i], p[i])
		}
	}
}

func TestDecodeProgramErrors(t *testing.T) {
	if _, err := DecodeProgram(make([]byte, WordBytes+1)); !errors.Is(err, ErrTruncated) {
		t.Fatalf("got %v, want ErrTruncated", err)
	}
	bad := Instruction{Op: OpReduce, Count: 0}
	w := bad.Encode()
	if _, err := DecodeProgram(w[:]); err == nil {
		t.Fatal("want validation error from DecodeProgram")
	}
}

func TestStrings(t *testing.T) {
	for in, want := range map[Instruction]string{
		Gather(1, 2, 3, 16):      "GATHER",
		Reduce(RMax, 1, 2, 3, 4): "REDUCE.max",
		Average(1, 2, 3, 4):      "AVERAGE",
		{Op: 99}:                 "INVALID",
	} {
		if s := in.String(); !strings.Contains(s, want) {
			t.Errorf("String() = %q, want substring %q", s, want)
		}
	}
	if OpGather.String() != "GATHER" || Opcode(99).String() == "" {
		t.Error("Opcode.String misbehaves")
	}
	if RSub.String() != "sub" || ReduceOp(42).String() == "" {
		t.Error("ReduceOp.String misbehaves")
	}
}

func TestRankTraffic(t *testing.T) {
	// GATHER of 64 indices: 64/16=4 index blocks + 64 data reads, 64 writes.
	tr := Gather(0, 0, 0, 64).RankTraffic()
	if tr.ReadBlocks != 68 || tr.WriteBlocks != 64 {
		t.Fatalf("gather traffic = %+v", tr)
	}
	// REDUCE of 100 blocks: 200 reads, 100 writes.
	tr = Reduce(RAdd, 0, 0, 0, 100).RankTraffic()
	if tr.ReadBlocks != 200 || tr.WriteBlocks != 100 {
		t.Fatalf("reduce traffic = %+v", tr)
	}
	// AVERAGE of 50 tensors x 8 blocks: 400 reads, 8 writes.
	tr = Average(0, 50, 0, 8).RankTraffic()
	if tr.ReadBlocks != 400 || tr.WriteBlocks != 8 {
		t.Fatalf("average traffic = %+v", tr)
	}
	if tr.TotalBlocks() != 408 {
		t.Fatalf("total = %d", tr.TotalBlocks())
	}
	if (Instruction{Op: 88}).RankTraffic() != (Traffic{}) {
		t.Fatal("invalid op should have zero traffic")
	}
}

// Property: Encode/Decode round-trips for arbitrary valid instructions.
func TestQuickRoundTrip(t *testing.T) {
	f := func(op uint8, rop uint8, in1, aux, out uint64, cnt uint32) bool {
		ins := Instruction{
			Op:         Opcode(op%3) + 1,
			ROp:        ReduceOp(rop % 4),
			InputBase:  in1,
			Aux:        aux,
			OutputBase: out,
			Count:      cnt,
		}
		// Make the instruction valid for its opcode.
		switch ins.Op {
		case OpGather:
			ins.Count = (cnt%1024 + 1) * 16
		case OpReduce:
			ins.Count = cnt%65536 + 1
		case OpAverage:
			ins.Count = cnt%65536 + 1
			ins.Aux = aux%64 + 1
		}
		w := ins.Encode()
		got, err := Decode(w[:])
		return err == nil && got == ins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: traffic counters are monotone in count.
func TestQuickTrafficMonotone(t *testing.T) {
	f := func(c1, c2 uint16) bool {
		a, b := uint32(c1%1000+1)*16, uint32(c2%1000+1)*16
		if a > b {
			a, b = b, a
		}
		ta := Gather(0, 0, 0, a).RankTraffic()
		tb := Gather(0, 0, 0, b).RankTraffic()
		return ta.TotalBlocks() <= tb.TotalBlocks()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
