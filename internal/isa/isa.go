// Package isa implements TensorISA, the custom tensor instruction set of the
// TensorDIMM paper (Section 4.4, Figures 8 and 9).
//
// Three primitives are supported:
//
//	GATHER  — embedding lookup:      out[i] = table[idx[i]]
//	REDUCE  — element-wise binary op: out = in1 <OP> in2
//	AVERAGE — N-way element-wise mean: out = (in[0]+...+in[N-1]) / N
//
// Addressing model. Following the paper's pseudo-code (Figure 9), every base
// address and count is expressed in units of 64-byte blocks: 64 B is the
// minimum access granularity of a x64 DIMM with burst length 8, and it is the
// granularity at which the TensorDIMM address mapping stripes tensors across
// ranks (Figure 7). A "stripe" is one 64 B block per TensorDIMM; an embedding
// whose payload is nodeDim x 64 B occupies exactly one stripe. Larger
// embeddings occupy consecutive stripes, and the runtime expands lookup
// indices accordingly (idx*k .. idx*k+k-1 for k stripes per embedding).
//
// The wire format is a fixed 32-byte little-endian word per instruction; see
// Encode for the layout. Instructions are broadcast by the runtime to every
// TensorDIMM in a TensorNode, and each NMP core executes its rank-local slice
// (its "tid") of the operation.
package isa

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// BlockBytes is the minimum DRAM access granularity assumed by TensorISA:
// eight x8 devices x burst length 8 = 64 bytes (Section 4.2).
const BlockBytes = 64

// LanesPerBlock is the number of 4-byte scalar lanes in one 64-byte block;
// it is also the width of the NMP vector ALU (Section 4.2).
const LanesPerBlock = 16

// WordBytes is the size of one encoded instruction.
const WordBytes = 32

// Opcode identifies a TensorISA primitive (Figure 8).
type Opcode uint8

// TensorISA opcodes. GATHER, REDUCE and AVERAGE are the paper's three
// primitives (Figure 8). SCATTER_ADD is this repository's extension for the
// training direction the paper leaves to future work: the inverse of GATHER,
// accumulating per-row gradients into the embedding table near-memory
// (table[idx[i]] += grad[i]), which spares the un-reduced gradient tensor
// the trip across the interconnect exactly as GATHER spares the embeddings.
const (
	OpInvalid    Opcode = iota
	OpGather            // embedding lookup
	OpReduce            // element-wise binary reduction
	OpAverage           // element-wise N-way average
	OpScatterAdd        // extension: embedding-table gradient accumulate
)

// String implements fmt.Stringer.
func (op Opcode) String() string {
	switch op {
	case OpGather:
		return "GATHER"
	case OpReduce:
		return "REDUCE"
	case OpAverage:
		return "AVERAGE"
	case OpScatterAdd:
		return "SCATTER_ADD"
	default:
		return fmt.Sprintf("INVALID(%d)", uint8(op))
	}
}

// ReduceOp selects the element-wise operator <OP> of a REDUCE instruction
// (Figure 9(b): "add, subtract, average, ..." — Section 4.2).
type ReduceOp uint8

// Element-wise operators supported by the 16-wide vector ALU.
const (
	RAdd ReduceOp = iota
	RSub
	RMul
	RMax
)

// String implements fmt.Stringer.
func (r ReduceOp) String() string {
	switch r {
	case RAdd:
		return "add"
	case RSub:
		return "sub"
	case RMul:
		return "mul"
	case RMax:
		return "max"
	default:
		return fmt.Sprintf("rop(%d)", uint8(r))
	}
}

// Instruction is one decoded TensorISA instruction. Field meaning depends on
// the opcode, mirroring Figure 8:
//
//	         InputBase   Aux          OutputBase  Count
//	GATHER   tableBase   idxBase      outputBase  #indices (multiple of 16)
//	REDUCE   inputBase1  inputBase2   outputBase  #blocks per rank
//	AVERAGE  inputBase   averageNum   outputBase  #output blocks per rank
//
// All bases and counts are in 64-byte blocks (see package comment).
type Instruction struct {
	Op         Opcode
	ROp        ReduceOp // REDUCE only; RAdd otherwise
	InputBase  uint64
	Aux        uint64
	OutputBase uint64
	Count      uint32
}

// Errors returned by Validate and Decode.
var (
	ErrOpcode    = errors.New("isa: invalid opcode")
	ErrCount     = errors.New("isa: invalid count")
	ErrAux       = errors.New("isa: invalid aux field")
	ErrTruncated = errors.New("isa: truncated instruction word")
)

// Gather builds a GATHER instruction. count is the number of embedding
// indices to process and must be a positive multiple of 16, because the NMP
// core reads indices one 64-byte block (16 x int32) at a time (Figure 9(a)).
func Gather(tableBase, idxBase, outputBase uint64, count uint32) Instruction {
	return Instruction{Op: OpGather, InputBase: tableBase, Aux: idxBase, OutputBase: outputBase, Count: count}
}

// Reduce builds a REDUCE instruction combining two equal-length operands.
func Reduce(rop ReduceOp, inputBase1, inputBase2, outputBase uint64, count uint32) Instruction {
	return Instruction{Op: OpReduce, ROp: rop, InputBase: inputBase1, Aux: inputBase2, OutputBase: outputBase, Count: count}
}

// Average builds an AVERAGE instruction reducing averageNum consecutive
// tensors of count blocks each into one tensor of count blocks.
func Average(inputBase uint64, averageNum uint32, outputBase uint64, count uint32) Instruction {
	return Instruction{Op: OpAverage, InputBase: inputBase, Aux: uint64(averageNum), OutputBase: outputBase, Count: count}
}

// ScatterAdd builds a SCATTER_ADD instruction (extension): for each of the
// count indices, accumulate one gradient stripe from gradBase into table row
// idx (table[idx[i]] += grad[i]). count must be a positive multiple of 16,
// like GATHER. Duplicate indices accumulate in instruction order.
func ScatterAdd(tableBase, idxBase, gradBase uint64, count uint32) Instruction {
	return Instruction{Op: OpScatterAdd, InputBase: tableBase, Aux: idxBase, OutputBase: gradBase, Count: count}
}

// Validate checks structural invariants of the instruction.
func (in Instruction) Validate() error {
	switch in.Op {
	case OpGather, OpScatterAdd:
		if in.Count == 0 || in.Count%LanesPerBlock != 0 {
			return fmt.Errorf("%w: %v count %d must be a positive multiple of %d", ErrCount, in.Op, in.Count, LanesPerBlock)
		}
	case OpReduce:
		if in.Count == 0 {
			return fmt.Errorf("%w: REDUCE count must be positive", ErrCount)
		}
		if in.ROp > RMax {
			return fmt.Errorf("%w: REDUCE operator %d", ErrAux, in.ROp)
		}
	case OpAverage:
		if in.Count == 0 {
			return fmt.Errorf("%w: AVERAGE count must be positive", ErrCount)
		}
		if in.Aux < 1 {
			return fmt.Errorf("%w: AVERAGE averageNum must be >= 1, got %d", ErrAux, in.Aux)
		}
	default:
		return fmt.Errorf("%w: %d", ErrOpcode, in.Op)
	}
	return nil
}

// Encode serializes the instruction into its 32-byte wire format:
//
//	offset 0  : opcode (uint8)
//	offset 1  : reduce operator (uint8)
//	offset 2-3: reserved (zero)
//	offset 4-7: count (uint32 LE)
//	offset 8  : InputBase (uint64 LE)
//	offset 16 : Aux (uint64 LE)
//	offset 24 : OutputBase (uint64 LE)
func (in Instruction) Encode() [WordBytes]byte {
	var w [WordBytes]byte
	w[0] = byte(in.Op)
	w[1] = byte(in.ROp)
	binary.LittleEndian.PutUint32(w[4:8], in.Count)
	binary.LittleEndian.PutUint64(w[8:16], in.InputBase)
	binary.LittleEndian.PutUint64(w[16:24], in.Aux)
	binary.LittleEndian.PutUint64(w[24:32], in.OutputBase)
	return w
}

// Decode parses a 32-byte wire word. It returns ErrTruncated if b is short
// and a validation error if the decoded instruction is malformed.
func Decode(b []byte) (Instruction, error) {
	if len(b) < WordBytes {
		return Instruction{}, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	in := Instruction{
		Op:         Opcode(b[0]),
		ROp:        ReduceOp(b[1]),
		Count:      binary.LittleEndian.Uint32(b[4:8]),
		InputBase:  binary.LittleEndian.Uint64(b[8:16]),
		Aux:        binary.LittleEndian.Uint64(b[16:24]),
		OutputBase: binary.LittleEndian.Uint64(b[24:32]),
	}
	if err := in.Validate(); err != nil {
		return Instruction{}, err
	}
	return in, nil
}

// String renders a one-line disassembly, e.g.
// "GATHER table=0x100 idx=0x2000 out=0x4000 count=64".
func (in Instruction) String() string {
	switch in.Op {
	case OpGather:
		return fmt.Sprintf("GATHER table=%#x idx=%#x out=%#x count=%d", in.InputBase, in.Aux, in.OutputBase, in.Count)
	case OpReduce:
		return fmt.Sprintf("REDUCE.%s in1=%#x in2=%#x out=%#x count=%d", in.ROp, in.InputBase, in.Aux, in.OutputBase, in.Count)
	case OpAverage:
		return fmt.Sprintf("AVERAGE in=%#x n=%d out=%#x count=%d", in.InputBase, in.Aux, in.OutputBase, in.Count)
	case OpScatterAdd:
		return fmt.Sprintf("SCATTER_ADD table=%#x idx=%#x grad=%#x count=%d", in.InputBase, in.Aux, in.OutputBase, in.Count)
	default:
		return fmt.Sprintf("INVALID op=%d", uint8(in.Op))
	}
}

// Program is an ordered sequence of instructions, as emitted by the runtime
// for one embedding layer (e.g. two GATHERs followed by a REDUCE, Figure 2).
type Program []Instruction

// Validate validates every instruction in the program.
func (p Program) Validate() error {
	for i, in := range p {
		if err := in.Validate(); err != nil {
			return fmt.Errorf("instruction %d: %w", i, err)
		}
	}
	return nil
}

// EncodeProgram serializes the program as len(p) consecutive 32-byte words.
func EncodeProgram(p Program) []byte {
	out := make([]byte, 0, len(p)*WordBytes)
	for _, in := range p {
		w := in.Encode()
		out = append(out, w[:]...)
	}
	return out
}

// DecodeProgram parses a byte stream of whole instruction words.
func DecodeProgram(b []byte) (Program, error) {
	if len(b)%WordBytes != 0 {
		return nil, fmt.Errorf("%w: stream length %d not a multiple of %d", ErrTruncated, len(b), WordBytes)
	}
	p := make(Program, 0, len(b)/WordBytes)
	for off := 0; off < len(b); off += WordBytes {
		in, err := Decode(b[off : off+WordBytes])
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", off/WordBytes, err)
		}
		p = append(p, in)
	}
	return p, nil
}

// Traffic describes the DRAM traffic an instruction generates per TensorDIMM,
// in 64-byte blocks, following the pseudo-code of Figure 9. It is used by the
// trace generator and by the analytical bandwidth model.
type Traffic struct {
	ReadBlocks  uint64 // blocks read from rank-local DRAM
	WriteBlocks uint64 // blocks written to rank-local DRAM
}

// TotalBlocks returns reads plus writes.
func (t Traffic) TotalBlocks() uint64 { return t.ReadBlocks + t.WriteBlocks }

// RankTraffic returns the per-TensorDIMM DRAM traffic of the instruction.
//
//	GATHER     : reads count/16 index blocks + count data blocks, writes count.
//	REDUCE     : reads 2*count, writes count.
//	AVERAGE    : reads averageNum*count, writes count.
//	SCATTER_ADD: reads count/16 index blocks + count gradient blocks +
//	             count table blocks, writes count table blocks.
//
// The index-block reads of GATHER/SCATTER_ADD are counted on every rank:
// the paper broadcasts the instruction and each NMP core walks the full
// index list.
func (in Instruction) RankTraffic() Traffic {
	c := uint64(in.Count)
	switch in.Op {
	case OpGather:
		return Traffic{ReadBlocks: c/LanesPerBlock + c, WriteBlocks: c}
	case OpReduce:
		return Traffic{ReadBlocks: 2 * c, WriteBlocks: c}
	case OpAverage:
		return Traffic{ReadBlocks: in.Aux * c, WriteBlocks: c}
	case OpScatterAdd:
		return Traffic{ReadBlocks: c/LanesPerBlock + 2*c, WriteBlocks: c}
	default:
		return Traffic{}
	}
}
