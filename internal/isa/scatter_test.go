package isa

import (
	"strings"
	"testing"
)

func TestScatterAddValidation(t *testing.T) {
	if err := ScatterAdd(1, 2, 3, 32).Validate(); err != nil {
		t.Fatal(err)
	}
	if err := ScatterAdd(1, 2, 3, 0).Validate(); err == nil {
		t.Fatal("want error for zero count")
	}
	if err := ScatterAdd(1, 2, 3, 17).Validate(); err == nil {
		t.Fatal("want error for count not multiple of 16")
	}
}

func TestScatterAddRoundTrip(t *testing.T) {
	in := ScatterAdd(0x100, 0x200, 0x300, 64)
	w := in.Encode()
	got, err := Decode(w[:])
	if err != nil {
		t.Fatal(err)
	}
	if got != in {
		t.Fatalf("round trip: %+v != %+v", got, in)
	}
	if !strings.Contains(in.String(), "SCATTER_ADD") {
		t.Fatalf("String = %q", in.String())
	}
	if OpScatterAdd.String() != "SCATTER_ADD" {
		t.Fatal("opcode String wrong")
	}
}

func TestScatterAddTraffic(t *testing.T) {
	// 32 indices: 2 index blocks + 32 gradient reads + 32 table reads,
	// 32 table writes.
	tr := ScatterAdd(0, 0, 0, 32).RankTraffic()
	if tr.ReadBlocks != 2+64 || tr.WriteBlocks != 32 {
		t.Fatalf("traffic = %+v", tr)
	}
}
