package node

import (
	"testing"

	"tensordimm/internal/isa"
)

// TestReadFloatsIntoRoundTrip pins the allocation-free float I/O path:
// WriteFloats (block-packed, zero-padded tail) followed by ReadFloatsInto
// must round-trip exactly, including counts that are not a multiple of the
// 16-lane block and reads into reused buffers.
func TestReadFloatsIntoRoundTrip(t *testing.T) {
	n, err := New(Config{DIMMs: 4, PerDIMMBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	base, err := n.Alloc(4096)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float32, 100)
	for _, count := range []int{1, 15, 16, 17, 64, 100} {
		vals := make([]float32, count)
		for i := range vals {
			vals[i] = float32(i)*0.5 - 7
		}
		if err := n.WriteFloats(base, vals); err != nil {
			t.Fatal(err)
		}
		got := buf[:count]
		if err := n.ReadFloatsInto(base, got); err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("count %d: got[%d] = %v, want %v", count, i, got[i], vals[i])
			}
		}
		// The allocating form must agree with the into-form.
		alloc, err := n.ReadFloats(base, count)
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if alloc[i] != vals[i] {
				t.Fatalf("count %d: ReadFloats[%d] = %v, want %v", count, i, alloc[i], vals[i])
			}
		}
	}
	// The partial tail block is zero-padded: write 1 float, read 16 back.
	if err := n.WriteFloats(base, []float32{42}); err != nil {
		t.Fatal(err)
	}
	got := buf[:isa.LanesPerBlock]
	if err := n.ReadFloatsInto(base, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 42 {
		t.Fatalf("got[0] = %v, want 42", got[0])
	}
	for i := 1; i < len(got); i++ {
		if got[i] != 0 {
			t.Fatalf("tail lane %d = %v, want zero padding", i, got[i])
		}
	}
}

// TestIOBoundsAndAlignment pins the error paths of the rewritten I/O.
func TestIOBoundsAndAlignment(t *testing.T) {
	n, err := New(Config{DIMMs: 2, PerDIMMBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.WriteFloats(32, []float32{1}); err == nil {
		t.Fatal("want unaligned-base write error")
	}
	if err := n.ReadFloatsInto(32, make([]float32, 1)); err == nil {
		t.Fatal("want unaligned-base read error")
	}
	if err := n.WriteFloats(n.CapacityBytes()-64, make([]float32, 32)); err == nil {
		t.Fatal("want out-of-capacity write error")
	}
	if err := n.ReadFloatsInto(n.CapacityBytes()-64, make([]float32, 32)); err == nil {
		t.Fatal("want out-of-capacity read error")
	}
}

// TestExecuteAfterClose pins the Close contract: the executor workers stop
// and further Execute calls fail cleanly instead of hanging.
func TestExecuteAfterClose(t *testing.T) {
	n, err := New(Config{DIMMs: 2, PerDIMMBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	n.Close()
	n.Close() // idempotent
	prog := isa.Program{isa.Gather(0, 0, 8, 16)}
	if err := n.Execute(prog); err == nil {
		t.Fatal("want error executing on a closed node")
	}
}
