// Package node implements TensorNode (Section 4.3, Figure 6(c)): a
// disaggregated memory pool fully populated with TensorDIMMs, attached as an
// endpoint of the GPU-side system interconnect.
//
// The node provides:
//
//   - striped data movement: tensors written into the pool are interleaved in
//     64-byte blocks across all TensorDIMMs (the address mapping of Figure 7),
//     so every NMP core owns an equal slice of every tensor;
//
//   - instruction broadcast: one TensorISA instruction is delivered to every
//     buffer device, and all NMP cores execute their slice concurrently
//     (Section 4.4, "the TensorISA instruction is broadcasted to all the
//     TensorDIMMs");
//
//   - a pool memory allocator in the spirit of the remote-memory
//     (de)allocation runtime APIs the paper builds on ([39]): first-fit with
//     stripe-aligned bases and free-block coalescing.
//
// Functional contents are real: data written here and transformed by the NMP
// cores is compared bit-for-bit against the golden model in tests.
package node

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"tensordimm/internal/dimm"
	"tensordimm/internal/isa"
	"tensordimm/internal/nmp"
)

// Config sizes a TensorNode.
type Config struct {
	// DIMMs is the number of TensorDIMMs (Table 1 default: 32).
	DIMMs int
	// PerDIMMBytes is the rank-local capacity of each TensorDIMM
	// (e.g. 128 GiB LR-DIMMs in the paper; far smaller in tests).
	PerDIMMBytes uint64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.DIMMs <= 0 {
		return fmt.Errorf("node: DIMMs must be positive, got %d", c.DIMMs)
	}
	if c.PerDIMMBytes == 0 || c.PerDIMMBytes%isa.BlockBytes != 0 {
		return fmt.Errorf("node: PerDIMMBytes %d must be a positive multiple of %d", c.PerDIMMBytes, isa.BlockBytes)
	}
	return nil
}

// Node is a TensorNode instance.
type Node struct {
	cfg    Config
	dimms  []*dimm.TensorDIMM
	shared *dimm.SharedRegion

	mu      sync.Mutex
	free    []span            // allocator free list, sorted by base, in bytes
	allocs  map[uint64]uint64 // base -> size
	idxNext uint64            // next unreserved shared-region byte address

	// Instruction broadcast runs on one persistent worker goroutine per
	// TensorDIMM (the per-DIMM FSM of the hardware): Execute hands each
	// worker the instruction over its channel and waits on a pooled
	// execState, so the steady-state broadcast path performs no heap
	// allocations (see ARCHITECTURE.md, "Memory discipline").
	execCh   []chan execJob
	execPool sync.Pool
	closed   atomic.Bool
}

// execJob is one instruction handed to a DIMM's executor worker.
type execJob struct {
	in isa.Instruction
	st *execState
}

// execState is the per-Execute rendezvous: every worker records its error
// slot and signals the WaitGroup. States are pooled and reused; errs is
// fully overwritten for every instruction before it is read.
type execState struct {
	wg   sync.WaitGroup
	errs []error
}

// span is a free region [base, base+size) in bytes.
type span struct {
	base, size uint64
}

// New builds a TensorNode.
func New(cfg Config) (*Node, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shared := dimm.NewSharedRegion()
	n := &Node{
		cfg:    cfg,
		shared: shared,
		allocs: make(map[uint64]uint64),
	}
	for tid := 0; tid < cfg.DIMMs; tid++ {
		d, err := dimm.New(tid, cfg.DIMMs, cfg.PerDIMMBytes, shared)
		if err != nil {
			return nil, err
		}
		n.dimms = append(n.dimms, d)
	}
	n.free = []span{{base: 0, size: n.CapacityBytes()}}
	n.execPool.New = func() any { return &execState{errs: make([]error, cfg.DIMMs)} }
	for tid := 0; tid < cfg.DIMMs; tid++ {
		ch := make(chan execJob, 1)
		n.execCh = append(n.execCh, ch)
		go n.execWorker(tid, ch)
	}
	return n, nil
}

// execWorker drains one DIMM's instruction channel until Close.
func (n *Node) execWorker(tid int, ch chan execJob) {
	d := n.dimms[tid]
	for j := range ch {
		j.st.errs[tid] = d.Execute(j.in)
		j.st.wg.Done()
	}
}

// Close stops the node's executor workers. It is idempotent. Close must not
// be called while Execute calls are in flight (drain deployments and
// servers first); Execute after Close returns an error. Closing is only
// needed when nodes are created and torn down repeatedly in one process
// (the cluster does it per shard) — a node that lives for the process
// lifetime can skip it.
func (n *Node) Close() {
	if n.closed.Swap(true) {
		return
	}
	for _, ch := range n.execCh {
		close(ch)
	}
}

// NodeDim returns the number of TensorDIMMs.
func (n *Node) NodeDim() int { return n.cfg.DIMMs }

// CapacityBytes returns the pool capacity.
func (n *Node) CapacityBytes() uint64 {
	return uint64(n.cfg.DIMMs) * n.cfg.PerDIMMBytes
}

// StripeBytes returns the striping granularity: one 64-byte block per DIMM.
func (n *Node) StripeBytes() uint64 {
	return uint64(n.cfg.DIMMs) * isa.BlockBytes
}

// DIMM returns TensorDIMM tid (for stats inspection and tests).
func (n *Node) DIMM(tid int) *dimm.TensorDIMM { return n.dimms[tid] }

// dimmFor locates the owner of a global block and its local byte offset.
func (n *Node) dimmFor(globalBlock uint64) *dimm.TensorDIMM {
	return n.dimms[globalBlock%uint64(n.cfg.DIMMs)]
}

// Write stores bytes into the pool at a 64-byte-aligned byte address,
// striping blocks across DIMMs. Partial trailing blocks are zero-padded.
// This is the functional equivalent of a GPU->TensorNode cudaMemcpy.
func (n *Node) Write(base uint64, data []byte) error {
	if base%isa.BlockBytes != 0 {
		return fmt.Errorf("node: write base %#x not 64 B aligned", base)
	}
	if base+uint64(len(data)) > n.CapacityBytes() {
		return fmt.Errorf("node: write [%#x, +%d) beyond capacity %d", base, len(data), n.CapacityBytes())
	}
	for off := 0; off < len(data); off += isa.BlockBytes {
		var b nmp.Block
		copy(b[:], data[off:])
		gb := (base + uint64(off)) / isa.BlockBytes
		if err := n.dimmFor(gb).WriteLocal(gb, b); err != nil {
			return err
		}
	}
	return nil
}

// Read fetches len(out) bytes from the pool at a 64-byte-aligned address.
// This is the functional equivalent of a TensorNode->GPU cudaMemcpy.
func (n *Node) Read(base uint64, out []byte) error {
	if base%isa.BlockBytes != 0 {
		return fmt.Errorf("node: read base %#x not 64 B aligned", base)
	}
	if base+uint64(len(out)) > n.CapacityBytes() {
		return fmt.Errorf("node: read [%#x, +%d) beyond capacity %d", base, len(out), n.CapacityBytes())
	}
	for off := 0; off < len(out); off += isa.BlockBytes {
		gb := (base + uint64(off)) / isa.BlockBytes
		b, err := n.dimmFor(gb).ReadLocal(gb)
		if err != nil {
			return err
		}
		copy(out[off:], b[:])
	}
	return nil
}

// WriteFloats stores a float32 slice (little-endian) at base. The trailing
// partial block, if any, is zero-padded, and the write performs no heap
// allocations: values are packed block by block on the stack.
func (n *Node) WriteFloats(base uint64, vals []float32) error {
	nBytes := uint64(((len(vals)*4 + isa.BlockBytes - 1) / isa.BlockBytes) * isa.BlockBytes)
	if base%isa.BlockBytes != 0 {
		return fmt.Errorf("node: write base %#x not 64 B aligned", base)
	}
	if base+nBytes > n.CapacityBytes() {
		return fmt.Errorf("node: write [%#x, +%d) beyond capacity %d", base, nBytes, n.CapacityBytes())
	}
	for off := 0; off < len(vals); off += isa.LanesPerBlock {
		end := off + isa.LanesPerBlock
		if end > len(vals) {
			end = len(vals)
		}
		blk := nmp.PackFloats(vals[off:end])
		gb := base/isa.BlockBytes + uint64(off/isa.LanesPerBlock)
		if err := n.dimmFor(gb).WriteLocal(gb, blk); err != nil {
			return err
		}
	}
	return nil
}

// ReadFloats fetches count float32 values from base.
func (n *Node) ReadFloats(base uint64, count int) ([]float32, error) {
	out := make([]float32, count)
	if err := n.ReadFloatsInto(base, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadFloatsInto fetches len(out) float32 values from base into the
// caller's buffer, decoding 64-byte blocks directly so the steady-state
// read-back path performs no heap allocations. base must be 64 B aligned.
func (n *Node) ReadFloatsInto(base uint64, out []float32) error {
	nBytes := uint64(((len(out)*4 + isa.BlockBytes - 1) / isa.BlockBytes) * isa.BlockBytes)
	if base%isa.BlockBytes != 0 {
		return fmt.Errorf("node: read base %#x not 64 B aligned", base)
	}
	if base+nBytes > n.CapacityBytes() {
		return fmt.Errorf("node: read [%#x, +%d) beyond capacity %d", base, nBytes, n.CapacityBytes())
	}
	i := 0
	for gb := base / isa.BlockBytes; i < len(out); gb++ {
		b, err := n.dimmFor(gb).ReadLocal(gb)
		if err != nil {
			return err
		}
		for l := 0; l < isa.LanesPerBlock && i < len(out); l++ {
			out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[l*4 : l*4+4]))
			i++
		}
	}
	return nil
}

// LoadIndices replicates a GATHER index list into the shared region at the
// given 64-byte-aligned byte address. Indices are padded to a whole block
// with zeros (harmless: GATHER count controls how many are consumed).
func (n *Node) LoadIndices(base uint64, indices []int32) error {
	if base%isa.BlockBytes != 0 {
		return fmt.Errorf("node: index base %#x not 64 B aligned", base)
	}
	for off := 0; off < len(indices); off += isa.LanesPerBlock {
		end := off + isa.LanesPerBlock
		if end > len(indices) {
			end = len(indices)
		}
		blk := nmp.PackIndices(indices[off:end])
		n.shared.Write(base/isa.BlockBytes+uint64(off/isa.LanesPerBlock), blk)
	}
	return nil
}

// Execute broadcasts each instruction of the program to every TensorDIMM and
// runs all NMP cores concurrently, one instruction at a time (instructions
// within a program are dependent; DIMMs within an instruction are not).
//
// Execute is safe to call concurrently with other Execute, Read and Write
// calls as long as the programs touch disjoint pool regions (each core
// serializes its own instruction stream, so concurrent programs interleave
// at instruction granularity). The runtime's per-lane scratch partitioning
// guarantees disjointness for concurrent inference batches.
func (n *Node) Execute(p isa.Program) error {
	if err := p.Validate(); err != nil {
		return err
	}
	if n.closed.Load() {
		return fmt.Errorf("node: node is closed")
	}
	// Instruction fields are in 64-byte blocks; convert byte->block
	// addressing is the caller's job. Broadcast each instruction to the
	// persistent per-DIMM workers and wait on the pooled state: no goroutine
	// spawns or slice allocations on the steady-state path.
	st := n.execPool.Get().(*execState)
	for i, in := range p {
		st.wg.Add(len(n.dimms))
		for _, ch := range n.execCh {
			ch <- execJob{in: in, st: st}
		}
		st.wg.Wait()
		for tid, err := range st.errs {
			if err != nil {
				n.execPool.Put(st)
				return fmt.Errorf("node: instruction %d (%v) on DIMM %d: %w", i, in, tid, err)
			}
		}
	}
	n.execPool.Put(st)
	return nil
}

// ReserveIndexRegion hands out a block-aligned, never-reused byte address
// range of the replicated shared region (the store LoadIndices writes to).
// Concurrent writers of the shared region — deployments, scratch lanes —
// reserve disjoint regions so their index lists cannot collide. The shared
// region is sparse (index blocks are materialized on write), so reservation
// costs nothing until the region is used.
func (n *Node) ReserveIndexRegion(bytes uint64) uint64 {
	if bytes == 0 {
		bytes = isa.BlockBytes
	}
	bytes = (bytes + isa.BlockBytes - 1) / isa.BlockBytes * isa.BlockBytes
	n.mu.Lock()
	defer n.mu.Unlock()
	base := n.idxNext
	n.idxNext += bytes
	return base
}

// Alloc reserves size bytes in the pool, returning a stripe-aligned base so
// tensors always stripe cleanly across all DIMMs. First-fit.
func (n *Node) Alloc(size uint64) (uint64, error) {
	if size == 0 {
		return 0, fmt.Errorf("node: zero-size allocation")
	}
	stripe := n.StripeBytes()
	size = (size + stripe - 1) / stripe * stripe
	n.mu.Lock()
	defer n.mu.Unlock()
	for i, s := range n.free {
		// Stripe-align the candidate base within the span.
		base := (s.base + stripe - 1) / stripe * stripe
		pad := base - s.base
		if s.size < pad+size {
			continue
		}
		// Carve [base, base+size) out of the span.
		if pad > 0 {
			n.free[i] = span{base: s.base, size: pad}
			rest := s.size - pad - size
			if rest > 0 {
				n.free = insertSpan(n.free, i+1, span{base: base + size, size: rest})
			}
		} else {
			rest := s.size - size
			if rest > 0 {
				n.free[i] = span{base: base + size, size: rest}
			} else {
				n.free = append(n.free[:i], n.free[i+1:]...)
			}
		}
		n.allocs[base] = size
		return base, nil
	}
	return 0, fmt.Errorf("node: out of pool memory (%d bytes requested)", size)
}

// Free releases an allocation made by Alloc, coalescing adjacent free spans.
func (n *Node) Free(base uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	size, ok := n.allocs[base]
	if !ok {
		return fmt.Errorf("node: Free(%#x): not an allocation base", base)
	}
	delete(n.allocs, base)
	// Insert sorted.
	i := 0
	for i < len(n.free) && n.free[i].base < base {
		i++
	}
	n.free = insertSpan(n.free, i, span{base: base, size: size})
	// Coalesce with neighbours.
	if i+1 < len(n.free) && n.free[i].base+n.free[i].size == n.free[i+1].base {
		n.free[i].size += n.free[i+1].size
		n.free = append(n.free[:i+1], n.free[i+2:]...)
	}
	if i > 0 && n.free[i-1].base+n.free[i-1].size == n.free[i].base {
		n.free[i-1].size += n.free[i].size
		n.free = append(n.free[:i], n.free[i+1:]...)
	}
	return nil
}

// FreeBytes returns the total unallocated pool capacity.
func (n *Node) FreeBytes() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	var total uint64
	for _, s := range n.free {
		total += s.size
	}
	return total
}

// AllocCount returns the number of live allocations.
func (n *Node) AllocCount() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.allocs)
}

// Stats aggregates NMP datapath counters across all DIMMs.
func (n *Node) Stats() nmp.Stats {
	var total nmp.Stats
	for _, d := range n.dimms {
		s := d.Core().Stats()
		total.BlocksRead += s.BlocksRead
		total.BlocksWritten += s.BlocksWritten
		total.SharedReads += s.SharedReads
		total.ALUBlockOps += s.ALUBlockOps
		total.Instructions += s.Instructions
	}
	return total
}

func insertSpan(spans []span, i int, s span) []span {
	spans = append(spans, span{})
	copy(spans[i+1:], spans[i:])
	spans[i] = s
	return spans
}
