package node

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"tensordimm/internal/embed"
	"tensordimm/internal/isa"
	"tensordimm/internal/tensor"
)

func testNode(t *testing.T, dimms int) *Node {
	t.Helper()
	n, err := New(Config{DIMMs: dimms, PerDIMMBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestConfigValidate(t *testing.T) {
	if _, err := New(Config{DIMMs: 0, PerDIMMBytes: 64}); err == nil {
		t.Fatal("want error for zero DIMMs")
	}
	if _, err := New(Config{DIMMs: 4, PerDIMMBytes: 100}); err == nil {
		t.Fatal("want error for unaligned capacity")
	}
	n := testNode(t, 8)
	if n.NodeDim() != 8 || n.CapacityBytes() != 8<<20 || n.StripeBytes() != 512 {
		t.Fatalf("geometry: dim=%d cap=%d stripe=%d", n.NodeDim(), n.CapacityBytes(), n.StripeBytes())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	n := testNode(t, 8)
	data := make([]byte, 8*64*3) // three stripes
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := n.Write(0, data); err != nil {
		t.Fatal(err)
	}
	out := make([]byte, len(data))
	if err := n.Read(0, out); err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if out[i] != data[i] {
			t.Fatalf("byte %d: %d != %d", i, out[i], data[i])
		}
	}
}

func TestWriteReadValidation(t *testing.T) {
	n := testNode(t, 4)
	if err := n.Write(63, []byte{1}); err == nil {
		t.Fatal("want alignment error")
	}
	if err := n.Write(n.CapacityBytes()-32, make([]byte, 64)); err == nil {
		t.Fatal("want capacity error")
	}
	if err := n.Read(63, make([]byte, 1)); err == nil {
		t.Fatal("want alignment error on read")
	}
	if err := n.Read(n.CapacityBytes()-32, make([]byte, 64)); err == nil {
		t.Fatal("want capacity error on read")
	}
}

func TestFloatsRoundTrip(t *testing.T) {
	n := testNode(t, 4)
	vals := make([]float32, 100)
	for i := range vals {
		vals[i] = float32(i) * 0.25
	}
	if err := n.WriteFloats(4096, vals); err != nil {
		t.Fatal(err)
	}
	got, err := n.ReadFloats(4096, len(vals))
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("float %d: %v != %v", i, got[i], vals[i])
		}
	}
}

// uploadTable writes an embed.Table into pool memory at base, row r at
// base + r*rowBytes, which under the striped mapping spreads each row across
// all DIMMs (Figure 7).
func uploadTable(t *testing.T, n *Node, tb *embed.Table, base uint64) {
	t.Helper()
	for r := 0; r < tb.Rows(); r++ {
		if err := n.WriteFloats(base+uint64(r)*uint64(tb.Dim())*4, tb.Row(r)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestGatherAverageMatchesGolden(t *testing.T) {
	// 8 DIMMs; dim 128 floats = 512 B = 8 blocks = exactly one stripe.
	const dimms, dim = 8, 128
	n := testNode(t, dimms)
	tb, _ := embed.NewRandomTable(200, dim, 11)

	tableBase, _ := n.Alloc(uint64(tb.Bytes()))
	uploadTable(t, n, tb, tableBase)

	batch, reduction := 4, 4
	count := batch * reduction // 16 = one index block
	rng := rand.New(rand.NewSource(5))
	rows := make([]int, count)
	idx32 := make([]int32, count)
	for i := range rows {
		rows[i] = rng.Intn(tb.Rows())
		idx32[i] = int32(rows[i])
	}

	idxBase := uint64(1 << 18)
	if err := n.LoadIndices(idxBase, idx32); err != nil {
		t.Fatal(err)
	}
	gatherBase, _ := n.Alloc(uint64(count * dim * 4))
	outBase, _ := n.Alloc(uint64(batch * dim * 4))

	prog := isa.Program{
		isa.Gather(tableBase/64, idxBase/64, gatherBase/64, uint32(count)),
		isa.Average(gatherBase/64, uint32(reduction), outBase/64, uint32(batch)),
	}
	if err := n.Execute(prog); err != nil {
		t.Fatal(err)
	}

	// Golden model.
	gathered, err := tb.Gather(rows)
	if err != nil {
		t.Fatal(err)
	}
	want, err := embed.Average(gathered, reduction)
	if err != nil {
		t.Fatal(err)
	}

	gotVals, err := n.ReadFloats(outBase, batch*dim)
	if err != nil {
		t.Fatal(err)
	}
	got := tensor.MustFromSlice(gotVals, batch, dim)
	if !tensor.Equal(got, want) {
		t.Fatal("NMP AVERAGE output differs from golden model")
	}

	// Datapath stats must reflect the broadcast execution.
	s := n.Stats()
	if s.Instructions != uint64(2*dimms) {
		t.Fatalf("instructions retired = %d, want %d", s.Instructions, 2*dimms)
	}
	if s.BlocksRead == 0 || s.BlocksWritten == 0 || s.ALUBlockOps == 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestGatherReduceTwoTablesMatchesGolden(t *testing.T) {
	// NCF-style: gather from two tables, element-wise multiply (GMF path).
	const dimms, dim = 4, 64 // one stripe = 4*16 = 64 floats
	n := testNode(t, dimms)
	t1, _ := embed.NewRandomTable(100, dim, 1)
	t2, _ := embed.NewRandomTable(100, dim, 2)
	base1, _ := n.Alloc(uint64(t1.Bytes()))
	base2, _ := n.Alloc(uint64(t2.Bytes()))
	uploadTable(t, n, t1, base1)
	uploadTable(t, n, t2, base2)

	batch := 16
	rng := rand.New(rand.NewSource(9))
	rows1 := make([]int, batch)
	rows2 := make([]int, batch)
	idx1 := make([]int32, batch)
	idx2 := make([]int32, batch)
	for i := 0; i < batch; i++ {
		rows1[i] = rng.Intn(100)
		rows2[i] = rng.Intn(100)
		idx1[i] = int32(rows1[i])
		idx2[i] = int32(rows2[i])
	}
	idxBase1, idxBase2 := uint64(1<<19), uint64(1<<19+4096)
	if err := n.LoadIndices(idxBase1, idx1); err != nil {
		t.Fatal(err)
	}
	if err := n.LoadIndices(idxBase2, idx2); err != nil {
		t.Fatal(err)
	}
	g1, _ := n.Alloc(uint64(batch * dim * 4))
	g2, _ := n.Alloc(uint64(batch * dim * 4))
	out, _ := n.Alloc(uint64(batch * dim * 4))

	prog := isa.Program{
		isa.Gather(base1/64, idxBase1/64, g1/64, uint32(batch)),
		isa.Gather(base2/64, idxBase2/64, g2/64, uint32(batch)),
		isa.Reduce(isa.RMul, g1/64, g2/64, out/64, uint32(batch*dim*4/64)),
	}
	if err := n.Execute(prog); err != nil {
		t.Fatal(err)
	}

	a, _ := t1.Gather(rows1)
	b, _ := t2.Gather(rows2)
	want, _ := tensor.Mul(a, b)
	gotVals, err := n.ReadFloats(out, batch*dim)
	if err != nil {
		t.Fatal(err)
	}
	got := tensor.MustFromSlice(gotVals, batch, dim)
	if !tensor.Equal(got, want) {
		t.Fatal("NMP GATHER+REDUCE differs from golden model")
	}
}

func TestMultiStripeEmbeddings(t *testing.T) {
	// Embeddings spanning k=2 stripes (dim 128 on 4 DIMMs): the runtime
	// expands indices stripe-transposed within each pooling group so the
	// paper's AVERAGE addressing (Figure 9(c)) still applies.
	const dimms, dim = 4, 128 // stripe = 64 floats, k = 2
	const k = 2
	n := testNode(t, dimms)
	tb, _ := embed.NewRandomTable(64, dim, 3)
	tableBase, _ := n.Alloc(uint64(tb.Bytes()))
	uploadTable(t, n, tb, tableBase)

	batch, reduction := 2, 4
	rng := rand.New(rand.NewSource(21))
	rows := make([]int, batch*reduction)
	for i := range rows {
		rows[i] = rng.Intn(64)
	}
	// Expand: group-major, stripe-major, embedding-minor.
	expanded := make([]int32, 0, batch*reduction*k)
	for g := 0; g < batch; g++ {
		for s := 0; s < k; s++ {
			for j := 0; j < reduction; j++ {
				expanded = append(expanded, int32(rows[g*reduction+j]*k+s))
			}
		}
	}
	idxBase := uint64(1 << 18)
	if err := n.LoadIndices(idxBase, expanded); err != nil {
		t.Fatal(err)
	}
	gBase, _ := n.Alloc(uint64(len(expanded) * int(n.StripeBytes())))
	oBase, _ := n.Alloc(uint64(batch * dim * 4))
	prog := isa.Program{
		isa.Gather(tableBase/64, idxBase/64, gBase/64, uint32(len(expanded))),
		isa.Average(gBase/64, uint32(reduction), oBase/64, uint32(batch*k)),
	}
	if err := n.Execute(prog); err != nil {
		t.Fatal(err)
	}

	gathered, _ := tb.Gather(rows)
	want, _ := embed.Average(gathered, reduction)
	gotVals, err := n.ReadFloats(oBase, batch*dim)
	if err != nil {
		t.Fatal(err)
	}
	got := tensor.MustFromSlice(gotVals, batch, dim)
	if !tensor.Equal(got, want) {
		t.Fatal("multi-stripe AVERAGE differs from golden model")
	}
}

func TestExecuteValidatesProgram(t *testing.T) {
	n := testNode(t, 2)
	if err := n.Execute(isa.Program{{Op: isa.OpGather, Count: 3}}); err == nil {
		t.Fatal("want validation error")
	}
}

func TestAllocFreeBasics(t *testing.T) {
	n := testNode(t, 4)
	total := n.FreeBytes()
	a, err := n.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if a%n.StripeBytes() != 0 {
		t.Fatalf("alloc base %#x not stripe aligned", a)
	}
	b, _ := n.Alloc(1000)
	if b == a {
		t.Fatal("overlapping allocations")
	}
	if n.AllocCount() != 2 {
		t.Fatalf("AllocCount = %d", n.AllocCount())
	}
	if err := n.Free(a); err != nil {
		t.Fatal(err)
	}
	if err := n.Free(b); err != nil {
		t.Fatal(err)
	}
	if n.FreeBytes() != total {
		t.Fatalf("leak: free %d != total %d", n.FreeBytes(), total)
	}
	if err := n.Free(a); err == nil {
		t.Fatal("double free must error")
	}
	if _, err := n.Alloc(0); err == nil {
		t.Fatal("zero alloc must error")
	}
	if _, err := n.Alloc(n.CapacityBytes() * 2); err == nil {
		t.Fatal("oversized alloc must error")
	}
}

func TestAllocReusesFreedSpace(t *testing.T) {
	n := testNode(t, 4)
	a, _ := n.Alloc(n.CapacityBytes() / 2)
	if _, err := n.Alloc(n.CapacityBytes()); err == nil {
		t.Fatal("should not fit")
	}
	if err := n.Free(a); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Alloc(n.CapacityBytes()); err != nil {
		t.Fatalf("coalesced free space not reusable: %v", err)
	}
}

// Property: allocations never overlap and are stripe-aligned.
func TestQuickAllocatorInvariants(t *testing.T) {
	f := func(sizes []uint16) bool {
		n, err := New(Config{DIMMs: 4, PerDIMMBytes: 1 << 16})
		if err != nil {
			return false
		}
		type region struct{ base, size uint64 }
		var live []region
		for _, s := range sizes {
			size := uint64(s%4096) + 1
			base, err := n.Alloc(size)
			if err != nil {
				continue // pool exhausted is fine
			}
			if base%n.StripeBytes() != 0 {
				return false
			}
			for _, r := range live {
				if base < r.base+r.size && r.base < base+size {
					return false // overlap
				}
			}
			live = append(live, region{base, size})
			// Free every other allocation to exercise coalescing.
			if len(live)%2 == 0 {
				victim := live[0]
				if err := n.Free(victim.base); err != nil {
					return false
				}
				live = live[1:]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentExecuteDisjointRegions runs many GATHER programs from
// concurrent goroutines, each over its own index region and output scratch,
// and checks every result against the golden table. This is the isolation
// contract the serving runtime relies on (and must hold under -race).
func TestConcurrentExecuteDisjointRegions(t *testing.T) {
	const dimms, dim = 8, 128 // one stripe per embedding
	n := testNode(t, dimms)
	tb, _ := embed.NewRandomTable(300, dim, 21)
	tableBase, _ := n.Alloc(uint64(tb.Bytes()))
	uploadTable(t, n, tb, tableBase)

	const workers, count = 8, 16
	type job struct {
		rows    []int
		idxBase uint64
		outBase uint64
	}
	jobs := make([]job, workers)
	for w := range jobs {
		rng := rand.New(rand.NewSource(int64(w) + 100))
		rows := make([]int, count)
		for i := range rows {
			rows[i] = rng.Intn(tb.Rows())
		}
		out, err := n.Alloc(uint64(count * dim * 4))
		if err != nil {
			t.Fatal(err)
		}
		jobs[w] = job{rows: rows, idxBase: uint64(1<<18) + uint64(w)*4096, outBase: out}
	}

	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			j := jobs[w]
			idx := make([]int32, count)
			for i, r := range j.rows {
				idx[i] = int32(r)
			}
			if err := n.LoadIndices(j.idxBase, idx); err != nil {
				errs[w] = err
				return
			}
			errs[w] = n.Execute(isa.Program{
				isa.Gather(tableBase/64, j.idxBase/64, j.outBase/64, uint32(count)),
			})
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	for w, j := range jobs {
		want, _ := tb.Gather(j.rows)
		gotVals, err := n.ReadFloats(j.outBase, count*dim)
		if err != nil {
			t.Fatal(err)
		}
		got := tensor.MustFromSlice(gotVals, count, dim)
		if !tensor.Equal(got, want) {
			t.Fatalf("worker %d: concurrent GATHER differs from golden model", w)
		}
	}
}
