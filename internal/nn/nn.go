// Package nn implements the dense DNN substrate of the recommender models:
// fully-connected (FC/MLP) layers with the activations used by neural
// collaborative filtering and its descendants (Section 2.3, Figure 2 step 3).
// It provides real forward computation (for functional validation and the
// examples) and FLOP/parameter accounting (for the roofline performance
// model in internal/device).
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"tensordimm/internal/tensor"
)

// Activation selects the nonlinearity applied after a dense layer.
type Activation int

// Supported activations.
const (
	ActNone Activation = iota
	ActReLU
	ActSigmoid
)

// String implements fmt.Stringer.
func (a Activation) String() string {
	switch a {
	case ActNone:
		return "none"
	case ActReLU:
		return "relu"
	case ActSigmoid:
		return "sigmoid"
	default:
		return fmt.Sprintf("act(%d)", int(a))
	}
}

// Dense is one fully-connected layer: y = act(x*W + b).
type Dense struct {
	W   *tensor.Tensor // [in, out]
	B   []float32      // [out]
	Act Activation
}

// NewDense builds a layer with deterministic Xavier-style random weights.
func NewDense(in, out int, act Activation, seed int64) (*Dense, error) {
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("nn: invalid dense geometry %dx%d", in, out)
	}
	rng := rand.New(rand.NewSource(seed))
	w := tensor.New(in, out)
	scale := float32(math.Sqrt(2.0 / float64(in+out)))
	for i := range w.Data() {
		w.Data()[i] = (rng.Float32()*2 - 1) * scale
	}
	b := make([]float32, out)
	return &Dense{W: w, B: b, Act: act}, nil
}

// InDim returns the input width.
func (d *Dense) InDim() int { return d.W.Dim(0) }

// OutDim returns the output width.
func (d *Dense) OutDim() int { return d.W.Dim(1) }

// Forward computes act(x*W + b) for x of shape [batch, in].
func (d *Dense) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	y, err := tensor.MatMul(x, d.W)
	if err != nil {
		return nil, fmt.Errorf("nn dense: %w", err)
	}
	rows, cols := y.Dim(0), y.Dim(1)
	for r := 0; r < rows; r++ {
		row := y.Row(r)
		for c := 0; c < cols; c++ {
			v := row[c] + d.B[c]
			switch d.Act {
			case ActReLU:
				if v < 0 {
					v = 0
				}
			case ActSigmoid:
				v = float32(1 / (1 + math.Exp(-float64(v))))
			}
			row[c] = v
		}
	}
	return y, nil
}

// FLOPs returns the multiply-add count for one batch (2 FLOPs per MAC).
func (d *Dense) FLOPs(batch int) int64 {
	return 2 * int64(batch) * int64(d.InDim()) * int64(d.OutDim())
}

// ParamBytes returns the weight+bias footprint.
func (d *Dense) ParamBytes() int64 {
	return int64(d.W.Len())*4 + int64(len(d.B))*4
}

// MLP is a stack of dense layers (the "top MLP" of Figure 1).
type MLP struct {
	Layers []*Dense
}

// NewMLP builds a stack from the dimension chain dims[0] -> dims[1] -> ...
// with ReLU between hidden layers and a sigmoid on the final layer (the
// event-probability head of a recommender, Section 2.3).
func NewMLP(dims []int, seed int64) (*MLP, error) {
	if len(dims) < 2 {
		return nil, fmt.Errorf("nn: MLP needs at least input and output dims, got %v", dims)
	}
	m := &MLP{}
	for i := 0; i+1 < len(dims); i++ {
		act := ActReLU
		if i == len(dims)-2 {
			act = ActSigmoid
		}
		l, err := NewDense(dims[i], dims[i+1], act, seed+int64(i))
		if err != nil {
			return nil, err
		}
		m.Layers = append(m.Layers, l)
	}
	return m, nil
}

// Forward runs the whole stack.
func (m *MLP) Forward(x *tensor.Tensor) (*tensor.Tensor, error) {
	var err error
	for i, l := range m.Layers {
		x, err = l.Forward(x)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", i, err)
		}
	}
	return x, nil
}

// Dims returns the dimension chain [in, h1, ..., out].
func (m *MLP) Dims() []int {
	if len(m.Layers) == 0 {
		return nil
	}
	dims := []int{m.Layers[0].InDim()}
	for _, l := range m.Layers {
		dims = append(dims, l.OutDim())
	}
	return dims
}

// FLOPs returns the total FLOP count for one batch.
func (m *MLP) FLOPs(batch int) int64 {
	var total int64
	for _, l := range m.Layers {
		total += l.FLOPs(batch)
	}
	return total
}

// ParamBytes returns the total parameter footprint.
func (m *MLP) ParamBytes() int64 {
	var total int64
	for _, l := range m.Layers {
		total += l.ParamBytes()
	}
	return total
}

// NumLayers returns the number of dense layers.
func (m *MLP) NumLayers() int { return len(m.Layers) }
