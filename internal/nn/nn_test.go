package nn

import (
	"math"
	"testing"
	"testing/quick"

	"tensordimm/internal/tensor"
)

func TestNewDenseValidation(t *testing.T) {
	if _, err := NewDense(0, 4, ActNone, 1); err == nil {
		t.Fatal("want error for zero input dim")
	}
	if _, err := NewDense(4, -1, ActNone, 1); err == nil {
		t.Fatal("want error for negative output dim")
	}
	d, err := NewDense(4, 3, ActReLU, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.InDim() != 4 || d.OutDim() != 3 {
		t.Fatalf("dims %d %d", d.InDim(), d.OutDim())
	}
}

func TestDenseForwardKnownValues(t *testing.T) {
	d := &Dense{W: tensor.MustFromSlice([]float32{1, 2, 3, 4}, 2, 2), B: []float32{10, 20}, Act: ActNone}
	x := tensor.MustFromSlice([]float32{1, 1}, 1, 2)
	y, err := d.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	// y = [1+3, 2+4] + [10, 20] = [14, 26]
	if y.At(0, 0) != 14 || y.At(0, 1) != 26 {
		t.Fatalf("forward = %v", y)
	}
}

func TestActivations(t *testing.T) {
	w := tensor.MustFromSlice([]float32{1, 1}, 1, 2)
	x := tensor.MustFromSlice([]float32{-2}, 1, 1)

	relu := &Dense{W: w, B: []float32{0, 4}, Act: ActReLU}
	y, _ := relu.Forward(x)
	if y.At(0, 0) != 0 || y.At(0, 1) != 2 {
		t.Fatalf("relu = %v", y)
	}

	sig := &Dense{W: w, B: []float32{2, 0}, Act: ActSigmoid}
	y, _ = sig.Forward(x)
	if math.Abs(float64(y.At(0, 0))-0.5) > 1e-6 {
		t.Fatalf("sigmoid(0) = %v, want 0.5", y.At(0, 0))
	}
	if v := y.At(0, 1); v <= 0 || v >= 0.5 {
		t.Fatalf("sigmoid(-2) = %v, want in (0, 0.5)", v)
	}
}

func TestDenseForwardShapeError(t *testing.T) {
	d, _ := NewDense(4, 2, ActNone, 1)
	if _, err := d.Forward(tensor.New(1, 3)); err == nil {
		t.Fatal("want shape error")
	}
}

func TestAccounting(t *testing.T) {
	d, _ := NewDense(100, 50, ActReLU, 1)
	if d.FLOPs(8) != 2*8*100*50 {
		t.Fatalf("FLOPs = %d", d.FLOPs(8))
	}
	if d.ParamBytes() != (100*50+50)*4 {
		t.Fatalf("ParamBytes = %d", d.ParamBytes())
	}
}

func TestNewMLP(t *testing.T) {
	if _, err := NewMLP([]int{5}, 1); err == nil {
		t.Fatal("want error for single-dim chain")
	}
	m, err := NewMLP([]int{8, 4, 2, 1}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumLayers() != 3 {
		t.Fatalf("layers = %d", m.NumLayers())
	}
	dims := m.Dims()
	want := []int{8, 4, 2, 1}
	for i := range want {
		if dims[i] != want[i] {
			t.Fatalf("Dims = %v", dims)
		}
	}
	// Hidden layers ReLU, final Sigmoid.
	if m.Layers[0].Act != ActReLU || m.Layers[2].Act != ActSigmoid {
		t.Fatal("activation schedule wrong")
	}
	if (&MLP{}).Dims() != nil {
		t.Fatal("empty MLP Dims should be nil")
	}
}

func TestMLPForwardProbability(t *testing.T) {
	m, _ := NewMLP([]int{16, 8, 1}, 3)
	x := tensor.New(4, 16)
	for i := range x.Data() {
		x.Data()[i] = float32(i%7) * 0.1
	}
	y, err := m.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(0) != 4 || y.Dim(1) != 1 {
		t.Fatalf("output shape %v", y.Shape())
	}
	for i := 0; i < 4; i++ {
		p := y.At(i, 0)
		if p <= 0 || p >= 1 {
			t.Fatalf("probability %v outside (0,1)", p)
		}
	}
}

func TestMLPDeterministic(t *testing.T) {
	a, _ := NewMLP([]int{8, 4, 1}, 5)
	b, _ := NewMLP([]int{8, 4, 1}, 5)
	x := tensor.New(2, 8)
	x.Fill(0.5)
	ya, _ := a.Forward(x)
	yb, _ := b.Forward(x)
	if !tensor.Equal(ya, yb) {
		t.Fatal("same seed must give identical networks")
	}
}

func TestMLPAccounting(t *testing.T) {
	m, _ := NewMLP([]int{100, 10, 1}, 1)
	if m.FLOPs(2) != 2*2*(100*10+10*1) {
		t.Fatalf("FLOPs = %d", m.FLOPs(2))
	}
	if m.ParamBytes() != (100*10+10+10*1+1)*4 {
		t.Fatalf("ParamBytes = %d", m.ParamBytes())
	}
}

func TestActivationString(t *testing.T) {
	if ActReLU.String() != "relu" || ActSigmoid.String() != "sigmoid" ||
		ActNone.String() != "none" || Activation(9).String() == "" {
		t.Fatal("Activation.String misbehaves")
	}
}

// Property: ReLU output is non-negative.
func TestQuickReLUNonNegative(t *testing.T) {
	d, _ := NewDense(8, 8, ActReLU, 11)
	f := func(vals [8]float32) bool {
		x := tensor.MustFromSlice(append([]float32{}, vals[:]...), 1, 8)
		y, err := d.Forward(x)
		if err != nil {
			return false
		}
		for _, v := range y.Data() {
			if v < 0 || math.IsNaN(float64(v)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
