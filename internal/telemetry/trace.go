package telemetry

import (
	"sync"
	"time"
)

// MaxHops is the fixed per-span hop capacity. Spans are value structs
// embedded in pooled request objects, so the hop array is a fixed-size
// slot, not a slice — a tracer declares at most MaxHops named stages.
const MaxHops = 8

// DefaultSlowThreshold is the slow-ring admission threshold used when a
// tracer is created with threshold 0.
const DefaultSlowThreshold = time.Millisecond

// slowRingLen bounds the shared ring of recent slow requests. The ring
// is a fixed array of slots written in rotation; inserting copies into a
// preallocated slot under a mutex — slow requests are rare by definition,
// so the lock is off the hot path and the insert never allocates.
const slowRingLen = 64

// Span records per-hop stage timings for one request: Begin stamps the
// start, each Mark attributes the time since the previous mark to a named
// hop, and Tracer.Finish totals it and feeds the slow ring. A Span is a
// plain value struct designed to be embedded in an already-pooled request
// object (serve's request, cluster's router scratch, netserve's task) so
// tracing adds zero allocation; Reset it when the owner is recycled.
// A Span is owned by one request at a time and is not safe for concurrent
// use — the same single-owner discipline as the object it lives in.
type Span struct {
	start, last time.Time
	hops        [MaxHops]int64
}

// Begin starts the span now.
func (sp *Span) Begin() { sp.BeginAt(time.Now()) }

// BeginAt starts the span at t — used when the owning layer already
// stamped an arrival time (e.g. netserve's task admission).
func (sp *Span) BeginAt(t time.Time) {
	sp.hops = [MaxHops]int64{}
	sp.start = t
	sp.last = t
}

// Mark attributes the time since the previous mark (or Begin) to hop.
// Out-of-range hops and un-begun spans are ignored, so instrumentation
// can be sprinkled without nil-state checks at every site.
func (sp *Span) Mark(hop int) {
	if hop < 0 || hop >= MaxHops || sp.start.IsZero() {
		return
	}
	now := time.Now()
	sp.hops[hop] += now.Sub(sp.last).Nanoseconds()
	sp.last = now
}

// Active reports whether the span has been begun and not yet reset.
func (sp *Span) Active() bool { return !sp.start.IsZero() }

// Reset clears the span for reuse by the next request in the pool.
func (sp *Span) Reset() { *sp = Span{} }

// Tracer names a traced request path (serve, cluster, net), its hop
// stages, and its slow threshold. Create with Registry.Tracer; feed it
// spans embedded in the layer's pooled objects, or use Start/Release for
// standalone pooled spans.
type Tracer struct {
	name string
	hops []string
	slow time.Duration
	ring *slowRing
	pool sync.Pool
}

// Tracer registers a named tracer with the given slow threshold (0 means
// DefaultSlowThreshold) and hop names (at most MaxHops; a span's Mark
// indices map onto this list positionally). Duplicate tracer names panic,
// like duplicate series.
func (r *Registry) Tracer(name string, slow time.Duration, hopNames []string, labels ...Label) *Tracer {
	if len(hopNames) > MaxHops {
		panic("telemetry: tracer " + name + " declares more than MaxHops hops")
	}
	if slow <= 0 {
		slow = DefaultSlowThreshold
	}
	ls := renderLabels(labels)
	if ls != "" {
		name = name + "{" + ls + "}"
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.register("tracer", "tracer:"+name, ls)
	t := &Tracer{name: name, hops: hopNames, slow: slow, ring: &r.ring}
	t.pool.New = func() any { return new(Span) }
	r.tracers = append(r.tracers, t)
	return t
}

// Start returns a pooled span, begun now — for call sites that have no
// pooled request object to embed a span in. Pair with Release.
func (t *Tracer) Start() *Span {
	sp := t.pool.Get().(*Span)
	sp.Begin()
	return sp
}

// Release recycles a span obtained from Start.
func (t *Tracer) Release(sp *Span) {
	sp.Reset()
	t.pool.Put(sp)
}

// Finish completes a span: if its total latency meets the tracer's slow
// threshold, its hop breakdown is copied into the shared slow ring. The
// span stays usable (read or reset) by its owner afterwards. Inactive
// spans are ignored. Never allocates.
func (t *Tracer) Finish(sp *Span) {
	if sp.start.IsZero() {
		return
	}
	total := time.Since(sp.start)
	if total < t.slow {
		return
	}
	t.ring.insert(t, sp.start, total.Nanoseconds(), &sp.hops)
}

// slowEntry is one preallocated slot of the slow ring.
type slowEntry struct {
	tracer *Tracer
	start  time.Time
	total  int64
	hops   [MaxHops]int64
	seq    uint64
}

// slowRing is the registry-wide bounded ring of recent slow requests.
type slowRing struct {
	mu   sync.Mutex
	next int
	seq  uint64
	ents [slowRingLen]slowEntry
}

// insert copies one slow request into the next slot, evicting the oldest.
func (rg *slowRing) insert(t *Tracer, start time.Time, total int64, hops *[MaxHops]int64) {
	rg.mu.Lock()
	e := &rg.ents[rg.next]
	rg.next = (rg.next + 1) % slowRingLen
	rg.seq++
	e.tracer = t
	e.start = start
	e.total = total
	e.hops = *hops
	e.seq = rg.seq
	rg.mu.Unlock()
}

// SlowHop is one named stage of a slow request's latency breakdown.
type SlowHop struct {
	// Name is the hop's stage name; Nanos is time attributed to it.
	Name  string `json:"name"`
	Nanos int64  `json:"ns"`
}

// SlowRequest is one entry of the slow-request ring: which traced path it
// took, when it started, its total latency, and the per-hop breakdown.
// Hops the tracer declared but the request never marked report zero; time
// between the last mark and Finish appears in none of them (it is the
// remainder of Total).
type SlowRequest struct {
	// Tracer is the traced path's name (including instance labels).
	Tracer string `json:"tracer"`
	// StartUnixNano is when the request entered the traced path.
	StartUnixNano int64 `json:"start_unix_nano"`
	// TotalNanos is the request's total latency in nanoseconds.
	TotalNanos int64 `json:"total_ns"`
	// Hops is the per-stage breakdown, in the tracer's declared order.
	Hops []SlowHop `json:"hops"`
}

// SlowRequests returns the ring's current contents, newest first.
func (r *Registry) SlowRequests() []SlowRequest {
	rg := &r.ring
	rg.mu.Lock()
	defer rg.mu.Unlock()
	ents := make([]slowEntry, 0, slowRingLen)
	for i := range rg.ents {
		if rg.ents[i].tracer != nil {
			ents = append(ents, rg.ents[i])
		}
	}
	// Newest first: higher sequence numbers are more recent.
	for i, j := 0, len(ents)-1; i < j; i, j = i+1, j-1 {
		ents[i], ents[j] = ents[j], ents[i]
	}
	// The slots run in rotation, so after eviction wraps the array the
	// reversed slice may interleave; a small insertion sort by seq keeps
	// the contract exact without importing sort's comparator allocs.
	for i := 1; i < len(ents); i++ {
		for j := i; j > 0 && ents[j].seq > ents[j-1].seq; j-- {
			ents[j], ents[j-1] = ents[j-1], ents[j]
		}
	}
	out := make([]SlowRequest, 0, len(ents))
	for _, e := range ents {
		sr := SlowRequest{
			Tracer:        e.tracer.name,
			StartUnixNano: e.start.UnixNano(),
			TotalNanos:    e.total,
			Hops:          make([]SlowHop, len(e.tracer.hops)),
		}
		for h, name := range e.tracer.hops {
			sr.Hops[h] = SlowHop{Name: name, Nanos: e.hops[h]}
		}
		out = append(out, sr)
	}
	return out
}
