package telemetry

import (
	"runtime"
	"sync"
)

// goRuntimeCollector tracks how much of the MemStats GC pause history has
// already been fed into the pause histogram, so each snapshot only adds
// the pauses that happened since the last one.
type goRuntimeCollector struct {
	mu        sync.Mutex
	lastNumGC uint32
	pauses    *Histogram
}

// RegisterGoRuntime registers Go runtime series on the registry:
// goroutine count, heap gauges, GC cycle and pause-time counters, and a
// real GC pause histogram (go_gc_pause_seconds) fed incrementally at
// snapshot time from the runtime's pause history. Call once per registry.
func RegisterGoRuntime(r *Registry) {
	c := &goRuntimeCollector{
		pauses: r.Histogram("go_gc_pause_seconds", "stop-the-world GC pause durations"),
	}
	var ms runtime.MemStats
	var msMu sync.Mutex
	// One ReadMemStats per snapshot feeds every gauge below; the hook runs
	// before series are read.
	r.OnSnapshot(func() {
		msMu.Lock()
		runtime.ReadMemStats(&ms)
		msMu.Unlock()
		c.feed(&ms)
	})
	read := func(f func(*runtime.MemStats) float64) func() float64 {
		return func() float64 {
			msMu.Lock()
			defer msMu.Unlock()
			return f(&ms)
		}
	}
	r.Gauge("go_goroutines", "current number of goroutines", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	r.Gauge("go_heap_alloc_bytes", "bytes of allocated heap objects", read(func(m *runtime.MemStats) float64 { return float64(m.HeapAlloc) }))
	r.Gauge("go_heap_sys_bytes", "bytes of heap obtained from the OS", read(func(m *runtime.MemStats) float64 { return float64(m.HeapSys) }))
	r.Gauge("go_heap_objects", "number of allocated heap objects", read(func(m *runtime.MemStats) float64 { return float64(m.HeapObjects) }))
	r.Counter("go_gc_cycles_total", "completed GC cycles", func() uint64 {
		var m runtime.MemStats
		msMu.Lock()
		m = ms
		msMu.Unlock()
		return uint64(m.NumGC)
	})
	r.Counter("go_gc_pause_total_ns", "cumulative GC stop-the-world pause time in nanoseconds", func() uint64 {
		msMu.Lock()
		defer msMu.Unlock()
		return ms.PauseTotalNs
	})
}

// feed records GC pauses that completed since the previous snapshot into
// the pause histogram. MemStats keeps the most recent 256 pauses in a
// circular buffer; if more than 256 cycles ran between snapshots the
// overwritten ones are lost, which is fine for a pause-shape histogram.
func (c *goRuntimeCollector) feed(ms *runtime.MemStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := ms.NumGC - c.lastNumGC
	if n > uint32(len(ms.PauseNs)) {
		n = uint32(len(ms.PauseNs))
	}
	for i := uint32(0); i < n; i++ {
		cycle := ms.NumGC - i
		pause := ms.PauseNs[(cycle+255)%256]
		c.pauses.Observe(float64(pause) / 1e9)
	}
	c.lastNumGC = ms.NumGC
}
