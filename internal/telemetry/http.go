package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"time"
)

// NewHandler returns the admin HTTP handler for a registry — what
// `tensorserve -metrics-addr` serves:
//
//	/             index page listing the endpoints and registered series
//	/metrics      Prometheus text exposition format
//	/metrics.json the versioned JSON Snapshot
//	/slow         the slow-request ring, newest first, per-hop breakdowns
//	/stream       SSE stream of JSON snapshots (?interval=1s to tune)
//	/debug/pprof/ the standard Go profiling endpoints
//
// The handler only reads; it never blocks the serving hot path beyond the
// atomic loads a snapshot takes.
func NewHandler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		fmt.Fprint(w, r.PromText())
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.Snapshot())
	})
	mux.HandleFunc("/slow", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(r.SlowRequests())
	})
	mux.HandleFunc("/stream", func(w http.ResponseWriter, req *http.Request) {
		serveStream(r, w, req)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "tensordimm admin endpoint")
		fmt.Fprintln(w, "  /metrics       Prometheus text exposition")
		fmt.Fprintln(w, "  /metrics.json  versioned JSON snapshot")
		fmt.Fprintln(w, "  /slow          recent slow requests with per-hop breakdowns")
		fmt.Fprintln(w, "  /stream        SSE snapshot stream (?interval=1s)")
		fmt.Fprintln(w, "  /debug/pprof/  Go profiling")
		fmt.Fprintln(w, "")
		fmt.Fprintln(w, "registered series:")
		for _, n := range r.sortedSeriesNames() {
			fmt.Fprintf(w, "  %s\n", n)
		}
	})
	return mux
}

// serveStream implements the SSE endpoint: one `data:` event per interval
// carrying the full JSON snapshot, until the client disconnects. A
// watcher sees per-shard hit rates, sheds, breaker state, WAL bytes, and
// p99 evolve live:
//
//	curl -N http://host:port/stream?interval=500ms
func serveStream(r *Registry, w http.ResponseWriter, req *http.Request) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	interval := time.Second
	if v := req.URL.Query().Get("interval"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			http.Error(w, "bad interval: want a positive Go duration like 500ms", http.StatusBadRequest)
			return
		}
		interval = d
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	send := func() bool {
		data, err := json.Marshal(r.Snapshot())
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	if !send() {
		return
	}
	for {
		select {
		case <-req.Context().Done():
			return
		case <-ticker.C:
			if !send() {
				return
			}
		}
	}
}
