// Package telemetry is the live observability plane of the serving stack:
// a process-wide metrics registry unifying the counters every serving
// layer (serve, cluster, netserve, netclient, remote, persist, chaos)
// already keeps, plus per-hop request tracing feeding a bounded ring of
// recent slow requests.
//
// The registry is built for a steady-state read path that must stay
// allocation-free with telemetry enabled (the CI benchmark gate):
//
//   - counters and gauges are func-backed — the owning layer keeps its
//     existing atomic counter and registers a closure that reads it, so
//     the hot path pays nothing at all for exposure and each layer keeps
//     ownership of its own series (see ARCHITECTURE.md, "Observability
//     plane");
//   - latency histograms are fixed-bucket log-scale arrays of atomics:
//     Observe computes a bucket index and does two atomic adds — no
//     locks, no maps, no allocation — and readers take a consistent-
//     enough snapshot by copying the bucket array;
//   - spans are plain value structs embedded in the layers' already-
//     pooled request objects, so tracing recycles with them.
//
// Snapshots render three ways: Prometheus text exposition for scrapers,
// JSON for tooling and the SSE stream, and a versioned wire payload
// (EncodeWirePayload) that the METRICS network op carries so remote
// drivers can assert on exact counters instead of grepping a text report.
// The admin HTTP endpoint over all of it lives in NewHandler.
package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SnapshotVersion is the schema revision stamped into every Snapshot.
// Consumers of the wire payload and /metrics.json reject a version they
// do not understand instead of misreading bucket layouts. Version 1 pins
// the histogram geometry below (HistBuckets log-scale buckets growing by
// 2^(1/4) from HistBase seconds).
const SnapshotVersion = 1

// Histogram bucket geometry, fixed by SnapshotVersion. Bucket 0 covers
// (0, HistBase]; bucket i covers (HistBase*g^(i-1), HistBase*g^i] with
// growth g = 2^(1/4), so 112 buckets span 100ns to ~27s and a quantile
// estimated at a bucket's geometric midpoint is within 2^(1/8)-1 (~9.1%)
// of the true sample. Values past the last bound clamp into it.
const (
	// HistBuckets is the fixed bucket count of every histogram.
	HistBuckets = 112
	// HistBase is the upper bound of bucket 0 in seconds (100ns).
	HistBase = 1e-7
)

// bounds holds each bucket's upper bound in seconds, precomputed once.
var bounds = func() [HistBuckets]float64 {
	var b [HistBuckets]float64
	for i := range b {
		b[i] = HistBase * math.Pow(2, float64(i)/4)
	}
	return b
}()

// BucketBounds returns a copy of the histogram bucket upper bounds in
// seconds — the geometry SnapshotVersion pins, for tools that post-process
// snapshot counts.
func BucketBounds() []float64 {
	out := make([]float64, HistBuckets)
	copy(out, bounds[:])
	return out
}

// Label is one name=value dimension of a series (e.g. shard="0"). Series
// identity is the metric name plus the rendered label string, in the
// order given — registrants of the same metric must use one label order.
type Label struct {
	// Key is the label name.
	Key string
	// Value is the label value.
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// renderLabels renders labels as `k1="v1",k2="v2"` (no braces), the
// canonical label string used for series identity and JSON.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	return b.String()
}

// counterSeries is one registered monotonic counter, read through fn at
// snapshot time.
type counterSeries struct {
	name, labels, help string
	fn                 func() uint64
}

// gaugeSeries is one registered gauge, read through fn at snapshot time.
type gaugeSeries struct {
	name, labels, help string
	fn                 func() float64
}

// Registry is a process-wide metrics registry: func-backed counters and
// gauges, lock-free histograms, tracers, and the shared slow-request
// ring. Create with NewRegistry; register every series before the traffic
// it measures starts (registration takes a lock, recording never does).
// All methods are safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	names    map[string]struct{}
	counters []*counterSeries
	gauges   []*gaugeSeries
	hists    []*Histogram
	tracers  []*Tracer
	hooks    []func()
	ring     slowRing
	started  time.Time
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]struct{}), started: time.Now()}
}

// register claims a series key, panicking on a duplicate: two layers
// registering the same name+labels is a wiring bug that would silently
// shadow one of them, so it fails loudly at startup instead.
func (r *Registry) register(kind, name, labels string) {
	key := name + "{" + labels + "}"
	if _, dup := r.names[key]; dup {
		panic(fmt.Sprintf("telemetry: duplicate %s series %s", kind, key))
	}
	r.names[key] = struct{}{}
}

// Counter registers a monotonic counter series whose value is read by fn
// at snapshot time. The owning layer keeps its own atomic counter; fn is
// typically that counter's Load method.
func (r *Registry) Counter(name, help string, fn func() uint64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ls := renderLabels(labels)
	r.register("counter", name, ls)
	r.counters = append(r.counters, &counterSeries{name: name, labels: ls, help: help, fn: fn})
}

// Gauge registers a gauge series whose value is read by fn at snapshot
// time. Gauges may go up and down (in-flight requests, replicas up, WAL
// bytes, hit rate).
func (r *Registry) Gauge(name, help string, fn func() float64, labels ...Label) {
	r.mu.Lock()
	defer r.mu.Unlock()
	ls := renderLabels(labels)
	r.register("gauge", name, ls)
	r.gauges = append(r.gauges, &gaugeSeries{name: name, labels: ls, help: help, fn: fn})
}

// Histogram registers and returns a fixed-bucket log-scale latency
// histogram. The caller records into it with Observe on its hot path.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	ls := renderLabels(labels)
	r.register("histogram", name, ls)
	h := &Histogram{name: name, labels: ls, help: help}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	r.hists = append(r.hists, h)
	return h
}

// OnSnapshot registers a hook run at the start of every Snapshot, before
// series are read — the place for scrape-time collectors (the Go runtime
// collector feeds new GC pauses into its histogram here).
func (r *Registry) OnSnapshot(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.hooks = append(r.hooks, fn)
}

// Histogram is a fixed-bucket log-scale latency histogram with lock-free
// recording: Observe does two atomic adds and (rarely) two CAS loops, no
// locks and no allocation, so it is safe on the zero-allocation serving
// path. Readers snapshot by copying the bucket array; a snapshot racing
// concurrent Observes may be off by the in-flight observations, which is
// the usual monitoring contract.
type Histogram struct {
	name, labels, help string
	buckets            [HistBuckets]atomic.Uint64
	count              atomic.Uint64
	sumNanos           atomic.Uint64
	minBits            atomic.Uint64 // float64 bits; +Inf until first Observe
	maxBits            atomic.Uint64 // float64 bits; 0 until first Observe
}

// bucketIndex maps a value in seconds to its bucket.
func bucketIndex(v float64) int {
	if v <= HistBase {
		return 0
	}
	i := int(math.Ceil(math.Log2(v/HistBase) * 4))
	if i >= HistBuckets {
		return HistBuckets - 1
	}
	return i
}

// Observe records one value in seconds. Negative values record as zero.
// Safe for concurrent use; never allocates.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketIndex(v)].Add(1)
	h.count.Add(1)
	// The sum is kept in integer nanoseconds so merging snapshots is
	// exactly associative (float addition is not).
	h.sumNanos.Add(uint64(v * 1e9))
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:     h.name,
		Labels:   h.labels,
		Count:    h.count.Load(),
		SumNanos: h.sumNanos.Load(),
		Counts:   make([]uint64, HistBuckets),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	if s.Count > 0 {
		s.Min = math.Float64frombits(h.minBits.Load())
		s.Max = math.Float64frombits(h.maxBits.Load())
	}
	s.finalize()
	return s
}

// HistogramSnapshot is a point-in-time copy of one histogram: per-bucket
// counts in the fixed SnapshotVersion geometry plus derived percentiles.
// All times are in seconds except SumNanos (integer nanoseconds, kept
// integral so Merge is exactly associative).
type HistogramSnapshot struct {
	// Name and Labels identify the series.
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	// Count is the total number of observations.
	Count uint64 `json:"count"`
	// SumNanos is the sum of all observations in integer nanoseconds.
	SumNanos uint64 `json:"sum_ns"`
	// Min and Max are the smallest and largest observed values (seconds).
	Min float64 `json:"min,omitempty"`
	Max float64 `json:"max,omitempty"`
	// P50, P95 and P99 are bucket-estimated percentiles in seconds, each
	// within ~9.1% of the true sample (see the bucket geometry).
	P50 float64 `json:"p50,omitempty"`
	P95 float64 `json:"p95,omitempty"`
	P99 float64 `json:"p99,omitempty"`
	// Counts holds one entry per bucket (len HistBuckets).
	Counts []uint64 `json:"counts"`
}

// finalize recomputes the derived percentile fields from the buckets.
func (s *HistogramSnapshot) finalize() {
	s.P50 = s.Quantile(0.50)
	s.P95 = s.Quantile(0.95)
	s.P99 = s.Quantile(0.99)
}

// Quantile estimates the q-quantile (0 <= q <= 1) in seconds from the
// bucket counts: the bucket holding the target rank contributes its
// geometric midpoint, clamped into the observed [Min, Max]. Returns 0
// when the histogram is empty.
func (s *HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	cum := uint64(0)
	idx := len(s.Counts) - 1
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			idx = i
			break
		}
	}
	lo := HistBase * math.Pow(2, float64(idx-1)/4) // lower bound of bucket idx
	if idx == 0 {
		lo = bounds[0] / math.Pow(2, 0.25)
	}
	est := math.Sqrt(lo * bounds[idx])
	return math.Min(math.Max(est, s.Min), s.Max)
}

// Mean returns the mean observation in seconds (0 when empty).
func (s *HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNanos) / 1e9 / float64(s.Count)
}

// Merge combines two histogram snapshots of the same geometry — the
// cross-shard aggregation a fleet-level view needs. Counts and sums add
// (integer adds, so merging is exactly associative and commutative); Min
// and Max combine; percentiles are recomputed. The result carries a's
// name and labels. Errors if the bucket layouts differ.
func Merge(a, b HistogramSnapshot) (HistogramSnapshot, error) {
	if len(a.Counts) != len(b.Counts) {
		return HistogramSnapshot{}, fmt.Errorf("telemetry: merging %d-bucket with %d-bucket histogram", len(a.Counts), len(b.Counts))
	}
	out := HistogramSnapshot{
		Name:     a.Name,
		Labels:   a.Labels,
		Count:    a.Count + b.Count,
		SumNanos: a.SumNanos + b.SumNanos,
		Counts:   make([]uint64, len(a.Counts)),
	}
	for i := range out.Counts {
		out.Counts[i] = a.Counts[i] + b.Counts[i]
	}
	switch {
	case a.Count == 0:
		out.Min, out.Max = b.Min, b.Max
	case b.Count == 0:
		out.Min, out.Max = a.Min, a.Max
	default:
		out.Min = math.Min(a.Min, b.Min)
		out.Max = math.Max(a.Max, b.Max)
	}
	out.finalize()
	return out, nil
}

// CounterValue is one counter series' snapshot value.
type CounterValue struct {
	// Name and Labels identify the series; Value is the counter reading.
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  uint64 `json:"value"`
}

// GaugeValue is one gauge series' snapshot value.
type GaugeValue struct {
	// Name and Labels identify the series; Value is the gauge reading.
	Name   string `json:"name"`
	Labels string `json:"labels,omitempty"`
	Value  float64 `json:"value"`
}

// Snapshot is a point-in-time copy of every registered series — the unit
// the JSON endpoint, the SSE stream and the METRICS wire payload all
// carry. Fields are exported for JSON; use the lookup helpers to assert
// on individual series.
type Snapshot struct {
	// Version is the schema revision (SnapshotVersion).
	Version int `json:"version"`
	// TakenUnixNano is when the snapshot was taken.
	TakenUnixNano int64 `json:"taken_unix_nano"`
	// UptimeSeconds is time since the registry was created.
	UptimeSeconds float64 `json:"uptime_seconds"`
	// Counters, Gauges and Histograms hold every registered series in
	// registration order.
	Counters   []CounterValue      `json:"counters"`
	Gauges     []GaugeValue        `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
}

// Snapshot reads every registered series. Hot paths are never blocked:
// counters and gauges are atomic reads through the registered closures,
// histograms copy their bucket arrays.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	hooks := r.hooks
	counters := r.counters
	gauges := r.gauges
	hists := r.hists
	started := r.started
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}
	s := &Snapshot{
		Version:       SnapshotVersion,
		TakenUnixNano: time.Now().UnixNano(),
		UptimeSeconds: time.Since(started).Seconds(),
		Counters:      make([]CounterValue, 0, len(counters)),
		Gauges:        make([]GaugeValue, 0, len(gauges)),
		Histograms:    make([]HistogramSnapshot, 0, len(hists)),
	}
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterValue{Name: c.name, Labels: c.labels, Value: c.fn()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeValue{Name: g.name, Labels: g.labels, Value: g.fn()})
	}
	for _, h := range hists {
		s.Histograms = append(s.Histograms, h.Snapshot())
	}
	return s
}

// Counter looks up a counter's snapshot value by name and labels.
func (s *Snapshot) Counter(name string, labels ...Label) (uint64, bool) {
	ls := renderLabels(labels)
	for _, c := range s.Counters {
		if c.Name == name && c.Labels == ls {
			return c.Value, true
		}
	}
	return 0, false
}

// Gauge looks up a gauge's snapshot value by name and labels.
func (s *Snapshot) Gauge(name string, labels ...Label) (float64, bool) {
	ls := renderLabels(labels)
	for _, g := range s.Gauges {
		if g.Name == name && g.Labels == ls {
			return g.Value, true
		}
	}
	return 0, false
}

// Histogram looks up a histogram snapshot by name and labels.
func (s *Snapshot) Histogram(name string, labels ...Label) (HistogramSnapshot, bool) {
	ls := renderLabels(labels)
	for _, h := range s.Histograms {
		if h.Name == name && h.Labels == ls {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

// promGroup orders series of one metric name together, as the Prometheus
// exposition format requires (HELP/TYPE once, then every labeled sample).
type promGroup struct {
	name, help, kind string
	lines            []string
}

// PromText renders the snapshot in the Prometheus text exposition format:
// counters and gauges as single samples, histograms as cumulative
// le-labeled buckets with _sum and _count. Series of one name are grouped
// under one HELP/TYPE header regardless of registration interleaving.
func (r *Registry) PromText() string {
	r.mu.Lock()
	counters := r.counters
	gauges := r.gauges
	hists := r.hists
	hooks := r.hooks
	r.mu.Unlock()
	for _, fn := range hooks {
		fn()
	}

	order := []string{}
	groups := map[string]*promGroup{}
	grp := func(name, help, kind string) *promGroup {
		g, ok := groups[name]
		if !ok {
			g = &promGroup{name: name, help: help, kind: kind}
			groups[name] = g
			order = append(order, name)
		}
		return g
	}
	sample := func(name, labels string, val string) string {
		if labels == "" {
			return name + " " + val
		}
		return name + "{" + labels + "} " + val
	}
	for _, c := range counters {
		g := grp(c.name, c.help, "counter")
		g.lines = append(g.lines, sample(c.name, c.labels, strconv.FormatUint(c.fn(), 10)))
	}
	for _, gg := range gauges {
		g := grp(gg.name, gg.help, "gauge")
		g.lines = append(g.lines, sample(gg.name, gg.labels, strconv.FormatFloat(gg.fn(), 'g', -1, 64)))
	}
	for _, h := range hists {
		hs := h.Snapshot()
		g := grp(h.name, h.help, "histogram")
		cum := uint64(0)
		for i, c := range hs.Counts {
			cum += c
			le := strconv.FormatFloat(bounds[i], 'g', -1, 64)
			ls := hs.Labels
			if ls != "" {
				ls += ","
			}
			g.lines = append(g.lines, sample(h.name+"_bucket", ls+`le="`+le+`"`, strconv.FormatUint(cum, 10)))
		}
		ls := hs.Labels
		if ls != "" {
			ls += ","
		}
		g.lines = append(g.lines, sample(h.name+"_bucket", ls+`le="+Inf"`, strconv.FormatUint(hs.Count, 10)))
		g.lines = append(g.lines, sample(h.name+"_sum", hs.Labels, strconv.FormatFloat(float64(hs.SumNanos)/1e9, 'g', -1, 64)))
		g.lines = append(g.lines, sample(h.name+"_count", hs.Labels, strconv.FormatUint(hs.Count, 10)))
	}

	var b strings.Builder
	for _, name := range order {
		g := groups[name]
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", g.name, g.help, g.name, g.kind)
		for _, line := range g.lines {
			b.WriteString(line)
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// wireMagic opens the METRICS wire payload's machine-parseable section:
// "TensorDIMM Metrics Snapshot", revision 1.
const wireMagic = "TDMS1\n"

// wireSep separates the snapshot section from the human text report.
const wireSep = "\n---\n"

// EncodeWirePayload builds the METRICS wire op's response payload: the
// registry's versioned JSON snapshot, a separator line, then the human
// text report. A nil registry encodes an empty (but well-formed) snapshot
// so the payload shape is uniform for every server.
func EncodeWirePayload(reg *Registry, text string) []byte {
	var snap *Snapshot
	if reg != nil {
		snap = reg.Snapshot()
	} else {
		snap = &Snapshot{Version: SnapshotVersion, TakenUnixNano: time.Now().UnixNano()}
	}
	data, err := json.Marshal(snap)
	if err != nil {
		// A snapshot is plain data and always marshals; fall back to the
		// bare text rather than fail a metrics fetch.
		return []byte(text)
	}
	out := make([]byte, 0, len(wireMagic)+len(data)+len(wireSep)+len(text))
	out = append(out, wireMagic...)
	out = append(out, data...)
	out = append(out, wireSep...)
	out = append(out, text...)
	return out
}

// DecodeWirePayload splits a METRICS response payload into its snapshot
// and human text sections. A payload without the snapshot magic (an older
// server) returns a nil snapshot and the whole payload as text — callers
// degrade to text-only, never fail.
func DecodeWirePayload(payload []byte) (*Snapshot, string, error) {
	if !bytes.HasPrefix(payload, []byte(wireMagic)) {
		return nil, string(payload), nil
	}
	rest := payload[len(wireMagic):]
	sep := bytes.Index(rest, []byte(wireSep))
	if sep < 0 {
		return nil, "", fmt.Errorf("telemetry: metrics payload missing the snapshot/text separator")
	}
	var snap Snapshot
	if err := json.Unmarshal(rest[:sep], &snap); err != nil {
		return nil, "", fmt.Errorf("telemetry: metrics snapshot section: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return nil, "", fmt.Errorf("telemetry: metrics snapshot version %d, want %d", snap.Version, SnapshotVersion)
	}
	return &snap, string(rest[sep+len(wireSep):]), nil
}

// sortedSeriesNames returns every registered series key, sorted — a debug
// helper for the admin index page.
func (r *Registry) sortedSeriesNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.names))
	for n := range r.names {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
