package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSpanHops checks per-hop attribution: time between marks lands in
// the named hop, and the slow ring records the breakdown.
func TestSpanHops(t *testing.T) {
	reg := NewRegistry()
	tr := reg.Tracer("serve", time.Microsecond, []string{"queue", "exec"})
	var sp Span
	sp.Begin()
	time.Sleep(2 * time.Millisecond)
	sp.Mark(0)
	time.Sleep(time.Millisecond)
	sp.Mark(1)
	tr.Finish(&sp)

	slow := reg.SlowRequests()
	if len(slow) != 1 {
		t.Fatalf("slow ring has %d entries, want 1", len(slow))
	}
	sr := slow[0]
	if sr.Tracer != "serve" {
		t.Fatalf("tracer name %q", sr.Tracer)
	}
	if len(sr.Hops) != 2 || sr.Hops[0].Name != "queue" || sr.Hops[1].Name != "exec" {
		t.Fatalf("hops = %+v", sr.Hops)
	}
	if sr.Hops[0].Nanos < int64(time.Millisecond) {
		t.Fatalf("queue hop %dns, want >= 1ms", sr.Hops[0].Nanos)
	}
	if sr.Hops[1].Nanos < int64(500*time.Microsecond) {
		t.Fatalf("exec hop %dns", sr.Hops[1].Nanos)
	}
	if sr.TotalNanos < sr.Hops[0].Nanos+sr.Hops[1].Nanos {
		t.Fatalf("total %d < sum of hops", sr.TotalNanos)
	}

	// A fast request must not enter the ring.
	fast := reg.Tracer("fast", time.Hour, []string{"a"})
	var sp2 Span
	sp2.Begin()
	sp2.Mark(0)
	fast.Finish(&sp2)
	if got := len(reg.SlowRequests()); got != 1 {
		t.Fatalf("fast request entered the ring: %d entries", got)
	}
}

// TestSpanStateDiscipline checks the pooled-object contract: inactive
// spans ignore Mark/Finish, Reset clears, out-of-range hops are dropped.
func TestSpanStateDiscipline(t *testing.T) {
	reg := NewRegistry()
	tr := reg.Tracer("d", time.Nanosecond, []string{"a"})
	var sp Span
	if sp.Active() {
		t.Fatal("zero span should be inactive")
	}
	sp.Mark(0)     // ignored: not begun
	tr.Finish(&sp) // ignored: not begun
	if len(reg.SlowRequests()) != 0 {
		t.Fatal("un-begun span reached the ring")
	}
	sp.Begin()
	if !sp.Active() {
		t.Fatal("begun span should be active")
	}
	sp.Mark(-1)      // ignored
	sp.Mark(MaxHops) // ignored
	sp.Reset()
	if sp.Active() {
		t.Fatal("reset span should be inactive")
	}

	// BeginAt backdates the span start.
	sp.BeginAt(time.Now().Add(-10 * time.Millisecond))
	sp.Mark(0)
	tr.Finish(&sp)
	slow := reg.SlowRequests()
	if len(slow) != 1 || slow[0].TotalNanos < int64(10*time.Millisecond) {
		t.Fatalf("backdated span: %+v", slow)
	}
}

// TestTracerPool covers the standalone Start/Release pooled spans.
func TestTracerPool(t *testing.T) {
	reg := NewRegistry()
	tr := reg.Tracer("p", 0, []string{"a"}) // 0 → DefaultSlowThreshold
	sp := tr.Start()
	if !sp.Active() {
		t.Fatal("started span should be active")
	}
	sp.Mark(0)
	tr.Finish(sp)
	tr.Release(sp)
	if sp.Active() {
		t.Fatal("released span should be reset")
	}
	sp2 := tr.Start()
	if !sp2.Active() {
		t.Fatal("recycled span should restart cleanly")
	}
	tr.Release(sp2)
}

// TestSlowRingEviction overfills the ring and checks the newest-first,
// bounded contract.
func TestSlowRingEviction(t *testing.T) {
	reg := NewRegistry()
	tr := reg.Tracer("e", time.Nanosecond, []string{"a"})
	for i := 0; i < slowRingLen+17; i++ {
		var sp Span
		sp.BeginAt(time.Now().Add(-time.Duration(i+1) * time.Millisecond))
		sp.Mark(0)
		tr.Finish(&sp)
	}
	slow := reg.SlowRequests()
	if len(slow) != slowRingLen {
		t.Fatalf("ring holds %d, want %d", len(slow), slowRingLen)
	}
	// Later inserts were backdated further, so their totals are larger;
	// newest-first therefore means strictly decreasing totals, and the
	// survivors are the last slowRingLen inserts.
	for i := 1; i < len(slow); i++ {
		if slow[i-1].TotalNanos <= slow[i].TotalNanos {
			t.Fatalf("ring not newest-first at %d: %d then %d", i, slow[i-1].TotalNanos, slow[i].TotalNanos)
		}
	}
}

// TestTracerConcurrentFinish hammers the ring from many goroutines; run
// under -race this checks the ring lock discipline.
func TestTracerConcurrentFinish(t *testing.T) {
	reg := NewRegistry()
	tr := reg.Tracer("c", time.Nanosecond, []string{"a", "b"})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Start()
				sp.Mark(0)
				sp.Mark(1)
				tr.Finish(sp)
				tr.Release(sp)
				if i%50 == 0 {
					reg.SlowRequests()
				}
			}
		}()
	}
	wg.Wait()
	if got := len(reg.SlowRequests()); got != slowRingLen {
		t.Fatalf("ring holds %d, want full %d", got, slowRingLen)
	}
}

// TestTracerValidation covers the registration guards.
func TestTracerValidation(t *testing.T) {
	reg := NewRegistry()
	reg.Tracer("v", 0, []string{"a"})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("duplicate tracer name should panic")
			}
		}()
		reg.Tracer("v", 0, []string{"a"})
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("too many hops should panic")
			}
		}()
		reg.Tracer("wide", 0, make([]string, MaxHops+1))
	}()
	// Labeled tracers are distinct instances of one path.
	t0 := reg.Tracer("sh", 0, []string{"a"}, L("shard", "0"))
	reg.Tracer("sh", 0, []string{"a"}, L("shard", "1"))
	var sp Span
	sp.BeginAt(time.Now().Add(-time.Second))
	sp.Mark(0)
	t0.Finish(&sp)
	slow := reg.SlowRequests()
	if len(slow) != 1 || !strings.Contains(slow[0].Tracer, `shard="0"`) {
		t.Fatalf("labeled tracer name: %+v", slow)
	}
}

// TestRegisterGoRuntime checks the runtime collector registers its series
// and that snapshots read sane values.
func TestRegisterGoRuntime(t *testing.T) {
	reg := NewRegistry()
	RegisterGoRuntime(reg)
	s := reg.Snapshot()
	if v, ok := s.Gauge("go_goroutines"); !ok || v < 1 {
		t.Fatalf("go_goroutines = %v %v", v, ok)
	}
	if v, ok := s.Gauge("go_heap_alloc_bytes"); !ok || v <= 0 {
		t.Fatalf("go_heap_alloc_bytes = %v %v", v, ok)
	}
	if _, ok := s.Counter("go_gc_cycles_total"); !ok {
		t.Fatal("go_gc_cycles_total missing")
	}
	if _, ok := s.Histogram("go_gc_pause_seconds"); !ok {
		t.Fatal("go_gc_pause_seconds missing")
	}
	// A second snapshot must not double-feed pauses beyond GC reality.
	s2 := reg.Snapshot()
	h1, _ := s.Histogram("go_gc_pause_seconds")
	h2, _ := s2.Histogram("go_gc_pause_seconds")
	if h2.Count < h1.Count {
		t.Fatalf("pause count went backwards: %d then %d", h1.Count, h2.Count)
	}
}
