package telemetry

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// newTestHandler builds a registry with one of each series kind plus a
// slow-ring entry, and returns its admin handler.
func newTestHandler(t *testing.T) (http.Handler, *Registry) {
	t.Helper()
	reg := NewRegistry()
	var hits atomic.Uint64
	hits.Store(11)
	reg.Counter("hits_total", "cache hits", hits.Load, L("shard", "0"))
	reg.Gauge("rate", "hit rate", func() float64 { return 0.5 })
	h := reg.Histogram("lat_seconds", "latency")
	h.Observe(0.004)
	tr := reg.Tracer("serve", time.Nanosecond, []string{"queue", "exec"})
	sp := tr.Start()
	sp.Mark(0)
	sp.Mark(1)
	tr.Finish(sp)
	tr.Release(sp)
	return NewHandler(reg), reg
}

// TestHandlerEndpoints walks every admin endpoint and checks content.
func TestHandlerEndpoints(t *testing.T) {
	handler, _ := newTestHandler(t)
	srv := httptest.NewServer(handler)
	defer srv.Close()

	get := func(path string) (int, string, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
	}

	code, body, ctype := get("/metrics")
	if code != 200 || !strings.Contains(ctype, "text/plain") {
		t.Fatalf("/metrics: %d %s", code, ctype)
	}
	for _, want := range []string{`hits_total{shard="0"} 11`, "rate 0.5", "lat_seconds_bucket", `le="+Inf"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body, ctype = get("/metrics.json")
	if code != 200 || !strings.Contains(ctype, "application/json") {
		t.Fatalf("/metrics.json: %d %s", code, ctype)
	}
	for _, want := range []string{`"version": 1`, `"hits_total"`, `"p99"`} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics.json missing %q in %s", want, body)
		}
	}

	code, body, _ = get("/slow")
	if code != 200 || !strings.Contains(body, `"serve"`) || !strings.Contains(body, `"queue"`) {
		t.Fatalf("/slow: %d %s", code, body)
	}

	code, body, _ = get("/")
	if code != 200 || !strings.Contains(body, "/metrics.json") || !strings.Contains(body, "hits_total") {
		t.Fatalf("index: %d %s", code, body)
	}

	if code, _, _ = get("/nope"); code != 404 {
		t.Fatalf("unknown path: %d", code)
	}

	code, body, _ = get("/debug/pprof/cmdline")
	if code != 200 || len(body) == 0 {
		t.Fatalf("/debug/pprof/cmdline: %d", code)
	}
	code, body, _ = get("/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/: %d", code)
	}
}

// TestStreamSSE reads two events off the SSE endpoint and checks framing.
func TestStreamSSE(t *testing.T) {
	handler, _ := newTestHandler(t)
	srv := httptest.NewServer(handler)
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", srv.URL+"/stream?interval=10ms", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	events := 0
	for sc.Scan() && events < 2 {
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") {
			if !strings.Contains(line, `"version":1`) || !strings.Contains(line, "hits_total") {
				t.Fatalf("bad event: %s", line)
			}
			events++
		}
	}
	if events < 2 {
		t.Fatalf("got %d events, want 2 (%v)", events, sc.Err())
	}
	cancel() // disconnect; the handler must return, not leak
}

// TestStreamBadInterval rejects malformed and non-positive intervals.
func TestStreamBadInterval(t *testing.T) {
	handler, _ := newTestHandler(t)
	srv := httptest.NewServer(handler)
	defer srv.Close()
	for _, q := range []string{"?interval=bogus", "?interval=-1s", "?interval=0s"} {
		resp, err := http.Get(srv.URL + "/stream" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}
