package telemetry

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"tensordimm/internal/stats"
)

// TestHistogramPercentileErrorBound records identical samples into a
// telemetry histogram and a raw sample slice, and checks the bucketed
// quantile estimate against stats.Percentile within the geometry's
// guaranteed relative error (~9.1%, tested at 10%).
func TestHistogramPercentileErrorBound(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("test_seconds", "test")
	rng := rand.New(rand.NewSource(42))
	samples := make([]float64, 20000)
	for i := range samples {
		// Log-uniform over [2µs, 1s] — several orders of magnitude, like
		// real serving latencies.
		samples[i] = 2e-6 * math.Pow(5e5, rng.Float64())
		h.Observe(samples[i])
	}
	hs := h.Snapshot()
	for _, q := range []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999} {
		want := stats.Percentile(append([]float64(nil), samples...), q*100)
		got := hs.Quantile(q)
		relErr := math.Abs(got-want) / want
		if relErr > 0.10 {
			t.Errorf("q=%v: got %v want %v (rel err %.3f > 0.10)", q, got, want, relErr)
		}
	}
	if hs.Count != uint64(len(samples)) {
		t.Errorf("count = %d, want %d", hs.Count, len(samples))
	}
	wantMean := 0.0
	for _, v := range samples {
		wantMean += v
	}
	wantMean /= float64(len(samples))
	if relErr := math.Abs(hs.Mean()-wantMean) / wantMean; relErr > 0.01 {
		t.Errorf("mean = %v, want %v", hs.Mean(), wantMean)
	}
}

// TestHistogramConcurrentRecording hammers one histogram from many
// goroutines; run under -race this is the lock-free recording safety
// test, and the final count/sum must be exact regardless.
func TestHistogramConcurrentRecording(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("conc_seconds", "test")
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Observe(rng.Float64() * 0.01)
				if i%100 == 0 {
					h.Snapshot() // readers race recorders
				}
			}
		}(int64(w))
	}
	wg.Wait()
	hs := h.Snapshot()
	if hs.Count != workers*per {
		t.Fatalf("count = %d, want %d", hs.Count, workers*per)
	}
	total := uint64(0)
	for _, c := range hs.Counts {
		total += c
	}
	if total != hs.Count {
		t.Fatalf("bucket total %d != count %d", total, hs.Count)
	}
	if hs.Min < 0 || hs.Max > 0.01 || hs.Min > hs.Max {
		t.Fatalf("min/max out of range: %v/%v", hs.Min, hs.Max)
	}
}

// TestMergeAssociativity checks that merging shard histograms is exactly
// associative: (a+b)+c == a+(b+c) bucket-for-bucket and in the integer
// nanosecond sum — the property that makes fleet-level aggregation
// order-independent.
func TestMergeAssociativity(t *testing.T) {
	reg := NewRegistry()
	mk := func(seed int64) HistogramSnapshot {
		h := reg.Histogram("m_seconds", "test", L("shard", string(rune('a'+seed))))
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 3000; i++ {
			h.Observe(2e-6 * math.Pow(1e5, rng.Float64()))
		}
		return h.Snapshot()
	}
	a, b, c := mk(1), mk(2), mk(3)
	ab, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	abc1, err := Merge(ab, c)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := Merge(b, c)
	if err != nil {
		t.Fatal(err)
	}
	abc2, err := Merge(a, bc)
	if err != nil {
		t.Fatal(err)
	}
	if abc1.Count != abc2.Count || abc1.SumNanos != abc2.SumNanos {
		t.Fatalf("count/sum differ: %d/%d vs %d/%d", abc1.Count, abc1.SumNanos, abc2.Count, abc2.SumNanos)
	}
	if abc1.Min != abc2.Min || abc1.Max != abc2.Max {
		t.Fatalf("min/max differ: %v/%v vs %v/%v", abc1.Min, abc1.Max, abc2.Min, abc2.Max)
	}
	for i := range abc1.Counts {
		if abc1.Counts[i] != abc2.Counts[i] {
			t.Fatalf("bucket %d differs: %d vs %d", i, abc1.Counts[i], abc2.Counts[i])
		}
	}
	if abc1.P99 != abc2.P99 || abc1.P50 != abc2.P50 {
		t.Fatalf("percentiles differ after merge")
	}
	if abc1.Count != a.Count+b.Count+c.Count {
		t.Fatalf("merged count %d, want %d", abc1.Count, a.Count+b.Count+c.Count)
	}
	// Mismatched geometries must refuse to merge.
	bad := HistogramSnapshot{Counts: make([]uint64, 3)}
	if _, err := Merge(a, bad); err == nil {
		t.Fatal("expected a geometry-mismatch error")
	}
}

// TestHistogramEdgeCases covers empty histograms, zero/negative samples,
// overflow clamping, and quantile bounds.
func TestHistogramEdgeCases(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("edge_seconds", "test")
	hs := h.Snapshot()
	if hs.Quantile(0.99) != 0 || hs.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(-1)  // clamps to 0 → bucket 0
	h.Observe(0)   // bucket 0
	h.Observe(1e9) // clamps into the last bucket
	hs = h.Snapshot()
	if hs.Counts[0] != 2 {
		t.Fatalf("bucket 0 = %d, want 2", hs.Counts[0])
	}
	if hs.Counts[HistBuckets-1] != 1 {
		t.Fatalf("last bucket = %d, want 1", hs.Counts[HistBuckets-1])
	}
	if q := hs.Quantile(-1); q != hs.Quantile(0) {
		t.Fatalf("q<0 should clamp: %v vs %v", q, hs.Quantile(0))
	}
	if q := hs.Quantile(2); q != hs.Quantile(1) {
		t.Fatalf("q>1 should clamp: %v vs %v", q, hs.Quantile(1))
	}
	// Quantiles are clamped into the observed range.
	if hs.Quantile(1) > hs.Max || hs.Quantile(0) < hs.Min {
		t.Fatalf("quantile escaped [min,max]")
	}
	bb := BucketBounds()
	if len(bb) != HistBuckets || bb[0] != HistBase {
		t.Fatalf("bucket bounds: len %d first %v", len(bb), bb[0])
	}
	for i := 1; i < len(bb); i++ {
		if bb[i] <= bb[i-1] {
			t.Fatalf("bounds not increasing at %d", i)
		}
	}
}

// TestRegistrySeries exercises func-backed counters and gauges, snapshot
// lookup helpers, and label rendering.
func TestRegistrySeries(t *testing.T) {
	reg := NewRegistry()
	var hits atomic.Uint64
	hits.Store(7)
	reg.Counter("hits_total", "cache hits", hits.Load, L("shard", "0"))
	reg.Gauge("depth", "queue depth", func() float64 { return 3.5 })
	h := reg.Histogram("lat_seconds", "latency")
	h.Observe(0.001)

	s := reg.Snapshot()
	if s.Version != SnapshotVersion {
		t.Fatalf("version %d", s.Version)
	}
	if v, ok := s.Counter("hits_total", L("shard", "0")); !ok || v != 7 {
		t.Fatalf("counter lookup: %v %v", v, ok)
	}
	if _, ok := s.Counter("hits_total"); ok {
		t.Fatal("label-less lookup should miss the labeled series")
	}
	if v, ok := s.Gauge("depth"); !ok || v != 3.5 {
		t.Fatalf("gauge lookup: %v %v", v, ok)
	}
	if hsnap, ok := s.Histogram("lat_seconds"); !ok || hsnap.Count != 1 {
		t.Fatalf("histogram lookup: %+v %v", hsnap, ok)
	}
	if _, ok := s.Histogram("nope"); ok {
		t.Fatal("missing histogram should not resolve")
	}
	if _, ok := s.Gauge("nope"); ok {
		t.Fatal("missing gauge should not resolve")
	}
	hits.Add(1)
	if v, _ := reg.Snapshot().Counter("hits_total", L("shard", "0")); v != 8 {
		t.Fatalf("counter should read live value, got %d", v)
	}

	// Snapshots must round-trip through JSON.
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if v, ok := back.Counter("hits_total", L("shard", "0")); !ok || v != 7 {
		t.Fatalf("post-roundtrip counter: %v %v", v, ok)
	}
}

// TestDuplicateRegistrationPanics checks the wiring-bug guard.
func TestDuplicateRegistrationPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "x", func() uint64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration should panic")
		}
	}()
	reg.Counter("x_total", "x", func() uint64 { return 0 })
}

// TestPromText checks the Prometheus exposition rendering: grouped
// HELP/TYPE headers, labeled samples, and cumulative histogram buckets.
func TestPromText(t *testing.T) {
	reg := NewRegistry()
	var c0, c1 atomic.Uint64
	c0.Store(5)
	c1.Store(9)
	reg.Counter("hits_total", "cache hits", c0.Load, L("shard", "0"))
	reg.Gauge("rate", "hit rate", func() float64 { return 0.25 })
	reg.Counter("hits_total", "cache hits", c1.Load, L("shard", "1"))
	h := reg.Histogram("lat_seconds", "latency")
	h.Observe(0.001)
	h.Observe(0.002)

	text := reg.PromText()
	for _, want := range []string{
		"# HELP hits_total cache hits",
		"# TYPE hits_total counter",
		`hits_total{shard="0"} 5`,
		`hits_total{shard="1"} 9`,
		"# TYPE rate gauge",
		"rate 0.25",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="+Inf"} 2`,
		"lat_seconds_count 2",
		"lat_seconds_sum 0.003",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q in:\n%s", want, text)
		}
	}
	// Same-name series must be grouped under one header even though a
	// gauge was registered between them.
	if strings.Count(text, "# TYPE hits_total counter") != 1 {
		t.Errorf("hits_total header not deduplicated:\n%s", text)
	}
	// Buckets are cumulative: the +Inf bucket equals the count.
	if !strings.Contains(text, `le="+Inf"} 2`) {
		t.Errorf("+Inf bucket wrong:\n%s", text)
	}
}

// TestWirePayloadRoundTrip covers encode/decode of the METRICS payload,
// the nil-registry shape, and legacy text-only fallback.
func TestWirePayloadRoundTrip(t *testing.T) {
	reg := NewRegistry()
	var n atomic.Uint64
	n.Store(42)
	reg.Counter("reqs_total", "requests", n.Load)
	payload := EncodeWirePayload(reg, "human report\nsecond line")
	snap, text, err := DecodeWirePayload(payload)
	if err != nil {
		t.Fatal(err)
	}
	if text != "human report\nsecond line" {
		t.Fatalf("text section = %q", text)
	}
	if snap == nil {
		t.Fatal("expected a snapshot")
	}
	if v, ok := snap.Counter("reqs_total"); !ok || v != 42 {
		t.Fatalf("snapshot counter: %v %v", v, ok)
	}

	// Nil registry still yields a well-formed, versioned payload.
	snap, text, err = DecodeWirePayload(EncodeWirePayload(nil, "bare"))
	if err != nil || snap == nil || snap.Version != SnapshotVersion || text != "bare" {
		t.Fatalf("nil-registry payload: snap=%+v text=%q err=%v", snap, text, err)
	}

	// A legacy payload without the magic decodes as text-only.
	snap, text, err = DecodeWirePayload([]byte("old-style text report"))
	if err != nil || snap != nil || text != "old-style text report" {
		t.Fatalf("legacy payload: snap=%v text=%q err=%v", snap, text, err)
	}

	// Corrupt payloads fail loudly.
	if _, _, err := DecodeWirePayload([]byte(wireMagic + "no separator here")); err == nil {
		t.Fatal("missing separator should error")
	}
	if _, _, err := DecodeWirePayload([]byte(wireMagic + "{bad json" + wireSep + "x")); err == nil {
		t.Fatal("bad JSON should error")
	}
	if _, _, err := DecodeWirePayload([]byte(wireMagic + `{"version":99}` + wireSep + "x")); err == nil {
		t.Fatal("unknown snapshot version should error")
	}
}
