package workload

import (
	"testing"
)

// TestFillBatchMatchesBatch pins determinism: for the same seed, the
// allocation-free fill path draws exactly the sequence Batch draws.
func TestFillBatchMatchesBatch(t *testing.T) {
	g1, err := NewZipfGenerator(1000, 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewZipfGenerator(1000, 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	want := g1.Batch(3, 4, 2)
	got := make([][]int, 3)
	for t2 := range got {
		got[t2] = make([]int, 4*2)
	}
	if err := g2.FillBatch(got, 4, 2); err != nil {
		t.Fatal(err)
	}
	for t2 := range want {
		for i := range want[t2] {
			if got[t2][i] != want[t2][i] {
				t.Fatalf("table %d index %d: %d != %d", t2, i, got[t2][i], want[t2][i])
			}
		}
	}
}

// TestFillBatchRejectsMisSizedLists pins the sizing contract.
func TestFillBatchRejectsMisSizedLists(t *testing.T) {
	g, err := NewGenerator(100, Uniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	dst := [][]int{make([]int, 8), make([]int, 7)}
	if err := g.FillBatch(dst, 4, 2); err == nil {
		t.Fatal("want error for a mis-sized index list")
	}
}

// TestZipfCDFSharedAcrossGenerators pins the once-per-geometry CDF: two
// generators over the same (rows, s) share one table instead of each
// paying the O(rows) construction.
func TestZipfCDFSharedAcrossGenerators(t *testing.T) {
	g1, err := NewZipfGenerator(512, 0.7, 1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewZipfGenerator(512, 0.7, 2)
	if err != nil {
		t.Fatal(err)
	}
	if &g1.cdf[0] != &g2.cdf[0] {
		t.Fatal("generators over the same geometry should share one CDF")
	}
	g3, err := NewZipfGenerator(512, 0.8, 1)
	if err != nil {
		t.Fatal(err)
	}
	if &g1.cdf[0] == &g3.cdf[0] {
		t.Fatal("different exponents must not share a CDF")
	}
	// Different seeds over the shared CDF still draw independently.
	a, b := g1.Indices(32), g2.Indices(32)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds drew identical sequences")
	}
}
