package workload

import (
	"testing"
	"testing/quick"
)

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(0, Uniform, 1); err == nil {
		t.Fatal("want error for zero rows")
	}
	if _, err := NewGenerator(100, Zipfian, 1); err != nil {
		t.Fatal(err)
	}
}

func TestIndicesInRange(t *testing.T) {
	for _, dist := range []Distribution{Uniform, Zipfian} {
		g, err := NewGenerator(1000, dist, 42)
		if err != nil {
			t.Fatal(err)
		}
		for _, idx := range g.Indices(10000) {
			if idx < 0 || idx >= 1000 {
				t.Fatalf("%v: index %d out of range", dist, idx)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, _ := NewGenerator(1000, Zipfian, 7)
	b, _ := NewGenerator(1000, Zipfian, 7)
	ia, ib := a.Indices(100), b.Indices(100)
	for i := range ia {
		if ia[i] != ib[i] {
			t.Fatal("same seed must give same stream")
		}
	}
	c, _ := NewGenerator(1000, Zipfian, 8)
	ic := c.Indices(100)
	same := true
	for i := range ia {
		if ia[i] != ic[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestZipfSkew(t *testing.T) {
	// Zipfian traffic must concentrate on a few hot rows; uniform must not.
	rows := 10000
	n := 50000
	top := func(dist Distribution) float64 {
		g, _ := NewGenerator(rows, dist, 3)
		counts := make(map[int]int)
		for _, idx := range g.Indices(n) {
			counts[idx]++
		}
		hot := 0
		for idx, c := range counts {
			if idx < 10 {
				hot += c
			}
		}
		return float64(hot) / float64(n)
	}
	zipfHot := top(Zipfian)
	uniformHot := top(Uniform)
	if zipfHot < 0.2 {
		t.Fatalf("zipf top-10 share = %.3f, want skewed", zipfHot)
	}
	if uniformHot > 0.01 {
		t.Fatalf("uniform top-10 share = %.3f, want flat", uniformHot)
	}
}

func TestBatchShape(t *testing.T) {
	g, _ := NewGenerator(100, Uniform, 1)
	b := g.Batch(3, 8, 25)
	if len(b) != 3 {
		t.Fatalf("tables = %d", len(b))
	}
	for _, lst := range b {
		if len(lst) != 8*25 {
			t.Fatalf("indices per table = %d", len(lst))
		}
	}
}

func TestInt32(t *testing.T) {
	got := Int32([]int{1, 2, 300000})
	if len(got) != 3 || got[2] != 300000 {
		t.Fatalf("Int32 = %v", got)
	}
}

func TestPaperBatches(t *testing.T) {
	b := PaperBatches()
	want := []int{1, 8, 64, 128}
	if len(b) != len(want) {
		t.Fatalf("PaperBatches = %v", b)
	}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("PaperBatches = %v", b)
		}
	}
	sweep := SweepBatches()
	if sweep[0] != 2 || sweep[len(sweep)-1] > 128 || len(sweep) < 10 {
		t.Fatalf("SweepBatches = %v", sweep)
	}
}

func TestDistributionString(t *testing.T) {
	if Uniform.String() != "uniform" || Zipfian.String() != "zipfian" || Distribution(9).String() == "" {
		t.Fatal("Distribution.String misbehaves")
	}
}

// Property: all draws stay in range for any seed and row count.
func TestQuickRange(t *testing.T) {
	f := func(seed int64, rowsRaw uint16) bool {
		rows := int(rowsRaw%5000) + 2
		g, err := NewGenerator(rows, Zipfian, seed)
		if err != nil {
			return false
		}
		for _, idx := range g.Indices(200) {
			if idx < 0 || idx >= rows {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfGeneratorValidation(t *testing.T) {
	if _, err := NewZipfGenerator(0, 0.9, 1); err == nil {
		t.Fatal("want error for zero rows")
	}
	if _, err := NewZipfGenerator(100, 0, 1); err == nil {
		t.Fatal("want error for non-positive exponent")
	}
	if _, err := NewZipfGenerator(100, -1, 1); err == nil {
		t.Fatal("want error for negative exponent")
	}
}

// The inverse-CDF sampler must be deterministic per seed, stay in range,
// and actually skew: under Zipf(0.9) the hottest decile of rows must carry
// well over half the draws (the analytical top-10% mass at s=0.9 over
// 1000 rows is ~66%).
func TestZipfGeneratorSkew(t *testing.T) {
	const rows, draws = 1000, 20000
	g1, err := NewZipfGenerator(rows, 0.9, 7)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := NewZipfGenerator(rows, 0.9, 7)
	hot := 0
	for i := 0; i < draws; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("draw %d: same seed diverged (%d vs %d)", i, a, b)
		}
		if a < 0 || a >= rows {
			t.Fatalf("draw %d out of range: %d", i, a)
		}
		if a < rows/10 {
			hot++
		}
	}
	frac := float64(hot) / draws
	if frac < 0.55 || frac > 0.8 {
		t.Fatalf("top-decile mass %.2f outside the expected Zipf(0.9) band", frac)
	}
}

// A steeper exponent concentrates more mass on the hottest rows.
func TestZipfGeneratorExponentOrdering(t *testing.T) {
	const rows, draws = 1000, 20000
	mass := func(s float64) float64 {
		g, err := NewZipfGenerator(rows, s, 11)
		if err != nil {
			t.Fatal(err)
		}
		hot := 0
		for i := 0; i < draws; i++ {
			if g.Next() < rows/20 {
				hot++
			}
		}
		return float64(hot) / draws
	}
	if m5, m12 := mass(0.5), mass(1.2); m5 >= m12 {
		t.Fatalf("Zipf(0.5) top-5%% mass %.2f >= Zipf(1.2) mass %.2f", m5, m12)
	}
}

// TestZipfCDFCacheBounded pins the CDF cache's LRU bound: after touching
// many more distinct (rows, s) geometries than the cap, at most zipfCDFCap
// tables stay resident, the hot geometry survives (it is re-touched every
// round), and a cached geometry is returned by reference rather than
// rebuilt.
func TestZipfCDFCacheBounded(t *testing.T) {
	zipfCDFMu.Lock()
	zipfCDFLRU = nil // isolate from other tests
	zipfCDFMu.Unlock()

	hot := zipfCDF(100, 0.9)
	for i := 0; i < 20; i++ {
		zipfCDF(101+i, 1.1) // 20 distinct cold geometries
		zipfCDF(100, 0.9)   // keep the hot one fresh
	}
	zipfCDFMu.Lock()
	n := len(zipfCDFLRU)
	zipfCDFMu.Unlock()
	if n > zipfCDFCap {
		t.Fatalf("CDF cache holds %d geometries, cap is %d", n, zipfCDFCap)
	}
	if got := zipfCDF(100, 0.9); &got[0] != &hot[0] {
		t.Fatal("hot geometry was evicted despite being re-touched every round")
	}
	// The most recent cold geometry is still cached; the oldest is not.
	if got := zipfCDF(120, 1.1); &got[0] == nil {
		t.Fatal("unreachable")
	}
	g, err := NewZipfGenerator(100, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if &g.cdf[0] != &hot[0] {
		t.Fatal("NewZipfGenerator rebuilt a cached CDF")
	}
}
