// Package workload generates the inference request streams of the
// evaluation: batches of embedding lookup indices per table, with uniform or
// Zipfian popularity (production embedding accesses are heavily skewed, but
// the paper's bandwidth analysis holds under both — the skew mainly affects
// row-buffer locality, which the DRAM experiments can probe directly).
//
// All generators are deterministically seeded so every experiment is
// reproducible bit-for-bit.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
)

// Distribution selects how lookup indices are drawn.
type Distribution int

// Supported index distributions.
const (
	Uniform Distribution = iota
	Zipfian
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipfian:
		return "zipfian"
	default:
		return fmt.Sprintf("dist(%d)", int(d))
	}
}

// Generator draws lookup indices for one model's tables.
type Generator struct {
	rows int
	dist Distribution
	rng  *rand.Rand
	zipf *rand.Zipf
	cdf  []float64 // inverse-CDF sampler for NewZipfGenerator (any exponent)
}

// NewGenerator builds a generator over tables of `rows` rows.
// For Zipfian, s=1.2 over the full row range (a common web-popularity fit).
func NewGenerator(rows int, dist Distribution, seed int64) (*Generator, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("workload: rows must be positive, got %d", rows)
	}
	g := &Generator{rows: rows, dist: dist, rng: rand.New(rand.NewSource(seed))}
	if dist == Zipfian {
		g.zipf = rand.NewZipf(g.rng, 1.2, 1, uint64(rows-1))
		if g.zipf == nil {
			return nil, fmt.Errorf("workload: bad zipf parameters for %d rows", rows)
		}
	}
	return g, nil
}

// zipfCDFKey identifies one precomputed Zipf CDF.
type zipfCDFKey struct {
	rows int
	s    float64
}

// zipfCDFEntry is one cached inverse-CDF table.
type zipfCDFEntry struct {
	key zipfCDFKey
	cdf []float64 // read-only after construction
}

// zipfCDFs caches the (read-only) inverse-CDF tables per (rows, s): a load
// generator that builds one short-lived Generator per client or per request
// pays the O(rows) CDF construction once per distinct geometry instead of
// every time. The cache is a small move-to-front LRU capped at
// zipfCDFCap entries, so a sweep over many distinct geometries (a row-count
// scan, an exponent scan) cannot pin an unbounded number of O(rows) tables
// in a long-lived process — each entry is 8 bytes per table row, and real
// workloads reuse at most a handful of geometries at a time.
const zipfCDFCap = 8

var (
	zipfCDFMu  sync.Mutex
	zipfCDFLRU []zipfCDFEntry // front = most recently used, len <= zipfCDFCap
)

// zipfCDF returns the cached CDF for (rows, s), computing it on first use
// and evicting the least recently used geometry past the cap.
func zipfCDF(rows int, s float64) []float64 {
	key := zipfCDFKey{rows: rows, s: s}
	zipfCDFMu.Lock()
	for i, e := range zipfCDFLRU {
		if e.key == key {
			copy(zipfCDFLRU[1:i+1], zipfCDFLRU[:i]) // move to front
			zipfCDFLRU[0] = e
			zipfCDFMu.Unlock()
			return e.cdf
		}
	}
	zipfCDFMu.Unlock()
	cdf := make([]float64, rows)
	var acc float64
	for i := range cdf {
		acc += math.Pow(float64(i+1), -s)
		cdf[i] = acc
	}
	for i := range cdf {
		cdf[i] /= acc
	}
	zipfCDFMu.Lock()
	defer zipfCDFMu.Unlock()
	for i, e := range zipfCDFLRU { // recheck: a racing builder may have won
		if e.key == key {
			copy(zipfCDFLRU[1:i+1], zipfCDFLRU[:i])
			zipfCDFLRU[0] = e
			return e.cdf
		}
	}
	if len(zipfCDFLRU) < zipfCDFCap {
		zipfCDFLRU = append(zipfCDFLRU, zipfCDFEntry{})
	}
	copy(zipfCDFLRU[1:], zipfCDFLRU[:len(zipfCDFLRU)-1])
	zipfCDFLRU[0] = zipfCDFEntry{key: key, cdf: cdf}
	return cdf
}

// NewZipfGenerator builds a generator drawing indices from a Zipf
// distribution with exponent s over [0, rows): P(r) is proportional to
// 1/(r+1)^s, so row 0 is the hottest. Unlike NewGenerator's Zipfian mode
// (stdlib rand.Zipf, which requires s > 1), this sampler inverts a
// precomputed CDF with binary search, so any s > 0 works — including the
// s ≈ 0.9 fits RecNMP reports for production embedding traffic. The CDF is
// computed once per (rows, s) geometry and shared by every generator over
// it (8 bytes per table row) through a small LRU capped at zipfCDFCap
// geometries; draws are deterministic for a fixed seed.
func NewZipfGenerator(rows int, s float64, seed int64) (*Generator, error) {
	if rows <= 0 {
		return nil, fmt.Errorf("workload: rows must be positive, got %d", rows)
	}
	if s <= 0 {
		return nil, fmt.Errorf("workload: zipf exponent must be positive, got %g", s)
	}
	g := &Generator{rows: rows, dist: Zipfian, rng: rand.New(rand.NewSource(seed))}
	g.cdf = zipfCDF(rows, s)
	return g, nil
}

// Next draws one index.
func (g *Generator) Next() int {
	if g.cdf != nil {
		i := sort.SearchFloat64s(g.cdf, g.rng.Float64())
		if i >= g.rows { // float round-off at the top of the CDF
			i = g.rows - 1
		}
		return i
	}
	if g.dist == Zipfian {
		return int(g.zipf.Uint64())
	}
	return g.rng.Intn(g.rows)
}

// Indices draws n indices.
func (g *Generator) Indices(n int) []int {
	out := make([]int, n)
	g.FillIndices(out)
	return out
}

// FillIndices overwrites every element of dst with a drawn index: the
// allocation-free form of Indices for load generators that reuse request
// buffers (the benchmark harness fills pre-sized batches this way so the
// generator never shows up in an allocation profile).
func (g *Generator) FillIndices(dst []int) {
	for i := range dst {
		dst[i] = g.Next()
	}
}

// Batch draws the per-table index lists for one inference batch:
// tables x (batch x reduction) indices.
func (g *Generator) Batch(tables, batch, reduction int) [][]int {
	out := make([][]int, tables)
	for t := range out {
		out[t] = make([]int, batch*reduction)
	}
	if err := g.FillBatch(out, batch, reduction); err != nil {
		panic(err) // unreachable: lists are sized batch*reduction above
	}
	return out
}

// FillBatch refills a previously sized batch in place: dst must hold one
// index list of exactly batch x reduction entries per table. It is the
// allocation-free form of Batch.
func (g *Generator) FillBatch(dst [][]int, batch, reduction int) error {
	for t, rows := range dst {
		if len(rows) != batch*reduction {
			return fmt.Errorf("workload: table %d holds %d indices, want batch %d x reduction %d",
				t, len(rows), batch, reduction)
		}
		g.FillIndices(rows)
	}
	return nil
}

// Int32 converts an index list to the int32 form the TensorISA index blocks
// carry (Figure 9(a) reads 16 x 4-byte indices per block).
func Int32(indices []int) []int32 {
	out := make([]int32, len(indices))
	for i, v := range indices {
		out[i] = int32(v)
	}
	return out
}

// PaperBatches returns the batch sizes of Figure 4 ({1,8,64,128}).
func PaperBatches() []int { return []int{1, 8, 64, 128} }

// SweepBatches returns the batch sweep of Figure 11 (2..128).
func SweepBatches() []int {
	var out []int
	for b := 2; b <= 128; b += 6 {
		out = append(out, b)
	}
	return out
}
