package runtime

import (
	"math/rand"
	"sync"
	"testing"

	"tensordimm/internal/isa"
	"tensordimm/internal/recsys"
	"tensordimm/internal/tensor"
	"tensordimm/internal/workload"
)

func TestUpdateTableMatchesGolden(t *testing.T) {
	cfg := smallConfig("train", 2, 4, 128, true, isa.RAdd)
	d := deploy(t, cfg, 8, 4)

	// Snapshot a golden copy of table 0 before updates.
	before := make([][]float32, cfg.TableRows)
	for r := range before {
		before[r] = append([]float32(nil), d.Model.Embedding.Tables[0].Row(r)...)
	}

	rng := rand.New(rand.NewSource(31))
	rows := []int{3, 17, 3, 99, 42} // includes a duplicate
	grads := tensor.New(len(rows), cfg.EmbDim)
	for i := range grads.Data() {
		grads.Data()[i] = rng.Float32() - 0.5
	}
	if err := d.UpdateTable(0, rows, grads); err != nil {
		t.Fatal(err)
	}

	// Expected: golden accumulate in order.
	for i, r := range rows {
		for k := 0; k < cfg.EmbDim; k++ {
			before[r][k] += grads.At(i, k)
		}
	}
	// The node's table must now gather the updated rows (and the model's
	// write-through copy must agree).
	gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, 8)
	batch := 2
	indices := gen.Batch(cfg.Tables, batch, cfg.Reduction)
	indices[0] = []int{3, 17, 99, 42, 3, 5, 6, 7} // touch updated rows
	got, err := d.RunEmbedding(indices, batch)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.GoldenEmbedding(indices, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(got, want) {
		t.Fatal("post-update embedding differs from golden")
	}
	// Spot-check an updated row directly against the snapshot arithmetic.
	for k := 0; k < cfg.EmbDim; k++ {
		if d.Model.Embedding.Tables[0].Row(3)[k] != before[3][k] {
			t.Fatalf("row 3 lane %d: %v != %v", k,
				d.Model.Embedding.Tables[0].Row(3)[k], before[3][k])
		}
	}
}

func TestUpdateTableMultiStripe(t *testing.T) {
	cfg := smallConfig("train2", 1, 2, 256, false, isa.RMul) // 2 stripes on 8 DIMMs
	d := deploy(t, cfg, 8, 4)
	rows := []int{1, 2, 3}
	grads := tensor.New(len(rows), cfg.EmbDim)
	grads.Fill(0.25)
	snapshot := append([]float32(nil), d.Model.Embedding.Tables[0].Row(2)...)
	if err := d.UpdateTable(0, rows, grads); err != nil {
		t.Fatal(err)
	}
	vals, err := d.Node.ReadFloats(d.tableBase[0]+2*uint64(cfg.EmbBytes()), cfg.EmbDim)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range vals {
		if v != snapshot[k]+0.25 {
			t.Fatalf("node row 2 lane %d: %v != %v", k, v, snapshot[k]+0.25)
		}
	}
}

// applyGolden accumulates ups into a host-side snapshot table set the same
// way the sequential golden model would: in slice order, duplicates in order.
func applyGolden(snap [][][]float32, ups []TableUpdate) {
	for _, up := range ups {
		for i, r := range up.Rows {
			for k := range snap[up.Table][r] {
				snap[up.Table][r][k] += up.Grads.At(i, k)
			}
		}
	}
}

func snapshotTables(d *Deployment) [][][]float32 {
	snap := make([][][]float32, len(d.Model.Embedding.Tables))
	for t, tb := range d.Model.Embedding.Tables {
		snap[t] = make([][]float32, tb.Rows())
		for r := range snap[t] {
			snap[t][r] = append([]float32(nil), tb.Row(r)...)
		}
	}
	return snap
}

func TestApplyUpdatesMultiTable(t *testing.T) {
	cfg := smallConfig("multi", 3, 1, 128, false, isa.RAdd)
	m, err := recsys.Build(cfg, 77)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DeployConcurrent(m, newNode(t, 8), 8, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	snap := snapshotTables(d)

	rng := rand.New(rand.NewSource(7))
	var ups []TableUpdate
	for _, tb := range []int{0, 2, 1, 0} { // table 0 twice: order matters
		rows := []int{rng.Intn(cfg.TableRows), 5, 5} // dup-heavy
		grads := tensor.New(len(rows), cfg.EmbDim)
		for i := range grads.Data() {
			grads.Data()[i] = rng.Float32() - 0.5
		}
		ups = append(ups, TableUpdate{Table: tb, Rows: rows, Grads: grads})
	}
	if err := d.ApplyUpdates(ups); err != nil {
		t.Fatal(err)
	}
	applyGolden(snap, ups)

	for tb := 0; tb < cfg.Tables; tb++ {
		for r := 0; r < cfg.TableRows; r++ {
			got := d.Model.Embedding.Tables[tb].Row(r)
			for k, w := range snap[tb][r] {
				if got[k] != w {
					t.Fatalf("table %d row %d lane %d: %v != %v", tb, r, k, got[k], w)
				}
			}
		}
		// Node copy agrees with the write-through copy.
		vals, err := d.Node.ReadFloats(d.tableBase[tb], cfg.TableRows*cfg.EmbDim)
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < cfg.TableRows; r++ {
			for k := 0; k < cfg.EmbDim; k++ {
				if vals[r*cfg.EmbDim+k] != snap[tb][r][k] {
					t.Fatalf("node table %d row %d lane %d: %v != %v",
						tb, r, k, vals[r*cfg.EmbDim+k], snap[tb][r][k])
				}
			}
		}
	}
}

func TestApplyUpdatesConcurrentDisjointTables(t *testing.T) {
	cfg := smallConfig("conc", 4, 1, 128, false, isa.RAdd)
	m, err := recsys.Build(cfg, 77)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DeployConcurrent(m, newNode(t, 8), 8, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	snap := snapshotTables(d)

	// One updater goroutine per table: per-table order is deterministic, so
	// the final state must match the golden accumulation exactly even though
	// tables update concurrently.
	const steps = 5
	perTable := make([][]TableUpdate, cfg.Tables)
	for tb := 0; tb < cfg.Tables; tb++ {
		rng := rand.New(rand.NewSource(int64(100 + tb)))
		for s := 0; s < steps; s++ {
			rows := []int{rng.Intn(cfg.TableRows), rng.Intn(cfg.TableRows)}
			grads := tensor.New(len(rows), cfg.EmbDim)
			for i := range grads.Data() {
				grads.Data()[i] = rng.Float32() - 0.5
			}
			perTable[tb] = append(perTable[tb], TableUpdate{Table: tb, Rows: rows, Grads: grads})
		}
	}
	var wg sync.WaitGroup
	errs := make([]error, cfg.Tables)
	for tb := 0; tb < cfg.Tables; tb++ {
		wg.Add(1)
		go func(tb int) {
			defer wg.Done()
			for _, up := range perTable[tb] {
				if err := d.ApplyUpdates([]TableUpdate{up}); err != nil {
					errs[tb] = err
					return
				}
			}
		}(tb)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	for tb := 0; tb < cfg.Tables; tb++ {
		applyGolden(snap, perTable[tb])
	}
	for tb := 0; tb < cfg.Tables; tb++ {
		for r := 0; r < cfg.TableRows; r++ {
			got := d.Model.Embedding.Tables[tb].Row(r)
			for k, w := range snap[tb][r] {
				if got[k] != w {
					t.Fatalf("table %d row %d lane %d: %v != %v", tb, r, k, got[k], w)
				}
			}
		}
	}
}

func TestApplyUpdatesValidatesAtomically(t *testing.T) {
	cfg := smallConfig("atomic", 2, 1, 128, false, isa.RAdd)
	d := deploy(t, cfg, 8, 4)
	snap := snapshotTables(d)
	good := tensor.New(1, cfg.EmbDim)
	good.Fill(1)
	bad := tensor.New(1, cfg.EmbDim)
	ups := []TableUpdate{
		{Table: 0, Rows: []int{3}, Grads: good},
		{Table: 1, Rows: []int{cfg.TableRows}, Grads: bad}, // out of range
	}
	if err := d.ApplyUpdates(ups); err == nil {
		t.Fatal("want row-range error")
	}
	// The valid first entry must NOT have been applied.
	for k, w := range snap[0][3] {
		if d.Model.Embedding.Tables[0].Row(3)[k] != w {
			t.Fatal("partial application after failed validation")
		}
	}
	if err := d.ApplyUpdates([]TableUpdate{{Table: 0, Rows: []int{1}, Grads: nil}}); err == nil {
		t.Fatal("want nil-gradient error")
	}
	if err := d.ApplyUpdatesToNode([]TableUpdate{{Table: 0, Rows: []int{3}, Grads: good}}); err != nil {
		t.Fatal(err)
	}
	// Node-only application must leave the golden table untouched.
	for k, w := range snap[0][3] {
		if d.Model.Embedding.Tables[0].Row(3)[k] != w {
			t.Fatal("ApplyUpdatesToNode wrote through to the golden table")
		}
	}
	vals, err := d.Node.ReadFloats(d.tableBase[0]+3*uint64(cfg.EmbBytes()), cfg.EmbDim)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range snap[0][3] {
		if vals[k] != w+1 {
			t.Fatalf("node row lane %d: %v, want %v", k, vals[k], w+1)
		}
	}
}

func TestUpdateTableValidation(t *testing.T) {
	cfg := smallConfig("trainv", 1, 2, 128, true, isa.RAdd)
	d := deploy(t, cfg, 8, 2)
	grads := tensor.New(2, cfg.EmbDim)
	if err := d.UpdateTable(5, []int{1, 2}, grads); err == nil {
		t.Fatal("want table-range error")
	}
	if err := d.UpdateTable(0, []int{1}, grads); err == nil {
		t.Fatal("want shape error (rows vs grad rows)")
	}
	bad := tensor.New(2, cfg.EmbDim+1)
	if err := d.UpdateTable(0, []int{1, 2}, bad); err == nil {
		t.Fatal("want dim error")
	}
}
