package runtime

import (
	"math/rand"
	"testing"

	"tensordimm/internal/isa"
	"tensordimm/internal/tensor"
	"tensordimm/internal/workload"
)

func TestUpdateTableMatchesGolden(t *testing.T) {
	cfg := smallConfig("train", 2, 4, 128, true, isa.RAdd)
	d := deploy(t, cfg, 8, 4)

	// Snapshot a golden copy of table 0 before updates.
	before := make([][]float32, cfg.TableRows)
	for r := range before {
		before[r] = append([]float32(nil), d.Model.Embedding.Tables[0].Row(r)...)
	}

	rng := rand.New(rand.NewSource(31))
	rows := []int{3, 17, 3, 99, 42} // includes a duplicate
	grads := tensor.New(len(rows), cfg.EmbDim)
	for i := range grads.Data() {
		grads.Data()[i] = rng.Float32() - 0.5
	}
	if err := d.UpdateTable(0, rows, grads); err != nil {
		t.Fatal(err)
	}

	// Expected: golden accumulate in order.
	for i, r := range rows {
		for k := 0; k < cfg.EmbDim; k++ {
			before[r][k] += grads.At(i, k)
		}
	}
	// The node's table must now gather the updated rows (and the model's
	// write-through copy must agree).
	gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, 8)
	batch := 2
	indices := gen.Batch(cfg.Tables, batch, cfg.Reduction)
	indices[0] = []int{3, 17, 99, 42, 3, 5, 6, 7} // touch updated rows
	got, err := d.RunEmbedding(indices, batch)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.GoldenEmbedding(indices, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(got, want) {
		t.Fatal("post-update embedding differs from golden")
	}
	// Spot-check an updated row directly against the snapshot arithmetic.
	for k := 0; k < cfg.EmbDim; k++ {
		if d.Model.Embedding.Tables[0].Row(3)[k] != before[3][k] {
			t.Fatalf("row 3 lane %d: %v != %v", k,
				d.Model.Embedding.Tables[0].Row(3)[k], before[3][k])
		}
	}
}

func TestUpdateTableMultiStripe(t *testing.T) {
	cfg := smallConfig("train2", 1, 2, 256, false, isa.RMul) // 2 stripes on 8 DIMMs
	d := deploy(t, cfg, 8, 4)
	rows := []int{1, 2, 3}
	grads := tensor.New(len(rows), cfg.EmbDim)
	grads.Fill(0.25)
	snapshot := append([]float32(nil), d.Model.Embedding.Tables[0].Row(2)...)
	if err := d.UpdateTable(0, rows, grads); err != nil {
		t.Fatal(err)
	}
	vals, err := d.Node.ReadFloats(d.tableBase[0]+2*uint64(cfg.EmbBytes()), cfg.EmbDim)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range vals {
		if v != snapshot[k]+0.25 {
			t.Fatalf("node row 2 lane %d: %v != %v", k, v, snapshot[k]+0.25)
		}
	}
}

func TestUpdateTableValidation(t *testing.T) {
	cfg := smallConfig("trainv", 1, 2, 128, true, isa.RAdd)
	d := deploy(t, cfg, 8, 2)
	grads := tensor.New(2, cfg.EmbDim)
	if err := d.UpdateTable(5, []int{1, 2}, grads); err == nil {
		t.Fatal("want table-range error")
	}
	if err := d.UpdateTable(0, []int{1}, grads); err == nil {
		t.Fatal("want shape error (rows vs grad rows)")
	}
	bad := tensor.New(2, cfg.EmbDim+1)
	if err := d.UpdateTable(0, []int{1, 2}, bad); err == nil {
		t.Fatal("want dim error")
	}
}
