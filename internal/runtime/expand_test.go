package runtime

import (
	"testing"

	"tensordimm/internal/isa"
)

// TestExpandIndicesIntoMatchesExpandIndices pins the refactoring contract:
// the appending variant over a reused buffer is bit-identical to the
// allocating one for every (rows, reduction, stripes) shape the runtime
// emits.
func TestExpandIndicesIntoMatchesExpandIndices(t *testing.T) {
	cases := []struct {
		rows      []int
		reduction int
		stripes   int
	}{
		{nil, 1, 1},
		{[]int{}, 2, 4},
		{[]int{5, 9, 2, 7}, 2, 1},
		{[]int{3, 4, 8, 9}, 2, 2},
		{[]int{1, 2, 3}, 0, 1},
		{[]int{4, 7}, 5, 3},
		{[]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, 4, 2},
	}
	buf := make([]int32, 0, 256)
	for _, tc := range cases {
		want := ExpandIndices(tc.rows, tc.reduction, tc.stripes)
		buf = ExpandIndicesInto(buf[:0], tc.rows, tc.reduction, tc.stripes)
		if len(buf) != len(want) {
			t.Fatalf("rows %v red %d stripes %d: len %d, want %d", tc.rows, tc.reduction, tc.stripes, len(buf), len(want))
		}
		for i := range want {
			if buf[i] != want[i] {
				t.Fatalf("rows %v red %d stripes %d: idx[%d] = %d, want %d",
					tc.rows, tc.reduction, tc.stripes, i, buf[i], want[i])
			}
		}
	}
}

// TestExpandIndicesIntoAppendsWithPerHalfPadding pins the pairwise-REDUCE
// double-expansion (the old runtime.go append(a, b...) double allocation):
// expanding two halves into one buffer must equal the two standalone
// expansions concatenated, with each half padded independently.
func TestExpandIndicesIntoAppendsWithPerHalfPadding(t *testing.T) {
	a := []int{0, 2, 4, 6, 8}
	b := []int{1, 3, 5, 7, 9}
	const stripes = 3
	buf := ExpandIndicesInto(nil, a, 1, stripes)
	countA := len(buf)
	if countA%isa.LanesPerBlock != 0 {
		t.Fatalf("first half not block padded: %d", countA)
	}
	buf = ExpandIndicesInto(buf, b, 1, stripes)
	wantA := ExpandIndices(a, 1, stripes)
	wantB := ExpandIndices(b, 1, stripes)
	if countA != len(wantA) || len(buf) != len(wantA)+len(wantB) {
		t.Fatalf("lengths: countA %d (want %d), total %d (want %d)",
			countA, len(wantA), len(buf), len(wantA)+len(wantB))
	}
	for i, v := range wantA {
		if buf[i] != v {
			t.Fatalf("half A mismatch at %d", i)
		}
	}
	for i, v := range wantB {
		if buf[countA+i] != v {
			t.Fatalf("half B mismatch at %d", i)
		}
	}
}

// TestRunEmbeddingIntoMatchesRunEmbedding checks the into-variant against
// the allocating one and the golden model, including buffer reuse across
// calls with different batch sizes.
func TestRunEmbeddingIntoMatchesRunEmbedding(t *testing.T) {
	d := deploy(t, smallConfig("into", 2, 2, 128, false, isa.RAdd), 8, 8)
	defer d.Release()
	cfg := d.Model.Cfg
	width := cfg.Tables * cfg.EmbDim
	buf := make([]float32, d.MaxBatch()*width)
	for _, batch := range []int{1, 3, 8} {
		rows := make([][]int, cfg.Tables)
		for t2 := range rows {
			rows[t2] = make([]int, batch*cfg.Reduction)
			for i := range rows[t2] {
				rows[t2][i] = (t2*31 + i*7) % cfg.TableRows
			}
		}
		want, err := d.RunEmbedding(rows, batch)
		if err != nil {
			t.Fatal(err)
		}
		golden, err := d.GoldenEmbedding(rows, batch)
		if err != nil {
			t.Fatal(err)
		}
		dst := buf[:batch*width]
		if err := d.RunEmbeddingInto(dst, rows, batch); err != nil {
			t.Fatal(err)
		}
		for i, v := range want.Data() {
			if dst[i] != v {
				t.Fatalf("batch %d: dst[%d] = %v, want %v", batch, i, dst[i], v)
			}
		}
		if !tensorEqualData(golden.Data(), dst) {
			t.Fatalf("batch %d: into-variant diverges from golden", batch)
		}
	}
	// Wrong destination length is rejected, not silently truncated.
	rows := [][]int{{0, 1}, {2, 3}}
	if err := d.RunEmbeddingInto(buf[:5], rows, 1); err == nil {
		t.Fatal("want error for short destination")
	}
}

func tensorEqualData(a, b []float32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
