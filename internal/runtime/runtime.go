// Package runtime implements the software runtime of Section 4.4: it deploys
// recommender models onto a TensorNode (remote pool allocation, striped
// table upload), compiles embedding layers into TensorISA programs (the
// GATHER / REDUCE / AVERAGE sequences of Figure 2), broadcasts them for
// near-memory execution, and reads back the pooled tensor the GPU would
// receive over NVLink.
//
// Index expansion. TensorISA addresses tensors in stripes (one 64-byte block
// per TensorDIMM). When an embedding spans k stripes (dimension larger than
// nodeDim x 16 elements), the runtime expands each logical row index into k
// stripe indices. Within a pooling group the expansion is stripe-transposed
// — group-major, then stripe, then group member — which is exactly the
// layout that makes the paper's AVERAGE addressing (Figure 9(c), input
// i*averageNum+j) pool corresponding stripes of the group's embeddings.
//
// Concurrency. A Deployment partitions its scratch memory into execution
// slots (one pooled-output region each) and scratch lanes (one index-list
// region plus two gather operand buffers each). RunEmbedding acquires a free
// slot for the whole batch and fans the per-table GATHER/REDUCE programs out
// across the lanes, so every in-flight table touches a disjoint slice of
// the pool and concurrent batches never alias. Deploy gives a deployment one
// slot and one lane — the sequential behavior of the paper's runtime —
// while DeployConcurrent sizes both for a serving workload (see
// internal/serve).
//
// Memory discipline. Each lane is owned by one persistent worker goroutine
// holding the lane's host-side scratch (expanded index list, row-split
// buffers, compiled program), and each slot carries a preallocated job array
// and WaitGroup; RunEmbeddingInto writes the pooled result into a
// caller-provided buffer. Together these make the steady-state embedding
// path — expansion, compilation, broadcast, execution, read-back — free of
// heap allocations (see ARCHITECTURE.md, "Memory discipline").
//
// Online updates. ApplyUpdates programs the SCATTER_ADD extension over the
// same lane partitioning: gradient rows are staged into a lane's gather
// scratch, expanded stripe indices into its index region, and the NMP cores
// accumulate them into the resident table. Distinct tables update
// concurrently (disjoint row-ranges commute); updates to one table are
// serialized by a per-table lock, because float accumulation order is part
// of the bit-identity contract with the write-through golden tables.
package runtime

import (
	"fmt"
	"sync"
	"sync/atomic"

	"tensordimm/internal/embed"
	"tensordimm/internal/isa"
	"tensordimm/internal/node"
	"tensordimm/internal/recsys"
	"tensordimm/internal/tensor"
)

// scratchLane is the per-execution scratch a single table's embedding stage
// needs: a reserved index-list region of the replicated shared store, two
// gather operand buffers in the pool (enough for pairwise REDUCE), and the
// host-side reusable buffers of the lane's worker goroutine. The host
// buffers are owned exclusively by that worker, so the compile/expand stage
// never allocates in steady state.
type scratchLane struct {
	idxBase    uint64    // shared-region byte address for index lists
	gatherBase [2]uint64 // pool scratch for gathered tensors

	idx   []int32 // expanded stripe-index scratch
	rowsA []int   // even group members (pairwise-REDUCE split)
	rowsB []int   // odd group members
	prog  isa.Program
}

// jobKind selects what a lane worker does with a job.
type jobKind int

const (
	jobGather  jobKind = iota // one table's GATHER/REDUCE stage of a batch
	jobScatter                // one table's SCATTER_ADD update
)

// laneJob is one unit of work handed to a lane worker. Gather jobs live in
// a slot's preallocated job array (zero allocation per batch); scatter jobs
// are stack/heap transient on the update path.
type laneJob struct {
	kind  jobKind
	t     int   // gather: target table
	rows  []int // gather: the table's row indices
	batch int   // gather: batch size
	out   uint64
	up    TableUpdate // scatter: the update to apply
	wg    *sync.WaitGroup
	err   error
}

// slotScratch is the per-slot execution state: one preallocated gather job
// per table and the WaitGroup the jobs signal. A slot is held by exactly
// one batch at a time (acquired through freeSlot), so the array is never
// shared between in-flight batches.
type slotScratch struct {
	wg   sync.WaitGroup
	jobs []laneJob
}

// Deployment is a recommender model resident in a TensorNode pool.
//
// RunEmbedding, Infer and UpdateTable are safe for concurrent use; the
// number of concurrent batches in flight is bounded by the deployment's
// slots and the per-table parallelism within a batch by its lanes.
type Deployment struct {
	// Model is the deployed recommender (golden tables plus MLP).
	Model *recsys.Model
	// Node is the TensorNode pool holding the uploaded tables and scratch.
	Node *node.Node

	tableBase []uint64 // pool byte address of each table
	stripes   int      // stripes per embedding (k)
	maxBatch  int
	padSlack  uint64 // per-table output slack absorbing GATHER index padding

	outBase  []uint64       // pooled output tensor region, one per slot
	lanes    []*scratchLane // index + gather scratch, one per lane worker
	slots    []slotScratch  // per-slot job arrays
	freeSlot chan int
	work     chan *laneJob // feeds the persistent lane workers

	// tableMu serializes SCATTER_ADD updates per table row-range: updates
	// to the same table apply in submission order (float accumulation is
	// not associative, so order is part of the bit-identity contract with
	// the golden model), while updates to disjoint tables proceed
	// concurrently on separate scratch lanes.
	tableMu []sync.Mutex

	// relMu guards the released flag against the in-flight counter so
	// Release can wait for every running execution before closing the lane
	// workers' job channel (a send on a closed channel would panic).
	relMu    sync.Mutex
	inflight sync.WaitGroup
	released atomic.Bool
}

// enter registers one in-flight execution, failing when the deployment is
// released; the matching d.inflight.Done() lets Release drain before it
// stops the lane workers.
func (d *Deployment) enter() error {
	d.relMu.Lock()
	defer d.relMu.Unlock()
	if d.released.Load() {
		return fmt.Errorf("runtime: deployment is released")
	}
	d.inflight.Add(1)
	return nil
}

// Deploy uploads the model's embedding tables into the node (striped across
// all TensorDIMMs) and pre-allocates the scratch regions for batches up to
// maxBatch, with a single execution slot and scratch lane (sequential
// embedding execution, the paper's baseline runtime). It exercises the
// remote-pool allocation APIs ([39]).
func Deploy(m *recsys.Model, nd *node.Node, maxBatch int) (*Deployment, error) {
	return DeployConcurrent(m, nd, maxBatch, 1, 1)
}

// DeployConcurrent is Deploy with explicit concurrency sizing: slots bounds
// how many batches can execute at once (one pooled-output region each) and
// lanes bounds how many per-table programs can be in flight across those
// batches (one index region plus two gather buffers each). A serving setup
// typically uses slots = worker count and lanes = slots x tables.
func DeployConcurrent(m *recsys.Model, nd *node.Node, maxBatch, slots, lanes int) (*Deployment, error) {
	cfg := m.Cfg
	embBytes := int(cfg.EmbBytes())
	stripeBytes := int(nd.StripeBytes())
	if embBytes%stripeBytes != 0 {
		return nil, fmt.Errorf("runtime: embedding size %d B is not a multiple of the node stripe %d B",
			embBytes, stripeBytes)
	}
	if maxBatch <= 0 {
		return nil, fmt.Errorf("runtime: maxBatch must be positive")
	}
	if slots <= 0 || lanes <= 0 {
		return nil, fmt.Errorf("runtime: slots (%d) and lanes (%d) must be positive", slots, lanes)
	}
	d := &Deployment{
		Model:    m,
		Node:     nd,
		stripes:  embBytes / stripeBytes,
		maxBatch: maxBatch,
		freeSlot: make(chan int, slots),
		work:     make(chan *laneJob, slots*cfg.Tables),
		tableMu:  make([]sync.Mutex, cfg.Tables),
	}

	// Upload tables.
	for t, tb := range m.Embedding.Tables {
		base, err := nd.Alloc(uint64(tb.Bytes()))
		if err != nil {
			return nil, fmt.Errorf("runtime: alloc table %d: %w", t, err)
		}
		for r := 0; r < tb.Rows(); r++ {
			off := base + uint64(r)*uint64(embBytes)
			if err := nd.WriteFloats(off, tb.Row(r)); err != nil {
				return nil, fmt.Errorf("runtime: upload table %d row %d: %w", t, r, err)
			}
		}
		d.tableBase = append(d.tableBase, base)
	}

	// Scratch. Gather buffers are sized for the worst case — a full batch of
	// reduction-many embeddings — plus one index block of padding slack
	// (GATHER counts are rounded up to 16 and the padded stripes land just
	// past the live region). Every per-table segment of the output region
	// carries the same slack: when reduction is 1 GATHER writes straight
	// into the output, and its padding stripes must not clobber the next
	// table's segment, whichever order the tables execute in. Index regions
	// get the worst-case expanded list plus two blocks of padding slack (the
	// pairwise-REDUCE path pads each of its two halves independently).
	d.padSlack = uint64(isa.LanesPerBlock * stripeBytes)
	padSlack := d.padSlack
	gatherBytes := uint64(maxBatch)*uint64(cfg.Reduction)*uint64(embBytes) + padSlack
	idxCap := maxBatch*cfg.Reduction*d.stripes + 2*isa.LanesPerBlock
	idxBytes := uint64(idxCap) * 4
	for i := 0; i < lanes; i++ {
		ln := &scratchLane{
			idx:   make([]int32, 0, idxCap),
			rowsA: make([]int, 0, maxBatch),
			rowsB: make([]int, 0, maxBatch),
			prog:  make(isa.Program, 0, 3),
		}
		ln.idxBase = nd.ReserveIndexRegion(idxBytes)
		for j := 0; j < 2; j++ {
			b, err := nd.Alloc(gatherBytes)
			if err != nil {
				return nil, fmt.Errorf("runtime: alloc gather scratch (lane %d): %w", i, err)
			}
			ln.gatherBase[j] = b
		}
		d.lanes = append(d.lanes, ln)
	}
	outBytes := uint64(cfg.Tables) * (uint64(maxBatch)*uint64(embBytes) + padSlack)
	d.slots = make([]slotScratch, slots)
	for s := 0; s < slots; s++ {
		out, err := nd.Alloc(outBytes)
		if err != nil {
			return nil, fmt.Errorf("runtime: alloc output (slot %d): %w", s, err)
		}
		d.outBase = append(d.outBase, out)
		d.slots[s].jobs = make([]laneJob, cfg.Tables)
		for t := range d.slots[s].jobs {
			d.slots[s].jobs[t].wg = &d.slots[s].wg
		}
		d.freeSlot <- s
	}
	// The lane workers own their scratch for the deployment's lifetime;
	// Release closes the work channel to stop them.
	for _, ln := range d.lanes {
		go d.laneWorker(ln)
	}
	return d, nil
}

// laneWorker drains the deployment's job channel with exclusive use of one
// scratch lane (device regions and host buffers alike), until Release
// closes the channel.
func (d *Deployment) laneWorker(ln *scratchLane) {
	for j := range d.work {
		switch j.kind {
		case jobGather:
			j.err = d.runTable(ln, j.out, j.t, j.rows, j.batch)
		case jobScatter:
			j.err = d.scatterTable(ln, j.up)
		}
		j.wg.Done()
	}
}

// Release frees all pool allocations of the deployment. It is idempotent:
// releasing an already-released deployment is a no-op, so shutdown paths
// (server close, deferred cleanup) can release unconditionally.
func (d *Deployment) Release() error {
	d.relMu.Lock()
	defer d.relMu.Unlock()
	if d.released.Swap(true) {
		return nil
	}
	// In-flight executions already counted themselves in; new ones block on
	// relMu and then fail the released check. Draining before the close
	// keeps a concurrent RunEmbeddingInto/ApplyUpdates from sending on a
	// closed channel.
	d.inflight.Wait()
	close(d.work) // stop the lane workers
	var first error
	free := func(b uint64) {
		if err := d.Node.Free(b); err != nil && first == nil {
			first = err
		}
	}
	for _, b := range d.tableBase {
		free(b)
	}
	for _, ln := range d.lanes {
		free(ln.gatherBase[0])
		free(ln.gatherBase[1])
	}
	for _, b := range d.outBase {
		free(b)
	}
	return first
}

// Stripes returns the number of stripes per embedding under this node.
func (d *Deployment) Stripes() int { return d.stripes }

// MaxBatch returns the largest batch one embedding execution accepts.
func (d *Deployment) MaxBatch() int { return d.maxBatch }

// Slots returns how many batches can execute concurrently.
func (d *Deployment) Slots() int { return len(d.outBase) }

// Lanes returns how many per-table programs can be in flight at once.
func (d *Deployment) Lanes() int { return len(d.lanes) }

// ExpandIndices expands logical row indices into stripe indices for GATHER,
// stripe-transposed within pooling groups of size `reduction` (see the
// package comment), and pads the result to a whole index block (multiple of
// 16) by repeating the last stripe index (the padded outputs land beyond the
// consumed region and are ignored). Rows beyond the last whole group expand
// row-major; an empty row list expands to an empty index list.
func ExpandIndices(rows []int, reduction, stripes int) []int32 {
	return ExpandIndicesInto(make([]int32, 0, len(rows)*stripes+isa.LanesPerBlock), rows, reduction, stripes)
}

// ExpandIndicesInto is ExpandIndices appending into dst, for callers that
// reuse a scratch buffer across requests (pass dst[:0] to overwrite it):
// the hot serving path expands every index list this way without
// allocating. When dst is non-empty its length must be a multiple of 16 so
// the padding of the appended expansion stays self-contained — that is how
// the pairwise-REDUCE path expands both operand halves into one buffer,
// each half padded exactly as a standalone ExpandIndices would pad it.
func ExpandIndicesInto(dst []int32, rows []int, reduction, stripes int) []int32 {
	if reduction <= 0 {
		reduction = 1
	}
	groups := len(rows) / reduction
	start := len(dst)
	for g := 0; g < groups; g++ {
		for s := 0; s < stripes; s++ {
			for j := 0; j < reduction; j++ {
				dst = append(dst, int32(rows[g*reduction+j]*stripes+s))
			}
		}
	}
	// Tail rows that do not fill a whole group expand row-major.
	for _, r := range rows[groups*reduction:] {
		for s := 0; s < stripes; s++ {
			dst = append(dst, int32(r*stripes+s))
		}
	}
	for (len(dst)-start)%isa.LanesPerBlock != 0 {
		pad := int32(0)
		if len(dst) > start {
			pad = dst[len(dst)-1]
		}
		dst = append(dst, pad)
	}
	return dst
}

// CompileTable builds the TensorISA program for one table's embedding stage
// of a batch against the deployment's first scratch lane and output slot.
// It exists for inspection and tests; executions go through RunEmbedding,
// which compiles against whichever lane and slot it acquired. The compile
// runs on a private host scratch, so it never races the lane workers.
func (d *Deployment) CompileTable(t int, rows []int, batch int) (isa.Program, []int32, error) {
	ln := &scratchLane{idxBase: d.lanes[0].idxBase, gatherBase: d.lanes[0].gatherBase}
	return d.compileTable(t, rows, batch, ln, d.outBase[0])
}

// compileTable builds one table's program against an explicit scratch lane
// and output region: a GATHER (after the runtime loads the expanded index
// list into the lane's shared region) followed by the pooling pass, writing
// the pooled rows for table t at outBase + t*batch*embBytes.
//
// Pooling lowers as follows (Table 2 workloads):
//   - reduction == 1: GATHER directly into the output region;
//   - Mean pooling:   GATHER + one AVERAGE (Figure 9(c));
//   - 2-way reduce:   two GATHERs (group members split across the two
//     scratch operands) + one REDUCE with the configured operator;
//   - N-way non-mean reduce lowers to a REDUCE chain and is rejected here
//     (none of the paper's workloads need it).
func (d *Deployment) compileTable(t int, rows []int, batch int, ln *scratchLane, out uint64) (isa.Program, []int32, error) {
	cfg := d.Model.Cfg
	if len(rows) != batch*cfg.Reduction {
		return nil, nil, fmt.Errorf("runtime: table %d: %d rows for batch %d x reduction %d",
			t, len(rows), batch, cfg.Reduction)
	}
	outBase := (out + uint64(t)*d.outStride(batch)) / isa.BlockBytes
	tableBase := d.tableBase[t] / isa.BlockBytes
	idxBase := ln.idxBase / isa.BlockBytes
	k := uint32(d.stripes)

	switch {
	case cfg.Reduction == 1:
		ln.idx = ExpandIndicesInto(ln.idx[:0], rows, 1, d.stripes)
		ln.prog = append(ln.prog[:0],
			isa.Gather(tableBase, idxBase, outBase, uint32(len(ln.idx))))
		return ln.prog, ln.idx, nil

	case cfg.Mean:
		ln.idx = ExpandIndicesInto(ln.idx[:0], rows, cfg.Reduction, d.stripes)
		g := ln.gatherBase[0] / isa.BlockBytes
		ln.prog = append(ln.prog[:0],
			isa.Gather(tableBase, idxBase, g, uint32(len(ln.idx))),
			isa.Average(g, uint32(cfg.Reduction), outBase, uint32(batch)*k))
		return ln.prog, ln.idx, nil

	case cfg.Reduction == 2:
		// Split group members: even members then odd members, each
		// row-major, so REDUCE combines positionally. Both halves expand
		// into one scratch buffer — each padded independently, exactly as
		// two standalone expansions concatenated, but without the two
		// intermediate slices.
		ln.rowsA, ln.rowsB = ln.rowsA[:0], ln.rowsB[:0]
		for g := 0; g < batch; g++ {
			ln.rowsA = append(ln.rowsA, rows[2*g])
			ln.rowsB = append(ln.rowsB, rows[2*g+1])
		}
		ln.idx = ExpandIndicesInto(ln.idx[:0], ln.rowsA, 1, d.stripes)
		countA := uint32(len(ln.idx))
		ln.idx = ExpandIndicesInto(ln.idx, ln.rowsB, 1, d.stripes)
		ga := ln.gatherBase[0] / isa.BlockBytes
		gb := ln.gatherBase[1] / isa.BlockBytes
		ln.prog = append(ln.prog[:0],
			isa.Gather(tableBase, idxBase, ga, countA),
			isa.Gather(tableBase, idxBase+uint64(countA)/isa.LanesPerBlock, gb, countA),
			isa.Reduce(cfg.Op, ga, gb, outBase, uint32(batch)*k))
		return ln.prog, ln.idx, nil

	default:
		return nil, nil, fmt.Errorf("runtime: %d-way non-mean reduction not supported by TensorISA lowering", cfg.Reduction)
	}
}

// outStride returns the byte spacing between consecutive tables' segments
// of an output region for the given batch: the live rows plus the padding
// slack that absorbs GATHER's rounded-up index count.
func (d *Deployment) outStride(batch int) uint64 {
	return uint64(batch)*uint64(d.Model.Cfg.EmbBytes()) + d.padSlack
}

// runTable executes one table's embedding stage on a scratch lane: compile,
// broadcast the index list into the lane's shared region, execute.
func (d *Deployment) runTable(ln *scratchLane, out uint64, t int, rows []int, batch int) error {
	prog, idx, err := d.compileTable(t, rows, batch, ln, out)
	if err != nil {
		return err
	}
	if err := d.Node.LoadIndices(ln.idxBase, idx); err != nil {
		return err
	}
	return d.Node.Execute(prog)
}

// RunEmbedding executes the full embedding layer near-memory and returns the
// pooled, concatenated [batch, tables*dim] tensor (the data a GPU would copy
// back over NVLink). Results are bit-identical to the golden model.
//
// The call acquires one execution slot for the whole batch (blocking if all
// slots are busy) and fans the per-table programs out across the free
// scratch lanes, so tables execute concurrently when the deployment was
// sized with more than one lane.
func (d *Deployment) RunEmbedding(perTableRows [][]int, batch int) (*tensor.Tensor, error) {
	cfg := d.Model.Cfg
	if batch < 0 || batch > d.maxBatch {
		return nil, fmt.Errorf("runtime: batch %d exceeds deployment maxBatch %d", batch, d.maxBatch)
	}
	dst := make([]float32, batch*cfg.Tables*cfg.EmbDim)
	if err := d.RunEmbeddingInto(dst, perTableRows, batch); err != nil {
		return nil, err
	}
	return tensor.FromSlice(dst, batch, cfg.Tables*cfg.EmbDim)
}

// RunEmbeddingInto is RunEmbedding writing the pooled [batch, tables*dim]
// tensor row-major into a caller-provided buffer, whose length must be
// exactly batch*tables*dim. It is the zero-allocation variant of the hot
// serving path: the caller owns dst for the duration of the call and may
// reuse it across calls; the deployment never retains a reference to it.
func (d *Deployment) RunEmbeddingInto(dst []float32, perTableRows [][]int, batch int) error {
	cfg := d.Model.Cfg
	if err := d.enter(); err != nil {
		return err
	}
	defer d.inflight.Done()
	if batch > d.maxBatch {
		return fmt.Errorf("runtime: batch %d exceeds deployment maxBatch %d", batch, d.maxBatch)
	}
	if len(perTableRows) != cfg.Tables {
		return fmt.Errorf("runtime: %d index lists for %d tables", len(perTableRows), cfg.Tables)
	}
	width := cfg.Tables * cfg.EmbDim
	if len(dst) != batch*width {
		return fmt.Errorf("runtime: destination holds %d floats, batch %d needs %d", len(dst), batch, batch*width)
	}
	slot := <-d.freeSlot
	defer func() { d.freeSlot <- slot }()
	out := d.outBase[slot]
	sc := &d.slots[slot]

	sc.wg.Add(cfg.Tables)
	for t := 0; t < cfg.Tables; t++ {
		j := &sc.jobs[t]
		j.kind, j.t, j.rows, j.batch, j.out, j.err = jobGather, t, perTableRows[t], batch, out, nil
		d.work <- j
	}
	sc.wg.Wait()
	for t := range sc.jobs {
		if err := sc.jobs[t].err; err != nil {
			return err
		}
	}

	// Read back each table's pooled segment directly into its column strip
	// of dst: row i of table t lands at dst[i*width + t*dim].
	embBytes := uint64(cfg.EmbBytes())
	for t := 0; t < cfg.Tables; t++ {
		base := out + uint64(t)*d.outStride(batch)
		for i := 0; i < batch; i++ {
			seg := dst[i*width+t*cfg.EmbDim : i*width+(t+1)*cfg.EmbDim]
			if err := d.Node.ReadFloatsInto(base+uint64(i)*embBytes, seg); err != nil {
				return err
			}
		}
	}
	return nil
}

// Infer runs a full inference with the embedding stage near-memory and the
// DNN stage on the (simulated) GPU: functionally identical to
// Model.Infer, with the embedding tensor produced by the TensorNode.
func (d *Deployment) Infer(perTableRows [][]int, batch int) (*tensor.Tensor, error) {
	x, err := d.RunEmbedding(perTableRows, batch)
	if err != nil {
		return nil, err
	}
	return d.Model.InferFromEmbeddings(x)
}

// GoldenEmbedding computes the reference embedding output for comparison.
func (d *Deployment) GoldenEmbedding(perTableRows [][]int, batch int) (*tensor.Tensor, error) {
	return d.Model.Embedding.Forward(perTableRows, batch)
}

// TableUpdate is one table's slice of an online update batch: gradient rows
// to accumulate into the table via near-memory SCATTER_ADD. Grads must be a
// [len(Rows), EmbDim] tensor; Rows may contain duplicates, which accumulate
// in order.
type TableUpdate struct {
	// Table is the target embedding table index.
	Table int
	// Rows lists the target row of each gradient (duplicates allowed).
	Rows []int
	// Grads holds one gradient row per entry of Rows.
	Grads *tensor.Tensor
}

// UpdateTable applies per-row gradient accumulation to table t near-memory
// via the SCATTER_ADD extension: table[rows[i]] += grads.Row(i). It is
// ApplyUpdates for a single table; see there for the ordering contract.
func (d *Deployment) UpdateTable(t int, rows []int, grads *tensor.Tensor) error {
	return d.ApplyUpdates([]TableUpdate{{Table: t, Rows: rows, Grads: grads}})
}

// ApplyUpdates applies a batch of per-table gradient updates near-memory:
// for every entry, table[Rows[i]] += Grads.Row(i) via SCATTER_ADD. The
// whole batch is validated before anything executes, so an invalid entry
// leaves every table untouched.
//
// Concurrency and ordering. Updates to distinct tables fan out across the
// deployment's scratch lanes and execute concurrently — tables occupy
// disjoint row-ranges of the pool, so they commute. Updates to the same
// table are serialized (in slice order within one call, and in lock
// acquisition order across concurrent calls): float accumulation is not
// associative, so per-row-range ordering is what keeps the node table
// bit-identical to the write-through golden table, which is updated under
// the same per-table lock.
//
// An update races with concurrent inferences reading the same table —
// exactly as asynchronous training against a live serving replica would.
// Ordering between a racing read and update is per stripe (each DIMM's
// NMP core serializes its own execution): a read of a row that spans
// multiple stripes may observe some stripes pre-update and some post.
// Reads issued after ApplyUpdates returns observe the whole update;
// callers that need consistent snapshots during updates must quiesce
// first.
func (d *Deployment) ApplyUpdates(ups []TableUpdate) error {
	return d.applyUpdates(ups, true)
}

// ApplyUpdatesToNode is ApplyUpdates without the write-through to the
// host-side golden tables. It exists for replica fan-out: when several
// deployments share one *recsys.Model (replicas of the same model across
// pools), the golden tables must absorb each update exactly once —
// ApplyUpdates on the first replica, ApplyUpdatesToNode on the rest.
func (d *Deployment) ApplyUpdatesToNode(ups []TableUpdate) error {
	return d.applyUpdates(ups, false)
}

// RestoreRows overwrites rows of table t with absolute values (vals holds
// len(rows) embeddings, row-major) on both the node table and the golden
// write-through copy. It is the snapshot-install primitive of the
// durability plane: unlike ApplyUpdates it does not accumulate, so it can
// reseat a replica from a full-table snapshot without replaying the update
// history that produced it. Rows are written in slice order under the
// table's update lock, serializing against in-flight SCATTER_ADDs.
func (d *Deployment) RestoreRows(t int, rows []int, vals []float32) error {
	return d.restoreRows(t, rows, vals, true)
}

// RestoreRowsToNode is RestoreRows without the golden write-through, for
// replica fan-out over a shared *recsys.Model — the same split as
// ApplyUpdates / ApplyUpdatesToNode.
func (d *Deployment) RestoreRowsToNode(t int, rows []int, vals []float32) error {
	return d.restoreRows(t, rows, vals, false)
}

func (d *Deployment) restoreRows(t int, rows []int, vals []float32, writeThrough bool) error {
	cfg := d.Model.Cfg
	if t < 0 || t >= cfg.Tables {
		return fmt.Errorf("runtime: restore: table %d out of range", t)
	}
	if len(vals) != len(rows)*cfg.EmbDim {
		return fmt.Errorf("runtime: restore: %d values for %d rows of dim %d", len(vals), len(rows), cfg.EmbDim)
	}
	tb := d.Model.Embedding.Tables[t]
	for _, r := range rows {
		if r < 0 || r >= tb.Rows() {
			return fmt.Errorf("runtime: restore: row %d out of range [0, %d)", r, tb.Rows())
		}
	}
	if err := d.enter(); err != nil {
		return err
	}
	defer d.inflight.Done()
	embBytes := uint64(cfg.EmbBytes())
	d.tableMu[t].Lock()
	defer d.tableMu[t].Unlock()
	for i, r := range rows {
		src := vals[i*cfg.EmbDim : (i+1)*cfg.EmbDim]
		if err := d.Node.WriteFloats(d.tableBase[t]+uint64(r)*embBytes, src); err != nil {
			return fmt.Errorf("runtime: restore row %d: %w", r, err)
		}
		if writeThrough {
			copy(tb.Row(r), src)
		}
	}
	return nil
}

// GroupUpdatesByTable splits an update batch into per-table groups,
// preserving slice order within each table, and returns the tables in
// first-appearance order. It is the single authoritative grouping for the
// write path — the runtime and the cluster router both use it, so their
// per-table orderings (part of the golden bit-identity contract) can
// never diverge.
func GroupUpdatesByTable(ups []TableUpdate) ([]int, map[int][]TableUpdate) {
	groups := make(map[int][]TableUpdate)
	order := make([]int, 0, len(ups))
	for _, up := range ups {
		if _, seen := groups[up.Table]; !seen {
			order = append(order, up.Table)
		}
		groups[up.Table] = append(groups[up.Table], up)
	}
	return order, groups
}

// AccumulateGolden applies one update to a host-side golden table in slice
// order: table[Rows[i]] += Grads.Row(i). It is the single authoritative
// write-through accumulation shared by the runtime's deployments and the
// cluster's top-level golden model; float addition is order-sensitive, so
// a second implementation could silently break bit-identity.
func AccumulateGolden(table *embed.Table, up TableUpdate) {
	for i, r := range up.Rows {
		dst := table.Row(r)
		src := up.Grads.Row(i)
		for k := range dst {
			dst[k] += src[k]
		}
	}
}

// applyUpdates validates the whole batch, groups it by table, and fans the
// per-table groups out across scratch lanes, each group under its table's
// update lock.
func (d *Deployment) applyUpdates(ups []TableUpdate, writeThrough bool) error {
	cfg := d.Model.Cfg
	if err := d.enter(); err != nil {
		return err
	}
	defer d.inflight.Done()
	for i, up := range ups {
		if up.Table < 0 || up.Table >= cfg.Tables {
			return fmt.Errorf("runtime: update %d: table %d out of range", i, up.Table)
		}
		if up.Grads == nil || up.Grads.Rank() != 2 || up.Grads.Dim(0) != len(up.Rows) || up.Grads.Dim(1) != cfg.EmbDim {
			return fmt.Errorf("runtime: update %d: gradient shape for %d rows of dim %d", i, len(up.Rows), cfg.EmbDim)
		}
		for _, r := range up.Rows {
			if r < 0 || r >= d.Model.Embedding.Tables[up.Table].Rows() {
				return fmt.Errorf("runtime: update %d: row %d out of range [0, %d)",
					i, r, d.Model.Embedding.Tables[up.Table].Rows())
			}
		}
		// Capacity check against the PADDED stripe count: ExpandIndices
		// rounds up to a whole 16-index block and the zero staging in
		// scatterTable writes a stripe for every padded slot, so the bound
		// must cover the rounding or the zeros spill past the scratch.
		padded := (len(up.Rows)*d.stripes + isa.LanesPerBlock - 1) / isa.LanesPerBlock * isa.LanesPerBlock
		if padded > (d.maxBatch*cfg.Reduction*d.stripes)+isa.LanesPerBlock {
			return fmt.Errorf("runtime: update %d: %d gradient rows exceed scratch capacity", i, len(up.Rows))
		}
	}

	order, groups := GroupUpdatesByTable(ups)
	errs := make([]error, len(order))
	var wg sync.WaitGroup
	for gi, t := range order {
		wg.Add(1)
		go func(gi, t int) {
			defer wg.Done()
			d.tableMu[t].Lock()
			defer d.tableMu[t].Unlock()
			for _, up := range groups[t] {
				// Scatter through a lane worker: the worker stages the
				// gradients and indices on its own lane, so concurrent
				// table groups use disjoint scratch.
				var jwg sync.WaitGroup
				job := laneJob{kind: jobScatter, up: up, wg: &jwg}
				jwg.Add(1)
				d.work <- &job
				jwg.Wait()
				if job.err != nil {
					errs[gi] = job.err
					return
				}
				if writeThrough {
					AccumulateGolden(d.Model.Embedding.Tables[t], up)
				}
			}
		}(gi, t)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// zeroLanes is one index block's worth of zero gradient elements, used to
// neutralize SCATTER_ADD padding without a per-update allocation.
var zeroLanes [isa.LanesPerBlock]float32

// scatterTable stages one validated table update into a scratch lane and
// executes its SCATTER_ADD program: gradients into the lane's gather
// scratch (the NVLink copy a training step would perform), expanded stripe
// indices into the lane's index region, then one near-memory accumulate.
func (d *Deployment) scatterTable(ln *scratchLane, up TableUpdate) error {
	// Stage gradients into the lane's gather scratch, row-major.
	embBytes := uint64(d.Model.Cfg.EmbBytes())
	for i := 0; i < len(up.Rows); i++ {
		if err := d.Node.WriteFloats(ln.gatherBase[0]+uint64(i)*embBytes, up.Grads.Row(i)); err != nil {
			return fmt.Errorf("runtime: stage gradient %d: %w", i, err)
		}
	}
	ln.idx = ExpandIndicesInto(ln.idx[:0], up.Rows, 1, d.stripes)
	idx := ln.idx
	if err := d.Node.LoadIndices(ln.idxBase, idx); err != nil {
		return err
	}
	// Padding repeats the last stripe index; compensate by staging zero
	// gradients for the padded slots so the extra accumulations are no-ops.
	realStripes := len(up.Rows) * d.stripes
	stripeBytes := d.Node.StripeBytes()
	for s := realStripes; s < len(idx); s++ {
		for off := uint64(0); off < stripeBytes; off += 64 {
			if err := d.Node.WriteFloats(ln.gatherBase[0]+uint64(s)*stripeBytes+off, zeroLanes[:]); err != nil {
				return err
			}
		}
	}
	prog := isa.Program{
		isa.ScatterAdd(d.tableBase[up.Table]/isa.BlockBytes, ln.idxBase/isa.BlockBytes,
			ln.gatherBase[0]/isa.BlockBytes, uint32(len(idx))),
	}
	return d.Node.Execute(prog)
}
