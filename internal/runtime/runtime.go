// Package runtime implements the software runtime of Section 4.4: it deploys
// recommender models onto a TensorNode (remote pool allocation, striped
// table upload), compiles embedding layers into TensorISA programs (the
// GATHER / REDUCE / AVERAGE sequences of Figure 2), broadcasts them for
// near-memory execution, and reads back the pooled tensor the GPU would
// receive over NVLink.
//
// Index expansion. TensorISA addresses tensors in stripes (one 64-byte block
// per TensorDIMM). When an embedding spans k stripes (dimension larger than
// nodeDim x 16 elements), the runtime expands each logical row index into k
// stripe indices. Within a pooling group the expansion is stripe-transposed
// — group-major, then stripe, then group member — which is exactly the
// layout that makes the paper's AVERAGE addressing (Figure 9(c), input
// i*averageNum+j) pool corresponding stripes of the group's embeddings.
package runtime

import (
	"fmt"

	"tensordimm/internal/isa"
	"tensordimm/internal/node"
	"tensordimm/internal/recsys"
	"tensordimm/internal/tensor"
)

// Deployment is a recommender model resident in a TensorNode pool.
type Deployment struct {
	Model *recsys.Model
	Node  *node.Node

	tableBase  []uint64 // pool byte address of each table
	stripes    int      // stripes per embedding (k)
	idxBase    uint64   // shared-region byte address for index lists
	gatherBase []uint64 // scratch for gathered tensors (per operand)
	outBase    uint64   // pooled output tensor
	maxBatch   int
}

// Deploy uploads the model's embedding tables into the node (striped across
// all TensorDIMMs) and pre-allocates the scratch regions for batches up to
// maxBatch. It exercises the remote-pool allocation APIs ([39]).
func Deploy(m *recsys.Model, nd *node.Node, maxBatch int) (*Deployment, error) {
	cfg := m.Cfg
	embBytes := int(cfg.EmbBytes())
	stripeBytes := int(nd.StripeBytes())
	if embBytes%stripeBytes != 0 {
		return nil, fmt.Errorf("runtime: embedding size %d B is not a multiple of the node stripe %d B",
			embBytes, stripeBytes)
	}
	if maxBatch <= 0 {
		return nil, fmt.Errorf("runtime: maxBatch must be positive")
	}
	d := &Deployment{
		Model:    m,
		Node:     nd,
		stripes:  embBytes / stripeBytes,
		idxBase:  0,
		maxBatch: maxBatch,
	}

	// Upload tables.
	for t, tb := range m.Embedding.Tables {
		base, err := nd.Alloc(uint64(tb.Bytes()))
		if err != nil {
			return nil, fmt.Errorf("runtime: alloc table %d: %w", t, err)
		}
		for r := 0; r < tb.Rows(); r++ {
			off := base + uint64(r)*uint64(embBytes)
			if err := nd.WriteFloats(off, tb.Row(r)); err != nil {
				return nil, fmt.Errorf("runtime: upload table %d row %d: %w", t, r, err)
			}
		}
		d.tableBase = append(d.tableBase, base)
	}

	// Scratch: two gather operand buffers (enough for pairwise REDUCE) and
	// the pooled output. Sized for the worst case — a full batch of
	// reduction-many embeddings per table — plus one index block of
	// padding slack (GATHER counts are rounded up to 16 and the padded
	// stripes land just past the live region).
	padSlack := uint64(isa.LanesPerBlock * stripeBytes)
	gatherBytes := uint64(maxBatch)*uint64(cfg.Reduction)*uint64(embBytes) + padSlack
	for i := 0; i < 2; i++ {
		b, err := nd.Alloc(gatherBytes)
		if err != nil {
			return nil, fmt.Errorf("runtime: alloc gather scratch: %w", err)
		}
		d.gatherBase = append(d.gatherBase, b)
	}
	out, err := nd.Alloc(uint64(maxBatch)*uint64(cfg.Tables)*uint64(embBytes) + padSlack)
	if err != nil {
		return nil, fmt.Errorf("runtime: alloc output: %w", err)
	}
	d.outBase = out
	return d, nil
}

// Release frees all pool allocations of the deployment.
func (d *Deployment) Release() error {
	for _, b := range d.tableBase {
		if err := d.Node.Free(b); err != nil {
			return err
		}
	}
	for _, b := range d.gatherBase {
		if err := d.Node.Free(b); err != nil {
			return err
		}
	}
	return d.Node.Free(d.outBase)
}

// Stripes returns the number of stripes per embedding under this node.
func (d *Deployment) Stripes() int { return d.stripes }

// ExpandIndices expands logical row indices into stripe indices for GATHER,
// stripe-transposed within pooling groups of size `reduction` (see the
// package comment), and pads the result to a whole index block (multiple of
// 16) by repeating the last stripe index (the padded outputs land beyond the
// consumed region and are ignored).
func ExpandIndices(rows []int, reduction, stripes int) []int32 {
	if reduction <= 0 {
		reduction = 1
	}
	groups := len(rows) / reduction
	out := make([]int32, 0, len(rows)*stripes+isa.LanesPerBlock)
	for g := 0; g < groups; g++ {
		for s := 0; s < stripes; s++ {
			for j := 0; j < reduction; j++ {
				out = append(out, int32(rows[g*reduction+j]*stripes+s))
			}
		}
	}
	// Tail rows that do not fill a whole group expand row-major.
	for _, r := range rows[groups*reduction:] {
		for s := 0; s < stripes; s++ {
			out = append(out, int32(r*stripes+s))
		}
	}
	for len(out)%isa.LanesPerBlock != 0 {
		pad := int32(0)
		if len(out) > 0 {
			pad = out[len(out)-1]
		}
		out = append(out, pad)
	}
	return out
}

// CompileTable builds the TensorISA program for one table's embedding stage
// of a batch: a GATHER (after the runtime loads the expanded index list into
// the shared region) followed by the pooling pass, writing the pooled rows
// for table t at outBase + t*batch*embBytes.
//
// Pooling lowers as follows (Table 2 workloads):
//   - reduction == 1: GATHER directly into the output region;
//   - Mean pooling:   GATHER + one AVERAGE (Figure 9(c));
//   - 2-way reduce:   two GATHERs (group members split across the two
//     scratch operands) + one REDUCE with the configured operator;
//   - N-way non-mean reduce lowers to a REDUCE chain and is rejected here
//     (none of the paper's workloads need it).
func (d *Deployment) CompileTable(t int, rows []int, batch int) (isa.Program, []int32, error) {
	cfg := d.Model.Cfg
	if len(rows) != batch*cfg.Reduction {
		return nil, nil, fmt.Errorf("runtime: table %d: %d rows for batch %d x reduction %d",
			t, len(rows), batch, cfg.Reduction)
	}
	embBytes := uint64(cfg.EmbBytes())
	outBase := (d.outBase + uint64(t)*uint64(batch)*embBytes) / isa.BlockBytes
	tableBase := d.tableBase[t] / isa.BlockBytes
	idxBase := d.idxBase / isa.BlockBytes
	k := uint32(d.stripes)

	switch {
	case cfg.Reduction == 1:
		idx := ExpandIndices(rows, 1, d.stripes)
		return isa.Program{
			isa.Gather(tableBase, idxBase, outBase, uint32(len(idx))),
		}, idx, nil

	case cfg.Mean:
		idx := ExpandIndices(rows, cfg.Reduction, d.stripes)
		g := d.gatherBase[0] / isa.BlockBytes
		return isa.Program{
			isa.Gather(tableBase, idxBase, g, uint32(len(idx))),
			isa.Average(g, uint32(cfg.Reduction), outBase, uint32(batch)*k),
		}, idx, nil

	case cfg.Reduction == 2:
		// Split group members: even members then odd members, each
		// row-major, so REDUCE combines positionally.
		a := make([]int, batch)
		b := make([]int, batch)
		for g := 0; g < batch; g++ {
			a[g], b[g] = rows[2*g], rows[2*g+1]
		}
		idx := append(ExpandIndices(a, 1, d.stripes), ExpandIndices(b, 1, d.stripes)...)
		ga := d.gatherBase[0] / isa.BlockBytes
		gb := d.gatherBase[1] / isa.BlockBytes
		countA := uint32(len(idx) / 2)
		return isa.Program{
			isa.Gather(tableBase, idxBase, ga, countA),
			isa.Gather(tableBase, idxBase+uint64(countA)/isa.LanesPerBlock, gb, countA),
			isa.Reduce(cfg.Op, ga, gb, outBase, uint32(batch)*k),
		}, idx, nil

	default:
		return nil, nil, fmt.Errorf("runtime: %d-way non-mean reduction not supported by TensorISA lowering", cfg.Reduction)
	}
}

// RunEmbedding executes the full embedding layer near-memory and returns the
// pooled, concatenated [batch, tables*dim] tensor (the data a GPU would copy
// back over NVLink). Results are bit-identical to the golden model.
func (d *Deployment) RunEmbedding(perTableRows [][]int, batch int) (*tensor.Tensor, error) {
	cfg := d.Model.Cfg
	if batch > d.maxBatch {
		return nil, fmt.Errorf("runtime: batch %d exceeds deployment maxBatch %d", batch, d.maxBatch)
	}
	if len(perTableRows) != cfg.Tables {
		return nil, fmt.Errorf("runtime: %d index lists for %d tables", len(perTableRows), cfg.Tables)
	}
	perTable := make([]*tensor.Tensor, cfg.Tables)
	for t := 0; t < cfg.Tables; t++ {
		prog, idx, err := d.CompileTable(t, perTableRows[t], batch)
		if err != nil {
			return nil, err
		}
		if err := d.Node.LoadIndices(d.idxBase, idx); err != nil {
			return nil, err
		}
		if err := d.Node.Execute(prog); err != nil {
			return nil, err
		}
		vals, err := d.Node.ReadFloats(d.outBase+uint64(t)*uint64(batch)*uint64(cfg.EmbBytes()), batch*cfg.EmbDim)
		if err != nil {
			return nil, err
		}
		perTable[t], err = tensor.FromSlice(vals, batch, cfg.EmbDim)
		if err != nil {
			return nil, err
		}
	}
	return tensor.ConcatRows(perTable...)
}

// Infer runs a full inference with the embedding stage near-memory and the
// DNN stage on the (simulated) GPU: functionally identical to
// Model.Infer, with the embedding tensor produced by the TensorNode.
func (d *Deployment) Infer(perTableRows [][]int, batch int) (*tensor.Tensor, error) {
	x, err := d.RunEmbedding(perTableRows, batch)
	if err != nil {
		return nil, err
	}
	return d.Model.InferFromEmbeddings(x)
}

// GoldenEmbedding computes the reference embedding output for comparison.
func (d *Deployment) GoldenEmbedding(perTableRows [][]int, batch int) (*tensor.Tensor, error) {
	return d.Model.Embedding.Forward(perTableRows, batch)
}

// UpdateTable applies per-row gradient accumulation to table t near-memory
// via the SCATTER_ADD extension: table[rows[i]] += grads.Row(i). The
// gradient tensor is staged into pool scratch (the NVLink copy a training
// step would perform), the update executes on the NMP cores, and the
// host-side golden table is updated write-through so model and node stay
// consistent. Duplicate rows accumulate in order.
func (d *Deployment) UpdateTable(t int, rows []int, grads *tensor.Tensor) error {
	cfg := d.Model.Cfg
	if t < 0 || t >= cfg.Tables {
		return fmt.Errorf("runtime: table %d out of range", t)
	}
	if grads.Rank() != 2 || grads.Dim(0) != len(rows) || grads.Dim(1) != cfg.EmbDim {
		return fmt.Errorf("runtime: gradient shape %v for %d rows of dim %d", grads.Shape(), len(rows), cfg.EmbDim)
	}
	if len(rows)*d.stripes > (d.maxBatch*cfg.Reduction*d.stripes)+isa.LanesPerBlock {
		return fmt.Errorf("runtime: %d gradient rows exceed scratch capacity", len(rows))
	}
	// Stage gradients into the gather scratch buffer, row-major.
	embBytes := uint64(cfg.EmbBytes())
	for i := 0; i < len(rows); i++ {
		if err := d.Node.WriteFloats(d.gatherBase[0]+uint64(i)*embBytes, grads.Row(i)); err != nil {
			return fmt.Errorf("runtime: stage gradient %d: %w", i, err)
		}
	}
	idx := ExpandIndices(rows, 1, d.stripes)
	if err := d.Node.LoadIndices(d.idxBase, idx); err != nil {
		return err
	}
	// Padding repeats the last stripe index; compensate by staging zero
	// gradients for the padded slots so the extra accumulations are no-ops.
	realStripes := len(rows) * d.stripes
	zero := make([]float32, isa.LanesPerBlock)
	stripeBytes := d.Node.StripeBytes()
	for s := realStripes; s < len(idx); s++ {
		for off := uint64(0); off < stripeBytes; off += 64 {
			if err := d.Node.WriteFloats(d.gatherBase[0]+uint64(s)*stripeBytes+off, zero); err != nil {
				return err
			}
		}
	}
	prog := isa.Program{
		isa.ScatterAdd(d.tableBase[t]/isa.BlockBytes, d.idxBase/isa.BlockBytes,
			d.gatherBase[0]/isa.BlockBytes, uint32(len(idx))),
	}
	if err := d.Node.Execute(prog); err != nil {
		return err
	}
	// Write-through to the golden table.
	table := d.Model.Embedding.Tables[t]
	for i, r := range rows {
		dst := table.Row(r)
		src := grads.Row(i)
		for k := range dst {
			dst[k] += src[k]
		}
	}
	return nil
}
