package runtime

import (
	"fmt"
	"sync"
	"testing"

	"tensordimm/internal/isa"
	"tensordimm/internal/node"
	"tensordimm/internal/recsys"
	"tensordimm/internal/tensor"
	"tensordimm/internal/workload"
)

// smallConfig returns a test-sized model config. dim must be a multiple of
// nodeDim*16 elements (stripe) for the given node.
func smallConfig(name string, tables, reduction, dim int, mean bool, op isa.ReduceOp) recsys.Config {
	return recsys.Config{
		Name: name, Tables: tables, Reduction: reduction, FCLayers: 2,
		EmbDim: dim, TableRows: 200, Hidden: []int{16, 8},
		Op: op, Mean: mean,
	}
}

func newNode(t *testing.T, dimms int) *node.Node {
	t.Helper()
	n, err := node.New(node.Config{DIMMs: dimms, PerDIMMBytes: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func deploy(t *testing.T, cfg recsys.Config, dimms, maxBatch int) *Deployment {
	t.Helper()
	m, err := recsys.Build(cfg, 77)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Deploy(m, newNode(t, dimms), maxBatch)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDeployValidation(t *testing.T) {
	// dim 100 floats = 400 B is not a multiple of an 8-DIMM stripe (512 B).
	cfg := smallConfig("bad", 1, 1, 100, false, isa.RAdd)
	m, err := recsys.Build(cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Deploy(m, newNode(t, 8), 4); err == nil {
		t.Fatal("want stripe-mismatch error")
	}
	good := smallConfig("good", 1, 1, 128, false, isa.RAdd)
	gm, _ := recsys.Build(good, 1)
	if _, err := Deploy(gm, newNode(t, 8), 0); err == nil {
		t.Fatal("want maxBatch error")
	}
}

func TestExpandIndicesSingleStripe(t *testing.T) {
	idx := ExpandIndices([]int{5, 9, 2, 7}, 2, 1)
	// Groups (5,9) and (2,7), k=1: order unchanged, padded to 16.
	if len(idx) != 16 {
		t.Fatalf("len = %d, want padded 16", len(idx))
	}
	want := []int32{5, 9, 2, 7}
	for i, w := range want {
		if idx[i] != w {
			t.Fatalf("idx[%d] = %d, want %d", i, idx[i], w)
		}
	}
	for _, p := range idx[4:] {
		if p != 7 {
			t.Fatalf("padding = %d, want repeat of last index", p)
		}
	}
}

func TestExpandIndicesStripeTransposed(t *testing.T) {
	// Two groups of two rows, k=2 stripes: within each group the order must
	// be stripe-major: (r0s0, r1s0, r0s1, r1s1).
	idx := ExpandIndices([]int{3, 4, 8, 9}, 2, 2)
	want := []int32{6, 8, 7, 9, 16, 18, 17, 19}
	for i, w := range want {
		if idx[i] != w {
			t.Fatalf("idx[%d] = %d, want %d (full: %v)", i, idx[i], w, idx[:8])
		}
	}
}

func TestExpandIndicesDefensive(t *testing.T) {
	if got := ExpandIndices([]int{1, 2, 3}, 0, 1); len(got)%16 != 0 {
		t.Fatal("reduction 0 must behave as 1 and pad")
	}
	// Tail rows beyond whole groups expand row-major.
	idx := ExpandIndices([]int{1, 2, 3}, 2, 2)
	want := []int32{2, 4, 3, 5, 6, 7}
	for i, w := range want {
		if idx[i] != w {
			t.Fatalf("idx[%d] = %d, want %d", i, idx[i], w)
		}
	}
}

// checkMatchesGolden deploys a model, runs the embedding layer near-memory
// and verifies bit-identity with the golden model.
func checkMatchesGolden(t *testing.T, cfg recsys.Config, dimms, batch int) {
	t.Helper()
	d := deploy(t, cfg, dimms, batch)
	gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, 5)
	rows := gen.Batch(cfg.Tables, batch, cfg.Reduction)

	got, err := d.RunEmbedding(rows, batch)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.GoldenEmbedding(rows, batch)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(got, want) {
		t.Fatal("near-memory embedding differs from golden model")
	}
}

func TestMeanPoolingMatchesGolden(t *testing.T) {
	// YouTube-style: mean pooling, one stripe per embedding (8 DIMMs x 16
	// lanes = 128 elements).
	cfg := smallConfig("yt", 2, 10, 128, true, isa.RAdd)
	checkMatchesGolden(t, cfg, 8, 4)
}

func TestMeanPoolingMultiStripe(t *testing.T) {
	// dim 256 on 8 DIMMs = 2 stripes per embedding.
	cfg := smallConfig("yt2", 2, 5, 256, true, isa.RAdd)
	checkMatchesGolden(t, cfg, 8, 3)
}

func TestPairwiseMulMatchesGolden(t *testing.T) {
	// NCF-style GMF: 2-way element-wise product via two GATHERs + REDUCE.
	cfg := smallConfig("ncf", 2, 2, 128, false, isa.RMul)
	checkMatchesGolden(t, cfg, 8, 4)
}

func TestPairwiseMultiStripe(t *testing.T) {
	cfg := smallConfig("ncf2", 1, 2, 512, false, isa.RMul)
	checkMatchesGolden(t, cfg, 4, 5)
}

func TestNoReduction(t *testing.T) {
	cfg := smallConfig("plain", 3, 1, 128, false, isa.RAdd)
	checkMatchesGolden(t, cfg, 8, 6)
}

func TestUnsupportedLowering(t *testing.T) {
	cfg := smallConfig("bad", 1, 5, 128, false, isa.RAdd) // 5-way non-mean
	d := deploy(t, cfg, 8, 2)
	gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, 1)
	rows := gen.Batch(1, 2, 5)
	if _, err := d.RunEmbedding(rows, 2); err == nil {
		t.Fatal("want lowering error for N-way non-mean reduce")
	}
}

func TestBatchLimits(t *testing.T) {
	cfg := smallConfig("lim", 1, 2, 128, true, isa.RAdd)
	d := deploy(t, cfg, 8, 2)
	gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, 1)
	if _, err := d.RunEmbedding(gen.Batch(1, 4, 2), 4); err == nil {
		t.Fatal("want batch > maxBatch error")
	}
	if _, err := d.RunEmbedding([][]int{{1, 2}, {3, 4}}, 1); err == nil {
		t.Fatal("want table-count error")
	}
	if _, _, err := d.CompileTable(0, []int{1, 2, 3}, 1); err == nil {
		t.Fatal("want row-count error")
	}
}

func TestInferEndToEnd(t *testing.T) {
	cfg := smallConfig("e2e", 2, 4, 128, true, isa.RAdd)
	d := deploy(t, cfg, 8, 3)
	gen, _ := workload.NewGenerator(cfg.TableRows, workload.Zipfian, 9)
	rows := gen.Batch(cfg.Tables, 3, cfg.Reduction)

	got, err := d.Infer(rows, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := d.Model.Infer(rows, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(got, want) {
		t.Fatal("near-memory inference differs from pure-software inference")
	}
}

func TestReleaseFreesPool(t *testing.T) {
	nd := newNode(t, 8)
	free0 := nd.FreeBytes()
	cfg := smallConfig("rel", 2, 2, 128, true, isa.RAdd)
	m, _ := recsys.Build(cfg, 3)
	d, err := Deploy(m, nd, 4)
	if err != nil {
		t.Fatal(err)
	}
	if nd.FreeBytes() >= free0 {
		t.Fatal("deployment must consume pool memory")
	}
	if err := d.Release(); err != nil {
		t.Fatal(err)
	}
	if nd.FreeBytes() != free0 {
		t.Fatalf("leak: %d != %d", nd.FreeBytes(), free0)
	}
}

func TestMaxBatchPaddingStaysInBounds(t *testing.T) {
	// Run at exactly maxBatch: GATHER padding must stay within the
	// allocated slack and still match golden.
	cfg := smallConfig("pad", 1, 3, 128, true, isa.RAdd)
	checkMatchesGolden(t, cfg, 8, 7) // 7*3=21 indices -> padded to 32
}

func TestExpandIndicesEdgeCases(t *testing.T) {
	// Empty row list: nothing to expand, and the result is already a whole
	// (zero) number of index blocks.
	if got := ExpandIndices(nil, 4, 2); len(got) != 0 {
		t.Fatalf("empty rows expanded to %d indices, want 0", len(got))
	}
	if got := ExpandIndices([]int{}, 1, 1); len(got) != 0 {
		t.Fatalf("empty rows expanded to %d indices, want 0", len(got))
	}
	// Reduction larger than the row list: no whole group forms, so every
	// row expands row-major, then pads to one block.
	idx := ExpandIndices([]int{4, 7}, 5, 3)
	want := []int32{12, 13, 14, 21, 22, 23}
	if len(idx) != 16 {
		t.Fatalf("len = %d, want one padded block", len(idx))
	}
	for i, w := range want {
		if idx[i] != w {
			t.Fatalf("idx[%d] = %d, want %d", i, idx[i], w)
		}
	}
	for _, p := range idx[len(want):] {
		if p != want[len(want)-1] {
			t.Fatalf("padding = %d, want repeat of last index", p)
		}
	}
}

func TestReleaseDoubleRelease(t *testing.T) {
	nd := newNode(t, 8)
	free0 := nd.FreeBytes()
	cfg := smallConfig("rel2", 2, 2, 128, true, isa.RAdd)
	m, _ := recsys.Build(cfg, 3)
	d, err := Deploy(m, nd, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Release(); err != nil {
		t.Fatal(err)
	}
	if nd.FreeBytes() != free0 {
		t.Fatalf("leak after release: %d != %d", nd.FreeBytes(), free0)
	}
	// Second release is an idempotent no-op: no error, no double free.
	if err := d.Release(); err != nil {
		t.Fatalf("double release: %v", err)
	}
	if nd.FreeBytes() != free0 || nd.AllocCount() != 0 {
		t.Fatalf("double release corrupted the allocator: free %d, allocs %d",
			nd.FreeBytes(), nd.AllocCount())
	}
}

func TestDeployConcurrentValidation(t *testing.T) {
	cfg := smallConfig("val", 1, 1, 128, false, isa.RAdd)
	m, _ := recsys.Build(cfg, 1)
	if _, err := DeployConcurrent(m, newNode(t, 8), 4, 0, 1); err == nil {
		t.Fatal("want slots error")
	}
	if _, err := DeployConcurrent(m, newNode(t, 8), 4, 1, 0); err == nil {
		t.Fatal("want lanes error")
	}
	d, err := DeployConcurrent(m, newNode(t, 8), 4, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.Slots() != 3 || d.Lanes() != 2 || d.MaxBatch() != 4 {
		t.Fatalf("slots/lanes/maxBatch = %d/%d/%d", d.Slots(), d.Lanes(), d.MaxBatch())
	}
}

// TestConcurrentRunEmbedding drives a multi-slot, multi-lane deployment from
// many goroutines and checks every batch against the golden model — the
// isolation guarantee the serving layer builds on. Run with -race.
func TestConcurrentRunEmbedding(t *testing.T) {
	// Facebook-like shape: several mean-pooled tables, two stripes each.
	cfg := smallConfig("conc", 4, 5, 256, true, isa.RAdd)
	m, err := recsys.Build(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	nd := newNode(t, 8)
	d, err := DeployConcurrent(m, nd, 6, 3, 3*cfg.Tables)
	if err != nil {
		t.Fatal(err)
	}
	const clients, iters = 8, 4
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen, _ := workload.NewGenerator(cfg.TableRows, workload.Zipfian, int64(c)*31+1)
			for i := 0; i < iters; i++ {
				batch := 1 + (c+i)%6
				rows := gen.Batch(cfg.Tables, batch, cfg.Reduction)
				got, err := d.RunEmbedding(rows, batch)
				if err != nil {
					errs[c] = err
					return
				}
				want, err := d.GoldenEmbedding(rows, batch)
				if err != nil {
					errs[c] = err
					return
				}
				if !tensor.Equal(got, want) {
					errs[c] = fmt.Errorf("client %d iter %d: concurrent embedding differs from golden", c, i)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestConcurrentPairwiseReduce exercises the two-GATHER + REDUCE path (both
// gather operand buffers of a lane) under concurrency.
func TestConcurrentPairwiseReduce(t *testing.T) {
	cfg := smallConfig("conc2", 2, 2, 128, false, isa.RMul)
	m, err := recsys.Build(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	d, err := DeployConcurrent(m, newNode(t, 8), 4, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, int64(c)+51)
			for i := 0; i < 3; i++ {
				rows := gen.Batch(cfg.Tables, 4, cfg.Reduction)
				got, err := d.RunEmbedding(rows, 4)
				if err != nil {
					errs[c] = err
					return
				}
				want, _ := d.GoldenEmbedding(rows, 4)
				if !tensor.Equal(got, want) {
					errs[c] = fmt.Errorf("client %d: pairwise reduce differs from golden", c)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestUpdateTablePaddingCapacityBound(t *testing.T) {
	// stripes=6 (dim 768 on 8 DIMMs), maxBatch*reduction=5: scratch holds
	// 30 live stripes + 16 slack. 7 rows = 42 stripes pads to 48 > 46, so
	// the padded zero-staging would overrun the gather buffer — the
	// capacity check must reject it rather than corrupt the neighbor
	// allocation.
	cfg := smallConfig("padcap", 1, 1, 768, false, isa.RAdd)
	d := deploy(t, cfg, 8, 5)
	rows := make([]int, 7)
	grads := tensor.New(len(rows), cfg.EmbDim)
	if err := d.UpdateTable(0, rows, grads); err == nil {
		t.Fatal("want scratch-capacity error for padded overrun")
	}
	// 6 rows = 36 stripes pads to 48... also over; 5 rows = 30 pads to
	// 32 <= 46 and must succeed.
	rows = rows[:5]
	grads = tensor.New(len(rows), cfg.EmbDim)
	if err := d.UpdateTable(0, rows, grads); err != nil {
		t.Fatal(err)
	}
}
