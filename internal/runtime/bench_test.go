package runtime_test

import (
	"testing"

	"tensordimm/internal/benchkit"
)

// BenchmarkExpandIndices measures stripe-index expansion into a reused
// scratch buffer (ExpandIndicesInto); with -benchmem it pins 0 allocs/op.
func BenchmarkExpandIndices(b *testing.B) { benchkit.ExpandIndices(b) }
