package addrmap

import (
	"testing"
	"testing/quick"
)

func smallGeom() Geometry {
	return Geometry{Channels: 4, Ranks: 2, BankGroups: 4, Banks: 4, Rows: 64, Columns: 128}
}

func TestGeometryValidate(t *testing.T) {
	if err := smallGeom().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := smallGeom()
	bad.Channels = 3
	if err := bad.Validate(); err == nil {
		t.Fatal("want error for non-power-of-two channels")
	}
	bad = smallGeom()
	bad.Rows = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("want error for zero rows")
	}
}

func TestNewValidation(t *testing.T) {
	g := smallGeom()
	full := []Field{FieldChannel, FieldBankGroup, FieldColumn, FieldBank, FieldRank, FieldRow}
	if _, err := New("ok", g, full); err != nil {
		t.Fatal(err)
	}
	if _, err := New("short", g, full[:5]); err == nil {
		t.Fatal("want error for missing field")
	}
	dup := []Field{FieldChannel, FieldChannel, FieldColumn, FieldBank, FieldRank, FieldRow}
	if _, err := New("dup", g, dup); err == nil {
		t.Fatal("want error for duplicate field")
	}
	bad := []Field{Field(99), FieldBankGroup, FieldColumn, FieldBank, FieldRank, FieldRow}
	if _, err := New("bad", g, bad); err == nil {
		t.Fatal("want error for unknown field")
	}
}

func TestCPUBaselineChannelInterleave(t *testing.T) {
	s := CPUBaseline(8, 4, 1<<15)
	// Consecutive 64 B blocks must land on consecutive channels.
	for i := 0; i < 16; i++ {
		a := s.Map(uint64(i) * BlockBytes)
		if a.Channel != i%8 {
			t.Fatalf("block %d on channel %d, want %d", i, a.Channel, i%8)
		}
	}
	// Same block, different byte offset within it: same address.
	if s.Map(0) != s.Map(63) {
		t.Fatal("intra-block offsets must map identically")
	}
}

func TestTensorDIMMStriping(t *testing.T) {
	s := TensorDIMM(32, 1<<15)
	// A 2 KiB embedding (32 blocks) must put exactly one block on each DIMM.
	seen := make(map[int]int)
	for i := 0; i < 32; i++ {
		a := s.Map(uint64(i) * BlockBytes)
		seen[a.Channel]++
	}
	if len(seen) != 32 {
		t.Fatalf("embedding striped over %d DIMMs, want 32", len(seen))
	}
	for ch, n := range seen {
		if n != 1 {
			t.Fatalf("DIMM %d got %d blocks, want 1", ch, n)
		}
	}
	// Rank must always be 0 (one rank per TensorDIMM channel).
	if a := s.Map(12345 * BlockBytes); a.Rank != 0 {
		t.Fatalf("rank = %d, want 0", a.Rank)
	}
}

func TestSequentialStreamAlternatesBankGroups(t *testing.T) {
	s := TensorDIMM(4, 1<<14)
	// Blocks 0,4,8,12 are on DIMM 0; they should walk bank groups 0,1,2,3 so
	// that back-to-back bursts avoid the tCCD_L penalty.
	for i := 0; i < 4; i++ {
		a := s.Map(uint64(i*4) * BlockBytes)
		if a.Channel != 0 {
			t.Fatalf("block %d not on DIMM 0", i*4)
		}
		if a.BankGroup != i {
			t.Fatalf("block %d bank group %d, want %d", i*4, a.BankGroup, i)
		}
	}
}

func TestUnmapInverse(t *testing.T) {
	schemes := []*Scheme{
		CPUBaseline(8, 4, 1<<12),
		TensorDIMM(32, 1<<12),
		TensorDIMM(8, 1<<10),
	}
	for _, s := range schemes {
		cap := s.Geom.TotalBytes()
		for _, phys := range []uint64{0, 64, 4096, cap / 2, cap - BlockBytes} {
			a := s.Map(phys)
			if got := s.Unmap(a); got != phys {
				t.Fatalf("%s: Unmap(Map(%#x)) = %#x", s.Name(), phys, got)
			}
		}
	}
}

func TestQuickMapUnmapBijection(t *testing.T) {
	s := CPUBaseline(8, 4, 1<<12)
	capBlocks := s.Geom.TotalBytes() / BlockBytes
	f := func(raw uint64) bool {
		phys := (raw % capBlocks) * BlockBytes
		return s.Unmap(s.Map(phys)) == phys
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFieldsInRange(t *testing.T) {
	s := TensorDIMM(16, 1<<12)
	capBlocks := s.Geom.TotalBytes() / BlockBytes
	g := s.Geom
	f := func(raw uint64) bool {
		a := s.Map((raw % capBlocks) * BlockBytes)
		return a.Channel >= 0 && a.Channel < g.Channels &&
			a.Rank >= 0 && a.Rank < g.Ranks &&
			a.BankGroup >= 0 && a.BankGroup < g.BankGroups &&
			a.Bank >= 0 && a.Bank < g.Banks &&
			a.Row >= 0 && a.Row < g.Rows &&
			a.Column >= 0 && a.Column < g.Columns
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalBytes(t *testing.T) {
	g := Geometry{Channels: 2, Ranks: 2, BankGroups: 4, Banks: 4, Rows: 1024, Columns: 128}
	want := uint64(2*2*4*4*1024*128) * 64
	if got := g.TotalBytes(); got != want {
		t.Fatalf("TotalBytes = %d, want %d", got, want)
	}
}

func TestStringers(t *testing.T) {
	if FieldRow.String() != "row" || Field(42).String() == "" {
		t.Fatal("Field.String misbehaves")
	}
	a := Addr{Channel: 1, Rank: 2, BankGroup: 3, Bank: 0, Row: 5, Column: 6}
	if a.String() == "" {
		t.Fatal("Addr.String empty")
	}
	if OffsetBits() != 6 {
		t.Fatalf("OffsetBits = %d, want 6", OffsetBits())
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew should panic on bad geometry")
		}
	}()
	MustNew("bad", Geometry{}, nil)
}
