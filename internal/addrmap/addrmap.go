// Package addrmap implements the physical-to-DRAM address mapping schemes of
// the TensorDIMM paper (Section 4.4, Figure 7).
//
// Two schemes matter for the evaluation:
//
//   - The baseline CPU scheme: cache-line (64 B) interleaving across the eight
//     memory channels of a DGX-class host, then bank-group/bank/rank bits, so
//     streaming traffic extracts channel- and bank-level parallelism but the
//     aggregate bandwidth is capped by the number of physical channels.
//
//   - The TensorDIMM scheme (Figure 7(a)): the rank (= TensorDIMM) bits sit
//     directly above the 64-byte block offset, so consecutive 64-byte chunks
//     of an embedding stripe across all TensorDIMMs. Every NMP core then owns
//     an equal slice of every tensor, which is what makes the aggregate NMP
//     bandwidth scale with the number of TensorDIMMs.
//
// A Scheme is an ordered list of bit fields above the 64-byte offset; Map
// peels fields from the least-significant end of the block index. All
// geometry dimensions must be powers of two.
package addrmap

import (
	"fmt"
	"math/bits"
)

// BlockBytes is the interleaving granularity: one 64-byte DRAM burst.
const BlockBytes = 64

// Field identifies one component of a decomposed DRAM address.
type Field int

// Address components, from the perspective of a memory controller.
const (
	FieldChannel Field = iota
	FieldRank
	FieldBankGroup
	FieldBank
	FieldColumn
	FieldRow
	numFields
)

// String implements fmt.Stringer.
func (f Field) String() string {
	switch f {
	case FieldChannel:
		return "channel"
	case FieldRank:
		return "rank"
	case FieldBankGroup:
		return "bankgroup"
	case FieldBank:
		return "bank"
	case FieldColumn:
		return "column"
	case FieldRow:
		return "row"
	default:
		return fmt.Sprintf("field(%d)", int(f))
	}
}

// Geometry describes the DRAM organization visible to a mapping scheme.
// Columns counts 64-byte blocks per row (e.g. an 8 KiB rank row = 128).
type Geometry struct {
	Channels   int // independent memory channels
	Ranks      int // ranks per channel (TensorDIMM: 1; CPU: DIMMs x ranks)
	BankGroups int // bank groups per rank (DDR4: 4)
	Banks      int // banks per bank group (DDR4: 4)
	Rows       int // rows per bank
	Columns    int // 64-byte blocks per row
}

// Validate checks that all dimensions are positive powers of two.
func (g Geometry) Validate() error {
	for _, d := range []struct {
		name string
		v    int
	}{
		{"Channels", g.Channels}, {"Ranks", g.Ranks}, {"BankGroups", g.BankGroups},
		{"Banks", g.Banks}, {"Rows", g.Rows}, {"Columns", g.Columns},
	} {
		if d.v <= 0 || d.v&(d.v-1) != 0 {
			return fmt.Errorf("addrmap: %s = %d must be a positive power of two", d.name, d.v)
		}
	}
	return nil
}

// size returns the number of values field f can take under g.
func (g Geometry) size(f Field) int {
	switch f {
	case FieldChannel:
		return g.Channels
	case FieldRank:
		return g.Ranks
	case FieldBankGroup:
		return g.BankGroups
	case FieldBank:
		return g.Banks
	case FieldColumn:
		return g.Columns
	case FieldRow:
		return g.Rows
	default:
		return 1
	}
}

// TotalBytes returns the capacity addressed by the geometry.
func (g Geometry) TotalBytes() uint64 {
	return uint64(g.Channels) * uint64(g.Ranks) * uint64(g.BankGroups) *
		uint64(g.Banks) * uint64(g.Rows) * uint64(g.Columns) * BlockBytes
}

// Addr is a fully decomposed DRAM address.
type Addr struct {
	Channel   int
	Rank      int
	BankGroup int
	Bank      int
	Row       int
	Column    int
}

// String implements fmt.Stringer.
func (a Addr) String() string {
	return fmt.Sprintf("ch%d/rk%d/bg%d/ba%d/row%#x/col%d",
		a.Channel, a.Rank, a.BankGroup, a.Bank, a.Row, a.Column)
}

// Scheme maps physical byte addresses to DRAM coordinates. Order lists the
// fields from least-significant (just above the 64 B offset) to most-
// significant. Every field must appear exactly once.
type Scheme struct {
	Geom  Geometry
	Order []Field
	name  string
}

// New builds a scheme after validating the geometry and field order.
func New(name string, g Geometry, order []Field) (*Scheme, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if len(order) != int(numFields) {
		return nil, fmt.Errorf("addrmap: order has %d fields, want %d", len(order), numFields)
	}
	var seen [numFields]bool
	for _, f := range order {
		if f < 0 || f >= numFields {
			return nil, fmt.Errorf("addrmap: unknown field %d", f)
		}
		if seen[f] {
			return nil, fmt.Errorf("addrmap: duplicate field %s", f)
		}
		seen[f] = true
	}
	o := make([]Field, len(order))
	copy(o, order)
	return &Scheme{Geom: g, Order: o, name: name}, nil
}

// MustNew is New but panics on error; for package-level presets.
func MustNew(name string, g Geometry, order []Field) *Scheme {
	s, err := New(name, g, order)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the scheme's human-readable name.
func (s *Scheme) Name() string { return s.name }

// Map decomposes a physical byte address. Addresses beyond the geometry's
// capacity wrap (the row field simply truncates), which keeps Map total; the
// trace generators always stay within capacity.
func (s *Scheme) Map(phys uint64) Addr {
	block := phys / BlockBytes
	var a Addr
	for _, f := range s.Order {
		n := uint64(s.Geom.size(f))
		v := int(block % n)
		block /= n
		switch f {
		case FieldChannel:
			a.Channel = v
		case FieldRank:
			a.Rank = v
		case FieldBankGroup:
			a.BankGroup = v
		case FieldBank:
			a.Bank = v
		case FieldColumn:
			a.Column = v
		case FieldRow:
			a.Row = v
		}
	}
	return a
}

// Unmap is the inverse of Map for in-capacity addresses; it returns the
// physical byte address of the block at the given coordinates.
func (s *Scheme) Unmap(a Addr) uint64 {
	var block uint64
	for i := len(s.Order) - 1; i >= 0; i-- {
		f := s.Order[i]
		n := uint64(s.Geom.size(f))
		var v int
		switch f {
		case FieldChannel:
			v = a.Channel
		case FieldRank:
			v = a.Rank
		case FieldBankGroup:
			v = a.BankGroup
		case FieldBank:
			v = a.Bank
		case FieldColumn:
			v = a.Column
		case FieldRow:
			v = a.Row
		}
		block = block*n + uint64(v)
	}
	return block * BlockBytes
}

// OffsetBits returns the number of address bits consumed below the mapping
// (always 6 for 64-byte blocks); provided for documentation and tests.
func OffsetBits() int { return bits.TrailingZeros(BlockBytes) }

// CPUBaseline returns the mapping of a DGX-class CPU memory system:
// `channels` memory channels with `ranks` ranks each (e.g. 8 channels x 4
// ranks = 32 DIMMs, Section 6.1), cache-line interleaved across channels and
// bank groups so a sequential stream saturates the channel bandwidth.
// Field order (LSB->MSB): channel, bank group, column, bank, rank, row.
func CPUBaseline(channels, ranks, rowsPerBank int) *Scheme {
	g := Geometry{
		Channels:   channels,
		Ranks:      ranks,
		BankGroups: 4,
		Banks:      4,
		Rows:       rowsPerBank,
		Columns:    128, // 8 KiB rank row / 64 B
	}
	order := []Field{FieldChannel, FieldBankGroup, FieldColumn, FieldBank, FieldRank, FieldRow}
	return MustNew(fmt.Sprintf("cpu-%dch-%drk", channels, ranks), g, order)
}

// TensorDIMM returns the rank-level-parallel mapping of Figure 7: the DIMM
// index sits directly above the 64 B offset so consecutive blocks stripe
// across all `dimms` TensorDIMMs. Each TensorDIMM owns a private channel
// (its NMP core reads rank-locally), hence Channels = dimms and Ranks = 1.
// Field order (LSB->MSB): channel(=DIMM), bank group, column, bank, row.
func TensorDIMM(dimms, rowsPerBank int) *Scheme {
	g := Geometry{
		Channels:   dimms,
		Ranks:      1,
		BankGroups: 4,
		Banks:      4,
		Rows:       rowsPerBank,
		Columns:    128,
	}
	order := []Field{FieldChannel, FieldBankGroup, FieldColumn, FieldBank, FieldRank, FieldRow}
	return MustNew(fmt.Sprintf("tensordimm-%d", dimms), g, order)
}
