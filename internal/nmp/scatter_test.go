package nmp

import (
	"testing"

	"tensordimm/internal/isa"
)

func TestScatterAdd(t *testing.T) {
	dim := 2
	env := newFakeEnv(0, dim)
	core, _ := NewCore(0, dim, env)
	// Table rows 0..31 at base 1000; row r lane 0 = r.
	for r := uint64(0); r < 32; r++ {
		env.local[1000+r*2] = PackFloats([]float32{float32(r)})
	}
	// Gradients at base 2000: grad i lane 0 = 0.5.
	for i := uint64(0); i < 16; i++ {
		env.local[2000+i*2] = PackFloats([]float32{0.5})
	}
	indices := make([]int32, 16)
	for i := range indices {
		indices[i] = int32(i * 2) // rows 0,2,4,...,30
	}
	env.shared[50] = PackIndices(indices)

	in := isa.ScatterAdd(1000, 50, 2000, 16)
	if err := core.Execute(in); err != nil {
		t.Fatal(err)
	}
	for _, idx := range indices {
		got := UnpackFloats(env.local[1000+uint64(idx)*2])[0]
		want := float32(idx) + 0.5
		if got != want {
			t.Fatalf("row %d: got %v want %v", idx, got, want)
		}
	}
	// Untouched rows unchanged.
	if got := UnpackFloats(env.local[1000+1*2])[0]; got != 1 {
		t.Fatalf("row 1 modified: %v", got)
	}
	s := core.Stats()
	if s.ALUBlockOps != 16 || s.BlocksWritten != 16 || s.BlocksRead != 32 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestScatterAddDuplicateIndicesAccumulate(t *testing.T) {
	env := newFakeEnv(0, 1)
	core, _ := NewCore(0, 1, env)
	env.local[100] = PackFloats([]float32{10}) // table row 0 at block 100
	for i := uint64(0); i < 16; i++ {
		env.local[200+i] = PackFloats([]float32{1}) // 16 gradients of 1.0
	}
	indices := make([]int32, 16) // all zero: same row 16 times
	env.shared[0] = PackIndices(indices)
	if err := core.Execute(isa.ScatterAdd(100, 0, 200, 16)); err != nil {
		t.Fatal(err)
	}
	if got := UnpackFloats(env.local[100])[0]; got != 26 {
		t.Fatalf("row 0 = %v, want 10 + 16x1 = 26", got)
	}
}

func TestScatterAddErrors(t *testing.T) {
	env := newFakeEnv(0, 1)
	core, _ := NewCore(0, 1, env)
	// Missing index block.
	if err := core.Execute(isa.ScatterAdd(0, 77, 10, 16)); err == nil {
		t.Fatal("want error for missing index block")
	}
	// Injected fault on the table row read.
	env.shared[0] = PackIndices(make([]int32, 16))
	env.local[5] = PackFloats([]float32{1})
	env.failAt = 100
	if err := core.Execute(isa.ScatterAdd(100, 0, 5, 16)); err == nil {
		t.Fatal("want injected fault to propagate")
	}
}
