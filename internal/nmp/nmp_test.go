package nmp

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"

	"tensordimm/internal/isa"
)

// fakeEnv is a map-backed Env for unit-testing the core datapath.
type fakeEnv struct {
	tid, dim int
	local    map[uint64]Block
	shared   map[uint64]Block
	failAt   uint64 // local reads at this block fail (0 = disabled)
}

func newFakeEnv(tid, dim int) *fakeEnv {
	return &fakeEnv{tid: tid, dim: dim, local: map[uint64]Block{}, shared: map[uint64]Block{}}
}

func (e *fakeEnv) ReadLocal(g uint64) (Block, error) {
	if e.failAt != 0 && g == e.failAt {
		return Block{}, fmt.Errorf("injected fault at %#x", g)
	}
	if int(g%uint64(e.dim)) != e.tid {
		return Block{}, fmt.Errorf("block %#x not local to tid %d", g, e.tid)
	}
	return e.local[g], nil
}

func (e *fakeEnv) WriteLocal(g uint64, b Block) error {
	if int(g%uint64(e.dim)) != e.tid {
		return fmt.Errorf("block %#x not local to tid %d", g, e.tid)
	}
	e.local[g] = b
	return nil
}

func (e *fakeEnv) ReadShared(g uint64) (Block, error) {
	b, ok := e.shared[g]
	if !ok {
		return Block{}, fmt.Errorf("shared block %#x missing", g)
	}
	return b, nil
}

func TestNewCoreValidation(t *testing.T) {
	env := newFakeEnv(0, 4)
	if _, err := NewCore(4, 4, env); err == nil {
		t.Fatal("want error for tid out of range")
	}
	if _, err := NewCore(-1, 4, env); err == nil {
		t.Fatal("want error for negative tid")
	}
	if _, err := NewCore(0, 4, nil); err == nil {
		t.Fatal("want error for nil env")
	}
	if _, err := NewCore(3, 4, env); err != nil {
		t.Fatal(err)
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	vals := make([]float32, ALULanes)
	for i := range vals {
		vals[i] = float32(i) * 1.5
	}
	got := UnpackFloats(PackFloats(vals))
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("lane %d: %v != %v", i, got[i], vals[i])
		}
	}
}

func TestReduceOps(t *testing.T) {
	dim := 2
	for _, rop := range []isa.ReduceOp{isa.RAdd, isa.RSub, isa.RMul, isa.RMax} {
		env := newFakeEnv(0, dim)
		core, _ := NewCore(0, dim, env)
		a := make([]float32, ALULanes)
		b := make([]float32, ALULanes)
		for i := range a {
			a[i] = float32(i + 1)
			b[i] = float32(2*i - 3)
		}
		env.local[0] = PackFloats(a)  // inputBase1 block 0 (tid 0 of dim 2)
		env.local[10] = PackFloats(b) // inputBase2 block 10
		in := isa.Reduce(rop, 0, 10, 20, 1)
		if err := core.Execute(in); err != nil {
			t.Fatalf("%v: %v", rop, err)
		}
		got := UnpackFloats(env.local[20])
		for i := range a {
			var want float32
			switch rop {
			case isa.RAdd:
				want = a[i] + b[i]
			case isa.RSub:
				want = a[i] - b[i]
			case isa.RMul:
				want = a[i] * b[i]
			case isa.RMax:
				want = float32(math.Max(float64(a[i]), float64(b[i])))
			}
			if got[i] != want {
				t.Fatalf("%v lane %d: got %v want %v", rop, i, got[i], want)
			}
		}
	}
}

func TestReduceMultiBlockAddressing(t *testing.T) {
	// tid 1 of 4: the core must touch only blocks == 1 (mod 4).
	dim := 4
	env := newFakeEnv(1, dim)
	core, _ := NewCore(1, dim, env)
	for i := uint64(0); i < 3; i++ {
		env.local[0+i*4+1] = PackFloats([]float32{float32(i)})
		env.local[100+i*4+1] = PackFloats([]float32{float32(10 * i)})
	}
	in := isa.Reduce(isa.RAdd, 0, 100, 200, 3)
	if err := core.Execute(in); err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 3; i++ {
		got := UnpackFloats(env.local[200+i*4+1])[0]
		if got != float32(11*i) {
			t.Fatalf("block %d: got %v want %v", i, got, float32(11*i))
		}
	}
	s := core.Stats()
	if s.BlocksRead != 6 || s.BlocksWritten != 3 || s.ALUBlockOps != 3 || s.Instructions != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestAverage(t *testing.T) {
	dim := 1
	env := newFakeEnv(0, dim)
	core, _ := NewCore(0, dim, env)
	// Average 4 blocks into 1, twice (count=2).
	for i := uint64(0); i < 8; i++ {
		env.local[i] = PackFloats([]float32{float32(i), float32(i * 2)})
	}
	in := isa.Average(0, 4, 100, 2)
	if err := core.Execute(in); err != nil {
		t.Fatal(err)
	}
	out0 := UnpackFloats(env.local[100])
	if out0[0] != 1.5 || out0[1] != 3 { // mean(0..3), mean(0,2,4,6)
		t.Fatalf("avg group 0 = %v", out0[:2])
	}
	out1 := UnpackFloats(env.local[101])
	if out1[0] != 5.5 || out1[1] != 11 {
		t.Fatalf("avg group 1 = %v", out1[:2])
	}
}

func TestGather(t *testing.T) {
	dim := 2
	env := newFakeEnv(0, dim)
	core, _ := NewCore(0, dim, env)
	// Table of 32 rows, one stripe each; tid 0 holds block row*2.
	for r := uint64(0); r < 32; r++ {
		env.local[1000+r*2] = PackFloats([]float32{float32(r) + 0.5})
	}
	indices := make([]int32, 16)
	for i := range indices {
		indices[i] = int32((i * 7) % 32)
	}
	env.shared[50] = PackIndices(indices)
	in := isa.Gather(1000, 50, 2000, 16)
	if err := core.Execute(in); err != nil {
		t.Fatal(err)
	}
	for i, idx := range indices {
		got := UnpackFloats(env.local[2000+uint64(i)*2])[0]
		want := float32(idx) + 0.5
		if got != want {
			t.Fatalf("gathered %d: got %v want %v", i, got, want)
		}
	}
	s := core.Stats()
	if s.SharedReads != 1 || s.BlocksRead != 16 || s.BlocksWritten != 16 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestGatherMissingIndexBlock(t *testing.T) {
	env := newFakeEnv(0, 1)
	core, _ := NewCore(0, 1, env)
	in := isa.Gather(0, 99, 10, 16)
	if err := core.Execute(in); err == nil {
		t.Fatal("want error for missing shared index block")
	}
}

func TestExecuteInvalidInstruction(t *testing.T) {
	env := newFakeEnv(0, 1)
	core, _ := NewCore(0, 1, env)
	if err := core.Execute(isa.Instruction{Op: isa.OpReduce, Count: 0}); err == nil {
		t.Fatal("want validation error")
	}
	if core.Stats().Instructions != 0 {
		t.Fatal("failed instruction must not retire")
	}
}

func TestFaultPropagates(t *testing.T) {
	env := newFakeEnv(0, 1)
	env.local[0] = PackFloats([]float32{1})
	env.local[1] = PackFloats([]float32{2})
	env.failAt = 1
	core, _ := NewCore(0, 1, env)
	if err := core.Execute(isa.Reduce(isa.RAdd, 0, 1, 2, 1)); err == nil {
		t.Fatal("want injected fault to propagate")
	}
}

func TestQueueHighWaterWithinSpec(t *testing.T) {
	// The synchronous datapath must never exceed the 0.5 KB (8-block) SRAM
	// queues of Section 4.2.
	dim := 1
	env := newFakeEnv(0, dim)
	core, _ := NewCore(0, dim, env)
	for i := uint64(0); i < 256; i++ {
		env.local[i] = PackFloats([]float32{float32(i)})
	}
	if err := core.Execute(isa.Average(0, 16, 1000, 16)); err != nil {
		t.Fatal(err)
	}
	a, b, out := core.QueueHighWater()
	if a > QueueBlocks || b > QueueBlocks || out > QueueBlocks {
		t.Fatalf("queue high water %d/%d/%d exceeds %d", a, b, out, QueueBlocks)
	}
	if a == 0 || out == 0 {
		t.Fatal("queues unused — datapath not staging through SRAM")
	}
}

func TestALUBusyTime(t *testing.T) {
	var s Stats
	s.ALUBlockOps = 150e6 // one second of work at 150 MHz
	if got := s.ALUBusySeconds(); got < 0.99 || got > 1.01 {
		t.Fatalf("ALUBusySeconds = %v, want ~1", got)
	}
}

// Property: REDUCE add on the core equals lane-wise float32 addition.
func TestQuickReduceMatchesScalar(t *testing.T) {
	f := func(av, bv [16]float32) bool {
		env := newFakeEnv(0, 1)
		core, _ := NewCore(0, 1, env)
		env.local[0] = PackFloats(av[:])
		env.local[1] = PackFloats(bv[:])
		if err := core.Execute(isa.Reduce(isa.RAdd, 0, 1, 2, 1)); err != nil {
			return false
		}
		got := UnpackFloats(env.local[2])
		for i := range av {
			want := av[i] + bv[i]
			if got[i] != want && !(math.IsNaN(float64(got[i])) && math.IsNaN(float64(want))) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
