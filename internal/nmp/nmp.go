// Package nmp implements the near-memory-processing core that TensorDIMM
// places inside the buffer device of each DIMM (Section 4.2, Figure 6(a)).
//
// The core consists of:
//
//   - an NMP-local memory controller, modeled here as the FSM that lowers one
//     TensorISA instruction into a stream of rank-local 64-byte block reads
//     and writes (the DRAM-command-level cost of that stream is measured
//     separately by internal/dram);
//
//   - input SRAM queues A and B and an output queue C, each sized to the
//     bandwidth-delay product of the memory (25.6 GB/s x 20 ns = 512 B = 8
//     blocks, Section 4.2 "Implementation and overhead");
//
//   - a 16-lane float32 vector ALU clocked at 150 MHz that pops operand
//     pairs from the input queues and pushes results to the output queue.
//
// Execution is functionally exact: the same arithmetic the paper's pseudo
// code (Figure 9) prescribes, over real data, so results can be compared
// bit-for-bit against the golden model in internal/embed.
package nmp

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"tensordimm/internal/isa"
)

// Block is one 64-byte DRAM burst: 16 float32 lanes.
type Block [isa.BlockBytes]byte

// QueueBlocks is the capacity of each SRAM queue in 64-byte blocks:
// 25.6 GB/s x 20 ns = 512 B (Section 4.2).
const QueueBlocks = 8

// ALUClockHz is the vector ALU clock (Section 4.2).
const ALUClockHz = 150e6

// ALULanes is the vector width: sixteen 4-byte scalar elements per block.
const ALULanes = isa.LanesPerBlock

// Env is the memory environment a buffer device exposes to its NMP core.
// Global addresses are in 64-byte blocks over the node's physical space; the
// implementation enforces rank-locality (an NMP core can only touch its own
// DIMM's DRAM, which is what makes aggregate bandwidth scale, Section 4.2).
type Env interface {
	// ReadLocal returns the rank-local block at the global block address.
	ReadLocal(globalBlock uint64) (Block, error)
	// WriteLocal stores a rank-local block.
	WriteLocal(globalBlock uint64, b Block) error
	// ReadShared returns a block of the node-wide replicated region that
	// holds GATHER index lists (broadcast alongside the instruction).
	ReadShared(globalBlock uint64) (Block, error)
}

// Stats counts datapath activity for one core.
type Stats struct {
	BlocksRead    uint64 // rank-local DRAM blocks read
	BlocksWritten uint64 // rank-local DRAM blocks written
	SharedReads   uint64 // index blocks read from the replicated region
	ALUBlockOps   uint64 // vector-ALU block operations executed
	Instructions  uint64 // TensorISA instructions retired
}

// ALUBusySeconds returns the time the 16-wide 150 MHz ALU was busy: one
// block operation per cycle.
func (s Stats) ALUBusySeconds() float64 { return float64(s.ALUBlockOps) / ALUClockHz }

// queue is a fixed-capacity ring of blocks — the input/output SRAM queues.
type queue struct {
	buf  [QueueBlocks]Block
	head int
	n    int
	// highWater tracks the maximum occupancy reached, for sizing checks.
	highWater int
}

func (q *queue) push(b Block) bool {
	if q.n == QueueBlocks {
		return false
	}
	q.buf[(q.head+q.n)%QueueBlocks] = b
	q.n++
	if q.n > q.highWater {
		q.highWater = q.n
	}
	return true
}

func (q *queue) pop() (Block, bool) {
	if q.n == 0 {
		return Block{}, false
	}
	b := q.buf[q.head]
	q.head = (q.head + 1) % QueueBlocks
	q.n--
	return b, true
}

// Core is one NMP core, bound to TensorDIMM `TID` of a node with `NodeDim`
// TensorDIMMs.
//
// A core executes one instruction at a time, like the hardware it models: a
// single FSM in the buffer device drives the SRAM queues and the vector ALU.
// Execute therefore serializes concurrent callers per core, while different
// cores run fully in parallel — which is what lets concurrent programs over
// disjoint pool regions interleave safely at instruction granularity.
type Core struct {
	TID     int
	NodeDim int
	env     Env

	mu            sync.Mutex // serializes Execute; guards queues and stats
	inA, inB, out queue
	stats         Stats
}

// NewCore builds a core for DIMM tid of nodeDim.
func NewCore(tid, nodeDim int, env Env) (*Core, error) {
	if nodeDim <= 0 || tid < 0 || tid >= nodeDim {
		return nil, fmt.Errorf("nmp: tid %d out of range for nodeDim %d", tid, nodeDim)
	}
	if env == nil {
		return nil, fmt.Errorf("nmp: nil environment")
	}
	return &Core{TID: tid, NodeDim: nodeDim, env: env}, nil
}

// Stats returns a copy of the datapath counters.
func (c *Core) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// QueueHighWater returns the maximum occupancy reached by the A, B and C
// queues, to validate the paper's 0.5 KB sizing.
func (c *Core) QueueHighWater() (a, b, out int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inA.highWater, c.inB.highWater, c.out.highWater
}

// Execute runs one TensorISA instruction on this core's slice of the
// operation, per the pseudo-code of Figure 9. Concurrent calls serialize on
// the core (see the type comment).
func (c *Core) Execute(in isa.Instruction) error {
	if err := in.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var err error
	switch in.Op {
	case isa.OpGather:
		err = c.gather(in)
	case isa.OpReduce:
		err = c.reduce(in)
	case isa.OpAverage:
		err = c.average(in)
	case isa.OpScatterAdd:
		err = c.scatterAdd(in)
	default:
		err = fmt.Errorf("nmp: unsupported opcode %v", in.Op)
	}
	if err == nil {
		c.stats.Instructions++
	}
	return err
}

func (c *Core) readLocal(block uint64) (Block, error) {
	b, err := c.env.ReadLocal(block)
	if err == nil {
		c.stats.BlocksRead++
	}
	return b, err
}

func (c *Core) writeLocal(block uint64, b Block) error {
	err := c.env.WriteLocal(block, b)
	if err == nil {
		c.stats.BlocksWritten++
	}
	return err
}

// gather implements Figure 9(a): stream indices, copy table stripes to the
// output tensor. Data passes through the input queue to the output queue
// (the ALU forwards, Section 4.2).
func (c *Core) gather(in isa.Instruction) error {
	tid := uint64(c.TID)
	dim := uint64(c.NodeDim)
	for i := uint64(0); i < uint64(in.Count)/isa.LanesPerBlock; i++ {
		xb, err := c.env.ReadShared(in.Aux + i)
		if err != nil {
			return fmt.Errorf("nmp gather: index block %d: %w", i, err)
		}
		c.stats.SharedReads++
		for j := uint64(0); j < isa.LanesPerBlock; j++ {
			idx := uint64(binary.LittleEndian.Uint32(xb[j*4 : j*4+4]))
			blk, err := c.readLocal(in.InputBase + idx*dim + tid)
			if err != nil {
				return fmt.Errorf("nmp gather: index %d: %w", idx, err)
			}
			if !c.inA.push(blk) {
				return fmt.Errorf("nmp gather: input queue overflow")
			}
			fwd, _ := c.inA.pop() // forward path: input queue -> output queue
			if !c.out.push(fwd) {
				return fmt.Errorf("nmp gather: output queue overflow")
			}
			ob, _ := c.out.pop()
			if err := c.writeLocal(in.OutputBase+(i*isa.LanesPerBlock+j)*dim+tid, ob); err != nil {
				return err
			}
		}
	}
	return nil
}

// reduce implements Figure 9(b): C = A <OP> B, block by block.
func (c *Core) reduce(in isa.Instruction) error {
	tid := uint64(c.TID)
	dim := uint64(c.NodeDim)
	for i := uint64(0); i < uint64(in.Count); i++ {
		a, err := c.readLocal(in.InputBase + i*dim + tid)
		if err != nil {
			return fmt.Errorf("nmp reduce: operand A block %d: %w", i, err)
		}
		b, err := c.readLocal(in.Aux + i*dim + tid)
		if err != nil {
			return fmt.Errorf("nmp reduce: operand B block %d: %w", i, err)
		}
		if !c.inA.push(a) || !c.inB.push(b) {
			return fmt.Errorf("nmp reduce: input queue overflow")
		}
		av, _ := c.inA.pop()
		bv, _ := c.inB.pop()
		cv := aluOp(in.ROp, av, bv)
		c.stats.ALUBlockOps++
		if !c.out.push(cv) {
			return fmt.Errorf("nmp reduce: output queue overflow")
		}
		ob, _ := c.out.pop()
		if err := c.writeLocal(in.OutputBase+i*dim+tid, ob); err != nil {
			return err
		}
	}
	return nil
}

// average implements Figure 9(c): accumulate averageNum blocks, divide.
func (c *Core) average(in isa.Instruction) error {
	tid := uint64(c.TID)
	dim := uint64(c.NodeDim)
	n := in.Aux
	for i := uint64(0); i < uint64(in.Count); i++ {
		var acc Block // 256'b0 ... extended to the full block
		for j := uint64(0); j < n; j++ {
			a, err := c.readLocal(in.InputBase + (i*n+j)*dim + tid)
			if err != nil {
				return fmt.Errorf("nmp average: input %d.%d: %w", i, j, err)
			}
			if !c.inA.push(a) {
				return fmt.Errorf("nmp average: input queue overflow")
			}
			av, _ := c.inA.pop()
			acc = aluOp(isa.RAdd, acc, av)
			c.stats.ALUBlockOps++
		}
		acc = aluScale(acc, 1/float32(n))
		c.stats.ALUBlockOps++
		if !c.out.push(acc) {
			return fmt.Errorf("nmp average: output queue overflow")
		}
		ob, _ := c.out.pop()
		if err := c.writeLocal(in.OutputBase+i*dim+tid, ob); err != nil {
			return err
		}
	}
	return nil
}

// scatterAdd implements the SCATTER_ADD extension: the inverse of gather,
// accumulating gradient stripes into table rows (read-modify-write through
// the A/B input queues and the vector ALU). Duplicate indices accumulate in
// instruction order because the core executes its slice sequentially.
func (c *Core) scatterAdd(in isa.Instruction) error {
	tid := uint64(c.TID)
	dim := uint64(c.NodeDim)
	for i := uint64(0); i < uint64(in.Count)/isa.LanesPerBlock; i++ {
		xb, err := c.env.ReadShared(in.Aux + i)
		if err != nil {
			return fmt.Errorf("nmp scatter-add: index block %d: %w", i, err)
		}
		c.stats.SharedReads++
		for j := uint64(0); j < isa.LanesPerBlock; j++ {
			idx := uint64(binary.LittleEndian.Uint32(xb[j*4 : j*4+4]))
			grad, err := c.readLocal(in.OutputBase + (i*isa.LanesPerBlock+j)*dim + tid)
			if err != nil {
				return fmt.Errorf("nmp scatter-add: gradient %d: %w", i*isa.LanesPerBlock+j, err)
			}
			row, err := c.readLocal(in.InputBase + idx*dim + tid)
			if err != nil {
				return fmt.Errorf("nmp scatter-add: table row %d: %w", idx, err)
			}
			if !c.inA.push(row) || !c.inB.push(grad) {
				return fmt.Errorf("nmp scatter-add: input queue overflow")
			}
			av, _ := c.inA.pop()
			bv, _ := c.inB.pop()
			sum := aluOp(isa.RAdd, av, bv)
			c.stats.ALUBlockOps++
			if !c.out.push(sum) {
				return fmt.Errorf("nmp scatter-add: output queue overflow")
			}
			ob, _ := c.out.pop()
			if err := c.writeLocal(in.InputBase+idx*dim+tid, ob); err != nil {
				return err
			}
		}
	}
	return nil
}

// aluOp applies the element-wise operator across the 16 float32 lanes.
func aluOp(op isa.ReduceOp, a, b Block) Block {
	var out Block
	for l := 0; l < ALULanes; l++ {
		av := math.Float32frombits(binary.LittleEndian.Uint32(a[l*4 : l*4+4]))
		bv := math.Float32frombits(binary.LittleEndian.Uint32(b[l*4 : l*4+4]))
		var r float32
		switch op {
		case isa.RAdd:
			r = av + bv
		case isa.RSub:
			r = av - bv
		case isa.RMul:
			r = av * bv
		case isa.RMax:
			if av >= bv {
				r = av
			} else {
				r = bv
			}
		}
		binary.LittleEndian.PutUint32(out[l*4:l*4+4], math.Float32bits(r))
	}
	return out
}

// aluScale multiplies every lane by s (the divide step of AVERAGE).
func aluScale(a Block, s float32) Block {
	var out Block
	for l := 0; l < ALULanes; l++ {
		av := math.Float32frombits(binary.LittleEndian.Uint32(a[l*4 : l*4+4]))
		binary.LittleEndian.PutUint32(out[l*4:l*4+4], math.Float32bits(av*s))
	}
	return out
}

// PackFloats encodes 16 float32 values into a block (little-endian).
func PackFloats(vals []float32) Block {
	var b Block
	for i, v := range vals {
		if i >= ALULanes {
			break
		}
		binary.LittleEndian.PutUint32(b[i*4:i*4+4], math.Float32bits(v))
	}
	return b
}

// UnpackFloats decodes a block into 16 float32 values.
func UnpackFloats(b Block) []float32 {
	out := make([]float32, ALULanes)
	for i := range out {
		out[i] = math.Float32frombits(binary.LittleEndian.Uint32(b[i*4 : i*4+4]))
	}
	return out
}

// PackIndices encodes 16 int32 lookup indices into a block, the layout the
// GATHER datapath expects for its index-list reads.
func PackIndices(vals []int32) Block {
	var b Block
	for i, v := range vals {
		if i >= ALULanes {
			break
		}
		binary.LittleEndian.PutUint32(b[i*4:i*4+4], uint32(v))
	}
	return b
}
