package netserve_test

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"

	"tensordimm/internal/cluster"
	"tensordimm/internal/netclient"
	"tensordimm/internal/netserve"
	"tensordimm/internal/node"
	"tensordimm/internal/recsys"
	"tensordimm/internal/runtime"
	"tensordimm/internal/serve"
	"tensordimm/internal/tensor"
	"tensordimm/internal/workload"
)

// e2eModel is the end-to-end test geometry: dim 64 = one stripe on a
// 4-DIMM node, 301 rows so row-wise shard boundaries are uneven.
func e2eModel(t *testing.T) *recsys.Model {
	t.Helper()
	m, err := recsys.Build(recsys.Config{
		Name: "e2e", Tables: 2, Reduction: 2, FCLayers: 1,
		EmbDim: 64, TableRows: 301, Hidden: []int{8},
	}, 99)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// serveOver starts a netserve.Server over the backend on a loopback
// listener and returns its address. Close order is registered so the
// network plane drains before the backend is torn down.
func serveOver(t *testing.T, b netserve.Backend) string {
	t.Helper()
	srv, err := netserve.New(b, netserve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(l)
	t.Cleanup(func() { srv.Close() })
	return l.Addr().String()
}

// TestE2EClusterBitIdentity serves a sharded cluster over a loopback
// listener, hammers it with concurrent pipelined network clients mixing
// embeds and updates (under -race in CI), then quiesces and asserts the
// network path, the in-process path and the golden model agree
// bit-for-bit — for both sharding strategies.
func TestE2EClusterBitIdentity(t *testing.T) {
	for _, strat := range []cluster.Strategy{cluster.TableWise, cluster.RowWise} {
		strat := strat
		t.Run(fmt.Sprint(strat), func(t *testing.T) {
			m := e2eModel(t)
			mc := m.Cfg
			cl, err := cluster.New(m, cluster.Config{
				Nodes: 3, Strategy: strat, DIMMsPerNode: 4,
				MaxBatch: 8, CacheBytes: 64 << 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { cl.Close() })
			addr := serveOver(t, netserve.ClusterBackend(cl))

			nc, err := netclient.Dial(addr, netclient.Config{Conns: 2})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { nc.Close() })

			// Phase 1: concurrent mixed traffic over the network — pipelined
			// embeds racing gradient updates. Everything must succeed; values
			// are checked after quiescence (reads racing updates may observe
			// either side of an in-flight update by design).
			clients, iters := 6, 40
			if testing.Short() {
				clients, iters = 4, 15
			}
			var wg sync.WaitGroup
			errCh := make(chan error, clients)
			for w := 0; w < clients; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					gen, err := workload.NewGenerator(mc.TableRows, workload.Uniform, int64(1000+w))
					if err != nil {
						errCh <- err
						return
					}
					rng := rand.New(rand.NewSource(int64(w)))
					var dst []float32
					for i := 0; i < iters; i++ {
						if rng.Float64() < 0.2 {
							rows := gen.Indices(3)
							grads := tensor.New(len(rows), mc.EmbDim)
							for k := range grads.Data() {
								grads.Data()[k] = rng.Float32()*0.02 - 0.01
							}
							up := []runtime.TableUpdate{{Table: rng.Intn(mc.Tables), Rows: rows, Grads: grads}}
							if err := nc.Update(up); err != nil {
								errCh <- fmt.Errorf("client %d update %d: %w", w, i, err)
								return
							}
							continue
						}
						batch := 1 + rng.Intn(4)
						rows := gen.Batch(mc.Tables, batch, mc.Reduction)
						dst, err = nc.EmbedInto(dst, rows, batch)
						if err != nil {
							errCh <- fmt.Errorf("client %d embed %d: %w", w, i, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()
			select {
			case err := <-errCh:
				t.Fatal(err)
			default:
			}

			// Phase 2: quiesced bit-identity. For a spread of fixed batches,
			// the network round trip, the in-process cluster path and the
			// golden model must agree bit-for-bit.
			gen, err := workload.NewGenerator(mc.TableRows, workload.Uniform, 7)
			if err != nil {
				t.Fatal(err)
			}
			var netDst, inDst []float32
			for rep := 0; rep < 10; rep++ {
				batch := 1 + rep%4
				rows := gen.Batch(mc.Tables, batch, mc.Reduction)
				netDst, err = nc.EmbedInto(netDst, rows, batch)
				if err != nil {
					t.Fatal(err)
				}
				inDst, err = cl.EmbedInto(inDst, rows, batch)
				if err != nil {
					t.Fatal(err)
				}
				golden, err := cl.GoldenEmbedding(rows, batch)
				if err != nil {
					t.Fatal(err)
				}
				gd := golden.Data()
				for i := range inDst {
					if netDst[i] != inDst[i] || inDst[i] != gd[i] {
						t.Fatalf("rep %d elem %d: net %g, in-process %g, golden %g — not bit-identical",
							rep, i, netDst[i], inDst[i], gd[i])
					}
				}
			}
		})
	}
}

// TestE2EServeBitIdentity is the single-node variant: a serve.Server
// behind the network plane, with concurrent read-only clients whose every
// response must already be bit-identical to the in-process path (no
// updates in flight, so there is no settling window).
func TestE2EServeBitIdentity(t *testing.T) {
	m := e2eModel(t)
	mc := m.Cfg
	nd, err := node.New(node.Config{DIMMs: 4, PerDIMMBytes: 16 << 20})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nd.Close() })
	dep, err := runtime.DeployConcurrent(m, nd, 8, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{MaxBatch: 8, Workers: 2}, dep)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	addr := serveOver(t, netserve.ServerBackend(srv))

	nc, err := netclient.Dial(addr, netclient.Config{Conns: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })

	clients, iters := 4, 25
	if testing.Short() {
		clients, iters = 3, 10
	}
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for w := 0; w < clients; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			gen, err := workload.NewGenerator(mc.TableRows, workload.Uniform, int64(50+w))
			if err != nil {
				errCh <- err
				return
			}
			var dst []float32
			for i := 0; i < iters; i++ {
				batch := 1 + i%4
				rows := gen.Batch(mc.Tables, batch, mc.Reduction)
				dst, err = nc.EmbedInto(dst, rows, batch)
				if err != nil {
					errCh <- err
					return
				}
				golden, err := dep.GoldenEmbedding(rows, batch)
				if err != nil {
					errCh <- err
					return
				}
				gd := golden.Data()
				for k := range dst {
					if dst[k] != gd[k] {
						errCh <- fmt.Errorf("client %d iter %d elem %d: net %g, golden %g", w, i, k, dst[k], gd[k])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}
