package netserve_test

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"tensordimm/internal/netserve"
	"tensordimm/internal/wire"
)

// pipeAddr is the dummy address of an in-memory pipe listener.
type pipeAddr struct{}

func (pipeAddr) Network() string { return "pipe" }
func (pipeAddr) String() string  { return "pipe" }

// pipeListener feeds net.Pipe server halves to Serve. Pipes are fully
// synchronous — a Write blocks until the peer reads every byte — so a
// test controls the server's writer goroutine byte by byte, with no
// kernel socket buffering to make backpressure timing-dependent.
type pipeListener struct {
	conns chan net.Conn
	done  chan struct{}
	once  sync.Once
}

func newPipeListener() *pipeListener {
	return &pipeListener{conns: make(chan net.Conn, 4), done: make(chan struct{})}
}

func (l *pipeListener) Accept() (net.Conn, error) {
	select {
	case c := <-l.conns:
		return c, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

func (l *pipeListener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

func (l *pipeListener) Addr() net.Addr { return pipeAddr{} }

// dial opens one pipe connection and completes the wire handshake,
// returning the client half.
func (l *pipeListener) dial(t *testing.T) (net.Conn, wire.Hello) {
	t.Helper()
	cli, srv := net.Pipe()
	l.conns <- srv
	t.Cleanup(func() { cli.Close() })
	cli.SetDeadline(time.Now().Add(5 * time.Second))
	if _, err := cli.Write(wire.AppendClientHello(nil, wire.DefaultMaxFrameBytes)); err != nil {
		t.Fatal(err)
	}
	h, _, err := wire.ReadServerHello(cli, nil)
	if err != nil {
		t.Fatal(err)
	}
	cli.SetDeadline(time.Time{})
	return cli, h
}

// scanFrames reads frames until a read error (deadline, EOF, peer close),
// reporting whether one with the given op and id appeared — unwrapping
// coalesced BATCH responses.
func scanFrames(r io.Reader, wantOp wire.Op, wantID uint64) (found bool, code wire.ErrCode) {
	var buf []byte
	match := func(op wire.Op, id uint64, payload []byte) {
		if op == wantOp && id == wantID {
			found = true
			if op == wire.OpError {
				code, _, _ = wire.DecodeError(payload)
			}
		}
	}
	for {
		op, id, payload, nbuf, err := wire.ReadFrame(r, buf, wire.DefaultMaxFrameBytes)
		if err != nil {
			return found, code
		}
		buf = nbuf
		if op != wire.OpBatch {
			match(op, id, payload)
			continue
		}
		it, err := wire.DecodeBatch(payload)
		if err != nil {
			return found, code
		}
		for {
			sop, sid, sp, more := it.Next()
			if !more {
				break
			}
			match(sop, sid, sp)
		}
	}
}

// TestDrainRacesExpiringDeadline pins the graceful-drain x deadline
// interleaving of "response owed vs. expired in queue". With MaxInflight
// 1 the executor pool is a single goroutine, and an admitted task can
// only wait in the queue while that executor is blocked handing a
// finished response to a backpressured connection. The test constructs
// that wedge deterministically over net.Pipe: the writer is pinned
// mid-Write of a pong (one byte read, twelve withheld), the out channel
// is filled to capacity behind it, the executor finishes a slow embed
// into the full channel, and a second request is admitted with a 20ms
// budget it can only lose. The drain must flush the owed response, shed
// the expired request with a typed DEADLINE_EXCEEDED counted in
// Metrics.Expired, and still complete.
func TestDrainRacesExpiringDeadline(t *testing.T) {
	b := newStub()
	b.entered = make(chan struct{}, 4)
	b.release = make(chan struct{})
	srv, err := netserve.New(b, netserve.Config{MaxInflight: 1})
	if err != nil {
		t.Fatal(err)
	}
	l := newPipeListener()
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-serveDone; err != nil {
			t.Errorf("Serve returned %v after Close, want nil", err)
		}
	})

	// A on conn1: enters the sole executor and blocks in the backend.
	conn1, h := l.dial(t)
	g := h.Geom
	conn1.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn1.Write(wire.AppendEmbed(nil, 1, 0, reqRows(g, 1, 1), 1, g.Reduction)); err != nil {
		t.Fatal(err)
	}
	<-b.entered

	// Pin conn1's writer mid-frame: send one ping, then consume exactly
	// one byte of the 13-byte pong. The pipe write cannot complete until
	// the remaining twelve are read, so the writer goroutine is provably
	// wedged and can no longer drain the out channel.
	if _, err := conn1.Write(wire.AppendFrame(nil, wire.OpPing, 101, nil)); err != nil {
		t.Fatal(err)
	}
	conn1.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn1.Read(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}

	// Fill the out channel (capacity MaxInflight+16 = 17) behind the
	// pinned writer with 17 more pongs; an 18th blocks the read loop in
	// enqueue, so Pings reaching 19 is the stable, fully-wedged state.
	var pings []byte
	for id := uint64(102); id < 120; id++ {
		pings = wire.AppendFrame(pings, wire.OpPing, id, nil)
	}
	if _, err := conn1.Write(pings); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(5 * time.Second); srv.Metrics().Pings != 19; {
		if time.Now().After(deadline) {
			t.Fatalf("connection never wedged: %+v", srv.Metrics())
		}
		time.Sleep(time.Millisecond)
	}

	// Release A: the executor finishes it, frees the admission slot
	// (Inflight back to 0 is the observable edge), and blocks handing the
	// response to the full out channel — the "response owed" half.
	close(b.release)
	for deadline := time.Now().Add(5 * time.Second); srv.Metrics().Inflight != 0; {
		if time.Now().After(deadline) {
			t.Fatalf("executor never finished the blocked embed: %+v", srv.Metrics())
		}
		time.Sleep(time.Millisecond)
	}

	// B on conn2: admitted into the freed slot with a 20ms budget, queued
	// behind the wedged executor — the "expired in queue" half.
	conn2, _ := l.dial(t)
	conn2.SetWriteDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn2.Write(wire.AppendEmbed(nil, 1, 20_000, reqRows(g, 1, 2), 1, g.Reduction)); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(5 * time.Second); srv.Metrics().Inflight != 1; {
		if time.Now().After(deadline) {
			t.Fatalf("queued request never admitted: %+v", srv.Metrics())
		}
		time.Sleep(time.Millisecond)
	}

	// Drain while A's response is owed and B is queued; let B's budget
	// lapse before unblocking anything.
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	time.Sleep(50 * time.Millisecond)

	// Unpin conn1 by reading it: first the withheld twelve pong bytes,
	// then every flushed frame until the server tears the connection
	// down. The owed embed response must be among them.
	conn1.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := io.ReadFull(conn1, make([]byte, 12)); err != nil {
		t.Fatal(err)
	}
	if foundA, _ := scanFrames(conn1, wire.OpEmbedResp, 1); !foundA {
		t.Fatal("owed embed response was never flushed across the drain")
	}

	// With the writer unpinned the executor's handoff completes and the
	// next task it picks up — B — is expired: a typed shed, not execution.
	conn2.SetReadDeadline(time.Now().Add(5 * time.Second))
	foundB, codeB := scanFrames(conn2, wire.OpError, 1)
	if !foundB || codeB != wire.ErrDeadlineExceeded {
		t.Fatalf("queued request got (found=%v, code=%v), want a typed %v shed\nserver: %+v",
			foundB, codeB, wire.ErrDeadlineExceeded, srv.Metrics())
	}

	select {
	case err := <-closed:
		if err != nil {
			t.Fatalf("drain returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close wedged draining an expired queued request")
	}
	if m := srv.Metrics(); m.Expired != 1 {
		t.Fatalf("Metrics.Expired = %d, want 1: %+v", m.Expired, m)
	}
	if b.embeds.Load() != 1 {
		t.Fatalf("backend ran %d embeds, want 1: the expired request must never reach it", b.embeds.Load())
	}
}
