package netserve_test

import (
	"net"
	"strings"
	"testing"

	"tensordimm/internal/netserve"
	"tensordimm/internal/wire"
)

// rawDial opens a plain TCP connection, performs the client handshake,
// and returns the connection plus the server's hello — the wire-level
// view a replica router sees, below the netclient abstraction.
func rawDial(t *testing.T, addr string) (net.Conn, wire.Hello) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	if _, err := nc.Write(wire.AppendClientHello(nil, 0)); err != nil {
		t.Fatal(err)
	}
	h, _, err := wire.ReadServerHello(nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	return nc, h
}

// rawCall writes one request frame and reads one response frame.
func rawCall(t *testing.T, nc net.Conn, frame []byte) (wire.Op, uint64, []byte) {
	t.Helper()
	if _, err := nc.Write(frame); err != nil {
		t.Fatal(err)
	}
	op, id, payload, _, err := wire.ReadFrame(nc, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return op, id, payload
}

// syncFrame builds one sequenced single-table update for the stub
// geometry (dim 4).
func syncFrame(id, seq uint64, rows []int) []byte {
	grads := make([]float32, len(rows)*4)
	for i := range grads {
		grads[i] = float32(i) + float32(seq)*100
	}
	return wire.AppendSync(nil, id, seq, []wire.Update{{Table: 0, Rows: rows, Grads: grads}})
}

// TestSyncSeqGuard pins the three-way sequence guard that makes replica
// catch-up exactly-once: a sync at the counter applies and advances it, a
// replayed sync below the counter is acknowledged without reapplying, and
// a sync ahead of the counter is rejected (the sender skipped updates).
func TestSyncSeqGuard(t *testing.T) {
	b := newStub()
	srv, addr := startServer(t, b, netserve.Config{Role: wire.RoleReplica})
	nc, h := rawDial(t, addr)

	if h.Role != wire.RoleReplica || h.UpdateSeq != 0 {
		t.Fatalf("hello %+v, want RoleReplica at seq 0", h)
	}

	// Seq 0 against a fresh server: applied, counter advances to 1.
	op, id, payload := rawCall(t, nc, syncFrame(10, 0, []int{1, 2}))
	if op != wire.OpSyncResp || id != 10 {
		t.Fatalf("op %d id %d, want OpSyncResp id 10", op, id)
	}
	if seq, err := wire.DecodeSyncResp(payload); err != nil || seq != 1 {
		t.Fatalf("resp seq %d err %v, want 1", seq, err)
	}
	b.mu.Lock()
	applied := len(b.updates)
	b.mu.Unlock()
	if applied != 1 {
		t.Fatalf("%d updates applied, want 1", applied)
	}

	// The same seq replayed (as a router does after a reconnect): the ack
	// carries the current counter and the backend is NOT touched again.
	op, _, payload = rawCall(t, nc, syncFrame(11, 0, []int{1, 2}))
	if op != wire.OpSyncResp {
		t.Fatalf("replay answered with op %d, want OpSyncResp", op)
	}
	if seq, err := wire.DecodeSyncResp(payload); err != nil || seq != 1 {
		t.Fatalf("replay resp seq %d err %v, want 1", seq, err)
	}
	b.mu.Lock()
	applied = len(b.updates)
	b.mu.Unlock()
	if applied != 1 {
		t.Fatalf("replay reapplied: %d updates, want 1", applied)
	}

	// A gap (seq ahead of the counter) can only produce divergent
	// replicas; it is rejected as a bad request, not applied.
	op, _, payload = rawCall(t, nc, syncFrame(12, 5, []int{3}))
	if op != wire.OpError {
		t.Fatalf("gapped sync answered with op %d, want OpError", op)
	}
	code, msg, err := wire.DecodeError(payload)
	if err != nil || code != wire.ErrBadRequest {
		t.Fatalf("gapped sync: code %v err %v, want BAD_REQUEST", code, err)
	}
	if !strings.Contains(msg, "replay") {
		t.Fatalf("gap rejection does not say what to do: %q", msg)
	}

	// A plain (unsequenced) update advances the same counter — replicas
	// still answer direct updates, and the handshake seq accounts them.
	op, _, _ = rawCall(t, nc, wire.AppendUpdate(nil, 13, 0, []wire.Update{{
		Table: 1, Rows: []int{4}, Grads: make([]float32, 4),
	}}))
	if op != wire.OpUpdateResp {
		t.Fatalf("plain update answered with op %d, want OpUpdateResp", op)
	}
	if got := srv.UpdateSeq(); got != 2 {
		t.Fatalf("UpdateSeq %d, want 2", got)
	}

	// A fresh handshake announces the advanced counter — what a router
	// reads on reconnect to size its replay.
	_, h2 := rawDial(t, addr)
	if h2.UpdateSeq != 2 {
		t.Fatalf("reconnect hello seq %d, want 2", h2.UpdateSeq)
	}

	m := srv.Metrics()
	if m.Syncs != 2 || m.Updates != 1 || m.UpdateSeq != 2 {
		t.Fatalf("metrics Syncs %d Updates %d UpdateSeq %d, want 2 1 2", m.Syncs, m.Updates, m.UpdateSeq)
	}
	if !strings.Contains(m.String(), "2 syncs, 0 restores (seq 2)") {
		t.Fatalf("metrics report missing sync line:\n%s", m.String())
	}
}

// TestRoleValidation pins that New rejects unknown roles and that the
// default role announced is standalone.
func TestRoleValidation(t *testing.T) {
	if _, err := netserve.New(newStub(), netserve.Config{Role: wire.Role(7)}); err == nil {
		t.Fatal("unknown role accepted")
	}
	_, addr := startServer(t, newStub(), netserve.Config{})
	_, h := rawDial(t, addr)
	if h.Role != wire.RoleStandalone {
		t.Fatalf("default role %v, want STANDALONE", h.Role)
	}
}
