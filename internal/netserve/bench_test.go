package netserve_test

import (
	"testing"

	"tensordimm/internal/benchkit"
)

// BenchmarkNetRoundTrip measures the full network serving path on a
// loopback listener: concurrent pipelined netclient clients driving
// 4-sample EmbedInto requests through the wire protocol, admission
// control and the micro-batching backend. The shared harness body lives
// in internal/benchkit so cmd/benchjson records the same numbers; with
// -benchmem it pins the amortized allocation-free contract of the
// steady-state request path on both endpoints.
func BenchmarkNetRoundTrip(b *testing.B) { benchkit.NetRoundTrip(b) }

// BenchmarkNetRoundTripDeadline is the same path with an ample
// per-request deadline budget that never trips: stamping, carrying and
// checking deadlines must cost nothing measurable and allocate nothing
// on the steady-state read path.
func BenchmarkNetRoundTripDeadline(b *testing.B) { benchkit.NetRoundTripDeadline(b) }
