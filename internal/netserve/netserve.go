// Package netserve is the network front of the serving stack: a TCP
// server speaking the internal/wire protocol in front of a
// cluster.Cluster or a single serve.Server. It is what turns the
// in-process serving layers into a datacenter-shaped service — the RPC
// boundary RecNMP-style systems put between the front-end fleet and the
// embedding tier.
//
// Structure per connection: one reader goroutine decodes frames and one
// writer goroutine encodes responses, so requests pipeline — a client may
// have many requests outstanding and responses complete out of order,
// correlated by request id. Execution happens on a server-wide pool of
// executor goroutines feeding the backend, whose own micro-batcher
// coalesces concurrent network requests exactly like in-process ones.
//
// Admission control: the server holds a bounded in-flight budget
// (Config.MaxInflight). A request arriving with the budget exhausted is
// shed immediately with an OVERLOADED error frame — fail-fast, so a
// saturated server answers in microseconds instead of queueing into
// timeout, and the client can back off or retry against a replica. Shed
// requests are counted in Metrics.Shed.
//
// Shutdown: Close stops accepting new connections, half-closes every
// live connection's read side (no new requests), lets everything already
// admitted execute and flush its response, then tears the connections
// and executors down. A caller blocked in netclient therefore always
// gets its response during a graceful drain.
//
// The steady-state embed (read) path — read frame, decode, admit,
// execute, encode, write — performs no heap allocations: tasks and their
// decode buffers are pooled, encoders append into reused buffers, and the
// backend's *Into path writes straight into the task's response scratch
// (BenchmarkNetRoundTrip pins it; see ARCHITECTURE.md, "Memory
// discipline"). The update path allocates a few tensor headers per
// request (convertUpdates), mirroring the in-process write path.
package netserve

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"tensordimm/internal/cluster"
	"tensordimm/internal/runtime"
	"tensordimm/internal/serve"
	"tensordimm/internal/stats"
	"tensordimm/internal/telemetry"
	"tensordimm/internal/tensor"
	"tensordimm/internal/wire"
)

// Hop indices of the net tracer: executor-queue wait, backend execution
// (including response encoding), and flush wait — completion to the
// writer packing the response into its coalesced frame, which includes
// any FlushLinger window but not the final write syscall.
const (
	netHopQueue = iota
	netHopExec
	netHopFlush
)

// Backend is the serving engine a network server fronts. Both
// serve.Server (via ServerBackend) and cluster.Cluster (via
// ClusterBackend) satisfy it through thin adapters; tests substitute
// stubs to exercise admission and drain behavior deterministically.
type Backend interface {
	// Geometry reports tables, reduction, dim, tableRows, maxBatch — the
	// numbers the wire handshake announces.
	Geometry() (tables, reduction, dim, tableRows, maxBatch int)
	// EmbedInto computes the pooled embedding for one request into dst,
	// exactly like serve.Server.EmbedInto / cluster.EmbedInto.
	EmbedInto(dst []float32, perTableRows [][]int, batch int) ([]float32, error)
	// ApplyUpdates applies one gradient-update batch.
	ApplyUpdates(ups []runtime.TableUpdate) error
	// MetricsText renders the backend's own metrics report.
	MetricsText() string
}

// RestoreBackend is the optional backend extension behind the RESTORE
// op: installing absolute row values from a durable snapshot, the cold
// half of a replica router's crash recovery. Backends that lack it (the
// cluster adapter, test stubs) answer RESTORE frames with BAD_REQUEST —
// only shard replicas fronting a serve.Server are restore targets.
type RestoreBackend interface {
	// Restore overwrites rows of one table with absolute embedding values
	// (vals holds len(rows) embeddings, row-major) on every replica.
	Restore(table int, rows []int, vals []float32) error
}

// serverBackend adapts a serve.Server.
type serverBackend struct{ s *serve.Server }

// Restore implements RestoreBackend.
func (b serverBackend) Restore(table int, rows []int, vals []float32) error {
	return b.s.Restore(table, rows, vals)
}

// Geometry implements Backend.
func (b serverBackend) Geometry() (int, int, int, int, int) { return b.s.Geometry() }

// EmbedInto implements Backend.
func (b serverBackend) EmbedInto(dst []float32, rows [][]int, batch int) ([]float32, error) {
	return b.s.EmbedInto(dst, rows, batch)
}

// ApplyUpdates implements Backend.
func (b serverBackend) ApplyUpdates(ups []runtime.TableUpdate) error { return b.s.Update(ups) }

// MetricsText implements Backend.
func (b serverBackend) MetricsText() string { return b.s.Metrics().String() }

// ServerBackend adapts a single-node serve.Server to the Backend
// interface.
func ServerBackend(s *serve.Server) Backend { return serverBackend{s} }

// clusterBackend adapts a cluster.Cluster.
type clusterBackend struct{ c *cluster.Cluster }

// Geometry implements Backend.
func (b clusterBackend) Geometry() (int, int, int, int, int) { return b.c.Geometry() }

// EmbedInto implements Backend.
func (b clusterBackend) EmbedInto(dst []float32, rows [][]int, batch int) ([]float32, error) {
	return b.c.EmbedInto(dst, rows, batch)
}

// ApplyUpdates implements Backend.
func (b clusterBackend) ApplyUpdates(ups []runtime.TableUpdate) error { return b.c.ApplyUpdates(ups) }

// MetricsText implements Backend.
func (b clusterBackend) MetricsText() string { return b.c.Metrics().String() }

// ClusterBackend adapts a sharded cluster.Cluster to the Backend
// interface.
func ClusterBackend(c *cluster.Cluster) Backend { return clusterBackend{c} }

// Config tunes the network server. The zero value of every field selects
// a documented default at New; negative values are invalid.
type Config struct {
	// MaxInflight is the admission budget: the number of embed/update
	// requests simultaneously admitted (queued or executing) across all
	// connections. A request beyond it is shed with an OVERLOADED error
	// frame instead of queueing. It also sizes the executor pool, so every
	// admitted request reaches the backend's micro-batcher without waiting
	// behind another. Zero defaults to 256; negative is invalid.
	MaxInflight int
	// MaxFrameBytes caps one frame's wire size in both directions. Zero
	// defaults to wire.DefaultMaxFrameBytes; negative is invalid. A frame
	// beyond it is a protocol violation and closes the connection (the
	// stream can no longer be trusted to be frame-aligned).
	MaxFrameBytes int
	// WriteTimeout bounds one response-frame write. A client that stops
	// reading fills its socket buffer; without this bound its writer
	// goroutine would block forever and a graceful drain could never
	// finish. On expiry the connection is dropped (the client was not
	// consuming responses anyway). Zero defaults to 30 seconds; negative
	// is invalid.
	WriteTimeout time.Duration
	// Role is the serving role announced in the handshake. The zero value
	// (wire.RoleStandalone) is a self-contained endpoint; wire.RoleReplica
	// marks this server as one replica of a shard behind a replica router,
	// whose sequenced SYNC frames are its write path. The role does not
	// change what the server accepts — a replica still answers plain
	// updates — but a router uses it to sanity-check its target set, and
	// operators to tell the deployments apart.
	Role wire.Role
	// FlushLinger is the short window a connection's writer keeps its
	// coalescing buffer open after draining the completion queue while more
	// responses are still owed to the connection, so those responses ride
	// the same BATCH frame and syscall. The writer lingers at most once per
	// flush, so it adds at most one window to any response's latency, and
	// never lingers when nothing else is in flight — idle latency stays
	// flat. Zero defaults to 50 microseconds; negative is invalid.
	FlushLinger time.Duration
	// Registry, when non-nil, wires the server into the telemetry plane:
	// New registers the net_* series (admission, shed/expired, batching,
	// request-latency histogram) and a queue/exec/flush request tracer,
	// and METRICS responses carry the registry's versioned snapshot
	// section. Nil leaves the server uninstrumented at zero cost.
	Registry *telemetry.Registry
}

// maxCoalesceBytes soft-caps one coalesced response frame so the writer's
// reused buffer stays cache-sized even when the configured frame limits
// are generous; past it the writer just flushes and starts the next batch.
const maxCoalesceBytes = 256 << 10

// readBufBytes sizes the buffered reader in front of each connection, so
// one read syscall pulls in many pipelined (or coalesced) frames.
const readBufBytes = 64 << 10

// task is one in-flight request: the decoded arguments, the destination
// scratch the backend writes into, and the encoded response frame. Tasks
// are pooled server-wide; a task is owned by exactly one goroutine at a
// time (reader -> executor -> writer) and recycled by the writer after
// its response frame is on the wire.
type task struct {
	c  *conn
	op wire.Op
	id uint64

	// deadline bookkeeping (OpEmbed and OpUpdate): the request's budget in
	// microseconds (0 = none) and the frame's arrival time. The executor
	// re-checks the budget after the queue wait — the dominant expiry cause
	// under load — and sheds expired work with DEADLINE_EXCEEDED instead of
	// executing a response nobody is waiting for.
	budget  uint32
	arrived time.Time

	// embed arguments + result scratch
	batch int
	rows  [][]int
	idx   []int
	dst   []float32

	// update arguments (decoded views + converted headers)
	upd wire.UpdateScratch
	ups []runtime.TableUpdate
	// sync / restore sequence number (OpSync and OpRestore)
	seq uint64
	// restore arguments (OpRestore only): decoded views into upd's arenas
	commit   bool
	restTab  int
	restRows []int
	restVals []float32

	// encoded response frame, written verbatim by the conn writer
	resp []byte

	// per-hop trace slot, recycled with the task (see putTask)
	span telemetry.Span
}

// conn is one accepted connection: its reader goroutine (the function
// handle runs in), its writer goroutine draining out, and the count of
// responses still owed so the drain can wait for them.
type conn struct {
	srv *Server
	nc  net.Conn
	out chan *task
	// owed counts tasks handed to the executor or writer but not yet
	// written; the reader waits on it before closing out, so a drain never
	// loses an in-flight response.
	owed sync.WaitGroup
	// pending counts responses owed to this connection that the writer has
	// not yet dequeued — the writer's linger signal: when it drains out dry
	// with pending still positive, more responses arrive momentarily and
	// waiting one FlushLinger lets them share the flush.
	pending atomic.Int64
	// peerMax is the frame-size limit the client announced in its
	// handshake; the writer caps coalesced response frames at it. Written
	// by the reader before the first task is enqueued (the channel send
	// orders it for the writer).
	peerMax int
}

// Server is the network serving plane: accept loops feed per-connection
// reader/writer goroutines, which feed a bounded executor pool in front
// of the backend. Create with New, start with Serve (one call per
// listener), and stop with Close, which drains gracefully. The server
// does not own the backend — closing the netserve.Server leaves the
// serve.Server or cluster.Cluster running for its owner to close.
type Server struct {
	cfg     Config
	backend Backend
	geom    wire.Geometry
	width   int

	tasks    chan *task
	taskPool sync.Pool
	workerWG sync.WaitGroup

	inflight atomic.Int64
	draining atomic.Bool

	// updateSeq counts successfully applied update batches (plain and
	// sequenced). syncMu makes the OpSync check-apply-bump atomic, which is
	// what gives a router's catch-up replay its exactly-once guarantee.
	updateSeq atomic.Uint64
	syncMu    sync.Mutex

	mu        sync.Mutex
	closed    bool
	listeners map[net.Listener]struct{}
	conns     map[*conn]struct{}
	connWG    sync.WaitGroup
	closeOnce sync.Once
	closeDone chan struct{}

	started    time.Time
	accepted   stats.Counter
	requests   stats.Counter
	updates    stats.Counter
	syncs      stats.Counter
	restores   stats.Counter
	pings      stats.Counter
	shed       stats.Counter
	expired    stats.Counter
	failures   stats.Counter
	badFrames  stats.Counter
	batchesIn  stats.Counter
	batchedIn  stats.Counter
	batchesOut stats.Counter
	batchedOut stats.Counter
	lat        stats.Latency

	// Telemetry plane, nil unless Config.Registry was set; every hot-path
	// use is nil-guarded.
	tLat   *telemetry.Histogram
	tracer *telemetry.Tracer
}

// instrument registers the server's series on the configured registry:
// func-backed counters over the existing atomics, the in-flight gauge,
// the executor latency histogram, and the queue/exec/flush tracer.
func (s *Server) instrument(reg *telemetry.Registry) {
	reg.Counter("tensordimm_net_accepted_total", "connections accepted", s.accepted.Load)
	reg.Counter("tensordimm_net_requests_total", "embed requests served", s.requests.Load)
	reg.Counter("tensordimm_net_updates_total", "update requests applied", s.updates.Load)
	reg.Counter("tensordimm_net_syncs_total", "sequenced SYNC updates applied", s.syncs.Load)
	reg.Counter("tensordimm_net_restores_total", "RESTORE rounds applied", s.restores.Load)
	reg.Counter("tensordimm_net_pings_total", "pings answered", s.pings.Load)
	reg.Counter("tensordimm_net_shed_total", "requests shed by admission control (OVERLOADED)", s.shed.Load)
	reg.Counter("tensordimm_net_expired_total", "requests shed with a lapsed deadline (DEADLINE_EXCEEDED)", s.expired.Load)
	reg.Counter("tensordimm_net_failures_total", "requests failed", s.failures.Load)
	reg.Counter("tensordimm_net_bad_frames_total", "protocol violations", s.badFrames.Load)
	reg.Counter("tensordimm_net_batches_in_total", "BATCH request frames received", s.batchesIn.Load)
	reg.Counter("tensordimm_net_batched_in_total", "sub-requests arrived inside BATCH frames", s.batchedIn.Load)
	reg.Counter("tensordimm_net_batches_out_total", "coalesced BATCH response frames written", s.batchesOut.Load)
	reg.Counter("tensordimm_net_batched_out_total", "responses shipped inside BATCH frames", s.batchedOut.Load)
	reg.Gauge("tensordimm_net_inflight", "requests admitted and not yet completed", func() float64 {
		return float64(s.inflight.Load())
	})
	s.tLat = reg.Histogram("tensordimm_net_request_seconds", "executor latency per request (dequeue to response encoded)")
	s.tracer = reg.Tracer("net", 0, []string{"queue", "exec", "flush"})
}

// New validates the config against the backend's geometry and returns a
// server ready for Serve. No sockets are opened here.
func New(b Backend, cfg Config) (*Server, error) {
	if cfg.MaxInflight < 0 {
		return nil, fmt.Errorf("netserve: MaxInflight %d is negative (use 0 for the default)", cfg.MaxInflight)
	}
	if cfg.MaxFrameBytes < 0 {
		return nil, fmt.Errorf("netserve: MaxFrameBytes %d is negative (use 0 for the default)", cfg.MaxFrameBytes)
	}
	if cfg.WriteTimeout < 0 {
		return nil, fmt.Errorf("netserve: WriteTimeout %v is negative (use 0 for the 30s default)", cfg.WriteTimeout)
	}
	if cfg.Role != wire.RoleStandalone && cfg.Role != wire.RoleReplica {
		return nil, fmt.Errorf("netserve: unknown role %d", uint8(cfg.Role))
	}
	if cfg.FlushLinger < 0 {
		return nil, fmt.Errorf("netserve: FlushLinger %v is negative (use 0 for the 50µs default)", cfg.FlushLinger)
	}
	if cfg.MaxInflight == 0 {
		cfg.MaxInflight = 256
	}
	if cfg.MaxFrameBytes == 0 {
		cfg.MaxFrameBytes = wire.DefaultMaxFrameBytes
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.FlushLinger == 0 {
		cfg.FlushLinger = 50 * time.Microsecond
	}
	tables, reduction, dim, rows, maxBatch := b.Geometry()
	geom := wire.Geometry{Tables: tables, Reduction: reduction, Dim: dim, TableRows: rows, MaxBatch: maxBatch}
	if err := geom.Validate(); err != nil {
		return nil, fmt.Errorf("netserve: backend geometry: %w", err)
	}
	// The largest legal frame in either direction must fit the limit, or
	// every maximal request would be "oversized" by configuration.
	maxReq := wire.HeaderBytes + 8 + 4*tables*maxBatch*reduction
	maxResp := wire.HeaderBytes + 4*maxBatch*tables*dim
	if need := max(maxReq, maxResp); cfg.MaxFrameBytes < need {
		return nil, fmt.Errorf("netserve: MaxFrameBytes %d below the %d B a maximal request/response needs", cfg.MaxFrameBytes, need)
	}
	s := &Server{
		cfg:       cfg,
		backend:   b,
		geom:      geom,
		width:     geom.Width(),
		tasks:     make(chan *task, cfg.MaxInflight),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[*conn]struct{}),
		closeDone: make(chan struct{}),
		started:   time.Now(),
	}
	s.taskPool.New = func() any { return &task{} }
	if cfg.Registry != nil {
		s.instrument(cfg.Registry)
	}
	for w := 0; w < cfg.MaxInflight; w++ {
		s.workerWG.Add(1)
		go s.executor()
	}
	return s, nil
}

// Geometry returns the wire geometry the server announces in handshakes.
func (s *Server) Geometry() wire.Geometry { return s.geom }

// Serve accepts connections on l until Close (or a listener error) and
// blocks meanwhile. After Close it returns nil; multiple Serve calls on
// different listeners may run concurrently.
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		l.Close()
		return fmt.Errorf("netserve: server is closed")
	}
	s.listeners[l] = struct{}{}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.listeners, l)
		s.mu.Unlock()
	}()
	for {
		nc, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("netserve: accept: %w", err)
		}
		s.startConn(nc)
	}
}

// startConn registers one accepted connection and spawns its reader and
// writer goroutines. A connection arriving during (or after) Close is
// refused immediately.
func (s *Server) startConn(nc net.Conn) {
	c := &conn{srv: s, nc: nc, out: make(chan *task, s.cfg.MaxInflight+16)}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		nc.Close()
		return
	}
	s.conns[c] = struct{}{}
	s.connWG.Add(2)
	s.mu.Unlock()
	s.accepted.Inc()
	go c.readLoop()
	go c.writeLoop()
}

// forget removes a finished connection from the server's registry.
func (s *Server) forget(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// admit takes one unit of the in-flight budget, failing fast when the
// budget is exhausted.
func (s *Server) admit() bool {
	for {
		n := s.inflight.Load()
		if n >= int64(s.cfg.MaxInflight) {
			return false
		}
		if s.inflight.CompareAndSwap(n, n+1) {
			return true
		}
	}
}

// readLoop is a connection's reader goroutine: handshake, then decode and
// dispatch frames until EOF, a protocol violation, or the server's drain
// half-closes the read side. On exit it waits for every response still
// owed, then hands the connection to the writer for teardown.
func (c *conn) readLoop() {
	s := c.srv
	defer s.connWG.Done()
	// All reads go through a buffered reader so one syscall pulls in many
	// pipelined or coalesced frames; the frame decoder then slices them out
	// of the buffer without further kernel round trips.
	br := bufio.NewReaderSize(c.nc, readBufBytes)
	ok := false
	var buf []byte
	if peerMax, hbuf, err := wire.ReadClientHello(br, nil); err == nil {
		c.peerMax = peerMax
		hello := wire.AppendServerHello(hbuf[:0], wire.Hello{
			Geom:          s.geom,
			Role:          s.cfg.Role,
			UpdateSeq:     s.updateSeq.Load(),
			MaxFrameBytes: s.cfg.MaxFrameBytes,
		})
		c.nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if _, err := c.nc.Write(hello); err == nil {
			ok = true
		}
		buf = hello[:0]
	} else if !isDisconnect(err) {
		s.badFrames.Inc()
	}
	for ok {
		var op wire.Op
		var id uint64
		var payload []byte
		var err error
		op, id, payload, buf, err = wire.ReadFrame(br, buf, s.cfg.MaxFrameBytes)
		if err != nil {
			// Disconnects (EOF, drain half-close, reset) are the normal end
			// of a connection; everything else is a frame-level violation.
			if !isDisconnect(err) {
				s.badFrames.Inc()
			}
			break
		}
		if !c.dispatch(op, id, payload) {
			break
		}
	}
	// Drain handover: every response owed must be encoded and enqueued
	// before out closes, and the writer flushes them all before closing
	// the socket.
	c.owed.Wait()
	close(c.out)
}

// isDisconnect reports whether a read error means the peer (or the drain)
// ended the connection, as opposed to a malformed frame: plain or
// mid-frame EOF, a closed socket, a reset, or the read deadline the drain
// fallback sets on non-TCP connections.
func isDisconnect(err error) bool {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}

// dispatch routes one decoded frame, unpacking BATCH super-frames into
// their sub-requests. It returns false when the frame is a protocol
// violation that must close the connection.
func (c *conn) dispatch(op wire.Op, id uint64, payload []byte) bool {
	s := c.srv
	if op != wire.OpBatch {
		return c.dispatchOne(op, id, payload)
	}
	it, err := wire.DecodeBatch(payload)
	if err != nil {
		// A malformed count prefix: the outer frame was still well-formed, so
		// the stream stays aligned — answer under the batch id and carry on.
		s.failures.Inc()
		t := s.getTask(c, op, id)
		t.resp = wire.AppendError(t.resp[:0], id, wire.ErrBadRequest, err.Error())
		c.enqueue(t)
		return true
	}
	s.batchesIn.Inc()
	for {
		sop, sid, sp, more := it.Next()
		if !more {
			break
		}
		s.batchedIn.Inc()
		if !c.dispatchOne(sop, sid, sp) {
			return false
		}
	}
	if err := it.Err(); err != nil {
		// A structural violation inside the batch (truncated interior
		// sub-frame, nested batch, trailing bytes). Requests before the
		// damage were already dispatched and will be answered under their own
		// ids; the damage itself is reported under the batch id.
		s.failures.Inc()
		t := s.getTask(c, wire.OpBatch, id)
		t.resp = wire.AppendError(t.resp[:0], id, wire.ErrBadRequest, err.Error())
		c.enqueue(t)
	}
	return true
}

// dispatchOne routes one non-BATCH request frame (top-level or a batch
// sub-frame). It returns false when the op is unknown, which must close
// the connection.
func (c *conn) dispatchOne(op wire.Op, id uint64, payload []byte) bool {
	s := c.srv
	switch op {
	case wire.OpPing:
		t := s.getTask(c, op, id)
		s.pings.Inc()
		t.resp = wire.AppendFrame(t.resp[:0], wire.OpPong, id, nil)
		c.enqueue(t)
	case wire.OpMetrics:
		t := s.getTask(c, op, id)
		report := s.backend.MetricsText() + "\n" + s.Metrics().String()
		// Since wire revision 6 a METRICS response leads with the
		// registry's versioned snapshot section; the human report rides
		// behind it (telemetry.DecodeWirePayload splits them).
		t.resp = wire.AppendFrame(t.resp[:0], wire.OpMetricsResp, id, telemetry.EncodeWirePayload(s.cfg.Registry, report))
		c.enqueue(t)
	case wire.OpEmbed:
		t := s.getTask(c, op, id)
		t.arrived = time.Now()
		var err error
		t.batch, t.budget, t.rows, t.idx, err = wire.DecodeEmbed(payload, s.geom, t.rows, t.idx)
		if err != nil {
			s.failures.Inc()
			t.resp = wire.AppendError(t.resp[:0], id, wire.ErrBadRequest, err.Error())
			c.enqueue(t)
			return true
		}
		c.submit(t)
	case wire.OpUpdate:
		t := s.getTask(c, op, id)
		t.arrived = time.Now()
		wu, budget, err := wire.DecodeUpdate(payload, s.geom, &t.upd)
		if err == nil {
			t.budget = budget
			err = t.convertUpdates(wu, s.geom.Dim)
		}
		if err != nil {
			s.failures.Inc()
			t.resp = wire.AppendError(t.resp[:0], id, wire.ErrBadRequest, err.Error())
			c.enqueue(t)
			return true
		}
		c.submit(t)
	case wire.OpSync:
		t := s.getTask(c, op, id)
		seq, wu, err := wire.DecodeSync(payload, s.geom, &t.upd)
		if err == nil {
			err = t.convertUpdates(wu, s.geom.Dim)
		}
		if err != nil {
			s.failures.Inc()
			t.resp = wire.AppendError(t.resp[:0], id, wire.ErrBadRequest, err.Error())
			c.enqueue(t)
			return true
		}
		t.seq = seq
		c.submit(t)
	case wire.OpRestore:
		t := s.getTask(c, op, id)
		seq, commit, up, err := wire.DecodeRestore(payload, s.geom, &t.upd)
		if err != nil {
			s.failures.Inc()
			t.resp = wire.AppendError(t.resp[:0], id, wire.ErrBadRequest, err.Error())
			c.enqueue(t)
			return true
		}
		t.seq, t.commit = seq, commit
		t.restTab, t.restRows, t.restVals = up.Table, up.Rows, up.Grads
		c.submit(t)
	default:
		s.badFrames.Inc()
		return false
	}
	return true
}

// convertUpdates re-views the decoded wire updates as runtime.TableUpdate
// headers over the same arenas.
func (t *task) convertUpdates(wu []wire.Update, dim int) error {
	if cap(t.ups) < len(wu) {
		t.ups = make([]runtime.TableUpdate, len(wu))
	}
	t.ups = t.ups[:len(wu)]
	for i, up := range wu {
		grads, err := tensor.FromSlice(up.Grads, len(up.Rows), dim)
		if err != nil {
			return err
		}
		t.ups[i] = runtime.TableUpdate{Table: up.Table, Rows: up.Rows, Grads: grads}
	}
	return nil
}

// submit runs one decoded request through admission control: a request
// racing the drain window (Close marked the server draining but the read
// half-close has not reached this connection yet) is refused with
// SHUTTING_DOWN, one whose deadline budget already lapsed is shed with
// DEADLINE_EXCEEDED before it can consume an in-flight slot, admitted
// tasks go to the executor pool, and the rest are shed with an OVERLOADED
// error frame.
func (c *conn) submit(t *task) {
	s := c.srv
	if s.draining.Load() {
		s.failures.Inc()
		t.resp = wire.AppendError(t.resp[:0], t.id, wire.ErrShuttingDown,
			"server is draining; no new work accepted")
		c.enqueue(t)
		return
	}
	if t.expired(time.Now()) {
		s.expired.Inc()
		t.resp = wire.AppendError(t.resp[:0], t.id, wire.ErrDeadlineExceeded,
			"deadline budget exhausted before dispatch")
		c.enqueue(t)
		return
	}
	if !s.admit() {
		s.shed.Inc()
		t.resp = wire.AppendError(t.resp[:0], t.id, wire.ErrOverloaded,
			"in-flight budget exhausted; retry after backoff")
		c.enqueue(t)
		return
	}
	if s.tracer != nil {
		// Embed/update tasks trace from frame arrival; sync/restore tasks
		// (no arrival stamp) trace from admission.
		if t.arrived.IsZero() {
			t.span.Begin()
		} else {
			t.span.BeginAt(t.arrived)
		}
	}
	c.owed.Add(1)
	c.pending.Add(1)
	// Admission bounds senders at MaxInflight, which is exactly the
	// channel's capacity: this send never blocks.
	s.tasks <- t
}

// enqueue hands a ready-to-write response to the connection's writer.
func (c *conn) enqueue(t *task) {
	c.owed.Add(1)
	c.pending.Add(1)
	c.out <- t
}

// executor is one worker of the server-wide pool: it runs admitted tasks
// against the backend, encodes the response, and hands it to the owning
// connection's writer.
func (s *Server) executor() {
	defer s.workerWG.Done()
	for t := range s.tasks {
		start := time.Now()
		// The queue hop closes here for expired tasks too — their trace
		// shows exactly where the budget died.
		if s.tracer != nil {
			t.span.Mark(netHopQueue)
		}
		if t.expired(start) {
			// The budget lapsed in the queue: the client has moved on, so
			// executing would burn backend capacity on a dead response.
			s.expired.Inc()
			t.resp = wire.AppendError(t.resp[:0], t.id, wire.ErrDeadlineExceeded,
				"deadline budget exhausted in queue")
			s.inflight.Add(-1)
			t.c.out <- t
			continue
		}
		switch t.op {
		case wire.OpEmbed:
			need := t.batch * s.width
			if cap(t.dst) < need {
				t.dst = make([]float32, need)
			}
			dst, err := s.backend.EmbedInto(t.dst[:need], t.rows, t.batch)
			if err != nil {
				s.failures.Inc()
				t.resp = wire.AppendError(t.resp[:0], t.id, wire.ErrInternal, err.Error())
			} else {
				t.dst = dst
				s.requests.Inc()
				t.resp = wire.AppendEmbedResp(t.resp[:0], t.id, dst)
			}
		case wire.OpUpdate:
			if err := s.backend.ApplyUpdates(t.ups); err != nil {
				s.failures.Inc()
				t.resp = wire.AppendError(t.resp[:0], t.id, wire.ErrInternal, err.Error())
			} else {
				s.updateSeq.Add(1)
				s.updates.Inc()
				t.resp = wire.AppendFrame(t.resp[:0], wire.OpUpdateResp, t.id, nil)
			}
		case wire.OpSync:
			t.resp = s.executeSync(t)
		case wire.OpRestore:
			t.resp = s.executeRestore(t)
		}
		exec := time.Since(start).Seconds()
		s.lat.Observe(exec)
		if s.tracer != nil {
			s.tLat.Observe(exec)
			t.span.Mark(netHopExec)
		}
		s.inflight.Add(-1)
		// The task already owes its response (owed was incremented at
		// admission), so it goes to the writer directly, not via enqueue.
		t.c.out <- t
	}
}

// executeSync runs one sequenced update against the seq guard and returns
// the encoded response. The guard under syncMu is what makes a router's
// replay exactly-once: a frame whose sequence number is already behind the
// counter was applied before the previous connection died and is
// acknowledged without reapplying; one exactly at the counter applies and
// advances it; one beyond it means the sender skipped updates, which can
// only produce divergent replicas and is rejected.
func (s *Server) executeSync(t *task) []byte {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	cur := s.updateSeq.Load()
	switch {
	case t.seq < cur:
		s.syncs.Inc()
		return wire.AppendSyncResp(t.resp[:0], t.id, cur)
	case t.seq > cur:
		s.failures.Inc()
		return wire.AppendError(t.resp[:0], t.id, wire.ErrBadRequest,
			fmt.Sprintf("sync sequence %d ahead of the server's %d applied updates; replay the gap first", t.seq, cur))
	default:
		if err := s.backend.ApplyUpdates(t.ups); err != nil {
			s.failures.Inc()
			return wire.AppendError(t.resp[:0], t.id, wire.ErrInternal, err.Error())
		}
		s.updateSeq.Store(cur + 1)
		s.syncs.Inc()
		return wire.AppendSyncResp(t.resp[:0], t.id, cur+1)
	}
}

// executeRestore installs one snapshot chunk under the same lock as the
// sequenced write path, so restores and syncs serialize into one history.
// The sequence guard runs the other way from executeSync: a snapshot must
// be at or ahead of the applied counter — installing one from before the
// server's current state would silently roll back updates the router
// already acknowledged. Only a committing chunk (the snapshot's last)
// moves the counter, so a restore that dies mid-stream leaves the counter
// untouched and the router retries from scratch.
func (s *Server) executeRestore(t *task) []byte {
	rb, ok := s.backend.(RestoreBackend)
	if !ok {
		s.failures.Inc()
		return wire.AppendError(t.resp[:0], t.id, wire.ErrBadRequest, "backend does not accept snapshot installs")
	}
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	cur := s.updateSeq.Load()
	if t.seq < cur {
		s.failures.Inc()
		return wire.AppendError(t.resp[:0], t.id, wire.ErrBadRequest,
			fmt.Sprintf("snapshot at sequence %d behind the server's %d applied updates", t.seq, cur))
	}
	if err := rb.Restore(t.restTab, t.restRows, t.restVals); err != nil {
		s.failures.Inc()
		return wire.AppendError(t.resp[:0], t.id, wire.ErrInternal, err.Error())
	}
	if t.commit {
		s.updateSeq.Store(t.seq)
	}
	s.restores.Inc()
	return wire.AppendRestoreResp(t.resp[:0], t.id, s.updateSeq.Load())
}

// UpdateSeq reports how many update batches the server has applied — the
// number the handshake announces, against which a replica router decides
// how much of its update log to replay.
func (s *Server) UpdateSeq() uint64 { return s.updateSeq.Load() }

// writeLoop is a connection's writer goroutine: it drains completed
// responses (in completion order, not request order — that is the
// pipelining contract) into a reused write buffer and flushes the whole
// drain with one write syscall, as a single frame when one response was
// ready or a coalesced BATCH frame when several were. When the drain runs
// dry with responses still owed to the connection, it lingers one
// FlushLinger window — once per flush, so latency is bounded — to let
// near-complete responses ride the same flush. When out closes (reader
// done, all responses flushed) it tears the connection down.
func (c *conn) writeLoop() {
	s := c.srv
	defer s.connWG.Done()
	linger := time.NewTimer(time.Hour)
	if !linger.Stop() {
		<-linger.C
	}
	// The coalescing cap honors what the client's handshake said it will
	// read; resolved lazily because the handshake finishes strictly before
	// the first task arrives.
	maxCoalesce := 0
	wbuf := make([]byte, wire.BatchHeaderBytes, 32<<10)
	failed := false
	var carry *task // response that did not fit the previous flush
	for {
		t := carry
		carry = nil
		if t == nil {
			var open bool
			if t, open = <-c.out; !open {
				break
			}
			c.pending.Add(-1)
		}
		if failed {
			// The client is gone; stop writing but keep draining so every
			// owed response is accounted and the reader's Wait returns.
			c.owed.Done()
			s.putTask(t)
			continue
		}
		if maxCoalesce == 0 {
			maxCoalesce = min(s.cfg.MaxFrameBytes, c.peerMax, maxCoalesceBytes)
		}
		// Start a flush cycle: reserve BATCH-header headroom (stamped only if
		// this flush coalesces), then pack completed responses behind it.
		// owed.Done fires as each response is packed — the reader's drain
		// Wait only needs the response owned by the writer, and the flush
		// below happens before the writer ever gives the socket up.
		wbuf = append(wbuf[:wire.BatchHeaderBytes], t.resp...)
		count := 1
		c.owed.Done()
		s.putTask(t)
		lingered := false
	gather:
		for count < wire.MaxBatchSubFrames {
			select {
			case t2, open := <-c.out:
				if !open {
					break gather
				}
				c.pending.Add(-1)
				if len(wbuf)+len(t2.resp) > maxCoalesce {
					carry = t2
					break gather
				}
				wbuf = append(wbuf, t2.resp...)
				count++
				c.owed.Done()
				s.putTask(t2)
			default:
				// Queue dry. If more responses are owed and we have not
				// lingered this cycle, hold one linger window open — every
				// response completing inside it rides this flush; otherwise
				// flush what we have. The window is armed at most once per
				// flush cycle, so it bounds added latency, not throughput.
				if lingered || c.pending.Load() == 0 {
					break gather
				}
				lingered = true
				fired := false
				linger.Reset(s.cfg.FlushLinger)
			window:
				for carry == nil && count < wire.MaxBatchSubFrames {
					select {
					case <-linger.C:
						fired = true
						break window
					case t2, open := <-c.out:
						if !open {
							break window
						}
						c.pending.Add(-1)
						if len(wbuf)+len(t2.resp) > maxCoalesce {
							carry = t2
							break window
						}
						wbuf = append(wbuf, t2.resp...)
						count++
						c.owed.Done()
						s.putTask(t2)
					}
				}
				if !fired && !linger.Stop() {
					<-linger.C
				}
				break gather
			}
		}
		frame := wbuf[wire.BatchHeaderBytes:]
		if count > 1 {
			// The request ids that matter ride inside the sub-frames; the
			// super-frame's own id carries no information.
			frame = wire.FinishBatch(wbuf, 0, count)
			s.batchesOut.Inc()
			s.batchedOut.Add(uint64(count))
		}
		// The write deadline is what keeps a graceful drain finite: a client
		// that stops reading trips it, the write fails, and the drain path
		// above accounts every owed response.
		c.nc.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
		if _, err := c.nc.Write(frame); err != nil {
			failed = true
		}
	}
	c.nc.Close()
	s.forget(c)
}

// getTask fetches a pooled task stamped for one request.
func (s *Server) getTask(c *conn, op wire.Op, id uint64) *task {
	t := s.taskPool.Get().(*task)
	t.c, t.op, t.id = c, op, id
	t.budget = 0
	return t
}

// expired reports whether the task's deadline budget lapsed since its
// frame arrived.
func (t *task) expired(now time.Time) bool {
	return t.budget > 0 && now.Sub(t.arrived) >= time.Duration(t.budget)*time.Microsecond
}

// putTask recycles a task. Buffers keep their capacity; references into
// per-request state are dropped. The writer is the only caller, at pack
// time, so this is where a traced task's flush hop closes and its span
// feeds the slow ring before the slot is recycled.
func (s *Server) putTask(t *task) {
	if s.tracer != nil && t.span.Active() {
		t.span.Mark(netHopFlush)
		s.tracer.Finish(&t.span)
	}
	t.span.Reset()
	t.c = nil
	t.batch = 0
	s.taskPool.Put(t)
}

// Close stops accepting connections, half-closes every live connection's
// read side so no new requests arrive, waits for every admitted request
// to execute and every owed response to flush, then closes the
// connections and stops the executor pool. It is idempotent and safe to
// call concurrently; every call returns only after the drain completes.
// The backend is not closed — its owner closes it after Close returns.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.draining.Store(true)
		s.mu.Lock()
		s.closed = true
		for l := range s.listeners {
			l.Close()
		}
		conns := make([]*conn, 0, len(s.conns))
		for c := range s.conns {
			conns = append(conns, c)
		}
		s.mu.Unlock()
		for _, c := range conns {
			closeRead(c.nc)
		}
		s.connWG.Wait()
		close(s.tasks)
		s.workerWG.Wait()
		close(s.closeDone)
	})
	<-s.closeDone
	return nil
}

// closeRead half-closes a connection's read side: the reader sees EOF and
// stops accepting requests while the write side stays open for the drain.
// Non-TCP connections (tests use net.Pipe) fall back to an immediate read
// deadline, which readLoop treats the same way.
func closeRead(nc net.Conn) {
	type readCloser interface{ CloseRead() error }
	if rc, ok := nc.(readCloser); ok {
		rc.CloseRead()
		return
	}
	nc.SetReadDeadline(time.Now())
}

// Metrics is a point-in-time snapshot of the network plane's counters.
type Metrics struct {
	Accepted  uint64        // connections accepted
	Requests  uint64        // embed requests completed successfully
	Updates   uint64        // update requests applied successfully
	Syncs     uint64        // sequenced updates absorbed (applied or replayed)
	Restores  uint64        // snapshot chunks installed
	UpdateSeq uint64        // update batches applied (the handshake sequence number)
	Pings     uint64        // pings answered
	Shed      uint64        // requests shed by admission control (OVERLOADED)
	Expired   uint64        // requests shed with an already-lapsed deadline (DEADLINE_EXCEEDED)
	Failures  uint64        // requests answered with a non-OVERLOADED error frame
	BadFrames uint64        // protocol violations (corrupt/oversized/unknown frames)
	Inflight  int64         // requests admitted and not yet completed
	Uptime    time.Duration // time since New

	BatchesIn  uint64 // BATCH request frames received
	BatchedIn  uint64 // sub-requests that arrived inside BATCH frames
	BatchesOut uint64 // coalesced BATCH response frames written
	BatchedOut uint64 // responses that rode inside coalesced frames

	// Latency digests server-side request latency: executor pickup to
	// response enqueued (decode and socket time excluded), in seconds.
	Latency stats.LatencySummary
}

// Metrics snapshots the server's counters. Safe at any time, including
// after Close.
func (s *Server) Metrics() Metrics {
	return Metrics{
		Accepted:   s.accepted.Load(),
		Requests:   s.requests.Load(),
		Updates:    s.updates.Load(),
		Syncs:      s.syncs.Load(),
		Restores:   s.restores.Load(),
		UpdateSeq:  s.updateSeq.Load(),
		Pings:      s.pings.Load(),
		Shed:       s.shed.Load(),
		Expired:    s.expired.Load(),
		Failures:   s.failures.Load(),
		BadFrames:  s.badFrames.Load(),
		Inflight:   s.inflight.Load(),
		Uptime:     time.Since(s.started),
		BatchesIn:  s.batchesIn.Load(),
		BatchedIn:  s.batchedIn.Load(),
		BatchesOut: s.batchesOut.Load(),
		BatchedOut: s.batchedOut.Load(),
		Latency:    s.lat.Summary(),
	}
}

// String renders the metrics as a small report.
func (m Metrics) String() string {
	return fmt.Sprintf(
		"network: %d conns accepted, up %s\n"+
			"served %d embeds, %d updates, %d syncs, %d restores (seq %d), %d pings (%d failures)\n"+
			"admission: %d shed (OVERLOADED), %d expired (DEADLINE_EXCEEDED), %d in flight, %d bad frames\n"+
			"coalescing: %d sub-requests in %d BATCH frames received, %d responses in %d coalesced frames written\n"+
			"server-side latency  %s",
		m.Accepted, m.Uptime.Round(time.Millisecond),
		m.Requests, m.Updates, m.Syncs, m.Restores, m.UpdateSeq, m.Pings, m.Failures,
		m.Shed, m.Expired, m.Inflight, m.BadFrames,
		m.BatchedIn, m.BatchesIn, m.BatchedOut, m.BatchesOut,
		m.Latency)
}
