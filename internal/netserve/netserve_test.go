package netserve_test

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tensordimm/internal/netclient"
	"tensordimm/internal/netserve"
	"tensordimm/internal/runtime"
	"tensordimm/internal/wire"
)

// stubBackend is a deterministic, instrumentable Backend: embeddings are
// a pure function of the request indices, and entered/release let tests
// hold requests in flight to exercise admission and drain.
type stubBackend struct {
	tables, reduction, dim, rows, maxBatch int

	mu      sync.Mutex
	updates []runtime.TableUpdate

	embeds  atomic.Int64
	entered chan struct{} // receives one token per EmbedInto entry (if non-nil)
	release chan struct{} // EmbedInto blocks for one token (if non-nil)
	failAll atomic.Bool
}

func newStub() *stubBackend {
	return &stubBackend{tables: 2, reduction: 2, dim: 4, rows: 64, maxBatch: 8}
}

// Geometry implements netserve.Backend.
func (b *stubBackend) Geometry() (int, int, int, int, int) {
	return b.tables, b.reduction, b.dim, b.rows, b.maxBatch
}

// stubValue is the deterministic embedding value at (table, sample,
// element k) for the given request rows.
func stubValue(rows [][]int, reduction, t, sample, k int) float32 {
	sum := 0
	for j := 0; j < reduction; j++ {
		sum += rows[t][sample*reduction+j]
	}
	return float32(sum*(t+1)*31 + k)
}

// EmbedInto implements netserve.Backend.
func (b *stubBackend) EmbedInto(dst []float32, rows [][]int, batch int) ([]float32, error) {
	if b.entered != nil {
		b.entered <- struct{}{}
	}
	if b.release != nil {
		<-b.release
	}
	if b.failAll.Load() {
		return nil, errors.New("stub backend failure")
	}
	b.embeds.Add(1)
	width := b.tables * b.dim
	for s := 0; s < batch; s++ {
		for t := 0; t < b.tables; t++ {
			for k := 0; k < b.dim; k++ {
				dst[s*width+t*b.dim+k] = stubValue(rows, b.reduction, t, s, k)
			}
		}
	}
	return dst, nil
}

// ApplyUpdates implements netserve.Backend.
func (b *stubBackend) ApplyUpdates(ups []runtime.TableUpdate) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.updates = append(b.updates, ups...)
	return nil
}

// MetricsText implements netserve.Backend.
func (b *stubBackend) MetricsText() string { return "stub backend metrics" }

// startServer serves a stub backend on a loopback listener, returning the
// server, its address, and a cleanup-registered close.
func startServer(t *testing.T, b netserve.Backend, cfg netserve.Config) (*netserve.Server, string) {
	t.Helper()
	srv, err := netserve.New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v after Close, want nil", err)
		}
	})
	return srv, l.Addr().String()
}

func dialClient(t *testing.T, addr string, cfg netclient.Config) *netclient.Client {
	t.Helper()
	cl, err := netclient.Dial(addr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

func reqRows(g wire.Geometry, batch, seed int) [][]int {
	rows := make([][]int, g.Tables)
	for t := range rows {
		rows[t] = make([]int, batch*g.Reduction)
		for i := range rows[t] {
			rows[t][i] = (seed + t*7 + i*3) % g.TableRows
		}
	}
	return rows
}

func TestConfigValidation(t *testing.T) {
	b := newStub()
	if _, err := netserve.New(b, netserve.Config{MaxInflight: -1}); err == nil {
		t.Fatal("negative MaxInflight accepted")
	}
	if _, err := netserve.New(b, netserve.Config{MaxFrameBytes: -1}); err == nil {
		t.Fatal("negative MaxFrameBytes accepted")
	}
	if _, err := netserve.New(b, netserve.Config{MaxFrameBytes: 64}); err == nil {
		t.Fatal("MaxFrameBytes below a maximal response accepted")
	}
	bad := newStub()
	bad.tables = 0
	if _, err := netserve.New(bad, netserve.Config{}); err == nil {
		t.Fatal("zero-table backend geometry accepted")
	}
}

func TestEmbedUpdatePingMetricsRoundTrip(t *testing.T) {
	b := newStub()
	srv, addr := startServer(t, b, netserve.Config{})
	cl := dialClient(t, addr, netclient.Config{})

	g := cl.Geometry()
	want := wire.Geometry{Tables: 2, Reduction: 2, Dim: 4, TableRows: 64, MaxBatch: 8}
	if g != want {
		t.Fatalf("handshake geometry %+v, want %+v", g, want)
	}

	const batch = 3
	rows := reqRows(g, batch, 5)
	got, err := cl.EmbedInto(nil, rows, batch)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < batch; s++ {
		for tt := 0; tt < g.Tables; tt++ {
			for k := 0; k < g.Dim; k++ {
				want := stubValue(rows, g.Reduction, tt, s, k)
				if got[s*g.Width()+tt*g.Dim+k] != want {
					t.Fatalf("sample %d table %d elem %d: %g, want %g", s, tt, k,
						got[s*g.Width()+tt*g.Dim+k], want)
				}
			}
		}
	}

	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	text, err := cl.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "stub backend metrics") || !strings.Contains(text, "network:") {
		t.Fatalf("metrics report missing sections:\n%s", text)
	}

	m := srv.Metrics()
	if m.Requests != 1 || m.Pings != 1 || m.Shed != 0 || m.BadFrames != 0 {
		t.Fatalf("metrics %+v", m)
	}
}

func TestBackendFailureMapsToInternalError(t *testing.T) {
	b := newStub()
	b.failAll.Store(true)
	_, addr := startServer(t, b, netserve.Config{})
	cl := dialClient(t, addr, netclient.Config{})
	g := cl.Geometry()
	_, err := cl.EmbedInto(nil, reqRows(g, 1, 0), 1)
	var se *netclient.ServerError
	if !errors.As(err, &se) || se.Code != wire.ErrInternal {
		t.Fatalf("err = %v, want INTERNAL ServerError", err)
	}
}

func TestAdmissionControlShedsWithOverloaded(t *testing.T) {
	b := newStub()
	b.entered = make(chan struct{}, 8)
	b.release = make(chan struct{})
	srv, addr := startServer(t, b, netserve.Config{MaxInflight: 2})
	cl := dialClient(t, addr, netclient.Config{})
	g := cl.Geometry()

	// Two requests occupy the whole budget.
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = cl.EmbedInto(nil, reqRows(g, 1, i), 1)
		}(i)
	}
	<-b.entered
	<-b.entered

	// The third is shed fail-fast with OVERLOADED while the budget is full.
	_, err := cl.EmbedInto(nil, reqRows(g, 1, 9), 1)
	var se *netclient.ServerError
	if !errors.As(err, &se) || se.Code != wire.ErrOverloaded {
		t.Fatalf("overloaded request: err = %v, want OVERLOADED ServerError", err)
	}
	if m := srv.Metrics(); m.Shed != 1 || m.Inflight != 2 {
		t.Fatalf("after shed: metrics %+v, want Shed 1 Inflight 2", m)
	}

	// Release the budget; the held requests complete successfully.
	close(b.release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("held request %d: %v", i, err)
		}
	}
	// And with budget free again, new requests are admitted.
	if _, err := cl.EmbedInto(nil, reqRows(g, 1, 3), 1); err != nil {
		t.Fatal(err)
	}
	if m := srv.Metrics(); m.Shed != 1 || m.Requests != 3 || m.Inflight != 0 {
		t.Fatalf("final metrics %+v", m)
	}
}

func TestGracefulDrainCompletesInflight(t *testing.T) {
	b := newStub()
	b.entered = make(chan struct{}, 1)
	b.release = make(chan struct{})
	srv, addr := startServer(t, b, netserve.Config{})
	cl := dialClient(t, addr, netclient.Config{})
	g := cl.Geometry()

	rows := reqRows(g, 2, 1)
	resCh := make(chan error, 1)
	var got []float32
	go func() {
		var err error
		got, err = cl.EmbedInto(nil, rows, 2)
		resCh <- err
	}()
	<-b.entered // the request is in the backend

	closeDone := make(chan struct{})
	go func() { srv.Close(); close(closeDone) }()
	// Close must not finish while the request is still executing.
	select {
	case <-closeDone:
		t.Fatal("Close returned with a request in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(b.release)
	if err := <-resCh; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if got[0] != stubValue(rows, g.Reduction, 0, 0, 0) {
		t.Fatal("drained request returned wrong values")
	}
	<-closeDone

	// After the drain, new connections are refused.
	if _, err := netclient.Dial(addr, netclient.Config{DialTimeout: time.Second}); err == nil {
		t.Fatal("dial succeeded after Close")
	}
	// And Close is idempotent.
	srv.Close()
}

func TestProtocolViolationsCloseConnection(t *testing.T) {
	b := newStub()
	srv, addr := startServer(t, b, netserve.Config{})

	// Bad magic: the connection is dropped without a server hello.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0, 0, 0, 0, 0, 0})
	if buf := make([]byte, 1); readEventually(nc, buf) != 0 {
		t.Fatal("server answered a bad-magic handshake")
	}
	nc.Close()

	// Good handshake, then an oversized frame length: connection closed.
	nc, err = net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.Write(wire.AppendClientHello(nil, 0))
	if _, _, err := wire.ReadServerHello(nc, nil); err != nil {
		t.Fatal(err)
	}
	nc.Write(binary.LittleEndian.AppendUint32(nil, 1<<31-1))
	if buf := make([]byte, 1); readEventually(nc, buf) != 0 {
		t.Fatal("server kept talking after an oversized frame")
	}
	nc.Close()

	// Good handshake, then an unknown op: connection closed.
	nc, err = net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.Write(wire.AppendClientHello(nil, 0))
	if _, _, err := wire.ReadServerHello(nc, nil); err != nil {
		t.Fatal(err)
	}
	nc.Write(wire.AppendFrame(nil, wire.Op(200), 1, nil))
	if buf := make([]byte, 1); readEventually(nc, buf) != 0 {
		t.Fatal("server kept talking after an unknown op")
	}
	nc.Close()

	waitFor(t, time.Second, func() bool { return srv.Metrics().BadFrames >= 3 })
}

// TestMalformedRequestGetsBadRequest pins that a shape-valid frame with
// out-of-range content is answered (BAD_REQUEST) rather than dropped.
func TestMalformedRequestGetsBadRequest(t *testing.T) {
	b := newStub()
	_, addr := startServer(t, b, netserve.Config{})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.Write(wire.AppendClientHello(nil, 0))
	h, _, err := wire.ReadServerHello(nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	g := h.Geom
	rows := make([][]int, g.Tables)
	for t := range rows {
		rows[t] = make([]int, g.Reduction)
	}
	rows[0][0] = g.TableRows // out of range
	nc.Write(wire.AppendEmbed(nil, 7, 0, rows, 1, g.Reduction))
	op, id, payload, _, err := wire.ReadFrame(nc, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if op != wire.OpError || id != 7 {
		t.Fatalf("op %d id %d, want OpError id 7", op, id)
	}
	code, _, err := wire.DecodeError(payload)
	if err != nil || code != wire.ErrBadRequest {
		t.Fatalf("code %v err %v, want BAD_REQUEST", code, err)
	}
}

// TestPipelinedOutOfOrderCompletion holds an early request in the backend
// while a later one on the same connection completes first — the response
// correlation the request ids exist for.
func TestPipelinedOutOfOrderCompletion(t *testing.T) {
	b := newStub()
	b.entered = make(chan struct{}, 2)
	b.release = make(chan struct{})
	_, addr := startServer(t, b, netserve.Config{})
	cl := dialClient(t, addr, netclient.Config{})
	g := cl.Geometry()

	slowRows := reqRows(g, 1, 1)
	slowDone := make(chan error, 1)
	var slowGot []float32
	go func() {
		var err error
		slowGot, err = cl.EmbedInto(nil, slowRows, 1)
		slowDone <- err
	}()
	<-b.entered // slow request is parked in the backend

	// A ping on the same connection completes while the embed is parked:
	// the response stream is not head-of-line blocked.
	pingDone := make(chan error, 1)
	go func() { pingDone <- cl.Ping() }()
	select {
	case err := <-pingDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ping blocked behind a parked embed: no out-of-order completion")
	}

	close(b.release)
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
	if slowGot[0] != stubValue(slowRows, g.Reduction, 0, 0, 0) {
		t.Fatal("parked request returned wrong values")
	}
}

// readEventually reads until data or EOF, returning the byte count (0 on
// clean close).
func readEventually(nc net.Conn, buf []byte) int {
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, _ := nc.Read(buf)
	return n
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestServeAfterCloseFails pins that Serve on a closed server returns an
// error instead of accepting.
func TestServeAfterCloseFails(t *testing.T) {
	srv, err := netserve.New(newStub(), netserve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := srv.Serve(l); err == nil {
		t.Fatal("Serve on a closed server succeeded")
	}
}

var _ fmt.Stringer = netserve.Metrics{} // the report must stay printable
