package netserve_test

import (
	"net"
	"testing"
	"time"

	"tensordimm/internal/netserve"
	"tensordimm/internal/wire"
)

// FuzzWireFrames feeds arbitrary bytes to a live server after a valid
// handshake — the frames a confused or malicious client could produce.
// The invariants: the server never panics (a goroutine panic would crash
// the fuzz process), and every frame it answers is a well-formed response
// op, with failures expressed as decodable typed ERROR frames. Malformed
// streams may also simply close the connection — that is the documented
// protocol-violation path, not a finding.
func FuzzWireFrames(f *testing.F) {
	b := newStub()
	srv, err := netserve.New(b, netserve.Config{Role: wire.RoleReplica})
	if err != nil {
		f.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	go srv.Serve(l)
	f.Cleanup(func() { srv.Close() })
	addr := l.Addr().String()
	g := srv.Geometry()

	// Seeds: one valid frame of every request op, plus classic corruptions.
	rows := make([][]int, g.Tables)
	for t := range rows {
		rows[t] = make([]int, g.Reduction)
	}
	f.Add(wire.AppendEmbed(nil, 1, 0, rows, 1, g.Reduction))
	f.Add(wire.AppendUpdate(nil, 2, 0, []wire.Update{{Table: 0, Rows: []int{3}, Grads: make([]float32, g.Dim)}}))
	f.Add(wire.AppendSync(nil, 3, 0, []wire.Update{{Table: 0, Rows: []int{3}, Grads: make([]float32, g.Dim)}}))
	f.Add(wire.AppendFrame(nil, wire.OpPing, 4, nil))
	f.Add(wire.AppendFrame(nil, wire.OpMetrics, 5, nil))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f})                     // absurd length prefix
	f.Add(wire.AppendFrame(nil, wire.Op(77), 6, []byte{1}))   // unknown op
	f.Add(wire.AppendEmbed(nil, 7, 0, rows, 1, g.Reduction)[:9]) // truncated mid-frame

	// Coalesced super-frames: valid BATCH of two embeds, plus the BATCH
	// corruptions the codec must reject — truncated interior sub-frame,
	// count word past the payload, nested batch.
	embed := wire.AppendEmbed(nil, 8, 0, rows, 1, g.Reduction)
	goodBatch := wire.AppendBatch(nil, 9, embed, embed)
	f.Add(goodBatch)
	f.Add(goodBatch[:len(goodBatch)-3]) // interior sub-frame cut mid-payload
	overCount := append([]byte(nil), goodBatch...)
	overCount[wire.BatchHeaderBytes-2] = 0xff // count claims far more sub-frames
	overCount[wire.BatchHeaderBytes-1] = 0xff // than the payload holds
	f.Add(overCount)
	f.Add(wire.AppendBatch(nil, 10, wire.AppendBatch(nil, 11, embed))) // nested batch

	f.Fuzz(func(t *testing.T, data []byte) {
		nc, err := net.Dial("tcp", addr)
		if err != nil {
			t.Skip("dial failed; server tearing down")
		}
		defer nc.Close()
		nc.SetDeadline(time.Now().Add(5 * time.Second))
		if _, err := nc.Write(wire.AppendClientHello(nil, 0)); err != nil {
			t.Skip("handshake write failed")
		}
		if _, _, err := wire.ReadServerHello(nc, nil); err != nil {
			t.Skip("handshake read failed")
		}
		nc.Write(data)
		if tc, ok := nc.(*net.TCPConn); ok {
			tc.CloseWrite() // EOF after the payload so the server drains replies
		}
		checkResp := func(op wire.Op, payload []byte) {
			switch op {
			case wire.OpEmbedResp, wire.OpUpdateResp, wire.OpSyncResp, wire.OpPong, wire.OpMetricsResp:
				// well-formed success replies
			case wire.OpError:
				if _, _, derr := wire.DecodeError(payload); derr != nil {
					t.Fatalf("undecodable ERROR frame for input %x: %v", data, derr)
				}
			default:
				t.Fatalf("server answered op %d to input %x", op, data)
			}
		}
		var buf []byte
		for {
			var op wire.Op
			var payload []byte
			op, _, payload, buf, err = wire.ReadFrame(nc, buf, 0)
			if err != nil {
				return // EOF or connection closed: the violation path, fine
			}
			if op != wire.OpBatch {
				checkResp(op, payload)
				continue
			}
			// Coalesced responses must themselves decode cleanly, and never
			// nest: every sub-frame is a plain response.
			it, derr := wire.DecodeBatch(payload)
			if derr != nil {
				t.Fatalf("undecodable BATCH response for input %x: %v", data, derr)
			}
			for {
				subOp, _, subPayload, ok := it.Next()
				if !ok {
					break
				}
				checkResp(subOp, subPayload)
			}
			if derr := it.Err(); derr != nil {
				t.Fatalf("corrupt BATCH response for input %x: %v", data, derr)
			}
		}
	})
}
