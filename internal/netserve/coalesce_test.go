package netserve_test

import (
	"bytes"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"tensordimm/internal/cluster"
	"tensordimm/internal/netclient"
	"tensordimm/internal/netserve"
	"tensordimm/internal/recsys"
	"tensordimm/internal/runtime"
	"tensordimm/internal/tensor"
	"tensordimm/internal/wire"
)

// coalesceModelCfg is the real-model geometry for the coalescing
// equivalence tests: dim 64 = one stripe on a 4-DIMM node, 301 rows so
// row-wise shard boundaries are uneven.
func coalesceModelCfg() recsys.Config {
	return recsys.Config{
		Name: "coalesce-test", Tables: 2, Reduction: 2, FCLayers: 1,
		EmbDim: 64, TableRows: 301, Hidden: []int{8},
	}
}

// startClusterServer fronts a real 2-shard cluster with a netserve.Server
// — the stack the coalescing paths must keep bit-identical to the golden
// model the cluster was built from.
func startClusterServer(t *testing.T, strat cluster.Strategy, cfg netserve.Config) (*recsys.Model, *netserve.Server, string) {
	t.Helper()
	m, err := recsys.Build(coalesceModelCfg(), 42)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cluster.New(m, cluster.Config{
		Nodes: 2, DIMMsPerNode: 4, MaxBatch: 16,
		CacheBytes: 64 << 10, Strategy: strat,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	srv, addr := startServer(t, netserve.ClusterBackend(c), cfg)
	return m, srv, addr
}

// randBatchRows draws one embed request against the real-model geometry.
func randBatchRows(rng *rand.Rand, mc recsys.Config, batch int) [][]int {
	rows := make([][]int, mc.Tables)
	for t := range rows {
		rows[t] = make([]int, batch*mc.Reduction)
		for i := range rows[t] {
			rows[t][i] = rng.Intn(mc.TableRows)
		}
	}
	return rows
}

// gradUpdate draws one single-table gradient update; zero=true yields a
// bit-identity-preserving no-op update (x + 0.0 == x for the non-zero
// float32 values a seeded build produces), so it can fly concurrently
// with golden-checked reads.
func gradUpdate(rng *rand.Rand, mc recsys.Config, maxBatch int, zero bool) runtime.TableUpdate {
	n := 1 + rng.Intn(maxBatch*mc.Reduction-1)
	rows := make([]int, n)
	for i := range rows {
		rows[i] = rng.Intn(mc.TableRows)
	}
	grads := tensor.New(n, mc.EmbDim)
	if !zero {
		g := grads.Data()
		for i := range g {
			g[i] = rng.Float32() - 0.5
		}
	}
	return runtime.TableUpdate{Table: rng.Intn(mc.Tables), Rows: rows, Grads: grads}
}

// goldenReq is one pre-planned embed request with its expected output,
// computed serially against the golden model before the concurrent phase
// fires (the cluster's update write-through mutates the golden tables, so
// golden forwards must never race in-flight updates).
type goldenReq struct {
	rows  [][]int
	batch int
	want  []float32
}

// TestCoalescedMixedTrafficBitIdentical drives concurrent EMBED and
// UPDATE traffic through one shared connection — the topology that makes
// the client's group-commit buffer and the server's linger window
// coalesce frames — and checks every read bit-identical against the
// golden model, for both sharding strategies. Real gradient updates are
// serialized between read rounds (concurrent writes to read rows have no
// defined interleaving); the concurrent updates are zero-gradient, so
// they exercise the mixed-op coalescing path without perturbing values.
func TestCoalescedMixedTrafficBitIdentical(t *testing.T) {
	for _, strat := range []cluster.Strategy{cluster.TableWise, cluster.RowWise} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			m, srv, addr := startClusterServer(t, strat, netserve.Config{})
			cl := dialClient(t, addr, netclient.Config{Conns: 1})
			rng := rand.New(rand.NewSource(9))
			for round := 0; round < 3; round++ {
				// Plan this round's requests and their golden answers while
				// nothing is in flight.
				plans := make([][]goldenReq, 6)
				for g := range plans {
					plans[g] = make([]goldenReq, 12)
					for i := range plans[g] {
						batch := 1 + rng.Intn(4)
						rows := randBatchRows(rng, m.Cfg, batch)
						want, err := m.Embedding.Forward(rows, batch)
						if err != nil {
							t.Fatal(err)
						}
						plans[g][i] = goldenReq{rows: rows, batch: batch,
							want: append([]float32(nil), want.Data()...)}
					}
				}

				var wg sync.WaitGroup
				for g := range plans {
					wg.Add(1)
					go func(reqs []goldenReq) {
						defer wg.Done()
						var dst []float32
						for _, rq := range reqs {
							got, err := cl.EmbedInto(dst, rq.rows, rq.batch)
							if err != nil {
								t.Errorf("embed: %v", err)
								return
							}
							dst = got
							for k, w := range rq.want {
								if got[k] != w {
									t.Errorf("value %d: net %v != golden %v", k, got[k], w)
									return
								}
							}
						}
					}(plans[g])
				}
				wg.Add(1)
				go func(seed int64) {
					defer wg.Done()
					r := rand.New(rand.NewSource(seed))
					for i := 0; i < 8; i++ {
						up := gradUpdate(r, m.Cfg, 16, true)
						if err := cl.Update([]runtime.TableUpdate{up}); err != nil {
							t.Errorf("concurrent update: %v", err)
							return
						}
					}
				}(rng.Int63())
				wg.Wait()
				if t.Failed() {
					return
				}

				// A real update lands between rounds, so later rounds read
				// evolved state; the cluster's write-through keeps the golden
				// model current, no separate accumulation needed.
				up := gradUpdate(rng, m.Cfg, 16, false)
				if err := cl.Update([]runtime.TableUpdate{up}); err != nil {
					t.Fatalf("serialized update: %v", err)
				}
			}
			sm := srv.Metrics()
			t.Logf("coalescing under mixed traffic: %d reqs in %d BATCHes, %d resps in %d BATCHes",
				sm.BatchedIn, sm.BatchesIn, sm.BatchedOut, sm.BatchesOut)
		})
	}
}

// readEmbedResponses drains frames until `want` embed responses have
// arrived, transparently unwrapping coalesced BATCH frames, and returns
// the response payloads by request id.
func readEmbedResponses(t *testing.T, nc net.Conn, want int) map[uint64][]byte {
	t.Helper()
	got := make(map[uint64][]byte, want)
	keep := func(op wire.Op, id uint64, payload []byte) {
		if op != wire.OpEmbedResp {
			t.Fatalf("op %d for request %d, want EMBED_RESP", op, id)
		}
		got[id] = append([]byte(nil), payload...)
	}
	var buf []byte
	for len(got) < want {
		var op wire.Op
		var id uint64
		var payload []byte
		var err error
		op, id, payload, buf, err = wire.ReadFrame(nc, buf, 0)
		if err != nil {
			t.Fatalf("reading responses: %v", err)
		}
		if op != wire.OpBatch {
			keep(op, id, payload)
			continue
		}
		it, err := wire.DecodeBatch(payload)
		if err != nil {
			t.Fatalf("decoding BATCH response: %v", err)
		}
		for {
			subOp, subID, subPayload, ok := it.Next()
			if !ok {
				break
			}
			keep(subOp, subID, subPayload)
		}
		if err := it.Err(); err != nil {
			t.Fatalf("corrupt BATCH response: %v", err)
		}
	}
	return got
}

// TestBatchSplitBitIdenticalToUnbatched pins the coalescing equivalence
// at the wire level: the same embed requests answered through one BATCH
// super-frame carry byte-identical response payloads to the plain
// one-frame-per-request path, against a real sharded cluster.
func TestBatchSplitBitIdenticalToUnbatched(t *testing.T) {
	m, srv, addr := startClusterServer(t, cluster.TableWise, netserve.Config{})
	rng := rand.New(rand.NewSource(17))

	const k = 5
	frames := make([][]byte, k)
	for i := range frames {
		batch := 1 + rng.Intn(4)
		frames[i] = wire.AppendEmbed(nil, uint64(100+i), 0, randBatchRows(rng, m.Cfg, batch), batch, m.Cfg.Reduction)
	}

	// Plain path: one request in flight at a time, one frame per response.
	plain, _ := rawDial(t, addr)
	plainResp := make(map[uint64][]byte, k)
	for i, f := range frames {
		op, id, payload := rawCall(t, plain, f)
		if op != wire.OpEmbedResp || id != uint64(100+i) {
			t.Fatalf("plain request %d answered op %d id %d", i, op, id)
		}
		plainResp[id] = append([]byte(nil), payload...)
	}

	// Coalesced path: all k requests ride one BATCH super-frame.
	batched, _ := rawDial(t, addr)
	super := wire.AppendBatch(nil, 7, frames...)
	if _, err := batched.Write(super); err != nil {
		t.Fatal(err)
	}
	batchResp := readEmbedResponses(t, batched, k)

	for id, want := range plainResp {
		if !bytes.Equal(batchResp[id], want) {
			t.Fatalf("request %d: batched response differs from plain response", id)
		}
	}
	sm := srv.Metrics()
	if sm.BatchesIn < 1 || sm.BatchedIn < k {
		t.Fatalf("server metrics counted %d sub-requests in %d BATCHes, want >=%d in >=1",
			sm.BatchedIn, sm.BatchesIn, k)
	}
}

// TestBatchDrainCompletesSubRequests pins graceful drain for coalesced
// requests: every sub-request of a BATCH in flight when Close begins is
// answered before the connection dies — none are silently dropped.
func TestBatchDrainCompletesSubRequests(t *testing.T) {
	const k = 4
	b := newStub()
	b.entered = make(chan struct{}, k)
	b.release = make(chan struct{})
	srv, addr := startServer(t, b, netserve.Config{})
	nc, _ := rawDial(t, addr)
	g := srv.Geometry()

	frames := make([][]byte, k)
	for i := range frames {
		frames[i] = wire.AppendEmbed(nil, uint64(i+1), 0, reqRows(g, 1, i), 1, g.Reduction)
	}
	if _, err := nc.Write(wire.AppendBatch(nil, 9, frames...)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < k; i++ {
		<-b.entered // every sub-request is executing in the backend
	}

	closeDone := make(chan struct{})
	go func() { srv.Close(); close(closeDone) }()
	select {
	case <-closeDone:
		t.Fatal("Close returned with BATCH sub-requests in flight")
	case <-time.After(50 * time.Millisecond):
	}

	close(b.release)
	resp := readEmbedResponses(t, nc, k)
	for i := 1; i <= k; i++ {
		if _, ok := resp[uint64(i)]; !ok {
			t.Fatalf("sub-request %d of the in-flight BATCH was dropped during drain", i)
		}
	}
	<-closeDone
}

// TestResponsesCoalesceUnderLinger pins the server-side group commit:
// responses completing together inside one linger window leave in
// coalesced BATCH frames, not one syscall each. The backend gate releases
// all requests at once, so the coalescing is deterministic, not a timing
// accident.
func TestResponsesCoalesceUnderLinger(t *testing.T) {
	const k = 16
	b := newStub()
	b.entered = make(chan struct{}, k)
	b.release = make(chan struct{})
	srv, addr := startServer(t, b, netserve.Config{FlushLinger: 5 * time.Millisecond})
	cl := dialClient(t, addr, netclient.Config{Conns: 1})
	g := cl.Geometry()

	calls := make([]*netclient.Call, k)
	for i := range calls {
		ca, err := cl.StartEmbed(nil, reqRows(g, 1, i), 1)
		if err != nil {
			t.Fatal(err)
		}
		calls[i] = ca
	}
	for i := 0; i < k; i++ {
		<-b.entered // all k requests blocked in the backend together
	}
	close(b.release)
	for i, ca := range calls {
		if err := <-ca.Done(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		rows := reqRows(g, 1, i)
		if got, want := ca.Dst()[0], stubValue(rows, g.Reduction, 0, 0, 0); got != want {
			t.Fatalf("call %d decoded %v, want %v", i, got, want)
		}
		cl.Finish(ca)
	}

	sm := srv.Metrics()
	if sm.BatchesOut == 0 {
		t.Fatalf("no coalesced response frames despite %d simultaneous completions under a 5ms linger", k)
	}
	if sm.BatchedOut < 2 {
		t.Fatalf("only %d responses rode in BATCH frames, want >=2", sm.BatchedOut)
	}
}
