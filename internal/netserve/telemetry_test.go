package netserve_test

import (
	"testing"
	"time"

	"tensordimm/internal/netclient"
	"tensordimm/internal/netserve"
	"tensordimm/internal/runtime"
	"tensordimm/internal/telemetry"
	"tensordimm/internal/tensor"
)

// TestTelemetryInstrumentedServer drives embeds, an update and a ping
// through a server wired to a telemetry registry and asserts the
// network-plane series, the wire-carried snapshot, and the slow-request
// ring (one request is held past the 1ms default slow threshold, so its
// per-hop trace must land in the ring).
func TestTelemetryInstrumentedServer(t *testing.T) {
	const fastEmbeds = 5
	b := newStub()
	// Token-gate the backend: pre-filled tokens let the fast phase run
	// unblocked; the final embed waits for a late token, making it slow.
	b.release = make(chan struct{}, fastEmbeds+1)
	for i := 0; i < fastEmbeds; i++ {
		b.release <- struct{}{}
	}
	reg := telemetry.NewRegistry()
	_, addr := startServer(t, b, netserve.Config{Registry: reg})
	cl := dialClient(t, addr, netclient.Config{})
	g := cl.Geometry()

	var dst []float32
	for i := 0; i < fastEmbeds; i++ {
		d, err := cl.EmbedInto(dst, reqRows(g, 2, i), 2)
		if err != nil {
			t.Fatal(err)
		}
		dst = d
	}
	grads := tensor.New(2, g.Dim)
	if err := cl.Update([]runtime.TableUpdate{{Table: 0, Rows: []int{1, 2}, Grads: grads}}); err != nil {
		t.Fatal(err)
	}
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	go func() {
		time.Sleep(2 * time.Millisecond)
		b.release <- struct{}{}
	}()
	if _, err := cl.EmbedInto(dst, reqRows(g, 2, 99), 2); err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if v, ok := snap.Counter("tensordimm_net_requests_total"); !ok || v != fastEmbeds+1 {
		t.Fatalf("net_requests_total = %d, %v; want %d, true", v, ok, fastEmbeds+1)
	}
	if v, ok := snap.Counter("tensordimm_net_updates_total"); !ok || v != 1 {
		t.Fatalf("net_updates_total = %d, %v; want 1, true", v, ok)
	}
	if v, ok := snap.Counter("tensordimm_net_pings_total"); !ok || v != 1 {
		t.Fatalf("net_pings_total = %d, %v; want 1, true", v, ok)
	}
	if v, ok := snap.Counter("tensordimm_net_shed_total"); !ok || v != 0 {
		t.Fatalf("net_shed_total = %d, %v; want 0, true", v, ok)
	}
	if v, ok := snap.Gauge("tensordimm_net_inflight"); !ok || v != 0 {
		t.Fatalf("net_inflight = %g, %v; want 0, true", v, ok)
	}
	h, ok := snap.Histogram("tensordimm_net_request_seconds")
	if !ok || h.Count < fastEmbeds+1 {
		t.Fatalf("net_request_seconds count = %d, %v; want >= %d, true", h.Count, ok, fastEmbeds+1)
	}

	// The gated final embed ran well past the 1ms default slow threshold,
	// so the ring must hold its trace with all three hops closed.
	slow := reg.SlowRequests()
	if len(slow) == 0 {
		t.Fatal("slow-request ring empty after a 2ms-gated request")
	}
	if slow[0].Tracer != "net" || len(slow[0].Hops) != 3 {
		t.Fatalf("slow[0] = tracer %q with %d hops; want net with 3", slow[0].Tracer, len(slow[0].Hops))
	}

	// The METRICS wire op carries the same registry as a versioned
	// snapshot ahead of the human report.
	wireSnap, text, err := cl.MetricsSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if wireSnap == nil || wireSnap.Version != telemetry.SnapshotVersion {
		t.Fatalf("wire snapshot = %+v; want version %d", wireSnap, telemetry.SnapshotVersion)
	}
	if v, ok := wireSnap.Counter("tensordimm_net_requests_total"); !ok || v != fastEmbeds+1 {
		t.Fatalf("wire net_requests_total = %d, %v; want %d, true", v, ok, fastEmbeds+1)
	}
	if text == "" {
		t.Fatal("wire payload missing the human text report")
	}
}
