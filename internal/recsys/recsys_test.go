package recsys

import (
	"testing"

	"tensordimm/internal/workload"
)

func TestTable2Parameters(t *testing.T) {
	// The benchmark zoo must match Table 2 of the paper exactly.
	cases := []struct {
		cfg       Config
		tables    int
		reduction int
		fcLayers  int
	}{
		{NCF(), 4, 2, 4},
		{YouTube(), 2, 50, 4},
		{Fox(), 2, 50, 1},
		{Facebook(), 8, 25, 6},
	}
	for _, c := range cases {
		if c.cfg.Tables != c.tables || c.cfg.Reduction != c.reduction || c.cfg.FCLayers != c.fcLayers {
			t.Errorf("%s: got (%d tables, %d reduction, %d layers), want (%d, %d, %d)",
				c.cfg.Name, c.cfg.Tables, c.cfg.Reduction, c.cfg.FCLayers,
				c.tables, c.reduction, c.fcLayers)
		}
		if c.cfg.EmbDim != 512 {
			t.Errorf("%s: EmbDim %d, want the paper's 512 default", c.cfg.Name, c.cfg.EmbDim)
		}
		if err := c.cfg.Validate(); err != nil {
			t.Errorf("%s: %v", c.cfg.Name, err)
		}
	}
	if len(All()) != 4 {
		t.Fatal("All() must return the four benchmarks")
	}
}

func TestValidateCatchesBadConfigs(t *testing.T) {
	c := NCF()
	c.Tables = 0
	if err := c.Validate(); err == nil {
		t.Fatal("want geometry error")
	}
	c = NCF()
	c.Hidden = []int{1}
	if err := c.Validate(); err == nil {
		t.Fatal("want hidden/FC mismatch error")
	}
}

func TestByteAccounting(t *testing.T) {
	c := YouTube() // 2 tables x 50 reduction x 2 KiB embeddings
	if c.EmbBytes() != 2048 {
		t.Fatalf("EmbBytes = %d", c.EmbBytes())
	}
	if got := c.GatheredBytes(64); got != 64*2*50*2048 {
		t.Fatalf("GatheredBytes = %d", got)
	}
	if got := c.ReducedBytes(64); got != 64*2*2048 {
		t.Fatalf("ReducedBytes = %d", got)
	}
	if got := c.TotalTableBytes(); got != 2*100_000*2048 {
		t.Fatalf("TotalTableBytes = %d", got)
	}
}

func TestWithEmbDim(t *testing.T) {
	c := Fox().WithEmbDim(4096)
	if c.EmbDim != 4096 || Fox().EmbDim != 512 {
		t.Fatal("WithEmbDim must copy")
	}
	// Scaling dim 8x scales gathered bytes 8x (Figure 15's premise).
	if c.GatheredBytes(8) != 8*Fox().GatheredBytes(8) {
		t.Fatal("gathered bytes must scale with dim")
	}
}

func TestMLPDims(t *testing.T) {
	c := Facebook()
	dims := c.MLPDims()
	if dims[0] != 8*512 {
		t.Fatalf("input dim = %d, want tables x embDim", dims[0])
	}
	if dims[len(dims)-1] != 1 {
		t.Fatal("output must be the scalar event probability")
	}
	if len(dims) != c.FCLayers+2 {
		t.Fatalf("dims chain length %d, want %d", len(dims), c.FCLayers+2)
	}
}

func TestBuildAndInfer(t *testing.T) {
	cfg := NCF()
	cfg.TableRows = 500 // keep the test small
	cfg.EmbDim = 64
	cfg.Hidden = []int{32, 16, 8, 4}
	m, err := Build(cfg, 42)
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := workload.NewGenerator(cfg.TableRows, workload.Uniform, 1)
	batch := 4
	indices := gen.Batch(cfg.Tables, batch, cfg.Reduction)
	probs, err := m.Infer(indices, batch)
	if err != nil {
		t.Fatal(err)
	}
	if probs.Dim(0) != batch || probs.Dim(1) != 1 {
		t.Fatalf("output shape %v", probs.Shape())
	}
	for i := 0; i < batch; i++ {
		if p := probs.At(i, 0); p <= 0 || p >= 1 {
			t.Fatalf("probability %v outside (0,1)", p)
		}
	}
}

func TestInferMatchesTwoStage(t *testing.T) {
	// Full Infer must equal embedding Forward + InferFromEmbeddings —
	// the invariant that lets the five design points differ only in where
	// the stages run, never in results.
	cfg := YouTube()
	cfg.TableRows = 300
	cfg.EmbDim = 32
	cfg.Hidden = []int{16, 8, 4, 2}
	cfg.Reduction = 5
	m, err := Build(cfg, 7)
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := workload.NewGenerator(cfg.TableRows, workload.Zipfian, 2)
	batch := 3
	indices := gen.Batch(cfg.Tables, batch, cfg.Reduction)

	full, err := m.Infer(indices, batch)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := m.Embedding.Forward(indices, batch)
	if err != nil {
		t.Fatal(err)
	}
	twoStage, err := m.InferFromEmbeddings(emb)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < batch; i++ {
		if full.At(i, 0) != twoStage.At(i, 0) {
			t.Fatal("staged inference differs from fused inference")
		}
	}
}

func TestBuildValidates(t *testing.T) {
	bad := NCF()
	bad.Hidden = nil
	if _, err := Build(bad, 1); err == nil {
		t.Fatal("want validation error")
	}
}

func TestNCFModelSizeGrowth(t *testing.T) {
	// Figure 3's qualitative claims:
	// (1) scaling the embedding dim grows the model far faster than
	//     scaling the MLP dim;
	// (2) at 5M users + 5M items and large dims, the model reaches
	//     hundreds of GBs.
	const users, items = 5_000_000, 5_000_000
	base := NCFModelSizeBytes(64, 64, users, items)
	embScaled := NCFModelSizeBytes(64, 512, users, items)
	mlpScaled := NCFModelSizeBytes(512, 64, users, items)
	embGrowth := float64(embScaled) / float64(base)
	mlpGrowth := float64(mlpScaled) / float64(base)
	if embGrowth < 4*mlpGrowth {
		t.Fatalf("embedding growth %.1fx not >> MLP growth %.1fx", embGrowth, mlpGrowth)
	}
	huge := NCFModelSizeBytes(2048, 8192, users, items)
	if huge < 500<<30 {
		t.Fatalf("8192-dim model = %d GB, want hundreds of GBs", huge>>30)
	}
	// Monotonicity in both axes.
	if NCFModelSizeBytes(128, 64, users, items) < base {
		t.Fatal("model size must grow with MLP dim")
	}
	if NCFModelSizeBytes(64, 128, users, items) < base {
		t.Fatal("model size must grow with embedding dim")
	}
}
