// Package recsys provides the four DNN-based recommender systems of the
// paper's evaluation (Table 2) — NCF (MLPerf), YouTube, Fox and Facebook —
// plus the NCF model-size growth model of Figure 3.
//
// Each benchmark is characterised by the parameters the paper reports:
// number of embedding lookup tables, maximum reduction (lookups pooled per
// output), number of FC/MLP layers, and the default embedding dimension of
// 512 (Section 5). Table row counts are synthetic (the paper's production
// tables are hundreds of GBs; geometry, not contents, is what matters).
package recsys

import (
	"fmt"

	"tensordimm/internal/embed"
	"tensordimm/internal/isa"
	"tensordimm/internal/nn"
	"tensordimm/internal/tensor"
)

// DefaultEmbDim is the paper's default embedding dimension (Section 5).
const DefaultEmbDim = 512

// DefaultBatch is the paper's default inference batch size (Section 5,
// after Facebook's reported 1-100 deployment range).
const DefaultBatch = 64

// Config describes one recommender benchmark.
type Config struct {
	Name      string
	Tables    int          // embedding lookup tables (Table 2)
	Reduction int          // max reduction: lookups pooled per output row
	FCLayers  int          // FC/MLP layer count (Table 2)
	EmbDim    int          // embedding dimension (512 default)
	TableRows int          // rows per lookup table (synthetic)
	Hidden    []int        // hidden layer widths
	Op        isa.ReduceOp // pooling operator
	Mean      bool         // mean pooling (AVERAGE) vs plain reduce
}

// NCF returns the MLPerf neural-collaborative-filtering benchmark:
// 4 tables (user/item for the GMF and MLP paths), pairwise reduction.
func NCF() Config {
	return Config{
		Name: "NCF", Tables: 4, Reduction: 2, FCLayers: 4,
		EmbDim: DefaultEmbDim, TableRows: 100_000,
		Hidden: []int{1024, 512, 256, 128},
		Op:     isa.RMul, // GMF combines user x item element-wise
	}
}

// YouTube returns the YouTube candidate-ranking benchmark: 2 tables
// (watch and search histories), 50-way average pooling.
func YouTube() Config {
	return Config{
		Name: "YouTube", Tables: 2, Reduction: 50, FCLayers: 4,
		EmbDim: DefaultEmbDim, TableRows: 100_000,
		Hidden: []int{1024, 512, 256, 128},
		Op:     isa.RAdd, Mean: true,
	}
}

// Fox returns the Fox theatrical-release analysis benchmark: 2 tables,
// 50-way pooling, a single FC layer.
func Fox() Config {
	return Config{
		Name: "Fox", Tables: 2, Reduction: 50, FCLayers: 1,
		EmbDim: DefaultEmbDim, TableRows: 100_000,
		Hidden: []int{256},
		Op:     isa.RAdd, Mean: true,
	}
}

// Facebook returns the Facebook (DLRM-class) benchmark: 8 tables, 25-way
// pooling, 6 FC layers.
func Facebook() Config {
	return Config{
		Name: "Facebook", Tables: 8, Reduction: 25, FCLayers: 6,
		EmbDim: DefaultEmbDim, TableRows: 100_000,
		Hidden: []int{2048, 1024, 512, 256, 128, 64},
		Op:     isa.RAdd, Mean: true,
	}
}

// All returns the four benchmarks in the paper's order.
func All() []Config {
	return []Config{NCF(), YouTube(), Fox(), Facebook()}
}

// Validate checks internal consistency (Table 2 invariants).
func (c Config) Validate() error {
	if c.Tables <= 0 || c.Reduction <= 0 || c.EmbDim <= 0 || c.TableRows <= 0 {
		return fmt.Errorf("recsys %s: non-positive geometry", c.Name)
	}
	if len(c.Hidden) != c.FCLayers {
		return fmt.Errorf("recsys %s: %d hidden dims for %d FC layers", c.Name, len(c.Hidden), c.FCLayers)
	}
	return nil
}

// WithEmbDim returns a copy with the embedding dimension scaled, used by the
// large-embedding studies (Figures 12, 15, 16: 1-8x of the 512 default).
func (c Config) WithEmbDim(dim int) Config {
	c.EmbDim = dim
	return c
}

// MLPDims returns the full dimension chain of the top MLP: the concatenated
// embedding width in, the hidden layers, and the scalar probability out.
func (c Config) MLPDims() []int {
	dims := []int{c.Tables * c.EmbDim}
	dims = append(dims, c.Hidden...)
	return append(dims, 1)
}

// EmbBytes returns bytes per embedding vector.
func (c Config) EmbBytes() int64 { return int64(c.EmbDim) * 4 }

// GatheredBytes returns the table bytes gathered for one batch:
// batch x tables x reduction x embedding size.
func (c Config) GatheredBytes(batch int) int64 {
	return int64(batch) * int64(c.Tables) * int64(c.Reduction) * c.EmbBytes()
}

// ReducedBytes returns the pooled embedding-layer output bytes for one batch.
func (c Config) ReducedBytes(batch int) int64 {
	return int64(batch) * int64(c.Tables) * c.EmbBytes()
}

// TotalTableBytes returns the lookup-table footprint of the model.
func (c Config) TotalTableBytes() int64 {
	return int64(c.Tables) * int64(c.TableRows) * c.EmbBytes()
}

// Model is a fully materialized recommender: real tables and a real MLP.
type Model struct {
	Cfg       Config
	Embedding *embed.Layer
	MLP       *nn.MLP
}

// Build materializes a model with deterministic random parameters.
func Build(cfg Config, seed int64) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	layer := &embed.Layer{Reduction: cfg.Reduction, Op: cfg.Op, Mean: cfg.Mean}
	for t := 0; t < cfg.Tables; t++ {
		tb, err := embed.NewRandomTable(cfg.TableRows, cfg.EmbDim, seed+int64(t))
		if err != nil {
			return nil, err
		}
		layer.Tables = append(layer.Tables, tb)
	}
	mlp, err := nn.NewMLP(cfg.MLPDims(), seed+1000)
	if err != nil {
		return nil, err
	}
	return &Model{Cfg: cfg, Embedding: layer, MLP: mlp}, nil
}

// Infer runs a full functional inference: embedding layer then the MLP,
// returning [batch, 1] event probabilities.
func (m *Model) Infer(perTableIndices [][]int, batch int) (*tensor.Tensor, error) {
	x, err := m.Embedding.Forward(perTableIndices, batch)
	if err != nil {
		return nil, err
	}
	return m.MLP.Forward(x)
}

// InferFromEmbeddings runs only the DNN stage on an already-pooled
// embedding tensor (what the GPU does after receiving the reduced tensor
// from a TensorNode).
func (m *Model) InferFromEmbeddings(x *tensor.Tensor) (*tensor.Tensor, error) {
	return m.MLP.Forward(x)
}

// NCFModelSizeBytes reproduces the Figure 3 model-size model: a neural
// collaborative filtering recommender with `users` user vectors and `items`
// item vectors per lookup table (5 million each in the paper), duplicated
// across the GMF and MLP paths, plus the MLP tower parameters.
//
//	embeddings: (users + items) x embDim x 4 B x 2 paths
//	MLP tower:  NCF's standard pyramid [4m, 2m, m] for MLP dimension m, fed
//	            by the concatenated user|item vector (2 x embDim).
func NCFModelSizeBytes(mlpDim, embDim int, users, items int64) int64 {
	embBytes := (users + items) * int64(embDim) * 4 * 2
	in := 2 * int64(embDim)
	m := int64(mlpDim)
	mlpParams := in*4*m + 4*m*2*m + 2*m*m + m // three tower layers + output
	return embBytes + mlpParams*4
}
