// Package interconnect models the system interconnects of the paper's
// evaluation platform (Sections 2.2 and 5): the host PCIe(v3) bus that the
// conventional hybrid CPU-GPU design must cross, and the NVLink(v2)/NVSwitch
// GPU-side fabric that TensorNode is attached to.
//
// A transfer is modeled as fixed latency plus size over effective bandwidth —
// adequate here because the paper's tensor transfers are large, streaming
// copies (cudaMemcpy / CC-NUMA reads) whose cost is bandwidth-dominated, and
// because the evaluation's link-sensitivity study (Figure 16) varies exactly
// this bandwidth parameter.
package interconnect

import "fmt"

// Link is one interconnect path between two endpoints.
type Link struct {
	Name string
	// BandwidthGBs is the effective uni-directional data bandwidth in GB/s.
	BandwidthGBs float64
	// LatencyS is the fixed per-transfer overhead in seconds (driver call,
	// DMA setup, switch traversal).
	LatencyS float64
}

// PCIe3x16 returns the host PCIe v3 x16 link: 16 GB/s theoretical, with the
// ~10 us cudaMemcpy fixed overhead of a discrete GPU.
func PCIe3x16() Link {
	return Link{Name: "PCIe3-x16", BandwidthGBs: 16, LatencyS: 10e-6}
}

// NVLink2 returns an NVLink v2 path of n links (25 GB/s each, Section 2.2);
// a V100 has six, for 150 GB/s per GPU through NVSwitch.
func NVLink2(n int) Link {
	return Link{
		Name:         fmt.Sprintf("NVLink2-x%d", n),
		BandwidthGBs: 25 * float64(n),
		LatencyS:     5e-6,
	}
}

// WithBandwidth returns a copy of the link with a different bandwidth, used
// by the Figure 16 sensitivity sweep (25/50/150 GB/s).
func (l Link) WithBandwidth(gbs float64) Link {
	l.BandwidthGBs = gbs
	l.Name = fmt.Sprintf("%s@%.0fGB/s", l.Name, gbs)
	return l
}

// TransferSeconds returns the time to move `bytes` across the link.
func (l Link) TransferSeconds(bytes int64) float64 {
	if bytes <= 0 {
		return 0
	}
	return l.LatencyS + float64(bytes)/(l.BandwidthGBs*1e9)
}

// Switch models an NVSwitch-class non-blocking crossbar: every endpoint pair
// communicates at full port bandwidth concurrently (Section 2.2: "any given
// GPU within DGX-2 can communicate with any other GPU at the full
// uni-directional bandwidth"). Congestion arises only at endpoint ports.
type Switch struct {
	Name  string
	Ports int
	// PortLink is the per-port link (NVLink bundle of each endpoint).
	PortLink Link
}

// NVSwitch returns a DGX-2-class switch: 16 ports of 6 NVLink2 bricks.
func NVSwitch(ports int) Switch {
	return Switch{Name: "NVSwitch", Ports: ports, PortLink: NVLink2(6)}
}

// TransferSeconds returns the time for a point-to-point transfer through the
// switch: bound by the source and destination port bandwidth (equal here),
// with one extra hop of latency.
func (s Switch) TransferSeconds(bytes int64) float64 {
	return s.PortLink.TransferSeconds(bytes) + s.PortLink.LatencyS
}

// BisectionGBs returns the switch's total bisection bandwidth.
func (s Switch) BisectionGBs() float64 {
	return float64(s.Ports) / 2 * s.PortLink.BandwidthGBs
}

// ConvergeSeconds returns the time for several concurrent transfers — one
// per element of bytes, each from a distinct source port — to converge on a
// single destination port. The sources inject in parallel (the crossbar is
// non-blocking), so the destination port's bandwidth is the bottleneck: the
// payloads serialize there, while the fixed DMA-setup and switch-hop
// latencies of the sources overlap and are charged once. Zero-byte entries
// (shards not participating in a request) cost nothing; an all-empty list
// returns 0.
func (s Switch) ConvergeSeconds(bytes []int64) float64 {
	var total int64
	for _, b := range bytes {
		if b > 0 {
			total += b
		}
	}
	if total == 0 {
		return 0
	}
	return s.TransferSeconds(total)
}
