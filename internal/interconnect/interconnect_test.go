package interconnect

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPCIeVsNVLinkRatio(t *testing.T) {
	// The paper's premise: NVLink moves embeddings ~9x faster than PCIe
	// (Section 1: "approximately 9x faster than PCIe").
	pcie := PCIe3x16()
	nvlink := NVLink2(6)
	ratio := nvlink.BandwidthGBs / pcie.BandwidthGBs
	if math.Abs(ratio-9.375) > 0.01 {
		t.Fatalf("NVLink/PCIe bandwidth ratio = %.2f, want 150/16", ratio)
	}
}

func TestTransferSeconds(t *testing.T) {
	l := Link{Name: "test", BandwidthGBs: 10, LatencyS: 1e-6}
	// 10 GB at 10 GB/s = 1 s + 1 us.
	got := l.TransferSeconds(10e9)
	if math.Abs(got-1.000001) > 1e-9 {
		t.Fatalf("TransferSeconds = %v", got)
	}
	if l.TransferSeconds(0) != 0 {
		t.Fatal("zero bytes must cost zero")
	}
	if l.TransferSeconds(-5) != 0 {
		t.Fatal("negative bytes must cost zero")
	}
}

func TestSmallTransferLatencyBound(t *testing.T) {
	// A 64 B transfer must be dominated by fixed latency, not bandwidth.
	l := NVLink2(6)
	got := l.TransferSeconds(64)
	if got < l.LatencyS || got > l.LatencyS*1.01 {
		t.Fatalf("64 B transfer = %v, want ~latency %v", got, l.LatencyS)
	}
}

func TestWithBandwidth(t *testing.T) {
	base := NVLink2(6)
	for _, gbs := range []float64{25, 50, 150} { // the Figure 16 sweep
		l := base.WithBandwidth(gbs)
		if l.BandwidthGBs != gbs {
			t.Fatalf("WithBandwidth(%v) = %v", gbs, l.BandwidthGBs)
		}
		if l.LatencyS != base.LatencyS {
			t.Fatal("WithBandwidth must preserve latency")
		}
	}
	if base.BandwidthGBs != 150 {
		t.Fatal("WithBandwidth must not mutate the receiver")
	}
}

func TestNVSwitch(t *testing.T) {
	sw := NVSwitch(16)
	if sw.BisectionGBs() != 8*150 {
		t.Fatalf("bisection = %v", sw.BisectionGBs())
	}
	// One switch hop adds one extra port latency.
	direct := sw.PortLink.TransferSeconds(1 << 20)
	through := sw.TransferSeconds(1 << 20)
	if through <= direct {
		t.Fatal("switch hop must add latency")
	}
	if through-direct > 2*sw.PortLink.LatencyS {
		t.Fatalf("switch hop cost %v too large", through-direct)
	}
}

// Property: transfer time is monotone in size and bandwidth.
func TestQuickTransferMonotone(t *testing.T) {
	f := func(b1, b2 uint32, bw1Raw, bw2Raw uint8) bool {
		s1, s2 := int64(b1), int64(b2)
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		bw1 := float64(bw1Raw%100) + 1
		bw2 := bw1 + float64(bw2Raw%100) + 1
		slow := Link{BandwidthGBs: bw1, LatencyS: 1e-6}
		fast := Link{BandwidthGBs: bw2, LatencyS: 1e-6}
		return slow.TransferSeconds(s1) <= slow.TransferSeconds(s2) &&
			fast.TransferSeconds(s2) <= slow.TransferSeconds(s2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConvergeSeconds(t *testing.T) {
	sw := NVSwitch(4)
	if got := sw.ConvergeSeconds(nil); got != 0 {
		t.Fatalf("empty converge = %g, want 0", got)
	}
	if got := sw.ConvergeSeconds([]int64{0, 0, -5}); got != 0 {
		t.Fatalf("all-idle converge = %g, want 0", got)
	}
	// Payloads serialize at the destination port: the cost equals one
	// switch transfer of the summed bytes, and is strictly less than the
	// sum of independent transfers (fixed costs charged once, not thrice).
	parts := []int64{1 << 20, 2 << 20, 4 << 20}
	got := sw.ConvergeSeconds(parts)
	want := sw.TransferSeconds(7 << 20)
	if got != want {
		t.Fatalf("converge = %g, want one summed transfer %g", got, want)
	}
	var sum float64
	for _, b := range parts {
		sum += sw.TransferSeconds(b)
	}
	if got >= sum {
		t.Fatalf("converge %g not cheaper than serial transfers %g", got, sum)
	}
	// Idle sources cost nothing extra.
	if with := sw.ConvergeSeconds([]int64{1 << 20, 0, 2 << 20, 0, 4 << 20}); with != got {
		t.Fatalf("idle sources changed the cost: %g vs %g", with, got)
	}
}
