package cluster

import "fmt"

// Strategy selects how a model's embedding tables are split across the
// cluster's shards.
type Strategy int

// Supported sharding strategies.
const (
	// TableWise assigns whole tables to shards round-robin (table t lives
	// on shard t mod N). It is the default: per-table traffic stays on one
	// node and the only cross-node data is each table's partial result.
	TableWise Strategy = iota
	// RowWise hash-partitions every table's rows across all shards (row r
	// lives on shard r mod N), for tables too large for any single node.
	// Every shard then holds a slice of every table and pooling groups span
	// shards, so partial gathered rows cross the interconnect.
	RowWise
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case TableWise:
		return "table-wise"
	case RowWise:
		return "row-wise"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// placement maps every (table, row) coordinate of the full model onto a
// shard and a row of that shard's flat local table. Each shard stores all
// the rows it owns — from however many global tables — concatenated into
// one flat gather-only table, so a sub-request is a single index list no
// matter how many tables it touches.
type placement struct {
	strategy Strategy
	nodes    int
	tables   int
	rows     int // rows per global table
	// flatBase[s][t] is the first flat row of table t's slice on shard s,
	// or -1 when shard s holds none of table t.
	flatBase [][]int
	// localRows[s] is the flat table height of shard s (0 = empty shard).
	localRows []int
}

// newPlacement precomputes the shard layout for a model of `tables` tables
// with `rows` rows each over `nodes` shards.
func newPlacement(strategy Strategy, nodes, tables, rows int) *placement {
	p := &placement{
		strategy:  strategy,
		nodes:     nodes,
		tables:    tables,
		rows:      rows,
		flatBase:  make([][]int, nodes),
		localRows: make([]int, nodes),
	}
	for s := range p.flatBase {
		p.flatBase[s] = make([]int, tables)
		for t := range p.flatBase[s] {
			p.flatBase[s][t] = -1
		}
	}
	switch strategy {
	case TableWise:
		for t := 0; t < tables; t++ {
			s := t % nodes
			p.flatBase[s][t] = p.localRows[s]
			p.localRows[s] += rows
		}
	case RowWise:
		for s := 0; s < nodes; s++ {
			// Shard s owns rows s, s+N, s+2N, ... of every table:
			// ceil((rows-s)/N) rows when s < rows, none otherwise.
			count := 0
			if s < rows {
				count = (rows - s + nodes - 1) / nodes
			}
			for t := 0; t < tables; t++ {
				if count == 0 {
					continue
				}
				p.flatBase[s][t] = p.localRows[s]
				p.localRows[s] += count
			}
		}
	}
	return p
}

// locate returns the shard owning (table, row) and the row's index in that
// shard's flat local table.
func (p *placement) locate(table, row int) (shard, flat int) {
	switch p.strategy {
	case RowWise:
		s := row % p.nodes
		return s, p.flatBase[s][table] + row/p.nodes
	default: // TableWise
		s := table % p.nodes
		return s, p.flatBase[s][table] + row
	}
}

// tablesOn returns how many global tables shard s holds a slice of.
func (p *placement) tablesOn(s int) int {
	n := 0
	for _, base := range p.flatBase[s] {
		if base >= 0 {
			n++
		}
	}
	return n
}
