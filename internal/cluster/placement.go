package cluster

import (
	"fmt"

	"tensordimm/internal/embed"
	"tensordimm/internal/isa"
	"tensordimm/internal/nn"
	"tensordimm/internal/recsys"
)

// Strategy selects how a model's embedding tables are split across the
// cluster's shards.
type Strategy int

// Supported sharding strategies.
const (
	// TableWise assigns whole tables to shards round-robin (table t lives
	// on shard t mod N). It is the default: per-table traffic stays on one
	// node and the only cross-node data is each table's partial result.
	TableWise Strategy = iota
	// RowWise hash-partitions every table's rows across all shards (row r
	// lives on shard r mod N), for tables too large for any single node.
	// Every shard then holds a slice of every table and pooling groups span
	// shards, so partial gathered rows cross the interconnect.
	RowWise
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	switch s {
	case TableWise:
		return "table-wise"
	case RowWise:
		return "row-wise"
	default:
		return fmt.Sprintf("strategy(%d)", int(s))
	}
}

// Placement maps every (table, row) coordinate of the full model onto a
// shard and a row of that shard's flat local table. Each shard stores all
// the rows it owns — from however many global tables — concatenated into
// one flat gather-only table, so a sub-request is a single index list no
// matter how many tables it touches. It is the shared router core: the
// in-process Cluster and the remote replica router derive identical
// layouts from it, which is what lets a remote fleet serve bit-identical
// results and lets cmd/tensorserve carve a single shard's model out of
// the full one (ExtractShardModel).
type Placement struct {
	strategy Strategy
	nodes    int
	tables   int
	rows     int // rows per global table
	// flatBase[s][t] is the first flat row of table t's slice on shard s,
	// or -1 when shard s holds none of table t.
	flatBase [][]int
	// localRows[s] is the flat table height of shard s (0 = empty shard).
	localRows []int
}

// NewPlacement precomputes the shard layout for a model of `tables` tables
// with `rows` rows each over `nodes` shards.
func NewPlacement(strategy Strategy, nodes, tables, rows int) *Placement {
	p := &Placement{
		strategy:  strategy,
		nodes:     nodes,
		tables:    tables,
		rows:      rows,
		flatBase:  make([][]int, nodes),
		localRows: make([]int, nodes),
	}
	for s := range p.flatBase {
		p.flatBase[s] = make([]int, tables)
		for t := range p.flatBase[s] {
			p.flatBase[s][t] = -1
		}
	}
	switch strategy {
	case TableWise:
		for t := 0; t < tables; t++ {
			s := t % nodes
			p.flatBase[s][t] = p.localRows[s]
			p.localRows[s] += rows
		}
	case RowWise:
		for s := 0; s < nodes; s++ {
			// Shard s owns rows s, s+N, s+2N, ... of every table:
			// ceil((rows-s)/N) rows when s < rows, none otherwise.
			count := 0
			if s < rows {
				count = (rows - s + nodes - 1) / nodes
			}
			for t := 0; t < tables; t++ {
				if count == 0 {
					continue
				}
				p.flatBase[s][t] = p.localRows[s]
				p.localRows[s] += count
			}
		}
	}
	return p
}

// Locate returns the shard owning (table, row) and the row's index in that
// shard's flat local table.
func (p *Placement) Locate(table, row int) (shard, flat int) {
	switch p.strategy {
	case RowWise:
		s := row % p.nodes
		return s, p.flatBase[s][table] + row/p.nodes
	default: // TableWise
		s := table % p.nodes
		return s, p.flatBase[s][table] + row
	}
}

// Unlocate is the inverse of Locate: given a shard and a row index into
// its flat local table, it returns the global (table, row) coordinate
// stored there. The durability plane uses it to replay a shard's
// persisted hot-row list — recorded in flat coordinates — back through
// the golden model's coordinate space.
func (p *Placement) Unlocate(s, flat int) (table, row int, err error) {
	if s < 0 || s >= p.nodes {
		return 0, 0, fmt.Errorf("cluster: shard %d out of range [0, %d)", s, p.nodes)
	}
	if flat < 0 || flat >= p.localRows[s] {
		return 0, 0, fmt.Errorf("cluster: flat row %d out of range [0, %d) on shard %d", flat, p.localRows[s], s)
	}
	// The owning table is the one with the largest base at or below flat
	// (bases are appended in table order, so they are ascending where
	// present).
	table = -1
	base := -1
	for t, b := range p.flatBase[s] {
		if b >= 0 && b <= flat && b > base {
			table, base = t, b
		}
	}
	if p.strategy == RowWise {
		return table, s + (flat-base)*p.nodes, nil
	}
	return table, flat - base, nil
}

// TablesOn returns how many global tables shard s holds a slice of.
func (p *Placement) TablesOn(s int) int {
	n := 0
	for _, base := range p.flatBase[s] {
		if base >= 0 {
			n++
		}
	}
	return n
}

// LocalRows returns the flat local table height of shard s (0 = the
// placement puts nothing on shard s).
func (p *Placement) LocalRows(s int) int { return p.localRows[s] }

// MaxSub returns the worst-case sub-request row count for shard s: every
// lookup of a maximal request of maxBatch samples with the given pooling
// reduction lands on it. It is the MaxBatch a shard's serving stack must
// be sized for.
func (p *Placement) MaxSub(s, maxBatch, reduction int) int {
	return p.TablesOn(s) * maxBatch * reduction
}

// buildShardModel materializes the gather-only model shard s serves under
// placement p: the flat local table copied row-by-row from m's golden
// tables (one flat table, reduction 1 — pooling happens at the router's
// merge) plus a minimal MLP so every Model invariant holds. The source
// model is not modified.
func buildShardModel(m *recsys.Model, p *Placement, s int) (*recsys.Model, error) {
	mc := m.Cfg
	localRows := p.localRows[s]
	if localRows == 0 {
		return nil, fmt.Errorf("cluster: shard %d holds no rows under %v placement of %d shards", s, p.strategy, p.nodes)
	}
	flat, err := embed.NewTable(localRows, mc.EmbDim)
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d table: %w", s, err)
	}
	for t := 0; t < mc.Tables; t++ {
		base := p.flatBase[s][t]
		if base < 0 {
			continue
		}
		src := m.Embedding.Tables[t]
		if p.strategy == RowWise {
			for i, r := 0, s; r < mc.TableRows; i, r = i+1, r+p.nodes {
				copy(flat.Row(base+i), src.Row(r))
			}
		} else {
			for r := 0; r < mc.TableRows; r++ {
				copy(flat.Row(base+r), src.Row(r))
			}
		}
	}
	shardCfg := recsys.Config{
		Name:      fmt.Sprintf("%s/shard%d", mc.Name, s),
		Tables:    1,
		Reduction: 1,
		FCLayers:  0,
		EmbDim:    mc.EmbDim,
		TableRows: localRows,
		Op:        isa.RAdd,
	}
	mlp, err := nn.NewMLP(shardCfg.MLPDims(), int64(s))
	if err != nil {
		return nil, fmt.Errorf("cluster: shard %d mlp: %w", s, err)
	}
	return &recsys.Model{
		Cfg: shardCfg,
		Embedding: &embed.Layer{
			Tables:    []*embed.Table{flat},
			Reduction: 1,
			Op:        isa.RAdd,
		},
		MLP: mlp,
	}, nil
}

// ExtractShardModel materializes the gather-only model shard s of `nodes`
// serves under the given strategy — the same construction the in-process
// Cluster performs, exported so a remote TensorNode process
// (cmd/tensorserve -shard-id) can build exactly the shard the router's
// placement expects from the same deterministically-seeded full model. A
// shard the placement leaves empty is an error.
func ExtractShardModel(m *recsys.Model, strategy Strategy, nodes, s int) (*recsys.Model, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("cluster: nodes must be positive, got %d", nodes)
	}
	if s < 0 || s >= nodes {
		return nil, fmt.Errorf("cluster: shard %d out of range [0, %d)", s, nodes)
	}
	if strategy != TableWise && strategy != RowWise {
		return nil, fmt.Errorf("cluster: unknown strategy %v", strategy)
	}
	p := NewPlacement(strategy, nodes, m.Cfg.Tables, m.Cfg.TableRows)
	return buildShardModel(m, p, s)
}
