package cluster

import (
	"fmt"

	"tensordimm/internal/isa"
)

// Merger pools per-lookup embedding vectors into a request's output
// tensor with exactly the per-element operation sequence of the golden
// embed.Pool / embed.Average path: copy the first group member, apply the
// operator per member in order, scale for mean. It is the other half of
// the shared router core — the in-process Cluster and the remote replica
// router run the same Merge over their gathered rows, which is what makes
// both bit-identical to Deployment.GoldenEmbedding.
type Merger struct {
	// Tables, Dim, Reduction describe the full model's pooling geometry.
	Tables, Dim, Reduction int
	// Mean selects mean pooling (sum then scale by 1/Reduction).
	Mean bool
	// Op is the reduction operator when Mean is false.
	Op isa.ReduceOp
}

// Merge pools into dst (length batch*Tables*Dim, row-major
// [batch, Tables*Dim]). vec returns the Dim-wide gathered vector of
// lookup i (0 <= i < batch*Reduction) of table t; it is called in exactly
// the golden accumulation order. Merge performs no heap allocations — a
// router that reuses dst and a pre-built vec closure keeps its steady
// state allocation-free.
func (m Merger) Merge(dst []float32, batch int, vec func(t, i int) []float32) error {
	width := m.Tables * m.Dim
	red := m.Reduction
	for t := 0; t < m.Tables; t++ {
		for g := 0; g < batch; g++ {
			seg := dst[g*width+t*m.Dim : g*width+(t+1)*m.Dim]
			copy(seg, vec(t, g*red))
			for j := 1; j < red; j++ {
				v := vec(t, g*red+j)
				switch {
				case m.Mean, m.Op == isa.RAdd:
					for k := range seg {
						seg[k] += v[k]
					}
				case m.Op == isa.RSub:
					for k := range seg {
						seg[k] -= v[k]
					}
				case m.Op == isa.RMul:
					for k := range seg {
						seg[k] *= v[k]
					}
				case m.Op == isa.RMax:
					for k := range seg {
						if v[k] > seg[k] {
							seg[k] = v[k]
						}
					}
				default:
					return fmt.Errorf("cluster: merge table %d: unknown reduce op %v", t, m.Op)
				}
			}
			if m.Mean && red > 1 {
				inv := 1 / float32(red)
				for k := range seg {
					seg[k] *= inv
				}
			}
		}
	}
	return nil
}
