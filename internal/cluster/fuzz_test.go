package cluster

import (
	"testing"

	"tensordimm/internal/isa"
	"tensordimm/internal/recsys"
	"tensordimm/internal/tensor"
)

// FuzzClusterEmbed feeds arbitrary per-table row indices — including
// dup-heavy, negative, and far-out-of-range values, plus mis-shaped index
// lists — through the cluster router and merge of both sharding
// strategies. The contract: Embed must never panic, must reject invalid
// inputs with an error, and must stay bit-identical to GoldenEmbedding on
// every valid input.
func FuzzClusterEmbed(f *testing.F) {
	mc := recsys.Config{
		Name: "fuzz", Tables: 2, Reduction: 2, FCLayers: 1,
		EmbDim: 64, TableRows: 97, Hidden: []int{8},
		Op: isa.RAdd,
	}
	m, err := recsys.Build(mc, 99)
	if err != nil {
		f.Fatal(err)
	}
	clusters := make([]*Cluster, 0, 2)
	for _, strategy := range []Strategy{TableWise, RowWise} {
		c, err := New(m, Config{
			Nodes: 3, Strategy: strategy, DIMMsPerNode: 4,
			MaxBatch: 4, CacheBytes: 8 << 10,
		})
		if err != nil {
			f.Fatal(err)
		}
		f.Cleanup(func() { c.Close() })
		clusters = append(clusters, c)
	}

	f.Add([]byte{1, 0, 0, 0, 1, 0, 2, 0, 3})             // small valid request
	f.Add([]byte{4, 0xff, 0xff, 0, 0, 0, 0, 0, 0})       // out-of-range index
	f.Add([]byte{2, 0, 5, 0, 5, 0, 5, 0, 5, 0, 5, 0, 5}) // dup-heavy
	f.Add([]byte{0})                                     // zero batch
	f.Add([]byte{9, 1, 2, 3})                            // batch beyond MaxBatch

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		// Byte 0 picks the batch (possibly invalid on purpose); the rest
		// decode to signed-ish indices, two bytes each, wrapping when the
		// input is short. A final control bit occasionally truncates one
		// table's list to exercise the shape validation.
		batch := int(data[0]) - 1 // -1..254: covers zero/negative/too-big
		lookups := batch * mc.Reduction
		if lookups < 0 {
			lookups = 0
		}
		if lookups > 64 {
			lookups = 64
			batch = lookups / mc.Reduction
		}
		body := data[1:]
		at := func(i int) byte {
			if len(body) == 0 {
				return 0
			}
			return body[i%len(body)]
		}
		rows := make([][]int, mc.Tables)
		p := 0
		for tb := range rows {
			rows[tb] = make([]int, lookups)
			for j := range rows[tb] {
				raw := int(at(p))<<8 | int(at(p+1))
				p += 2
				switch raw % 5 {
				case 0: // dup-heavy: repeat the previous index
					if j > 0 {
						rows[tb][j] = rows[tb][j-1]
					} else {
						rows[tb][j] = raw % mc.TableRows
					}
				case 1: // negative
					rows[tb][j] = -(raw & 0xff)
				default: // mostly in range, sometimes beyond
					rows[tb][j] = raw % (mc.TableRows + 7)
				}
			}
		}
		if len(body) > 0 && at(p)%7 == 0 && len(rows[0]) > 0 {
			rows[0] = rows[0][:len(rows[0])-1] // shape mismatch
		}

		valid := batch >= 1 && batch <= 4
		for tb := range rows {
			if len(rows[tb]) != batch*mc.Reduction {
				valid = false
			}
			for _, r := range rows[tb] {
				if r < 0 || r >= mc.TableRows {
					valid = false
				}
			}
		}

		for _, c := range clusters {
			got, err := c.Embed(rows, batch)
			if !valid {
				if err == nil {
					t.Fatalf("%v: invalid input accepted (batch %d)", c.cfg.Strategy, batch)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%v: valid input rejected: %v", c.cfg.Strategy, err)
			}
			want, err := c.GoldenEmbedding(rows, batch)
			if err != nil {
				t.Fatal(err)
			}
			if !tensor.Equal(got, want) {
				t.Fatalf("%v: embed differs from golden", c.cfg.Strategy)
			}
		}
	})
}
