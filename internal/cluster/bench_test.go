package cluster_test

import (
	"testing"

	"tensordimm/internal/benchkit"
)

// BenchmarkClusterEmbed drives a 2-shard cluster with warm hot-row caches
// over the zero-allocation EmbedInto path; with -benchmem it pins
// 0 allocs/op in steady state. Extra metric: req/s.
func BenchmarkClusterEmbed(b *testing.B) { benchkit.ClusterEmbed(b) }
