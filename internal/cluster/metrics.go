package cluster

import (
	"fmt"
	"strings"
	"time"

	"tensordimm/internal/serve"
	"tensordimm/internal/stats"
)

// ShardMetrics is a point-in-time snapshot of one shard's counters.
type ShardMetrics struct {
	Shard         int           // shard id
	Tables        int           // global tables this shard holds a slice of
	Rows          int           // flat local table height
	SubRequests   uint64        // sub-requests routed here
	RowsGathered  uint64        // rows gathered near-memory (cache misses)
	CacheHits     uint64        // lookups served from the hot-row cache
	CacheMisses   uint64        // lookups that went to the gather path
	CacheRows     int           // rows currently resident in the cache
	HitRate       float64       // CacheHits / (CacheHits + CacheMisses)
	PartialBytes  uint64        // modeled bytes shipped shard -> router
	IndexBytes    uint64        // modeled bytes shipped router -> shard
	SubUpdates    uint64        // sub-updates scattered here
	RowsUpdated   uint64        // gradient rows accumulated near-memory
	Invalidations uint64        // hot-row cache entries removed by updates
	UpdateBytes   uint64        // modeled update bytes (indices + gradients) router -> shard
	Serve         serve.Metrics // the shard server's own metrics
}

// Metrics is a point-in-time snapshot of the cluster's counters. All
// latencies are in seconds.
type Metrics struct {
	Strategy Strategy      // sharding strategy in effect
	Nodes    int           // shard count
	Requests uint64        // cluster requests completed successfully
	Samples  uint64        // samples across completed requests
	Failures uint64        // requests or updates completed with an error
	Lookups  uint64        // individual (table, row) lookups routed
	Uptime   time.Duration // time since New

	// Updates counts completed ApplyUpdates calls; RowsUpdated the gradient
	// rows they routed; Invalidations the cache entries they removed.
	Updates       uint64
	RowsUpdated   uint64
	Invalidations uint64

	// CacheHits and CacheMisses aggregate the per-shard hot-row caches;
	// HitRate is their ratio (0 when caching is disabled).
	CacheHits   uint64
	CacheMisses uint64
	HitRate     float64

	// TransferBytes is the total modeled fabric traffic (index lists,
	// partial results, and update indices + gradients); Transfer digests
	// the modeled per-request fabric seconds and UpdateTransfer the modeled
	// per-update-batch fabric seconds (interconnect.Switch.ConvergeSeconds).
	TransferBytes  uint64
	Transfer       stats.LatencySummary
	UpdateTransfer stats.LatencySummary

	// TotalLatency digests wall-clock submission-to-result seconds.
	TotalLatency stats.LatencySummary

	// Shards holds one entry per shard, including empty shards.
	Shards []ShardMetrics
}

// Metrics snapshots every counter. Safe to call at any time, including
// after Close and concurrently with Infer.
func (c *Cluster) Metrics() Metrics {
	m := Metrics{
		Strategy:       c.cfg.Strategy,
		Nodes:          c.cfg.Nodes,
		Requests:       c.requests.Load(),
		Samples:        c.samples.Load(),
		Failures:       c.failures.Load(),
		Lookups:        c.lookups.Load(),
		Updates:        c.updates.Load(),
		RowsUpdated:    c.updateRows.Load(),
		Uptime:         time.Since(c.started),
		Transfer:       c.transfer.Summary(),
		UpdateTransfer: c.updTransfer.Summary(),
		TotalLatency:   c.totalLat.Summary(),
	}
	for _, sh := range c.shard {
		sm := ShardMetrics{
			Shard:  sh.id,
			Tables: c.place.TablesOn(sh.id),
			Rows:   c.place.localRows[sh.id],
		}
		sm.SubRequests = sh.subRequests.Load()
		sm.RowsGathered = sh.rowsGathered.Load()
		sm.PartialBytes = sh.partialBytes.Load()
		sm.IndexBytes = sh.indexBytes.Load()
		sm.SubUpdates = sh.subUpdates.Load()
		sm.RowsUpdated = sh.rowsUpdated.Load()
		sm.UpdateBytes = sh.updateBytes.Load()
		if sh.cache != nil {
			sm.CacheHits = sh.cache.hits.Load()
			sm.CacheMisses = sh.cache.misses.Load()
			sm.Invalidations = sh.cache.invalidations.Load()
			sm.CacheRows = sh.cache.len()
			sm.HitRate = stats.HitRate(sm.CacheHits, sm.CacheMisses)
		}
		if sh.srv != nil {
			sm.Serve = sh.srv.Metrics()
		}
		m.CacheHits += sm.CacheHits
		m.CacheMisses += sm.CacheMisses
		m.Invalidations += sm.Invalidations
		m.TransferBytes += sm.PartialBytes + sm.IndexBytes + sm.UpdateBytes
		m.Shards = append(m.Shards, sm)
	}
	m.HitRate = stats.HitRate(m.CacheHits, m.CacheMisses)
	return m
}

// String renders the metrics as a small report with a per-shard table.
func (m Metrics) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: %d shards, %s sharding, up %s\n",
		m.Nodes, m.Strategy, m.Uptime.Round(time.Millisecond))
	fmt.Fprintf(&b, "requests %d (%d samples, %d failures), %d lookups\n",
		m.Requests, m.Samples, m.Failures, m.Lookups)
	fmt.Fprintf(&b, "updates %d (%d gradient rows, %d cache invalidations)\n",
		m.Updates, m.RowsUpdated, m.Invalidations)
	fmt.Fprintf(&b, "hot-row cache: %d hits / %d misses (hit rate %.1f%%)\n",
		m.CacheHits, m.CacheMisses, 100*m.HitRate)
	fmt.Fprintf(&b, "fabric: %s transferred, modeled per-request %s\n",
		stats.FormatBytes(int64(m.TransferBytes)), m.Transfer)
	fmt.Fprintf(&b, "total latency  %s\n", m.TotalLatency)
	tbl := stats.Table{
		Title:   "per shard",
		Columns: []string{"shard", "tables", "rows", "subreqs", "gathered", "hits", "misses", "hit%", "updates", "invals", "partials"},
	}
	for _, s := range m.Shards {
		tbl.AddRow(s.Shard, s.Tables, s.Rows, s.SubRequests, s.RowsGathered,
			s.CacheHits, s.CacheMisses, fmt.Sprintf("%.1f", 100*s.HitRate),
			s.SubUpdates, s.Invalidations,
			stats.FormatBytes(int64(s.PartialBytes)))
	}
	b.WriteString(tbl.String())
	return b.String()
}
