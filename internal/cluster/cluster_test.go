package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"tensordimm/internal/isa"
	"tensordimm/internal/recsys"
	"tensordimm/internal/tensor"
	"tensordimm/internal/workload"
)

// testConfig returns a cluster-test-sized model. Dim 64 = one stripe on a
// 4-DIMM node; TableRows deliberately not divisible by typical node counts
// so row-wise boundaries are exercised.
func testConfig(tables, reduction, dim int, mean bool, op isa.ReduceOp) recsys.Config {
	return recsys.Config{
		Name: "cluster-test", Tables: tables, Reduction: reduction, FCLayers: 2,
		EmbDim: dim, TableRows: 301, Hidden: []int{16, 8},
		Op: op, Mean: mean,
	}
}

func buildCluster(t *testing.T, mc recsys.Config, cfg Config) (*Cluster, *recsys.Model) {
	t.Helper()
	m, err := recsys.Build(mc, 99)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DIMMsPerNode == 0 {
		cfg.DIMMsPerNode = 4
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = 8
	}
	c, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, m
}

func TestNewValidation(t *testing.T) {
	m, err := recsys.Build(testConfig(2, 2, 64, false, isa.RAdd), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(m, Config{}); err == nil {
		t.Fatal("want error for zero Nodes")
	}
	if _, err := New(m, Config{Nodes: 2, Strategy: Strategy(9)}); err == nil {
		t.Fatal("want error for unknown strategy")
	}
	if _, err := New(m, Config{Nodes: 2, DIMMsPerNode: 5}); err == nil {
		t.Fatal("want error for dim not striping over 5 DIMMs")
	}
	if _, err := New(m, Config{Nodes: 2, DIMMsPerNode: 4, MaxBatch: -1}); err == nil {
		t.Fatal("want error for negative MaxBatch")
	}
}

// TestPlacementRowWiseBoundaries pins the row-wise hash mapping at shard
// boundaries: rows 0..N-1 land on shards 0..N-1, row N wraps back to shard
// 0 at flat row 1, and the last row of a table that does not divide evenly
// lands where the mapping says it must.
func TestPlacementRowWiseBoundaries(t *testing.T) {
	const nodes, tables, rows = 3, 2, 301 // 301 = 3*100 + 1
	p := NewPlacement(RowWise, nodes, tables, rows)
	// Shard 0 owns rows 0,3,...,300 -> 101 rows per table; shards 1 and 2
	// own 100 each.
	if got := p.localRows[0]; got != 2*101 {
		t.Fatalf("shard 0 flat rows = %d, want %d", got, 2*101)
	}
	if got := p.localRows[1]; got != 2*100 {
		t.Fatalf("shard 1 flat rows = %d, want %d", got, 2*100)
	}
	cases := []struct{ table, row, wantShard, wantFlat int }{
		{0, 0, 0, 0},
		{0, 1, 1, 0},
		{0, 2, 2, 0},
		{0, 3, 0, 1},     // wraps to shard 0, second flat row
		{0, 300, 0, 100}, // last row of table 0 (300 = 3*100)
		{1, 0, 0, 101},   // table 1 starts after table 0's 101 rows on shard 0
		{1, 300, 0, 201}, // last row of table 1
		{1, 299, 2, 100 + 99},
	}
	for _, c := range cases {
		s, f := p.Locate(c.table, c.row)
		if s != c.wantShard || f != c.wantFlat {
			t.Errorf("locate(%d, %d) = (%d, %d), want (%d, %d)",
				c.table, c.row, s, f, c.wantShard, c.wantFlat)
		}
	}
}

// TestPlacementTableWise pins the round-robin table assignment, including
// more nodes than tables (empty shards).
func TestPlacementTableWise(t *testing.T) {
	p := NewPlacement(TableWise, 4, 3, 10)
	wantRows := []int{10, 10, 10, 0}
	for s, want := range wantRows {
		if p.localRows[s] != want {
			t.Fatalf("shard %d rows = %d, want %d", s, p.localRows[s], want)
		}
	}
	if s, f := p.Locate(2, 7); s != 2 || f != 7 {
		t.Fatalf("locate(2, 7) = (%d, %d), want (2, 7)", s, f)
	}
	if p.TablesOn(3) != 0 {
		t.Fatalf("empty shard reports %d tables", p.TablesOn(3))
	}
}

// matchGolden asserts the cluster's Embed output is bit-identical to the
// golden single-node embedding for several batches.
func matchGolden(t *testing.T, c *Cluster, m *recsys.Model, seed int64, iters int) {
	t.Helper()
	gen, err := workload.NewGenerator(m.Cfg.TableRows, workload.Uniform, seed)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < iters; i++ {
		batch := 1 + i%c.cfg.MaxBatch
		rows := gen.Batch(m.Cfg.Tables, batch, m.Cfg.Reduction)
		got, err := c.Embed(rows, batch)
		if err != nil {
			t.Fatal(err)
		}
		want, err := c.GoldenEmbedding(rows, batch)
		if err != nil {
			t.Fatal(err)
		}
		if !tensor.Equal(got, want) {
			t.Fatalf("iter %d: cluster embedding differs from golden", i)
		}
	}
}

func TestTableWiseMatchesGolden(t *testing.T) {
	// Mean pooling (YouTube-class shape) across 2 nodes, 3 tables: one
	// shard holds two tables, so flat-table offsets are exercised.
	c, m := buildCluster(t, testConfig(3, 5, 64, true, isa.RAdd),
		Config{Nodes: 2, Strategy: TableWise})
	matchGolden(t, c, m, 7, 6)
}

func TestTableWiseNonMeanReduce(t *testing.T) {
	// Element-wise product pooling (NCF's GMF path): router-side merge must
	// reproduce the golden operator chain exactly.
	c, m := buildCluster(t, testConfig(2, 2, 64, false, isa.RMul),
		Config{Nodes: 2, Strategy: TableWise})
	matchGolden(t, c, m, 8, 4)
}

func TestRowWiseMatchesGolden(t *testing.T) {
	// 3 nodes over 301-row tables: uneven shard slices, pooling groups
	// spanning shards.
	c, m := buildCluster(t, testConfig(2, 5, 64, true, isa.RAdd),
		Config{Nodes: 3, Strategy: RowWise})
	matchGolden(t, c, m, 9, 6)
}

func TestRowWiseWithCacheMatchesGolden(t *testing.T) {
	c, m := buildCluster(t, testConfig(2, 4, 64, true, isa.RAdd),
		Config{Nodes: 3, Strategy: RowWise, CacheBytes: 16 << 10})
	matchGolden(t, c, m, 10, 8)
	met := c.Metrics()
	if met.CacheHits+met.CacheMisses != met.Lookups {
		t.Fatalf("cache accounting: %d hits + %d misses != %d lookups",
			met.CacheHits, met.CacheMisses, met.Lookups)
	}
}

// TestEmptySubBatches covers the two shapes of "nothing to do" for a
// shard: shards that own no rows at all (more nodes than tables,
// table-wise), and non-empty shards a particular request happens not to
// touch (row-wise request of even rows only). Both must see zero
// sub-requests while the merge stays golden.
func TestEmptySubBatches(t *testing.T) {
	mc := testConfig(2, 2, 64, false, isa.RAdd)
	c, m := buildCluster(t, mc, Config{Nodes: 4, Strategy: TableWise})
	gen, _ := workload.NewGenerator(mc.TableRows, workload.Uniform, 3)
	for i := 0; i < 3; i++ {
		rows := gen.Batch(mc.Tables, 2, mc.Reduction)
		got, err := c.Embed(rows, 2)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := m.Embedding.Forward(rows, 2)
		if !tensor.Equal(got, want) {
			t.Fatal("embedding differs from golden")
		}
	}
	met := c.Metrics()
	if met.Shards[2].SubRequests != 0 || met.Shards[3].SubRequests != 0 {
		t.Fatalf("empty shards saw sub-requests: %+v", met.Shards[2:])
	}
	if met.Shards[0].SubRequests == 0 || met.Shards[1].SubRequests == 0 {
		t.Fatalf("table-owning shards saw no traffic: %d, %d",
			met.Shards[0].SubRequests, met.Shards[1].SubRequests)
	}
	if met.TransferBytes == 0 {
		t.Fatal("no fabric traffic modeled")
	}

	// Row-wise: a request built only of even rows routes nothing to the
	// odd shard of a 2-node cluster.
	c2, m2 := buildCluster(t, mc, Config{Nodes: 2, Strategy: RowWise})
	rows := make([][]int, mc.Tables)
	for t2 := range rows {
		for i := 0; i < 2*mc.Reduction; i++ {
			rows[t2] = append(rows[t2], (i*2+t2*4)%mc.TableRows&^1)
		}
	}
	got, err := c2.Embed(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := m2.Embedding.Forward(rows, 2)
	if !tensor.Equal(got, want) {
		t.Fatal("even-rows embedding differs from golden")
	}
	met2 := c2.Metrics()
	if met2.Shards[1].SubRequests != 0 {
		t.Fatalf("odd shard saw %d sub-requests for an even-rows request", met2.Shards[1].SubRequests)
	}
	if met2.Shards[0].SubRequests != 1 {
		t.Fatalf("even shard saw %d sub-requests, want 1", met2.Shards[0].SubRequests)
	}
}

// TestCacheHitAccounting replays one request twice: the second pass must be
// served entirely from the caches, stay bit-identical, and the counters
// must balance.
func TestCacheHitAccounting(t *testing.T) {
	mc := testConfig(2, 3, 64, true, isa.RAdd)
	c, m := buildCluster(t, mc, Config{Nodes: 2, Strategy: RowWise, CacheBytes: 1 << 20})
	gen, _ := workload.NewGenerator(mc.TableRows, workload.Uniform, 5)
	rows := gen.Batch(mc.Tables, 2, mc.Reduction)
	want, _ := m.Embedding.Forward(rows, 2)

	first, err := c.Embed(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := c.Metrics()
	second, err := c.Embed(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	after := c.Metrics()

	if !tensor.Equal(first, want) || !tensor.Equal(second, want) {
		t.Fatal("cached replay differs from golden")
	}
	lookups := uint64(mc.Tables * 2 * mc.Reduction)
	if hits := after.CacheHits - before.CacheHits; hits != lookups {
		t.Fatalf("second pass: %d hits, want all %d lookups cached", hits, lookups)
	}
	if gathered := afterRows(after) - afterRows(before); gathered != 0 {
		t.Fatalf("second pass gathered %d rows, want 0", gathered)
	}
	if after.CacheHits+after.CacheMisses != after.Lookups {
		t.Fatalf("accounting: %d + %d != %d", after.CacheHits, after.CacheMisses, after.Lookups)
	}
}

func afterRows(m Metrics) uint64 {
	var total uint64
	for _, s := range m.Shards {
		total += s.RowsGathered
	}
	return total
}

// TestConcurrentInferAccounting hammers one cached cluster from many
// goroutines (run under -race): every result must match the golden model
// and the global hit/miss accounting must balance exactly despite racing
// probes and insertions.
func TestConcurrentInferAccounting(t *testing.T) {
	mc := testConfig(2, 3, 64, true, isa.RAdd)
	c, m := buildCluster(t, mc,
		Config{Nodes: 3, Strategy: RowWise, CacheBytes: 32 << 10, Workers: 2})
	const clients, iters = 6, 5
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for cl := 0; cl < clients; cl++ {
		wg.Add(1)
		go func(cl int) {
			defer wg.Done()
			gen, err := workload.NewZipfGenerator(mc.TableRows, 0.9, int64(cl))
			if err != nil {
				errs[cl] = err
				return
			}
			for i := 0; i < iters; i++ {
				batch := 1 + (cl+i)%4
				rows := gen.Batch(mc.Tables, batch, mc.Reduction)
				got, err := c.Infer(rows, batch)
				if err != nil {
					errs[cl] = err
					return
				}
				want, err := m.Infer(rows, batch)
				if err != nil {
					errs[cl] = err
					return
				}
				if !tensor.Equal(got, want) {
					errs[cl] = fmt.Errorf("client %d iter %d: cluster inference differs from golden", cl, i)
					return
				}
			}
		}(cl)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	met := c.Metrics()
	if met.CacheHits+met.CacheMisses != met.Lookups {
		t.Fatalf("accounting under concurrency: %d hits + %d misses != %d lookups",
			met.CacheHits, met.CacheMisses, met.Lookups)
	}
	if met.Requests != clients*iters {
		t.Fatalf("completed %d requests, want %d", met.Requests, clients*iters)
	}
	if met.Failures != 0 {
		t.Fatalf("%d failures", met.Failures)
	}
}

// TestZipfHitRate is the acceptance experiment: under a Zipf(0.9) trace, a
// cache holding ~10% of the hot rows must exceed a 50% hit rate once warm.
func TestZipfHitRate(t *testing.T) {
	mc := testConfig(2, 4, 64, true, isa.RAdd)
	mc.TableRows = 2000
	// 64 KiB per shard = 256 rows of 256 B; two shards ≈ 13% of 2x2000 rows.
	c, _ := buildCluster(t, mc,
		Config{Nodes: 2, Strategy: RowWise, CacheBytes: 64 << 10, MaxBatch: 8})
	gen, err := workload.NewZipfGenerator(mc.TableRows, 0.9, 42)
	if err != nil {
		t.Fatal(err)
	}
	run := func(n int) {
		for i := 0; i < n; i++ {
			rows := gen.Batch(mc.Tables, 4, mc.Reduction)
			if _, err := c.Embed(rows, 4); err != nil {
				t.Fatal(err)
			}
		}
	}
	run(60) // warm the caches
	warm := c.Metrics()
	run(120)
	final := c.Metrics()
	hits := final.CacheHits - warm.CacheHits
	misses := final.CacheMisses - warm.CacheMisses
	rate := float64(hits) / float64(hits+misses)
	if rate <= 0.5 {
		t.Fatalf("warm Zipf(0.9) hit rate %.1f%%, want > 50%%", 100*rate)
	}
	for _, s := range final.Shards {
		if s.CacheHits == 0 {
			t.Fatalf("shard %d never hit its cache", s.Shard)
		}
	}
}

// TestCloseSemantics: close is idempotent, rejects later requests, and
// releases every shard's pool memory.
func TestCloseSemantics(t *testing.T) {
	mc := testConfig(2, 2, 64, false, isa.RAdd)
	c, _ := buildCluster(t, mc, Config{Nodes: 2})
	gen, _ := workload.NewGenerator(mc.TableRows, workload.Uniform, 1)
	rows := gen.Batch(mc.Tables, 1, mc.Reduction)
	if _, err := c.Infer(rows, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := c.Infer(rows, 1); err == nil {
		t.Fatal("want error after close")
	}
	for _, sh := range c.shard {
		if sh.node != nil && sh.node.AllocCount() != 0 {
			t.Fatalf("shard %d: %d live allocations after close", sh.id, sh.node.AllocCount())
		}
	}
}

// TestRequestValidation covers the router's argument checking.
func TestRequestValidation(t *testing.T) {
	mc := testConfig(2, 2, 64, false, isa.RAdd)
	c, _ := buildCluster(t, mc, Config{Nodes: 2, MaxBatch: 4})
	gen, _ := workload.NewGenerator(mc.TableRows, workload.Uniform, 1)
	good := gen.Batch(mc.Tables, 1, mc.Reduction)
	if _, err := c.Embed(good, 0); err == nil {
		t.Fatal("want batch range error")
	}
	if _, err := c.Embed(good, 5); err == nil {
		t.Fatal("want batch > MaxBatch error")
	}
	if _, err := c.Embed(good[:1], 1); err == nil {
		t.Fatal("want table count error")
	}
	bad := gen.Batch(mc.Tables, 1, mc.Reduction)
	bad[1][0] = mc.TableRows
	if _, err := c.Embed(bad, 1); err == nil {
		t.Fatal("want row range error")
	}
	short := gen.Batch(mc.Tables, 1, mc.Reduction)
	short[0] = short[0][:1]
	if _, err := c.Embed(short, 1); err == nil {
		t.Fatal("want row count error")
	}
}

// TestMetricsString smoke-checks the report rendering.
func TestMetricsString(t *testing.T) {
	mc := testConfig(2, 2, 64, false, isa.RAdd)
	c, _ := buildCluster(t, mc, Config{Nodes: 2, CacheBytes: 8 << 10})
	gen, _ := workload.NewGenerator(mc.TableRows, workload.Uniform, 1)
	if _, err := c.Infer(gen.Batch(mc.Tables, 2, mc.Reduction), 2); err != nil {
		t.Fatal(err)
	}
	s := c.Metrics().String()
	for _, want := range []string{"cluster: 2 shards", "hot-row cache", "per shard"} {
		if !strings.Contains(s, want) {
			t.Fatalf("report missing %q:\n%s", want, s)
		}
	}
	if c.Nodes() != 2 || c.Config().Workers == 0 {
		t.Fatal("accessors")
	}
}

// TestMaxDelayDefault pins the cluster's shard-server deadline default.
func TestMaxDelayDefault(t *testing.T) {
	mc := testConfig(1, 1, 64, false, isa.RAdd)
	c, _ := buildCluster(t, mc, Config{Nodes: 1})
	if c.cfg.MaxDelay != 100*time.Microsecond {
		t.Fatalf("MaxDelay default = %v, want 100us", c.cfg.MaxDelay)
	}
}
