package cluster

import (
	"sync"
	"testing"

	"tensordimm/internal/isa"
	"tensordimm/internal/runtime"
	"tensordimm/internal/tensor"
)

func vec(dim int, v float32) []float32 {
	out := make([]float32, dim)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestRowCacheDisabledWhenTooSmall(t *testing.T) {
	if c := newRowCache(0, 16, 1024); c != nil {
		t.Fatal("zero capacity must disable the cache")
	}
	if c := newRowCache(63, 16, 1024); c != nil {
		t.Fatal("capacity below one row must disable the cache")
	}
	if c := newRowCache(64, 16, 1024); c == nil {
		t.Fatal("one-row capacity must enable the cache")
	}
}

func TestRowCacheLRUEviction(t *testing.T) {
	const dim = 16 // 64 B per row
	c := newRowCache(3*64, dim, 1024)
	for r := 0; r < 3; r++ {
		c.put(r, vec(dim, float32(r)))
	}
	// Touch row 0 so row 1 becomes least recently used, then overflow.
	if _, ok := c.get(0); !ok {
		t.Fatal("row 0 should be resident")
	}
	c.put(3, vec(dim, 3))
	if _, ok := c.get(1); ok {
		t.Fatal("row 1 should have been evicted as LRU")
	}
	for _, r := range []int{0, 2, 3} {
		got, ok := c.get(r)
		if !ok {
			t.Fatalf("row %d should be resident", r)
		}
		if got[0] != float32(r) {
			t.Fatalf("row %d holds %v", r, got[0])
		}
	}
	if c.len() != 3 {
		t.Fatalf("resident rows = %d, want 3", c.len())
	}
}

func TestRowCachePutCopies(t *testing.T) {
	const dim = 16
	c := newRowCache(1024, dim, 1024)
	src := vec(dim, 1)
	c.put(7, src)
	src[0] = 99 // caller mutates its slice after insert
	got, ok := c.get(7)
	if !ok || got[0] != 1 {
		t.Fatalf("cache shares caller storage: got %v", got[0])
	}
	// Re-inserting a resident row refreshes recency without growing usage.
	c.put(7, vec(dim, 2))
	if c.len() != 1 {
		t.Fatalf("re-insert grew the cache to %d rows", c.len())
	}
}

// TestRowCacheExactBudgetFill pins the eviction boundary arithmetic: a
// budget of exactly k rows holds k rows with zero evictions, the (k+1)th
// insert evicts exactly one, and a budget that is not a whole multiple of
// the row size only holds the whole rows that fit.
func TestRowCacheExactBudgetFill(t *testing.T) {
	const dim = 16 // 64 B per row
	c := newRowCache(4*64, dim, 1024)
	for r := 0; r < 4; r++ {
		c.put(r, vec(dim, float32(r)))
	}
	if c.len() != 4 || c.used != 4*64 {
		t.Fatalf("exact fill: %d rows, %d bytes used", c.len(), c.used)
	}
	for r := 0; r < 4; r++ { // nothing was evicted at exactly-full
		if _, ok := c.get(r); !ok {
			t.Fatalf("row %d evicted at exact budget", r)
		}
	}
	c.put(4, vec(dim, 4))
	if c.len() != 4 || c.used != 4*64 {
		t.Fatalf("overflow by one: %d rows, %d bytes used", c.len(), c.used)
	}
	if _, ok := c.get(0); ok {
		t.Fatal("LRU row 0 should have been the single eviction")
	}

	// A fractional budget (3.5 rows) holds only 3 whole rows.
	c = newRowCache(3*64+32, dim, 1024)
	for r := 0; r < 4; r++ {
		c.put(r, vec(dim, float32(r)))
	}
	if c.len() != 3 || c.used != 3*64 {
		t.Fatalf("fractional budget: %d rows, %d bytes used", c.len(), c.used)
	}
}

// TestRowCacheZeroBudget covers the disabled-cache contract end to end: a
// zero (or sub-row) budget yields a nil cache, and the cluster treats a
// nil cache as "no caching" on both the read and the write path.
func TestRowCacheZeroBudget(t *testing.T) {
	if c := newRowCache(0, 16, 1024); c != nil {
		t.Fatal("zero budget must disable the cache")
	}
	// A cacheless cluster still serves updates and reads correctly.
	mc := testConfig(2, 1, 64, false, isa.RAdd)
	c, _ := buildCluster(t, mc, Config{Nodes: 2}) // CacheBytes 0
	rows := [][]int{{0, 1}, {2, 3}}
	if _, err := c.Embed(rows, 2); err != nil {
		t.Fatal(err)
	}
	g := tensor.New(1, mc.EmbDim)
	g.Fill(0.5)
	if err := c.ApplyUpdates([]runtime.TableUpdate{{Table: 0, Rows: []int{1}, Grads: g}}); err != nil {
		t.Fatal(err)
	}
	m := c.Metrics()
	if m.CacheHits != 0 || m.CacheMisses != 0 || m.Invalidations != 0 {
		t.Fatalf("cacheless cluster recorded cache traffic: %+v", m)
	}
	got, err := c.Embed(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.GoldenEmbedding(rows, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !tensor.Equal(got, want) {
		t.Fatal("cacheless post-update embed differs from golden")
	}
}

// TestRowCacheInvalidateMidLRU removes an entry from the middle of the LRU
// order and checks residency, byte accounting, the invalidation counter,
// and that later eviction order is unaffected by the hole.
func TestRowCacheInvalidateMidLRU(t *testing.T) {
	const dim = 16
	c := newRowCache(3*64, dim, 1024)
	for r := 0; r < 3; r++ {
		c.put(r, vec(dim, float32(r)))
	}
	// LRU order (old -> new): 0, 1, 2. Invalidate the middle entry plus a
	// non-resident row; only the resident one counts.
	if n := c.invalidate([]int{1, 77}); n != 1 {
		t.Fatalf("invalidate removed %d rows, want 1", n)
	}
	if c.invalidations.Load() != 1 {
		t.Fatalf("invalidations counter = %d, want 1", c.invalidations.Load())
	}
	if c.len() != 2 || c.used != 2*64 {
		t.Fatalf("after invalidate: %d rows, %d bytes used", c.len(), c.used)
	}
	if _, ok := c.get(1); ok {
		t.Fatal("invalidated row still resident")
	}
	// The freed budget admits a new row without evicting anything.
	c.put(3, vec(dim, 3))
	if c.len() != 3 {
		t.Fatalf("after refill: %d rows, want 3", c.len())
	}
	for _, r := range []int{0, 2, 3} {
		if _, ok := c.get(r); !ok {
			t.Fatalf("row %d should be resident", r)
		}
	}
	// Overflow now evicts the oldest survivor (row 0), not the hole.
	c.put(4, vec(dim, 4))
	if _, ok := c.get(0); ok {
		t.Fatal("row 0 should be the next eviction after the mid-LRU hole")
	}
}

// TestRowCacheVersionHandshake pins the coherence mechanism: a putAt with
// a snapshot taken before an invalidation must be dropped, one taken after
// must land.
func TestRowCacheVersionHandshake(t *testing.T) {
	const dim = 16
	c := newRowCache(1024, dim, 1024)
	ver := c.snapshot()
	c.invalidate([]int{5}) // nothing resident: still bumps the version
	c.putAt(5, vec(dim, 1), ver)
	if _, ok := c.get(5); ok {
		t.Fatal("stale putAt landed after invalidation")
	}
	ver = c.snapshot()
	c.putAt(5, vec(dim, 2), ver)
	got, ok := c.get(5)
	if !ok || got[0] != 2 {
		t.Fatal("fresh putAt should land")
	}
}

func TestRowCacheAccountingUnderConcurrency(t *testing.T) {
	const dim = 16
	c := newRowCache(8*64, dim, 1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				row := (g + i) % 16
				if _, ok := c.get(row); !ok {
					c.put(row, vec(dim, float32(row)))
				}
			}
		}(g)
	}
	wg.Wait()
	if got := c.hits.Load() + c.misses.Load(); got != 8*200 {
		t.Fatalf("hits+misses = %d, want %d", got, 8*200)
	}
	if c.len() > 8 {
		t.Fatalf("%d resident rows exceed the 8-row budget", c.len())
	}
}
